#!/usr/bin/env python3
"""Compare two BENCH_engine.json reports (schema ft.bench_engine/2).

Rows are matched by their "name" field and compared on cycles_per_sec.
Machine noise on shared runners easily reaches +/-10%, so differences
inside --tolerance (default 0.10) are reported as "ok"; larger moves are
labeled "faster" / "SLOWER". A file's embedded "baseline" section can
stand in for either side via the pseudo-path "<file>:baseline".

Rows that carry a spine_serial_fraction (the parallel thread-scaling
entries) are additionally compared on it: a relative increase beyond 10%
prints a WARNING but never fails the run, even under --strict — wall-
clock phase fractions are noisier than throughput, and the Amdahl
trajectory is a trend to watch, not a merge gate.

Exit status is 0 unless --strict is given, in which case any row slower
than the tolerance fails the run. CI runs this informationally
(non-blocking): benchmark hosts are too noisy to gate merges on, but the
table in the log makes regressions visible the day they land.

Usage:
  bench_compare.py OLD.json NEW.json [--tolerance 0.10] [--strict]
  bench_compare.py BENCH_engine.json:baseline BENCH_engine.json
  bench_compare.py --self-test
"""

from __future__ import annotations

import argparse
import json
import re
import sys

# spine_serial_fraction regressions beyond this relative increase warn.
FRACTION_WARN_REL = 0.10

# Parallel thread-scaling rows carry the worker count in their name
# ("engine_cycles/n=4096/parallel/t=8"). The sweep enumerates the host's
# thread counts, so two machines legitimately produce different row sets;
# a t= row present on only one side is a host difference, not a vanished
# benchmark.
THREAD_ROW_RE = re.compile(r"/t=\d+(?:/|$)")


def _get(doc: object, *keys: str) -> object:
    """dict.get chained over `keys`, tolerating non-dict intermediates.

    Reports evolve additively (ft.bench_engine/1 had no "host", /2 hosts
    may predate "peak_rss_bytes"), so every identity lookup must survive a
    side that simply does not have the field yet — None, never KeyError.
    """
    for key in keys:
        if not isinstance(doc, dict):
            return None
        doc = doc.get(key)
    return doc


def parse_doc(
    doc: object, spec: str, use_baseline: bool = False
) -> tuple[dict[str, float], dict[str, float], dict[str, object]]:
    """Extracts ({name: cycles_per_sec}, {name: spine_serial_fraction},
    identity) from a parsed report document. Split out of load_rows so the
    self-test can drive it on synthetic documents."""
    if not isinstance(doc, dict):
        print(f"note: {spec} is not a JSON object; skipping that side")
        return {}, {}, {}
    section = doc.get("baseline", {}) if use_baseline else doc
    identity: dict[str, object] = {
        "schema": _get(doc, "schema"),
        "hardware_threads": _get(doc, "host", "hardware_threads"),
        "peak_rss_bytes": _get(doc, "host", "peak_rss_bytes"),
    }
    threads = identity["hardware_threads"]
    if not isinstance(threads, int) or threads <= 0:
        identity["hardware_threads"] = None
    rows: dict[str, float] = {}
    fractions: dict[str, float] = {}
    benchmarks = _get(section, "benchmarks")
    for entry in benchmarks if isinstance(benchmarks, list) else []:
        name = _get(entry, "name")
        rate = _get(entry, "cycles_per_sec")
        if isinstance(name, str) and isinstance(rate, (int, float)) and rate > 0:
            rows[name] = float(rate)
            frac = _get(entry, "spine_serial_fraction")
            if isinstance(frac, (int, float)) and frac >= 0:
                fractions[name] = float(frac)
    if not rows:
        # A side with no rows (e.g. ":baseline" on a report written before
        # baselines were embedded, or a filtered bench run) is skippable:
        # compare what exists rather than erroring out of the whole diff.
        print(f"note: no benchmark rows in {spec}; skipping that side")
    return rows, fractions, identity


def load_rows(
    spec: str,
) -> tuple[dict[str, float], dict[str, float], dict[str, object]]:
    """parse_doc over a file path or "<path>:baseline" pseudo-path."""
    use_baseline = spec.endswith(":baseline")
    path = spec[: -len(":baseline")] if use_baseline else spec
    with open(path) as f:
        doc = json.load(f)
    return parse_doc(doc, spec, use_baseline)


def fraction_warnings(
    old_fracs: dict[str, float],
    new_fracs: dict[str, float],
    rel: float = FRACTION_WARN_REL,
) -> list[tuple[str, float, float]]:
    """Rows whose spine_serial_fraction grew by more than `rel` relative
    (old 0 -> any positive new value also warns: the spine went from free
    to measurable). Returns (name, old, new) tuples, sorted by name."""
    out = []
    for name in sorted(set(old_fracs) & set(new_fracs)):
        old, new = old_fracs[name], new_fracs[name]
        if old <= 0.0:
            if new > 0.0:
                out.append((name, old, new))
        elif new > old * (1.0 + rel):
            out.append((name, old, new))
    return out


def classify(ratio: float, tolerance: float) -> str:
    if ratio < 1.0 - tolerance:
        return "SLOWER"
    if ratio > 1.0 + tolerance:
        return "faster"
    return "ok"


def compare(old_spec: str, new_spec: str, tolerance: float, strict: bool) -> int:
    old_rows, old_fracs, old_id = load_rows(old_spec)
    new_rows, new_fracs, new_id = load_rows(new_spec)
    old_schema, new_schema = old_id.get("schema"), new_id.get("schema")
    if old_schema != new_schema:
        # Additive schema bumps keep the benchmark rows comparable; say so
        # instead of failing (one side may predate the version field
        # entirely).
        print(
            f"note: schema versions differ "
            f"({old_schema or 'unversioned'} vs {new_schema or 'unversioned'}); "
            f"comparing the common benchmark rows"
        )
    old_threads = old_id.get("hardware_threads")
    new_threads = new_id.get("hardware_threads")
    if (
        old_threads is not None
        and new_threads is not None
        and old_threads != new_threads
    ):
        print(
            f"WARNING: reports come from different machines "
            f"({old_threads} vs {new_threads} hardware threads); "
            f"parallel-mode ratios are not comparable"
        )
    names = sorted(set(old_rows) | set(new_rows))
    if not names:
        print("note: nothing to compare")
        return 0
    width = max(len(n) for n in names)

    regressions = []
    print(f"{'benchmark':<{width}}  {'old c/s':>12}  {'new c/s':>12}  "
          f"{'ratio':>7}  verdict")
    for name in names:
        old = old_rows.get(name)
        new = new_rows.get(name)
        if old is None or new is None:
            side = "old" if old is None else "new"
            if THREAD_ROW_RE.search(name):
                # One-sided thread-scaling rows are expected whenever the
                # two reports come from hosts with different thread counts
                # (the sweep stops at hardware_threads); skip them instead
                # of flagging a phantom difference.
                print(f"{name:<{width}}  {'-':>12}  {'-':>12}  {'-':>7}  "
                      f"skipped: thread-count row missing from {side} "
                      f"(hosts sweep different t= ranges)")
            else:
                print(f"{name:<{width}}  {'-':>12}  {'-':>12}  {'-':>7}  "
                      f"missing from {side}")
            continue
        ratio = new / old
        verdict = classify(ratio, tolerance)
        if verdict == "SLOWER":
            regressions.append((name, ratio))
        print(f"{name:<{width}}  {old:>12.1f}  {new:>12.1f}  "
              f"{ratio:>6.2f}x  {verdict}")

    for name, old, new in fraction_warnings(old_fracs, new_fracs):
        print(
            f"WARNING: {name}: spine_serial_fraction regressed "
            f"{old:.4f} -> {new:.4f} "
            f"(> {FRACTION_WARN_REL:.0%} relative); the Amdahl spine is "
            f"growing back (informational, never fails the run)"
        )

    if regressions:
        print(f"\n{len(regressions)} row(s) slower than the "
              f"{tolerance:.0%} tolerance:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x")
        return 1 if strict else 0
    print("\nno regressions beyond tolerance")
    return 0


def self_test() -> int:
    """Unit-style checks over synthetic documents plus one end-to-end
    compare() through temp files. Exits nonzero on the first failure."""
    import os
    import tempfile

    def row(name, cps, frac=None):
        entry = {"name": name, "cycles_per_sec": cps}
        if frac is not None:
            entry["spine_serial_fraction"] = frac
        return entry

    old_doc = {
        "schema": "ft.bench_engine/2",
        "host": {"hardware_threads": 8},
        "benchmarks": [
            row("engine_cycles/n=4096/serial", 1000.0),
            row("engine_cycles/n=4096/parallel/t=2", 1500.0, 0.40),
            row("engine_cycles/n=4096/parallel/t=4", 2000.0, 0.30),
            # The 8-thread host's sweep goes one step further than the
            # 4-thread host's below: a one-sided thread row, skipped.
            row("engine_cycles/n=4096/parallel/t=8", 2600.0, 0.25),
        ],
        "baseline": {"benchmarks": [row("engine_cycles/n=4096/serial", 500.0)]},
    }
    new_doc = {
        "schema": "ft.bench_engine/2",
        "host": {"hardware_threads": 4},
        "benchmarks": [
            row("engine_cycles/n=4096/serial", 1010.0),
            row("engine_cycles/n=4096/parallel/t=2", 1490.0, 0.48),
            row("engine_cycles/n=4096/parallel/t=4", 800.0, 0.31),
        ],
    }

    rows, fracs, ident = parse_doc(old_doc, "old")
    assert rows["engine_cycles/n=4096/serial"] == 1000.0, rows
    assert fracs == {
        "engine_cycles/n=4096/parallel/t=2": 0.40,
        "engine_cycles/n=4096/parallel/t=4": 0.30,
        "engine_cycles/n=4096/parallel/t=8": 0.25,
    }, fracs
    assert ident["hardware_threads"] == 8, ident

    # The :baseline pseudo-section keeps the outer file's identity.
    brows, bfracs, bident = parse_doc(old_doc, "old:baseline", True)
    assert brows == {"engine_cycles/n=4096/serial": 500.0}, brows
    assert bfracs == {}, bfracs
    assert bident["hardware_threads"] == 8, bident

    # Degenerate inputs parse to empty, never raise.
    assert parse_doc([], "list") == ({}, {}, {})
    assert parse_doc({"benchmarks": "nope"}, "str")[0] == {}
    assert parse_doc({"benchmarks": [{"name": 3, "cycles_per_sec": -1}]},
                     "bad")[0] == {}

    assert classify(0.85, 0.10) == "SLOWER"
    assert classify(0.95, 0.10) == "ok"
    assert classify(1.05, 0.10) == "ok"
    assert classify(1.15, 0.10) == "faster"

    _, old_fracs, _ = parse_doc(old_doc, "old")
    _, new_fracs, _ = parse_doc(new_doc, "new")
    warned = fraction_warnings(old_fracs, new_fracs)
    # t=2 grew 0.40 -> 0.48 (+20%): warns. t=4 grew 0.30 -> 0.31 (+3.3%):
    # inside the 10% band, silent.
    assert [w[0] for w in warned] == [
        "engine_cycles/n=4096/parallel/t=2"
    ], warned
    # A fraction appearing from zero warns too.
    assert fraction_warnings({"a": 0.0}, {"a": 0.01}) == [("a", 0.0, 0.01)]
    assert fraction_warnings({"a": 0.0}, {"a": 0.0}) == []

    # Thread-scaling rows are recognized by the /t=N path segment only —
    # a benchmark merely named something-t=... must not match.
    assert THREAD_ROW_RE.search("engine_cycles/n=4096/parallel/t=8")
    assert THREAD_ROW_RE.search("x/t=2/warm")
    assert not THREAD_ROW_RE.search("engine_cycles/n=4096/serial")
    assert not THREAD_ROW_RE.search("engine_cycles/fmt=8/serial")

    # End to end: the t=4 throughput collapse is SLOWER but non-strict
    # compare still exits 0; strict exits 1; fraction warnings never flip
    # the exit code on their own; the one-sided t=8 row is skipped, never
    # a regression candidate (strict on identical-throughput docs that
    # differ only in the t=8 row stays 0).
    with tempfile.TemporaryDirectory() as tmp:
        old_path = os.path.join(tmp, "old.json")
        new_path = os.path.join(tmp, "new.json")
        with open(old_path, "w") as f:
            json.dump(old_doc, f)
        with open(new_path, "w") as f:
            json.dump(new_doc, f)
        assert compare(old_path, new_path, 0.10, strict=False) == 0
        assert compare(old_path, new_path, 0.10, strict=True) == 1
        same_doc = dict(old_doc)
        same_doc["benchmarks"] = [
            e for e in old_doc["benchmarks"] if "/t=8" not in e["name"]
        ]
        same_path = os.path.join(tmp, "same.json")
        with open(same_path, "w") as f:
            json.dump(same_doc, f)
        assert compare(old_path, same_path, 0.10, strict=True) == 0
        # A one-sided *non*-thread row still reports "missing from".
        gone_doc = dict(same_doc)
        gone_doc["benchmarks"] = [
            e for e in same_doc["benchmarks"] if e["name"] != "engine_cycles/n=4096/serial"
        ]
        gone_path = os.path.join(tmp, "gone.json")
        with open(gone_path, "w") as f:
            json.dump(gone_doc, f)
        assert compare(old_path, gone_path, 0.10, strict=True) == 0
        # Identical files: clean under strict even with fractions present.
        assert compare(new_path, new_path, 0.10, strict=True) == 0
        # Baseline pseudo-path still loads through the file route.
        assert compare(old_path + ":baseline", new_path, 0.10,
                       strict=False) == 0

    print("self-test ok")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_engine.json reports with noise tolerance."
    )
    parser.add_argument("old", nargs="?", help="baseline report (or <path>:baseline)")
    parser.add_argument("new", nargs="?", help="candidate report (or <path>:baseline)")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="relative change treated as noise (default 0.10)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 if any row is slower than the tolerance",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the built-in unit checks and exit",
    )
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if args.old is None or args.new is None:
        parser.error("OLD and NEW reports are required (or --self-test)")
    return compare(args.old, args.new, args.tolerance, args.strict)


if __name__ == "__main__":
    sys.exit(main())
