#!/usr/bin/env python3
"""Compare two BENCH_engine.json reports (schema ft.bench_engine/2).

Rows are matched by their "name" field and compared on cycles_per_sec.
Machine noise on shared runners easily reaches +/-10%, so differences
inside --tolerance (default 0.10) are reported as "ok"; larger moves are
labeled "faster" / "SLOWER". A file's embedded "baseline" section can
stand in for either side via the pseudo-path "<file>:baseline".

Exit status is 0 unless --strict is given, in which case any row slower
than the tolerance fails the run. CI runs this informationally
(non-blocking): benchmark hosts are too noisy to gate merges on, but the
table in the log makes regressions visible the day they land.

Usage:
  bench_compare.py OLD.json NEW.json [--tolerance 0.10] [--strict]
  bench_compare.py BENCH_engine.json:baseline BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import sys


def _get(doc: object, *keys: str) -> object:
    """dict.get chained over `keys`, tolerating non-dict intermediates.

    Reports evolve additively (ft.bench_engine/1 had no "host", /2 hosts
    may predate "peak_rss_bytes"), so every identity lookup must survive a
    side that simply does not have the field yet — None, never KeyError.
    """
    for key in keys:
        if not isinstance(doc, dict):
            return None
        doc = doc.get(key)
    return doc


def load_rows(spec: str) -> tuple[dict[str, float], dict[str, object]]:
    """Returns ({row name: cycles_per_sec}, identity) for a file path or
    "<path>:baseline" pseudo-path. Identity carries whatever of schema /
    hardware_threads / peak_rss_bytes the report has (None for fields the
    report predates — a baseline section has no host of its own: the
    surrounding file's host applies, since baselines are re-measured on
    the host that embeds them)."""
    use_baseline = spec.endswith(":baseline")
    path = spec[: -len(":baseline")] if use_baseline else spec
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        print(f"note: {spec} is not a JSON object; skipping that side")
        return {}, {}
    section = doc.get("baseline", {}) if use_baseline else doc
    identity: dict[str, object] = {
        "schema": _get(doc, "schema"),
        "hardware_threads": _get(doc, "host", "hardware_threads"),
        "peak_rss_bytes": _get(doc, "host", "peak_rss_bytes"),
    }
    threads = identity["hardware_threads"]
    if not isinstance(threads, int) or threads <= 0:
        identity["hardware_threads"] = None
    rows = {}
    benchmarks = _get(section, "benchmarks")
    for entry in benchmarks if isinstance(benchmarks, list) else []:
        name = _get(entry, "name")
        rate = _get(entry, "cycles_per_sec")
        if isinstance(name, str) and isinstance(rate, (int, float)) and rate > 0:
            rows[name] = float(rate)
    if not rows:
        # A side with no rows (e.g. ":baseline" on a report written before
        # baselines were embedded, or a filtered bench run) is skippable:
        # compare what exists rather than erroring out of the whole diff.
        print(f"note: no benchmark rows in {spec}; skipping that side")
    return rows, identity


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_engine.json reports with noise tolerance."
    )
    parser.add_argument("old", help="baseline report (or <path>:baseline)")
    parser.add_argument("new", help="candidate report (or <path>:baseline)")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="relative change treated as noise (default 0.10)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 if any row is slower than the tolerance",
    )
    args = parser.parse_args()

    old_rows, old_id = load_rows(args.old)
    new_rows, new_id = load_rows(args.new)
    old_schema, new_schema = old_id.get("schema"), new_id.get("schema")
    if old_schema != new_schema:
        # Additive schema bumps keep the benchmark rows comparable; say so
        # instead of failing (one side may predate the version field
        # entirely).
        print(
            f"note: schema versions differ "
            f"({old_schema or 'unversioned'} vs {new_schema or 'unversioned'}); "
            f"comparing the common benchmark rows"
        )
    old_threads = old_id.get("hardware_threads")
    new_threads = new_id.get("hardware_threads")
    if (
        old_threads is not None
        and new_threads is not None
        and old_threads != new_threads
    ):
        print(
            f"WARNING: reports come from different machines "
            f"({old_threads} vs {new_threads} hardware threads); "
            f"parallel-mode ratios are not comparable"
        )
    names = sorted(set(old_rows) | set(new_rows))
    if not names:
        print("note: nothing to compare")
        return 0
    width = max(len(n) for n in names)

    regressions = []
    print(f"{'benchmark':<{width}}  {'old c/s':>12}  {'new c/s':>12}  "
          f"{'ratio':>7}  verdict")
    for name in names:
        old = old_rows.get(name)
        new = new_rows.get(name)
        if old is None or new is None:
            side = "old" if old is None else "new"
            print(f"{name:<{width}}  {'-':>12}  {'-':>12}  {'-':>7}  "
                  f"missing from {side}")
            continue
        ratio = new / old
        if ratio < 1.0 - args.tolerance:
            verdict = "SLOWER"
            regressions.append((name, ratio))
        elif ratio > 1.0 + args.tolerance:
            verdict = "faster"
        else:
            verdict = "ok"
        print(f"{name:<{width}}  {old:>12.1f}  {new:>12.1f}  "
              f"{ratio:>6.2f}x  {verdict}")

    if regressions:
        print(f"\n{len(regressions)} row(s) slower than the "
              f"{args.tolerance:.0%} tolerance:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x")
        return 1 if args.strict else 0
    print("\nno regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
