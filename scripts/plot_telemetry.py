#!/usr/bin/env python3
"""Render a congestion-observatory heatmap from telemetry JSONL.

Input is the <base>.jsonl written by `ftsim --telemetry` (or any
TelemetryProbe::write_heatmap_jsonl output): one JSON object per line,
"series" lines carrying per-window samples (per-level lines additionally
carry "level" and "utilization"), plus one "top_channels" and one
"latency" summary line.

Output is an ASCII level x time utilization heatmap plus the hottest
channels and the latency digest — stdlib only, so it runs anywhere the
repo builds. When matplotlib is importable and --png is given, the same
heatmap is also rendered as an image; without matplotlib the flag
degrades to a note (no new dependencies, ever).

Usage:
  plot_telemetry.py telemetry.jsonl [--series pending] [--png out.png]
"""

from __future__ import annotations

import argparse
import json
import sys

SHADES = " .:-=+*#%@"


def load(path: str) -> dict:
    """Parses the JSONL into {"levels", "series", "top_channels",
    "latency"}; unknown line types are ignored (forward compatibility)."""
    levels: dict[int, list[dict]] = {}
    series: dict[str, list[dict]] = {}
    top: list[dict] = []
    latency: dict = {}
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                print(f"warning: {path}:{lineno}: unparseable line ({e})",
                      file=sys.stderr)
                continue
            kind = obj.get("type")
            if kind == "series" and "level" in obj:
                levels.setdefault(int(obj["level"]), []).append(obj)
            elif kind == "series":
                series.setdefault(str(obj.get("name")), []).append(obj)
            elif kind == "top_channels":
                top = obj.get("channels", [])
            elif kind == "latency":
                latency = obj
    return {"levels": levels, "series": series, "top_channels": top,
            "latency": latency}


def heatmap_rows(levels: dict[int, list[dict]]) -> list[tuple[int, list[float]]]:
    """One (level, per-window utilization) row per level. Rings downsample
    independently, so rows may have different window counts; each row is
    rendered over its own windows (time always spans the full run)."""
    rows = []
    for lvl in sorted(levels):
        utils = [float(s.get("utilization", 0.0)) for s in levels[lvl]]
        rows.append((lvl, utils))
    return rows


def render_ascii(rows: list[tuple[int, list[float]]], width: int) -> None:
    print(f"\nutilization heatmap (level x time, {width} columns, "
          f"shade ramp '{SHADES}')")
    for lvl, utils in rows:
        if not utils:
            print(f"  L{lvl:<3} (no samples)")
            continue
        # Resample the row to the display width by averaging each bucket.
        cells = []
        for col in range(width):
            lo = col * len(utils) // width
            hi = max(lo + 1, (col + 1) * len(utils) // width)
            bucket = utils[lo:hi]
            cells.append(sum(bucket) / len(bucket))
        line = "".join(
            SHADES[min(len(SHADES) - 1, int(u * (len(SHADES) - 1) + 0.5))]
            for u in cells)
        print(f"  L{lvl:<3} |{line}| peak {max(utils):.3f}")


def render_series(name: str, samples: list[dict], width: int) -> None:
    values = []
    for s in samples:
        count = s.get("count", 0)
        values.append(float(s.get("value", 0)) / count if count else 0.0)
    if not values:
        print(f"note: series '{name}' has no samples")
        return
    peak = max(values) or 1.0
    print(f"\n{name} (per-cycle mean, peak {peak:.1f})")
    cells = []
    for col in range(width):
        lo = col * len(values) // width
        hi = max(lo + 1, (col + 1) * len(values) // width)
        bucket = values[lo:hi]
        cells.append(sum(bucket) / len(bucket))
    line = "".join(
        SHADES[min(len(SHADES) - 1, int(v / peak * (len(SHADES) - 1) + 0.5))]
        for v in cells)
    print(f"  |{line}|")


def render_png(rows: list[tuple[int, list[float]]], out: str,
               width: int) -> None:
    try:
        import matplotlib  # noqa: F401 — optional, never required

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print(f"note: matplotlib unavailable; skipping {out} "
              f"(ASCII heatmap above is the fallback)")
        return
    grid = []
    for _, utils in rows:
        resampled = []
        for col in range(width):
            lo = col * len(utils) // width if utils else 0
            hi = max(lo + 1, (col + 1) * len(utils) // width) if utils else 1
            bucket = utils[lo:hi] if utils else [0.0]
            resampled.append(sum(bucket) / len(bucket))
        grid.append(resampled)
    fig, ax = plt.subplots(figsize=(10, max(2, len(rows) * 0.4)))
    im = ax.imshow(grid, aspect="auto", cmap="inferno", vmin=0.0, vmax=1.0)
    ax.set_xlabel("time (window index)")
    ax.set_ylabel("tree level (root at top)")
    ax.set_yticks(range(len(rows)), [f"L{lvl}" for lvl, _ in rows])
    fig.colorbar(im, label="utilization")
    fig.tight_layout()
    fig.savefig(out, dpi=120)
    print(f"wrote {out}")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Render telemetry JSONL as a level x time heatmap.")
    parser.add_argument("jsonl", help="TelemetryProbe JSONL export")
    parser.add_argument("--width", type=int, default=64,
                        help="heatmap columns (default 64)")
    parser.add_argument("--series", action="append", default=[],
                        help="also chart a named global series "
                             "(pending, losses, ...); repeatable")
    parser.add_argument("--png", help="also render a PNG via matplotlib "
                                      "when available (optional)")
    args = parser.parse_args()

    data = load(args.jsonl)
    rows = heatmap_rows(data["levels"])
    if not rows:
        print("no per-level series found "
              "(was the run executed with --telemetry?)")
        return 1
    render_ascii(rows, args.width)

    for name in args.series:
        render_series(name, data["series"].get(name, []), args.width)

    if data["top_channels"]:
        print("\nhottest channels (space-saving sketch; count overestimates "
              "by at most 'error'):")
        for e in data["top_channels"][:10]:
            print(f"  channel {e.get('channel')} (level {e.get('level')}): "
                  f"count {e.get('count')} error {e.get('error')}")
    lat = data["latency"]
    if lat:
        for key in ("latency", "stretch"):
            d = lat.get(key)
            if not isinstance(d, dict):
                continue
            print(f"{key}: p50 {d.get('p50')} p95 {d.get('p95')} "
                  f"p99 {d.get('p99')} p999 {d.get('p999')} "
                  f"mean {d.get('mean'):.3f} max {d.get('max')}")

    if args.png:
        render_png(rows, args.png, args.width)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        sys.exit(0)
