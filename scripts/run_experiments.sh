#!/bin/sh
# Regenerates every experiment table (E1-E17 + microbenchmarks) from a
# configured build directory (default: build). Output mirrors
# bench_output.txt at the repository root. Machine-readable artifacts —
# the schema-versioned report_*.json RunReports, BENCH_*.json, and the
# telemetry_*.csv/.jsonl heatmaps — are collected into a reports
# directory (default: reports).
#
# A failing experiment does not abort the sweep: every binary runs, the
# failures are listed at the end, and the script exits nonzero so CI
# surfaces them (gate experiments like exp_utilization and exp_scaleout
# signal violations through their exit codes).
BUILD_DIR="${1:-build}"
REPORT_DIR="${2:-reports}"
mkdir -p "$REPORT_DIR" || exit 1
FAILED=""
for b in "$BUILD_DIR"/bench/*; do
  if [ ! -f "$b" ] || [ ! -x "$b" ]; then continue; fi
  echo
  echo "############ $b ############"
  if ! "$b"; then
    status=$?
    echo "EXPERIMENT FAILED: $b (exit $status)"
    FAILED="$FAILED $(basename "$b")"
  fi
done
for f in report_*.json BENCH_*.json telemetry_*.csv telemetry_*.jsonl; do
  if [ -f "$f" ]; then mv "$f" "$REPORT_DIR/$f"; fi
done
echo
echo "collected artifacts into $REPORT_DIR/:"
ls -1 "$REPORT_DIR"
if [ -n "$FAILED" ]; then
  echo
  echo "FAILED experiments:$FAILED"
  exit 1
fi
