#!/bin/sh
# Regenerates every experiment table (E1-E16 + microbenchmarks) from a
# configured build directory (default: build). Output mirrors
# bench_output.txt at the repository root. Machine-readable artifacts —
# the schema-versioned report_*.json RunReports and BENCH_*.json — are
# collected into a reports directory (default: reports).
set -e
BUILD_DIR="${1:-build}"
REPORT_DIR="${2:-reports}"
mkdir -p "$REPORT_DIR"
for b in "$BUILD_DIR"/bench/*; do
  if [ ! -f "$b" ] || [ ! -x "$b" ]; then continue; fi
  echo
  echo "############ $b ############"
  "$b"
done
for f in report_*.json BENCH_*.json; do
  if [ -f "$f" ]; then mv "$f" "$REPORT_DIR/$f"; fi
done
echo
echo "collected RunReports into $REPORT_DIR/:"
ls -1 "$REPORT_DIR"
