#!/bin/sh
# Regenerates every experiment table (E1-E15 + microbenchmarks) from a
# configured build directory (default: build). Output mirrors
# bench_output.txt at the repository root.
set -e
BUILD_DIR="${1:-build}"
for b in "$BUILD_DIR"/bench/*; do
  echo
  echo "############ $b ############"
  "$b"
done
