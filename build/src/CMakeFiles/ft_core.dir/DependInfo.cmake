
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/capacity.cpp" "src/CMakeFiles/ft_core.dir/core/capacity.cpp.o" "gcc" "src/CMakeFiles/ft_core.dir/core/capacity.cpp.o.d"
  "/root/repo/src/core/faults.cpp" "src/CMakeFiles/ft_core.dir/core/faults.cpp.o" "gcc" "src/CMakeFiles/ft_core.dir/core/faults.cpp.o.d"
  "/root/repo/src/core/io.cpp" "src/CMakeFiles/ft_core.dir/core/io.cpp.o" "gcc" "src/CMakeFiles/ft_core.dir/core/io.cpp.o.d"
  "/root/repo/src/core/load.cpp" "src/CMakeFiles/ft_core.dir/core/load.cpp.o" "gcc" "src/CMakeFiles/ft_core.dir/core/load.cpp.o.d"
  "/root/repo/src/core/offline_scheduler.cpp" "src/CMakeFiles/ft_core.dir/core/offline_scheduler.cpp.o" "gcc" "src/CMakeFiles/ft_core.dir/core/offline_scheduler.cpp.o.d"
  "/root/repo/src/core/online_router.cpp" "src/CMakeFiles/ft_core.dir/core/online_router.cpp.o" "gcc" "src/CMakeFiles/ft_core.dir/core/online_router.cpp.o.d"
  "/root/repo/src/core/reuse_scheduler.cpp" "src/CMakeFiles/ft_core.dir/core/reuse_scheduler.cpp.o" "gcc" "src/CMakeFiles/ft_core.dir/core/reuse_scheduler.cpp.o.d"
  "/root/repo/src/core/schedule_stats.cpp" "src/CMakeFiles/ft_core.dir/core/schedule_stats.cpp.o" "gcc" "src/CMakeFiles/ft_core.dir/core/schedule_stats.cpp.o.d"
  "/root/repo/src/core/topology.cpp" "src/CMakeFiles/ft_core.dir/core/topology.cpp.o" "gcc" "src/CMakeFiles/ft_core.dir/core/topology.cpp.o.d"
  "/root/repo/src/core/traffic.cpp" "src/CMakeFiles/ft_core.dir/core/traffic.cpp.o" "gcc" "src/CMakeFiles/ft_core.dir/core/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
