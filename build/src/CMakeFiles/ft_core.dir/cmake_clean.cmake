file(REMOVE_RECURSE
  "CMakeFiles/ft_core.dir/core/capacity.cpp.o"
  "CMakeFiles/ft_core.dir/core/capacity.cpp.o.d"
  "CMakeFiles/ft_core.dir/core/faults.cpp.o"
  "CMakeFiles/ft_core.dir/core/faults.cpp.o.d"
  "CMakeFiles/ft_core.dir/core/io.cpp.o"
  "CMakeFiles/ft_core.dir/core/io.cpp.o.d"
  "CMakeFiles/ft_core.dir/core/load.cpp.o"
  "CMakeFiles/ft_core.dir/core/load.cpp.o.d"
  "CMakeFiles/ft_core.dir/core/offline_scheduler.cpp.o"
  "CMakeFiles/ft_core.dir/core/offline_scheduler.cpp.o.d"
  "CMakeFiles/ft_core.dir/core/online_router.cpp.o"
  "CMakeFiles/ft_core.dir/core/online_router.cpp.o.d"
  "CMakeFiles/ft_core.dir/core/reuse_scheduler.cpp.o"
  "CMakeFiles/ft_core.dir/core/reuse_scheduler.cpp.o.d"
  "CMakeFiles/ft_core.dir/core/schedule_stats.cpp.o"
  "CMakeFiles/ft_core.dir/core/schedule_stats.cpp.o.d"
  "CMakeFiles/ft_core.dir/core/topology.cpp.o"
  "CMakeFiles/ft_core.dir/core/topology.cpp.o.d"
  "CMakeFiles/ft_core.dir/core/traffic.cpp.o"
  "CMakeFiles/ft_core.dir/core/traffic.cpp.o.d"
  "libft_core.a"
  "libft_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
