# Empty dependencies file for ft_sim.
# This may be replaced when dependencies are built.
