file(REMOVE_RECURSE
  "CMakeFiles/ft_sim.dir/sim/experiment.cpp.o"
  "CMakeFiles/ft_sim.dir/sim/experiment.cpp.o.d"
  "CMakeFiles/ft_sim.dir/sim/universality.cpp.o"
  "CMakeFiles/ft_sim.dir/sim/universality.cpp.o.d"
  "libft_sim.a"
  "libft_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
