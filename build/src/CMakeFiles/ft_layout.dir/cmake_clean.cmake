file(REMOVE_RECURSE
  "CMakeFiles/ft_layout.dir/layout/balanced.cpp.o"
  "CMakeFiles/ft_layout.dir/layout/balanced.cpp.o.d"
  "CMakeFiles/ft_layout.dir/layout/decomposition.cpp.o"
  "CMakeFiles/ft_layout.dir/layout/decomposition.cpp.o.d"
  "CMakeFiles/ft_layout.dir/layout/pearls.cpp.o"
  "CMakeFiles/ft_layout.dir/layout/pearls.cpp.o.d"
  "CMakeFiles/ft_layout.dir/layout/vlsi_model.cpp.o"
  "CMakeFiles/ft_layout.dir/layout/vlsi_model.cpp.o.d"
  "libft_layout.a"
  "libft_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
