# Empty dependencies file for ft_layout.
# This may be replaced when dependencies are built.
