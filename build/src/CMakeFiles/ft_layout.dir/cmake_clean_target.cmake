file(REMOVE_RECURSE
  "libft_layout.a"
)
