
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/balanced.cpp" "src/CMakeFiles/ft_layout.dir/layout/balanced.cpp.o" "gcc" "src/CMakeFiles/ft_layout.dir/layout/balanced.cpp.o.d"
  "/root/repo/src/layout/decomposition.cpp" "src/CMakeFiles/ft_layout.dir/layout/decomposition.cpp.o" "gcc" "src/CMakeFiles/ft_layout.dir/layout/decomposition.cpp.o.d"
  "/root/repo/src/layout/pearls.cpp" "src/CMakeFiles/ft_layout.dir/layout/pearls.cpp.o" "gcc" "src/CMakeFiles/ft_layout.dir/layout/pearls.cpp.o.d"
  "/root/repo/src/layout/vlsi_model.cpp" "src/CMakeFiles/ft_layout.dir/layout/vlsi_model.cpp.o" "gcc" "src/CMakeFiles/ft_layout.dir/layout/vlsi_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
