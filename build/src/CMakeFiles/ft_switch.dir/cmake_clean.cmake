file(REMOVE_RECURSE
  "CMakeFiles/ft_switch.dir/switch/bitserial.cpp.o"
  "CMakeFiles/ft_switch.dir/switch/bitserial.cpp.o.d"
  "CMakeFiles/ft_switch.dir/switch/concentrator.cpp.o"
  "CMakeFiles/ft_switch.dir/switch/concentrator.cpp.o.d"
  "CMakeFiles/ft_switch.dir/switch/matching.cpp.o"
  "CMakeFiles/ft_switch.dir/switch/matching.cpp.o.d"
  "CMakeFiles/ft_switch.dir/switch/node.cpp.o"
  "CMakeFiles/ft_switch.dir/switch/node.cpp.o.d"
  "libft_switch.a"
  "libft_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
