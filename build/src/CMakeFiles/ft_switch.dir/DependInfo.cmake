
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/switch/bitserial.cpp" "src/CMakeFiles/ft_switch.dir/switch/bitserial.cpp.o" "gcc" "src/CMakeFiles/ft_switch.dir/switch/bitserial.cpp.o.d"
  "/root/repo/src/switch/concentrator.cpp" "src/CMakeFiles/ft_switch.dir/switch/concentrator.cpp.o" "gcc" "src/CMakeFiles/ft_switch.dir/switch/concentrator.cpp.o.d"
  "/root/repo/src/switch/matching.cpp" "src/CMakeFiles/ft_switch.dir/switch/matching.cpp.o" "gcc" "src/CMakeFiles/ft_switch.dir/switch/matching.cpp.o.d"
  "/root/repo/src/switch/node.cpp" "src/CMakeFiles/ft_switch.dir/switch/node.cpp.o" "gcc" "src/CMakeFiles/ft_switch.dir/switch/node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
