# Empty compiler generated dependencies file for ft_switch.
# This may be replaced when dependencies are built.
