file(REMOVE_RECURSE
  "libft_switch.a"
)
