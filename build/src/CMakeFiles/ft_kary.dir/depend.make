# Empty dependencies file for ft_kary.
# This may be replaced when dependencies are built.
