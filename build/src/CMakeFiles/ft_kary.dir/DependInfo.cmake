
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kary/kary_routing.cpp" "src/CMakeFiles/ft_kary.dir/kary/kary_routing.cpp.o" "gcc" "src/CMakeFiles/ft_kary.dir/kary/kary_routing.cpp.o.d"
  "/root/repo/src/kary/kary_sim.cpp" "src/CMakeFiles/ft_kary.dir/kary/kary_sim.cpp.o" "gcc" "src/CMakeFiles/ft_kary.dir/kary/kary_sim.cpp.o.d"
  "/root/repo/src/kary/kary_tree.cpp" "src/CMakeFiles/ft_kary.dir/kary/kary_tree.cpp.o" "gcc" "src/CMakeFiles/ft_kary.dir/kary/kary_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
