file(REMOVE_RECURSE
  "CMakeFiles/ft_kary.dir/kary/kary_routing.cpp.o"
  "CMakeFiles/ft_kary.dir/kary/kary_routing.cpp.o.d"
  "CMakeFiles/ft_kary.dir/kary/kary_sim.cpp.o"
  "CMakeFiles/ft_kary.dir/kary/kary_sim.cpp.o.d"
  "CMakeFiles/ft_kary.dir/kary/kary_tree.cpp.o"
  "CMakeFiles/ft_kary.dir/kary/kary_tree.cpp.o.d"
  "libft_kary.a"
  "libft_kary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_kary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
