file(REMOVE_RECURSE
  "libft_kary.a"
)
