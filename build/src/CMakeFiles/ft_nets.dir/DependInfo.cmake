
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nets/benes.cpp" "src/CMakeFiles/ft_nets.dir/nets/benes.cpp.o" "gcc" "src/CMakeFiles/ft_nets.dir/nets/benes.cpp.o.d"
  "/root/repo/src/nets/builders.cpp" "src/CMakeFiles/ft_nets.dir/nets/builders.cpp.o" "gcc" "src/CMakeFiles/ft_nets.dir/nets/builders.cpp.o.d"
  "/root/repo/src/nets/layouts.cpp" "src/CMakeFiles/ft_nets.dir/nets/layouts.cpp.o" "gcc" "src/CMakeFiles/ft_nets.dir/nets/layouts.cpp.o.d"
  "/root/repo/src/nets/network.cpp" "src/CMakeFiles/ft_nets.dir/nets/network.cpp.o" "gcc" "src/CMakeFiles/ft_nets.dir/nets/network.cpp.o.d"
  "/root/repo/src/nets/routing.cpp" "src/CMakeFiles/ft_nets.dir/nets/routing.cpp.o" "gcc" "src/CMakeFiles/ft_nets.dir/nets/routing.cpp.o.d"
  "/root/repo/src/nets/store_forward.cpp" "src/CMakeFiles/ft_nets.dir/nets/store_forward.cpp.o" "gcc" "src/CMakeFiles/ft_nets.dir/nets/store_forward.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
