file(REMOVE_RECURSE
  "CMakeFiles/ft_nets.dir/nets/benes.cpp.o"
  "CMakeFiles/ft_nets.dir/nets/benes.cpp.o.d"
  "CMakeFiles/ft_nets.dir/nets/builders.cpp.o"
  "CMakeFiles/ft_nets.dir/nets/builders.cpp.o.d"
  "CMakeFiles/ft_nets.dir/nets/layouts.cpp.o"
  "CMakeFiles/ft_nets.dir/nets/layouts.cpp.o.d"
  "CMakeFiles/ft_nets.dir/nets/network.cpp.o"
  "CMakeFiles/ft_nets.dir/nets/network.cpp.o.d"
  "CMakeFiles/ft_nets.dir/nets/routing.cpp.o"
  "CMakeFiles/ft_nets.dir/nets/routing.cpp.o.d"
  "CMakeFiles/ft_nets.dir/nets/store_forward.cpp.o"
  "CMakeFiles/ft_nets.dir/nets/store_forward.cpp.o.d"
  "libft_nets.a"
  "libft_nets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_nets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
