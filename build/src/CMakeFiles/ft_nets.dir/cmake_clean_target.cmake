file(REMOVE_RECURSE
  "libft_nets.a"
)
