# Empty compiler generated dependencies file for ft_nets.
# This may be replaced when dependencies are built.
