file(REMOVE_RECURSE
  "CMakeFiles/ft_util.dir/util/prng.cpp.o"
  "CMakeFiles/ft_util.dir/util/prng.cpp.o.d"
  "CMakeFiles/ft_util.dir/util/stats.cpp.o"
  "CMakeFiles/ft_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/ft_util.dir/util/table.cpp.o"
  "CMakeFiles/ft_util.dir/util/table.cpp.o.d"
  "CMakeFiles/ft_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/ft_util.dir/util/thread_pool.cpp.o.d"
  "libft_util.a"
  "libft_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
