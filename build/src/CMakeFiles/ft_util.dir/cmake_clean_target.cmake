file(REMOVE_RECURSE
  "libft_util.a"
)
