# Empty dependencies file for exp_thm10_universality.
# This may be replaced when dependencies are built.
