file(REMOVE_RECURSE
  "CMakeFiles/exp_thm10_universality.dir/exp_thm10_universality.cpp.o"
  "CMakeFiles/exp_thm10_universality.dir/exp_thm10_universality.cpp.o.d"
  "exp_thm10_universality"
  "exp_thm10_universality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_thm10_universality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
