file(REMOVE_RECURSE
  "CMakeFiles/exp_cor2_slack.dir/exp_cor2_slack.cpp.o"
  "CMakeFiles/exp_cor2_slack.dir/exp_cor2_slack.cpp.o.d"
  "exp_cor2_slack"
  "exp_cor2_slack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_cor2_slack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
