# Empty compiler generated dependencies file for exp_cor2_slack.
# This may be replaced when dependencies are built.
