# Empty dependencies file for exp_online_routing.
# This may be replaced when dependencies are built.
