file(REMOVE_RECURSE
  "CMakeFiles/exp_online_routing.dir/exp_online_routing.cpp.o"
  "CMakeFiles/exp_online_routing.dir/exp_online_routing.cpp.o.d"
  "exp_online_routing"
  "exp_online_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_online_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
