# Empty dependencies file for exp_thm1_offline.
# This may be replaced when dependencies are built.
