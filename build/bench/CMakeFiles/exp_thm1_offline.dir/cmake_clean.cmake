file(REMOVE_RECURSE
  "CMakeFiles/exp_thm1_offline.dir/exp_thm1_offline.cpp.o"
  "CMakeFiles/exp_thm1_offline.dir/exp_thm1_offline.cpp.o.d"
  "exp_thm1_offline"
  "exp_thm1_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_thm1_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
