file(REMOVE_RECURSE
  "CMakeFiles/exp_fault_tolerance.dir/exp_fault_tolerance.cpp.o"
  "CMakeFiles/exp_fault_tolerance.dir/exp_fault_tolerance.cpp.o.d"
  "exp_fault_tolerance"
  "exp_fault_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fault_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
