# Empty dependencies file for exp_fig2_bitserial.
# This may be replaced when dependencies are built.
