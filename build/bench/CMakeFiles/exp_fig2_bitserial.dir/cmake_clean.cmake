file(REMOVE_RECURSE
  "CMakeFiles/exp_fig2_bitserial.dir/exp_fig2_bitserial.cpp.o"
  "CMakeFiles/exp_fig2_bitserial.dir/exp_fig2_bitserial.cpp.o.d"
  "exp_fig2_bitserial"
  "exp_fig2_bitserial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig2_bitserial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
