file(REMOVE_RECURSE
  "CMakeFiles/exp_utilization.dir/exp_utilization.cpp.o"
  "CMakeFiles/exp_utilization.dir/exp_utilization.cpp.o.d"
  "exp_utilization"
  "exp_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
