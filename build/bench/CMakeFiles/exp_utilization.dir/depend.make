# Empty dependencies file for exp_utilization.
# This may be replaced when dependencies are built.
