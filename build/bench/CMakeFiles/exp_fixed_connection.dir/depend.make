# Empty dependencies file for exp_fixed_connection.
# This may be replaced when dependencies are built.
