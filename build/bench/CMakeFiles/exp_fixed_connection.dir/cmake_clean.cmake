file(REMOVE_RECURSE
  "CMakeFiles/exp_fixed_connection.dir/exp_fixed_connection.cpp.o"
  "CMakeFiles/exp_fixed_connection.dir/exp_fixed_connection.cpp.o.d"
  "exp_fixed_connection"
  "exp_fixed_connection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fixed_connection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
