# Empty dependencies file for exp_kary_extension.
# This may be replaced when dependencies are built.
