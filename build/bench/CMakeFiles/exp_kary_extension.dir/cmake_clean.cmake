file(REMOVE_RECURSE
  "CMakeFiles/exp_kary_extension.dir/exp_kary_extension.cpp.o"
  "CMakeFiles/exp_kary_extension.dir/exp_kary_extension.cpp.o.d"
  "exp_kary_extension"
  "exp_kary_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_kary_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
