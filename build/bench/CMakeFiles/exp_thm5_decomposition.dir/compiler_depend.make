# Empty compiler generated dependencies file for exp_thm5_decomposition.
# This may be replaced when dependencies are built.
