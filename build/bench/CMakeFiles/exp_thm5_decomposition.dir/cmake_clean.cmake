file(REMOVE_RECURSE
  "CMakeFiles/exp_thm5_decomposition.dir/exp_thm5_decomposition.cpp.o"
  "CMakeFiles/exp_thm5_decomposition.dir/exp_thm5_decomposition.cpp.o.d"
  "exp_thm5_decomposition"
  "exp_thm5_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_thm5_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
