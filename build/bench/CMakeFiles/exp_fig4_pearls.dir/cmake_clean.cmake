file(REMOVE_RECURSE
  "CMakeFiles/exp_fig4_pearls.dir/exp_fig4_pearls.cpp.o"
  "CMakeFiles/exp_fig4_pearls.dir/exp_fig4_pearls.cpp.o.d"
  "exp_fig4_pearls"
  "exp_fig4_pearls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig4_pearls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
