# Empty compiler generated dependencies file for exp_fig4_pearls.
# This may be replaced when dependencies are built.
