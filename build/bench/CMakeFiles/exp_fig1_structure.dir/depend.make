# Empty dependencies file for exp_fig1_structure.
# This may be replaced when dependencies are built.
