file(REMOVE_RECURSE
  "CMakeFiles/exp_fig1_structure.dir/exp_fig1_structure.cpp.o"
  "CMakeFiles/exp_fig1_structure.dir/exp_fig1_structure.cpp.o.d"
  "exp_fig1_structure"
  "exp_fig1_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig1_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
