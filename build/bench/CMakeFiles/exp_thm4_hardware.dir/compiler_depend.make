# Empty compiler generated dependencies file for exp_thm4_hardware.
# This may be replaced when dependencies are built.
