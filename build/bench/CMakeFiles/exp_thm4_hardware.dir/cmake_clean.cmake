file(REMOVE_RECURSE
  "CMakeFiles/exp_thm4_hardware.dir/exp_thm4_hardware.cpp.o"
  "CMakeFiles/exp_thm4_hardware.dir/exp_thm4_hardware.cpp.o.d"
  "exp_thm4_hardware"
  "exp_thm4_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_thm4_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
