file(REMOVE_RECURSE
  "CMakeFiles/exp_thm8_balanced.dir/exp_thm8_balanced.cpp.o"
  "CMakeFiles/exp_thm8_balanced.dir/exp_thm8_balanced.cpp.o.d"
  "exp_thm8_balanced"
  "exp_thm8_balanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_thm8_balanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
