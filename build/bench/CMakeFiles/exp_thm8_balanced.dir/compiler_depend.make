# Empty compiler generated dependencies file for exp_thm8_balanced.
# This may be replaced when dependencies are built.
