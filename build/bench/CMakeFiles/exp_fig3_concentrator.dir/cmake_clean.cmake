file(REMOVE_RECURSE
  "CMakeFiles/exp_fig3_concentrator.dir/exp_fig3_concentrator.cpp.o"
  "CMakeFiles/exp_fig3_concentrator.dir/exp_fig3_concentrator.cpp.o.d"
  "exp_fig3_concentrator"
  "exp_fig3_concentrator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig3_concentrator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
