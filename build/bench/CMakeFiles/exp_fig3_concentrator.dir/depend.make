# Empty dependencies file for exp_fig3_concentrator.
# This may be replaced when dependencies are built.
