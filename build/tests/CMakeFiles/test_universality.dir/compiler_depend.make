# Empty compiler generated dependencies file for test_universality.
# This may be replaced when dependencies are built.
