file(REMOVE_RECURSE
  "CMakeFiles/test_universality.dir/test_universality.cpp.o"
  "CMakeFiles/test_universality.dir/test_universality.cpp.o.d"
  "test_universality"
  "test_universality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_universality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
