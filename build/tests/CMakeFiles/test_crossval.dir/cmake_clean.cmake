file(REMOVE_RECURSE
  "CMakeFiles/test_crossval.dir/test_crossval.cpp.o"
  "CMakeFiles/test_crossval.dir/test_crossval.cpp.o.d"
  "test_crossval"
  "test_crossval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crossval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
