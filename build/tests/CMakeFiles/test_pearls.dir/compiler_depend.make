# Empty compiler generated dependencies file for test_pearls.
# This may be replaced when dependencies are built.
