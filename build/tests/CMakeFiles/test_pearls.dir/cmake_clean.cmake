file(REMOVE_RECURSE
  "CMakeFiles/test_pearls.dir/test_pearls.cpp.o"
  "CMakeFiles/test_pearls.dir/test_pearls.cpp.o.d"
  "test_pearls"
  "test_pearls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pearls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
