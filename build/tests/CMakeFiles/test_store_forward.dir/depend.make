# Empty dependencies file for test_store_forward.
# This may be replaced when dependencies are built.
