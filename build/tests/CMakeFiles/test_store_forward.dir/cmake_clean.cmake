file(REMOVE_RECURSE
  "CMakeFiles/test_store_forward.dir/test_store_forward.cpp.o"
  "CMakeFiles/test_store_forward.dir/test_store_forward.cpp.o.d"
  "test_store_forward"
  "test_store_forward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_store_forward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
