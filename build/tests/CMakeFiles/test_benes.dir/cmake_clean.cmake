file(REMOVE_RECURSE
  "CMakeFiles/test_benes.dir/test_benes.cpp.o"
  "CMakeFiles/test_benes.dir/test_benes.cpp.o.d"
  "test_benes"
  "test_benes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
