# Empty compiler generated dependencies file for test_bitserial.
# This may be replaced when dependencies are built.
