# Empty dependencies file for test_balanced.
# This may be replaced when dependencies are built.
