# Empty compiler generated dependencies file for example_finite_element.
# This may be replaced when dependencies are built.
