file(REMOVE_RECURSE
  "CMakeFiles/example_finite_element.dir/finite_element.cpp.o"
  "CMakeFiles/example_finite_element.dir/finite_element.cpp.o.d"
  "example_finite_element"
  "example_finite_element.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_finite_element.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
