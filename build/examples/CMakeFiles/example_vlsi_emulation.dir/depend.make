# Empty dependencies file for example_vlsi_emulation.
# This may be replaced when dependencies are built.
