file(REMOVE_RECURSE
  "CMakeFiles/example_vlsi_emulation.dir/vlsi_emulation.cpp.o"
  "CMakeFiles/example_vlsi_emulation.dir/vlsi_emulation.cpp.o.d"
  "example_vlsi_emulation"
  "example_vlsi_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_vlsi_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
