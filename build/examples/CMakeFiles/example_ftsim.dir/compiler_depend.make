# Empty compiler generated dependencies file for example_ftsim.
# This may be replaced when dependencies are built.
