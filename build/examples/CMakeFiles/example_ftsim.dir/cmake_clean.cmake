file(REMOVE_RECURSE
  "CMakeFiles/example_ftsim.dir/ftsim.cpp.o"
  "CMakeFiles/example_ftsim.dir/ftsim.cpp.o.d"
  "example_ftsim"
  "example_ftsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ftsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
