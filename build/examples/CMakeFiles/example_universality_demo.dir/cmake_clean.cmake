file(REMOVE_RECURSE
  "CMakeFiles/example_universality_demo.dir/universality_demo.cpp.o"
  "CMakeFiles/example_universality_demo.dir/universality_demo.cpp.o.d"
  "example_universality_demo"
  "example_universality_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_universality_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
