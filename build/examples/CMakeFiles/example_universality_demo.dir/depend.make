# Empty dependencies file for example_universality_demo.
# This may be replaced when dependencies are built.
