// Quickstart: build a universal fat-tree, generate traffic, inspect the
// load factor, schedule it off-line (Theorem 1), and transmit it through
// the bit-serial switch hardware (Figs. 2-3).
//
//   ./example_quickstart [n] [root_capacity]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/load.hpp"
#include "core/offline_scheduler.hpp"
#include "core/traffic.hpp"
#include "switch/bitserial.hpp"
#include "util/prng.hpp"

int main(int argc, char** argv) {
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(
                                         std::strtoul(argv[1], nullptr, 10))
                                   : 256;
  const std::uint64_t w =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : n / 4;

  // 1. The routing network: n processors at the leaves of a complete
  //    binary tree whose channel capacities fatten toward the root.
  ft::FatTreeTopology topo(n);
  const auto caps = ft::CapacityProfile::universal(topo, w);
  std::printf("fat-tree: n=%u processors, height=%u, root capacity=%llu\n",
              topo.num_processors(), topo.height(),
              static_cast<unsigned long long>(caps.root_capacity()));
  std::printf("capacity profile (root -> leaves):");
  for (std::uint32_t k = 0; k <= topo.height(); ++k) {
    std::printf(" %llu",
                static_cast<unsigned long long>(caps.capacity_at_level(k)));
  }
  std::printf("\n\n");

  // 2. A workload: one random permutation.
  ft::Rng rng(2026);
  const auto messages = ft::random_permutation_traffic(n, rng);
  const double lambda = ft::load_factor(topo, caps, messages);
  std::printf("workload: random permutation, %zu messages, load factor "
              "lambda=%.2f\n",
              messages.size(), lambda);

  // 3. Off-line schedule (Theorem 1): partition into one-cycle sets.
  const auto schedule = ft::schedule_offline(topo, caps, messages);
  std::printf("offline schedule: %zu delivery cycles "
              "(lower bound ceil(lambda)=%.0f, Theorem 1 bound "
              "O(lambda lg n))\n",
              schedule.num_cycles(), std::ceil(lambda));

  // 4. Push every cycle through the bit-serial hardware model.
  ft::BitSerialSimulator sim(topo, caps);
  std::uint64_t total_bits = 0;
  std::size_t delivered = 0;
  for (const auto& cycle : schedule.cycles) {
    const auto r = sim.run_cycle(cycle);
    total_bits += r.makespan_bits;
    delivered += r.num_delivered;
    if (r.lost != 0) {
      std::printf("unexpected congestion loss!\n");
      return 1;
    }
  }
  std::printf("bit-serial transmission: %zu/%zu messages delivered in %llu "
              "bit-times total (%.1f bits/cycle)\n",
              delivered, messages.size(),
              static_cast<unsigned long long>(total_bits),
              static_cast<double>(total_bits) /
                  static_cast<double>(schedule.num_cycles()));
  return 0;
}
