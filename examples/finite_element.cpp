// The paper's motivating application (Section I): planar finite-element
// meshes have O(sqrt n) bisection width, so a fat-tree sized for the
// application routes them with a fraction of the hardware a
// hypercube-based network needs.
//
// This example runs a 2-D FEM halo exchange on fat-trees of decreasing
// root capacity and prints delivery cycles versus hardware volume,
// against the hypercube's Θ(n^{3/2}) volume reference.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/load.hpp"
#include "core/offline_scheduler.hpp"
#include "core/traffic.hpp"
#include "layout/vlsi_model.hpp"
#include "util/table.hpp"

int main() {
  const std::uint32_t side = 16;
  const std::uint32_t n = side * side;  // 256 processors
  ft::FatTreeTopology topo(n);
  const auto messages = ft::fem_halo_traffic(side, side);

  std::printf("planar FEM halo exchange on a %ux%u grid (%u processors, "
              "%zu messages)\n\n",
              side, side, n, messages.size());

  ft::Table table({"root capacity w", "volume", "vol/hypercube", "lambda",
                   "delivery cycles"});
  const double cube_volume = ft::hypercube_volume(n);
  for (std::uint64_t w = n; w >= 4; w /= 4) {
    const auto caps = ft::CapacityProfile::universal(topo, w);
    const double volume = ft::universal_fat_tree_volume(n, w);
    const double lambda = ft::load_factor(topo, caps, messages);
    const auto schedule = ft::schedule_offline(topo, caps, messages);
    table.row()
        .add(w)
        .add(volume, 0)
        .add(volume / cube_volume, 3)
        .add(lambda, 2)
        .add(schedule.num_cycles());
  }
  table.print(std::cout,
              "fat-tree sized to the application vs hypercube hardware");

  std::printf(
      "\nReading: at w ~ sqrt(n) = %u the fat-tree still routes the halo\n"
      "exchange in a handful of cycles while using a small fraction of the\n"
      "hypercube's volume — communication scales independently of the\n"
      "processor count (the paper's hardware-efficiency claim).\n",
      side);
  return 0;
}
