// Fixed-connection network emulation (Section VI): "the results apply to
// practical situations when the settings of switches can be compiled, as
// when simulating a large VLSI design or emulating a fixed-connection
// network."
//
// We compile the wiring of several fixed-connection machines into
// one-cycle message sets on a universal fat-tree and report the cost of
// one emulated communication step — a constant number of delivery cycles,
// i.e. O(lg n) time per step.
#include <cstdio>
#include <iostream>

#include "nets/builders.hpp"
#include "sim/universality.hpp"
#include "util/table.hpp"

int main() {
  const std::uint32_t dim = 8;
  const std::uint32_t n = 1u << dim;

  std::printf("emulating fixed-connection networks of %u processors on a\n"
              "universal fat-tree with degree-widened processor channels\n\n",
              n);

  ft::Table table({"network", "degree d", "lambda per step",
                   "cycles per step"});
  const std::uint32_t grid = 16;  // 16*16 = 256
  const ft::Network nets[] = {
      ft::build_hypercube(dim),
      ft::build_mesh2d(grid, grid),
      ft::build_torus2d(grid, grid),
      ft::build_shuffle_exchange(dim),
  };
  for (const auto& net : nets) {
    const auto r = ft::emulate_fixed_connection(net, n / 2);
    table.row()
        .add(net.name())
        .add(static_cast<std::uint64_t>(r.degree))
        .add(r.load_factor, 2)
        .add(r.cycles_per_step);
  }
  table.print(std::cout, "one emulated step, compiled switch settings");

  std::printf(
      "\nEach emulated step costs O(1) delivery cycles (O(lg n) time):\n"
      "compile the settings once, then replay them every step — the\n"
      "acknowledgment machinery can be omitted entirely off-line.\n");
  return 0;
}
