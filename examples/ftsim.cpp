// ftsim — command-line driver for the library: pick a machine size, root
// capacity, workload, and scheduler, get the delivery-cycle report. The
// fifth example; the one a user scripts parameter sweeps with.
//
//   ./example_ftsim --n 512 --w 128 --workload transpose
//                   --scheduler offline --seed 1 [--faults 0.1] [--csv]
//                   [--trace trace.json] [--report report.json]
//                   [--telemetry[=K] --telemetry-out base]
//
// --trace writes a Chrome trace_event file (open in chrome://tracing or
// ui.perfetto.dev), --jsonl a raw event log, --report a schema-versioned
// RunReport JSON (see DESIGN.md, "Observability"). --telemetry attaches
// the congestion observatory (obs/telemetry.hpp): per-level occupancy
// series sampled every K cycles, hottest-channel tracker, latency
// digests, and the measured Amdahl phase split, exported as
// <base>.csv/.jsonl heatmaps plus a "telemetry" section of the report.
// Offline schedulers are traced by replaying the compiled schedule on the
// engine; the online scheduler is traced live. Transient faults, retry
// policies, and correlated subtree kills all compose with any of the
// above (see the flag list in usage()).
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/faults.hpp"
#include "core/load.hpp"
#include "core/offline_scheduler.hpp"
#include "core/online_router.hpp"
#include "core/replay.hpp"
#include "core/reuse_scheduler.hpp"
#include "core/traffic.hpp"
#include "engine/fat_tree_model.hpp"
#include "engine/fault_plan.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/bits.hpp"
#include "util/table.hpp"

namespace {

void usage() {
  std::printf(
      "usage: example_ftsim [options]\n"
      "  --n N          processors, power of two (default 256)\n"
      "  --w W          root capacity (default n/4)\n"
      "  --workload X   random-perm | bit-reversal | transpose | shuffle |\n"
      "                 complement | hotspot-10%% | local-r4 | fem-halo |\n"
      "                 tornado | all (default random-perm)\n"
      "  --scheduler X  offline | packed | greedy | reuse | online\n"
      "                 (default offline)\n"
      "  --stack K      stack K copies of the workload (default 1)\n"
      "  --faults P     wire failure probability (default 0, static)\n"
      "  --flap PD:PU   transient channel flaps: per-cycle P(down):P(up)\n"
      "  --brownout F:U:C  capacity brownout over cycles [F, U) (U=0 =\n"
      "                 forever), limits scaled by factor C\n"
      "  --burst AT:DUR:K  kill K random channels at cycle AT for DUR\n"
      "                 cycles\n"
      "  --subtree-kill V:AT:DUR  kill every channel in the subtree rooted\n"
      "                 at heap node V at cycle AT for DUR cycles\n"
      "  --subtree-storm P:LVL  strike each level-LVL subtree with\n"
      "                 per-cycle probability P (outage 1..8 cycles)\n"
      "  --retry K      give a message up after K contested cycles\n"
      "  --backoff      exponential retry backoff (skip-k-cycles)\n"
      "  --deadline C   give up messages whose retry would pass cycle C\n"
      "  --policy X     online scheduler routing discipline: oblivious |\n"
      "                 dmod | rlb | adaptive (default oblivious; see\n"
      "                 DESIGN.md 'Routing disciplines')\n"
      "  --parallel[=T] online scheduler: resolve contention on a T-thread\n"
      "                 pool (T=0 or omitted = hardware concurrency);\n"
      "                 results are identical to serial runs\n"
      "  --shard-level=K  subtree shard depth for --parallel (2^K shards;\n"
      "                 0 = unsharded). Precedence: this flag, then the\n"
      "                 FT_SHARD_LEVEL environment variable, then the\n"
      "                 auto heuristic (~2 shards per worker)\n"
      "  --seed S       RNG seed (default 1)\n"
      "  --csv          emit CSV instead of an aligned table\n"
      "  --trace F      write Chrome trace JSON (chrome://tracing, Perfetto)\n"
      "  --jsonl F      write raw per-message event log (one JSON per line)\n"
      "  --report F     write schema-versioned RunReport JSON\n"
      "                 (ft.run_report/2; includes telemetry + amdahl\n"
      "                 sections when --telemetry is on)\n"
      "  --telemetry[=K]  congestion observatory: sample per-level channel\n"
      "                 state every K cycles (default 4; 1 = every cycle)\n"
      "                 into bounded rings, track hottest channels, digest\n"
      "                 delivery latencies, and time the Amdahl phase split\n"
      "  --telemetry-out B  heatmap output base path (default 'telemetry');\n"
      "                 writes B.csv and B.jsonl per workload\n");
}

struct Options {
  std::uint32_t n = 256;
  std::uint64_t w = 0;
  std::string workload = "random-perm";
  std::string scheduler = "offline";
  std::uint32_t stack = 1;
  double faults = 0.0;
  // Transient faults (engine/fault_plan.hpp); zero/empty = off.
  double flap_down = 0.0;
  double flap_up = 0.0;
  bool has_brownout = false;
  std::uint32_t brown_from = 1;
  std::uint32_t brown_until = 0;
  double brown_factor = 0.5;
  bool has_burst = false;
  std::uint32_t burst_at = 1;
  std::uint32_t burst_dur = 1;
  std::uint32_t burst_count = 1;
  bool has_subtree_kill = false;
  std::uint32_t sk_node = 2;
  std::uint32_t sk_at = 1;
  std::uint32_t sk_dur = 1;
  double storm_prob = 0.0;
  std::uint32_t storm_level = 1;
  ft::RetryPolicy retry;
  ft::RoutingPolicy policy = ft::RoutingPolicy::ObliviousRandom;
  std::string policy_name = "oblivious";
  bool parallel = false;
  std::size_t threads = 0;
  std::uint32_t shard_level = ft::kShardLevelAuto;
  std::uint64_t seed = 1;
  bool csv = false;
  std::string trace_path;
  std::string jsonl_path;
  std::string report_path;
  bool telemetry = false;
  std::uint32_t telemetry_every = 4;  // TelemetryOptions default
  std::string telemetry_out = "telemetry";
};

// Checked flag parsing. Every numeric flag value must consume its whole
// token — "4x", "abc", "-3", an empty field or trailing garbage after a
// compound flag all fail loudly (usage + exit 2) instead of silently
// strtoul-ing to something else. All ftsim numeric flags are
// non-negative, so a leading '-' is rejected outright.

bool parse_u64(const char* s, std::uint64_t& out) {
  if (s == nullptr || *s == '\0' || *s == '-' || *s == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_u32(const char* s, std::uint32_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, v) || v > 0xffffffffull) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

bool parse_size(const char* s, std::size_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, v)) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

bool parse_double(const char* s, double& out) {
  if (s == nullptr || *s == '\0' || *s == '-') return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0') return false;
  out = v;
  return true;
}

/// Splits a compound flag value into exactly `count` non-empty
/// ':'-separated fields; fails on missing fields and on trailing garbage
/// (a fifth field, a dangling ':').
bool split_fields(const char* s, std::size_t count, std::string* out) {
  if (s == nullptr) return false;
  const std::string v = s;
  std::size_t start = 0;
  for (std::size_t k = 0; k + 1 < count; ++k) {
    const std::size_t sep = v.find(':', start);
    if (sep == std::string::npos) return false;
    out[k] = v.substr(start, sep - start);
    if (out[k].empty()) return false;
    start = sep + 1;
  }
  out[count - 1] = v.substr(start);
  return !out[count - 1].empty() &&
         out[count - 1].find(':') == std::string::npos;
}

bool parse_policy(const char* s, ft::RoutingPolicy& out) {
  if (s == nullptr) return false;
  const std::string v = s;
  if (v == "oblivious") {
    out = ft::RoutingPolicy::ObliviousRandom;
  } else if (v == "dmod") {
    out = ft::RoutingPolicy::DeterministicDmod;
  } else if (v == "rlb") {
    out = ft::RoutingPolicy::RandomLoadBalanced;
  } else if (v == "adaptive") {
    out = ft::RoutingPolicy::AdaptiveOccupancy;
  } else {
    return false;
  }
  return true;
}

bool parse(int argc, char** argv, Options& opt) {
  // On any failure: name the offending flag on stderr, then let main()
  // print usage() and exit nonzero.
  const char* flag = "";
  auto bad = [&flag]() {
    std::fprintf(stderr, "ftsim: invalid or missing value for %s\n", flag);
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--n") {
      if (!parse_u32(next(), opt.n)) return bad();
    } else if (arg == "--w") {
      if (!parse_u64(next(), opt.w)) return bad();
    } else if (arg == "--workload") {
      const char* v = next();
      if (!v) return bad();
      opt.workload = v;
    } else if (arg == "--scheduler") {
      const char* v = next();
      if (!v) return bad();
      opt.scheduler = v;
    } else if (arg == "--stack") {
      if (!parse_u32(next(), opt.stack)) return bad();
    } else if (arg == "--faults") {
      if (!parse_double(next(), opt.faults)) return bad();
    } else if (arg == "--flap") {
      std::string f[2];
      if (!split_fields(next(), 2, f) ||
          !parse_double(f[0].c_str(), opt.flap_down) ||
          !parse_double(f[1].c_str(), opt.flap_up)) {
        return bad();
      }
    } else if (arg == "--brownout") {
      std::string f[3];
      if (!split_fields(next(), 3, f) ||
          !parse_u32(f[0].c_str(), opt.brown_from) ||
          !parse_u32(f[1].c_str(), opt.brown_until) ||
          !parse_double(f[2].c_str(), opt.brown_factor)) {
        return bad();
      }
      opt.has_brownout = true;
    } else if (arg == "--burst") {
      std::string f[3];
      if (!split_fields(next(), 3, f) ||
          !parse_u32(f[0].c_str(), opt.burst_at) ||
          !parse_u32(f[1].c_str(), opt.burst_dur) ||
          !parse_u32(f[2].c_str(), opt.burst_count)) {
        return bad();
      }
      opt.has_burst = true;
    } else if (arg == "--subtree-kill") {
      std::string f[3];
      if (!split_fields(next(), 3, f) ||
          !parse_u32(f[0].c_str(), opt.sk_node) ||
          !parse_u32(f[1].c_str(), opt.sk_at) ||
          !parse_u32(f[2].c_str(), opt.sk_dur)) {
        return bad();
      }
      opt.has_subtree_kill = true;
    } else if (arg == "--subtree-storm") {
      std::string f[2];
      if (!split_fields(next(), 2, f) ||
          !parse_double(f[0].c_str(), opt.storm_prob) ||
          !parse_u32(f[1].c_str(), opt.storm_level)) {
        return bad();
      }
    } else if (arg == "--retry") {
      if (!parse_u32(next(), opt.retry.max_attempts)) return bad();
    } else if (arg == "--backoff") {
      opt.retry.exponential_backoff = true;
    } else if (arg == "--deadline") {
      if (!parse_u32(next(), opt.retry.deadline_cycles)) return bad();
    } else if (arg == "--policy") {
      const char* v = next();
      if (!parse_policy(v, opt.policy)) return bad();
      opt.policy_name = v;
    } else if (arg == "--parallel") {
      opt.parallel = true;
    } else if (arg.rfind("--parallel=", 0) == 0) {
      opt.parallel = true;
      if (!parse_size(arg.c_str() + 11, opt.threads)) return bad();
    } else if (arg.rfind("--shard-level=", 0) == 0) {
      if (!parse_u32(arg.c_str() + 14, opt.shard_level)) return bad();
    } else if (arg == "--shard-level") {
      if (!parse_u32(next(), opt.shard_level)) return bad();
    } else if (arg == "--seed") {
      if (!parse_u64(next(), opt.seed)) return bad();
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return bad();
      opt.trace_path = v;
    } else if (arg == "--jsonl") {
      const char* v = next();
      if (!v) return bad();
      opt.jsonl_path = v;
    } else if (arg == "--report") {
      const char* v = next();
      if (!v) return bad();
      opt.report_path = v;
    } else if (arg == "--telemetry") {
      opt.telemetry = true;
    } else if (arg.rfind("--telemetry=", 0) == 0) {
      opt.telemetry = true;
      if (!parse_u32(arg.c_str() + 12, opt.telemetry_every) ||
          opt.telemetry_every == 0) {
        return bad();
      }
    } else if (arg == "--telemetry-out") {
      const char* v = next();
      if (!v) return bad();
      opt.telemetry_out = v;
    } else {
      std::fprintf(stderr, "ftsim: unknown flag %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

struct RunResult {
  double lambda = 0.0;
  std::size_t cycles = 0;
  bool verified = false;
  bool gave_up = false;
  std::uint64_t messages_given_up = 0;
  std::uint64_t total_backoffs = 0;
  std::uint64_t fault_down_events = 0;
  std::uint64_t fault_up_events = 0;
  std::uint64_t subtree_kill_events = 0;
  std::uint64_t degraded_channel_cycles = 0;
  ft::EnginePhaseProfile phases;
};

/// Runs one workload under the selected scheduler. When `observer` is
/// non-null the delivery cycles are observed on the engine: online runs
/// live, offline schedules via a Tally replay of the compiled schedule.
/// `plan` (nullable) injects transient faults into whichever engine run
/// executes the delivery cycles.
RunResult run_one(const ft::FatTreeTopology& topo,
                  const ft::CapacityProfile& caps, const ft::MessageSet& m,
                  const Options& opt, const ft::FaultPlan* plan,
                  ft::EngineObserver* observer, ft::PhaseTimers& timers) {
  RunResult r;
  {
    auto t = timers.scope("load_factor");
    r.lambda = ft::load_factor(topo, caps, m);
  }
  ft::Schedule schedule;
  bool offline = true;
  if (opt.scheduler == "offline") {
    auto t = timers.scope("schedule");
    schedule = ft::schedule_offline(topo, caps, m);
  } else if (opt.scheduler == "packed") {
    auto t = timers.scope("schedule");
    schedule = ft::schedule_offline_packed(topo, caps, m);
  } else if (opt.scheduler == "greedy") {
    auto t = timers.scope("schedule");
    schedule = ft::schedule_greedy(topo, caps, m);
  } else if (opt.scheduler == "reuse") {
    auto t = timers.scope("schedule");
    schedule = ft::schedule_reuse(topo, caps, m).schedule;
  } else if (opt.scheduler == "online") {
    offline = false;
    ft::Rng rng(opt.seed ^ 0x0511e5);
    ft::OnlineRouterOptions opts;
    opts.observer = observer;
    opts.fault_plan = plan;
    opts.policy = opt.policy;
    opts.retry = opt.retry;
    opts.parallel = opt.parallel;
    opts.threads = opt.threads;
    opts.shard_level = opt.shard_level;
    opts.time_phases = opt.telemetry;
    auto t = timers.scope("route");
    const auto res = ft::route_online(topo, caps, m, rng, opts);
    r.cycles = res.delivery_cycles;
    r.gave_up = res.gave_up;
    r.messages_given_up = res.messages_given_up;
    r.total_backoffs = res.total_backoffs;
    r.fault_down_events = res.fault_down_events;
    r.fault_up_events = res.fault_up_events;
    r.subtree_kill_events = res.subtree_kill_events;
    r.degraded_channel_cycles = res.degraded_channel_cycles;
    r.phases = res.phases;
    // Complete unless the router hit its cycle cap and gave up, or per-
    // message retry policies ran out.
    r.verified = !res.gave_up && res.messages_given_up == 0;
  } else {
    std::fprintf(stderr, "unknown scheduler '%s'\n", opt.scheduler.c_str());
    std::exit(2);
  }
  if (offline) {
    r.cycles = schedule.num_cycles();
    {
      auto t = timers.scope("verify");
      r.verified = ft::verify_schedule(topo, caps, m, schedule);
    }
    if (observer != nullptr || plan != nullptr) {
      auto t = timers.scope("replay");
      ft::ReplayOptions ropts;
      ropts.fault_plan = plan;
      ropts.retry = opt.retry;
      ropts.time_phases = opt.telemetry;
      const auto res = ft::replay_schedule(topo, caps, schedule, ropts,
                                           observer);
      r.phases = res.phases;
      if (plan != nullptr) {
        // Under churn the schedule's cycle count is the healthy baseline;
        // report what the faulted replay actually took.
        r.cycles = res.cycles;
        r.messages_given_up = res.messages_given_up;
        r.fault_down_events = res.fault_down_events;
        r.fault_up_events = res.fault_up_events;
        r.subtree_kill_events = res.subtree_kill_events;
        r.verified = r.verified && res.messages_given_up == 0 &&
                     res.delivered == schedule.total_messages();
      }
    }
  }
  return r;
}

/// out.json -> out.<workload>.json when several workloads share one run.
std::string derived_path(const std::string& path, const std::string& name,
                         bool single) {
  if (single) return path;
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos || path.find('/', dot) != std::string::npos) {
    return path + "." + name;
  }
  return path.substr(0, dot) + "." + name + path.substr(dot);
}

void write_sink_file(const ft::TraceSink& sink, const std::string& path,
                     bool chrome) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  if (chrome) {
    sink.write_chrome_trace(out);
  } else {
    sink.write_jsonl(out);
  }
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 2;
  }
  if (!ft::is_pow2(opt.n) || opt.n < 2) {
    std::fprintf(stderr, "--n must be a power of two >= 2\n");
    return 2;
  }
  if (opt.w == 0) opt.w = opt.n / 4 ? opt.n / 4 : 1;

  ft::FatTreeTopology topo(opt.n);
  auto caps = ft::CapacityProfile::universal(topo, opt.w);
  if (opt.faults > 0.0) {
    ft::Rng frng(opt.seed ^ 0xfa017);
    caps = ft::inject_wire_faults(topo, caps, opt.faults, frng);
  }

  // Transient faults ride the delivery-cycle engine itself (the static
  // --faults damage above degrades capacities before the run).
  ft::FaultPlan plan(opt.seed ^ 0xd1fa);
  if (opt.flap_down > 0.0) plan.set_flaps({opt.flap_down, opt.flap_up});
  if (opt.has_brownout) {
    plan.add_brownout({opt.brown_from, opt.brown_until, opt.brown_factor,
                       ft::kAllLevels});
  }
  if (opt.has_burst) {
    plan.add_burst({opt.burst_at, opt.burst_dur, opt.burst_count});
  }
  if (opt.has_subtree_kill || opt.storm_prob > 0.0) {
    std::vector<ft::FaultDomain> domains;
    if (opt.storm_prob > 0.0) {
      domains = ft::fat_tree_subtree_domains(topo, opt.storm_level);
    }
    bool have_kill_root = false;
    for (const ft::FaultDomain& d : domains) {
      have_kill_root |= d.node == opt.sk_node;
    }
    if (opt.has_subtree_kill && !have_kill_root) {
      domains.push_back(ft::fat_tree_subtree_domain(topo, opt.sk_node));
    }
    plan.set_domains(std::move(domains));
    if (opt.has_subtree_kill) {
      plan.add_subtree_kill({opt.sk_node, opt.sk_at, opt.sk_dur});
    }
    if (opt.storm_prob > 0.0) plan.set_storm({opt.storm_prob, 1, 8});
  }
  const ft::FaultPlan* active_plan = plan.empty() ? nullptr : &plan;

  const bool want_trace = !opt.trace_path.empty() || !opt.jsonl_path.empty();
  const bool want_report = !opt.report_path.empty();

  ft::RunReport report("ftsim");
  if (want_report) {
    ft::JsonValue& params = report.params();
    params["n"] = opt.n;
    params["w"] = opt.w;
    params["workload"] = opt.workload;
    params["scheduler"] = opt.scheduler;
    params["policy"] = opt.policy_name;
    params["stack"] = opt.stack;
    params["faults"] = opt.faults;
    params["seed"] = opt.seed;
    if (active_plan != nullptr) {
      ft::JsonValue& f = params["fault_plan"];
      if (opt.flap_down > 0.0) {
        f["flap_down"] = opt.flap_down;
        f["flap_up"] = opt.flap_up;
      }
      if (opt.has_brownout) {
        f["brownout_from"] = opt.brown_from;
        f["brownout_until"] = opt.brown_until;
        f["brownout_factor"] = opt.brown_factor;
      }
      if (opt.has_burst) {
        f["burst_at"] = opt.burst_at;
        f["burst_duration"] = opt.burst_dur;
        f["burst_count"] = opt.burst_count;
      }
      if (opt.has_subtree_kill) {
        f["subtree_kill_node"] = opt.sk_node;
        f["subtree_kill_at"] = opt.sk_at;
        f["subtree_kill_duration"] = opt.sk_dur;
      }
      if (opt.storm_prob > 0.0) {
        f["subtree_storm_prob"] = opt.storm_prob;
        f["subtree_storm_level"] = opt.storm_level;
      }
    }
    if (opt.retry.enabled()) {
      ft::JsonValue& rp = params["retry"];
      rp["max_attempts"] = opt.retry.max_attempts;
      rp["exponential_backoff"] = opt.retry.exponential_backoff;
      rp["deadline_cycles"] = opt.retry.deadline_cycles;
    }
  }

  ft::Rng rng(opt.seed);
  auto workloads = ft::standard_workloads(opt.n, rng);
  const bool single = opt.workload != "all";
  ft::Table table({"workload", "messages", "lambda", "scheduler", "cycles",
                   "verified"});
  bool matched = false;
  for (const auto& wl : workloads) {
    if (single && wl.name != opt.workload) continue;
    matched = true;
    ft::MessageSet m = wl.messages;
    for (std::uint32_t k = 1; k < opt.stack; ++k) {
      m.insert(m.end(), wl.messages.begin(), wl.messages.end());
    }

    // Observation is opt-in: without --trace/--report/--telemetry the run
    // is exactly the old unobserved path.
    ft::EngineMetrics metrics;
    ft::TraceSink trace;
    ft::TelemetryOptions topts;
    topts.every_k = opt.telemetry_every;
    ft::TelemetryProbe probe(topts);
    ft::ObserverFanout fanout;
    if (want_report) fanout.add(&metrics);
    if (want_trace) fanout.add(&trace);
    if (opt.telemetry) fanout.add(&probe);
    ft::EngineObserver* observer =
        (want_report || want_trace || opt.telemetry) ? &fanout : nullptr;

    ft::PhaseTimers timers;
    const auto r = run_one(topo, caps, m, opt, active_plan, observer, timers);
    table.row()
        .add(wl.name)
        .add(m.size())
        .add(r.lambda, 2)
        .add(opt.scheduler)
        .add(r.cycles)
        .add(r.verified ? "yes" : "NO");

    if (!opt.trace_path.empty()) {
      write_sink_file(trace, derived_path(opt.trace_path, wl.name, single),
                      /*chrome=*/true);
    }
    if (!opt.jsonl_path.empty()) {
      write_sink_file(trace, derived_path(opt.jsonl_path, wl.name, single),
                      /*chrome=*/false);
    }
    if (opt.telemetry) {
      const std::string csv_path =
          derived_path(opt.telemetry_out + ".csv", wl.name, single);
      std::ofstream csv(csv_path);
      if (csv) {
        probe.write_heatmap_csv(csv);
        std::fprintf(stderr, "wrote %s\n", csv_path.c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      }
      const std::string jsonl_path =
          derived_path(opt.telemetry_out + ".jsonl", wl.name, single);
      std::ofstream jsonl(jsonl_path);
      if (jsonl) {
        probe.write_heatmap_jsonl(jsonl);
        std::fprintf(stderr, "wrote %s\n", jsonl_path.c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", jsonl_path.c_str());
      }
    }
    if (want_report) {
      ft::JsonValue& run = report.add_run(wl.name);
      run["messages"] = static_cast<std::uint64_t>(m.size());
      run["lambda"] = r.lambda;
      run["scheduler"] = opt.scheduler;
      run["cycles"] = static_cast<std::uint64_t>(r.cycles);
      run["verified"] = r.verified;
      run["gave_up"] = r.gave_up;
      if (active_plan != nullptr || opt.retry.enabled()) {
        ft::JsonValue& f = run["faults"];
        f["fault_down_events"] = r.fault_down_events;
        f["fault_up_events"] = r.fault_up_events;
        f["subtree_kill_events"] = r.subtree_kill_events;
        f["degraded_channel_cycles"] = r.degraded_channel_cycles;
        f["backoffs"] = r.total_backoffs;
        f["messages_given_up"] = r.messages_given_up;
        f["availability"] = metrics.availability();
      }
      run["engine"] = metrics.to_json();
      run["phases"] = timers.to_json();
      if (opt.telemetry) {
        run["telemetry"] = probe.to_json();
        run["amdahl"] = ft::phase_profile_json(r.phases);
      }
    }
  }
  if (!matched) {
    std::fprintf(stderr, "unknown workload '%s'\n", opt.workload.c_str());
    usage();
    return 2;
  }
  if (opt.csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout,
                "ftsim: n=" + std::to_string(opt.n) +
                    " w=" + std::to_string(opt.w) +
                    (opt.faults > 0 ? " faults=" + ft::format_double(
                                                       opt.faults, 2)
                                    : ""));
  }
  if (want_report && report.write_file(opt.report_path)) {
    std::fprintf(stderr, "wrote %s\n", opt.report_path.c_str());
  }
  return 0;
}
