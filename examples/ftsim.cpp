// ftsim — command-line driver for the library: pick a machine size, root
// capacity, workload, and scheduler, get the delivery-cycle report. The
// fifth example; the one a user scripts parameter sweeps with.
//
//   ./example_ftsim --n 512 --w 128 --workload transpose \
//                   --scheduler offline --seed 1 [--faults 0.1] [--csv]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/faults.hpp"
#include "core/load.hpp"
#include "core/offline_scheduler.hpp"
#include "core/online_router.hpp"
#include "core/reuse_scheduler.hpp"
#include "core/traffic.hpp"
#include "util/bits.hpp"
#include "util/table.hpp"

namespace {

void usage() {
  std::printf(
      "usage: example_ftsim [options]\n"
      "  --n N          processors, power of two (default 256)\n"
      "  --w W          root capacity (default n/4)\n"
      "  --workload X   random-perm | bit-reversal | transpose | shuffle |\n"
      "                 complement | hotspot-10%% | local-r4 | fem-halo |\n"
      "                 tornado | all (default random-perm)\n"
      "  --scheduler X  offline | packed | greedy | reuse | online\n"
      "                 (default offline)\n"
      "  --stack K      stack K copies of the workload (default 1)\n"
      "  --faults P     wire failure probability (default 0)\n"
      "  --seed S       RNG seed (default 1)\n"
      "  --csv          emit CSV instead of an aligned table\n");
}

struct Options {
  std::uint32_t n = 256;
  std::uint64_t w = 0;
  std::string workload = "random-perm";
  std::string scheduler = "offline";
  std::uint32_t stack = 1;
  double faults = 0.0;
  std::uint64_t seed = 1;
  bool csv = false;
};

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--n") {
      const char* v = next();
      if (!v) return false;
      opt.n = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--w") {
      const char* v = next();
      if (!v) return false;
      opt.w = std::strtoull(v, nullptr, 10);
    } else if (arg == "--workload") {
      const char* v = next();
      if (!v) return false;
      opt.workload = v;
    } else if (arg == "--scheduler") {
      const char* v = next();
      if (!v) return false;
      opt.scheduler = v;
    } else if (arg == "--stack") {
      const char* v = next();
      if (!v) return false;
      opt.stack = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--faults") {
      const char* v = next();
      if (!v) return false;
      opt.faults = std::strtod(v, nullptr);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--csv") {
      opt.csv = true;
    } else {
      return false;
    }
  }
  return true;
}

struct RunResult {
  double lambda = 0.0;
  std::size_t cycles = 0;
  bool verified = false;
};

RunResult run_one(const ft::FatTreeTopology& topo,
                  const ft::CapacityProfile& caps, const ft::MessageSet& m,
                  const Options& opt) {
  RunResult r;
  r.lambda = ft::load_factor(topo, caps, m);
  if (opt.scheduler == "offline") {
    const auto s = ft::schedule_offline(topo, caps, m);
    r.cycles = s.num_cycles();
    r.verified = ft::verify_schedule(topo, caps, m, s);
  } else if (opt.scheduler == "packed") {
    const auto s = ft::schedule_offline_packed(topo, caps, m);
    r.cycles = s.num_cycles();
    r.verified = ft::verify_schedule(topo, caps, m, s);
  } else if (opt.scheduler == "greedy") {
    const auto s = ft::schedule_greedy(topo, caps, m);
    r.cycles = s.num_cycles();
    r.verified = ft::verify_schedule(topo, caps, m, s);
  } else if (opt.scheduler == "reuse") {
    const auto s = ft::schedule_reuse(topo, caps, m);
    r.cycles = s.schedule.num_cycles();
    r.verified = ft::verify_schedule(topo, caps, m, s.schedule);
  } else if (opt.scheduler == "online") {
    ft::Rng rng(opt.seed ^ 0x0511e5);
    const auto res = ft::route_online(topo, caps, m, rng);
    r.cycles = res.delivery_cycles;
    // Complete unless the router hit its cycle cap and gave up.
    r.verified = !res.gave_up;
  } else {
    std::fprintf(stderr, "unknown scheduler '%s'\n", opt.scheduler.c_str());
    std::exit(2);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 2;
  }
  if (!ft::is_pow2(opt.n) || opt.n < 2) {
    std::fprintf(stderr, "--n must be a power of two >= 2\n");
    return 2;
  }
  if (opt.w == 0) opt.w = opt.n / 4 ? opt.n / 4 : 1;

  ft::FatTreeTopology topo(opt.n);
  auto caps = ft::CapacityProfile::universal(topo, opt.w);
  if (opt.faults > 0.0) {
    ft::Rng frng(opt.seed ^ 0xfa017);
    caps = ft::inject_wire_faults(topo, caps, opt.faults, frng);
  }

  ft::Rng rng(opt.seed);
  auto workloads = ft::standard_workloads(opt.n, rng);
  ft::Table table({"workload", "messages", "lambda", "scheduler", "cycles",
                   "verified"});
  bool matched = false;
  for (const auto& wl : workloads) {
    if (opt.workload != "all" && wl.name != opt.workload) continue;
    matched = true;
    ft::MessageSet m = wl.messages;
    for (std::uint32_t k = 1; k < opt.stack; ++k) {
      m.insert(m.end(), wl.messages.begin(), wl.messages.end());
    }
    const auto r = run_one(topo, caps, m, opt);
    table.row()
        .add(wl.name)
        .add(m.size())
        .add(r.lambda, 2)
        .add(opt.scheduler)
        .add(r.cycles)
        .add(r.verified ? "yes" : "NO");
  }
  if (!matched) {
    std::fprintf(stderr, "unknown workload '%s'\n", opt.workload.c_str());
    usage();
    return 2;
  }
  if (opt.csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout,
                "ftsim: n=" + std::to_string(opt.n) +
                    " w=" + std::to_string(opt.w) +
                    (opt.faults > 0 ? " faults=" + ft::format_double(
                                                       opt.faults, 2)
                                    : ""));
  }
  return 0;
}
