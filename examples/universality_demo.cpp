// Theorem 10 end to end: take a hypercube computer, lay it out in
// 3-space, build its balanced decomposition tree, identify its processors
// with the leaves of an equal-volume universal fat-tree, and compare
// delivery times across workloads.
#include <cstdio>
#include <iostream>

#include "core/traffic.hpp"
#include "nets/builders.hpp"
#include "nets/layouts.hpp"
#include "sim/universality.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

int main() {
  const std::uint32_t dim = 8;
  const std::uint32_t n = 1u << dim;  // 256 processors
  const auto net = ft::build_hypercube(dim);
  const auto layout = ft::layout_hypercube(n);

  std::printf("simulating a %u-processor hypercube (volume %.0f) on the\n"
              "universal fat-tree of the same volume\n\n",
              n, layout.volume());

  ft::Rng rng(7);
  ft::Table table({"workload", "hypercube rounds t", "fat-tree cycles",
                   "slowdown", "lg^3 n", "slowdown/lg^3 n"});
  for (const auto& wl : ft::standard_workloads(n, rng)) {
    const auto r = ft::simulate_network_on_fattree(net, layout, wl.messages);
    table.row()
        .add(wl.name)
        .add(static_cast<std::uint64_t>(r.competitor_rounds))
        .add(r.ft_cycles)
        .add(r.slowdown, 1)
        .add(r.lg3_n, 0)
        .add(r.slowdown / r.lg3_n, 3);
  }
  table.print(std::cout, "Theorem 10: equal-volume simulation");

  std::printf(
      "\nThe slowdown column stays a small fraction of lg^3 n for every\n"
      "workload: any message set the hypercube delivers in time t, the\n"
      "equal-volume fat-tree delivers off-line in O(t lg^3 n).\n");
  return 0;
}
