#include "nets/network.hpp"

#include <algorithm>

namespace ft {

std::uint32_t Network::max_degree() const {
  std::uint32_t d = 0;
  for (const auto& out : out_links_) {
    d = std::max(d, static_cast<std::uint32_t>(out.size()));
  }
  return d;
}

}  // namespace ft
