// Physical 3-D layouts of the competitor networks, at their
// asymptotically required volumes (Sections I and VI): hypercubes,
// butterflies and Beneš networks need Θ(n^{3/2}) volume (bisection n/2
// forces cross-section Ω(n)), while meshes and trees fit in Θ(n).
// Processor positions are spread on an integer lattice inside the
// bounding box; the decomposition-tree machinery needs only the box and
// distinct positions.
#pragma once

#include <cstdint>

#include "layout/geometry.hpp"
#include "nets/network.hpp"

namespace ft {

/// Spreads n processors evenly over the lattice cells of a box with the
/// given integer side lengths (sx*sy*sz >= n required).
Layout3D spread_layout(std::uint32_t n, std::uint32_t sx, std::uint32_t sy,
                       std::uint32_t sz);

/// Layout in the network's natural volume; `n` is the processor count.
Layout3D layout_mesh2d(std::uint32_t rows, std::uint32_t cols);
Layout3D layout_mesh3d(std::uint32_t x, std::uint32_t y, std::uint32_t z);
Layout3D layout_binary_tree(std::uint32_t n);
Layout3D layout_hypercube(std::uint32_t n);          // Θ(n^{3/2})
Layout3D layout_butterfly(std::uint32_t n);          // Θ(n^{3/2})
Layout3D layout_shuffle_exchange(std::uint32_t n);   // Θ(n^{3/2})
Layout3D layout_tree_of_meshes(std::uint32_t n);     // Θ(n lg n) flat

}  // namespace ft
