#include "nets/benes.hpp"

#include <algorithm>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace ft {

namespace {

/// Recursive looping: fills settings for a size-`n` subnetwork occupying
/// global stages [stage_lo, stage_hi] and switch rows
/// [row_lo, row_lo + n/2). `perm` is the local permutation.
void solve(BenesSettings& settings, const std::vector<std::uint32_t>& perm,
           std::uint32_t stage_lo, std::uint32_t stage_hi,
           std::uint32_t row_lo) {
  const auto n = static_cast<std::uint32_t>(perm.size());
  FT_CHECK(n >= 2 && is_pow2(n));
  if (n == 2) {
    FT_CHECK(stage_lo == stage_hi);
    settings.crossed[stage_lo][row_lo] = perm[0] == 1 ? 1 : 0;
    return;
  }

  std::vector<std::uint32_t> inverse(n);
  for (std::uint32_t i = 0; i < n; ++i) inverse[perm[i]] = i;

  // 2-colour the inputs: partners through an input switch (x, x^1) must
  // use different subnetworks, and so must the sources of partners through
  // an output switch (perm^-1(y), perm^-1(y^1)). The constraint graph is a
  // disjoint union of even cycles, so greedy loop-propagation succeeds.
  constexpr std::uint8_t kUnset = 2;
  std::vector<std::uint8_t> colour(n, kUnset);
  for (std::uint32_t start = 0; start < n; ++start) {
    if (colour[start] != kUnset) continue;
    std::uint32_t x = start;
    std::uint8_t c = 0;
    for (;;) {
      colour[x] = c;
      // Output-switch constraint: the input feeding the partner output
      // takes the other colour...
      const std::uint32_t sibling_src = inverse[perm[x] ^ 1u];
      if (colour[sibling_src] == kUnset) colour[sibling_src] = c ^ 1u;
      // ...and the input-switch partner of that source loops onward.
      const std::uint32_t next = sibling_src ^ 1u;
      if (colour[next] != kUnset) break;
      x = next;
      c = colour[sibling_src] ^ 1u;
    }
  }

  // First and last stage settings, plus the two half permutations.
  const std::uint32_t half = n / 2;
  std::vector<std::uint32_t> upper(half), lower(half);
  for (std::uint32_t sw = 0; sw < half; ++sw) {
    // Input switch sw handles inputs 2sw, 2sw+1; its top output feeds the
    // upper subnetwork's input sw. Crossed iff the even input goes lower.
    settings.crossed[stage_lo][row_lo + sw] = colour[2 * sw] == 1 ? 1 : 0;
  }
  for (std::uint32_t x = 0; x < n; ++x) {
    const std::uint32_t y = perm[x];
    if (colour[x] == 0) {
      upper[x / 2] = y / 2;
    } else {
      lower[x / 2] = y / 2;
    }
  }
  for (std::uint32_t sw = 0; sw < half; ++sw) {
    // Output switch sw emits outputs 2sw, 2sw+1; its top input comes from
    // the upper subnetwork. Crossed iff the even output arrives from the
    // lower subnetwork.
    settings.crossed[stage_hi][row_lo + sw] =
        colour[inverse[2 * sw]] == 1 ? 1 : 0;
  }

  solve(settings, upper, stage_lo + 1, stage_hi - 1, row_lo);
  solve(settings, lower, stage_lo + 1, stage_hi - 1, row_lo + half / 2);
}

/// Recursive application mirroring solve()'s embedding. `in` holds the
/// values entering the subnetwork; returns the values at its outputs.
std::vector<std::uint32_t> apply(const BenesSettings& settings,
                                 const std::vector<std::uint32_t>& in,
                                 std::uint32_t stage_lo,
                                 std::uint32_t stage_hi,
                                 std::uint32_t row_lo) {
  const auto n = static_cast<std::uint32_t>(in.size());
  if (n == 2) {
    if (settings.crossed[stage_lo][row_lo]) return {in[1], in[0]};
    return in;
  }
  const std::uint32_t half = n / 2;
  std::vector<std::uint32_t> up_in(half), low_in(half);
  for (std::uint32_t sw = 0; sw < half; ++sw) {
    const bool crossed = settings.crossed[stage_lo][row_lo + sw] != 0;
    up_in[sw] = crossed ? in[2 * sw + 1] : in[2 * sw];
    low_in[sw] = crossed ? in[2 * sw] : in[2 * sw + 1];
  }
  const auto up_out =
      apply(settings, up_in, stage_lo + 1, stage_hi - 1, row_lo);
  const auto low_out =
      apply(settings, low_in, stage_lo + 1, stage_hi - 1, row_lo + half / 2);
  std::vector<std::uint32_t> out(n);
  for (std::uint32_t sw = 0; sw < half; ++sw) {
    const bool crossed = settings.crossed[stage_hi][row_lo + sw] != 0;
    out[2 * sw] = crossed ? low_out[sw] : up_out[sw];
    out[2 * sw + 1] = crossed ? up_out[sw] : low_out[sw];
  }
  return out;
}

}  // namespace

BenesSettings benes_route_permutation(const std::vector<std::uint32_t>& perm) {
  const auto n = static_cast<std::uint32_t>(perm.size());
  FT_CHECK_MSG(n >= 2 && is_pow2(n), "permutation size must be a power of 2");
  std::vector<std::uint8_t> seen(n, 0);
  for (auto v : perm) {
    FT_CHECK_MSG(v < n && !seen[v], "input is not a permutation");
    seen[v] = 1;
  }
  BenesSettings settings;
  settings.k = floor_log2(n);
  settings.crossed.assign(2 * settings.k - 1,
                          std::vector<std::uint8_t>(n / 2, 0));
  solve(settings, perm, 0, settings.num_stages() - 1, 0);
  return settings;
}

std::vector<std::uint32_t> benes_apply(const BenesSettings& settings) {
  const std::uint32_t n = settings.num_terminals();
  std::vector<std::uint32_t> identity(n);
  for (std::uint32_t i = 0; i < n; ++i) identity[i] = i;
  // Feeding input indices through the network yields, at output position
  // y, the input that reaches it; invert to the realized permutation.
  const auto at_outputs =
      apply(settings, identity, 0, settings.num_stages() - 1, 0);
  std::vector<std::uint32_t> realized(n);
  for (std::uint32_t y = 0; y < n; ++y) realized[at_outputs[y]] = y;
  return realized;
}

}  // namespace ft
