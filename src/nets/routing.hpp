// Route computation on competitor networks. The universality experiments
// only need *some* reasonable routes for the store-and-forward simulator;
// we provide deterministic shortest paths (per-source BFS with fixed
// tie-breaking) plus the classical oblivious schemes — e-cube on the
// hypercube and dimension-ordered (XY) on meshes — as named baselines.
#pragma once

#include <cstdint>
#include <vector>

#include "core/message.hpp"
#include "nets/network.hpp"

namespace ft {

/// A route: the sequence of link ids from source node to destination node.
using Route = std::vector<std::uint32_t>;

/// Deterministic BFS shortest path between two nodes; empty when
/// from == to. FT_CHECKs reachability.
Route bfs_route(const Network& net, std::uint32_t from_node,
                std::uint32_t to_node);

/// Routes for a whole processor-level message set, grouping by source so
/// each distinct source runs one BFS.
std::vector<Route> route_all_bfs(const Network& net, const MessageSet& m);

/// e-cube (dimension-ordered) route on a hypercube built by
/// build_hypercube: correct lowest differing bit first.
Route ecube_route(const Network& net, std::uint32_t dim, std::uint32_t from,
                  std::uint32_t to);

/// XY dimension-ordered route on a mesh built by build_mesh2d.
Route xy_route(const Network& net, std::uint32_t rows, std::uint32_t cols,
               std::uint32_t from, std::uint32_t to);

}  // namespace ft
