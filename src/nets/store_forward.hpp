// Synchronous store-and-forward simulation on a competitor network. Each
// round every link forwards up to its capacity in FIFO order; the result
// is the delivery time t that Theorem 10 compares the fat-tree's
// O(t · lg³ n) against.
//
// The round loop runs on the unified CycleEngine (engine/engine.hpp) with
// Fifo contention; a Route is already an EnginePath, so this file only
// maps the Network onto the engine's channel graph.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/fault_plan.hpp"
#include "engine/message_source.hpp"
#include "engine/observer.hpp"
#include "engine/phase_profile.hpp"
#include "nets/network.hpp"
#include "nets/routing.hpp"

namespace ft {

struct StoreForwardResult {
  std::uint64_t rounds = 0;         ///< time to deliver everything
  std::uint64_t delivered = 0;      ///< messages delivered (== routes unless
                                    ///< gave_up; includes round-0 locals)
  std::uint64_t total_hops = 0;     ///< sum of route lengths
  double mean_latency = 0.0;        ///< average per-message finish round
  std::uint32_t max_queue = 0;      ///< peak per-link queue length
  bool gave_up = false;             ///< hit max_rounds with traffic queued
  std::uint64_t fault_down_events = 0;  ///< link down transitions
  std::uint64_t fault_up_events = 0;    ///< link repair transitions
  std::uint64_t subtree_kill_events = 0;  ///< correlated domain strikes
  /// Wall-clock Amdahl decomposition; all-zero unless
  /// StoreForwardOptions::time_phases was set.
  EnginePhaseProfile phases;
};

struct StoreForwardOptions {
  /// Forward links on a thread pool; results are identical to serial mode.
  bool parallel = false;
  std::size_t threads = 0;
  /// Optional per-round instrumentation (engine/observer.hpp). Not owned.
  EngineObserver* observer = nullptr;
  /// Optional transient-fault plan (not owned): a down link forwards
  /// nothing that round, its queue waits. Supply max_rounds with plans
  /// that can pin a link down indefinitely.
  const FaultPlan* fault_plan = nullptr;
  /// Abort after this many rounds (0 = run to completion).
  std::uint32_t max_rounds = 0;
  /// Time pooled range processing vs the serial band
  /// (StoreForwardResult::phases).
  bool time_phases = false;
};

/// Simulates messages with precomputed routes. Messages with empty routes
/// (src == dst) finish in round 0.
StoreForwardResult simulate_store_forward(const Network& net,
                                          const std::vector<Route>& routes,
                                          const StoreForwardOptions& opts = {});

/// Streaming form: routes arrive as a MessageSource (see
/// engine/network_model.hpp's RouteChunkSource) and are ingested chunk by
/// chunk. `num_routes` is the total the source will yield (FIFO needs it
/// only for mean_latency's denominator). Bit-identical to the vector form
/// for the same routes in the same order.
StoreForwardResult simulate_store_forward_stream(
    const Network& net, MessageSource& routes, std::size_t num_routes,
    const StoreForwardOptions& opts = {});

/// Lower bound on delivery time: max(longest route, max per-link
/// congestion / capacity). Useful as a sanity reference in experiments.
std::uint32_t store_forward_lower_bound(const Network& net,
                                        const std::vector<Route>& routes);

}  // namespace ft
