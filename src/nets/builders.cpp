#include "nets/builders.hpp"

#include "util/bits.hpp"
#include "util/check.hpp"

namespace ft {

Network build_hypercube(std::uint32_t dim) {
  FT_CHECK(dim >= 1 && dim <= 24);
  const std::uint32_t n = 1u << dim;
  Network net(n, "hypercube");
  for (std::uint32_t p = 0; p < n; ++p) {
    for (std::uint32_t d = 0; d < dim; ++d) {
      const std::uint32_t q = p ^ (1u << d);
      if (p < q) net.add_bidi(p, q);
    }
  }
  std::vector<std::uint32_t> procs(n);
  for (std::uint32_t p = 0; p < n; ++p) procs[p] = p;
  net.set_processor_nodes(std::move(procs));
  return net;
}

Network build_mesh2d(std::uint32_t rows, std::uint32_t cols) {
  FT_CHECK(rows >= 1 && cols >= 1);
  const std::uint32_t n = rows * cols;
  Network net(n, "mesh2d");
  auto id = [cols](std::uint32_t r, std::uint32_t c) { return r * cols + c; };
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) net.add_bidi(id(r, c), id(r, c + 1));
      if (r + 1 < rows) net.add_bidi(id(r, c), id(r + 1, c));
    }
  }
  std::vector<std::uint32_t> procs(n);
  for (std::uint32_t p = 0; p < n; ++p) procs[p] = p;
  net.set_processor_nodes(std::move(procs));
  return net;
}

Network build_torus2d(std::uint32_t rows, std::uint32_t cols) {
  FT_CHECK(rows >= 3 && cols >= 3);
  const std::uint32_t n = rows * cols;
  Network net(n, "torus2d");
  auto id = [cols](std::uint32_t r, std::uint32_t c) { return r * cols + c; };
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      net.add_bidi(id(r, c), id(r, (c + 1) % cols));
      net.add_bidi(id(r, c), id((r + 1) % rows, c));
    }
  }
  std::vector<std::uint32_t> procs(n);
  for (std::uint32_t p = 0; p < n; ++p) procs[p] = p;
  net.set_processor_nodes(std::move(procs));
  return net;
}

Network build_mesh3d(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  FT_CHECK(x >= 1 && y >= 1 && z >= 1);
  const std::uint32_t n = x * y * z;
  Network net(n, "mesh3d");
  auto id = [x, y](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    return (k * y + j) * x + i;
  };
  for (std::uint32_t k = 0; k < z; ++k) {
    for (std::uint32_t j = 0; j < y; ++j) {
      for (std::uint32_t i = 0; i < x; ++i) {
        if (i + 1 < x) net.add_bidi(id(i, j, k), id(i + 1, j, k));
        if (j + 1 < y) net.add_bidi(id(i, j, k), id(i, j + 1, k));
        if (k + 1 < z) net.add_bidi(id(i, j, k), id(i, j, k + 1));
      }
    }
  }
  std::vector<std::uint32_t> procs(n);
  for (std::uint32_t p = 0; p < n; ++p) procs[p] = p;
  net.set_processor_nodes(std::move(procs));
  return net;
}

Network build_shuffle_exchange(std::uint32_t dim) {
  FT_CHECK(dim >= 2 && dim <= 24);
  const std::uint32_t n = 1u << dim;
  Network net(n, "shuffle-exchange");
  for (std::uint32_t p = 0; p < n; ++p) {
    const std::uint32_t ex = p ^ 1u;
    if (p < ex) net.add_bidi(p, ex);
    const std::uint32_t sh = ((p << 1) | (p >> (dim - 1))) & (n - 1);
    if (sh != p) net.add_link(p, sh);
  }
  std::vector<std::uint32_t> procs(n);
  for (std::uint32_t p = 0; p < n; ++p) procs[p] = p;
  net.set_processor_nodes(std::move(procs));
  return net;
}

Network build_butterfly(std::uint32_t k) {
  FT_CHECK(k >= 1 && k <= 20);
  const std::uint32_t rows = 1u << k;
  const std::uint32_t n = (k + 1) * rows;
  Network net(n, "butterfly");
  auto id = [rows](std::uint32_t stage, std::uint32_t row) {
    return stage * rows + row;
  };
  for (std::uint32_t s = 0; s < k; ++s) {
    for (std::uint32_t r = 0; r < rows; ++r) {
      net.add_bidi(id(s, r), id(s + 1, r));                   // straight
      net.add_bidi(id(s, r), id(s + 1, r ^ (1u << s)));       // cross
    }
  }
  std::vector<std::uint32_t> procs(rows);
  for (std::uint32_t r = 0; r < rows; ++r) procs[r] = id(0, r);
  net.set_processor_nodes(std::move(procs));
  return net;
}

Network build_binary_tree(std::uint32_t depth) {
  FT_CHECK(depth >= 1 && depth <= 24);
  const std::uint32_t n = 1u << depth;
  const std::uint32_t nodes = 2 * n - 1;  // heap ids 1..2n-1 -> 0..2n-2
  Network net(nodes, "binary-tree");
  for (std::uint32_t v = 2; v <= nodes; ++v) {
    net.add_bidi(v - 1, v / 2 - 1);
  }
  std::vector<std::uint32_t> procs(n);
  for (std::uint32_t p = 0; p < n; ++p) procs[p] = n + p - 1;
  net.set_processor_nodes(std::move(procs));
  return net;
}

FaultDomain binary_tree_subtree_domain(std::uint32_t depth,
                                       std::uint32_t heap_node) {
  const std::uint32_t nodes = 2 * (1u << depth) - 1;
  FT_CHECK(heap_node >= 1 && heap_node <= nodes);
  FaultDomain dom;
  dom.node = heap_node;
  const std::uint32_t lv = floor_log2(heap_node);
  for (std::uint32_t lvl = lv; lvl <= depth; ++lvl) {
    const std::uint32_t shift = lvl - lv;
    const std::uint32_t first = heap_node << shift;
    for (std::uint32_t u = first; u < first + (1u << shift); ++u) {
      if (u < 2) continue;  // the root has no parent edge
      dom.channels.push_back(2 * (u - 2));      // u -> parent
      dom.channels.push_back(2 * (u - 2) + 1);  // parent -> u
    }
  }
  return dom;
}

Network build_benes(std::uint32_t k) {
  FT_CHECK(k >= 1 && k <= 16);
  const std::uint32_t rows = 1u << k;
  const std::uint32_t stages = 2 * k + 1;  // wire stages 0..2k
  Network net(stages * rows, "benes");
  auto id = [rows](std::uint32_t stage, std::uint32_t row) {
    return stage * rows + row;
  };
  // First k wire-stage transitions mirror a butterfly from high bit down,
  // the last k mirror it back up.
  for (std::uint32_t s = 0; s < 2 * k; ++s) {
    const std::uint32_t bit = s < k ? (k - 1 - s) : (s - k);
    for (std::uint32_t r = 0; r < rows; ++r) {
      net.add_bidi(id(s, r), id(s + 1, r));
      net.add_bidi(id(s, r), id(s + 1, r ^ (1u << bit)));
    }
  }
  std::vector<std::uint32_t> procs(rows);
  for (std::uint32_t r = 0; r < rows; ++r) procs[r] = id(0, r);
  net.set_processor_nodes(std::move(procs));
  return net;
}

Network build_tree_of_meshes(std::uint32_t depth) {
  FT_CHECK(depth >= 1 && depth <= 16);
  const std::uint32_t n = 1u << depth;
  // Tree node v (heap id, 1-based) at level l has width(v) = n / 2^l
  // switches. Switch (v, j) is a graph node; processors attach below the
  // leaf arrays (width 1), i.e. the leaf switch itself hosts a processor.
  std::vector<std::uint32_t> base(2 * n, 0);  // first graph-node id per v
  std::uint32_t total = 0;
  auto width = [&](std::uint32_t v) {
    const std::uint32_t level = floor_log2(v);
    return n >> level;
  };
  for (std::uint32_t v = 1; v < 2 * n; ++v) {
    base[v] = total;
    total += width(v);
  }
  Network net(total, "tree-of-meshes");
  for (std::uint32_t v = 1; v < 2 * n; ++v) {
    const std::uint32_t wv = width(v);
    // The array itself: a path of wv switches.
    for (std::uint32_t j = 0; j + 1 < wv; ++j) {
      net.add_bidi(base[v] + j, base[v] + j + 1);
    }
    if (v >= n) continue;  // leaves have no children
    // Parent-child trunks: the left child's wv/2 switches pair with the
    // first half of v's array, the right child's with the second half.
    const std::uint32_t l = 2 * v, r = 2 * v + 1;
    for (std::uint32_t j = 0; j < wv / 2; ++j) {
      net.add_bidi(base[v] + j, base[l] + j);
      net.add_bidi(base[v] + wv / 2 + j, base[r] + j);
    }
  }
  std::vector<std::uint32_t> procs(n);
  for (std::uint32_t p = 0; p < n; ++p) procs[p] = base[n + p];
  net.set_processor_nodes(std::move(procs));
  return net;
}

}  // namespace ft
