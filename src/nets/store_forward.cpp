#include "nets/store_forward.hpp"

#include <algorithm>

#include "engine/engine.hpp"
#include "engine/network_model.hpp"

namespace ft {

StoreForwardResult simulate_store_forward_stream(
    const Network& net, MessageSource& routes, std::size_t num_routes,
    const StoreForwardOptions& opts) {
  EngineOptions eopts;
  eopts.contention = ContentionPolicy::Fifo;
  eopts.parallel = opts.parallel;
  eopts.threads = opts.threads;
  eopts.fault_plan = opts.fault_plan;
  eopts.max_cycles = opts.max_rounds;
  eopts.time_phases = opts.time_phases;

  CycleEngine engine(network_channel_graph(net), eopts);
  const EngineResult er = engine.run_stream(routes, opts.observer);

  StoreForwardResult result;
  result.rounds = er.cycles;
  result.delivered = er.delivered;
  result.total_hops = er.total_hops;
  result.max_queue = er.max_queue;
  result.gave_up = er.gave_up;
  result.fault_down_events = er.fault_down_events;
  result.fault_up_events = er.fault_up_events;
  result.subtree_kill_events = er.subtree_kill_events;
  result.phases = er.phases;
  result.mean_latency = num_routes == 0
                            ? 0.0
                            : er.latency_sum /
                                  static_cast<double>(num_routes);
  return result;
}

StoreForwardResult simulate_store_forward(const Network& net,
                                          const std::vector<Route>& routes,
                                          const StoreForwardOptions& opts) {
  RouteChunkSource source(routes);
  return simulate_store_forward_stream(net, source, routes.size(), opts);
}

std::uint32_t store_forward_lower_bound(const Network& net,
                                        const std::vector<Route>& routes) {
  std::uint32_t dilation = 0;
  std::vector<std::uint64_t> load(net.num_links(), 0);
  for (const auto& r : routes) {
    dilation = std::max(dilation, static_cast<std::uint32_t>(r.size()));
    for (std::uint32_t lid : r) ++load[lid];
  }
  std::uint64_t congestion = 0;
  for (std::uint32_t lid = 0; lid < net.num_links(); ++lid) {
    congestion = std::max(
        congestion, (load[lid] + net.link(lid).capacity - 1) /
                        net.link(lid).capacity);
  }
  return std::max<std::uint32_t>(dilation,
                                 static_cast<std::uint32_t>(congestion));
}

}  // namespace ft
