#include "nets/store_forward.hpp"

#include <algorithm>
#include <deque>

#include "util/check.hpp"

namespace ft {

StoreForwardResult simulate_store_forward(const Network& net,
                                          const std::vector<Route>& routes) {
  StoreForwardResult result;

  struct Flight {
    std::uint32_t route_pos = 0;  // next link index in its route
  };
  std::vector<Flight> flights(routes.size());
  std::vector<std::deque<std::uint32_t>> queues(net.num_links());

  std::size_t in_flight = 0;
  double latency_sum = 0.0;
  for (std::size_t i = 0; i < routes.size(); ++i) {
    result.total_hops += routes[i].size();
    if (routes[i].empty()) continue;  // local message, finishes at round 0
    queues[routes[i][0]].push_back(static_cast<std::uint32_t>(i));
    ++in_flight;
  }

  while (in_flight > 0) {
    ++result.rounds;
    // Arrivals buffered so a message moves one hop per round.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> arrivals;  // link,msg
    bool moved = false;
    for (std::uint32_t lid = 0; lid < net.num_links(); ++lid) {
      auto& q = queues[lid];
      const std::uint32_t cap = net.link(lid).capacity;
      for (std::uint32_t c = 0; c < cap && !q.empty(); ++c) {
        const std::uint32_t msg = q.front();
        q.pop_front();
        moved = true;
        auto& fl = flights[msg];
        ++fl.route_pos;
        if (fl.route_pos == routes[msg].size()) {
          latency_sum += result.rounds;
          --in_flight;
        } else {
          arrivals.emplace_back(routes[msg][fl.route_pos], msg);
        }
      }
      result.max_queue =
          std::max(result.max_queue, static_cast<std::uint32_t>(q.size()));
    }
    FT_CHECK_MSG(moved, "store-and-forward made no progress");
    for (const auto& [lid, msg] : arrivals) queues[lid].push_back(msg);
  }

  result.mean_latency =
      routes.empty() ? 0.0 : latency_sum / static_cast<double>(routes.size());
  return result;
}

std::uint32_t store_forward_lower_bound(const Network& net,
                                        const std::vector<Route>& routes) {
  std::uint32_t dilation = 0;
  std::vector<std::uint64_t> load(net.num_links(), 0);
  for (const auto& r : routes) {
    dilation = std::max(dilation, static_cast<std::uint32_t>(r.size()));
    for (std::uint32_t lid : r) ++load[lid];
  }
  std::uint64_t congestion = 0;
  for (std::uint32_t lid = 0; lid < net.num_links(); ++lid) {
    congestion = std::max(
        congestion, (load[lid] + net.link(lid).capacity - 1) /
                        net.link(lid).capacity);
  }
  return std::max<std::uint32_t>(dilation,
                                 static_cast<std::uint32_t>(congestion));
}

}  // namespace ft
