#include "nets/layouts.hpp"

#include <cmath>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace ft {

Layout3D spread_layout(std::uint32_t n, std::uint32_t sx, std::uint32_t sy,
                       std::uint32_t sz) {
  FT_CHECK(n >= 1);
  const std::uint64_t cells =
      static_cast<std::uint64_t>(sx) * sy * sz;
  FT_CHECK_MSG(cells >= n, "box too small for processor count");
  Layout3D layout;
  layout.bounds = Box3{Point3{0, 0, 0},
                       Point3{static_cast<double>(sx),
                              static_cast<double>(sy),
                              static_cast<double>(sz)}};
  layout.positions.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    // Evenly spaced slot in [0, cells).
    const std::uint64_t slot = (static_cast<std::uint64_t>(i) * cells) / n;
    const std::uint32_t x = static_cast<std::uint32_t>(slot % sx);
    const std::uint32_t y = static_cast<std::uint32_t>((slot / sx) % sy);
    const std::uint32_t z = static_cast<std::uint32_t>(slot / (static_cast<std::uint64_t>(sx) * sy));
    layout.positions.push_back(
        Point3{x + 0.5, y + 0.5, z + 0.5});
  }
  return layout;
}

Layout3D layout_mesh2d(std::uint32_t rows, std::uint32_t cols) {
  Layout3D layout;
  layout.bounds = Box3{Point3{0, 0, 0},
                       Point3{static_cast<double>(cols),
                              static_cast<double>(rows), 1.0}};
  layout.positions.reserve(static_cast<std::size_t>(rows) * cols);
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      layout.positions.push_back(Point3{c + 0.5, r + 0.5, 0.5});
    }
  }
  return layout;
}

Layout3D layout_mesh3d(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  Layout3D layout;
  layout.bounds = Box3{Point3{0, 0, 0},
                       Point3{static_cast<double>(x), static_cast<double>(y),
                              static_cast<double>(z)}};
  layout.positions.reserve(static_cast<std::size_t>(x) * y * z);
  for (std::uint32_t k = 0; k < z; ++k) {
    for (std::uint32_t j = 0; j < y; ++j) {
      for (std::uint32_t i = 0; i < x; ++i) {
        layout.positions.push_back(Point3{i + 0.5, j + 0.5, k + 0.5});
      }
    }
  }
  return layout;
}

Layout3D layout_binary_tree(std::uint32_t n) {
  // Trees lay out in linear volume; a flat sqrt(2n) x sqrt(2n) slab.
  const auto side = static_cast<std::uint32_t>(
      std::ceil(std::sqrt(2.0 * static_cast<double>(n))));
  return spread_layout(n, side, side, 1);
}

namespace {

/// A box of volume ~n^{3/2} with near-equal integer sides.
Layout3D volume_n32_layout(std::uint32_t n) {
  FT_CHECK(is_pow2(n));
  const std::uint32_t lg = floor_log2(n);
  const std::uint32_t sx = 1u << ((lg + 1) / 2);
  const std::uint32_t sy = 1u << (lg / 2);
  const double target = std::pow(static_cast<double>(n), 1.5);
  const auto sz = static_cast<std::uint32_t>(std::max(
      1.0, std::round(target / (static_cast<double>(sx) * sy))));
  return spread_layout(n, sx, sy, sz);
}

}  // namespace

Layout3D layout_hypercube(std::uint32_t n) { return volume_n32_layout(n); }

Layout3D layout_butterfly(std::uint32_t n) { return volume_n32_layout(n); }

Layout3D layout_shuffle_exchange(std::uint32_t n) {
  return volume_n32_layout(n);
}

Layout3D layout_tree_of_meshes(std::uint32_t n) {
  // The tree of meshes lays out in Θ(n lg n) area (Leighton); a flat slab
  // sized to hold all Θ(n lg n) switches.
  FT_CHECK(is_pow2(n));
  const std::uint32_t lg = floor_log2(n);
  const double area = static_cast<double>(n) * (lg + 1);
  const auto side =
      static_cast<std::uint32_t>(std::ceil(std::sqrt(area)));
  return spread_layout(n, side, side, 1);
}

}  // namespace ft
