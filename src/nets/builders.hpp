// Builders for the classical networks the paper discusses: the Boolean
// hypercube and perfect-shuffle "ultracomputer" networks (Schwartz/Stone),
// two- and three-dimensional meshes and tori, the butterfly, the simple
// binary tree, and the Beneš rearrangeable permutation network.
#pragma once

#include <cstdint>

#include "engine/fault_plan.hpp"
#include "nets/network.hpp"

namespace ft {

/// Boolean hypercube on n = 2^dim processors; one bidirectional link per
/// dimension per node.
Network build_hypercube(std::uint32_t dim);

/// rows x cols mesh (4-neighbour); processors at every node.
Network build_mesh2d(std::uint32_t rows, std::uint32_t cols);

/// 2-D torus (wrap-around mesh).
Network build_torus2d(std::uint32_t rows, std::uint32_t cols);

/// x * y * z mesh (6-neighbour).
Network build_mesh3d(std::uint32_t x, std::uint32_t y, std::uint32_t z);

/// Perfect-shuffle network: exchange links (p <-> p^1) and shuffle links
/// (p -> rotate-left(p)).
Network build_shuffle_exchange(std::uint32_t dim);

/// k-stage butterfly with 2^k rows: processors attached to stage-0 nodes;
/// messages re-enter stage 0 via wrap links from stage k.
Network build_butterfly(std::uint32_t k);

/// Complete binary tree with n = 2^depth leaf processors and unit-capacity
/// links (the non-fat tree the paper contrasts with).
Network build_binary_tree(std::uint32_t depth);

/// Correlated-failure domain of the subtree rooted at `heap_node` in
/// build_binary_tree(depth): both directions of every edge incident to a
/// subtree node, including the edge to heap_node's parent. Link ids
/// follow build_binary_tree's add_bidi order (up 2*(v-2), down 2*(v-2)+1
/// for heap node v >= 2); the heap label matches fat_tree_subtree_domain,
/// so one kill scenario replays across backends.
FaultDomain binary_tree_subtree_domain(std::uint32_t depth,
                                       std::uint32_t heap_node);

/// Beneš network on n = 2^k terminals: back-to-back butterflies with
/// 2k - 1 switch stages. Processors are the n inputs (and outputs).
Network build_benes(std::uint32_t k);

/// Leighton's tree of meshes — the graph the paper says fat-trees
/// "resemble, and are based on". A complete binary tree whose node at
/// level l is expanded into a linear array of width n/2^l switches; the
/// arrays of a parent and a child are joined by width-of-child parallel
/// links. Processors sit at the n leaves. The parallel trunks are
/// exactly the fattened channels of Fig. 1.
Network build_tree_of_meshes(std::uint32_t depth);

}  // namespace ft
