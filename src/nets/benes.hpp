// The Beneš rearrangeable permutation network and its classical looping
// route-setting algorithm — the off-line permutation-routing baseline the
// paper compares high-volume universal fat-trees against in Section VI
// ("Up to constant factors, this is the best possible bound... for
// instance, by Beneš networks").
#pragma once

#include <cstdint>
#include <vector>

namespace ft {

/// Switch settings for a Beneš network on n = 2^k terminals: 2k-1 stages
/// of n/2 two-by-two switches; crossed[stage][switch] says whether the
/// switch exchanges its inputs.
struct BenesSettings {
  std::uint32_t k = 0;
  std::vector<std::vector<std::uint8_t>> crossed;

  std::uint32_t num_terminals() const { return 1u << k; }
  std::uint32_t num_stages() const { return 2 * k - 1; }
};

/// The looping algorithm: computes settings realizing the permutation
/// (perm[i] is the output reached from input i). perm must be a
/// permutation of 0..n-1 with n a power of two >= 2.
BenesSettings benes_route_permutation(const std::vector<std::uint32_t>& perm);

/// Applies settings: the permutation the configured network realizes.
/// benes_route_permutation followed by benes_apply is the identity map on
/// permutations (property-tested).
std::vector<std::uint32_t> benes_apply(const BenesSettings& settings);

}  // namespace ft
