// A generic link-capacitated routing network: the competitor substrate for
// the universality experiments (Theorem 10) and for the baselines the
// paper names (hypercube/shuffle ultracomputers, meshes, simple trees,
// Beneš permutation networks).
//
// Nodes are switches and/or processors; processors are a designated
// subset (for direct networks every node hosts a processor, for indirect
// networks such as the butterfly the processors sit at the edge stages).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace ft {

struct NetLink {
  std::uint32_t from;
  std::uint32_t to;
  std::uint32_t capacity;  ///< messages per round
};

class Network {
 public:
  explicit Network(std::uint32_t num_nodes, std::string name = "net")
      : name_(std::move(name)), out_links_(num_nodes) {}

  const std::string& name() const { return name_; }

  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(out_links_.size());
  }
  std::uint32_t num_links() const {
    return static_cast<std::uint32_t>(links_.size());
  }

  std::uint32_t add_link(std::uint32_t from, std::uint32_t to,
                         std::uint32_t capacity = 1) {
    FT_CHECK(from < num_nodes() && to < num_nodes() && from != to);
    const auto id = static_cast<std::uint32_t>(links_.size());
    links_.push_back(NetLink{from, to, capacity});
    out_links_[from].push_back(id);
    return id;
  }

  /// Adds links in both directions.
  void add_bidi(std::uint32_t a, std::uint32_t b, std::uint32_t capacity = 1) {
    add_link(a, b, capacity);
    add_link(b, a, capacity);
  }

  const NetLink& link(std::uint32_t id) const {
    FT_CHECK(id < links_.size());
    return links_[id];
  }
  const std::vector<std::uint32_t>& out_links(std::uint32_t node) const {
    FT_CHECK(node < num_nodes());
    return out_links_[node];
  }

  /// Processor placement: processor p lives at node proc_nodes()[p].
  void set_processor_nodes(std::vector<std::uint32_t> nodes) {
    for (auto v : nodes) FT_CHECK(v < num_nodes());
    proc_nodes_ = std::move(nodes);
  }
  std::uint32_t num_processors() const {
    return static_cast<std::uint32_t>(proc_nodes_.size());
  }
  std::uint32_t node_of_processor(std::uint32_t p) const {
    FT_CHECK(p < proc_nodes_.size());
    return proc_nodes_[p];
  }

  /// Maximum out-degree over nodes (the constant-degree assumption of
  /// Theorem 10's second bound).
  std::uint32_t max_degree() const;

 private:
  std::string name_;
  std::vector<NetLink> links_;
  std::vector<std::vector<std::uint32_t>> out_links_;
  std::vector<std::uint32_t> proc_nodes_;
};

}  // namespace ft
