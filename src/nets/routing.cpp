#include "nets/routing.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>

#include "util/check.hpp"

namespace ft {

namespace {

constexpr std::uint32_t kUnvisited = std::numeric_limits<std::uint32_t>::max();

/// BFS parents from one source: parent_link[v] = link entering v.
std::vector<std::uint32_t> bfs_parents(const Network& net,
                                       std::uint32_t source) {
  std::vector<std::uint32_t> parent_link(net.num_nodes(), kUnvisited);
  std::vector<std::uint8_t> seen(net.num_nodes(), 0);
  std::queue<std::uint32_t> q;
  seen[source] = 1;
  q.push(source);
  while (!q.empty()) {
    const std::uint32_t u = q.front();
    q.pop();
    for (std::uint32_t lid : net.out_links(u)) {
      const std::uint32_t v = net.link(lid).to;
      if (!seen[v]) {
        seen[v] = 1;
        parent_link[v] = lid;
        q.push(v);
      }
    }
  }
  return parent_link;
}

Route extract_route(const Network& net,
                    const std::vector<std::uint32_t>& parent_link,
                    std::uint32_t from, std::uint32_t to) {
  Route rev;
  std::uint32_t cur = to;
  while (cur != from) {
    const std::uint32_t lid = parent_link[cur];
    FT_CHECK_MSG(lid != kUnvisited, "destination unreachable");
    rev.push_back(lid);
    cur = net.link(lid).from;
  }
  std::reverse(rev.begin(), rev.end());
  return rev;
}

std::uint32_t find_link(const Network& net, std::uint32_t from,
                        std::uint32_t to) {
  for (std::uint32_t lid : net.out_links(from)) {
    if (net.link(lid).to == to) return lid;
  }
  FT_CHECK_MSG(false, "no such link");
  return 0;
}

}  // namespace

Route bfs_route(const Network& net, std::uint32_t from_node,
                std::uint32_t to_node) {
  if (from_node == to_node) return {};
  const auto parents = bfs_parents(net, from_node);
  return extract_route(net, parents, from_node, to_node);
}

std::vector<Route> route_all_bfs(const Network& net, const MessageSet& m) {
  std::vector<Route> routes(m.size());
  // Group message indices by source node so each source runs one BFS.
  std::map<std::uint32_t, std::vector<std::size_t>> by_source;
  for (std::size_t i = 0; i < m.size(); ++i) {
    by_source[net.node_of_processor(m[i].src)].push_back(i);
  }
  for (const auto& [src_node, idxs] : by_source) {
    const auto parents = bfs_parents(net, src_node);
    for (std::size_t i : idxs) {
      const std::uint32_t dst_node = net.node_of_processor(m[i].dst);
      if (dst_node != src_node) {
        routes[i] = extract_route(net, parents, src_node, dst_node);
      }
    }
  }
  return routes;
}

Route ecube_route(const Network& net, std::uint32_t dim, std::uint32_t from,
                  std::uint32_t to) {
  Route route;
  std::uint32_t cur = from;
  for (std::uint32_t d = 0; d < dim; ++d) {
    const std::uint32_t bit = 1u << d;
    if ((cur ^ to) & bit) {
      const std::uint32_t next = cur ^ bit;
      route.push_back(find_link(net, cur, next));
      cur = next;
    }
  }
  FT_CHECK(cur == to);
  return route;
}

Route xy_route(const Network& net, std::uint32_t rows, std::uint32_t cols,
               std::uint32_t from, std::uint32_t to) {
  (void)rows;
  Route route;
  std::uint32_t r = from / cols, c = from % cols;
  const std::uint32_t tr = to / cols, tc = to % cols;
  auto id = [cols](std::uint32_t rr, std::uint32_t cc) {
    return rr * cols + cc;
  };
  while (c != tc) {
    const std::uint32_t nc = c < tc ? c + 1 : c - 1;
    route.push_back(find_link(net, id(r, c), id(r, nc)));
    c = nc;
  }
  while (r != tr) {
    const std::uint32_t nr = r < tr ? r + 1 : r - 1;
    route.push_back(find_link(net, id(r, c), id(nr, c)));
    r = nr;
  }
  return route;
}

}  // namespace ft
