// The Theorem 10 pipeline: simulate an arbitrary routing network R of
// volume v on the universal fat-tree of the same volume.
//
//   1. Lay R out in 3-space (nets/layouts.hpp).
//   2. Build its cutting-plane decomposition tree (Theorem 5) and balance
//      it (Theorem 8).
//   3. Identify R's processors with fat-tree leaves via the balanced
//      tree's in-order leaf sequence.
//   4. Size the fat-tree to volume v: root capacity
//      Θ(v^{2/3}/lg(n/v^{2/3})).
//   5. Route the (remapped) message set off-line; the theorem predicts
//      λ(M) = O(t·lg n), hence O(t·lg² n) delivery cycles and O(t·lg³ n)
//      total time against R's time t.
//
// Also here: the Section VI application of emulating fixed-connection
// networks (each link becomes one message of a one-cycle set, so one
// emulated communication step costs O(lg n) fat-tree time).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/capacity.hpp"
#include "core/message.hpp"
#include "core/topology.hpp"
#include "layout/geometry.hpp"
#include "nets/network.hpp"

namespace ft {

/// Steps 1-3: the processor identification induced by the balanced
/// decomposition of a layout. Entry i is the network processor placed at
/// fat-tree leaf i.
std::vector<std::uint32_t> identify_processors(const Layout3D& layout);

struct UniversalityReport {
  std::string network;
  std::uint32_t n = 0;
  double volume = 0.0;
  std::uint64_t ft_root_capacity = 0;
  std::uint64_t competitor_rounds = 0;  ///< t: store-and-forward time on R
  double load_factor = 0.0;             ///< λ(M) on the fat-tree
  std::size_t ft_cycles = 0;            ///< off-line schedule length
  double ft_time = 0.0;                 ///< cycles × Θ(lg n) bit-time
  double slowdown = 0.0;                ///< ft_time / t
  double lg3_n = 0.0;                   ///< the theorem's reference curve
};

/// Runs the full pipeline for one network + layout + message set.
UniversalityReport simulate_network_on_fattree(const Network& net,
                                               const Layout3D& layout,
                                               const MessageSet& messages);

/// Fixed-connection network emulation (Section VI): the links of `net`
/// become a message set routed on a universal fat-tree whose processors
/// have degree-d connections; reports the delivery cycles for one
/// emulated step (Θ(1) cycles, i.e. O(lg n) time, when capacities allow).
struct EmulationReport {
  std::string network;
  std::uint32_t n = 0;
  std::uint32_t degree = 0;
  double load_factor = 0.0;
  std::size_t cycles_per_step = 0;
};
EmulationReport emulate_fixed_connection(const Network& net,
                                         std::uint64_t root_capacity);

}  // namespace ft
