#include "sim/experiment.hpp"

#include <cstdio>

#include "util/table.hpp"

namespace ft {

std::vector<std::uint32_t> pow2_range(std::uint32_t lo, std::uint32_t hi) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t e = lo; e <= hi; ++e) out.push_back(1u << e);
  return out;
}

std::string ratio_str(double value, double reference) {
  if (reference == 0.0) return "n/a";
  return format_double(value / reference, 2) + "x";
}

void print_experiment_header(const std::string& id,
                             const std::string& artifact,
                             const std::string& claim) {
  std::printf("\n################################################\n");
  std::printf("# %s — %s\n", id.c_str(), artifact.c_str());
  std::printf("# Paper claim: %s\n", claim.c_str());
  std::printf("################################################\n");
}

}  // namespace ft
