// Shared helpers for the experiment binaries in bench/.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ft {

/// {2^lo, 2^{lo+1}, ..., 2^hi}.
std::vector<std::uint32_t> pow2_range(std::uint32_t lo, std::uint32_t hi);

/// "1.23x" style ratio formatting for experiment tables.
std::string ratio_str(double value, double reference);

/// Prints the standard experiment banner (id, paper artifact, claim).
void print_experiment_header(const std::string& id,
                             const std::string& artifact,
                             const std::string& claim);

}  // namespace ft
