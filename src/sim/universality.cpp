#include "sim/universality.hpp"

#include <cmath>

#include "core/load.hpp"
#include "core/offline_scheduler.hpp"
#include "layout/balanced.hpp"
#include "layout/decomposition.hpp"
#include "layout/vlsi_model.hpp"
#include "nets/routing.hpp"
#include "nets/store_forward.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"

namespace ft {

std::vector<std::uint32_t> identify_processors(const Layout3D& layout) {
  const DecompositionTree tree = cut_plane_decomposition(layout);
  const BalancedDecomposition balanced(tree);
  return balanced.processor_order();
}

UniversalityReport simulate_network_on_fattree(const Network& net,
                                               const Layout3D& layout,
                                               const MessageSet& messages) {
  const std::uint32_t n = net.num_processors();
  FT_CHECK(is_pow2(n));
  FT_CHECK(layout.num_processors() == n);

  UniversalityReport report;
  report.network = net.name();
  report.n = n;
  report.volume = layout.volume();
  const double lg_n = std::log2(static_cast<double>(n));
  report.lg3_n = lg_n * lg_n * lg_n;

  // Competitor time t: synchronous store-and-forward on R.
  const auto routes = route_all_bfs(net, messages);
  report.competitor_rounds = simulate_store_forward(net, routes).rounds;

  // Identify processors with fat-tree leaves via the balanced
  // decomposition, then remap the message set into leaf coordinates.
  const auto order = identify_processors(layout);
  std::vector<std::uint32_t> leaf_of_proc(n);
  for (std::uint32_t leaf = 0; leaf < n; ++leaf) {
    leaf_of_proc[order[leaf]] = leaf;
  }
  MessageSet remapped;
  remapped.reserve(messages.size());
  for (const auto& msg : messages) {
    remapped.push_back({leaf_of_proc[msg.src], leaf_of_proc[msg.dst]});
  }

  // The equal-volume universal fat-tree.
  const FatTreeTopology topo(n);
  report.ft_root_capacity = root_capacity_for_volume(n, report.volume);
  const CapacityProfile caps =
      CapacityProfile::universal(topo, report.ft_root_capacity);

  report.load_factor = load_factor(topo, caps, remapped);
  const Schedule schedule = schedule_offline(topo, caps, remapped);
  FT_CHECK(verify_schedule(topo, caps, remapped, schedule));
  report.ft_cycles = schedule.num_cycles();

  // A delivery cycle costs Θ(lg n) bit-times (Section II).
  const double cycle_cost = 2.0 * topo.height() + 2.0;
  report.ft_time = static_cast<double>(report.ft_cycles) * cycle_cost;
  report.slowdown = report.competitor_rounds > 0
                        ? report.ft_time /
                              static_cast<double>(report.competitor_rounds)
                        : 0.0;
  return report;
}

EmulationReport emulate_fixed_connection(const Network& net,
                                         std::uint64_t root_capacity) {
  const std::uint32_t n = net.num_processors();
  FT_CHECK(is_pow2(n));

  EmulationReport report;
  report.network = net.name();
  report.n = n;
  report.degree = net.max_degree();

  // One emulated communication step: every link delivers one message.
  // Only links between processor-bearing nodes matter for direct networks;
  // we emulate the processor-to-processor connectivity.
  std::vector<std::int32_t> proc_of_node(net.num_nodes(), -1);
  for (std::uint32_t p = 0; p < n; ++p) {
    proc_of_node[net.node_of_processor(p)] = static_cast<std::int32_t>(p);
  }
  MessageSet step;
  for (std::uint32_t lid = 0; lid < net.num_links(); ++lid) {
    const auto& link = net.link(lid);
    const std::int32_t sp = proc_of_node[link.from];
    const std::int32_t dp = proc_of_node[link.to];
    if (sp >= 0 && dp >= 0) {
      step.push_back({static_cast<Leaf>(sp), static_cast<Leaf>(dp)});
    }
  }

  const FatTreeTopology topo(n);
  // Processor channels widened to the emulated degree d (the relaxation
  // the paper describes for fixed-connection emulation).
  std::vector<std::uint64_t> levels =
      CapacityProfile::universal(topo, root_capacity).levels();
  for (auto& c : levels) c *= report.degree;
  const CapacityProfile caps(topo, std::move(levels));

  report.load_factor = load_factor(topo, caps, step);
  // First-fit packing: a one-cycle message set really costs one delivery
  // cycle (the level-by-level Theorem 1 assembly would charge one cycle
  // per level even at lambda = 1).
  const Schedule schedule = schedule_offline_packed(topo, caps, step);
  FT_CHECK(verify_schedule(topo, caps, step, schedule));
  report.cycles_per_step = schedule.num_cycles();
  return report;
}

}  // namespace ft
