#include "switch/node.hpp"

#include "util/check.hpp"

namespace ft {

namespace {

std::unique_ptr<Concentrator> make_concentrator(std::size_t inputs,
                                                std::size_t outputs,
                                                ConcentratorKind kind,
                                                Rng& rng) {
  if (kind == ConcentratorKind::Ideal) {
    return std::make_unique<IdealConcentrator>(inputs, outputs);
  }
  return std::make_unique<ConcentratorCascade>(inputs, outputs, rng);
}

}  // namespace

LevelSwitch::LevelSwitch(std::uint64_t parent_cap, std::uint64_t child_cap,
                         ConcentratorKind kind, Rng& rng)
    : parent_cap_(parent_cap), child_cap_(child_cap) {
  FT_CHECK(parent_cap >= 1 && child_cap >= 1);
  up_ = make_concentrator(static_cast<std::size_t>(2 * child_cap),
                          static_cast<std::size_t>(parent_cap), kind, rng);
  down_ = make_concentrator(static_cast<std::size_t>(parent_cap + child_cap),
                            static_cast<std::size_t>(child_cap), kind, rng);
}

std::uint64_t LevelSwitch::component_count() const {
  // Each output port's selector needs one AND gate per incoming wire and
  // the concentrator O(1) switches per wire per stage; we count incident
  // wires, the paper's O(m) measure. The up port sees 2*child_cap inputs,
  // each down port parent_cap + child_cap.
  return 2 * child_cap_ + 2 * (parent_cap_ + child_cap_) +
         (parent_cap_ + 2 * child_cap_);
}

}  // namespace ft
