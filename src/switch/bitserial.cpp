#include "switch/bitserial.hpp"

#include <algorithm>
#include <map>

#include "util/check.hpp"

namespace ft {
namespace {

struct Flight {
  Leaf src;
  Leaf dst;
  std::uint32_t lca_level;
  std::uint32_t wire = 0;  ///< wire occupied in the current channel
  bool alive = true;
  std::size_t original_index;
};

}  // namespace

BitSerialSimulator::BitSerialSimulator(const FatTreeTopology& topo,
                                       const CapacityProfile& caps,
                                       const BitSerialOptions& options)
    : topo_(topo), caps_(caps), options_(options) {
  Rng rng(options_.seed);
  switches_.reserve(topo_.height());
  for (std::uint32_t k = 0; k < topo_.height(); ++k) {
    switches_.emplace_back(caps_.capacity_at_level(k),
                           caps_.capacity_at_level(k + 1),
                           options_.concentrators, rng);
  }
}

const LevelSwitch& BitSerialSimulator::level_switch(std::uint32_t level) const {
  FT_CHECK(level < switches_.size());
  return switches_[level];
}

std::uint32_t BitSerialSimulator::address_bits(Leaf src, Leaf dst) const {
  if (src == dst) return 0;
  const std::uint32_t lca_level = topo_.level(topo_.lca(src, dst));
  return 2 * (topo_.height() - lca_level);
}

CycleResult BitSerialSimulator::run_cycle(const MessageSet& m) const {
  const std::uint32_t L = topo_.height();
  const std::uint32_t n = topo_.num_processors();

  CycleResult result;
  result.delivered.assign(m.size(), 0);

  std::vector<Flight> flights;
  flights.reserve(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m[i].src == m[i].dst) {
      // Local delivery: never enters the network.
      result.delivered[i] = 1;
      ++result.num_delivered;
      result.makespan_bits =
          std::max(result.makespan_bits, 1 + options_.payload_bits);
      continue;
    }
    flights.push_back(Flight{m[i].src, m[i].dst,
                             topo_.level(topo_.lca(m[i].src, m[i].dst)), 0,
                             true, i});
  }

  // ---- Injection: each processor drives its leaf channel (cap(L) wires).
  {
    std::map<Leaf, std::vector<std::size_t>> by_leaf;
    for (std::size_t f = 0; f < flights.size(); ++f) {
      by_leaf[flights[f].src].push_back(f);
    }
    const std::uint64_t leaf_cap = caps_.capacity_at_level(L);
    for (auto& [leaf, fs] : by_leaf) {
      (void)leaf;
      for (std::size_t j = 0; j < fs.size(); ++j) {
        if (j < leaf_cap) {
          flights[fs[j]].wire = static_cast<std::uint32_t>(j);
        } else {
          flights[fs[j]].alive = false;
          ++result.lost;
        }
      }
    }
  }

  // ---- Ascend: arbitrate up channels from level L-1 down to 1. The up
  // channel above node u (level k) is driven by u's up concentrator, whose
  // inputs come from u's two child channels.
  for (std::uint32_t k = L; k-- >= 1;) {
    if (k == 0) break;
    std::map<NodeId, std::vector<std::size_t>> by_node;
    for (std::size_t f = 0; f < flights.size(); ++f) {
      const auto& fl = flights[f];
      if (!fl.alive || k <= fl.lca_level) continue;
      const NodeId node = (n + fl.src) >> (L - k);
      by_node[node].push_back(f);
    }
    const LevelSwitch& sw = switches_[k];  // node at level k
    for (auto& [node, fs] : by_node) {
      std::vector<std::uint32_t> inputs;
      inputs.reserve(fs.size());
      for (std::size_t f : fs) {
        const auto& fl = flights[f];
        // Which child of `node` did the message ascend from?
        const NodeId child = (n + fl.src) >> (L - k - 1);
        const bool right = (child & 1u) != 0;
        inputs.push_back(static_cast<std::uint32_t>(
            sw.up_input_from_child(right, fl.wire)));
      }
      const auto wires = sw.up().route(inputs);
      for (std::size_t j = 0; j < fs.size(); ++j) {
        if (wires[j] >= 0) {
          flights[fs[j]].wire = static_cast<std::uint32_t>(wires[j]);
        } else {
          flights[fs[j]].alive = false;
          ++result.lost;
        }
      }
    }
  }

  // ---- Descend: arbitrate down channels from level 1 to L. The down
  // channel above node u (level k) is driven by parent(u)'s down
  // concentrator toward u; inputs are the parent's U port (pass-through
  // messages) and the sibling's up channel (messages turning at the
  // parent, which is their LCA).
  for (std::uint32_t k = 1; k <= L; ++k) {
    std::map<NodeId, std::vector<std::size_t>> by_node;
    for (std::size_t f = 0; f < flights.size(); ++f) {
      const auto& fl = flights[f];
      if (!fl.alive || k <= fl.lca_level) continue;
      const NodeId node = (n + fl.dst) >> (L - k);
      by_node[node].push_back(f);
    }
    const LevelSwitch& sw = switches_[k - 1];  // parent node at level k-1
    for (auto& [node, fs] : by_node) {
      std::vector<std::uint32_t> inputs;
      inputs.reserve(fs.size());
      for (std::size_t f : fs) {
        const auto& fl = flights[f];
        const bool turning = fl.lca_level == k - 1;
        inputs.push_back(static_cast<std::uint32_t>(
            turning ? sw.down_input_from_sibling(fl.wire)
                    : sw.down_input_from_parent(fl.wire)));
      }
      const auto wires = sw.down().route(inputs);
      for (std::size_t j = 0; j < fs.size(); ++j) {
        if (wires[j] >= 0) {
          flights[fs[j]].wire = static_cast<std::uint32_t>(wires[j]);
        } else {
          flights[fs[j]].alive = false;
          ++result.lost;
        }
      }
    }
  }

  // ---- Arrival accounting: hop delay + M bit + address + payload.
  for (const auto& fl : flights) {
    if (!fl.alive) continue;
    result.delivered[fl.original_index] = 1;
    ++result.num_delivered;
    const std::uint32_t hops = 2 * (L - fl.lca_level) - 1;  // nodes visited
    const std::uint32_t addr = 2 * (L - fl.lca_level);
    const std::uint32_t t = hops + 1 + addr + options_.payload_bits;
    result.makespan_bits = std::max(result.makespan_bits, t);
  }
  return result;
}

FullRunResult BitSerialSimulator::run_until_delivered(
    const MessageSet& m, std::uint32_t max_cycles) const {
  FullRunResult out;
  MessageSet pending = m;
  Rng retry_rng(options_.seed ^ 0x5ca1ab1eULL);
  while (!pending.empty()) {
    FT_CHECK_MSG(out.delivery_cycles < max_cycles,
                 "bit-serial run exceeded max_cycles");
    // Randomize retry priority: arbitration is order-sensitive, so a fresh
    // order each cycle prevents a fixed loser set from livelocking.
    retry_rng.shuffle(pending);
    const CycleResult cycle = run_cycle(pending);
    ++out.delivery_cycles;
    out.total_bit_time += cycle.makespan_bits;
    out.total_losses += cycle.lost;
    MessageSet next;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (!cycle.delivered[i]) next.push_back(pending[i]);
    }
    FT_CHECK_MSG(next.size() < pending.size() || pending.empty(),
                 "bit-serial cycle made no progress");
    pending = std::move(next);
  }
  return out;
}

}  // namespace ft
