#include "switch/concentrator.hpp"

#include <algorithm>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace ft {

IdealConcentrator::IdealConcentrator(std::size_t inputs, std::size_t outputs)
    : inputs_(inputs), outputs_(outputs) {
  FT_CHECK(outputs >= 1);
}

std::vector<std::int32_t> IdealConcentrator::route(
    const std::vector<std::uint32_t>& active_inputs) const {
  std::vector<std::int32_t> out(active_inputs.size(), -1);
  const std::size_t routed = std::min(active_inputs.size(), outputs_);
  for (std::size_t i = 0; i < routed; ++i) {
    FT_CHECK(active_inputs[i] < inputs_);
    out[i] = static_cast<std::int32_t>(i);
  }
  return out;
}

PartialConcentrator::PartialConcentrator(std::size_t inputs,
                                         std::size_t outputs, Rng& rng,
                                         std::size_t in_degree)
    : inputs_(inputs),
      graph_(inputs, outputs == 0
                         ? std::max<std::size_t>(1, ceil_div(2 * inputs, 3))
                         : outputs) {
  FT_CHECK(inputs >= 1);
  const std::size_t s = graph_.num_right();
  const std::size_t degree = std::min(in_degree, s);
  // Each input connects to `degree` distinct uniformly random outputs; the
  // random graph is an expander with high probability, which is exactly
  // Pippenger's existence argument.
  std::vector<std::uint32_t> outputs_pool(s);
  for (std::size_t i = 0; i < s; ++i) {
    outputs_pool[i] = static_cast<std::uint32_t>(i);
  }
  for (std::size_t u = 0; u < inputs; ++u) {
    // Partial Fisher-Yates: the first `degree` entries become u's targets.
    for (std::size_t j = 0; j < degree; ++j) {
      const std::size_t k = j + rng.below(s - j);
      std::swap(outputs_pool[j], outputs_pool[k]);
      graph_.add_edge(u, outputs_pool[j]);
    }
  }
}

std::vector<std::int32_t> PartialConcentrator::route(
    const std::vector<std::uint32_t>& active_inputs) const {
  const Matching m = hopcroft_karp_subset(graph_, active_inputs);
  std::vector<std::int32_t> out(active_inputs.size(), -1);
  for (std::size_t i = 0; i < active_inputs.size(); ++i) {
    out[i] = m.match_left[active_inputs[i]];
  }
  return out;
}

double PartialConcentrator::measure_full_routing_rate(std::size_t k,
                                                      std::size_t trials,
                                                      Rng& rng) const {
  FT_CHECK(k <= inputs_);
  std::size_t full = 0;
  std::vector<std::uint32_t> pool(inputs_);
  for (std::size_t i = 0; i < inputs_; ++i) {
    pool[i] = static_cast<std::uint32_t>(i);
  }
  for (std::size_t t = 0; t < trials; ++t) {
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t idx = j + rng.below(inputs_ - j);
      std::swap(pool[j], pool[idx]);
    }
    const std::vector<std::uint32_t> active(pool.begin(),
                                            pool.begin() +
                                                static_cast<std::ptrdiff_t>(k));
    const Matching m = hopcroft_karp_subset(graph_, active);
    if (m.size == k) ++full;
  }
  return trials ? static_cast<double>(full) / static_cast<double>(trials)
                : 1.0;
}

ConcentratorCascade::ConcentratorCascade(std::size_t inputs,
                                         std::size_t target_outputs, Rng& rng,
                                         std::size_t in_degree)
    : inputs_(inputs), outputs_(inputs) {
  FT_CHECK(target_outputs >= 1);
  // Shrink by 2/3 per stage until at or below the target; a final exact
  // stage lands on target_outputs. The floor guarantees strict shrinkage
  // (ceil(2·2/3) = 2 would loop forever on two-wire stages).
  while (outputs_ > target_outputs) {
    const std::size_t next =
        std::max(target_outputs, (2 * outputs_) / 3);
    stages_.emplace_back(outputs_, next, rng, in_degree);
    outputs_ = next;
  }
}

std::vector<std::int32_t> ConcentratorCascade::route(
    const std::vector<std::uint32_t>& active_inputs) const {
  // Route stage by stage; a message lost at any stage stays lost.
  std::vector<std::int32_t> result(active_inputs.size(), -1);
  // current wire of each still-alive message, and its index in `result`
  std::vector<std::uint32_t> wires = active_inputs;
  std::vector<std::size_t> owner(active_inputs.size());
  for (std::size_t i = 0; i < owner.size(); ++i) owner[i] = i;

  if (stages_.empty()) {
    for (std::size_t i = 0; i < active_inputs.size(); ++i) {
      result[i] = static_cast<std::int32_t>(active_inputs[i]);
    }
    return result;
  }

  for (const auto& stage : stages_) {
    const auto assigned = stage.route(wires);
    std::vector<std::uint32_t> next_wires;
    std::vector<std::size_t> next_owner;
    for (std::size_t i = 0; i < wires.size(); ++i) {
      if (assigned[i] >= 0) {
        next_wires.push_back(static_cast<std::uint32_t>(assigned[i]));
        next_owner.push_back(owner[i]);
      }
    }
    wires = std::move(next_wires);
    owner = std::move(next_owner);
  }
  for (std::size_t i = 0; i < wires.size(); ++i) {
    result[owner[i]] = static_cast<std::int32_t>(wires[i]);
  }
  return result;
}

}  // namespace ft
