// Maximum bipartite matching (Hopcroft–Karp). The paper sets up paths
// through partial concentrator graphs "by performing a sequence of
// matchings on each level of the graph"; this is that machinery. Also used
// by tests to check Hall-style concentration properties directly.
#pragma once

#include <cstdint>
#include <vector>

namespace ft {

/// A bipartite graph as left-vertex adjacency lists (right vertex ids).
class BipartiteGraph {
 public:
  BipartiteGraph(std::size_t num_left, std::size_t num_right)
      : num_left_(num_left), num_right_(num_right), adj_(num_left) {}

  void add_edge(std::size_t left, std::size_t right);

  std::size_t num_left() const { return num_left_; }
  std::size_t num_right() const { return num_right_; }
  const std::vector<std::uint32_t>& neighbors(std::size_t left) const {
    return adj_[left];
  }

 private:
  std::size_t num_left_;
  std::size_t num_right_;
  std::vector<std::vector<std::uint32_t>> adj_;
};

/// The matching result: for each left vertex, its matched right vertex or
/// -1; `size` is the number of matched pairs.
struct Matching {
  std::vector<std::int32_t> match_left;
  std::vector<std::int32_t> match_right;
  std::size_t size = 0;
};

/// Maximum matching over the whole left side. O(E * sqrt(V)).
Matching hopcroft_karp(const BipartiteGraph& g);

/// Maximum matching restricted to a subset of active left vertices (the
/// concentrator use case: only inputs carrying messages need paths).
Matching hopcroft_karp_subset(const BipartiteGraph& g,
                              const std::vector<std::uint32_t>& active_left);

}  // namespace ft
