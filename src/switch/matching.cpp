#include "switch/matching.hpp"

#include <limits>
#include <queue>

#include "util/check.hpp"

namespace ft {

void BipartiteGraph::add_edge(std::size_t left, std::size_t right) {
  FT_CHECK(left < num_left_ && right < num_right_);
  adj_[left].push_back(static_cast<std::uint32_t>(right));
}

namespace {

constexpr std::int32_t kFree = -1;
constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

/// Hopcroft–Karp over an explicit active-left subset.
Matching run(const BipartiteGraph& g,
             const std::vector<std::uint32_t>& active) {
  Matching m;
  m.match_left.assign(g.num_left(), kFree);
  m.match_right.assign(g.num_right(), kFree);

  std::vector<std::uint32_t> dist(g.num_left(), kInf);

  auto bfs = [&]() -> bool {
    std::queue<std::uint32_t> q;
    for (std::uint32_t u : active) {
      if (m.match_left[u] == kFree) {
        dist[u] = 0;
        q.push(u);
      } else {
        dist[u] = kInf;
      }
    }
    bool found_augmenting = false;
    while (!q.empty()) {
      const std::uint32_t u = q.front();
      q.pop();
      for (std::uint32_t v : g.neighbors(u)) {
        const std::int32_t w = m.match_right[v];
        if (w == kFree) {
          found_augmenting = true;
        } else if (dist[static_cast<std::size_t>(w)] == kInf) {
          dist[static_cast<std::size_t>(w)] = dist[u] + 1;
          q.push(static_cast<std::uint32_t>(w));
        }
      }
    }
    return found_augmenting;
  };

  auto dfs = [&](auto&& self, std::uint32_t u) -> bool {
    for (std::uint32_t v : g.neighbors(u)) {
      const std::int32_t w = m.match_right[v];
      if (w == kFree || (dist[static_cast<std::size_t>(w)] == dist[u] + 1 &&
                         self(self, static_cast<std::uint32_t>(w)))) {
        m.match_left[u] = static_cast<std::int32_t>(v);
        m.match_right[v] = static_cast<std::int32_t>(u);
        return true;
      }
    }
    dist[u] = kInf;
    return false;
  };

  while (bfs()) {
    for (std::uint32_t u : active) {
      if (m.match_left[u] == kFree && dfs(dfs, u)) {
        ++m.size;
      }
    }
  }
  return m;
}

}  // namespace

Matching hopcroft_karp(const BipartiteGraph& g) {
  std::vector<std::uint32_t> all(g.num_left());
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = static_cast<std::uint32_t>(i);
  }
  return run(g, all);
}

Matching hopcroft_karp_subset(const BipartiteGraph& g,
                              const std::vector<std::uint32_t>& active_left) {
  for (auto u : active_left) FT_CHECK(u < g.num_left());
  return run(g, active_left);
}

}  // namespace ft
