// Bit-serial delivery-cycle simulation (Section II, Fig. 2).
//
// Messages are bit strings: an M bit (does this wire carry a message?),
// then address bits consumed one per node (while ascending, a bit decides
// "continue up" vs "turn here"; after turning, a bit per node decides left
// vs right — at most 2·lg n address bits), then the payload. Leading bits
// snake through the tree establishing a path for the rest to follow.
//
// Within one delivery cycle the simulator arbitrates every channel with
// the node's concentrator (ideal or partial, Fig. 3) in causal order —
// up channels leaf-to-root, then down channels root-to-leaf — tracking
// the physical wire each message occupies in each channel. Messages that
// lose a concentrator lottery are lost (congestion); the acknowledgment
// mechanism reports them to the source, which resends next cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "core/capacity.hpp"
#include "core/message.hpp"
#include "core/topology.hpp"
#include "switch/node.hpp"
#include "util/prng.hpp"

namespace ft {

struct BitSerialOptions {
  ConcentratorKind concentrators = ConcentratorKind::Ideal;
  std::uint32_t payload_bits = 32;
  std::uint64_t seed = 0x0b17531a15ULL;  ///< wiring seed for partial mode
};

/// Outcome of one delivery cycle.
struct CycleResult {
  std::vector<std::uint8_t> delivered;  ///< per input message
  std::uint64_t lost = 0;
  /// Bit-times until the last delivered message fully arrived:
  /// path nodes (unit switch delay each) + 1 (M bit) + address bits +
  /// payload bits.
  std::uint32_t makespan_bits = 0;
  std::size_t num_delivered = 0;
};

/// Outcome of routing a whole message set with retry-on-loss.
struct FullRunResult {
  std::uint32_t delivery_cycles = 0;
  std::uint64_t total_bit_time = 0;  ///< sum of per-cycle makespans
  std::uint64_t total_losses = 0;
};

class BitSerialSimulator {
 public:
  BitSerialSimulator(const FatTreeTopology& topo, const CapacityProfile& caps,
                     const BitSerialOptions& options = {});

  /// Simulates one delivery cycle carrying `m`.
  CycleResult run_cycle(const MessageSet& m) const;

  /// Repeats delivery cycles (lost messages resent) until all of `m` has
  /// been delivered.
  FullRunResult run_until_delivered(const MessageSet& m,
                                    std::uint32_t max_cycles = 4096) const;

  /// Address-word length for a message: the number of routing decisions
  /// its path consumes (<= 2·lg n; 0 for src == dst).
  std::uint32_t address_bits(Leaf src, Leaf dst) const;

  const LevelSwitch& level_switch(std::uint32_t level) const;

 private:
  const FatTreeTopology& topo_;
  const CapacityProfile& caps_;
  BitSerialOptions options_;
  std::vector<LevelSwitch> switches_;  // index k: nodes at level k (0..L-1)
};

}  // namespace ft
