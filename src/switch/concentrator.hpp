// Concentrator switches (Section IV). A concentrator's job is to create
// electrical paths from the input wires that carry messages onto fewer
// output wires; when more messages arrive than output wires exist, the
// channel is congested and the surplus messages are lost.
//
// Following Pippenger's probabilistic construction cited by the paper, the
// PartialConcentrator is a random bipartite graph with r inputs,
// s = ceil(2r/3) outputs, input degree <= 6 — an (r, s, α) partial
// concentrator with α = 3/4: any k <= α·s loaded inputs can reach k
// outputs by vertex-disjoint paths (statistically validated in tests and
// experiment E3). Paths are set up by matching (Hopcroft–Karp). Cascading
// stages gives any constant concentration ratio in constant depth.
#pragma once

#include <cstdint>
#include <vector>

#include "switch/matching.hpp"
#include "util/prng.hpp"

namespace ft {

/// Common interface: route the set of loaded input wires onto output
/// wires; result[i] is the output wire assigned to active[i], or -1 when
/// that message is lost to congestion.
class Concentrator {
 public:
  virtual ~Concentrator() = default;

  virtual std::size_t num_inputs() const = 0;
  virtual std::size_t num_outputs() const = 0;

  virtual std::vector<std::int32_t> route(
      const std::vector<std::uint32_t>& active_inputs) const = 0;
};

/// The idealized concentrator of Section III: loses messages only when the
/// input count exceeds the output count, and then loses exactly the
/// surplus (the later actives, matching a fixed priority order).
class IdealConcentrator final : public Concentrator {
 public:
  IdealConcentrator(std::size_t inputs, std::size_t outputs);

  std::size_t num_inputs() const override { return inputs_; }
  std::size_t num_outputs() const override { return outputs_; }

  std::vector<std::int32_t> route(
      const std::vector<std::uint32_t>& active_inputs) const override;

 private:
  std::size_t inputs_;
  std::size_t outputs_;
};

/// A single-stage (r, s, α) partial concentrator built as a random
/// bipartite graph of input degree <= `in_degree`.
class PartialConcentrator final : public Concentrator {
 public:
  /// outputs == 0 means the canonical s = ceil(2r/3).
  PartialConcentrator(std::size_t inputs, std::size_t outputs, Rng& rng,
                      std::size_t in_degree = 6);

  std::size_t num_inputs() const override { return inputs_; }
  std::size_t num_outputs() const override { return graph_.num_right(); }

  std::vector<std::int32_t> route(
      const std::vector<std::uint32_t>& active_inputs) const override;

  const BipartiteGraph& graph() const { return graph_; }

  /// Measures the concentration guarantee: over `trials` random active
  /// sets of size k, the fraction fully routed. Experiment E3 sweeps k.
  double measure_full_routing_rate(std::size_t k, std::size_t trials,
                                   Rng& rng) const;

 private:
  std::size_t inputs_;
  BipartiteGraph graph_;
};

/// Several partial concentrator stages pasted output-to-input until the
/// width shrinks to at most `target_outputs`; the paper's way of obtaining
/// any constant concentration ratio in constant depth.
class ConcentratorCascade final : public Concentrator {
 public:
  ConcentratorCascade(std::size_t inputs, std::size_t target_outputs,
                      Rng& rng, std::size_t in_degree = 6);

  std::size_t num_inputs() const override { return inputs_; }
  std::size_t num_outputs() const override { return outputs_; }
  std::size_t depth() const { return stages_.size(); }

  std::vector<std::int32_t> route(
      const std::vector<std::uint32_t>& active_inputs) const override;

 private:
  std::size_t inputs_;
  std::size_t outputs_;
  std::vector<PartialConcentrator> stages_;
};

}  // namespace ft
