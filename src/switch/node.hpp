// The internal structure of a fat-tree node (Fig. 3). A node has three
// input ports (L0 and L1 from its children, U from its parent) and three
// output ports. A message entering input Li can leave only through U or
// the opposite child; a message entering U leaves through L0 or L1. Each
// output port owns a *selector* (which examines the M bit and one address
// bit to decide which incoming wires carry a message destined for this
// port) followed by a *concentrator* (which maps those wires onto the
// fewer wires of the outgoing channel).
//
// Because every node at a given tree level has identical port widths, the
// simulator instantiates one LevelSwitch per level and reuses it across
// the nodes of that level.
#pragma once

#include <cstdint>
#include <memory>

#include "switch/concentrator.hpp"
#include "util/prng.hpp"

namespace ft {

/// The Fig. 3 selector: AND of the M bit with the address bit (toward one
/// branch) or its complement (toward the other). Returns the derived M
/// bits {toward_port_for_0, toward_port_for_1}.
struct Selector {
  static constexpr std::pair<bool, bool> select(bool m_bit, bool addr_bit) {
    return {m_bit && !addr_bit, m_bit && addr_bit};
  }
};

/// Which concentrator family a switch uses.
enum class ConcentratorKind : std::uint8_t {
  Ideal,    ///< loses messages only beyond capacity (Section III model)
  Partial,  ///< cascaded random-bipartite partial concentrators (Section IV)
};

/// The switching units shared by every node at one level of the fat-tree.
///
/// Input-wire index spaces (matching Fig. 3's wiring):
///   up output:   [0, child_cap) from L0, [child_cap, 2*child_cap) from L1
///   down output: [0, parent_cap) from U,
///                [parent_cap, parent_cap + child_cap) from the sibling
class LevelSwitch {
 public:
  LevelSwitch(std::uint64_t parent_cap, std::uint64_t child_cap,
              ConcentratorKind kind, Rng& rng);

  std::uint64_t parent_capacity() const { return parent_cap_; }
  std::uint64_t child_capacity() const { return child_cap_; }

  const Concentrator& up() const { return *up_; }
  const Concentrator& down() const { return *down_; }

  std::size_t up_input_from_child(bool right_child, std::uint32_t wire) const {
    return (right_child ? child_cap_ : 0) + wire;
  }
  std::size_t down_input_from_parent(std::uint32_t wire) const { return wire; }
  std::size_t down_input_from_sibling(std::uint32_t wire) const {
    return parent_cap_ + wire;
  }

  /// Component count of one node at this level: O(m) in the number of
  /// incident wires (the paper's Section IV accounting).
  std::uint64_t component_count() const;

 private:
  std::uint64_t parent_cap_;
  std::uint64_t child_cap_;
  std::unique_ptr<Concentrator> up_;    // 2*child_cap -> parent_cap
  std::unique_ptr<Concentrator> down_;  // parent_cap + child_cap -> child_cap
};

}  // namespace ft
