#include "layout/balanced.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ft {

namespace {

/// The Lemma 7 bandwidth bound of a set of segments: for each segment,
/// cover it by maximal complete subtrees of the decomposition tree and sum
/// the roots' bandwidths. All communication into a complete subtree of a
/// decomposition tree passes the surface corresponding to its root.
double forest_bandwidth(const DecompositionTree& tree,
                        const std::vector<Segment>& segments) {
  double total = 0.0;
  for (const auto& seg : segments) {
    const auto blocks =
        maximal_complete_subtrees(seg.begin, seg.end, tree.depth());
    for (const auto& blk : blocks) {
      total += tree.bandwidth(
          tree.subtree_heap_index(blk.height, blk.first_leaf));
    }
  }
  return total;
}

}  // namespace

BalancedDecomposition::BalancedDecomposition(const DecompositionTree& tree) {
  // Blackness of a leaf-line position: does it hold a processor?
  const std::uint64_t leaves = tree.num_leaves();
  std::vector<std::uint8_t> black(leaves, 0);
  for (std::uint64_t i = 0; i < leaves; ++i) {
    black[i] = tree.processor_at(i) >= 0 ? 1 : 0;
  }
  const auto prefix = black_prefix_sums(black);

  // Store processor ids during the recursion via the tree itself.
  build(tree, prefix, {Segment{0, leaves}}, 0);
  for (std::uint32_t d : depth_of_) depth_ = std::max(depth_, d);

  // In-order leaf collection happens inside build(); nothing further.
  FT_CHECK(order_.size() == tree.num_processors());
}

std::int32_t BalancedDecomposition::build(
    const DecompositionTree& tree, const std::vector<std::uint64_t>& prefix,
    std::vector<Segment> segments, std::uint32_t depth) {
  FT_CHECK(!segments.empty() && segments.size() <= 2);
  const auto index = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  depth_of_.push_back(depth);

  std::uint64_t blacks = 0;
  std::uint64_t pearls = 0;
  for (const auto& s : segments) {
    blacks += blacks_in(prefix, s);
    pearls += s.length();
  }
  nodes_[index].segments = segments;
  nodes_[index].num_processors = blacks;
  nodes_[index].bandwidth_bound = forest_bandwidth(tree, segments);

  if (blacks <= 1 || pearls <= 1) {
    // Leaf of the balanced tree: record the processor (if any) in order.
    for (const auto& s : segments) {
      for (std::uint64_t pos = s.begin; pos < s.end; ++pos) {
        const std::int32_t p = tree.processor_at(pos);
        if (p >= 0) order_.push_back(static_cast<std::uint32_t>(p));
      }
    }
    return index;
  }

  const PearlSplit split = split_pearls(segments, prefix);
  FT_CHECK(split.blacks_a + split.blacks_b == blacks);
  FT_CHECK(split.blacks_a <= (blacks + 1) / 2 &&
           split.blacks_b <= (blacks + 1) / 2);
  const std::int32_t l = build(tree, prefix, split.side_a, depth + 1);
  const std::int32_t r = build(tree, prefix, split.side_b, depth + 1);
  nodes_[index].left = l;
  nodes_[index].right = r;
  return index;
}

double BalancedDecomposition::width_at_depth(std::uint32_t d) const {
  double w = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (depth_of_[i] == d) w = std::max(w, nodes_[i].bandwidth_bound);
  }
  return w;
}

}  // namespace ft
