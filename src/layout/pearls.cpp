#include "layout/pearls.hpp"

#include <algorithm>
#include <cmath>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace ft {

std::vector<std::uint64_t> black_prefix_sums(
    const std::vector<std::uint8_t>& black) {
  std::vector<std::uint64_t> prefix(black.size() + 1, 0);
  for (std::size_t i = 0; i < black.size(); ++i) {
    prefix[i + 1] = prefix[i] + (black[i] ? 1 : 0);
  }
  return prefix;
}

namespace {

/// A candidate configuration: take `len1` pearls from string 1 (prefix or
/// suffix) and `len2 = H - len1` from string 2.
struct Candidate {
  std::uint64_t len1;
  bool suffix1;
  bool suffix2;
};

Segment take(const Segment& s, std::uint64_t len, bool suffix) {
  if (suffix) return Segment{s.end - len, s.end};
  return Segment{s.begin, s.begin + len};
}

Segment rest(const Segment& s, std::uint64_t len, bool suffix) {
  if (suffix) return Segment{s.begin, s.end - len};
  return Segment{s.begin + len, s.end};
}

}  // namespace

PearlSplit split_pearls(const std::vector<Segment>& strings,
                        const std::vector<std::uint64_t>& prefix) {
  FT_CHECK(!strings.empty() && strings.size() <= 2);
  const Segment s1 = strings[0];
  const Segment s2 = strings.size() == 2 ? strings[1] : Segment{0, 0};
  const std::uint64_t l1 = s1.length();
  const std::uint64_t l2 = s2.length();
  const std::uint64_t total = l1 + l2;
  FT_CHECK(total >= 2);

  const std::uint64_t blacks = blacks_in(prefix, s1) + blacks_in(prefix, s2);
  const std::uint64_t target_lo = blacks / 2;
  const std::uint64_t target_hi = (blacks + 1) / 2;

  auto in_target = [&](std::uint64_t b) {
    return b >= target_lo && b <= target_hi;
  };
  auto finish = [&](std::vector<Segment> a, std::vector<Segment> b) {
    PearlSplit out;
    for (const auto& s : a) {
      if (s.length() > 0) out.side_a.push_back(s);
    }
    for (const auto& s : b) {
      if (s.length() > 0) out.side_b.push_back(s);
    }
    for (const auto& s : out.side_a) out.blacks_a += blacks_in(prefix, s);
    for (const auto& s : out.side_b) out.blacks_b += blacks_in(prefix, s);
    FT_CHECK(out.blacks_a + out.blacks_b == blacks);
    FT_CHECK(out.side_a.size() <= 2 && out.side_b.size() <= 2);
    FT_CHECK(!out.side_a.empty() && !out.side_b.empty());
    return out;
  };

  // One-string case: slide a window [s, s+half) along the string. Side A
  // is one string; side B is the (at most two) leftovers. The window count
  // moves by at most one per step and its extremes straddle half the
  // blacks, so the target is always reachable.
  if (strings.size() == 1 || l2 == 0) {
    const std::uint64_t half = (total + 1) / 2;
    for (std::uint64_t w = s1.begin; w + half <= s1.end; ++w) {
      const Segment win{w, w + half};
      if (in_target(blacks_in(prefix, win))) {
        return finish({win},
                      {Segment{s1.begin, w}, Segment{w + half, s1.end}});
      }
    }
    FT_CHECK_MSG(false, "pearl window sweep missed the half-count target");
  }

  // Two-string case. The searched configuration space is:
  //   * piece families: a prefix-or-suffix of each string, sizes summing
  //     to H (four families, closed under complement across the two H
  //     sizes);
  //   * wrap families: a wrap-around window of one string alone (the
  //     bridge connecting the prefix- and suffix-of-s2 components).
  // Every side of every configuration has at most two strings, counts move
  // by at most one per step, and the union is connected and
  // complement-closed, so a floor/ceil-half configuration always exists
  // (exhaustively verified against brute force in tests).
  const std::uint64_t half_sizes[2] = {(total + 1) / 2, total / 2};
  for (int hs = 0; hs < (total % 2 ? 2 : 1); ++hs) {
    const std::uint64_t H = half_sizes[hs];
    if (H == 0 || H == total) continue;

    // Piece families.
    const std::uint64_t a_lo = l2 >= H ? 0 : H - l2;
    const std::uint64_t a_hi = std::min(l1, H);
    for (int fam = 0; fam < 4; ++fam) {
      const bool suf1 = (fam & 1) != 0;
      const bool suf2 = (fam & 2) != 0;
      for (std::uint64_t a = a_lo; a <= a_hi; ++a) {
        const Segment p1 = take(s1, a, suf1);
        const Segment p2 = take(s2, H - a, suf2);
        if (in_target(blacks_in(prefix, p1) + blacks_in(prefix, p2))) {
          return finish({p1, p2},
                        {rest(s1, a, suf1), rest(s2, H - a, suf2)});
        }
      }
    }

    // Wrap family of s2: A = suffix_u(s2) + prefix_{H-u}(s2);
    // B = whole s1 + middle of s2.
    if (H <= l2) {
      for (std::uint64_t u = 0; u <= H; ++u) {
        const Segment tail{s2.end - u, s2.end};
        const Segment head{s2.begin, s2.begin + (H - u)};
        if (in_target(blacks_in(prefix, tail) + blacks_in(prefix, head))) {
          return finish({head, tail}, {s1, Segment{head.end, tail.begin}});
        }
      }
    }
    // Wrap family of s1, symmetric.
    if (H <= l1) {
      for (std::uint64_t u = 0; u <= H; ++u) {
        const Segment tail{s1.end - u, s1.end};
        const Segment head{s1.begin, s1.begin + (H - u)};
        if (in_target(blacks_in(prefix, tail) + blacks_in(prefix, head))) {
          return finish({head, tail}, {s2, Segment{head.end, tail.begin}});
        }
      }
    }
  }
  FT_CHECK_MSG(false, "pearl split missed the half-count target");
  return {};
}

std::vector<SubtreeBlock> maximal_complete_subtrees(std::uint64_t begin,
                                                    std::uint64_t end,
                                                    std::uint32_t depth) {
  FT_CHECK(begin <= end);
  FT_CHECK(end <= (std::uint64_t{1} << depth));
  std::vector<SubtreeBlock> blocks;
  std::uint64_t pos = begin;
  while (pos < end) {
    // Largest aligned power-of-two block starting at pos that fits.
    std::uint64_t align = pos == 0 ? (std::uint64_t{1} << depth)
                                   : (pos & (~pos + 1));  // lowest set bit
    std::uint64_t size = std::min(align, end - pos);
    // Round size down to a power of two.
    size = std::uint64_t{1} << floor_log2(size);
    blocks.push_back(SubtreeBlock{floor_log2(size), pos});
    pos += size;
  }
  return blocks;
}

}  // namespace ft
