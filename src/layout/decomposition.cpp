#include "layout/decomposition.hpp"

#include <algorithm>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace ft {

DecompositionTree::DecompositionTree(std::uint32_t depth,
                                     std::size_t num_processors)
    : depth_(depth), num_processors_(num_processors) {
  FT_CHECK_MSG(depth <= 28, "decomposition tree too deep to materialize");
  bandwidth_.assign(std::size_t{2} << depth, 0.0);
  leaf_proc_.assign(std::size_t{1} << depth, -1);
}

double DecompositionTree::width_at_depth(std::uint32_t d) const {
  FT_CHECK(d <= depth_);
  double w = 0.0;
  const std::uint64_t first = std::uint64_t{1} << d;
  for (std::uint64_t i = first; i < 2 * first; ++i) {
    w = std::max(w, bandwidth_[i]);
  }
  return w;
}

std::uint64_t DecompositionTree::subtree_heap_index(
    std::uint32_t height, std::uint64_t first_leaf) const {
  FT_CHECK(height <= depth_);
  FT_CHECK(first_leaf % (std::uint64_t{1} << height) == 0);
  const std::uint32_t d = depth_ - height;
  return (std::uint64_t{1} << d) + (first_leaf >> height);
}

namespace {

/// First pass: depth needed for every region to hold at most one
/// processor under equal-volume axis-cycling cuts.
std::uint32_t required_depth(const Box3& box,
                             std::vector<std::uint32_t> procs,
                             const std::vector<Point3>& pos,
                             std::uint32_t depth) {
  if (procs.size() <= 1) return depth;
  FT_CHECK_MSG(depth < 60, "processor positions too close to separate");
  const int axis = static_cast<int>(depth % 3);
  const auto [left, right] = box.halve(axis);
  const double mid = left.hi.coord(axis);
  std::vector<std::uint32_t> lp, rp;
  for (auto p : procs) {
    (pos[p].coord(axis) < mid ? lp : rp).push_back(p);
  }
  return std::max(required_depth(left, std::move(lp), pos, depth + 1),
                  required_depth(right, std::move(rp), pos, depth + 1));
}

void fill(DecompositionTree& tree, const Box3& box,
          std::vector<std::uint32_t> procs, const std::vector<Point3>& pos,
          std::uint32_t depth, std::uint64_t heap, double gamma) {
  tree.set_bandwidth(heap, gamma * box.surface_area());
  if (depth == tree.depth()) {
    FT_CHECK_MSG(procs.size() <= 1, "leaf region holds several processors");
    const std::uint64_t leaf_pos = heap - (std::uint64_t{1} << depth);
    if (!procs.empty()) {
      tree.set_processor_at(leaf_pos, static_cast<std::int32_t>(procs[0]));
    }
    return;
  }
  const int axis = static_cast<int>(depth % 3);
  const auto [left, right] = box.halve(axis);
  const double mid = left.hi.coord(axis);
  std::vector<std::uint32_t> lp, rp;
  for (auto p : procs) {
    (pos[p].coord(axis) < mid ? lp : rp).push_back(p);
  }
  fill(tree, left, std::move(lp), pos, depth + 1, 2 * heap, gamma);
  fill(tree, right, std::move(rp), pos, depth + 1, 2 * heap + 1, gamma);
}

}  // namespace

DecompositionTree cut_plane_decomposition(const Layout3D& layout,
                                          double gamma) {
  const std::size_t n = layout.num_processors();
  FT_CHECK(n >= 1);
  for (const auto& p : layout.positions) {
    FT_CHECK_MSG(layout.bounds.contains(p), "processor outside bounding box");
  }
  std::vector<std::uint32_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = static_cast<std::uint32_t>(i);

  const std::uint32_t depth =
      required_depth(layout.bounds, all, layout.positions, 0);
  DecompositionTree tree(depth, n);
  fill(tree, layout.bounds, std::move(all), layout.positions, 0, 1, gamma);
  return tree;
}

}  // namespace ft
