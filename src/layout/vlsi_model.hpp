// Hardware accounting in the three-dimensional VLSI model (Section IV).
//
// Lemma 3: m components and external wires can be wired together in a box
// with side lengths O(h·sqrt(m)), O(h·sqrt(m)), O(sqrt(m)/h) for any
// 1 <= h <= sqrt(m) — volume O(h · m^{3/2}), minimized at the cube aspect
// h = 1.
//
// Theorem 4: a universal fat-tree on n processors with root capacity w
// (n^{2/3} <= w <= n) takes O(n · lg(w³/n²)) components and volume
// v = O(w^{3/2} · lg^{3/2}(n/w)).
//
// Inversely, a *universal fat-tree of volume v* has root capacity
// w = Θ(v^{2/3} / lg(n / v^{2/3})) — the quantity Theorem 10's simulation
// bound rests on.
//
// All volumes are in "unit wire-volume" units with constant factor 1; the
// experiments compare shapes and ratios, never absolute cubic microns.
#pragma once

#include <cstdint>

#include "core/capacity.hpp"
#include "core/topology.hpp"

namespace ft {

/// Side lengths of the Lemma 3 wiring box for m components at aspect h.
struct BoxDims {
  double a;
  double b;
  double c;
  double volume() const { return a * b * c; }
};
BoxDims node_box(std::uint64_t m, double h = 1.0);

/// Number of switching components in one fat-tree node with the given
/// incident channel widths: Θ(m) in the m = parent + 2·child incident
/// wires (selectors plus constant-depth concentrator stages).
std::uint64_t node_components(std::uint64_t parent_cap,
                              std::uint64_t child_cap);

/// Total component count of a fat-tree with the given capacities
/// (Theorem 4's O(n·lg(w³/n²)) when the profile is universal).
std::uint64_t total_components(const FatTreeTopology& topo,
                               const CapacityProfile& caps);

/// Theorem 4 volume of a universal fat-tree on n processors with root
/// capacity w: (w · (lg(n/w) + 2))^{3/2}.
double universal_fat_tree_volume(std::uint64_t n, std::uint64_t w);

/// The inverse map: root capacity of the universal fat-tree of volume v on
/// n processors, w = v^{2/3} / (max(0, lg(n / v^{2/3})) + 2),
/// clamped to [1, n].
std::uint64_t root_capacity_for_volume(std::uint64_t n, double v);

/// Constructive volume estimate: sums the Lemma 3 node boxes over the
/// whole tree with a divide-and-conquer packing factor. Used to
/// cross-check the closed form in experiment E7.
double constructive_volume(const FatTreeTopology& topo,
                           const CapacityProfile& caps);

/// Reference volumes of competitor networks on n processors (Section I
/// and VI): the hypercube's Θ(n^{3/2}) against the fat-tree's ability to
/// scale down.
double hypercube_volume(std::uint64_t n);
double mesh2d_volume(std::uint64_t n);
double mesh3d_volume(std::uint64_t n);
double binary_tree_volume(std::uint64_t n);

}  // namespace ft
