// Decomposition trees (Section V, Theorem 5).
//
// A routing network occupying a cube of volume v is recursively bisected
// by rectilinear cutting planes (axes alternating), halving the volume at
// each step. The information that can enter or leave a region per unit
// time is at most γ times its surface area, so the region at depth i has
// bandwidth O(v^{2/3} / 4^{i/3}): an (O(v^{2/3}), cuberoot(4))
// decomposition tree.
//
// The tree produced here is *complete* (uniform depth D, leaf line of
// 2^D positions, heap indexing), which is what the balancing machinery of
// Theorem 8 (layout/balanced.hpp) consumes.
#pragma once

#include <cstdint>
#include <vector>

#include "layout/geometry.hpp"

namespace ft {

class DecompositionTree {
 public:
  DecompositionTree(std::uint32_t depth, std::size_t num_processors);

  std::uint32_t depth() const { return depth_; }
  std::uint64_t num_leaves() const { return std::uint64_t{1} << depth_; }
  std::size_t num_processors() const { return num_processors_; }

  /// Heap indexing: root 1; node i has children 2i, 2i+1; depth(i) =
  /// floor(lg i). Bandwidth of tree node i (γ × surface area of its box).
  double bandwidth(std::uint64_t heap_index) const {
    FT_CHECK(heap_index >= 1 && heap_index < bandwidth_.size());
    return bandwidth_[heap_index];
  }
  void set_bandwidth(std::uint64_t heap_index, double b) {
    FT_CHECK(heap_index >= 1 && heap_index < bandwidth_.size());
    bandwidth_[heap_index] = b;
  }

  /// Maximum bandwidth over nodes at a depth: the w_i of the
  /// [w_0, w_1, ..., w_r] decomposition tree notation.
  double width_at_depth(std::uint32_t d) const;

  /// Processor at a leaf-line position, or -1.
  std::int32_t processor_at(std::uint64_t leaf_pos) const {
    FT_CHECK(leaf_pos < leaf_proc_.size());
    return leaf_proc_[leaf_pos];
  }
  void set_processor_at(std::uint64_t leaf_pos, std::int32_t proc) {
    FT_CHECK(leaf_pos < leaf_proc_.size());
    leaf_proc_[leaf_pos] = proc;
  }

  /// Heap index of the (complete) subtree of height h whose leftmost leaf
  /// is at aligned position `first_leaf` (first_leaf % 2^h == 0).
  std::uint64_t subtree_heap_index(std::uint32_t height,
                                   std::uint64_t first_leaf) const;

 private:
  std::uint32_t depth_;
  std::size_t num_processors_;
  std::vector<double> bandwidth_;   // size 2^{D+1}
  std::vector<std::int32_t> leaf_proc_;  // size 2^D
};

/// Builds the Theorem 5 decomposition tree of a layout by equal-volume
/// cutting planes with axes cycling x, y, z. γ is the bits-per-area
/// constant. The recursion continues to a uniform depth deep enough to
/// isolate every processor (requires pairwise-distinct positions).
DecompositionTree cut_plane_decomposition(const Layout3D& layout,
                                          double gamma = 1.0);

}  // namespace ft
