// Three-dimensional geometry primitives for the VLSI model (Section IV).
// In this model hardware cost is physical volume; the universality
// assumption is that at most O(a) bits per unit time can cross a closed
// surface of area a.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace ft {

struct Point3 {
  double x = 0;
  double y = 0;
  double z = 0;

  double coord(int axis) const {
    FT_CHECK(axis >= 0 && axis < 3);
    return axis == 0 ? x : axis == 1 ? y : z;
  }
  void set_coord(int axis, double v) {
    FT_CHECK(axis >= 0 && axis < 3);
    (axis == 0 ? x : axis == 1 ? y : z) = v;
  }

  friend bool operator==(const Point3&, const Point3&) = default;
};

/// An axis-aligned box [lo, hi).
struct Box3 {
  Point3 lo;
  Point3 hi;

  double side(int axis) const { return hi.coord(axis) - lo.coord(axis); }
  double volume() const { return side(0) * side(1) * side(2); }
  double surface_area() const {
    const double a = side(0), b = side(1), c = side(2);
    return 2.0 * (a * b + b * c + c * a);
  }
  bool contains(const Point3& p) const {
    for (int axis = 0; axis < 3; ++axis) {
      if (p.coord(axis) < lo.coord(axis) || p.coord(axis) >= hi.coord(axis)) {
        return false;
      }
    }
    return true;
  }

  /// Splits into two equal-volume halves by a plane perpendicular to
  /// `axis` (the cutting-plane step of Theorem 5).
  std::pair<Box3, Box3> halve(int axis) const {
    const double mid = 0.5 * (lo.coord(axis) + hi.coord(axis));
    Box3 a = *this;
    Box3 b = *this;
    a.hi.set_coord(axis, mid);
    b.lo.set_coord(axis, mid);
    return {a, b};
  }
};

/// A physical layout of a routing network: processor positions inside a
/// bounding box. Wires are accounted for by the volume of the box, not
/// drawn individually — the decomposition-tree machinery only needs
/// surface areas and processor positions.
struct Layout3D {
  Box3 bounds;
  std::vector<Point3> positions;  // one per processor

  std::size_t num_processors() const { return positions.size(); }
  double volume() const { return bounds.volume(); }
};

}  // namespace ft
