#include "layout/vlsi_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace ft {

BoxDims node_box(std::uint64_t m, double h) {
  FT_CHECK(m >= 1);
  const double sqrt_m = std::sqrt(static_cast<double>(m));
  FT_CHECK_MSG(h >= 1.0 && h <= sqrt_m + 1e-9, "aspect must be in [1, sqrt m]");
  return BoxDims{h * sqrt_m, h * sqrt_m, sqrt_m / h};
}

std::uint64_t node_components(std::uint64_t parent_cap,
                              std::uint64_t child_cap) {
  // Selector AND gates: one per input wire of each output port
  //   up port: 2*child;  each down port: parent + child.
  // Concentrator switches: constant per input wire per stage; the cascade
  // has constant depth for the (at most 2:1) ratios of a universal
  // fat-tree, accounted here with factor 2.
  const std::uint64_t selector = 2 * child_cap + 2 * (parent_cap + child_cap);
  const std::uint64_t concentrator =
      2 * (2 * child_cap) + 2 * 2 * (parent_cap + child_cap);
  return selector + concentrator;
}

std::uint64_t total_components(const FatTreeTopology& topo,
                               const CapacityProfile& caps) {
  std::uint64_t total = 0;
  for (std::uint32_t k = 0; k < topo.height(); ++k) {
    const std::uint64_t nodes_at_level = std::uint64_t{1} << k;
    total += nodes_at_level * node_components(caps.capacity_at_level(k),
                                              caps.capacity_at_level(k + 1));
  }
  return total;
}

double universal_fat_tree_volume(std::uint64_t n, std::uint64_t w) {
  FT_CHECK(w >= 1 && w <= n);
  const double ratio = static_cast<double>(n) / static_cast<double>(w);
  // The +2 keeps the expression strictly increasing in w up to w = n
  // (at +1 the derivative vanishes near w = n and the map is not
  // invertible); it only shifts the Θ constant.
  const double lg_term = std::log2(ratio) + 2.0;
  return std::pow(static_cast<double>(w) * lg_term, 1.5);
}

std::uint64_t root_capacity_for_volume(std::uint64_t n, double v) {
  FT_CHECK(v > 0);
  const double v23 = std::pow(v, 2.0 / 3.0);
  const double denom =
      std::max(0.0, std::log2(static_cast<double>(n) / v23)) + 2.0;
  const double w = v23 / denom;
  const auto clamped = static_cast<std::uint64_t>(
      std::clamp(w, 1.0, static_cast<double>(n)));
  return std::max<std::uint64_t>(1, clamped);
}

double constructive_volume(const FatTreeTopology& topo,
                           const CapacityProfile& caps) {
  // Divide and conquer in the style of Leighton–Rosenberg: a subtree's box
  // packs its two children's boxes side by side plus the root node's own
  // Lemma 3 box, with a constant re-packing factor per recombination.
  // Summing node-box volumes with that factor gives the estimate.
  constexpr double kPackingFactor = 2.0;
  double total = 0.0;
  for (std::uint32_t k = 0; k < topo.height(); ++k) {
    const double nodes_at_level = std::exp2(static_cast<double>(k));
    const std::uint64_t m = caps.capacity_at_level(k) +
                            2 * caps.capacity_at_level(k + 1);
    total += nodes_at_level * node_box(m).volume();
  }
  // Leaf processors occupy unit volume each.
  total += static_cast<double>(topo.num_processors());
  return kPackingFactor * total;
}

double hypercube_volume(std::uint64_t n) {
  return std::pow(static_cast<double>(n), 1.5);
}

double mesh2d_volume(std::uint64_t n) { return static_cast<double>(n); }

double mesh3d_volume(std::uint64_t n) { return static_cast<double>(n); }

double binary_tree_volume(std::uint64_t n) { return static_cast<double>(n); }

}  // namespace ft
