// The combinatorial lemmas behind balanced decomposition trees.
//
// Lemma 6 (pearl necklace): two strings of black and white pearls can be
// divided, with at most two cuts, into two sets — each of at most two
// strings — holding half the pearls of each color (to within one when a
// color count is odd).
//
// Lemma 7 (subtree forest): any string of k consecutive leaves of a
// complete binary tree is covered by a forest of maximal complete
// subtrees with at most two trees per height and maximum height lg k.
//
// Strings here are half-open intervals [begin, end) on a global "leaf
// line"; blackness of a position is supplied by a prefix-sum array so
// range counts cost O(1).
#pragma once

#include <cstdint>
#include <vector>

namespace ft {

/// An interval of consecutive leaf-line positions.
struct Segment {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  std::uint64_t length() const { return end - begin; }
  friend bool operator==(const Segment&, const Segment&) = default;
};

/// prefix[i] = number of black positions < i. Built once per leaf line.
std::vector<std::uint64_t> black_prefix_sums(
    const std::vector<std::uint8_t>& black);

inline std::uint64_t blacks_in(const std::vector<std::uint64_t>& prefix,
                               const Segment& s) {
  return prefix[s.end] - prefix[s.begin];
}

/// Lemma 6 split result: each side has at most two segments; black pearls
/// split exactly in half (within one), total pearls likewise.
struct PearlSplit {
  std::vector<Segment> side_a;
  std::vector<Segment> side_b;
  std::uint64_t blacks_a = 0;
  std::uint64_t blacks_b = 0;
};

/// Splits one or two pearl strings. The search sweeps the complement-
/// closed family of {prefix-or-suffix of string 1} ∪ {prefix-or-suffix of
/// string 2} configurations, within which the black count moves by at
/// most one per step, so a half-count configuration always exists.
PearlSplit split_pearls(const std::vector<Segment>& strings,
                        const std::vector<std::uint64_t>& prefix);

/// Lemma 7: the maximal complete subtrees covering leaves [begin, end) of
/// a complete binary tree with 2^depth leaves. Returned as (height,
/// first_leaf) pairs, at most two per height, heights at most
/// lg(end - begin).
struct SubtreeBlock {
  std::uint32_t height;
  std::uint64_t first_leaf;
};
std::vector<SubtreeBlock> maximal_complete_subtrees(std::uint64_t begin,
                                                    std::uint64_t end,
                                                    std::uint32_t depth);

}  // namespace ft
