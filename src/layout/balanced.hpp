// Balanced decomposition trees (Theorem 8, Corollary 9).
//
// The cutting-plane decomposition tree of Theorem 5 splits *space* evenly
// but may split the processors arbitrarily. Theorem 8 rebalances it:
// treat the decomposition tree's leaf line as a necklace whose black
// pearls are processor-holding leaves; split with the pearl lemma
// (layout/pearls.hpp), recursing with at most two leaf-line segments per
// node. The bandwidth of a balanced node is bounded by the sum of the
// bandwidths of the maximal complete subtrees covering its segments
// (Lemma 7: at most four trees per height across two segments), which for
// a (w, a) decomposition tree yields a (4a/(a−1) · w, a) balanced tree
// (Corollary 9).
//
// The in-order leaf sequence of the balanced tree is the processor
// identification Theorem 10 uses to map an arbitrary network's processors
// onto fat-tree leaves.
#pragma once

#include <cstdint>
#include <vector>

#include "layout/decomposition.hpp"
#include "layout/pearls.hpp"

namespace ft {

struct BalancedNode {
  std::vector<Segment> segments;  ///< at most two leaf-line intervals
  std::uint64_t num_processors = 0;
  double bandwidth_bound = 0.0;  ///< Lemma 7 forest sum
  std::int32_t left = -1;        ///< child indices, -1 at leaves
  std::int32_t right = -1;
};

class BalancedDecomposition {
 public:
  /// Builds the balanced tree of a decomposition tree.
  explicit BalancedDecomposition(const DecompositionTree& tree);

  const std::vector<BalancedNode>& nodes() const { return nodes_; }
  const BalancedNode& root() const { return nodes_[0]; }

  std::uint32_t depth() const { return depth_; }

  /// Max bandwidth bound over nodes at a depth (the w'_k of Theorem 8).
  double width_at_depth(std::uint32_t d) const;

  /// Processors in in-order leaf sequence: processor_order()[i] is the
  /// network processor identified with fat-tree leaf i.
  const std::vector<std::uint32_t>& processor_order() const {
    return order_;
  }

 private:
  std::int32_t build(const DecompositionTree& tree,
                     const std::vector<std::uint64_t>& prefix,
                     std::vector<Segment> segments, std::uint32_t depth);

  std::vector<BalancedNode> nodes_;
  std::vector<std::uint32_t> depth_of_;
  std::vector<std::uint32_t> order_;
  std::uint32_t depth_ = 0;
};

}  // namespace ft
