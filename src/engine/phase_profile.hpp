// Wall-clock phase decomposition of a timed engine run. Split out of
// engine.hpp so topology adapters can surface the profile in their result
// structs without depending on the full engine interface.
#pragma once

#include <cstdint>

namespace ft {

/// Wall-clock decomposition of a timed run (EngineOptions::time_phases)
/// into its parallelizable and inherently serial parts. In the sharded
/// executor `up`/`down` cover the shard-parallel sweeps, `spine` the
/// serial part of the spine band between them and `spine_parallel` the
/// spine stages resolved on the thread pool (EngineOptions::
/// parallel_spine); in the non-sharded loop, stages resolved on the
/// thread pool count as `up` and serial stages as `spine`; FIFO rounds
/// count pooled range processing as `up`. `coord` is everything else in
/// the cycle loop — injection, compaction, fault bookkeeping, observer
/// callbacks — which is serial in every mode.
struct EnginePhaseProfile {
  double up_seconds = 0.0;
  double spine_seconds = 0.0;
  double spine_parallel_seconds = 0.0;
  double down_seconds = 0.0;
  double coord_seconds = 0.0;
  std::uint64_t timed_cycles = 0;  ///< cycles covered (0 = timing was off)
  double parallel_seconds() const {
    return up_seconds + spine_parallel_seconds + down_seconds;
  }
  double serial_seconds() const { return spine_seconds + coord_seconds; }
  double total_seconds() const {
    return parallel_seconds() + serial_seconds();
  }
  /// The measured Amdahl serial fraction: serial time over total timed
  /// time (0 when nothing was timed).
  double serial_fraction() const {
    const double t = total_seconds();
    return t > 0.0 ? serial_seconds() / t : 0.0;
  }
};

}  // namespace ft
