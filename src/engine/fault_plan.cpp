#include "engine/fault_plan.hpp"

#include <algorithm>

#include "util/prng.hpp"

namespace ft {
namespace {

// Domain-separation salts for the plan's per-(seed, cycle, channel) and
// per-(seed, cycle) streams, so flap draws never correlate with burst
// channel selection or with the engine's arbitration streams (which hash
// the same cycle/channel pair under the arbitration seed).
constexpr std::uint64_t kFlapSalt = 0xf1a9f1a9f1a9f1a9ULL;
constexpr std::uint64_t kBurstSalt = 0xb0b5b0b5b0b5b0b5ULL;
constexpr std::uint64_t kSubtreeSalt = 0x5ab7ee5ab7ee5ab7ULL;

/// One uniform double in [0, 1) from a private (seed, cycle, channel)
/// stream: no draw depends on the order channels are visited in.
double flap_uniform(std::uint64_t seed, std::uint32_t cycle,
                    std::uint32_t channel) {
  SplitMix64 sm(seed ^ kFlapSalt ^ (static_cast<std::uint64_t>(cycle) << 32) ^
                channel);
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

}  // namespace

FaultState::FaultState(const FaultPlan& plan, const ChannelGraph& graph)
    : plan_(plan), graph_(graph) {
  const std::size_t n = graph.num_channels();
  for (std::uint32_t c = 0; c < n; ++c) {
    if (graph.capacity[c] > 0) usable_.push_back(c);
  }
  flap_down_.assign(n, 0);
  forced_down_until_.assign(n, 0);
  was_down_.assign(n, 0);
  eff_limit_.assign(n, 0);
  domain_down_until_.assign(plan.domains().size(), 0);
  for (const FaultDomain& dom : plan.domains()) {
    for (const std::uint32_t c : dom.channels) {
      FT_CHECK_MSG(c < n, "FaultDomain channel out of range for this graph");
    }
  }
  for (const SubtreeKill& k : plan.subtree_kills()) {
    bool known = false;
    for (const FaultDomain& dom : plan.domains()) known |= dom.node == k.node;
    FT_CHECK_MSG(known, "SubtreeKill names a node with no FaultDomain");
  }
}

const FaultState::CycleFaults& FaultState::begin_cycle(
    std::uint32_t cycle, const std::vector<std::uint32_t>& base_limit) {
  FT_CHECK_MSG(cycle == last_cycle_ + 1,
               "FaultState cycles must advance consecutively from 1");
  last_cycle_ = cycle;
  out_.went_down.clear();
  out_.came_up.clear();
  out_.killed_nodes.clear();
  out_.channels_down = 0;
  out_.degraded_channels = 0;

  // Correlated subtree kills. Scheduled kills fire exactly at their cycle
  // (and extend an outage already in progress); the storm strikes each
  // currently-up domain with kill_prob from a private (seed, cycle, node)
  // stream, so timelines are independent of domain visit order and
  // identical serial vs parallel. Felled channels reuse the burst
  // forced-down mechanism, so went_down/came_up transitions and limits
  // fall out of the per-channel pass below.
  for (std::size_t d = 0; d < plan_.domains().size(); ++d) {
    const FaultDomain& dom = plan_.domains()[d];
    std::uint32_t duration = 0;
    for (const SubtreeKill& k : plan_.subtree_kills()) {
      if (k.node == dom.node && k.at_cycle == cycle)
        duration = std::max(duration, k.duration);
    }
    const SubtreeStormModel& storm = plan_.storm();
    if (duration == 0 && storm.kill_prob > 0.0 &&
        cycle >= domain_down_until_[d]) {
      SplitMix64 sm(plan_.seed() ^ kSubtreeSalt ^
                    (static_cast<std::uint64_t>(cycle) << 32) ^ dom.node);
      const double u = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
      if (u < storm.kill_prob) {
        const std::uint64_t span =
            storm.max_duration - storm.min_duration + 1;
        duration = storm.min_duration +
                   static_cast<std::uint32_t>(sm.next() % span);
      }
    }
    if (duration == 0) continue;
    out_.killed_nodes.push_back(dom.node);
    domain_down_until_[d] =
        std::max(domain_down_until_[d], cycle + duration);
    for (const std::uint32_t c : dom.channels) {
      forced_down_until_[c] =
          std::max(forced_down_until_[c], cycle + duration);
    }
  }

  // Burst kills trigger exactly at their cycle; the victim set is a pure
  // function of (plan seed, at_cycle), drawn by partial Fisher–Yates over
  // the usable channels.
  for (const BurstKill& b : plan_.bursts()) {
    if (b.at_cycle != cycle || b.count == 0 || usable_.empty()) continue;
    std::vector<std::uint32_t> pool = usable_;
    Rng pick(SplitMix64(plan_.seed() ^ kBurstSalt ^ b.at_cycle).next());
    const std::size_t kills = std::min<std::size_t>(b.count, pool.size());
    for (std::size_t i = 0; i < kills; ++i) {
      const std::size_t j = i + pick.below(pool.size() - i);
      std::swap(pool[i], pool[j]);
      const std::uint32_t c = pool[i];
      forced_down_until_[c] =
          std::max(forced_down_until_[c], cycle + b.duration);
    }
  }

  // Flap transitions: one private draw per usable channel per cycle.
  const ChannelFlapModel& flaps = plan_.flaps();
  const bool flapping = flaps.down_prob > 0.0;

  // Stateless brownout windows active this cycle.
  std::vector<const BrownoutWindow*> active;
  for (const BrownoutWindow& w : plan_.brownouts()) {
    if (cycle >= w.from_cycle &&
        (w.until_cycle == 0 || cycle < w.until_cycle)) {
      active.push_back(&w);
    }
  }

  for (const std::uint32_t c : usable_) {
    if (flapping) {
      const double u = flap_uniform(plan_.seed(), cycle, c);
      if (flap_down_[c]) {
        if (u < flaps.up_prob) flap_down_[c] = 0;
      } else {
        if (u < flaps.down_prob) flap_down_[c] = 1;
      }
    }
    const bool down = flap_down_[c] != 0 || cycle < forced_down_until_[c];
    if (down != (was_down_[c] != 0)) {
      (down ? out_.went_down : out_.came_up).push_back(c);
      was_down_[c] = down ? 1 : 0;
    }
    const std::uint32_t base = base_limit[c];
    std::uint32_t eff = base;
    if (down) {
      eff = 0;
      ++out_.channels_down;
    } else {
      for (const BrownoutWindow* w : active) {
        if (w->level != kAllLevels && graph_.level[c] != w->level) continue;
        eff = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(static_cast<double>(eff) *
                                          w->capacity_factor));
      }
    }
    eff_limit_[c] = eff;
    if (eff < base) ++out_.degraded_channels;
  }
  return out_;
}

}  // namespace ft
