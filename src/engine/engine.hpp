// The unified delivery-cycle engine. One instrumented simulation core runs
// the paper's batched cycle loop (Section II: contending bit-serial
// traffic, loss + acknowledgment + retry) for every router in the
// repository; the per-topology simulators are thin adapters that compile
// their topology into a ChannelGraph and their messages into EnginePaths.
//
// Policy points:
//   * Contention — how a channel resolves more contenders than wires:
//       RandomSubset  a uniformly random cap-subset survives, the rest are
//                     lost and retry next cycle (the paper's concentrator
//                     + acknowledgment mechanism; `alpha` models partial
//                     concentrators, Section IV);
//       Fifo          store-and-forward rounds with per-channel FIFO
//                     queues, up to cap(c) forwards per round (competitor
//                     networks, k-ary n-trees);
//       Tally         no arbitration, pure occupancy accounting (offline
//                     schedule replay and utilization analytics).
//   * Channel model — the ChannelGraph handed to the constructor
//     (engine/fat_tree_model.hpp, nets/Network, kary/KaryTree adapters).
//
// Parallel mode resolves contention across independent channels of one
// arbitration stage on a persistent thread pool. Results are identical to
// serial mode: every random arbitration draws from a private stream seeded
// by (seed, cycle, channel), so no decision depends on thread scheduling,
// and FIFO arrivals are merged in channel-index order.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/channel_graph.hpp"
#include "engine/fault_plan.hpp"
#include "engine/message_source.hpp"
#include "engine/observer.hpp"
#include "engine/phase_profile.hpp"
#include "util/thread_pool.hpp"

namespace ft {

/// Internal injection schedule abstraction: hands run_lossy the next batch
/// to inject, one cycle at a time (defined in engine.cpp; implementations
/// wrap a batch vector or a MessageSource).
class BatchFeed;

enum class ContentionPolicy : std::uint8_t { RandomSubset, Fifo, Tally };

/// How a lossy (RandomSubset) channel assigns its wires when contended —
/// the routing-discipline seam. Every policy resolves an over-limit
/// bucket from the same sorted contender list and the same per-(seed,
/// cycle, channel) stream, so serial, sharded-parallel and parallel-spine
/// execution stay bit-identical for all of them. Uncontended channels
/// admit everyone under every policy.
enum class RoutingPolicy : std::uint8_t {
  /// The paper's oblivious lottery (Section II): a uniformly random
  /// cap-subset of the contenders survives. Byte-identical to the
  /// pre-seam engine; all goldens pin this policy.
  ObliviousRandom,
  /// Deterministic D-mod-k-style wire assignment: a contender bids for
  /// wire (destination-key mod limit) and the lowest pending index wins
  /// each wire. Destination-collapsed traffic can idle most wires —
  /// the static-path pathology the adversarial generators target.
  DeterministicDmod,
  /// Randomized load balancing (Wang et al., arXiv:1708.09135): each
  /// contender hashes (arbitration stream, pending index) to a uniformly
  /// random wire; wire collisions lose. Balls-into-bins rather than a
  /// concentrator, so a few wires idle under heavy contention.
  RandomLoadBalanced,
  /// Oblivious winner selection plus congestion feedback (Rocher-Gonzalez
  /// et al., arXiv:2502.00597): per-channel queue-occupancy pressure is
  /// folded into a hot-streak counter on the serial coordination path
  /// (reusing the telemetry probe's channel-scan list), and losers at a
  /// persistently hot channel desynchronize their retries over a widening
  /// window. Engages the retry machinery; see DESIGN.md, "Routing
  /// disciplines".
  AdaptiveOccupancy,
};

struct EngineOptions {
  ContentionPolicy contention = ContentionPolicy::RandomSubset;
  /// RandomSubset: a channel of capacity c accepts floor(alpha * c)
  /// messages per cycle, floor 1 (alpha = 1 is the ideal concentrator,
  /// 3/4 the partial concentrators of Section IV).
  double alpha = 1.0;
  /// Wire-assignment discipline for contended RandomSubset channels.
  /// ObliviousRandom reproduces the pre-seam engine bit for bit; the
  /// other disciplines exist to be raced (bench/exp_routing_race).
  /// Ignored by Fifo and Tally.
  RoutingPolicy policy = RoutingPolicy::ObliviousRandom;
  /// Stop after this many cycles/rounds (0 = unbounded). A lossy run that
  /// still has pending messages when the cap is hit sets
  /// EngineResult::gave_up instead of looping forever.
  std::uint32_t max_cycles = 0;
  /// Seed for RandomSubset arbitration streams.
  std::uint64_t seed = 0;
  /// Resolve independent channels of a stage on a thread pool. Identical
  /// results to serial mode at any thread count.
  bool parallel = false;
  /// Worker threads for parallel mode (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Sharded executor only: resolve heavy spine stages on the thread pool
  /// instead of serially on the coordinating thread (per-channel
  /// arbitration is keyed by (seed, cycle, channel), so spine channels
  /// are independent; a channel-ordered serial merge keeps accounting,
  /// traces and telemetry bit-identical — see DESIGN.md, "Spine
  /// parallelization"). On by default; exists as a switch so the Amdahl
  /// cost of a serial spine stays measurable (exp_scaleout compares
  /// both).
  bool parallel_spine = true;
  /// Per-message retry policy (lossy/tally modes; FIFO rounds have no
  /// losses to retry, so it is ignored there). Off by default.
  RetryPolicy retry;
  /// Transient mid-run faults, consulted once per delivery cycle from the
  /// coordinating thread (see engine/fault_plan.hpp). Not owned; must
  /// outlive every run. nullptr or an empty plan costs nothing.
  const FaultPlan* fault_plan = nullptr;
  /// Wall-clock phase timing (EngineResult::phases): splits each cycle
  /// into the parallel up/down sweeps, the serial spine band, and the
  /// serial coordination remainder — the measured Amdahl decomposition of
  /// the sharded executor. Timing never changes simulation results; it is
  /// off by default because steady_clock reads are not free at small n.
  bool time_phases = false;
};

struct EngineResult {
  /// Delivery cycles (lossy) or rounds (FIFO). 64-bit: a heavily faulted
  /// or backoff-parked run at n = 2^20 can legitimately exceed what the
  /// old 32-bit counter assumed; the engine's internal cycle index stays
  /// 32-bit (the arbitration-stream domain) and is overflow-checked.
  std::uint64_t cycles = 0;
  bool gave_up = false;      ///< max_cycles hit with messages undelivered
  std::uint64_t delivered = 0;
  std::uint64_t total_attempts = 0;  ///< path attempts (lossy), hops (FIFO)
  std::uint64_t total_losses = 0;    ///< attempts killed by contention
  /// Successful channel traversals, every mode: each channel a message
  /// crosses (wins arbitration at, is forwarded over, or tallies on)
  /// counts one hop. For a completed FIFO or tally run this equals the
  /// sum of path lengths; lossy runs additionally count the partial
  /// prefix a message crossed before losing a lottery.
  std::uint64_t total_hops = 0;
  double latency_sum = 0.0;          ///< FIFO: sum of per-message finish rounds
  std::uint32_t max_queue = 0;       ///< FIFO: peak queue depth
  /// Messages that exhausted their RetryPolicy (max_attempts or deadline)
  /// and were dropped; disjoint from `delivered`.
  std::uint64_t messages_given_up = 0;
  std::uint64_t total_backoffs = 0;  ///< retry-backoff parkings
  // Dynamic-fault accounting (zero without an active FaultPlan).
  std::uint64_t fault_down_events = 0;
  std::uint64_t fault_up_events = 0;
  /// Correlated subtree-kill events (scheduled or storm-drawn domain
  /// strikes); each also contributes its channels to fault_down_events.
  std::uint64_t subtree_kill_events = 0;
  /// Channel-cycles spent below full admission limit (down or browned
  /// out): the time-degraded numerator of availability.
  std::uint64_t degraded_channel_cycles = 0;
  /// Wall-clock phase decomposition; all-zero unless
  /// EngineOptions::time_phases was set.
  EnginePhaseProfile phases;
  std::vector<std::uint32_t> delivered_per_cycle;
};

class CycleEngine {
 public:
  explicit CycleEngine(ChannelGraph graph, const EngineOptions& opts = {});
  ~CycleEngine();

  CycleEngine(const CycleEngine&) = delete;
  CycleEngine& operator=(const CycleEngine&) = delete;

  const ChannelGraph& graph() const { return graph_; }

  /// Runs one batch of messages to completion. Lossy/tally: all messages
  /// contend from cycle 1 and losers retry until delivered (or the engine
  /// gives up). Fifo: synchronous store-and-forward rounds. The PathSet
  /// overloads are the native (allocation-free) entry points; the
  /// vector-of-paths overloads convert once and forward.
  EngineResult run(const PathSet& paths, EngineObserver* observer = nullptr);
  EngineResult run(const std::vector<EnginePath>& paths,
                   EngineObserver* observer = nullptr);

  /// Lossy/tally only: batch i is injected at cycle i+1 (the offline
  /// schedule replay: one batch per scheduled delivery cycle). Losers of
  /// batch i retry alongside batch i+1. Every batch opens a cycle, so a
  /// valid offline schedule replays in exactly schedule.num_cycles()
  /// cycles with zero losses.
  EngineResult run_batched(const std::vector<PathSet>& batches,
                           EngineObserver* observer = nullptr);
  EngineResult run_batched(const std::vector<std::vector<EnginePath>>& batches,
                           EngineObserver* observer = nullptr);

  /// Streaming run(): consumes the source chunk by chunk, injecting every
  /// path at cycle 1, bit-identical to run() on the concatenation of all
  /// chunks — but peak memory is O(chunk) instead of O(total paths) in the
  /// lossy/tally modes. FIFO mode needs every queue seeded before round 1,
  /// so it ingests the stream into one PathSet first (still cheaper than a
  /// vector-of-vectors route list: 4 bytes per hop, two allocations).
  EngineResult run_stream(MessageSource& source,
                          EngineObserver* observer = nullptr);

  /// Streaming run_batched(): chunk i is injected at cycle i + 1,
  /// bit-identical to run_batched() on the materialized chunk vector.
  EngineResult run_batched_stream(MessageSource& source,
                                  EngineObserver* observer = nullptr);

 private:
  /// One contended (over-limit) bucket in the serial fused stage: channel
  /// plus its [off, off + count) slice of arena_.
  struct OverBucket {
    std::uint32_t chan;
    std::uint32_t off;
    std::uint32_t count;
  };

  /// Base pointer of the stage lookup table for the given hop width
  /// (stage16_ on the narrow path, the graph's table on the wide one).
  /// Hot loops hoist it into a local so worklist reallocations never
  /// force a reload.
  /// Per-shard execution state for the subtree-sharded parallel mode: a
  /// shard owns the worklists, arena and sort scratch of every channel the
  /// graph's shard table assigns to it, so the up- and down-phase sweeps
  /// of one cycle run shard-parallel with no shared mutable state. The
  /// outbox collects survivors whose next channel leaves the shard (spine
  /// channels or another shard's down channels); the coordinating thread
  /// distributes it between phases. Cache-line aligned: neighbouring
  /// shards' worklist headers and loss/hop counters are written by
  /// different workers every cycle, and letting them share a line costs
  /// real coherence traffic at high shard counts.
  struct alignas(64) ShardState {
    std::vector<std::vector<std::uint64_t>> stage_list;
    std::vector<std::vector<std::uint32_t>> stage_touched;
    std::vector<std::uint32_t> arena;
    std::vector<OverBucket> over;
    std::vector<std::uint64_t> sort_bits;
    std::vector<std::uint64_t> outbox;  ///< packed (msg << 32) | channel
    std::uint64_t losses = 0;
    std::uint64_t hops = 0;
  };

  template <typename ChanT>
  const auto* stage_table() const;
  void build_buckets(const std::vector<std::uint64_t>& list,
                     std::uint32_t stage);
  template <typename ChanT>
  void arbitrate_bucket(const ChanT* chan, std::uint32_t cycle,
                        std::uint32_t channel, std::size_t bucket);
  template <typename ChanT>
  void run_stage_parallel(const ChanT* chan, std::uint32_t cycle,
                          std::uint32_t stage, std::uint64_t& cycle_losses,
                          std::uint64_t& cycle_hops);
  /// The fused stage algorithm (bucket counting, arbitration, accounting,
  /// survivor forwarding in two sweeps) over caller-owned scratch — the
  /// sharded executor's per-shard stage sweep. run_stage_serial is the
  /// same algorithm with the global forward rule written inline; see the
  /// comment above it for why the serial hot path keeps its own copy.
  /// `forward` is invoked as forward(msg, next_channel) for every
  /// surviving message with hops left and routes it to its next worklist.
  /// Must inline into its caller: the forward closures capture
  /// caller-local hoisted pointers by reference, and an out-of-line
  /// instantiation reads them through the closure on every inner-loop
  /// iteration (measured ~25% of lossy throughput when the compiler
  /// declined on size alone).
  template <typename ChanT, typename Forward>
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((always_inline))
#endif
  inline void
  fused_stage(const ChanT* chan, std::uint32_t cycle,
                   std::vector<std::uint64_t>& list,
                   std::vector<std::uint32_t>& touched,
                   std::vector<std::uint32_t>& arena,
                   std::vector<OverBucket>& over,
                   std::vector<std::uint64_t>& sort_bits,
                   std::uint64_t& cycle_losses, std::uint64_t& cycle_hops,
                   Forward&& forward);
  template <typename ChanT>
  void run_stage_serial(const ChanT* chan, std::uint32_t cycle,
                        std::uint32_t stage, std::uint64_t& cycle_losses,
                        std::uint64_t& cycle_hops);
  /// One full cycle's stage sweep in subtree-sharded mode: parallel shard
  /// up phases, serial outbox distribution + spine stages, parallel shard
  /// down phases, then a per-shard counter reduction (see DESIGN.md,
  /// "Scale-out").
  template <typename ChanT>
  void run_cycle_sharded(const ChanT* chan, std::uint32_t cycle,
                         std::uint64_t& cycle_losses,
                         std::uint64_t& cycle_hops);
  EngineResult run_lossy(BatchFeed& feed, EngineObserver* observer);
  template <typename ChanT>
  EngineResult run_lossy_t(std::vector<ChanT>& chan_buf, BatchFeed& feed,
                           EngineObserver* observer);
  EngineResult run_fifo(const PathSet& paths, EngineObserver* observer);

  ChannelGraph graph_;
  EngineOptions opts_;
  std::unique_ptr<ThreadPool> pool_;  ///< live for the engine's lifetime

  /// Subtree-sharded parallel mode: engaged when the graph carries a
  /// shard partition, the engine is parallel and the policy is lossy or
  /// tally. Serial and sharded runs are bit-identical — every channel's
  /// contender set and pinned (seed, cycle, channel) lottery are the same
  /// — so this is purely an execution strategy, not a model change.
  bool sharded_ = false;
  std::vector<ShardState> shards_;

  /// Per-channel admission limit, fixed for the engine's lifetime:
  /// floor(alpha * capacity) floor 1 (RandomSubset), unlimited (Tally),
  /// capacity (Fifo), all clamped to 2^32 - 1. The clamp is lossless:
  /// contender counts and queue lengths are bounded by the number of live
  /// messages, which is below 2^32. Precomputed so the per-cycle loops
  /// never touch doubles, and 32-bit so the table is half as tall.
  std::vector<std::uint32_t> limit_;

  /// Admission limits in force for the current cycle: limit_.data()
  /// without a fault plan, the FaultState's effective limits (0 = channel
  /// down) with one. Every arbitration site reads limits through this
  /// pointer, so the fault-free hot path is unchanged.
  const std::uint32_t* active_limit_ = nullptr;

  /// Per-message retry state, maintained only when opts_.retry.enabled():
  /// attempts_[i] counts the cycles message i has contended in, wake_[i]
  /// is the cycle it next contends (== current cycle while active, a
  /// future cycle while parked in backoff). Compacted with ce_.
  std::vector<std::uint32_t> attempts_;
  std::vector<std::uint32_t> wake_;

  /// Graphs with at most 2^16 channels and stages — every simulator in
  /// the repository — run the lossy loop on 16-bit hop and stage buffers:
  /// half the random-access footprint of the per-cycle path walk, which
  /// is what the L2 working set is made of.
  bool narrow_ = false;
  std::vector<std::uint16_t> stage16_;   ///< narrow copy of graph_.stage

  /// Path validation table: stage + 1 for a usable channel, 0 for an
  /// unknown one (zero capacity). Injection validates each hop with one
  /// 32-bit lookup instead of ChannelGraph::check_path's two (capacity,
  /// then stage); the checks are equivalent because stage + 1 is strictly
  /// increasing exactly when stage is.
  std::vector<std::uint32_t> check_tbl_;

  // All per-run/per-cycle scratch below is a member so repeated run()
  // calls on one engine reach a steady state with no allocation: vectors
  // are cleared, never shrunk.
  std::vector<std::uint32_t> chan_buf_;   ///< injected CSR hops (wide)
  std::vector<std::uint16_t> chan_buf16_; ///< injected CSR hops (narrow)
  /// Live messages, injection order, struct-of-arrays. The stage sweeps
  /// index messages randomly but only ever touch the packed
  /// (end << 32) | cursor word — advance is one 64-bit increment, the
  /// delivered test one compare — so splitting the cold fields out halves
  /// the random-access footprint of a cycle. begin_ (cursor rewind) and
  /// id_ (trace events) are read in index order once per cycle at most.
  std::vector<std::uint64_t> ce_;     ///< (end << 32) | cursor per message
  std::vector<std::uint32_t> begin_;  ///< first hop, index into chan_buf_
  std::vector<std::uint32_t> id_;     ///< injection-order message id
  /// First hop of each live message, cached at injection so the per-cycle
  /// reseed never chases the (cold) CSR buffer. Compacted with ce_.
  std::vector<std::uint32_t> first_chan_;
  /// Worklists: list s holds the live messages whose next channel lies in
  /// stage s, packed as (msg << 32) | channel so bucket building never
  /// re-derives the channel through the message table and the CSR buffer.
  /// Seeded once per cycle from each message's first hop; stage s
  /// arbitration appends its survivors directly to later stages (paths
  /// have strictly increasing stages), so a cycle costs O(hops) instead
  /// of O(stages × pending). List order is unobservable: a later bucket
  /// either sorts its contenders before the lottery or is under limit,
  /// where order decides nothing.
  std::vector<std::vector<std::uint64_t>> stage_list_;

  // Bucket state. Contender counts accumulate at the forward/seed sites
  // (channels partition across stages, so counts for a later stage are
  // stable by the time it runs): bucket_pos_[c] is the count of channel
  // c's contenders, then a fill cursor or under-limit sentinel during the
  // stage's sweep, and is reset to zero (sticky) when the stage ends.
  // stage_touched_[s] lists the distinct channels of stage s with a
  // nonzero count. The parallel path additionally lays every bucket out
  // in CSR form: bucket j (channel stage_touched_[s][j]) occupies
  // arena_[bucket_off_[j] .. bucket_off_[j+1]).
  std::vector<std::vector<std::uint32_t>> stage_touched_;
  std::vector<std::uint32_t> bucket_off_;
  std::vector<std::uint32_t> bucket_pos_;
  std::vector<std::uint32_t> arena_;
  std::vector<OverBucket> over_;           ///< serial: contended buckets only
  std::vector<std::size_t> chunk_bounds_;  ///< parallel work partition
  /// Wire-selecting policies (Dmod, RandomLoadBalanced) can leave wires
  /// idle, so a contended bucket's winner count is no longer min(size,
  /// limit). Workers record it here (disjoint slots, one per bucket) and
  /// run_stage_parallel's serial merge reads it back; unused — never
  /// resized — under ObliviousRandom and AdaptiveOccupancy.
  std::vector<std::uint32_t> bucket_winners_;
  /// AdaptiveOccupancy state. over_pressure_[c] is set (by whichever
  /// executor arbitrated channel c — channels of one stage are disjoint,
  /// so writes never race) when c's bucket ran over limit this cycle;
  /// the serial end-of-cycle scan folds it into hot_streak_[c]
  /// (consecutive over-pressure cycles, reset on a calm one) and clears
  /// it. The scan walks adaptive_scan_: the telemetry probe's in-budget
  /// channel list (engine/channel_scan.hpp), built once per engine.
  /// Parking decisions read hot_streak_ only, on the serial compaction
  /// path — occupancy feedback never crosses a thread boundary, which is
  /// what keeps the adaptive policy's parity argument identical to the
  /// oblivious one's.
  std::vector<std::uint32_t> over_pressure_;
  std::vector<std::uint32_t> hot_streak_;
  std::vector<std::uint32_t> adaptive_scan_;
  /// Bit-per-pending-message scratch for the serial over-loop's bitmap
  /// sort of large contended buckets (engine.cpp sort_by_bitmap). Kept
  /// all-zero between uses: extraction clears each word it reads.
  std::vector<std::uint64_t> sort_bits_;

  /// carried_ is only observable through an observer's CycleSnapshot;
  /// without one — or on cycles the observer declines via
  /// wants_channel_state() — the lossy stage loops skip the per-channel
  /// occupancy writes (and the per-cycle clear) entirely.
  bool want_carried_ = true;
  std::vector<std::uint32_t> carried_;  ///< per-channel, current cycle

  /// Latency sampling (observer wants_latency_samples() only): the cycle
  /// each live message was injected in, compacted with ce_, and the
  /// current cycle's delivered samples handed out through the snapshot.
  std::vector<std::uint32_t> inject_cycle_;
  std::vector<LatencySample> lat_samples_;

  /// Phase-timing accumulators (opts_.time_phases only), reset per run
  /// and folded into EngineResult::phases: the stage sweeps add to
  /// up/spine/down from the coordination path, the cycle loop attributes
  /// its remainder to coord.
  bool time_phases_ = false;
  double ph_up_ = 0.0;
  double ph_spine_ = 0.0;
  double ph_spine_par_ = 0.0;  ///< spine stages resolved on the pool
  double ph_down_ = 0.0;
};

}  // namespace ft
