// The unified delivery-cycle engine. One instrumented simulation core runs
// the paper's batched cycle loop (Section II: contending bit-serial
// traffic, loss + acknowledgment + retry) for every router in the
// repository; the per-topology simulators are thin adapters that compile
// their topology into a ChannelGraph and their messages into EnginePaths.
//
// Policy points:
//   * Contention — how a channel resolves more contenders than wires:
//       RandomSubset  a uniformly random cap-subset survives, the rest are
//                     lost and retry next cycle (the paper's concentrator
//                     + acknowledgment mechanism; `alpha` models partial
//                     concentrators, Section IV);
//       Fifo          store-and-forward rounds with per-channel FIFO
//                     queues, up to cap(c) forwards per round (competitor
//                     networks, k-ary n-trees);
//       Tally         no arbitration, pure occupancy accounting (offline
//                     schedule replay and utilization analytics).
//   * Channel model — the ChannelGraph handed to the constructor
//     (engine/fat_tree_model.hpp, nets/Network, kary/KaryTree adapters).
//
// Parallel mode resolves contention across independent channels of one
// arbitration stage on a persistent thread pool. Results are identical to
// serial mode: every random arbitration draws from a private stream seeded
// by (seed, cycle, channel), so no decision depends on thread scheduling,
// and FIFO arrivals are merged in channel-index order.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/channel_graph.hpp"
#include "engine/observer.hpp"
#include "util/thread_pool.hpp"

namespace ft {

enum class ContentionPolicy : std::uint8_t { RandomSubset, Fifo, Tally };

struct EngineOptions {
  ContentionPolicy contention = ContentionPolicy::RandomSubset;
  /// RandomSubset: a channel of capacity c accepts floor(alpha * c)
  /// messages per cycle, floor 1 (alpha = 1 is the ideal concentrator,
  /// 3/4 the partial concentrators of Section IV).
  double alpha = 1.0;
  /// Stop after this many cycles/rounds (0 = unbounded). A lossy run that
  /// still has pending messages when the cap is hit sets
  /// EngineResult::gave_up instead of looping forever.
  std::uint32_t max_cycles = 0;
  /// Seed for RandomSubset arbitration streams.
  std::uint64_t seed = 0;
  /// Resolve independent channels of a stage on a thread pool. Identical
  /// results to serial mode at any thread count.
  bool parallel = false;
  /// Worker threads for parallel mode (0 = hardware concurrency).
  std::size_t threads = 0;
};

struct EngineResult {
  std::uint32_t cycles = 0;  ///< delivery cycles (lossy) or rounds (FIFO)
  bool gave_up = false;      ///< max_cycles hit with messages undelivered
  std::uint64_t delivered = 0;
  std::uint64_t total_attempts = 0;  ///< path attempts (lossy), hops (FIFO)
  std::uint64_t total_losses = 0;    ///< attempts killed by contention
  std::uint64_t total_hops = 0;      ///< sum of path lengths
  double latency_sum = 0.0;          ///< FIFO: sum of per-message finish rounds
  std::uint32_t max_queue = 0;       ///< FIFO: peak queue depth
  std::vector<std::uint32_t> delivered_per_cycle;
};

class CycleEngine {
 public:
  explicit CycleEngine(ChannelGraph graph, const EngineOptions& opts = {});
  ~CycleEngine();

  CycleEngine(const CycleEngine&) = delete;
  CycleEngine& operator=(const CycleEngine&) = delete;

  const ChannelGraph& graph() const { return graph_; }

  /// Runs one batch of messages to completion. Lossy/tally: all messages
  /// contend from cycle 1 and losers retry until delivered (or the engine
  /// gives up). Fifo: synchronous store-and-forward rounds.
  EngineResult run(const std::vector<EnginePath>& paths,
                   EngineObserver* observer = nullptr);

  /// Lossy/tally only: batch i is injected at cycle i+1 (the offline
  /// schedule replay: one batch per scheduled delivery cycle). Losers of
  /// batch i retry alongside batch i+1. Every batch opens a cycle, so a
  /// valid offline schedule replays in exactly schedule.num_cycles()
  /// cycles with zero losses.
  EngineResult run_batched(const std::vector<std::vector<EnginePath>>& batches,
                           EngineObserver* observer = nullptr);

 private:
  struct Pending {
    const EnginePath* path;
    std::uint32_t cursor;  ///< next channel position within the cycle
    std::uint32_t id;      ///< injection-order message id (trace events)
  };

  std::uint64_t channel_limit(std::size_t channel) const;
  void arbitrate_channel(std::uint32_t cycle, std::uint32_t channel);
  void run_stage(std::uint32_t cycle, std::uint32_t stage);
  EngineResult run_lossy(const std::vector<std::vector<EnginePath>>& batches,
                         EngineObserver* observer);
  EngineResult run_fifo(const std::vector<EnginePath>& paths,
                        EngineObserver* observer);

  ChannelGraph graph_;
  EngineOptions opts_;
  std::unique_ptr<ThreadPool> pool_;  ///< live for the engine's lifetime

  // Flat per-channel occupancy state, reused across stages and cycles.
  std::vector<std::uint32_t> carried_;      ///< per-channel, current cycle
  std::vector<std::uint32_t> losses_;       ///< per-channel, current stage
  std::vector<std::vector<std::uint32_t>> buckets_;  ///< contenders
  std::vector<std::uint32_t> touched_;      ///< channels contended this stage
  std::vector<Pending> pending_;
  std::vector<std::uint8_t> alive_;
};

}  // namespace ft
