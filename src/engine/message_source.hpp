// Streaming message input for the delivery-cycle engine. A MessageSource
// hands the engine one PathSet chunk at a time instead of materializing
// every path for the whole run up front, so peak memory for an n = 2^20
// workload is O(chunk), not O(n) (see DESIGN.md "Scale-out").
//
// Contract: next_chunk() clears `chunk`, refills it with the next batch of
// paths (at most the source's chunk size) and returns true, or returns
// false — leaving `chunk` cleared — when the source is exhausted. A source
// is single-pass: once it returns false it keeps returning false. The
// engine guarantees the concatenation of all chunks is consumed in order,
// which is what makes streaming runs bit-identical to materialized ones.
#pragma once

#include <cstddef>

#include "engine/channel_graph.hpp"

namespace ft {

/// Default number of paths per streamed chunk: large enough to amortize
/// per-chunk bookkeeping, small enough that a chunk of million-leaf
/// fat-tree paths stays in the tens of megabytes.
inline constexpr std::size_t kDefaultChunkPaths = 8192;

class MessageSource {
 public:
  virtual ~MessageSource() = default;

  /// Fills `chunk` with the next batch of paths. Returns false (with
  /// `chunk` empty) when exhausted.
  virtual bool next_chunk(PathSet& chunk) = 0;
};

/// Adapts an already-materialized PathSet to the streaming interface by
/// slicing it into chunks. Used by the parity tests and by callers that
/// have a small set in hand but want the streaming code path.
class PathSetSource final : public MessageSource {
 public:
  explicit PathSetSource(const PathSet& set,
                         std::size_t chunk_paths = kDefaultChunkPaths)
      : set_(set), chunk_paths_(chunk_paths == 0 ? 1 : chunk_paths) {}

  bool next_chunk(PathSet& chunk) override {
    chunk.clear();
    if (next_ >= set_.size()) return false;
    const std::size_t end = next_ + chunk_paths_ < set_.size()
                                ? next_ + chunk_paths_
                                : set_.size();
    const auto& chans = set_.channels();
    for (std::size_t p = next_; p < end; ++p) {
      const std::uint32_t off = set_.offset(p);
      const std::uint32_t len = set_.length(p);
      chunk.append(chans.data() + off, chans.data() + off + len);
    }
    next_ = end;
    return true;
  }

 private:
  const PathSet& set_;
  std::size_t chunk_paths_;
  std::size_t next_ = 0;
};

}  // namespace ft
