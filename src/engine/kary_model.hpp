// k-ary n-tree channel model for the CycleEngine: the tree's dense link
// ids become engine channel indices one-for-one (unit capacity, as in the
// E13 contention model), so a KaryRoute is already an EnginePath. Used by
// the k-ary permutation simulation (FIFO contention).
#pragma once

#include <algorithm>

#include "engine/channel_graph.hpp"
#include "engine/fault_plan.hpp"
#include "engine/message_source.hpp"
#include "kary/kary_routing.hpp"
#include "kary/kary_tree.hpp"

namespace ft {

inline ChannelGraph kary_channel_graph(const KaryTree& tree) {
  return ChannelGraph::flat(
      std::vector<std::uint64_t>(tree.num_links(), 1));
}

/// Batch conversion of k-ary routes to the engine's CSR input.
inline PathSet kary_path_set(const std::vector<KaryRoute>& routes) {
  return PathSet::from_paths(routes);
}

/// Routes a permutation chunk by chunk as the engine consumes it: the
/// full route vector for the permutation never exists. Routing draws on
/// the shared `rng` and `tracker` in source order, exactly as the
/// materialize-then-run path does, so the two are bit-identical for one
/// generator state. The tracker's load statistics and max_route_hops()
/// are complete once the source is drained (FIFO ingestion drains it
/// before the first round).
class KaryRouteSource final : public MessageSource {
 public:
  KaryRouteSource(const KaryTree& tree, const std::vector<std::uint32_t>& perm,
                  AscentPolicy policy, Rng& rng, KaryLoadTracker& tracker,
                  std::size_t chunk_paths = kDefaultChunkPaths)
      : tree_(tree),
        perm_(perm),
        policy_(policy),
        rng_(rng),
        tracker_(tracker),
        chunk_paths_(chunk_paths == 0 ? 1 : chunk_paths) {}

  bool next_chunk(PathSet& chunk) override {
    if (next_ >= perm_.size()) return false;
    chunk.clear();
    const std::size_t end = std::min<std::size_t>(perm_.size(),
                                                  next_ + chunk_paths_);
    for (; next_ < end; ++next_) {
      const KaryRoute route =
          kary_route(tree_, static_cast<std::uint32_t>(next_), perm_[next_],
                     policy_, rng_, tracker_);
      max_route_hops_ = std::max(max_route_hops_,
                                 static_cast<std::uint32_t>(route.size()));
      for (const std::uint32_t c : route) chunk.push_channel(c);
      chunk.close_path();
    }
    return true;
  }

  std::uint32_t max_route_hops() const { return max_route_hops_; }

 private:
  const KaryTree& tree_;
  const std::vector<std::uint32_t>& perm_;
  AscentPolicy policy_;
  Rng& rng_;
  KaryLoadTracker& tracker_;
  std::size_t chunk_paths_;
  std::size_t next_ = 0;
  std::uint32_t max_route_hops_ = 0;
};

/// Correlated-failure domain of the pod whose processors share the
/// `depth` most-significant base-k digits `prefix` (depth in
/// [1, levels-1]) — the k-ary analogue of a fat-tree subtree. Contains
/// every link incident to a pod switch: up links out of the pod (its
/// "parent edges" at rank depth included), down links within and out of
/// the pod, the down links feeding it from rank depth-1, and the pod
/// processors' injection links. Labelled k^depth + prefix, the base-k
/// heap number — for k = 2 this matches the fat-tree / binary-tree heap
/// node, so one kill scenario lines up across backends.
inline FaultDomain kary_pod_domain(const KaryTree& tree, std::uint32_t depth,
                                   std::uint32_t prefix) {
  FT_CHECK(depth >= 1 && depth < tree.levels());
  const std::uint32_t k = tree.k();
  std::uint32_t pods = 1;  // k^depth
  for (std::uint32_t i = 0; i < depth; ++i) pods *= k;
  FT_CHECK(prefix < pods);

  FaultDomain dom;
  dom.node = pods + prefix;
  const std::uint32_t spl = tree.switches_per_level();
  const std::uint32_t words_in_pod = spl / pods;  // k^(levels-1-depth)
  const std::uint32_t first_word = prefix * words_in_pod;
  for (std::uint32_t l = depth; l < tree.levels(); ++l) {
    for (std::uint32_t w = first_word; w < first_word + words_in_pod; ++w) {
      for (std::uint32_t d = 0; d < k; ++d) {
        dom.channels.push_back(tree.up_link_id(l, w, d));
        dom.channels.push_back(tree.down_link_id(l, w, d));
      }
    }
  }
  // Down links feeding the pod from rank depth-1: parents agree with the
  // pod on digits 0..depth-2 and descend choosing digit depth-1 = the
  // pod prefix's last digit.
  const std::uint32_t parent_group = words_in_pod * k;
  const std::uint32_t first_parent = (prefix / k) * parent_group;
  const std::uint32_t delta = prefix % k;
  for (std::uint32_t w = first_parent; w < first_parent + parent_group; ++w) {
    dom.channels.push_back(tree.down_link_id(depth - 1, w, delta));
  }
  const std::uint32_t procs_per_pod = tree.num_processors() / pods;
  const std::uint32_t first_proc = prefix * procs_per_pod;
  for (std::uint32_t p = first_proc; p < first_proc + procs_per_pod; ++p) {
    dom.channels.push_back(tree.injection_link_id(p));
  }
  return dom;
}

/// Domains for every pod at `depth`: k^depth disjoint pods covering all
/// processors.
inline std::vector<FaultDomain> kary_pod_domains(const KaryTree& tree,
                                                 std::uint32_t depth) {
  std::uint32_t pods = 1;
  for (std::uint32_t i = 0; i < depth; ++i) pods *= tree.k();
  std::vector<FaultDomain> domains;
  domains.reserve(pods);
  for (std::uint32_t prefix = 0; prefix < pods; ++prefix) {
    domains.push_back(kary_pod_domain(tree, depth, prefix));
  }
  return domains;
}

}  // namespace ft
