// k-ary n-tree channel model for the CycleEngine: the tree's dense link
// ids become engine channel indices one-for-one (unit capacity, as in the
// E13 contention model), so a KaryRoute is already an EnginePath. Used by
// the k-ary permutation simulation (FIFO contention).
#pragma once

#include "engine/channel_graph.hpp"
#include "kary/kary_routing.hpp"
#include "kary/kary_tree.hpp"

namespace ft {

inline ChannelGraph kary_channel_graph(const KaryTree& tree) {
  return ChannelGraph::flat(
      std::vector<std::uint64_t>(tree.num_links(), 1));
}

/// Batch conversion of k-ary routes to the engine's CSR input.
inline PathSet kary_path_set(const std::vector<KaryRoute>& routes) {
  return PathSet::from_paths(routes);
}

}  // namespace ft
