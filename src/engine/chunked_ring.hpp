// Chunked ring buffer of message ids: the CycleEngine's per-channel FIFO
// queue. A circular singly-linked list of fixed-size chunks; head and tail
// chase each other around the ring, and a chunk drained by the head is
// reused in place by the tail, so a queue that has reached its peak depth
// performs no further allocation — unlike std::deque, which frees and
// reallocates its blocks as the queue breathes. Pushes and pops are O(1),
// FIFO order is exact.
#pragma once

#include <cstdint>

namespace ft {

class ChunkedRing {
 public:
  /// 128 ids per chunk: 512-byte payload, one cache-line-friendly step per
  /// 128 operations for the link-following slow path.
  static constexpr std::uint32_t kChunkCapacity = 128;

  ChunkedRing() = default;
  ChunkedRing(const ChunkedRing&) = delete;
  ChunkedRing& operator=(const ChunkedRing&) = delete;
  ChunkedRing(ChunkedRing&& other) noexcept { swap(other); }
  ChunkedRing& operator=(ChunkedRing&& other) noexcept {
    swap(other);
    return *this;
  }

  ~ChunkedRing() {
    if (head_ == nullptr) return;
    Chunk* c = head_->next;
    while (c != head_) {
      Chunk* next = c->next;
      delete c;
      c = next;
    }
    delete head_;
  }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  void push(std::uint32_t value) {
    if (tail_ == nullptr) {
      head_ = tail_ = new Chunk;
      head_->next = head_;
    } else if (tail_pos_ == kChunkCapacity) {
      if (count_ == 0) {
        // Ring fully drained at a chunk boundary: restart in place.
        head_ = tail_;
        head_pos_ = 0;
        tail_pos_ = 0;
      } else {
        // The next chunk around the ring is free unless the head is still
        // draining it, in which case the ring grows by one chunk.
        if (tail_->next == head_) {
          Chunk* fresh = new Chunk;
          fresh->next = tail_->next;
          tail_->next = fresh;
        }
        tail_ = tail_->next;
        tail_pos_ = 0;
      }
    }
    tail_->values[tail_pos_++] = value;
    ++count_;
  }

  /// Pops the oldest id. Precondition: !empty().
  std::uint32_t pop() {
    const std::uint32_t value = head_->values[head_pos_++];
    --count_;
    if (head_pos_ == kChunkCapacity && count_ != 0) {
      head_ = head_->next;
      head_pos_ = 0;
    }
    return value;
  }

 private:
  struct Chunk {
    std::uint32_t values[kChunkCapacity];
    Chunk* next = nullptr;
  };

  void swap(ChunkedRing& other) noexcept {
    Chunk* h = head_;
    Chunk* t = tail_;
    const std::uint32_t hp = head_pos_, tp = tail_pos_;
    const std::size_t c = count_;
    head_ = other.head_;
    tail_ = other.tail_;
    head_pos_ = other.head_pos_;
    tail_pos_ = other.tail_pos_;
    count_ = other.count_;
    other.head_ = h;
    other.tail_ = t;
    other.head_pos_ = hp;
    other.tail_pos_ = tp;
    other.count_ = c;
  }

  Chunk* head_ = nullptr;  ///< chunk being drained
  Chunk* tail_ = nullptr;  ///< chunk being filled
  std::uint32_t head_pos_ = 0;  ///< next pop slot within head_
  std::uint32_t tail_pos_ = 0;  ///< next push slot within tail_
  std::size_t count_ = 0;
};

}  // namespace ft
