#include "engine/engine.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <memory>

#include "engine/channel_scan.hpp"
#include "engine/chunked_ring.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

namespace ft {
namespace {

/// Independent arbitration stream per (run seed, cycle, channel): no
/// random decision depends on the order channels are resolved in, which
/// is what makes parallel mode bit-identical to serial mode.
std::uint64_t arbitration_seed(std::uint64_t seed, std::uint32_t cycle,
                               std::uint32_t channel) {
  SplitMix64 sm(seed ^ (static_cast<std::uint64_t>(cycle) << 32) ^ channel);
  return sm.next();
}

/// Below this many contenders in a stage the arbitration is resolved
/// inline: waking the pool costs more than the work itself. Stages shrink
/// as messages deliver, so late cycles drop back to serial automatically.
constexpr std::size_t kMinParallelWork = 4096;

/// Restores ascending pending order before a bucket's lottery. Buckets
/// are small (a channel's contenders) and usually already sorted — fed
/// straight off the ascending seed list, or scrambled only by upstream
/// lottery winners — so adaptive insertion sort beats std::sort here: the
/// already-sorted case is one compare per element with no call overhead,
/// and near-sorted buckets finish in a handful of moves.
inline void sort_small(std::uint32_t* b, std::size_t n) {
  if (n > 64) {  // quadratic guard; big buckets are rare
    if (!std::is_sorted(b, b + n)) std::sort(b, b + n);
    return;
  }
  for (std::size_t k = 1; k < n; ++k) {
    const std::uint32_t x = b[k];
    std::size_t j = k;
    for (; j > 0 && b[j - 1] > x; --j) b[j] = b[j - 1];
    b[j] = x;
  }
}

/// Sorts a large bucket by marking its entries — distinct pending-message
/// indices — in a bit-per-message scratch and reading the bits back in
/// order: O(n + span/64) with word-at-a-time constants, against
/// std::sort's n log n comparison sort. `bits` must be all-zero on entry
/// and is left all-zero: extraction clears each word it reads. Serial
/// over-loop only (the scratch is shared, so concurrent arbitration
/// keeps using sort_small).
inline void sort_by_bitmap(std::uint64_t* bits, std::uint32_t* b,
                           std::uint32_t n) {
  std::uint32_t wmin = 0xffffffffu;
  std::uint32_t wmax = 0;
  for (std::uint32_t t = 0; t < n; ++t) {
    const std::uint32_t v = b[t];
    const std::uint32_t w = v >> 6;
    bits[w] |= 1ull << (v & 63u);
    wmin = std::min(wmin, w);
    wmax = std::max(wmax, w);
  }
  std::uint32_t out = 0;
  for (std::uint32_t w = wmin; w <= wmax; ++w) {
    std::uint64_t m = bits[w];
    if (m == 0) continue;
    bits[w] = 0;
    const std::uint32_t base = w << 6;
    do {
      b[out++] = base + static_cast<std::uint32_t>(std::countr_zero(m));
      m &= m - 1;
    } while (m != 0);
  }
}

/// AdaptiveOccupancy tuning. A channel is "hot" once it has run over its
/// admission limit for this many consecutive cycles — one contended cycle
/// is normal lottery noise, a streak is persistent congestion (the
/// persistence test of Rocher-Gonzalez et al., arXiv:2502.00597, in
/// delivery-cycle units).
constexpr std::uint32_t kAdaptiveHotStreak = 3;
/// Widest desynchronization window: a hot channel's losers spread their
/// retries over min(streak, kAdaptiveMaxDelay) upcoming cycles.
constexpr std::uint32_t kAdaptiveMaxDelay = 8;

/// True for the disciplines that assign individual wires (and can
/// therefore admit fewer than `limit` winners); ObliviousRandom and
/// AdaptiveOccupancy keep the paper's cap-subset lottery.
inline bool wire_selecting(RoutingPolicy pol) {
  return pol == RoutingPolicy::DeterministicDmod ||
         pol == RoutingPolicy::RandomLoadBalanced;
}

/// Wire-claim scratch for the wire-selecting disciplines: a flag per wire
/// plus the claimed-wire list that re-zeroes it. thread_local because
/// sharded and spine-parallel arbitration run buckets on pool workers.
struct WireClaims {
  std::vector<std::uint8_t> taken;
  std::vector<std::uint32_t> claimed;
};

/// Resolves one over-limit bucket under a wire-selecting discipline.
/// `b[0..size)` must already be in ascending pending order (the same
/// sorted view the oblivious lottery sees). Each contender bids for one
/// of the channel's `limit` wires — DeterministicDmod by destination key
/// (the path's final channel, stable wherever the cursor points and
/// identical in every executor), RandomLoadBalanced by hashing the
/// bucket's pinned (seed, cycle, channel) stream with the contender's
/// pending index (the executor-invariant per-message identity) — and the
/// lowest pending index wins each wire. Winners are swapped stably to
/// b[0..w); returns w. Wires nobody bids for idle, which is exactly the
/// static-path pathology the adversarial traffic generators target.
/// Depends only on the sorted bucket, ce, limit and the pinned stream,
/// so every executor computes the same winner set.
template <typename ChanT>
std::uint32_t select_policy_winners(RoutingPolicy pol, std::uint32_t* b,
                                    std::size_t size, std::uint64_t limit,
                                    std::uint64_t seed, std::uint32_t cycle,
                                    std::uint32_t channel,
                                    const std::uint64_t* ce,
                                    const ChanT* chan) {
  if (limit == 0) return 0;
  thread_local WireClaims wc;
  if (wc.taken.size() < limit) wc.taken.resize(limit, 0);
  wc.claimed.clear();
  const std::uint64_t arb = arbitration_seed(seed, cycle, channel);
  std::uint32_t w = 0;
  for (std::size_t t = 0; t < size; ++t) {
    const std::uint32_t i = b[t];
    std::uint64_t wire;
    if (pol == RoutingPolicy::DeterministicDmod) {
      const std::uint64_t end = ce[i] >> 32;
      wire = static_cast<std::uint64_t>(chan[end - 1]) % limit;
    } else {
      SplitMix64 h(arb ^
                   (static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ull));
      wire = h.next() % limit;
    }
    if (!wc.taken[wire]) {
      wc.taken[wire] = 1;
      wc.claimed.push_back(static_cast<std::uint32_t>(wire));
      std::swap(b[w], b[t]);  // stable for winners: w <= t
      ++w;
    }
  }
  for (const std::uint32_t wire : wc.claimed) wc.taken[wire] = 0;
  return w;
}

/// Worklist entry layout (see the stage_list_ comment): (msg, channel)
/// packed into one 64-bit word. A 16+16-bit packing for small runs was
/// tried and measured ~10% slower despite halving the stream, so the
/// layout is fixed.
inline std::uint64_t pack_entry(std::uint32_t msg, std::uint32_t chan) {
  return (static_cast<std::uint64_t>(msg) << 32) | chan;
}
inline std::uint32_t entry_msg(std::uint64_t e) {
  return static_cast<std::uint32_t>(e >> 32);
}
inline std::uint32_t entry_chan(std::uint64_t e) {
  return static_cast<std::uint32_t>(e);
}

/// Phase timing (EngineOptions::time_phases) clock. Timing reads happen
/// on the coordination path only, so they never perturb arbitration or
/// any other simulated outcome.
using PhaseClock = std::chrono::steady_clock;
inline double phase_delta(PhaseClock::time_point a, PhaseClock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

/// See the declaration in engine.hpp. The cycle loop calls next(cycle)
/// repeatedly within one cycle until it returns nullptr, consuming each
/// returned batch before the following call (so feeds may reuse one
/// buffer). exhausted() must be accurate by the end of the cycle that
/// injected the last batch: the loop's termination test reads it, and a
/// late flip would cost a spurious empty cycle that the materialized
/// engine would not run.
class BatchFeed {
 public:
  virtual ~BatchFeed() = default;
  virtual const PathSet* next(std::uint32_t cycle) = 0;
  virtual bool exhausted() const = 0;
};

namespace {

/// Materialized batches: batch i is injected at cycle i + 1, one per
/// cycle (the run() / run_batched() entry points).
class VectorFeed final : public BatchFeed {
 public:
  VectorFeed(const PathSet* const* batches, std::size_t count)
      : batches_(batches), count_(count) {}

  const PathSet* next(std::uint32_t cycle) override {
    if (next_ >= count_ || cycle == last_cycle_) return nullptr;
    last_cycle_ = cycle;
    return batches_[next_++];
  }
  bool exhausted() const override { return next_ >= count_; }

 private:
  const PathSet* const* batches_;
  std::size_t count_;
  std::size_t next_ = 0;
  std::uint32_t last_cycle_ = 0;
};

/// Streams every chunk of a MessageSource into cycle 1 (run_stream). One
/// PathSet buffer is refilled in place between next() calls; the first
/// chunk is prefetched so an empty source is exhausted before the cycle
/// loop starts (cycles == 0, matching run() on an empty set).
class StreamAllFeed final : public BatchFeed {
 public:
  explicit StreamAllFeed(MessageSource& source) : source_(source) {
    pending_ = source_.next_chunk(chunk_);
  }

  const PathSet* next(std::uint32_t cycle) override {
    if (cycle != 1 || !pending_) return nullptr;
    if (!served_first_) {
      served_first_ = true;
      return &chunk_;
    }
    pending_ = source_.next_chunk(chunk_);
    return pending_ ? &chunk_ : nullptr;
  }
  bool exhausted() const override { return !pending_; }

 private:
  MessageSource& source_;
  PathSet chunk_;
  bool pending_ = false;
  bool served_first_ = false;
};

/// Streams one chunk per cycle (run_batched_stream). The following chunk
/// is prefetched as the current one is served, so exhausted() flips in
/// the same cycle the last chunk is injected.
class StreamBatchFeed final : public BatchFeed {
 public:
  explicit StreamBatchFeed(MessageSource& source) : source_(source) {
    pending_ = source_.next_chunk(cur_);
  }

  const PathSet* next(std::uint32_t cycle) override {
    if (!pending_ || cycle == last_cycle_) return nullptr;
    last_cycle_ = cycle;
    std::swap(cur_, serve_);
    pending_ = source_.next_chunk(cur_);
    return &serve_;
  }
  bool exhausted() const override { return !pending_; }

 private:
  MessageSource& source_;
  PathSet cur_;    ///< prefetched, served next
  PathSet serve_;  ///< being consumed by the engine
  bool pending_ = false;
  std::uint32_t last_cycle_ = 0;
};

}  // namespace

CycleEngine::CycleEngine(ChannelGraph graph, const EngineOptions& opts)
    : graph_(std::move(graph)), opts_(opts) {
  FT_CHECK_MSG(opts_.alpha > 0.0, "alpha must be positive");
  // Admission limits are a pure function of (policy, alpha, capacity), all
  // fixed at construction: resolve the floating-point math once here so
  // the per-cycle loop is integer-only.
  const std::size_t num_channels = graph_.num_channels();
  // Limits are clamped to 2^32 - 1; counts compared against them are
  // bounded by the number of live messages, which is below 2^32, so the
  // clamp never changes an admission decision (see the limit_ comment).
  constexpr std::uint64_t kMaxLimit = 0xffffffffu;
  limit_.resize(num_channels);
  for (std::size_t c = 0; c < num_channels; ++c) {
    switch (opts_.contention) {
      case ContentionPolicy::Tally:
        limit_[c] = static_cast<std::uint32_t>(kMaxLimit);
        break;
      case ContentionPolicy::Fifo:
        limit_[c] = static_cast<std::uint32_t>(
            std::min(graph_.capacity[c], kMaxLimit));
        break;
      case ContentionPolicy::RandomSubset:
        limit_[c] = static_cast<std::uint32_t>(std::min(
            kMaxLimit,
            std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(
                       static_cast<double>(graph_.capacity[c]) *
                       opts_.alpha))));
        break;
    }
  }
  check_tbl_.resize(num_channels);
  for (std::size_t c = 0; c < num_channels; ++c) {
    check_tbl_[c] = graph_.capacity[c] > 0 ? graph_.stage[c] + 1 : 0;
  }
  active_limit_ = limit_.data();
  narrow_ = num_channels <= 65536 && graph_.num_stages <= 65536;
  if (narrow_) {
    stage16_.resize(num_channels);
    for (std::size_t c = 0; c < num_channels; ++c) {
      stage16_[c] = static_cast<std::uint16_t>(graph_.stage[c]);
    }
  }
  if (opts_.parallel) {
    pool_ = std::make_unique<ThreadPool>(opts_.threads);
  }
  // Subtree sharding is an execution strategy for the lossy/tally cycle
  // loop only; FIFO mode has its own channel-range parallelism.
  sharded_ = opts_.parallel && graph_.num_shards > 1 &&
             opts_.contention != ContentionPolicy::Fifo;
  if (sharded_) {
    FT_CHECK_MSG(graph_.shard.size() == num_channels,
                 "shard table must cover every channel");
    FT_CHECK_MSG(graph_.spine_stage_lo <= graph_.spine_stage_hi &&
                     graph_.spine_stage_hi <= graph_.num_stages,
                 "spine stage band out of range");
    for (std::size_t c = 0; c < num_channels; ++c) {
      if (graph_.capacity[c] == 0) continue;
      const std::uint32_t sh = graph_.shard[c];
      if (sh == ChannelGraph::kNoShard) {
        const bool in_spine = graph_.stage[c] >= graph_.spine_stage_lo &&
                              graph_.stage[c] < graph_.spine_stage_hi;
        if (!in_spine) {
          // A channel outside both the shard partition and the spine band
          // (the fat-tree root's external-interface pair) has no home in
          // the sharded executor. No internal path uses such channels;
          // poisoning the validation table turns any path that tries into
          // an injection-time abort instead of silent corruption.
          check_tbl_[c] = 0;
        }
      } else {
        FT_CHECK_MSG(sh < graph_.num_shards, "shard id out of range");
      }
    }
  }
  if (opts_.policy == RoutingPolicy::AdaptiveOccupancy) {
    // The congestion-feedback scan walks the telemetry probe's in-budget
    // channel list (engine/channel_scan.hpp), built once per engine; the
    // hot-streak pass only needs the channel indices.
    for (const ChannelScanEntry& e : build_channel_scan(graph_)) {
      adaptive_scan_.push_back(e.channel);
    }
  }
}

template <typename ChanT>
const auto* CycleEngine::stage_table() const {
  if constexpr (sizeof(ChanT) == 2) {
    return stage16_.data();
  } else {
    return graph_.stage.data();
  }
}

CycleEngine::~CycleEngine() = default;

EngineResult CycleEngine::run(const PathSet& paths, EngineObserver* observer) {
  if (opts_.contention == ContentionPolicy::Fifo) {
    return run_fifo(paths, observer);
  }
  if (paths.empty()) return {};
  const PathSet* one = &paths;
  VectorFeed feed(&one, 1);
  return run_lossy(feed, observer);
}

EngineResult CycleEngine::run(const std::vector<EnginePath>& paths,
                              EngineObserver* observer) {
  return run(PathSet::from_paths(paths), observer);
}

EngineResult CycleEngine::run_stream(MessageSource& source,
                                     EngineObserver* observer) {
  if (opts_.contention == ContentionPolicy::Fifo) {
    // FIFO rounds seed every queue before round 1, so the whole set must
    // exist at once; ingesting the stream into CSR form still beats a
    // vector-of-vectors route list by ~6x in bytes per hop.
    PathSet all;
    PathSet chunk;
    while (source.next_chunk(chunk)) all.append_set(chunk);
    return run_fifo(all, observer);
  }
  StreamAllFeed feed(source);
  return run_lossy(feed, observer);
}

EngineResult CycleEngine::run_batched_stream(MessageSource& source,
                                             EngineObserver* observer) {
  FT_CHECK_MSG(opts_.contention != ContentionPolicy::Fifo,
               "batched injection requires a lossy or tally policy");
  StreamBatchFeed feed(source);
  return run_lossy(feed, observer);
}

EngineResult CycleEngine::run_batched(const std::vector<PathSet>& batches,
                                      EngineObserver* observer) {
  FT_CHECK_MSG(opts_.contention != ContentionPolicy::Fifo,
               "batched injection requires a lossy or tally policy");
  std::vector<const PathSet*> ptrs;
  ptrs.reserve(batches.size());
  for (const PathSet& b : batches) ptrs.push_back(&b);
  VectorFeed feed(ptrs.data(), ptrs.size());
  return run_lossy(feed, observer);
}

EngineResult CycleEngine::run_batched(
    const std::vector<std::vector<EnginePath>>& batches,
    EngineObserver* observer) {
  std::vector<PathSet> sets;
  sets.reserve(batches.size());
  for (const auto& b : batches) sets.push_back(PathSet::from_paths(b));
  return run_batched(sets, observer);
}

/// Lays one stage's contenders out in CSR form: bucket j (channel
/// stage_touched_[stage][j]) becomes arena_[bucket_off_[j] ..
/// bucket_off_[j+1]). Contender counts were accumulated when the entries
/// were forwarded, so this is one offset scan plus one fill sweep.
void CycleEngine::build_buckets(const std::vector<std::uint64_t>& list,
                                std::uint32_t stage) {
  const std::vector<std::uint32_t>& touched = stage_touched_[stage];
  bucket_off_.resize(touched.size() + 1);
  std::uint32_t total = 0;
  for (std::size_t j = 0; j < touched.size(); ++j) {
    bucket_off_[j] = total;
    const std::uint32_t c = touched[j];
    const std::uint32_t count = bucket_pos_[c];
    bucket_pos_[c] = total;  // becomes the fill cursor for the sweep
    total += count;
  }
  bucket_off_[touched.size()] = total;
  arena_.resize(total);
  std::uint32_t* const bp = bucket_pos_.data();
  std::uint32_t* const ar = arena_.data();
  for (const std::uint64_t e : list) {
    ar[bp[entry_chan(e)]++] = entry_msg(e);
  }
}

template <typename ChanT>
void CycleEngine::arbitrate_bucket(const ChanT* chan, std::uint32_t cycle,
                                   std::uint32_t c, std::size_t bucket) {
  std::uint32_t* b = arena_.data() + bucket_off_[bucket];
  const std::size_t size = bucket_off_[bucket + 1] - bucket_off_[bucket];
  const std::uint64_t limit = active_limit_[c];
  if (size > limit) {
    // The pinned arbitration lottery saw contenders in ascending pending
    // index (the old engine scanned messages in order); worklist
    // forwarding scrambles that, so restore the exact sequence first.
    // Under-limit buckets skip this: with no lottery, order is invisible.
    sort_small(b, size);
    if (wire_selecting(opts_.policy)) {
      // Wire-selecting disciplines: the winner count can fall short of
      // the limit, so it is recorded for the serial merge (disjoint
      // slots, one per bucket — workers never share).
      const std::uint32_t w =
          select_policy_winners(opts_.policy, b, size, limit, opts_.seed,
                                cycle, c, ce_.data(), chan);
      bucket_winners_[bucket] = w;
      for (std::size_t k = 0; k < w; ++k) ++ce_[b[k]];
      return;
    }
    Rng arb(arbitration_seed(opts_.seed, cycle, c));
    // Truncated Fisher–Yates: the full backward shuffle finalizes the
    // loser block [limit, size) with its first size-limit draws — every
    // later draw only permutes the winner block [0, limit) — so stopping
    // there keeps the kept/killed partition bit-identical while skipping
    // O(limit) tail work. Losers land in lottery order rather than index
    // order, which nothing observable depends on (see DESIGN.md, "Engine
    // hot path").
    for (std::size_t i = size; i > limit; --i) {
      const std::size_t j = arb.below(i);
      std::swap(b[i - 1], b[j]);
    }
    // Losers need no write at all: their cursor simply stops here, short
    // of end, and they sit in the loser block b[limit..size), which the
    // serial merge in run_stage_parallel never walks. The only state a
    // worker mutates is its own bucket's slice of the arena and the
    // packed ce_ words of that bucket's messages — channels of one stage
    // are disjoint, so workers never share either.
    for (std::size_t k = 0; k < limit; ++k) ++ce_[b[k]];
  } else {
    for (std::size_t k = 0; k < size; ++k) ++ce_[b[k]];
  }
}

template <typename ChanT>
#if defined(__GNUC__) && !defined(__clang__)
// Same unit-growth inlining rationale as run_stage_serial below: the
// forward pass pushes one worklist entry per surviving hop.
__attribute__((flatten))
#endif
void CycleEngine::run_stage_parallel(const ChanT* chan, std::uint32_t cycle,
                                     std::uint32_t stage,
                                     std::uint64_t& cycle_losses,
                                     std::uint64_t& cycle_hops) {
  build_buckets(stage_list_[stage], stage);
  std::vector<std::uint32_t>& touched = stage_touched_[stage];
  const std::size_t num_buckets = touched.size();
  const std::size_t contenders = arena_.size();
  const RoutingPolicy pol = opts_.policy;
  const bool wire_sel = wire_selecting(pol);
  if (wire_sel) bucket_winners_.resize(num_buckets);

  if (num_buckets >= 2) {
    // Channels of one stage are independent (no path visits two), so
    // workers own disjoint messages and cursors. Chunks are cut by
    // contender mass — free off the CSR offsets — so one giant bucket
    // does not serialize the stage; the pool's work-stealing batch mode
    // rebalances whatever mass estimation got wrong (a chunk's lottery
    // cost depends on how many of its buckets are over limit, which the
    // offsets alone cannot see).
    const std::size_t workers = std::min(pool_->size() + 1, num_buckets);
    const std::size_t target =
        std::max<std::size_t>(1, contenders / (workers * 4));
    chunk_bounds_.clear();
    chunk_bounds_.push_back(0);
    std::size_t mass = 0;
    for (std::size_t j = 0; j + 1 < num_buckets; ++j) {
      mass += bucket_off_[j + 1] - bucket_off_[j];
      if (mass >= target) {
        chunk_bounds_.push_back(j + 1);
        mass = 0;
      }
    }
    chunk_bounds_.push_back(num_buckets);
    const std::size_t num_chunks = chunk_bounds_.size() - 1;
    pool_->run_tasks(num_chunks, [&](std::size_t t) {
      for (std::size_t j = chunk_bounds_[t]; j < chunk_bounds_[t + 1]; ++j) {
        arbitrate_bucket(chan, cycle, touched[j], j);
      }
    });
  } else {
    for (std::size_t j = 0; j < num_buckets; ++j) {
      arbitrate_bucket(chan, cycle, touched[j], j);
    }
  }

  // Deterministic channel-ordered merge: one serial pass walks the
  // buckets in worklist (touched) order and, per bucket, its winner
  // block arena_[off .. off + winners) — the lottery left exactly the
  // survivors there, so the positional block IS each worker's buffered
  // outcome and no kill flags are needed. Accounting (occupancy for
  // telemetry, loss/hop totals) and survivor forwarding both happen
  // here, on the coordinating thread, in an order independent of which
  // worker resolved which bucket — that is what keeps traces and
  // telemetry bit-identical to the serial executor. Strictly increasing
  // stages along every path guarantee the target worklist has not been
  // processed yet, so each message is bucketed exactly once per cycle
  // per hop it wins. Members are hoisted into locals for the same
  // reason as in run_stage_serial.
  std::uint32_t* const bp = bucket_pos_.data();
  const auto* const stg = stage_table<ChanT>();
  auto* const lst = stage_list_.data();
  auto* const touch = stage_touched_.data();
  const std::uint64_t* const ce = ce_.data();
  const std::uint32_t* const ar = arena_.data();
  const bool adaptive = pol == RoutingPolicy::AdaptiveOccupancy;
  for (std::size_t j = 0; j < num_buckets; ++j) {
    const std::uint32_t c = touched[j];
    const std::uint32_t off = bucket_off_[j];
    const std::uint64_t size = bucket_off_[j + 1] - off;
    const std::uint64_t lim_c = active_limit_[c];
    std::uint64_t winners = std::min<std::uint64_t>(size, lim_c);
    if (size > lim_c) {
      // Over-limit: the wire-selecting winner count was recorded by the
      // worker; adaptive feedback marks the pressure here, on the serial
      // merge, exactly where the serial executor would.
      if (wire_sel) winners = bucket_winners_[j];
      if (adaptive) over_pressure_[c] = 1;
    }
    if (want_carried_) carried_[c] = static_cast<std::uint32_t>(winners);
    cycle_losses += size - winners;
    cycle_hops += winners;
    for (std::uint64_t k = 0; k < winners; ++k) {
      const std::uint32_t i = ar[off + k];
      const std::uint64_t v = ce[i];  // cursor already advanced by the lottery
      if (static_cast<std::uint32_t>(v) < (v >> 32)) {
        const std::uint32_t nc = chan[static_cast<std::uint32_t>(v)];
        const std::uint32_t ns = stg[nc];
        if (bp[nc]++ == 0) touch[ns].push_back(nc);
        lst[ns].push_back(pack_entry(i, nc));
      }
    }
  }
  for (const std::uint32_t c : touched) bp[c] = 0;  // sticky zeros
  touched.clear();
  stage_list_[stage].clear();
}

/// The per-shard stage sweep: bucket building, arbitration, accounting
/// and survivor forwarding fused into two sweeps of one worklist, over
/// caller-owned scratch (a shard's arena/over/sort bits). Only over-limit
/// (contended) buckets are materialized in the arena; everyone else
/// advances and forwards in place during the fill sweep, because an
/// uncontended channel admits its whole bucket no matter the order. The
/// outcome is bit-identical to run_stage_serial — which is the same
/// algorithm with the global-worklist forward rule written inline (see
/// the aliasing note above it for why the serial hot path does not route
/// through this function) — because contended buckets still sort to
/// pending order before the pinned lottery, and worklist order is
/// unobservable (see the stage_list_ comment).
template <typename ChanT, typename Forward>
void CycleEngine::fused_stage(const ChanT* chan, std::uint32_t cycle,
                              std::vector<std::uint64_t>& list,
                              std::vector<std::uint32_t>& touched,
                              std::vector<std::uint32_t>& arena,
                              std::vector<OverBucket>& over,
                              std::vector<std::uint64_t>& sort_bits,
                              std::uint64_t& cycle_losses,
                              std::uint64_t& cycle_hops, Forward&& forward) {
  // bucket_pos_ sentinel for channels that stay under their limit; arena
  // fill cursors never reach it (PathSet caps hop offsets below 2^32 - 1).
  constexpr std::uint32_t kUncontended = 0xffffffffu;
  // The sweeps below hoist every member array into a local: the worklist
  // push_backs can allocate, and past any opaque call the compiler must
  // reload member-reachable pointers — locals stay in registers. None of
  // the hoisted buffers reallocates during the stage (the arena is sized
  // before the sweep; a forward to stage s' != stage moves only that
  // inner vector's storage, not the outer arrays).
  std::uint32_t* const bp = bucket_pos_.data();
  const std::uint32_t* const lim = active_limit_;
  over.clear();
  std::uint32_t total = 0;
  for (const std::uint32_t c : touched) {
    const std::uint32_t count = bp[c];
    if (count > lim[c]) {
      over.push_back({c, total, count});
      bp[c] = total;  // fill cursor for the sweep below
      total += count;
    } else {
      if (want_carried_) carried_[c] = count;
      cycle_hops += count;
      bp[c] = kUncontended;
    }
  }
  arena.resize(total);
  std::uint64_t* const ce = ce_.data();
  std::uint32_t* const ar = arena.data();
  for (const std::uint64_t e : list) {
    const std::uint32_t c = entry_chan(e);
    const std::uint32_t i = entry_msg(e);
    const std::uint32_t pos = bp[c];
    if (pos == kUncontended) {
      const std::uint64_t v = ++ce[i];
      if (static_cast<std::uint32_t>(v) < (v >> 32)) {
        forward(i, static_cast<std::uint32_t>(
                       chan[static_cast<std::uint32_t>(v)]));
      }
    } else {
      ar[pos] = i;
      bp[c] = pos + 1;
    }
  }
  std::uint64_t* const bits = sort_bits.data();
  const RoutingPolicy pol = opts_.policy;
  const bool wire_sel = wire_selecting(pol);
  const bool adaptive = pol == RoutingPolicy::AdaptiveOccupancy;
  for (const OverBucket& ob : over) {
    std::uint32_t* b = ar + ob.off;
    const std::uint64_t limit = lim[ob.chan];
    // Restore ascending pending order for the pinned lottery, then the
    // truncated Fisher–Yates finalizes the loser block (see
    // arbitrate_bucket for the full argument).
    if (ob.count > 64) {
      sort_by_bitmap(bits, b, ob.count);
    } else {
      sort_small(b, ob.count);
    }
    std::uint64_t winners = limit;
    if (wire_sel) {
      winners = select_policy_winners(pol, b, ob.count, limit, opts_.seed,
                                      cycle, ob.chan, ce, chan);
    } else {
      // Adaptive pressure marks are per-channel; channels of one stage
      // are disjoint across shards, so a worker's write never races.
      if (adaptive) over_pressure_[ob.chan] = 1;
      Rng arb(arbitration_seed(opts_.seed, cycle, ob.chan));
      for (std::size_t i = ob.count; i > limit; --i) {
        const std::size_t j = arb.below(i);
        std::swap(b[i - 1], b[j]);
      }
    }
    // Losers need no write: their cursor stops here, short of end, and
    // everything downstream (compaction, tracing, the parallel merge)
    // reads the delivered state straight off the packed word
    // (cursor == end).
    for (std::size_t k = 0; k < winners; ++k) {
      const std::uint64_t v = ++ce[b[k]];
      if (static_cast<std::uint32_t>(v) < (v >> 32)) {
        forward(b[k], static_cast<std::uint32_t>(
                          chan[static_cast<std::uint32_t>(v)]));
      }
    }
    if (want_carried_) carried_[ob.chan] = static_cast<std::uint32_t>(winners);
    cycle_hops += winners;
    cycle_losses += ob.count - winners;
  }
  for (const std::uint32_t c : touched) bp[c] = 0;  // sticky zeros
  touched.clear();
  list.clear();
}

/// Deliberate twin of fused_stage with the global-worklist forward rule
/// written inline. Routing the serial sweep through fused_stage plus a
/// forward closure re-hoists the same pointers in two scopes, and the
/// resulting aliasing ambiguity costs ~15% of serial lossy throughput
/// even with everything force-inlined (measured on the bench_micro
/// engine sweep). The two copies are kept equivalent by the sharded
/// parity tests (test_scaleout), which compare this path against the
/// fused_stage-based executor bit for bit.
template <typename ChanT>
#if defined(__GNUC__) && !defined(__clang__)
// The sharded-executor instantiations grew this translation unit past
// GCC's unit-growth inlining budget, at which point the inliner started
// leaving the push_back fast paths in the sweeps below as out-of-line
// calls — one call per forwarded hop, ~20% of serial lossy throughput
// (verified with gprof: tens of millions of vector::push_back
// invocations that the smaller pre-sharding unit inlined). flatten
// forces full inlining of this body regardless of the unit budget.
__attribute__((flatten))
#endif
void CycleEngine::run_stage_serial(const ChanT* chan, std::uint32_t cycle,
                                   std::uint32_t stage,
                                   std::uint64_t& cycle_losses,
                                   std::uint64_t& cycle_hops) {
  // bucket_pos_ sentinel for channels that stay under their limit; arena
  // fill cursors never reach it (PathSet caps hop offsets below 2^32 - 1).
  constexpr std::uint32_t kUncontended = 0xffffffffu;
  std::vector<std::uint64_t>& list = stage_list_[stage];
  std::vector<std::uint32_t>& touched = stage_touched_[stage];
  // The sweeps below hoist every member array into a local: the worklist
  // push_backs can allocate, and past any opaque call the compiler must
  // reload member-reachable pointers — locals stay in registers. None of
  // the hoisted buffers reallocates during the stage (arena_ is sized
  // before the sweep; a push to stage s' != stage moves only that inner
  // vector's storage, not the outer arrays).
  std::uint32_t* const bp = bucket_pos_.data();
  const std::uint32_t* const lim = active_limit_;
  const auto* const stg = stage_table<ChanT>();
  auto* const lst = stage_list_.data();
  auto* const touch = stage_touched_.data();
  over_.clear();
  std::uint32_t total = 0;
  for (const std::uint32_t c : touched) {
    const std::uint32_t count = bp[c];
    if (count > lim[c]) {
      over_.push_back({c, total, count});
      bp[c] = total;  // fill cursor for the sweep below
      total += count;
    } else {
      if (want_carried_) carried_[c] = count;
      cycle_hops += count;
      bp[c] = kUncontended;
    }
  }
  arena_.resize(total);
  std::uint64_t* const ce = ce_.data();
  std::uint32_t* const ar = arena_.data();
  for (const std::uint64_t e : list) {
    const std::uint32_t c = entry_chan(e);
    const std::uint32_t i = entry_msg(e);
    const std::uint32_t pos = bp[c];
    if (pos == kUncontended) {
      const std::uint64_t v = ++ce[i];
      if (static_cast<std::uint32_t>(v) < (v >> 32)) {
        const std::uint32_t nc = chan[static_cast<std::uint32_t>(v)];
        const std::uint32_t ns = stg[nc];
        if (bp[nc]++ == 0) touch[ns].push_back(nc);
        lst[ns].push_back(pack_entry(i, nc));
      }
    } else {
      ar[pos] = i;
      bp[c] = pos + 1;
    }
  }
  std::uint64_t* const bits = sort_bits_.data();
  const RoutingPolicy pol = opts_.policy;
  const bool wire_sel = wire_selecting(pol);
  const bool adaptive = pol == RoutingPolicy::AdaptiveOccupancy;
  for (const OverBucket& ob : over_) {
    std::uint32_t* b = ar + ob.off;
    const std::uint64_t limit = lim[ob.chan];
    // Restore ascending pending order for the pinned lottery, then the
    // truncated Fisher–Yates finalizes the loser block (see
    // arbitrate_bucket for the full argument).
    if (ob.count > 64) {
      sort_by_bitmap(bits, b, ob.count);
    } else {
      sort_small(b, ob.count);
    }
    std::uint64_t winners = limit;
    if (wire_sel) {
      winners = select_policy_winners(pol, b, ob.count, limit, opts_.seed,
                                      cycle, ob.chan, ce, chan);
    } else {
      if (adaptive) over_pressure_[ob.chan] = 1;
      Rng arb(arbitration_seed(opts_.seed, cycle, ob.chan));
      for (std::size_t i = ob.count; i > limit; --i) {
        const std::size_t j = arb.below(i);
        std::swap(b[i - 1], b[j]);
      }
    }
    // Losers need no write: their cursor stops here, short of end, and
    // everything downstream (compaction, tracing, the parallel merge)
    // reads the delivered state straight off the packed word
    // (cursor == end).
    for (std::size_t k = 0; k < winners; ++k) {
      const std::uint64_t v = ++ce[b[k]];
      if (static_cast<std::uint32_t>(v) < (v >> 32)) {
        const std::uint32_t nc = chan[static_cast<std::uint32_t>(v)];
        const std::uint32_t ns = stg[nc];
        if (bp[nc]++ == 0) touch[ns].push_back(nc);
        lst[ns].push_back(pack_entry(b[k], nc));
      }
    }
    if (want_carried_) carried_[ob.chan] = static_cast<std::uint32_t>(winners);
    cycle_hops += winners;
    cycle_losses += ob.count - winners;
  }
  for (const std::uint32_t c : touched) bp[c] = 0;  // sticky zeros
  touched.clear();
  list.clear();
}

/// One cycle's stage sweep, subtree-sharded. Shards run the fused serial
/// algorithm over their private worklists — the up band [0, spine_lo) and
/// the down band [spine_hi, num_stages) in parallel, with the serial
/// coordination steps (outbox distribution, spine arbitration, spine
/// fan-out) between them. Bit-identity with the serial sweep follows from
/// channel disjointness: every channel's contender set is assembled from
/// the same messages, restored to ascending pending order before its
/// pinned (seed, cycle, channel) lottery, and under-limit buckets admit
/// everyone regardless of order.
template <typename ChanT>
#if defined(__GNUC__) && !defined(__clang__)
// Same unit-growth inlining rationale as run_stage_serial: the per-shard
// fused sweeps (always_inline'd fused_stage plus its forward closures)
// must keep their push_back fast paths inline.
__attribute__((flatten))
#endif
void CycleEngine::run_cycle_sharded(const ChanT* chan, std::uint32_t cycle,
                                    std::uint64_t& cycle_losses,
                                    std::uint64_t& cycle_hops) {
  const std::uint32_t spine_lo = graph_.spine_stage_lo;
  const std::uint32_t spine_hi = graph_.spine_stage_hi;
  const std::uint32_t num_stages = graph_.num_stages;
  const std::uint32_t* const shard_tbl = graph_.shard.data();
  const auto* const stg = stage_table<ChanT>();
  const std::size_t num_shards = shards_.size();

  // Each shard's bitmap-sort scratch must span every live message index
  // (the arena holds global indices); new words join zeroed and stay
  // zeroed between uses.
  const std::size_t words = (ce_.size() + 63) / 64;
  for (ShardState& st : shards_) {
    if (st.sort_bits.size() < words) st.sort_bits.resize(words, 0);
  }

  // A shard's stage band: the fused algorithm on its own scratch. The
  // forward rule is the shard invariant in code — below the spine a
  // survivor's next channel is always ours; at or above it, anything not
  // ours (spine channels, another shard's down channels) leaves through
  // the outbox for the serial distribution step.
  auto run_band = [&](ShardState& st, std::uint32_t my_shard,
                      std::uint32_t s_begin, std::uint32_t s_end) {
    std::uint32_t* const bp = bucket_pos_.data();
    auto* const lst = st.stage_list.data();
    auto* const touch = st.stage_touched.data();
    for (std::uint32_t s = s_begin; s < s_end; ++s) {
      if (lst[s].empty()) continue;
      fused_stage(chan, cycle, lst[s], touch[s], st.arena, st.over,
                  st.sort_bits, st.losses, st.hops,
                  [&](std::uint32_t i, std::uint32_t nc) {
                    const std::uint32_t ns = stg[nc];
                    if (ns < spine_lo || shard_tbl[nc] == my_shard) {
                      if (bp[nc]++ == 0) touch[ns].push_back(nc);
                      lst[ns].push_back(pack_entry(i, nc));
                    } else {
                      st.outbox.push_back(pack_entry(i, nc));
                    }
                  });
    }
  };

  auto band_entries = [&](std::uint32_t s_begin, std::uint32_t s_end) {
    std::size_t entries = 0;
    for (const ShardState& st : shards_) {
      for (std::uint32_t s = s_begin; s < s_end; ++s) {
        entries += st.stage_list[s].size();
      }
    }
    return entries;
  };

  // Small cycles run the shard loop inline — same structure, same
  // results, no pool wakeup (late cycles shrink below the threshold as
  // messages deliver).
  const bool pooled = pool_ != nullptr && pool_->size() > 1;
  auto dispatch = [&](std::uint32_t s_begin, std::uint32_t s_end) {
    if (pooled && num_shards >= 2 &&
        band_entries(s_begin, s_end) >= kMinParallelWork) {
      pool_->run_tasks(num_shards, [&](std::size_t sh) {
        run_band(shards_[sh], static_cast<std::uint32_t>(sh), s_begin, s_end);
      });
    } else {
      for (std::size_t sh = 0; sh < num_shards; ++sh) {
        run_band(shards_[sh], static_cast<std::uint32_t>(sh), s_begin, s_end);
      }
    }
  };

  // Phase timing splits the sweep at its three natural seams: the two
  // shard-parallel dispatches and the middle (outbox distribution, spine
  // arbitration, spine fan-out) between them. Spine stages resolved on
  // the pool accumulate into ph_spine_par_ inside the middle window and
  // are subtracted from its serial share below.
  PhaseClock::time_point pt0, pt1, pt2;
  double spine_par_before = 0.0;
  if (time_phases_) {
    pt0 = PhaseClock::now();
    spine_par_before = ph_spine_par_;
  }

  // Up phase: shard-parallel.
  dispatch(0, spine_lo);

  if (time_phases_) pt1 = PhaseClock::now();

  // Outbox distribution, serial: route each crossing survivor to the
  // global spine worklists or its destination shard's down worklists,
  // counting it into the target bucket as it lands.
  for (ShardState& st : shards_) {
    for (const std::uint64_t e : st.outbox) {
      const std::uint32_t nc = entry_chan(e);
      const std::uint32_t ns = stg[nc];
      const std::uint32_t sh = shard_tbl[nc];
      if (sh == ChannelGraph::kNoShard) {
        if (bucket_pos_[nc]++ == 0) stage_touched_[ns].push_back(nc);
        stage_list_[ns].push_back(e);
      } else {
        ShardState& tgt = shards_[sh];
        if (bucket_pos_[nc]++ == 0) tgt.stage_touched[ns].push_back(nc);
        tgt.stage_list[ns].push_back(e);
      }
    }
    st.outbox.clear();
  }

  // Spine stages, on the global worklists: the only arbitration that
  // crosses shards. Empty when the shard roots sit directly under the
  // fat-tree root (shard level 1). Each spine channel's lottery is keyed
  // by (seed, cycle, channel) alone, so heavy spine stages go to the
  // pool — workers resolve disjoint buckets, then run_stage_parallel's
  // channel-ordered merge applies the outcomes deterministically, which
  // is what keeps results, traces and telemetry bit-identical to the
  // serial spine (and to the fully serial executor). Light stages stay
  // on the coordinating thread: below kMinParallelWork the batch wakeup
  // costs more than the lottery.
  const bool spine_pooled = pooled && opts_.parallel_spine;
  for (std::uint32_t s = spine_lo; s < spine_hi; ++s) {
    if (stage_list_[s].empty()) continue;
    if (spine_pooled && stage_list_[s].size() >= kMinParallelWork) {
      if (time_phases_) {
        const auto st0 = PhaseClock::now();
        run_stage_parallel(chan, cycle, s, cycle_losses, cycle_hops);
        ph_spine_par_ += phase_delta(st0, PhaseClock::now());
      } else {
        run_stage_parallel(chan, cycle, s, cycle_losses, cycle_hops);
      }
    } else {
      run_stage_serial(chan, cycle, s, cycle_losses, cycle_hops);
    }
  }

  // Spine fan-out: survivors the spine forwarded into global down-stage
  // lists move to their owning shards. Their buckets were already counted
  // when forwarded; only the list entries and touched records relocate.
  for (std::uint32_t s = spine_hi; s < num_stages; ++s) {
    std::vector<std::uint64_t>& list = stage_list_[s];
    std::vector<std::uint32_t>& touched = stage_touched_[s];
    if (list.empty() && touched.empty()) continue;
    for (const std::uint32_t c : touched) {
      shards_[shard_tbl[c]].stage_touched[s].push_back(c);
    }
    touched.clear();
    for (const std::uint64_t e : list) {
      shards_[shard_tbl[entry_chan(e)]].stage_list[s].push_back(e);
    }
    list.clear();
  }

  if (time_phases_) pt2 = PhaseClock::now();

  // Down phase: shard-parallel; descent never leaves the subtree, so no
  // outbox entries can appear.
  dispatch(spine_hi, num_stages);

  if (time_phases_) {
    const auto pt3 = PhaseClock::now();
    ph_up_ += phase_delta(pt0, pt1);
    ph_spine_ += std::max(
        0.0, phase_delta(pt1, pt2) - (ph_spine_par_ - spine_par_before));
    ph_down_ += phase_delta(pt2, pt3);
  }

  for (ShardState& st : shards_) {
    cycle_losses += st.losses;
    cycle_hops += st.hops;
    st.losses = 0;
    st.hops = 0;
  }
}

EngineResult CycleEngine::run_lossy(BatchFeed& feed, EngineObserver* observer) {
  if (narrow_) {
    return run_lossy_t<std::uint16_t>(chan_buf16_, feed, observer);
  }
  return run_lossy_t<std::uint32_t>(chan_buf_, feed, observer);
}

template <typename ChanT>
EngineResult CycleEngine::run_lossy_t(std::vector<ChanT>& chan_buf,
                                      BatchFeed& feed,
                                      EngineObserver* observer) {
  EngineResult result;
  const std::size_t num_channels = graph_.num_channels();
  want_carried_ = observer != nullptr;
  carried_.assign(num_channels, 0);
  bucket_pos_.assign(num_channels, 0);
  stage_list_.resize(graph_.num_stages);
  for (auto& list : stage_list_) list.clear();
  stage_touched_.resize(graph_.num_stages);
  for (auto& t : stage_touched_) t.clear();
  if (sharded_) {
    shards_.resize(graph_.num_shards);
    for (ShardState& st : shards_) {
      st.stage_list.resize(graph_.num_stages);
      for (auto& list : st.stage_list) list.clear();
      st.stage_touched.resize(graph_.num_stages);
      for (auto& t : st.stage_touched) t.clear();
      st.outbox.clear();
      st.losses = 0;
      st.hops = 0;
    }
  }
  chan_buf.clear();
  ce_.clear();
  begin_.clear();
  id_.clear();
  first_chan_.clear();
  attempts_.clear();
  wake_.clear();
  inject_cycle_.clear();
  lat_samples_.clear();

  // Message-event tracing and latency sampling are sampled once per run;
  // when off, the only cost below is one predictable branch per cycle.
  const bool trace = observer != nullptr && observer->wants_message_events();
  const bool lat_on =
      observer != nullptr && observer->wants_latency_samples();
  time_phases_ = opts_.time_phases;
  ph_up_ = ph_spine_ = ph_spine_par_ = ph_down_ = 0.0;
  double ph_coord = 0.0;
  std::uint32_t next_id = 0;
  const auto* const stg = stage_table<ChanT>();

  // Routes one worklist seed (injection or retry rewind) to the owning
  // shard's lists in sharded mode, or the global lists otherwise. The
  // shard-table read is skipped entirely on the classic path. The global
  // pointers are captured by value: the outer arrays were sized above and
  // never move again this run, and value captures keep the per-message
  // path in registers across the opaque push_back calls (a reference
  // capture of `this` would force member reloads on every seed — the
  // same hoisting rule as the fused stage sweeps).
  const std::uint32_t* const shard_tbl =
      sharded_ ? graph_.shard.data() : nullptr;
  auto seed_entry = [this, shard_tbl, g_bp = bucket_pos_.data(),
                     g_lst = stage_list_.data(),
                     g_touch = stage_touched_.data()](
                        std::uint32_t idx, std::uint32_t fc,
                        std::uint32_t fs)
  // Forced inline for the same reason as fused_stage: the surrounding
  // function is big enough that the inliner otherwise leaves this as an
  // out-of-line call on every injected/retried message.
#if defined(__GNUC__) || defined(__clang__)
                        __attribute__((always_inline))
#endif
  {
    auto* lst = g_lst;
    auto* touch = g_touch;
    if (shard_tbl != nullptr) {
      const std::uint32_t sh = shard_tbl[fc];
      if (sh != ChannelGraph::kNoShard) {
        lst = shards_[sh].stage_list.data();
        touch = shards_[sh].stage_touched.data();
      }
    }
    if (g_bp[fc]++ == 0) touch[fs].push_back(fc);
    lst[fs].push_back(pack_entry(idx, fc));
  };

  // Retry policy and fault plan are sampled once per run; with both off
  // every loop below is the classic hot path (active_limit_ == limit_).
  const RetryPolicy& retry = opts_.retry;
  // AdaptiveOccupancy parks losers of persistently hot channels through
  // the retry machinery, so it forces the retry-aware compaction path
  // even under the default (never-dropping) RetryPolicy: adaptive only
  // ever adds delay, never drops on its own.
  const bool adaptive_on =
      opts_.policy == RoutingPolicy::AdaptiveOccupancy &&
      opts_.contention == ContentionPolicy::RandomSubset;
  const bool retry_on = retry.enabled() || adaptive_on;
  if (adaptive_on) {
    over_pressure_.assign(num_channels, 0);
    hot_streak_.assign(num_channels, 0);
  }
  std::unique_ptr<FaultState> faults;
  if (opts_.fault_plan != nullptr && !opts_.fault_plan->empty()) {
    faults = std::make_unique<FaultState>(*opts_.fault_plan, graph_);
  }
  active_limit_ = limit_.data();
  // Messages seeded to contend in the current cycle; equals pending when
  // no retry policy parks anyone.
  std::uint64_t contenders = 0;

  while (!feed.exhausted() || !ce_.empty()) {
    // The arbitration stream folds the cycle index into 32 bits of the
    // seed; widening it would change every golden, so the engine gives up
    // loudly at the domain edge instead (EngineResult::cycles itself is
    // 64-bit and never wraps).
    FT_CHECK_MSG(result.cycles < 0xffffffffULL,
                 "cycle index overflows the 32-bit arbitration-seed domain");
    const auto cycle = static_cast<std::uint32_t>(result.cycles + 1);
    PhaseClock::time_point cyc_t0;
    double sweep_before = 0.0;
    if (time_phases_) {
      cyc_t0 = PhaseClock::now();
      sweep_before = ph_up_ + ph_spine_ + ph_spine_par_ + ph_down_;
    }
    if (lat_on) lat_samples_.clear();
    // Channel-state (carried) bookkeeping is consulted per cycle so a
    // sampling observer only pays the O(channels) occupancy cost on the
    // cycles it keeps.
    want_carried_ = observer != nullptr && observer->wants_channel_state(cycle);
    std::uint32_t delivered_now = 0;
    std::uint32_t backoffs_now = 0;
    std::uint32_t gave_up_now = 0;
    const FaultState::CycleFaults* cf = nullptr;
    if (faults) {
      cf = &faults->begin_cycle(cycle, limit_);
      active_limit_ = faults->eff_limit().data();
      result.fault_down_events += cf->went_down.size();
      result.fault_up_events += cf->came_up.size();
      result.subtree_kill_events += cf->killed_nodes.size();
      result.degraded_channel_cycles += cf->degraded_channels;
      if (trace) {
        for (const std::uint32_t node : cf->killed_nodes) {
          observer->on_message_event(
              {MessageEventKind::SubtreeKill, kNoMessage, cycle, node});
        }
        for (const std::uint32_t c : cf->went_down) {
          observer->on_message_event(
              {MessageEventKind::FaultDown, kNoMessage, cycle, c});
        }
        for (const std::uint32_t c : cf->came_up) {
          observer->on_message_event(
              {MessageEventKind::FaultUp, kNoMessage, cycle, c});
        }
      }
    }
    while (const PathSet* batch_ptr = feed.next(cycle)) {
      const PathSet& batch = *batch_ptr;
      const std::uint32_t* chans = batch.channels().data();
      // One streaming copy of the batch's hop buffer into the engine's
      // (possibly narrowed) buffer; message slices keep their offsets
      // relative to base, so path layout is untouched. Streamed sources
      // can concatenate past the single-PathSet bound, so the combined
      // buffer re-proves the 32-bit offset and message-index invariants
      // every batch (the narrowing helper aborts on the first workload
      // that genuinely outgrows the index discipline).
      const std::uint32_t base =
          checked_u32(chan_buf.size(), "injected hop buffer overflows "
                                       "32-bit offsets");
      const std::size_t hops = batch.channels().size();
      FT_CHECK_MSG(base + static_cast<std::uint64_t>(hops) < 0xffffffffULL,
                   "injected hop buffer overflows 32-bit offsets");
      FT_CHECK_MSG(ce_.size() + batch.size() < 0xffffffffULL &&
                       next_id + static_cast<std::uint64_t>(batch.size()) <
                           0xffffffffULL,
                   "live message count overflows 32-bit message indices");
      chan_buf.resize(base + hops);
      ChanT* dst = chan_buf.data() + base;
      for (std::size_t h = 0; h < hops; ++h) {
        dst[h] = static_cast<ChanT>(chans[h]);
      }
      const std::uint32_t* const ctbl = check_tbl_.data();
      const auto nch = static_cast<std::uint32_t>(num_channels);
      for (std::size_t p = 0; p < batch.size(); ++p) {
        const std::uint32_t off = batch.offset(p);
        const std::uint32_t len = batch.length(p);
        // Equivalent to graph_.check_path, one table lookup per hop.
        std::uint32_t prev = 0;
        for (std::uint32_t h = off; h < off + len; ++h) {
          const std::uint32_t c = chans[h];
          const std::uint32_t v = c < nch ? ctbl[c] : 0;
          FT_CHECK_MSG(v != 0, "path uses an unknown channel");
          FT_CHECK_MSG(v > prev, "path stages must strictly increase");
          prev = v;
        }
        const std::uint32_t id = next_id++;
        if (len == 0) {
          ++delivered_now;  // local delivery, no channel used
          if (lat_on) lat_samples_.push_back({1, 1});
          if (trace) {
            observer->on_message_event(
                {MessageEventKind::Inject, id, cycle, kNoChannel});
            observer->on_message_event(
                {MessageEventKind::Deliver, id, cycle, kNoChannel});
          }
        } else {
          const std::uint32_t begin = base + off;
          const auto idx = static_cast<std::uint32_t>(ce_.size());
          const std::uint32_t fc = chans[off];
          const std::uint32_t fs = stg[fc];
          ce_.push_back(
              (static_cast<std::uint64_t>(begin + len) << 32) | begin);
          begin_.push_back(begin);
          id_.push_back(id);
          first_chan_.push_back(fc);
          if (retry_on) {
            attempts_.push_back(1);
            wake_.push_back(cycle);
          }
          if (lat_on) inject_cycle_.push_back(cycle);
          ++contenders;
          seed_entry(idx, fc, fs);
          if (trace) {
            observer->on_message_event(
                {MessageEventKind::Inject, id, cycle, fc});
          }
        }
      }
    }
    const std::size_t pending_before = ce_.size();
    // Messages parked in backoff are alive but do not contend; without a
    // retry policy every pending message was seeded, so contenders ==
    // pending_before and the accounting is byte-identical to the classic
    // engine.
    const std::uint64_t cycle_attempts = contenders;
    result.total_attempts += cycle_attempts;
    // Bitmap-sort scratch covers every live message index; new words join
    // zeroed and extraction keeps the rest zero.
    if (sort_bits_.size() * 64 < pending_before) {
      sort_bits_.resize((pending_before + 63) / 64, 0);
    }
    if (trace) {
      for (std::size_t i = 0; i < pending_before; ++i) {
        if (retry_on && wake_[i] != cycle) continue;  // parked in backoff
        observer->on_message_event(
            {MessageEventKind::Attempt, id_[i], cycle, first_chan_[i]});
      }
    }

    // A message dies at the first channel whose random cap-subset lottery
    // it loses; stages run in causal order along every path. Worklists
    // were seeded by last cycle's compaction (retries) and this cycle's
    // injection, both in ascending message order. A stage's contender
    // count equals its worklist length, so the serial/parallel split is
    // decided before any bucket is built.
    const bool pooled = pool_ != nullptr && pool_->size() > 1;
    if (want_carried_) std::fill(carried_.begin(), carried_.end(), 0);
    const ChanT* chan = chan_buf.data();
    std::uint64_t cycle_losses = 0;
    std::uint64_t cycle_hops = 0;
    if (sharded_) {
      run_cycle_sharded(chan, cycle, cycle_losses, cycle_hops);
    } else if (time_phases_) {
      // Timed twin of the loop below: stages resolved on the pool count
      // as the parallel band, serial stages as the (spine) serial band.
      for (std::uint32_t s = 0; s < graph_.num_stages; ++s) {
        if (stage_list_[s].empty()) continue;
        const bool par = pooled && stage_list_[s].size() >= kMinParallelWork;
        const auto st0 = PhaseClock::now();
        if (par) {
          run_stage_parallel(chan, cycle, s, cycle_losses, cycle_hops);
        } else {
          run_stage_serial(chan, cycle, s, cycle_losses, cycle_hops);
        }
        const double dt = phase_delta(st0, PhaseClock::now());
        (par ? ph_up_ : ph_spine_) += dt;
      }
    } else {
      for (std::uint32_t s = 0; s < graph_.num_stages; ++s) {
        if (stage_list_[s].empty()) continue;
        if (pooled && stage_list_[s].size() >= kMinParallelWork) {
          run_stage_parallel(chan, cycle, s, cycle_losses, cycle_hops);
        } else {
          run_stage_serial(chan, cycle, s, cycle_losses, cycle_hops);
        }
      }
    }

    // Adaptive occupancy feedback, serial coordination path: fold this
    // cycle's over-pressure marks into the per-channel hot streaks before
    // the compaction below decides parking. The scan list is the
    // telemetry probe's in-budget channel set, so feedback acts on
    // exactly the channels the observatory watches; every executor wrote
    // the same pressure marks (a channel is over limit or it is not), so
    // the streaks — and every parking decision downstream — are
    // executor-invariant.
    if (adaptive_on) {
      std::uint32_t* const hs = hot_streak_.data();
      std::uint32_t* const op = over_pressure_.data();
      for (const std::uint32_t c : adaptive_scan_) {
        hs[c] = op[c] != 0 ? hs[c] + 1 : 0;
        op[c] = 0;
      }
    }

    // Survivors are delivered; the rest retry next cycle. A loser's
    // cursor stops at the channel whose lottery it lost, which is the
    // Loss event's channel.
    if (trace) {
      for (std::size_t i = 0; i < ce_.size(); ++i) {
        if (retry_on && wake_[i] != cycle) continue;  // parked: no outcome
        const std::uint64_t v = ce_[i];
        if (static_cast<std::uint32_t>(v) == (v >> 32)) {
          observer->on_message_event(
              {MessageEventKind::Deliver, id_[i], cycle, kNoChannel});
        } else {
          observer->on_message_event(
              {MessageEventKind::Loss, id_[i], cycle,
               chan[static_cast<std::uint32_t>(v)]});
        }
      }
    }
    // Compacting the losers doubles as next cycle's reseed: cursors rewind
    // to the first hop and each retry lands on its stage worklist here, so
    // the cycle loop never takes a separate O(pending) seeding pass. The
    // retry-aware variant additionally decides each loser's fate — give
    // up (attempts/deadline exhausted), park (exponential backoff), or
    // reseed — and wakes parked messages whose delay has elapsed.
    std::size_t kept = 0;
    {
      const std::size_t pending = ce_.size();
      std::uint64_t* const ce = ce_.data();
      std::uint32_t* const bg = begin_.data();
      std::uint32_t* const ids = id_.data();
      std::uint32_t* const fcs = first_chan_.data();
      std::uint32_t* const ic = inject_cycle_.data();
      if (!retry_on) {
        for (std::size_t i = 0; i < pending; ++i) {
          const std::uint64_t v = ce[i];
          if (static_cast<std::uint32_t>(v) == (v >> 32)) {
            ++delivered_now;
            // Latency counts delivery cycles from injection inclusive;
            // ideal is 1 in the lossy modes (an uncontended path
            // traverses in one cycle).
            if (lat_on) lat_samples_.push_back({cycle - ic[i] + 1, 1});
          } else {
            const std::uint32_t b = bg[i];
            const std::uint32_t fc = fcs[i];
            const std::uint32_t fs = stg[fc];
            // Rewind the cursor to the first hop; the end half is
            // untouched.
            ce[kept] = (v & 0xffffffff00000000ull) | b;
            bg[kept] = b;
            if (trace) ids[kept] = ids[i];  // ids are only read when tracing
            fcs[kept] = fc;
            if (lat_on) ic[kept] = ic[i];
            seed_entry(static_cast<std::uint32_t>(kept), fc, fs);
            ++kept;
          }
        }
        contenders = kept;
      } else {
        std::uint32_t* const att = attempts_.data();
        std::uint32_t* const wk = wake_.data();
        contenders = 0;
        for (std::size_t i = 0; i < pending; ++i) {
          const std::uint64_t v = ce[i];
          if (static_cast<std::uint32_t>(v) == (v >> 32)) {
            ++delivered_now;
            if (lat_on) lat_samples_.push_back({cycle - ic[i] + 1, 1});
            continue;
          }
          std::uint32_t next_wake;
          if (wk[i] == cycle) {
            // Contended and lost this cycle: attempts_[i] losses so far.
            std::uint32_t delay = 0;
            bool drop = false;
            if (retry.max_attempts != 0 && att[i] >= retry.max_attempts) {
              drop = true;
            } else {
              if (retry.exponential_backoff) {
                const std::uint32_t shift = std::min(att[i] - 1, 31u);
                delay = std::min<std::uint32_t>(retry.max_backoff,
                                                (1u << shift) - 1);
              }
              if (adaptive_on) {
                // Congestion-persistence backoff: once the loss channel
                // has been hot for kAdaptiveHotStreak cycles, its losers
                // desynchronize — the pending index staggers retries
                // across a window that widens with the streak, so the
                // channel stays fed (about one waker per cycle) while
                // upstream contention drops.
                const std::uint32_t streak =
                    hot_streak_[chan[static_cast<std::uint32_t>(v)]];
                if (streak >= kAdaptiveHotStreak) {
                  const std::uint32_t window =
                      std::min(streak, kAdaptiveMaxDelay);
                  delay = std::max(
                      delay, 1 + static_cast<std::uint32_t>(i) % window);
                }
              }
              // The deadline check runs after every delay extension
              // (backoff and adaptive): a parked message's wake never
              // exceeds the deadline, so a deadline can only expire on a
              // message that contended — give-up accounting stays
              // exactly-once (pinned in test_fault_plan).
              if (retry.deadline_cycles != 0 &&
                  static_cast<std::uint64_t>(cycle) + 1 + delay >
                      retry.deadline_cycles) {
                drop = true;
              }
            }
            if (drop) {
              ++gave_up_now;
              if (trace) {
                observer->on_message_event(
                    {MessageEventKind::GiveUp, ids[i], cycle, kNoChannel});
              }
              continue;
            }
            if (delay > 0) {
              ++backoffs_now;
              if (trace) {
                observer->on_message_event(
                    {MessageEventKind::Backoff, ids[i], cycle,
                     chan[static_cast<std::uint32_t>(v)]});
              }
            }
            next_wake = cycle + 1 + delay;
          } else {
            next_wake = wk[i];  // parked; cursor already at the first hop
          }
          const std::uint32_t b = bg[i];
          const std::uint32_t fc = fcs[i];
          ce[kept] = (v & 0xffffffff00000000ull) | b;
          bg[kept] = b;
          if (trace) ids[kept] = ids[i];
          fcs[kept] = fc;
          if (lat_on) ic[kept] = ic[i];
          if (next_wake == cycle + 1) {
            att[kept] = att[i] + 1;
            wk[kept] = next_wake;
            const std::uint32_t fs = stg[fc];
            seed_entry(static_cast<std::uint32_t>(kept), fc, fs);
            ++contenders;
          } else {
            att[kept] = att[i];
            wk[kept] = next_wake;
          }
          ++kept;
        }
      }
    }
    ce_.resize(kept);
    begin_.resize(kept);
    id_.resize(kept);
    first_chan_.resize(kept);
    if (retry_on) {
      attempts_.resize(kept);
      wake_.resize(kept);
    }
    if (lat_on) inject_cycle_.resize(kept);

    ++result.cycles;
    result.total_losses += cycle_losses;
    result.total_hops += cycle_hops;
    result.delivered += delivered_now;
    result.delivered_per_cycle.push_back(delivered_now);
    result.total_backoffs += backoffs_now;
    result.messages_given_up += gave_up_now;

    if (observer != nullptr) {
      CycleSnapshot snap;
      snap.cycle = cycle;
      snap.pending_before = pending_before;
      snap.delivered = delivered_now;
      snap.attempts = cycle_attempts;
      snap.losses = cycle_losses;
      if (cf != nullptr) {
        snap.faults_down = static_cast<std::uint32_t>(cf->went_down.size());
        snap.faults_up = static_cast<std::uint32_t>(cf->came_up.size());
        snap.subtree_kills =
            static_cast<std::uint32_t>(cf->killed_nodes.size());
        snap.channels_down = cf->channels_down;
        snap.degraded_channels = cf->degraded_channels;
      }
      snap.backoffs = backoffs_now;
      snap.gave_up = gave_up_now;
      snap.carried = want_carried_ ? &carried_ : nullptr;
      snap.latencies = lat_on ? &lat_samples_ : nullptr;
      snap.graph = &graph_;
      observer->on_cycle(snap);
    }

    if (time_phases_) {
      // Everything this cycle spent outside the stage sweeps — injection,
      // compaction, fault bookkeeping, observer callbacks — is serial
      // coordination. Clamped at zero against clock jitter.
      const double cyc = phase_delta(cyc_t0, PhaseClock::now());
      const double sweep =
          (ph_up_ + ph_spine_ + ph_spine_par_ + ph_down_) - sweep_before;
      ph_coord += std::max(0.0, cyc - sweep);
    }

    if (opts_.max_cycles != 0 && result.cycles >= opts_.max_cycles &&
        (!feed.exhausted() || !ce_.empty())) {
      result.gave_up = true;
      break;
    }
  }
  if (result.gave_up && trace) {
    const auto last_cycle = static_cast<std::uint32_t>(result.cycles);
    for (const std::uint32_t id : id_) {
      observer->on_message_event(
          {MessageEventKind::GiveUp, id, last_cycle, kNoChannel});
    }
  }
  if (time_phases_) {
    result.phases.up_seconds = ph_up_;
    result.phases.spine_seconds = ph_spine_;
    result.phases.spine_parallel_seconds = ph_spine_par_;
    result.phases.down_seconds = ph_down_;
    result.phases.coord_seconds = ph_coord;
    result.phases.timed_cycles = result.cycles;
  }
  return result;
}

EngineResult CycleEngine::run_fifo(const PathSet& paths,
                                   EngineObserver* observer) {
  EngineResult result;
  const std::size_t num_channels = graph_.num_channels();
  const std::uint32_t* chans = paths.channels().data();
  const std::uint32_t* offs = paths.offsets().data();
  std::vector<ChunkedRing> queues(num_channels);
  // Absolute cursor of each message within the CSR buffer; message i is
  // delivered when its cursor reaches offs[i + 1].
  std::vector<std::uint32_t> pos(paths.size());
  carried_.assign(num_channels, 0);

  const bool trace = observer != nullptr && observer->wants_message_events();
  const bool lat_on =
      observer != nullptr && observer->wants_latency_samples();
  lat_samples_.clear();
  time_phases_ = opts_.time_phases;
  ph_up_ = ph_spine_ = ph_down_ = 0.0;
  double ph_coord = 0.0;

  // Dynamic faults evolve on the coordination path, once per round, just
  // as in the lossy engine; a down channel forwards nothing this round
  // (its queue simply waits), a browned-out one forwards fewer.
  std::unique_ptr<FaultState> faults;
  if (opts_.fault_plan != nullptr && !opts_.fault_plan->empty()) {
    faults = std::make_unique<FaultState>(*opts_.fault_plan, graph_);
  }
  active_limit_ = limit_.data();

  std::size_t in_flight = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const auto id = static_cast<std::uint32_t>(i);
    pos[i] = offs[i];
    if (offs[i] == offs[i + 1]) {
      ++result.delivered;  // local message, finishes at round 0
      if (trace) {
        observer->on_message_event(
            {MessageEventKind::Inject, id, 0, kNoChannel});
        observer->on_message_event(
            {MessageEventKind::Deliver, id, 0, kNoChannel});
      }
      continue;
    }
    queues[chans[offs[i]]].push(id);
    ++in_flight;
    if (trace) {
      observer->on_message_event(
          {MessageEventKind::Inject, id, 0, chans[offs[i]]});
    }
  }

  // Each round every channel forwards up to its capacity in FIFO order;
  // arrivals are buffered so a message moves at most one hop per round.
  // When tracing, each range logs its Hop/Deliver events; the serial
  // merge below replays them in range (= ascending channel) order, so the
  // event stream is identical at any thread count. Cache-line aligned:
  // each range's scalars are rewritten by its worker every round, and
  // adjacent elements of `outs` would otherwise share lines.
  struct alignas(64) RangeOut {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> arrivals;
    std::vector<MessageEvent> events;
    std::vector<LatencySample> lat;
    double latency_sum = 0.0;
    std::uint32_t finished = 0;
    std::uint64_t forwards = 0;
    std::uint32_t max_queue = 0;
    bool moved = false;
  };

  // Channel ranges are fixed for the whole run; arrivals are merged in
  // range order, so queue contents are identical at any thread count.
  std::size_t num_ranges = 1;
  if (pool_ != nullptr && pool_->size() > 1) {
    num_ranges = std::min<std::size_t>(pool_->size() * 2,
                                       std::max<std::size_t>(1, num_channels));
  }
  const std::size_t range_len = (num_channels + num_ranges - 1) / num_ranges;
  std::vector<RangeOut> outs(num_ranges);

  auto process_range = [&](std::size_t r, std::uint32_t round) {
    RangeOut& out = outs[r];
    out.arrivals.clear();
    out.events.clear();
    out.lat.clear();
    out.latency_sum = 0.0;
    out.finished = 0;
    out.forwards = 0;
    out.max_queue = 0;
    out.moved = false;
    const std::size_t lo = r * range_len;
    const std::size_t hi = std::min(num_channels, lo + range_len);
    for (std::size_t lid = lo; lid < hi; ++lid) {
      ChunkedRing& q = queues[lid];
      const std::uint64_t cap = active_limit_[lid];
      std::uint32_t forwarded = 0;
      for (; forwarded < cap && !q.empty(); ++forwarded) {
        const std::uint32_t msg = q.pop();
        out.moved = true;
        ++out.forwards;
        if (trace) {
          out.events.push_back({MessageEventKind::Hop, msg, round,
                                static_cast<std::uint32_t>(lid)});
        }
        if (++pos[msg] == offs[msg + 1]) {
          out.latency_sum += round;
          ++out.finished;
          // Finish round vs the path's contention-free round count: a
          // message that never queued behind anyone has stretch 1.
          if (lat_on) {
            out.lat.push_back({round, offs[msg + 1] - offs[msg]});
          }
          if (trace) {
            out.events.push_back({MessageEventKind::Deliver, msg, round,
                                  static_cast<std::uint32_t>(lid)});
          }
        } else {
          out.arrivals.emplace_back(chans[pos[msg]], msg);
        }
      }
      carried_[lid] = forwarded;
      out.max_queue = std::max(out.max_queue,
                               static_cast<std::uint32_t>(q.size()));
    }
  };

  while (in_flight > 0) {
    FT_CHECK_MSG(result.cycles < 0xffffffffULL,
                 "round index overflows 32-bit snapshot cycles");
    const auto round = static_cast<std::uint32_t>(result.cycles + 1);
    PhaseClock::time_point cyc_t0;
    double sweep_before = 0.0;
    if (time_phases_) {
      cyc_t0 = PhaseClock::now();
      sweep_before = ph_up_ + ph_spine_;
    }
    if (lat_on) lat_samples_.clear();
    const FaultState::CycleFaults* cf = nullptr;
    if (faults) {
      cf = &faults->begin_cycle(round, limit_);
      active_limit_ = faults->eff_limit().data();
      result.fault_down_events += cf->went_down.size();
      result.fault_up_events += cf->came_up.size();
      result.subtree_kill_events += cf->killed_nodes.size();
      result.degraded_channel_cycles += cf->degraded_channels;
      if (trace) {
        for (const std::uint32_t node : cf->killed_nodes) {
          observer->on_message_event(
              {MessageEventKind::SubtreeKill, kNoMessage, round, node});
        }
        for (const std::uint32_t c : cf->went_down) {
          observer->on_message_event(
              {MessageEventKind::FaultDown, kNoMessage, round, c});
        }
        for (const std::uint32_t c : cf->came_up) {
          observer->on_message_event(
              {MessageEventKind::FaultUp, kNoMessage, round, c});
        }
      }
    }
    PhaseClock::time_point sweep_t0;
    if (time_phases_) sweep_t0 = PhaseClock::now();
    if (num_ranges > 1) {
      pool_->run_tasks(num_ranges,
                       [&](std::size_t r) { process_range(r, round); });
    } else {
      process_range(0, round);
    }
    if (time_phases_) {
      // Pooled range processing is the FIFO mode's parallel band; the
      // single-range sweep is serial.
      const double dt = phase_delta(sweep_t0, PhaseClock::now());
      (num_ranges > 1 ? ph_up_ : ph_spine_) += dt;
    }

    bool moved = false;
    std::uint32_t finished = 0;
    std::uint32_t round_peak = 0;
    std::uint64_t round_forwards = 0;
    for (std::size_t r = 0; r < num_ranges; ++r) {
      const RangeOut& out = outs[r];
      moved = moved || out.moved;
      finished += out.finished;
      result.latency_sum += out.latency_sum;
      round_forwards += out.forwards;
      round_peak = std::max(round_peak, out.max_queue);
      for (const auto& [lid, msg] : out.arrivals) queues[lid].push(msg);
      // Ranges partition channels in ascending order, so this merge
      // yields one deterministic (ascending final channel) sample order
      // at any thread count.
      if (lat_on) {
        lat_samples_.insert(lat_samples_.end(), out.lat.begin(),
                            out.lat.end());
      }
      if (trace) {
        for (const MessageEvent& e : out.events) {
          observer->on_message_event(e);
        }
      }
    }
    result.total_attempts += round_forwards;
    result.total_hops += round_forwards;
    // A round may legitimately stall while faults hold channels down; the
    // no-progress invariant only applies at full health.
    FT_CHECK_MSG(moved || (cf != nullptr && cf->channels_down > 0),
                 "FIFO engine made no progress");
    result.max_queue = std::max(result.max_queue, round_peak);
    in_flight -= finished;
    result.delivered += finished;
    ++result.cycles;
    result.delivered_per_cycle.push_back(finished);

    if (observer != nullptr) {
      CycleSnapshot snap;
      snap.cycle = round;
      snap.pending_before = in_flight + finished;
      snap.delivered = finished;
      snap.attempts = round_forwards;
      snap.peak_queue = round_peak;
      if (cf != nullptr) {
        snap.faults_down = static_cast<std::uint32_t>(cf->went_down.size());
        snap.faults_up = static_cast<std::uint32_t>(cf->came_up.size());
        snap.subtree_kills =
            static_cast<std::uint32_t>(cf->killed_nodes.size());
        snap.channels_down = cf->channels_down;
        snap.degraded_channels = cf->degraded_channels;
      }
      // FIFO rounds track carried as part of the forwarding loop either
      // way; the per-cycle opt-in only decides whether the observer sees
      // it, keeping the snapshot contract uniform across modes.
      snap.carried =
          observer->wants_channel_state(round) ? &carried_ : nullptr;
      snap.latencies = lat_on ? &lat_samples_ : nullptr;
      snap.graph = &graph_;
      observer->on_cycle(snap);
    }

    if (time_phases_) {
      const double cyc = phase_delta(cyc_t0, PhaseClock::now());
      const double sweep = (ph_up_ + ph_spine_) - sweep_before;
      ph_coord += std::max(0.0, cyc - sweep);
    }

    if (opts_.max_cycles != 0 && result.cycles >= opts_.max_cycles &&
        in_flight > 0) {
      result.gave_up = true;
      break;
    }
  }
  if (result.gave_up && trace) {
    const auto last_round = static_cast<std::uint32_t>(result.cycles);
    for (std::size_t lid = 0; lid < num_channels; ++lid) {
      ChunkedRing& q = queues[lid];
      while (!q.empty()) {
        observer->on_message_event({MessageEventKind::GiveUp, q.pop(),
                                    last_round,
                                    static_cast<std::uint32_t>(lid)});
      }
    }
  }
  if (time_phases_) {
    result.phases.up_seconds = ph_up_;
    result.phases.spine_seconds = ph_spine_;
    result.phases.down_seconds = ph_down_;
    result.phases.coord_seconds = ph_coord;
    result.phases.timed_cycles = result.cycles;
  }
  return result;
}

}  // namespace ft
