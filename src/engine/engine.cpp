#include "engine/engine.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <limits>

#include "util/check.hpp"
#include "util/prng.hpp"

namespace ft {
namespace {

/// Independent arbitration stream per (run seed, cycle, channel): no
/// random decision depends on the order channels are resolved in, which
/// is what makes parallel mode bit-identical to serial mode.
std::uint64_t arbitration_seed(std::uint64_t seed, std::uint32_t cycle,
                               std::uint32_t channel) {
  SplitMix64 sm(seed ^ (static_cast<std::uint64_t>(cycle) << 32) ^ channel);
  return sm.next();
}

/// Below this many contenders in a stage the arbitration is resolved
/// inline: waking the pool costs more than the work itself. Stages shrink
/// as messages deliver, so late cycles drop back to serial automatically.
constexpr std::size_t kMinParallelWork = 4096;

}  // namespace

CycleEngine::CycleEngine(ChannelGraph graph, const EngineOptions& opts)
    : graph_(std::move(graph)), opts_(opts) {
  FT_CHECK_MSG(opts_.alpha > 0.0, "alpha must be positive");
  if (opts_.parallel) {
    pool_ = std::make_unique<ThreadPool>(opts_.threads);
  }
}

CycleEngine::~CycleEngine() = default;

std::uint64_t CycleEngine::channel_limit(std::size_t channel) const {
  if (opts_.contention == ContentionPolicy::Tally) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  const auto lim = static_cast<std::uint64_t>(
      static_cast<double>(graph_.capacity[channel]) * opts_.alpha);
  return std::max<std::uint64_t>(1, lim);
}

void CycleEngine::arbitrate_channel(std::uint32_t cycle,
                                    std::uint32_t channel) {
  auto& contenders = buckets_[channel];
  const std::uint64_t limit = channel_limit(channel);
  if (contenders.size() > limit) {
    Rng arb(arbitration_seed(opts_.seed, cycle, channel));
    arb.shuffle(contenders);
    for (std::size_t j = limit; j < contenders.size(); ++j) {
      alive_[contenders[j]] = 0;
    }
    losses_[channel] =
        static_cast<std::uint32_t>(contenders.size() - limit);
    contenders.resize(static_cast<std::size_t>(limit));
  }
  carried_[channel] = static_cast<std::uint32_t>(contenders.size());
  for (const std::uint32_t i : contenders) ++pending_[i].cursor;
}

void CycleEngine::run_stage(std::uint32_t cycle, std::uint32_t stage) {
  touched_.clear();
  std::size_t contenders = 0;
  for (std::uint32_t i = 0; i < pending_.size(); ++i) {
    if (!alive_[i]) continue;
    const Pending& p = pending_[i];
    if (p.cursor >= p.path->size()) continue;
    const std::uint32_t c = (*p.path)[p.cursor];
    if (graph_.stage[c] != stage) continue;
    if (buckets_[c].empty()) touched_.push_back(c);
    buckets_[c].push_back(i);
    ++contenders;
  }
  if (pool_ && pool_->size() > 1 && touched_.size() >= 2 &&
      contenders >= kMinParallelWork) {
    // Channels of one stage are independent (no path visits two), so
    // workers own disjoint messages and channel counters. Chunk stealing
    // balances the skewed contender counts across channels.
    const std::size_t workers =
        std::min(pool_->size(), touched_.size());
    const std::size_t chunk = std::max<std::size_t>(
        4, touched_.size() / (workers * 8));
    std::atomic<std::size_t> next{0};
    pool_->run_tasks(workers, [&](std::size_t) {
      for (;;) {
        const std::size_t lo =
            next.fetch_add(chunk, std::memory_order_relaxed);
        if (lo >= touched_.size()) return;
        const std::size_t hi = std::min(touched_.size(), lo + chunk);
        for (std::size_t j = lo; j < hi; ++j) {
          arbitrate_channel(cycle, touched_[j]);
        }
      }
    });
  } else {
    for (const std::uint32_t c : touched_) arbitrate_channel(cycle, c);
  }
}

EngineResult CycleEngine::run(const std::vector<EnginePath>& paths,
                              EngineObserver* observer) {
  if (opts_.contention == ContentionPolicy::Fifo) {
    return run_fifo(paths, observer);
  }
  if (paths.empty()) return {};
  const std::vector<std::vector<EnginePath>> batches{paths};
  return run_lossy(batches, observer);
}

EngineResult CycleEngine::run_batched(
    const std::vector<std::vector<EnginePath>>& batches,
    EngineObserver* observer) {
  FT_CHECK_MSG(opts_.contention != ContentionPolicy::Fifo,
               "batched injection requires a lossy or tally policy");
  return run_lossy(batches, observer);
}

EngineResult CycleEngine::run_lossy(
    const std::vector<std::vector<EnginePath>>& batches,
    EngineObserver* observer) {
  EngineResult result;
  const std::size_t num_channels = graph_.num_channels();
  carried_.assign(num_channels, 0);
  losses_.assign(num_channels, 0);
  buckets_.resize(num_channels);
  pending_.clear();

  // Message-event tracing is sampled once per run; when off, the only
  // cost below is one predictable branch per cycle.
  const bool trace = observer != nullptr && observer->wants_message_events();
  std::uint32_t next_id = 0;

  std::size_t next_batch = 0;
  while (next_batch < batches.size() || !pending_.empty()) {
    const std::uint32_t cycle = result.cycles + 1;
    std::uint32_t delivered_now = 0;
    if (next_batch < batches.size()) {
      for (const EnginePath& path : batches[next_batch]) {
        graph_.check_path(path);
        const std::uint32_t id = next_id++;
        if (path.empty()) {
          ++delivered_now;  // local delivery, no channel used
          if (trace) {
            observer->on_message_event(
                {MessageEventKind::Inject, id, cycle, kNoChannel});
            observer->on_message_event(
                {MessageEventKind::Deliver, id, cycle, kNoChannel});
          }
        } else {
          pending_.push_back(Pending{&path, 0, id});
          if (trace) {
            observer->on_message_event(
                {MessageEventKind::Inject, id, cycle, path.front()});
          }
        }
      }
      ++next_batch;
    }
    const std::size_t pending_before = pending_.size();
    result.total_attempts += pending_before;
    if (trace) {
      for (const Pending& p : pending_) {
        observer->on_message_event(
            {MessageEventKind::Attempt, p.id, cycle, p.path->front()});
      }
    }

    alive_.assign(pending_.size(), 1);
    for (Pending& p : pending_) p.cursor = 0;
    std::fill(carried_.begin(), carried_.end(), 0);

    // A message dies at the first channel whose random cap-subset lottery
    // it loses; stages run in causal order along every path.
    std::uint64_t cycle_losses = 0;
    for (std::uint32_t s = 0; s < graph_.num_stages; ++s) {
      run_stage(cycle, s);
      for (const std::uint32_t c : touched_) {
        cycle_losses += losses_[c];
        losses_[c] = 0;
        buckets_[c].clear();
      }
    }

    // Survivors are delivered; the rest retry next cycle. A loser's
    // cursor stops at the channel whose lottery it lost, which is the
    // Loss event's channel.
    if (trace) {
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        const Pending& p = pending_[i];
        if (alive_[i]) {
          observer->on_message_event(
              {MessageEventKind::Deliver, p.id, cycle, kNoChannel});
        } else {
          observer->on_message_event(
              {MessageEventKind::Loss, p.id, cycle, (*p.path)[p.cursor]});
        }
      }
    }
    std::size_t kept = 0;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (alive_[i]) {
        ++delivered_now;
      } else {
        pending_[kept++] = pending_[i];
      }
    }
    pending_.resize(kept);

    ++result.cycles;
    result.total_losses += cycle_losses;
    result.delivered += delivered_now;
    result.delivered_per_cycle.push_back(delivered_now);

    if (observer != nullptr) {
      CycleSnapshot snap;
      snap.cycle = cycle;
      snap.pending_before = pending_before;
      snap.delivered = delivered_now;
      snap.attempts = pending_before;
      snap.losses = cycle_losses;
      snap.carried = &carried_;
      snap.graph = &graph_;
      observer->on_cycle(snap);
    }

    if (opts_.max_cycles != 0 && result.cycles >= opts_.max_cycles &&
        (next_batch < batches.size() || !pending_.empty())) {
      result.gave_up = true;
      break;
    }
  }
  if (result.gave_up && trace) {
    for (const Pending& p : pending_) {
      observer->on_message_event(
          {MessageEventKind::GiveUp, p.id, result.cycles, kNoChannel});
    }
  }
  return result;
}

EngineResult CycleEngine::run_fifo(const std::vector<EnginePath>& paths,
                                   EngineObserver* observer) {
  EngineResult result;
  const std::size_t num_channels = graph_.num_channels();
  std::vector<std::deque<std::uint32_t>> queues(num_channels);
  std::vector<std::uint32_t> pos(paths.size(), 0);
  carried_.assign(num_channels, 0);

  const bool trace = observer != nullptr && observer->wants_message_events();

  std::size_t in_flight = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const auto id = static_cast<std::uint32_t>(i);
    result.total_hops += paths[i].size();
    if (paths[i].empty()) {
      ++result.delivered;  // local message, finishes at round 0
      if (trace) {
        observer->on_message_event(
            {MessageEventKind::Inject, id, 0, kNoChannel});
        observer->on_message_event(
            {MessageEventKind::Deliver, id, 0, kNoChannel});
      }
      continue;
    }
    queues[paths[i][0]].push_back(id);
    ++in_flight;
    if (trace) {
      observer->on_message_event(
          {MessageEventKind::Inject, id, 0, paths[i][0]});
    }
  }

  // Each round every channel forwards up to its capacity in FIFO order;
  // arrivals are buffered so a message moves at most one hop per round.
  // When tracing, each range logs its Hop/Deliver events; the serial
  // merge below replays them in range (= ascending channel) order, so the
  // event stream is identical at any thread count.
  struct RangeOut {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> arrivals;
    std::vector<MessageEvent> events;
    double latency_sum = 0.0;
    std::uint32_t finished = 0;
    std::uint64_t forwards = 0;
    std::uint32_t max_queue = 0;
    bool moved = false;
  };

  // Channel ranges are fixed for the whole run; arrivals are merged in
  // range order, so queue contents are identical at any thread count.
  std::size_t num_ranges = 1;
  if (pool_ != nullptr && pool_->size() > 1) {
    num_ranges = std::min<std::size_t>(pool_->size() * 2,
                                       std::max<std::size_t>(1, num_channels));
  }
  const std::size_t range_len = (num_channels + num_ranges - 1) / num_ranges;
  std::vector<RangeOut> outs(num_ranges);

  auto process_range = [&](std::size_t r, std::uint32_t round) {
    RangeOut& out = outs[r];
    out.arrivals.clear();
    out.events.clear();
    out.latency_sum = 0.0;
    out.finished = 0;
    out.forwards = 0;
    out.max_queue = 0;
    out.moved = false;
    const std::size_t lo = r * range_len;
    const std::size_t hi = std::min(num_channels, lo + range_len);
    for (std::size_t lid = lo; lid < hi; ++lid) {
      auto& q = queues[lid];
      const std::uint64_t cap = graph_.capacity[lid];
      std::uint32_t forwarded = 0;
      for (; forwarded < cap && !q.empty(); ++forwarded) {
        const std::uint32_t msg = q.front();
        q.pop_front();
        out.moved = true;
        ++out.forwards;
        if (trace) {
          out.events.push_back({MessageEventKind::Hop, msg, round,
                                static_cast<std::uint32_t>(lid)});
        }
        if (++pos[msg] == paths[msg].size()) {
          out.latency_sum += round;
          ++out.finished;
          if (trace) {
            out.events.push_back({MessageEventKind::Deliver, msg, round,
                                  static_cast<std::uint32_t>(lid)});
          }
        } else {
          out.arrivals.emplace_back(paths[msg][pos[msg]], msg);
        }
      }
      carried_[lid] = forwarded;
      out.max_queue = std::max(out.max_queue,
                               static_cast<std::uint32_t>(q.size()));
    }
  };

  while (in_flight > 0) {
    const std::uint32_t round = result.cycles + 1;
    if (num_ranges > 1) {
      pool_->run_tasks(num_ranges,
                       [&](std::size_t r) { process_range(r, round); });
    } else {
      process_range(0, round);
    }

    bool moved = false;
    std::uint32_t finished = 0;
    std::uint32_t round_peak = 0;
    std::uint64_t round_forwards = 0;
    for (std::size_t r = 0; r < num_ranges; ++r) {
      const RangeOut& out = outs[r];
      moved = moved || out.moved;
      finished += out.finished;
      result.latency_sum += out.latency_sum;
      round_forwards += out.forwards;
      round_peak = std::max(round_peak, out.max_queue);
      for (const auto& [lid, msg] : out.arrivals) queues[lid].push_back(msg);
      if (trace) {
        for (const MessageEvent& e : out.events) {
          observer->on_message_event(e);
        }
      }
    }
    result.total_attempts += round_forwards;
    FT_CHECK_MSG(moved, "FIFO engine made no progress");
    result.max_queue = std::max(result.max_queue, round_peak);
    in_flight -= finished;
    result.delivered += finished;
    ++result.cycles;
    result.delivered_per_cycle.push_back(finished);

    if (observer != nullptr) {
      CycleSnapshot snap;
      snap.cycle = round;
      snap.pending_before = in_flight + finished;
      snap.delivered = finished;
      snap.attempts = round_forwards;
      snap.peak_queue = round_peak;
      snap.carried = &carried_;
      snap.graph = &graph_;
      observer->on_cycle(snap);
    }

    if (opts_.max_cycles != 0 && result.cycles >= opts_.max_cycles &&
        in_flight > 0) {
      result.gave_up = true;
      break;
    }
  }
  if (result.gave_up && trace) {
    for (std::size_t lid = 0; lid < num_channels; ++lid) {
      for (const std::uint32_t msg : queues[lid]) {
        observer->on_message_event({MessageEventKind::GiveUp, msg,
                                    result.cycles,
                                    static_cast<std::uint32_t>(lid)});
      }
    }
  }
  return result;
}

}  // namespace ft
