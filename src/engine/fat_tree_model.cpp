#include "engine/fat_tree_model.hpp"

namespace ft {

ChannelGraph fat_tree_channel_graph(const FatTreeTopology& topo,
                                    const CapacityProfile& caps,
                                    std::uint32_t shard_level) {
  const std::uint32_t L = topo.height();
  const std::size_t bound = channel_index_bound(topo);

  ChannelGraph g;
  g.capacity.assign(bound, 0);
  g.stage.assign(bound, 0);
  g.level.assign(bound, 0);
  g.in_wire_budget.assign(bound, 0);
  g.num_stages = 2 * L;
  g.num_levels = L + 1;
  if (shard_level > 0) {
    FT_CHECK_MSG(shard_level < L,
                 "shard_level must leave at least the leaf level inside "
                 "each shard");
    g.shard.assign(bound, ChannelGraph::kNoShard);
    g.num_shards = 1u << shard_level;
    // Up channels of nodes at level >= shard_level have stages
    // 0 .. L - shard_level, down ones L - 1 + shard_level .. 2L - 1; the
    // channels of the spine nodes above fill the band in between. At
    // shard_level 1 the band is empty: crossing messages hop from one
    // shard's last up channel straight onto the other's root down
    // channel.
    g.spine_stage_lo = L - shard_level + 1;
    g.spine_stage_hi = (L - 1) + shard_level;
  }

  for (NodeId v = 1; v <= topo.num_nodes(); ++v) {
    const std::uint32_t level = topo.channel_level(v);
    for (const Direction dir : {Direction::Up, Direction::Down}) {
      const std::size_t idx = channel_index(ChannelId{v, dir});
      g.capacity[idx] = caps.capacity(topo, v);
      g.level[idx] = level;
      if (v == 1) continue;  // external interface: no stage, no budget
      g.stage[idx] = dir == Direction::Up ? L - level : (L - 1) + level;
      g.in_wire_budget[idx] = 1;
      if (shard_level > 0 && topo.level(v) >= shard_level) {
        // Owning shard: the ancestor at shard_level, rebased to 0.
        g.shard[idx] = static_cast<std::uint32_t>(
            (v >> (topo.level(v) - shard_level)) - (NodeId{1} << shard_level));
      }
    }
  }
  return g;
}

FaultDomain fat_tree_subtree_domain(const FatTreeTopology& topo, NodeId v) {
  FT_CHECK(v >= 1 && v <= topo.num_nodes());
  FaultDomain dom;
  dom.node = v;
  const std::uint32_t lv = topo.level(v);
  for (std::uint32_t lvl = lv; lvl <= topo.height(); ++lvl) {
    const std::uint32_t shift = lvl - lv;
    const NodeId first = v << shift;
    const NodeId count = NodeId{1} << shift;
    for (NodeId u = first; u < first + count; ++u) {
      dom.channels.push_back(static_cast<std::uint32_t>(
          channel_index(ChannelId{u, Direction::Up})));
      dom.channels.push_back(static_cast<std::uint32_t>(
          channel_index(ChannelId{u, Direction::Down})));
    }
  }
  return dom;
}

std::vector<FaultDomain> fat_tree_subtree_domains(const FatTreeTopology& topo,
                                                  std::uint32_t level) {
  FT_CHECK(level <= topo.height());
  std::vector<FaultDomain> domains;
  const NodeId first = NodeId{1} << level;
  for (NodeId v = first; v < first * 2; ++v) {
    domains.push_back(fat_tree_subtree_domain(topo, v));
  }
  return domains;
}

EnginePath fat_tree_engine_path(const FatTreeTopology& topo, Leaf src,
                                Leaf dst) {
  EnginePath path;
  if (src == dst) return path;
  NodeId a = topo.node_of_leaf(src);
  NodeId b = topo.node_of_leaf(dst);
  EnginePath down;  // collected leaf-upward, reversed into causal order
  while (a != b) {
    path.push_back(static_cast<std::uint32_t>(
        channel_index(ChannelId{a, Direction::Up})));
    down.push_back(static_cast<std::uint32_t>(
        channel_index(ChannelId{b, Direction::Down})));
    a >>= 1;
    b >>= 1;
  }
  path.insert(path.end(), down.rbegin(), down.rend());
  return path;
}

void append_fat_tree_path(const FatTreeTopology& topo, Leaf src, Leaf dst,
                          PathSet& out) {
  if (src != dst) {
    NodeId a = topo.node_of_leaf(src);
    NodeId b = topo.node_of_leaf(dst);
    // Down channels are discovered leaf-upward but traversed root-downward;
    // a tree of 2^64 leaves still only needs 64 slots of scratch.
    std::uint32_t down[64];
    std::uint32_t depth = 0;
    while (a != b) {
      out.push_channel(static_cast<std::uint32_t>(
          channel_index(ChannelId{a, Direction::Up})));
      down[depth++] = static_cast<std::uint32_t>(
          channel_index(ChannelId{b, Direction::Down}));
      a >>= 1;
      b >>= 1;
    }
    while (depth > 0) out.push_channel(down[--depth]);
  }
  out.close_path();
}

PathSet fat_tree_path_set(const FatTreeTopology& topo, const MessageSet& m) {
  PathSet paths;
  paths.reserve(m.size(), m.size() * 2ull * topo.height());
  for (const auto& msg : m) {
    append_fat_tree_path(topo, msg.src, msg.dst, paths);
  }
  return paths;
}

std::vector<EnginePath> fat_tree_engine_paths(const FatTreeTopology& topo,
                                              const MessageSet& m) {
  std::vector<EnginePath> paths;
  paths.reserve(m.size());
  for (const auto& msg : m) {
    paths.push_back(fat_tree_engine_path(topo, msg.src, msg.dst));
  }
  return paths;
}

}  // namespace ft
