// Generic-network channel model for the CycleEngine: link ids become
// engine channel indices one-for-one, so a nets/routing.hpp Route is
// already an EnginePath. Used by the store-and-forward competitor
// simulation (FIFO contention).
#pragma once

#include <algorithm>

#include "engine/channel_graph.hpp"
#include "engine/message_source.hpp"
#include "nets/network.hpp"
#include "nets/routing.hpp"

namespace ft {

inline ChannelGraph network_channel_graph(const Network& net) {
  std::vector<std::uint64_t> caps(net.num_links());
  for (std::uint32_t lid = 0; lid < net.num_links(); ++lid) {
    caps[lid] = net.link(lid).capacity;
  }
  return ChannelGraph::flat(std::move(caps));
}

/// Batch conversion of router output to the engine's CSR input: two
/// allocations total instead of keeping one heap vector per route alive
/// through the simulation.
inline PathSet network_path_set(const std::vector<Route>& routes) {
  return PathSet::from_paths(routes);
}

/// Streams router output into the engine chunk by chunk (a Route is
/// already an EnginePath, so this is pure re-chunking). The routes vector
/// itself still exists — competitor routers materialize it — but the CSR
/// copy never does.
class RouteChunkSource final : public MessageSource {
 public:
  explicit RouteChunkSource(const std::vector<Route>& routes,
                            std::size_t chunk_paths = kDefaultChunkPaths)
      : routes_(routes), chunk_paths_(chunk_paths == 0 ? 1 : chunk_paths) {}

  bool next_chunk(PathSet& chunk) override {
    if (next_ >= routes_.size()) return false;
    chunk.clear();
    const std::size_t end = std::min(routes_.size(), next_ + chunk_paths_);
    for (; next_ < end; ++next_) {
      for (const std::uint32_t c : routes_[next_]) chunk.push_channel(c);
      chunk.close_path();
    }
    return true;
  }

 private:
  const std::vector<Route>& routes_;
  std::size_t chunk_paths_;
  std::size_t next_ = 0;
};

}  // namespace ft
