// Generic-network channel model for the CycleEngine: link ids become
// engine channel indices one-for-one, so a nets/routing.hpp Route is
// already an EnginePath. Used by the store-and-forward competitor
// simulation (FIFO contention).
#pragma once

#include "engine/channel_graph.hpp"
#include "nets/network.hpp"
#include "nets/routing.hpp"

namespace ft {

inline ChannelGraph network_channel_graph(const Network& net) {
  std::vector<std::uint64_t> caps(net.num_links());
  for (std::uint32_t lid = 0; lid < net.num_links(); ++lid) {
    caps[lid] = net.link(lid).capacity;
  }
  return ChannelGraph::flat(std::move(caps));
}

/// Batch conversion of router output to the engine's CSR input: two
/// allocations total instead of keeping one heap vector per route alive
/// through the simulation.
inline PathSet network_path_set(const std::vector<Route>& routes) {
  return PathSet::from_paths(routes);
}

}  // namespace ft
