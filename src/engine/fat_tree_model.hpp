// Fat-tree channel model for the CycleEngine: compiles a FatTreeTopology +
// CapacityProfile into the engine's flat ChannelGraph and message sets
// into EnginePaths. Channel indices reuse core/topology.hpp's
// channel_index() (node * 2 + direction), so per-channel counters line up
// with the rest of the core layer.
//
// Arbitration stages encode the paper's causal order within a delivery
// cycle: up channels from the leaves toward the root (stage = L - level),
// then down channels back out (stage = L - 1 + level), 2L stages total.
// The root's external-interface channel is never on an internal path; it
// is kept out of the wire budget (utilization denominators).
#pragma once

#include <vector>

#include "core/capacity.hpp"
#include "core/message.hpp"
#include "core/topology.hpp"
#include "core/traffic.hpp"
#include "engine/channel_graph.hpp"
#include "engine/fault_plan.hpp"
#include "engine/message_source.hpp"

namespace ft {

/// `shard_level` > 0 additionally partitions the graph for the engine's
/// subtree-sharded parallel mode: the 2^shard_level subtrees rooted at
/// heap level shard_level become shards owning every channel at or below
/// their root, and the channels above (levels 1..shard_level-1) form the
/// serially-arbitrated spine. Must satisfy 1 <= shard_level < height when
/// nonzero; 0 (the default) attaches no shard metadata, and the engine
/// behaves exactly as before.
ChannelGraph fat_tree_channel_graph(const FatTreeTopology& topo,
                                    const CapacityProfile& caps,
                                    std::uint32_t shard_level = 0);

/// Correlated-failure domain of the subtree rooted at internal node v:
/// both channels of every node in the subtree, including v's own pair (the
/// edge to v's parent), modelling a shared power feed or cable bundle.
/// The domain is labelled by v's heap number, which matches the heap
/// numbering of build_binary_tree and (for k = 2) the k-ary pod label, so
/// the same FaultPlan scenario can be replayed across backends.
FaultDomain fat_tree_subtree_domain(const FatTreeTopology& topo, NodeId v);

/// Domains for every internal node at heap level `level` (root = 0):
/// 2^level disjoint subtrees covering all leaves.
std::vector<FaultDomain> fat_tree_subtree_domains(const FatTreeTopology& topo,
                                                  std::uint32_t level);

/// The unique tree path of one message as engine channel indices (empty
/// when src == dst).
EnginePath fat_tree_engine_path(const FatTreeTopology& topo, Leaf src,
                                Leaf dst);

/// Streams the tree path src → dst (closed, possibly empty) into a CSR
/// PathSet with no per-message allocation.
void append_fat_tree_path(const FatTreeTopology& topo, Leaf src, Leaf dst,
                          PathSet& out);

/// CSR paths for a whole message set: the engine's native input format.
/// Self messages become empty paths (local delivery, no bandwidth).
PathSet fat_tree_path_set(const FatTreeTopology& topo, const MessageSet& m);

/// Paths for a whole message set as one heap vector per message; prefer
/// fat_tree_path_set for anything hot.
std::vector<EnginePath> fat_tree_engine_paths(const FatTreeTopology& topo,
                                              const MessageSet& m);

/// Streams fat-tree paths for a MessageStream workload, one chunk at a
/// time: the full PathSet for an n = 2^20 permutation (~160 MiB of CSR)
/// never exists; peak input memory is one chunk. Self messages become
/// empty paths (local delivery), exactly as fat_tree_path_set emits them.
class FatTreePathSource final : public MessageSource {
 public:
  FatTreePathSource(const FatTreeTopology& topo, MessageStream& messages,
                    std::size_t chunk_paths = kDefaultChunkPaths)
      : topo_(topo),
        messages_(messages),
        chunk_paths_(chunk_paths == 0 ? 1 : chunk_paths) {}

  bool next_chunk(PathSet& chunk) override {
    chunk.clear();
    Message m;
    std::size_t produced = 0;
    while (produced < chunk_paths_ && messages_.next(m)) {
      append_fat_tree_path(topo_, m.src, m.dst, chunk);
      ++produced;
    }
    return produced > 0;
  }

 private:
  const FatTreeTopology& topo_;
  MessageStream& messages_;
  std::size_t chunk_paths_;
};

}  // namespace ft
