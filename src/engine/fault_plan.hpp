// Dynamic (mid-run) fault injection for the CycleEngine. The static
// models in core/faults degrade a CapacityProfile *before* a run; a
// FaultPlan describes faults that strike *during* one — channels flapping
// down and up with memoryless (geometric ≈ discrete exponential) holding
// times, capacity brownouts over a cycle window, burst kills that take
// out a random set of channels at a given cycle, and *correlated* subtree
// kills that fell every channel in a fate-sharing domain (a subtree's
// power feed or cable bundle) at once — so the paper's retry loop
// (Section II: loss + acknowledgment + retry) is exercised under churn,
// not just against pre-damaged capacities.
//
// Determinism contract: a plan is an immutable description; the engine
// materializes a per-run FaultState whose entire evolution is a pure
// function of (plan seed, cycle, channel). State advances once per cycle
// on the engine's serial coordination path, so serial and parallel runs
// see identical fault timelines (the same guarantee test_engine_parity
// pins for arbitration).
//
// A RetryPolicy rides alongside: bounded per-message attempts with
// optional exponential backoff (skip-k-cycles between retries) and a
// give-up deadline, replacing the engine's single global max_cycles cliff
// with per-message lifecycle decisions (surfaced as Backoff/GiveUp trace
// events and fault counters, see obs/).
#pragma once

#include <cstdint>
#include <vector>

#include "engine/channel_graph.hpp"

namespace ft {

/// Per-message retry policy for lossy (RandomSubset/Tally) runs. All
/// fields default to "off", which reproduces the classic behavior: retry
/// every cycle until delivered or the engine-wide max_cycles cliff.
struct RetryPolicy {
  /// Give a message up after this many contested cycles (0 = unbounded).
  std::uint32_t max_attempts = 0;
  /// After the k-th loss, skip min(2^(k-1) - 1, max_backoff) cycles
  /// before retrying (so the first retry is still immediate).
  bool exponential_backoff = false;
  /// Cap on skipped cycles per backoff step.
  std::uint32_t max_backoff = 64;
  /// Messages whose next retry would start after this cycle give up
  /// (0 = no deadline).
  std::uint32_t deadline_cycles = 0;

  bool enabled() const {
    return max_attempts != 0 || exponential_backoff || deadline_cycles != 0;
  }
};

/// Channels flap down/up with per-cycle probabilities; holding times are
/// geometric (the discrete memoryless analogue of exponential up/down
/// times). Applies to every usable channel.
struct ChannelFlapModel {
  double down_prob = 0.0;  ///< per up-cycle P(channel fails)
  double up_prob = 0.0;    ///< per down-cycle P(channel repairs)
};

/// Matches every level tag (ChannelGraph::level) in a BrownoutWindow.
inline constexpr std::uint32_t kAllLevels = 0xffffffffu;

/// Capacity brownout: admission limits scale by capacity_factor (floor 1)
/// for cycles in [from_cycle, until_cycle).
struct BrownoutWindow {
  std::uint32_t from_cycle = 1;   ///< first affected cycle (1-based)
  std::uint32_t until_cycle = 0;  ///< first unaffected cycle (0 = forever)
  double capacity_factor = 0.5;
  std::uint32_t level = kAllLevels;  ///< restrict to one level tag
};

/// Burst kill: `count` distinct usable channels (chosen by the plan seed)
/// go hard down at `at_cycle` and repair `duration` cycles later.
struct BurstKill {
  std::uint32_t at_cycle = 1;
  std::uint32_t duration = 1;
  std::uint32_t count = 1;
};

/// A correlated-failure domain: the set of engine channels that share a
/// physical fate (power feed, cable bundle) with the subtree rooted at
/// `node`. The channel list is topology-specific — built by
/// fat_tree_subtree_domain / kary_pod_domains / binary_tree_subtree_domain
/// — so the FaultPlan itself stays topology-agnostic.
struct FaultDomain {
  std::uint32_t node = 0;               ///< topology label of the domain root
  std::vector<std::uint32_t> channels;  ///< engine channel ids, fate-shared
};

/// Scheduled subtree kill: every channel in the domain rooted at `node`
/// goes hard down at `at_cycle` and repairs `duration` cycles later.
struct SubtreeKill {
  std::uint32_t node = 0;
  std::uint32_t at_cycle = 1;
  std::uint32_t duration = 1;
};

/// Random correlated kills: each cycle, every *up* domain is struck with
/// probability kill_prob (private per-(seed, cycle, node) stream); the
/// outage lasts uniform [min_duration, max_duration] cycles.
struct SubtreeStormModel {
  double kill_prob = 0.0;
  std::uint32_t min_duration = 1;
  std::uint32_t max_duration = 8;
};

/// Immutable transient-fault description handed to the engine via
/// EngineOptions::fault_plan (not owned; must outlive the run).
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0) : seed_(seed) {}

  FaultPlan& set_flaps(const ChannelFlapModel& m) {
    FT_CHECK(m.down_prob >= 0.0 && m.down_prob <= 1.0);
    FT_CHECK(m.up_prob >= 0.0 && m.up_prob <= 1.0);
    flaps_ = m;
    return *this;
  }
  FaultPlan& add_brownout(const BrownoutWindow& w) {
    FT_CHECK(w.capacity_factor >= 0.0 && w.capacity_factor <= 1.0);
    brownouts_.push_back(w);
    return *this;
  }
  FaultPlan& add_burst(const BurstKill& b) {
    FT_CHECK(b.at_cycle >= 1);
    bursts_.push_back(b);
    return *this;
  }
  /// Installs the correlated-failure domains (required before any
  /// subtree kill or storm takes effect). Domain roots must be unique.
  FaultPlan& set_domains(std::vector<FaultDomain> domains) {
    for (std::size_t i = 0; i < domains.size(); ++i) {
      for (std::size_t j = i + 1; j < domains.size(); ++j) {
        FT_CHECK_MSG(domains[i].node != domains[j].node,
                     "duplicate FaultDomain root");
      }
    }
    domains_ = std::move(domains);
    return *this;
  }
  FaultPlan& add_subtree_kill(const SubtreeKill& k) {
    FT_CHECK(k.at_cycle >= 1);
    FT_CHECK(k.duration >= 1);
    subtree_kills_.push_back(k);
    return *this;
  }
  FaultPlan& set_storm(const SubtreeStormModel& s) {
    FT_CHECK(s.kill_prob >= 0.0 && s.kill_prob <= 1.0);
    FT_CHECK(s.min_duration >= 1 && s.min_duration <= s.max_duration);
    storm_ = s;
    return *this;
  }

  bool empty() const {
    return flaps_.down_prob == 0.0 && brownouts_.empty() && bursts_.empty() &&
           subtree_kills_.empty() && storm_.kill_prob == 0.0;
  }

  std::uint64_t seed() const { return seed_; }
  const ChannelFlapModel& flaps() const { return flaps_; }
  const std::vector<BrownoutWindow>& brownouts() const { return brownouts_; }
  const std::vector<BurstKill>& bursts() const { return bursts_; }
  const std::vector<FaultDomain>& domains() const { return domains_; }
  const std::vector<SubtreeKill>& subtree_kills() const {
    return subtree_kills_;
  }
  const SubtreeStormModel& storm() const { return storm_; }

 private:
  std::uint64_t seed_;
  ChannelFlapModel flaps_;
  std::vector<BrownoutWindow> brownouts_;
  std::vector<BurstKill> bursts_;
  std::vector<FaultDomain> domains_;
  std::vector<SubtreeKill> subtree_kills_;
  SubtreeStormModel storm_;
};

/// Per-run dynamic fault state. The engine creates one per run and calls
/// begin_cycle(1), begin_cycle(2), ... from its coordinating thread; each
/// call rewrites eff_limit() — 0 for down channels, brownout-scaled base
/// limit otherwise — and reports the cycle's state transitions.
class FaultState {
 public:
  FaultState(const FaultPlan& plan, const ChannelGraph& graph);

  struct CycleFaults {
    /// Channels that failed / recovered at this cycle's start, ascending
    /// channel order (the trace event emission order).
    std::vector<std::uint32_t> went_down;
    std::vector<std::uint32_t> came_up;
    /// Domain roots whose subtree was struck at this cycle (scheduled
    /// kill or storm draw), in plan domain order.
    std::vector<std::uint32_t> killed_nodes;
    std::uint32_t channels_down = 0;  ///< down during this cycle
    /// Channels whose effective limit is below base this cycle (down or
    /// browned out) — the numerator of time-degraded availability.
    std::uint64_t degraded_channels = 0;
  };

  /// Advances to `cycle` (consecutive, starting at 1) against the given
  /// per-channel base admission limits. The returned reference and
  /// eff_limit() stay valid until the next call.
  const CycleFaults& begin_cycle(std::uint32_t cycle,
                                 const std::vector<std::uint32_t>& base_limit);

  const std::vector<std::uint32_t>& eff_limit() const { return eff_limit_; }
  /// Channels with nonzero capacity — the availability denominator.
  std::uint32_t num_usable() const {
    return static_cast<std::uint32_t>(usable_.size());
  }

 private:
  const FaultPlan& plan_;
  const ChannelGraph& graph_;
  std::vector<std::uint32_t> usable_;     ///< channel ids, capacity > 0
  std::vector<std::uint8_t> flap_down_;   ///< per channel
  std::vector<std::uint32_t> forced_down_until_;  ///< burst/kill repair cycle
  std::vector<std::uint32_t> domain_down_until_;  ///< per plan domain
  std::vector<std::uint8_t> was_down_;    ///< effective state last cycle
  std::vector<std::uint32_t> eff_limit_;
  std::uint32_t last_cycle_ = 0;
  CycleFaults out_;
};

}  // namespace ft
