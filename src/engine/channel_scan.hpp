// The in-budget channel scan list: the compact (channel, level) index of
// every live, wire-budgeted channel of a ChannelGraph. Built once per
// graph and walked once per cycle (or per sampled cycle) by everything
// that aggregates per-channel state — the telemetry probe's occupancy
// scans and the engine's adaptive-occupancy hot-streak pass share this
// one definition so "the channels the probe watches" and "the channels
// congestion feedback acts on" can never drift apart.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/channel_graph.hpp"

namespace ft {

struct ChannelScanEntry {
  std::uint32_t channel;
  std::uint32_t level;
};

/// Every channel with nonzero capacity that counts against the wire
/// budget, ascending channel order. Channels excluded here are exactly
/// the ones the telemetry probe never aggregates (external interfaces,
/// padding); the adaptive policy leaves their hot streaks at zero, so it
/// never throttles on them either.
inline std::vector<ChannelScanEntry> build_channel_scan(
    const ChannelGraph& g) {
  std::vector<ChannelScanEntry> scan;
  for (std::size_t c = 0; c < g.num_channels(); ++c) {
    if (g.capacity[c] == 0 || !g.in_wire_budget[c]) continue;
    scan.push_back({static_cast<std::uint32_t>(c), g.level[c]});
  }
  return scan;
}

}  // namespace ft
