// Instrumentation hooks for the CycleEngine. The engine accumulates one
// CycleSnapshot per delivery cycle (or store-and-forward round) and hands
// it to an observer from the coordinating thread — callbacks are always
// serial and in cycle order, even when the engine resolves contention in
// parallel, so observers need no locking.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/channel_graph.hpp"

namespace ft {

/// What happened in one delivery cycle. `carried` points at the engine's
/// per-channel counters for this cycle (messages that traversed each
/// channel, i.e. survived its arbitration); it is only valid during the
/// callback — copy what you need.
struct CycleSnapshot {
  std::uint32_t cycle = 0;          ///< 1-based cycle / round number
  std::size_t pending_before = 0;   ///< messages alive entering the cycle
  std::uint32_t delivered = 0;      ///< messages that finished this cycle
  std::uint64_t attempts = 0;       ///< path attempts (lossy) / hops (FIFO)
  std::uint64_t losses = 0;         ///< attempts killed by contention
  std::uint32_t peak_queue = 0;     ///< deepest FIFO queue this round
  const std::vector<std::uint32_t>* carried = nullptr;  ///< per-channel
  const ChannelGraph* graph = nullptr;
};

class EngineObserver {
 public:
  virtual ~EngineObserver() = default;
  virtual void on_cycle(const CycleSnapshot& snapshot) = 0;
};

/// Ready-made observer: per-cycle and per-level counters plus a channel
/// utilization histogram — the instrumentation consumed by the bench/
/// experiments. Reusable across runs via reset().
class EngineMetrics final : public EngineObserver {
 public:
  static constexpr std::size_t kHistogramBins = 10;

  void on_cycle(const CycleSnapshot& s) override {
    attempts_per_cycle.push_back(s.attempts);
    losses_per_cycle.push_back(s.losses);
    delivered_per_cycle.push_back(s.delivered);
    if (s.peak_queue > peak_queue_depth) peak_queue_depth = s.peak_queue;
    if (s.graph == nullptr || s.carried == nullptr) return;
    const ChannelGraph& g = *s.graph;
    if (carried_by_level.size() < g.num_levels) {
      carried_by_level.resize(g.num_levels, 0);
      capacity_by_level.resize(g.num_levels, 0);
    }
    if (utilization_histogram.empty()) {
      utilization_histogram.assign(kHistogramBins, 0);
    }
    for (std::size_t c = 0; c < g.num_channels(); ++c) {
      if (g.capacity[c] == 0 || !g.in_wire_budget[c]) continue;
      const std::uint32_t carried = (*s.carried)[c];
      carried_by_level[g.level[c]] += carried;
      capacity_by_level[g.level[c]] += g.capacity[c];
      const double u = static_cast<double>(carried) /
                       static_cast<double>(g.capacity[c]);
      auto bin = static_cast<std::size_t>(u * kHistogramBins);
      if (bin >= kHistogramBins) bin = kHistogramBins - 1;
      ++utilization_histogram[bin];
    }
  }

  void reset() { *this = EngineMetrics{}; }

  std::uint32_t cycles() const {
    return static_cast<std::uint32_t>(delivered_per_cycle.size());
  }
  std::uint64_t total_attempts() const { return sum(attempts_per_cycle); }
  std::uint64_t total_losses() const { return sum(losses_per_cycle); }

  /// Mean carried/capacity over channel-cycles at one level tag.
  double level_utilization(std::uint32_t level) const {
    if (level >= carried_by_level.size() || capacity_by_level[level] == 0) {
      return 0.0;
    }
    return static_cast<double>(carried_by_level[level]) /
           static_cast<double>(capacity_by_level[level]);
  }

  // Per-cycle counters, index = cycle - 1.
  std::vector<std::uint64_t> attempts_per_cycle;
  std::vector<std::uint64_t> losses_per_cycle;
  std::vector<std::uint32_t> delivered_per_cycle;
  // Per-level tallies over all cycles, index = ChannelGraph::level.
  std::vector<std::uint64_t> carried_by_level;
  std::vector<std::uint64_t> capacity_by_level;  ///< channel-cycle wire slots
  /// Histogram of per-channel-per-cycle utilization (bin i covers
  /// [i/10, (i+1)/10), last bin includes 1.0).
  std::vector<std::uint64_t> utilization_histogram;
  std::uint32_t peak_queue_depth = 0;

 private:
  static std::uint64_t sum(const std::vector<std::uint64_t>& v) {
    std::uint64_t t = 0;
    for (auto x : v) t += x;
    return t;
  }
};

}  // namespace ft
