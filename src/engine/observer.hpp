// Instrumentation hooks for the CycleEngine. The engine accumulates one
// CycleSnapshot per delivery cycle (or store-and-forward round) and hands
// it to an observer from the coordinating thread — callbacks are always
// serial and in cycle order, even when the engine resolves contention in
// parallel, so observers need no locking.
//
// Observers can additionally opt in to per-message lifecycle events
// (wants_message_events()). Those too are emitted only from the serial
// coordination path, in a deterministic order that does not depend on
// thread count, and the engine skips all event bookkeeping when no
// observer asks for them — tracing is zero-cost when disabled.
//
// Ready-made observers (EngineMetrics, TraceSink, ObserverFanout) live in
// the observability layer, src/obs/.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "engine/channel_graph.hpp"

namespace ft {

/// One message delivered this cycle, for latency-digest observers
/// (wants_latency_samples()). `latency` counts delivery cycles from the
/// message's injection cycle inclusive (a message injected and delivered
/// in the same cycle has latency 1); `ideal` is its contention-free cost
/// in the same unit — 1 in the lossy modes (a whole path traverses in one
/// uncontended cycle), the path's hop count in FIFO mode — so
/// latency / ideal is the message's stretch.
struct LatencySample {
  std::uint32_t latency = 0;
  std::uint32_t ideal = 1;
};

/// What happened in one delivery cycle. `carried` points at the engine's
/// per-channel counters for this cycle (messages that traversed each
/// channel, i.e. survived its arbitration); it is only valid during the
/// callback — copy what you need.
struct CycleSnapshot {
  std::uint32_t cycle = 0;          ///< 1-based cycle / round number
  std::size_t pending_before = 0;   ///< messages alive entering the cycle
  std::uint32_t delivered = 0;      ///< messages that finished this cycle
  std::uint64_t attempts = 0;       ///< path attempts (lossy) / hops (FIFO)
  std::uint64_t losses = 0;         ///< attempts killed by contention
  std::uint32_t peak_queue = 0;     ///< deepest FIFO queue this round
  // Dynamic-fault and retry lifecycle (all zero without an active
  // FaultPlan / RetryPolicy, see engine/fault_plan.hpp).
  std::uint32_t faults_down = 0;    ///< channels that failed at cycle start
  std::uint32_t faults_up = 0;      ///< channels that recovered
  std::uint32_t subtree_kills = 0;  ///< correlated domains struck this cycle
  std::uint32_t channels_down = 0;  ///< channels down during this cycle
  std::uint64_t degraded_channels = 0;  ///< channels below full capacity
  std::uint32_t backoffs = 0;       ///< messages that entered retry backoff
  std::uint32_t gave_up = 0;        ///< messages that exhausted their retries
  /// Per-channel carried counts for this cycle; nullptr when no attached
  /// observer asked for this cycle's channel state (see
  /// EngineObserver::wants_channel_state).
  const std::vector<std::uint32_t>* carried = nullptr;
  /// Messages delivered through the network this cycle, in a deterministic
  /// order that does not depend on thread count (ascending pending index
  /// in the lossy modes, ascending final channel in FIFO mode). nullptr
  /// unless an observer opted in via wants_latency_samples(). Locally
  /// delivered messages (empty paths) appear with latency == ideal == 1 in
  /// the lossy modes and are omitted in FIFO mode (they finish before
  /// round 1 and cross no channel).
  const std::vector<LatencySample>* latencies = nullptr;
  const ChannelGraph* graph = nullptr;
};

/// Sentinel channel for events that are not tied to one channel (local
/// delivery, give-up).
inline constexpr std::uint32_t kNoChannel =
    std::numeric_limits<std::uint32_t>::max();

/// Sentinel message id for channel-level events (FaultDown/FaultUp) that
/// are not tied to one message.
inline constexpr std::uint32_t kNoMessage =
    std::numeric_limits<std::uint32_t>::max();

/// Per-message lifecycle event taxonomy. Lossy (RandomSubset/Tally) runs
/// emit Inject, Attempt, Loss, Deliver, Backoff, GiveUp; FIFO runs emit
/// Inject, Hop, Deliver, GiveUp. A run that gives up reports GiveUp only
/// for messages that were already injected (batches never injected leave
/// no events). Runs under a FaultPlan additionally emit FaultDown/FaultUp
/// channel-state events (message = kNoMessage) at the start of the cycle
/// the transition takes effect in, preceded by one SubtreeKill event per
/// correlated domain struck that cycle (`channel` carries the domain's
/// topology node label, not a channel id).
enum class MessageEventKind : std::uint8_t {
  Inject,   ///< message entered the engine (channel = first path channel)
  Attempt,  ///< lossy: message contends for its full path this cycle
  Hop,      ///< FIFO: message was forwarded across `channel` this round
  Loss,     ///< lossy: message lost the arbitration lottery at `channel`
  Deliver,  ///< message reached its destination this cycle/round
  Backoff,  ///< lossy: message parks for its retry-backoff delay
  GiveUp,   ///< message undelivered at max_cycles, or its retry policy
            ///< (max_attempts / deadline) ran out
  FaultDown,  ///< `channel` failed at this cycle's start (msg = kNoMessage)
  FaultUp,    ///< `channel` recovered (msg = kNoMessage)
  SubtreeKill,  ///< correlated domain struck; `channel` = domain node label
                ///< (msg = kNoMessage), emitted before the FaultDown batch
};

struct MessageEvent {
  MessageEventKind kind = MessageEventKind::Inject;
  std::uint32_t message = 0;  ///< injection-order id within the run
  std::uint32_t cycle = 0;    ///< 0 = before the first FIFO round
  std::uint32_t channel = kNoChannel;

  friend bool operator==(const MessageEvent&, const MessageEvent&) = default;
};

class EngineObserver {
 public:
  virtual ~EngineObserver() = default;
  virtual void on_cycle(const CycleSnapshot& snapshot) = 0;

  /// Opt-in for per-message events. Sampled once per run; when false the
  /// engine emits nothing and pays only one branch per cycle.
  virtual bool wants_message_events() const { return false; }
  virtual void on_message_event(const MessageEvent& /*event*/) {}

  /// Per-cycle opt-in for the carried channel-state array. Consulted once
  /// per cycle from the coordinating thread; when it returns false the
  /// engine skips the O(channels) occupancy bookkeeping for that cycle
  /// and the snapshot's `carried` is nullptr. Defaults to true so
  /// existing observers see every cycle; sampling observers (telemetry
  /// with every_k > 1) return true only on the cycles they keep.
  virtual bool wants_channel_state(std::uint32_t /*cycle*/) const {
    return true;
  }

  /// Opt-in for per-delivery latency samples. Sampled once per run; when
  /// true the engine tracks each message's injection cycle and fills the
  /// snapshot's `latencies` with this cycle's deliveries.
  virtual bool wants_latency_samples() const { return false; }
};

}  // namespace ft
