// The engine's channel model: every topology the repository simulates
// (fat-tree ChannelId pairs, generic Network links, k-ary n-tree links)
// compiles down to a flat table of capacitated channels, and every message
// compiles down to an ordered list of channel indices. The CycleEngine
// only ever sees this representation, so one simulation core serves all
// routers (see DESIGN.md, "Engine architecture").
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace ft {

/// A message's path: channel indices in traversal order. Empty for local
/// (src == dst) messages, which cost no channel bandwidth.
using EnginePath = std::vector<std::uint32_t>;

/// A batch of paths in CSR form: every channel id in one contiguous
/// buffer, path i occupying channels()[offsets()[i] .. offsets()[i+1]).
/// This is the engine's native input format — the hot loop walks paths as
/// flat index ranges instead of chasing one heap vector per message — and
/// the topology adapters build it directly so a large batch costs two
/// allocations, not one per message.
class PathSet {
 public:
  PathSet() : offsets_{0} {}

  void reserve(std::size_t paths, std::size_t hops) {
    offsets_.reserve(paths + 1);
    channels_.reserve(hops);
  }

  /// Appends one complete path given as an iterator range of channel ids.
  template <typename It>
  void append(It first, It last) {
    channels_.insert(channels_.end(), first, last);
    close_path();
  }

  void push_back(const EnginePath& path) { append(path.begin(), path.end()); }

  /// Streaming interface for builders that emit channels one at a time:
  /// push_channel() any number of times (possibly zero), then close_path().
  void push_channel(std::uint32_t channel) { channels_.push_back(channel); }
  void close_path() {
    FT_CHECK_MSG(channels_.size() < 0xffffffffULL,
                 "PathSet overflows 32-bit hop offsets");
    offsets_.push_back(static_cast<std::uint32_t>(channels_.size()));
  }

  /// Drops every path but keeps the capacity: the chunk-reuse primitive of
  /// the streaming interface (engine/message_source.hpp) — a MessageSource
  /// refills one PathSet per chunk, so a whole run allocates O(chunk), not
  /// O(total messages).
  void clear() {
    offsets_.resize(1);
    channels_.clear();
  }

  /// Appends every path of `other`, rebasing its offsets onto this set.
  void append_set(const PathSet& other) {
    const std::uint64_t total =
        static_cast<std::uint64_t>(channels_.size()) + other.channels_.size();
    FT_CHECK_MSG(total < 0xffffffffULL,
                 "PathSet overflows 32-bit hop offsets");
    const auto base = static_cast<std::uint32_t>(channels_.size());
    channels_.insert(channels_.end(), other.channels_.begin(),
                     other.channels_.end());
    offsets_.reserve(offsets_.size() + other.size());
    for (std::size_t p = 0; p < other.size(); ++p) {
      offsets_.push_back(base + other.offsets_[p + 1]);
    }
  }

  /// One-shot conversion from any container of vector-like paths
  /// (std::vector<EnginePath>, std::vector<Route>, std::vector<KaryRoute>).
  template <typename Paths>
  static PathSet from_paths(const Paths& paths) {
    PathSet set;
    std::size_t hops = 0;
    for (const auto& p : paths) hops += p.size();
    set.reserve(paths.size(), hops);
    for (const auto& p : paths) set.append(p.begin(), p.end());
    return set;
  }

  std::size_t size() const { return offsets_.size() - 1; }
  bool empty() const { return size() == 0; }
  std::uint32_t offset(std::size_t i) const { return offsets_[i]; }
  std::uint32_t length(std::size_t i) const {
    return offsets_[i + 1] - offsets_[i];
  }
  /// Total hops across all paths (== channels().size()).
  std::size_t total_hops() const { return channels_.size(); }

  const std::vector<std::uint32_t>& channels() const { return channels_; }
  const std::vector<std::uint32_t>& offsets() const { return offsets_; }

 private:
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> channels_;
};

/// Flat channel table. Channel indices need not be dense: slots with
/// capacity == 0 are treated as nonexistent (the fat-tree model keeps its
/// node*2+dir indexing, which leaves a few unused slots).
struct ChannelGraph {
  /// Wires (messages per delivery cycle) of each channel; 0 = no channel.
  std::vector<std::uint64_t> capacity;

  /// Arbitration stage of each channel (lossy mode only). Stages are the
  /// engine's causal order: a path's channels must have strictly
  /// increasing stages, and channels that share a stage are independent —
  /// no message uses two of them in one cycle — which is exactly what the
  /// parallel mode exploits. FIFO mode ignores stages.
  std::vector<std::uint32_t> stage;

  /// Instrumentation tag of each channel (fat-tree level; 0 for flat
  /// graphs). Per-level counters in EngineMetrics aggregate over this.
  std::vector<std::uint32_t> level;

  /// Channels that count toward utilization denominators. The fat-tree
  /// model excludes the root's external-interface channel, which internal
  /// traffic can never use.
  std::vector<std::uint8_t> in_wire_budget;

  std::uint32_t num_stages = 1;
  std::uint32_t num_levels = 1;

  /// Subtree-shard partition for the parallel lossy engine (empty when the
  /// builder did not request sharding). shard[c] names the partition that
  /// owns channel c, or kNoShard for "spine" channels above the shard
  /// roots, whose arbitration crosses shards and runs serially. The stage
  /// axis splits into three bands: stages [0, spine_stage_lo) touch only
  /// sharded channels on the way up, [spine_stage_lo, spine_stage_hi) is
  /// the spine, and [spine_stage_hi, num_stages) only sharded channels on
  /// the way down. A message's shard can change at most once, inside the
  /// spine band — the invariant the sharded executor relies on (see
  /// DESIGN.md "Scale-out").
  std::vector<std::uint32_t> shard;
  std::uint32_t num_shards = 0;
  std::uint32_t spine_stage_lo = 0;
  std::uint32_t spine_stage_hi = 0;
  static constexpr std::uint32_t kNoShard = 0xffffffffu;

  std::size_t num_channels() const { return capacity.size(); }

  /// Uniform-metadata constructor for flat link graphs (Network, k-ary):
  /// one stage, one level, every channel in the wire budget.
  static ChannelGraph flat(std::vector<std::uint64_t> caps) {
    ChannelGraph g;
    const std::size_t n = caps.size();
    g.capacity = std::move(caps);
    g.stage.assign(n, 0);
    g.level.assign(n, 0);
    g.in_wire_budget.assign(n, 1);
    g.num_stages = 1;
    g.num_levels = 1;
    return g;
  }

  /// Debug validation of one path against this graph: known channels in
  /// strictly increasing stage order. The strict increase is also the
  /// worklist invariant the engine's hot loop relies on — a message's next
  /// channel always lies in a later stage, so each message is bucketed
  /// exactly once per cycle.
  void check_path(const std::uint32_t* first, const std::uint32_t* last) const {
    std::uint32_t prev_stage = 0;
    bool head = true;
    for (const std::uint32_t* p = first; p != last; ++p) {
      const std::uint32_t c = *p;
      FT_CHECK_MSG(c < num_channels() && capacity[c] > 0,
                   "path uses an unknown channel");
      FT_CHECK_MSG(head || stage[c] > prev_stage,
                   "path stages must strictly increase");
      prev_stage = stage[c];
      head = false;
    }
  }

  void check_path(const EnginePath& path) const {
    check_path(path.data(), path.data() + path.size());
  }
};

}  // namespace ft
