// The engine's channel model: every topology the repository simulates
// (fat-tree ChannelId pairs, generic Network links, k-ary n-tree links)
// compiles down to a flat table of capacitated channels, and every message
// compiles down to an ordered list of channel indices. The CycleEngine
// only ever sees this representation, so one simulation core serves all
// routers (see DESIGN.md, "Engine architecture").
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace ft {

/// A message's path: channel indices in traversal order. Empty for local
/// (src == dst) messages, which cost no channel bandwidth.
using EnginePath = std::vector<std::uint32_t>;

/// Flat channel table. Channel indices need not be dense: slots with
/// capacity == 0 are treated as nonexistent (the fat-tree model keeps its
/// node*2+dir indexing, which leaves a few unused slots).
struct ChannelGraph {
  /// Wires (messages per delivery cycle) of each channel; 0 = no channel.
  std::vector<std::uint64_t> capacity;

  /// Arbitration stage of each channel (lossy mode only). Stages are the
  /// engine's causal order: a path's channels must have strictly
  /// increasing stages, and channels that share a stage are independent —
  /// no message uses two of them in one cycle — which is exactly what the
  /// parallel mode exploits. FIFO mode ignores stages.
  std::vector<std::uint32_t> stage;

  /// Instrumentation tag of each channel (fat-tree level; 0 for flat
  /// graphs). Per-level counters in EngineMetrics aggregate over this.
  std::vector<std::uint32_t> level;

  /// Channels that count toward utilization denominators. The fat-tree
  /// model excludes the root's external-interface channel, which internal
  /// traffic can never use.
  std::vector<std::uint8_t> in_wire_budget;

  std::uint32_t num_stages = 1;
  std::uint32_t num_levels = 1;

  std::size_t num_channels() const { return capacity.size(); }

  /// Uniform-metadata constructor for flat link graphs (Network, k-ary):
  /// one stage, one level, every channel in the wire budget.
  static ChannelGraph flat(std::vector<std::uint64_t> caps) {
    ChannelGraph g;
    const std::size_t n = caps.size();
    g.capacity = std::move(caps);
    g.stage.assign(n, 0);
    g.level.assign(n, 0);
    g.in_wire_budget.assign(n, 1);
    g.num_stages = 1;
    g.num_levels = 1;
    return g;
  }

  /// Debug validation of one path against this graph: known channels in
  /// strictly increasing stage order.
  void check_path(const EnginePath& path) const {
    std::uint32_t prev_stage = 0;
    bool first = true;
    for (const std::uint32_t c : path) {
      FT_CHECK_MSG(c < num_channels() && capacity[c] > 0,
                   "path uses an unknown channel");
      FT_CHECK_MSG(first || stage[c] > prev_stage,
                   "path stages must strictly increase");
      prev_stage = stage[c];
      first = false;
    }
  }
};

}  // namespace ft
