// Round-based delivery simulation on a k-ary n-tree: unit-capacity links,
// synchronous store-and-forward with FIFO link queues. Reports rounds and
// link-load statistics per ascent policy — the E13 ablation.
//
// Routing stays here (it is what the ablation varies); the delivery rounds
// run on the unified CycleEngine with Fifo contention, a KaryRoute being
// already an EnginePath over the tree's dense link ids.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/fault_plan.hpp"
#include "engine/observer.hpp"
#include "engine/phase_profile.hpp"
#include "kary/kary_routing.hpp"

namespace ft {

struct KarySimResult {
  std::uint64_t rounds = 0;
  std::uint64_t delivered = 0;  ///< messages delivered (== perm size when
                                ///< the run completes)
  std::uint64_t max_link_load = 0;
  double mean_link_load = 0.0;
  std::uint32_t max_route_hops = 0;
  std::uint64_t fault_down_events = 0;  ///< link down transitions
  std::uint64_t fault_up_events = 0;    ///< link repair transitions
  std::uint64_t subtree_kill_events = 0;  ///< correlated domain strikes
  /// Wall-clock Amdahl decomposition; all-zero unless
  /// KarySimOptions::time_phases was set.
  EnginePhaseProfile phases;
};

struct KarySimOptions {
  /// Forward links on a thread pool; results are identical to serial mode.
  bool parallel = false;
  std::size_t threads = 0;
  /// Optional per-round instrumentation (engine/observer.hpp). Not owned.
  EngineObserver* observer = nullptr;
  /// Optional transient-fault plan (not owned): a down link forwards
  /// nothing that round, its queue waits.
  const FaultPlan* fault_plan = nullptr;
  /// Time pooled forwarding vs the serial band (KarySimResult::phases).
  bool time_phases = false;
};

/// Routes the permutation under `policy` and simulates delivery.
KarySimResult simulate_kary_permutation(const KaryTree& tree,
                                        const std::vector<std::uint32_t>& perm,
                                        AscentPolicy policy, Rng& rng,
                                        const KarySimOptions& opts = {});

}  // namespace ft
