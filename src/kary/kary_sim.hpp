// Round-based delivery simulation on a k-ary n-tree: unit-capacity links,
// synchronous store-and-forward with FIFO link queues. Reports rounds and
// link-load statistics per ascent policy — the E13 ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "kary/kary_routing.hpp"

namespace ft {

struct KarySimResult {
  std::uint32_t rounds = 0;
  std::uint64_t max_link_load = 0;
  double mean_link_load = 0.0;
  std::uint32_t max_route_hops = 0;
};

/// Routes the permutation under `policy` and simulates delivery.
KarySimResult simulate_kary_permutation(const KaryTree& tree,
                                        const std::vector<std::uint32_t>& perm,
                                        AscentPolicy policy, Rng& rng);

}  // namespace ft
