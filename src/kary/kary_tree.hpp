// k-ary n-trees (Petrini & Vanneschi), the constant-radix folded-Clos
// realization of fat-trees used by modern interconnects. This is the
// repository's forward-looking extension: the 1985 paper's channels
// fatten by adding wires to one switch per node, while practical networks
// fatten by replicating constant-radix switches. The experiments compare
// path-diversity routing policies on this topology (E13).
//
// Topology: P = k^levels processors; `levels` ranks of k^{levels-1}
// switches, each with k up and k down ports (rank 0 = root rank, no up
// ports). Switch (l, w), with w written as levels-1 base-k digits
// w_0..w_{levels-2} (most significant first), connects to switch
// (l+1, w') iff w and w' agree on every digit except digit l. Processor p
// attaches to switch (levels-1, p / k).
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace ft {

class KaryTree {
 public:
  KaryTree(std::uint32_t k, std::uint32_t levels);

  std::uint32_t k() const { return k_; }
  std::uint32_t levels() const { return levels_; }
  std::uint32_t num_processors() const { return num_procs_; }
  std::uint32_t switches_per_level() const { return switches_per_level_; }
  std::uint32_t num_switches() const { return levels_ * switches_per_level_; }

  /// Digit i (most significant first) of a processor id (levels digits) or
  /// switch word (levels-1 digits).
  std::uint32_t proc_digit(std::uint32_t p, std::uint32_t i) const;
  std::uint32_t word_digit(std::uint32_t w, std::uint32_t i) const;
  std::uint32_t set_word_digit(std::uint32_t w, std::uint32_t i,
                               std::uint32_t value) const;

  /// Switch word attached to processor p (digits p_0..p_{levels-2}).
  std::uint32_t switch_of_processor(std::uint32_t p) const { return p / k_; }

  /// Level of the nearest common ancestors of two processors: the length
  /// of the common most-significant digit prefix (== levels means same
  /// edge switch; both processors hang off one switch when
  /// nca_level >= levels - 1).
  std::uint32_t nca_level(std::uint32_t a, std::uint32_t b) const;

  /// Number of distinct shortest up/down paths between two processors:
  /// k^{levels-1-nca} ascent choices (1 when attached to the same switch).
  std::uint64_t path_diversity(std::uint32_t a, std::uint32_t b) const;

  // --- Link-level view for the simulator. Link ids are dense. ---
  // Up link: from switch (l, w) to (l-1, w with digit l-1 := d).
  std::uint32_t up_link_id(std::uint32_t level, std::uint32_t word,
                           std::uint32_t digit) const;
  // Down link: from switch (l, w) to (l+1, w with digit l := d), or, at
  // the edge rank, to processor word*k + d.
  std::uint32_t down_link_id(std::uint32_t level, std::uint32_t word,
                             std::uint32_t digit) const;
  // Injection link: processor p into its edge switch.
  std::uint32_t injection_link_id(std::uint32_t p) const;

  std::uint32_t num_links() const { return num_links_; }

 private:
  std::uint32_t k_;
  std::uint32_t levels_;
  std::uint32_t num_procs_;
  std::uint32_t switches_per_level_;
  std::uint32_t num_links_;
  std::vector<std::uint32_t> pow_k_;  // k^0..k^levels
};

}  // namespace ft
