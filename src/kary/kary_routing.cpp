#include "kary/kary_routing.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ft {

std::uint64_t KaryLoadTracker::max_load() const {
  std::uint64_t m = 0;
  for (auto l : load_) m = std::max(m, l);
  return m;
}

double KaryLoadTracker::mean_positive_load() const {
  std::uint64_t sum = 0, cnt = 0;
  for (auto l : load_) {
    if (l > 0) {
      sum += l;
      ++cnt;
    }
  }
  return cnt ? static_cast<double>(sum) / static_cast<double>(cnt) : 0.0;
}

KaryRoute kary_route(const KaryTree& tree, std::uint32_t src,
                     std::uint32_t dst, AscentPolicy policy, Rng& rng,
                     KaryLoadTracker& tracker) {
  KaryRoute route;
  if (src == dst) return route;

  const std::uint32_t levels = tree.levels();
  const std::uint32_t k = tree.k();
  const std::uint32_t nca = tree.nca_level(src, dst);

  route.push_back(tree.injection_link_id(src));
  tracker.add(route.back());

  std::uint32_t word = tree.switch_of_processor(src);
  std::uint32_t level = levels - 1;

  // Ascend to rank nca (if the switches differ). Each hop from rank l to
  // l-1 rewrites digit l-1 according to the policy.
  while (level > nca) {
    const std::uint32_t digit_index = level - 1;
    std::uint32_t digit = 0;
    switch (policy) {
      case AscentPolicy::DModK:
        digit = dst % k;
        break;
      case AscentPolicy::Random:
        digit = static_cast<std::uint32_t>(rng.below(k));
        break;
      case AscentPolicy::LeastLoaded: {
        std::uint64_t best = ~std::uint64_t{0};
        for (std::uint32_t d = 0; d < k; ++d) {
          const std::uint64_t l = tracker.load(tree.up_link_id(level, word, d));
          if (l < best) {
            best = l;
            digit = d;
          }
        }
        break;
      }
    }
    const std::uint32_t link = tree.up_link_id(level, word, digit);
    route.push_back(link);
    tracker.add(link);
    word = tree.set_word_digit(word, digit_index, digit);
    --level;
  }

  // Descend: digit at each rank is forced by the destination.
  while (level < levels - 1) {
    const std::uint32_t digit = tree.proc_digit(dst, level);
    const std::uint32_t link = tree.down_link_id(level, word, digit);
    route.push_back(link);
    tracker.add(link);
    word = tree.set_word_digit(word, level, digit);
    ++level;
  }
  // Final hop: edge switch to the destination processor.
  const std::uint32_t link =
      tree.down_link_id(levels - 1, word, tree.proc_digit(dst, levels - 1));
  route.push_back(link);
  tracker.add(link);
  FT_CHECK(word == tree.switch_of_processor(dst));
  return route;
}

std::uint64_t route_permutation_congestion(
    const KaryTree& tree, const std::vector<std::uint32_t>& perm,
    AscentPolicy policy, Rng& rng) {
  KaryLoadTracker tracker(tree);
  for (std::uint32_t p = 0; p < perm.size(); ++p) {
    kary_route(tree, p, perm[p], policy, rng, tracker);
  }
  return tracker.max_load();
}

}  // namespace ft
