// Up/down routing on k-ary n-trees with selectable ascent policy. A route
// is a sequence of link ids: injection, up links to the nearest common
// ancestor rank, then forced down links to the destination.
#pragma once

#include <cstdint>
#include <vector>

#include "kary/kary_tree.hpp"
#include "util/prng.hpp"

namespace ft {

enum class AscentPolicy : std::uint8_t {
  DModK,       ///< deterministic: up port = destination mod k everywhere
  Random,      ///< uniform random up port per hop
  LeastLoaded  ///< pick the up port whose link has least accumulated load
};

using KaryRoute = std::vector<std::uint32_t>;  // link ids

/// Accumulated per-link load counters; LeastLoaded consults and updates
/// them, the other policies only update (so experiments can compare the
/// final distribution across policies).
class KaryLoadTracker {
 public:
  explicit KaryLoadTracker(const KaryTree& tree)
      : load_(tree.num_links(), 0) {}

  std::uint64_t load(std::uint32_t link) const { return load_[link]; }
  void add(std::uint32_t link) { ++load_[link]; }
  std::uint64_t max_load() const;
  double mean_positive_load() const;

 private:
  std::vector<std::uint64_t> load_;
};

/// Computes a route from processor src to dst (empty when src == dst) and
/// charges it to the tracker.
KaryRoute kary_route(const KaryTree& tree, std::uint32_t src,
                     std::uint32_t dst, AscentPolicy policy, Rng& rng,
                     KaryLoadTracker& tracker);

/// Link-level congestion of routing a full permutation: the maximum link
/// load, which lower-bounds delivery time on unit-capacity links.
std::uint64_t route_permutation_congestion(const KaryTree& tree,
                                           const std::vector<std::uint32_t>& perm,
                                           AscentPolicy policy, Rng& rng);

}  // namespace ft
