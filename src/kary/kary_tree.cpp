#include "kary/kary_tree.hpp"

namespace ft {

KaryTree::KaryTree(std::uint32_t k, std::uint32_t levels)
    : k_(k), levels_(levels) {
  FT_CHECK(k >= 2 && levels >= 2);
  pow_k_.resize(levels + 1);
  pow_k_[0] = 1;
  for (std::uint32_t i = 1; i <= levels; ++i) {
    pow_k_[i] = pow_k_[i - 1] * k;
    FT_CHECK_MSG(pow_k_[i] / k == pow_k_[i - 1], "k^levels overflows");
  }
  num_procs_ = pow_k_[levels];
  switches_per_level_ = pow_k_[levels - 1];
  // Up links for levels 1..levels-1 (k per switch), down links for every
  // level (k per switch), injection links (1 per processor).
  num_links_ = (levels_ - 1) * switches_per_level_ * k_ +
               levels_ * switches_per_level_ * k_ + num_procs_;
}

std::uint32_t KaryTree::proc_digit(std::uint32_t p, std::uint32_t i) const {
  FT_CHECK(i < levels_);
  return (p / pow_k_[levels_ - 1 - i]) % k_;
}

std::uint32_t KaryTree::word_digit(std::uint32_t w, std::uint32_t i) const {
  FT_CHECK(i + 1 < levels_);
  return (w / pow_k_[levels_ - 2 - i]) % k_;
}

std::uint32_t KaryTree::set_word_digit(std::uint32_t w, std::uint32_t i,
                                       std::uint32_t value) const {
  FT_CHECK(i + 1 < levels_ && value < k_);
  const std::uint32_t weight = pow_k_[levels_ - 2 - i];
  const std::uint32_t old = (w / weight) % k_;
  return w + (value - old) * weight;
}

std::uint32_t KaryTree::nca_level(std::uint32_t a, std::uint32_t b) const {
  std::uint32_t l = 0;
  while (l < levels_ && proc_digit(a, l) == proc_digit(b, l)) ++l;
  return l;
}

std::uint64_t KaryTree::path_diversity(std::uint32_t a,
                                       std::uint32_t b) const {
  const std::uint32_t nca = nca_level(a, b);
  if (nca >= levels_ - 1) return 1;
  // Each of the levels-1-nca ascent hops freely chooses one of k up
  // ports; the descent is then forced.
  std::uint64_t d = 1;
  for (std::uint32_t hop = 0; hop < levels_ - 1 - nca; ++hop) d *= k_;
  return d;
}

std::uint32_t KaryTree::up_link_id(std::uint32_t level, std::uint32_t word,
                                   std::uint32_t digit) const {
  FT_CHECK(level >= 1 && level < levels_);
  FT_CHECK(word < switches_per_level_ && digit < k_);
  return ((level - 1) * switches_per_level_ + word) * k_ + digit;
}

std::uint32_t KaryTree::down_link_id(std::uint32_t level, std::uint32_t word,
                                     std::uint32_t digit) const {
  FT_CHECK(level < levels_);
  FT_CHECK(word < switches_per_level_ && digit < k_);
  const std::uint32_t base = (levels_ - 1) * switches_per_level_ * k_;
  return base + (level * switches_per_level_ + word) * k_ + digit;
}

std::uint32_t KaryTree::injection_link_id(std::uint32_t p) const {
  FT_CHECK(p < num_procs_);
  const std::uint32_t base = (levels_ - 1) * switches_per_level_ * k_ +
                             levels_ * switches_per_level_ * k_;
  return base + p;
}

}  // namespace ft
