#include "kary/kary_sim.hpp"

#include <algorithm>
#include <deque>

#include "util/check.hpp"

namespace ft {

KarySimResult simulate_kary_permutation(const KaryTree& tree,
                                        const std::vector<std::uint32_t>& perm,
                                        AscentPolicy policy, Rng& rng) {
  KarySimResult result;
  KaryLoadTracker tracker(tree);

  std::vector<KaryRoute> routes;
  routes.reserve(perm.size());
  for (std::uint32_t p = 0; p < perm.size(); ++p) {
    routes.push_back(kary_route(tree, p, perm[p], policy, rng, tracker));
    result.max_route_hops = std::max(
        result.max_route_hops,
        static_cast<std::uint32_t>(routes.back().size()));
  }
  result.max_link_load = tracker.max_load();
  result.mean_link_load = tracker.mean_positive_load();

  // Synchronous store-and-forward on unit-capacity links.
  std::vector<std::uint32_t> pos(routes.size(), 0);
  std::vector<std::deque<std::uint32_t>> queues(tree.num_links());
  std::size_t in_flight = 0;
  for (std::uint32_t i = 0; i < routes.size(); ++i) {
    if (routes[i].empty()) continue;
    queues[routes[i][0]].push_back(i);
    ++in_flight;
  }
  while (in_flight > 0) {
    ++result.rounds;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> arrivals;
    bool moved = false;
    for (std::uint32_t lid = 0; lid < tree.num_links(); ++lid) {
      auto& q = queues[lid];
      if (q.empty()) continue;
      const std::uint32_t msg = q.front();
      q.pop_front();
      moved = true;
      if (++pos[msg] == routes[msg].size()) {
        --in_flight;
      } else {
        arrivals.emplace_back(routes[msg][pos[msg]], msg);
      }
    }
    FT_CHECK_MSG(moved, "k-ary simulation made no progress");
    for (const auto& [lid, msg] : arrivals) queues[lid].push_back(msg);
  }
  return result;
}

}  // namespace ft
