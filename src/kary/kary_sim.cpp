#include "kary/kary_sim.hpp"

#include <algorithm>

#include "engine/engine.hpp"
#include "engine/kary_model.hpp"

namespace ft {

KarySimResult simulate_kary_permutation(const KaryTree& tree,
                                        const std::vector<std::uint32_t>& perm,
                                        AscentPolicy policy, Rng& rng,
                                        const KarySimOptions& opts) {
  KarySimResult result;
  KaryLoadTracker tracker(tree);

  std::vector<KaryRoute> routes;
  routes.reserve(perm.size());
  for (std::uint32_t p = 0; p < perm.size(); ++p) {
    routes.push_back(kary_route(tree, p, perm[p], policy, rng, tracker));
    result.max_route_hops = std::max(
        result.max_route_hops,
        static_cast<std::uint32_t>(routes.back().size()));
  }
  result.max_link_load = tracker.max_load();
  result.mean_link_load = tracker.mean_positive_load();

  EngineOptions eopts;
  eopts.contention = ContentionPolicy::Fifo;
  eopts.parallel = opts.parallel;
  eopts.threads = opts.threads;
  eopts.fault_plan = opts.fault_plan;

  CycleEngine engine(kary_channel_graph(tree), eopts);
  const EngineResult er = engine.run(kary_path_set(routes), opts.observer);
  result.rounds = er.cycles;
  result.delivered = er.delivered;
  result.fault_down_events = er.fault_down_events;
  result.fault_up_events = er.fault_up_events;
  result.subtree_kill_events = er.subtree_kill_events;
  return result;
}

}  // namespace ft
