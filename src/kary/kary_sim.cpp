#include "kary/kary_sim.hpp"

#include <algorithm>

#include "engine/engine.hpp"
#include "engine/kary_model.hpp"

namespace ft {

KarySimResult simulate_kary_permutation(const KaryTree& tree,
                                        const std::vector<std::uint32_t>& perm,
                                        AscentPolicy policy, Rng& rng,
                                        const KarySimOptions& opts) {
  KarySimResult result;
  KaryLoadTracker tracker(tree);

  EngineOptions eopts;
  eopts.contention = ContentionPolicy::Fifo;
  eopts.parallel = opts.parallel;
  eopts.threads = opts.threads;
  eopts.fault_plan = opts.fault_plan;
  eopts.time_phases = opts.time_phases;

  CycleEngine engine(kary_channel_graph(tree), eopts);
  // Routes are generated as the engine ingests them; the tracker and
  // max_route_hops are final once run_stream has drained the source.
  KaryRouteSource source(tree, perm, policy, rng, tracker);
  const EngineResult er = engine.run_stream(source, opts.observer);
  result.max_route_hops = source.max_route_hops();
  result.max_link_load = tracker.max_load();
  result.mean_link_load = tracker.mean_positive_load();
  result.rounds = er.cycles;
  result.delivered = er.delivered;
  result.fault_down_events = er.fault_down_events;
  result.fault_up_events = er.fault_up_events;
  result.subtree_kill_events = er.subtree_kill_events;
  result.phases = er.phases;
  return result;
}

}  // namespace ft
