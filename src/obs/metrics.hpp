// Metrics registry for the observability layer: named counters, gauges,
// and fixed-bin histograms with uniform JSON export. EngineMetrics — the
// ready-made CycleEngine observer shared by all four simulator frontends
// (route_online, replay_schedule, simulate_store_forward,
// simulate_kary_permutation) — is built on the registry, and ObserverFanout
// lets several observers (metrics + trace sink) ride one engine run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engine/observer.hpp"
#include "obs/json.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace ft {

class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

// Histogram (closed top bin, explicit underflow/overflow) lives in
// util/stats.hpp — the registry reuses it for named instruments.

/// Named instruments with get-or-create semantics and deterministic
/// (insertion-order) JSON export. Handles returned by counter()/gauge()/
/// histogram() stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Re-requesting an existing histogram asserts the same shape.
  Histogram& histogram(std::string_view name, double lo, double hi,
                       std::size_t bins);

  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  /// Zeroes every instrument but keeps registrations (and handles) alive.
  void reset();

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {lo, hi,
  ///  bins: [...], underflow, overflow}}} — empty sections omitted.
  JsonValue to_json() const;

 private:
  // Deques would also work; unique_ptr keeps handles stable under growth.
  template <typename T>
  using Named = std::vector<std::pair<std::string, std::unique_ptr<T>>>;
  Named<Counter> counters_;
  Named<Gauge> gauges_;
  Named<Histogram> histograms_;
};

/// Ready-made observer: per-cycle and per-level counters plus a channel
/// utilization histogram — the instrumentation consumed by the bench/
/// experiments and RunReports. Reusable across runs over the *same*
/// topology shape via plain aggregation; observing a graph of a different
/// shape without reset() is a checked error (it used to silently blend
/// per-level tallies of different topologies).
class EngineMetrics final : public EngineObserver {
 public:
  static constexpr std::size_t kHistogramBins = 10;

  EngineMetrics();

  void on_cycle(const CycleSnapshot& s) override;

  void reset();

  std::uint32_t cycles() const {
    return static_cast<std::uint32_t>(delivered_per_cycle.size());
  }
  std::uint64_t total_attempts() const { return attempts_->value(); }
  std::uint64_t total_losses() const { return losses_->value(); }
  std::uint64_t total_delivered() const { return delivered_->value(); }
  double loss_rate() const {
    const std::uint64_t a = total_attempts();
    return a == 0 ? 0.0
                  : static_cast<double>(total_losses()) /
                        static_cast<double>(a);
  }
  std::uint32_t peak_queue_depth() const {
    return static_cast<std::uint32_t>(peak_queue_->value());
  }

  // Fault / retry lifecycle (all zero on fault-free runs).
  std::uint64_t fault_down_events() const { return fault_down_->value(); }
  std::uint64_t fault_up_events() const { return fault_up_->value(); }
  std::uint64_t subtree_kill_events() const { return subtree_kills_->value(); }
  std::uint64_t total_backoffs() const { return backoffs_->value(); }
  std::uint64_t messages_given_up() const { return gave_up_->value(); }
  std::uint64_t degraded_channel_cycles() const {
    return degraded_->value();
  }
  std::uint32_t peak_channels_down() const {
    return static_cast<std::uint32_t>(peak_down_->value());
  }
  /// Fraction of usable channel-cycles at full capacity: 1 −
  /// degraded_channel_cycles / (usable channels × cycles). 1.0 for
  /// fault-free or empty runs.
  double availability() const;

  /// Mean carried/capacity over channel-cycles at one level tag.
  double level_utilization(std::uint32_t level) const;
  std::uint32_t num_levels() const {
    return static_cast<std::uint32_t>(carried_by_level_.size());
  }

  /// Per-channel-per-cycle utilization histogram over [0, 1]; overloaded
  /// channel-cycles (carried > capacity) land in overflow().
  const Histogram& utilization_histogram() const { return *util_hist_; }

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }

  /// Registry instruments plus the per-level utilization profile — the
  /// "engine" section of a RunReport.
  JsonValue to_json() const;

  // Per-cycle counters, index = cycle - 1.
  std::vector<std::uint64_t> attempts_per_cycle;
  std::vector<std::uint64_t> losses_per_cycle;
  std::vector<std::uint32_t> delivered_per_cycle;

 private:
  MetricsRegistry registry_;
  Counter* attempts_;
  Counter* losses_;
  Counter* delivered_;
  Counter* fault_down_;
  Counter* fault_up_;
  Counter* subtree_kills_;
  Counter* backoffs_;
  Counter* gave_up_;
  Counter* degraded_;
  Gauge* peak_queue_;
  Gauge* peak_down_;
  Histogram* util_hist_;
  /// Channels with nonzero capacity in the observed graph — the
  /// availability denominator per cycle.
  std::uint64_t usable_channels_ = 0;
  // Per-level tallies over all cycles, index = ChannelGraph::level.
  std::vector<std::uint64_t> carried_by_level_;
  std::vector<std::uint64_t> capacity_by_level_;
  // Shape of the first graph observed since reset(); guards against
  // silently blending runs over different topologies.
  std::size_t graph_channels_ = 0;
  std::uint32_t graph_levels_ = 0;
  bool graph_seen_ = false;
};

/// Fans one engine run out to several observers (e.g. EngineMetrics plus
/// a TraceSink). Message events are forwarded only to targets that want
/// them.
class ObserverFanout final : public EngineObserver {
 public:
  /// nullptr targets are ignored, so optional observers chain cleanly.
  void add(EngineObserver* target) {
    if (target != nullptr) targets_.push_back(target);
  }

  void on_cycle(const CycleSnapshot& s) override {
    for (EngineObserver* t : targets_) t->on_cycle(s);
  }
  bool wants_message_events() const override {
    for (const EngineObserver* t : targets_) {
      if (t->wants_message_events()) return true;
    }
    return false;
  }
  void on_message_event(const MessageEvent& e) override {
    for (EngineObserver* t : targets_) {
      if (t->wants_message_events()) t->on_message_event(e);
    }
  }
  bool wants_channel_state(std::uint32_t cycle) const override {
    for (const EngineObserver* t : targets_) {
      if (t->wants_channel_state(cycle)) return true;
    }
    return false;
  }
  bool wants_latency_samples() const override {
    for (const EngineObserver* t : targets_) {
      if (t->wants_latency_samples()) return true;
    }
    return false;
  }

 private:
  std::vector<EngineObserver*> targets_;
};

}  // namespace ft
