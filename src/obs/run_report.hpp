// RunReport: the one JSON schema every observability-enabled binary emits
// (ftsim, exp_online_routing, exp_utilization, exp_fault_tolerance, and
// the BENCH_engine.json metadata header). A report carries build identity
// (git sha, timestamp, host), the run parameters, per-run results, and
// wall-clock phase timings from lightweight scope timers — so the perf
// trajectory of any future PR is comparable run-to-run and machine-to-
// machine.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "engine/phase_profile.hpp"
#include "obs/json.hpp"

namespace ft {

/// The "amdahl" section of a /2 run report: the engine's measured
/// wall-clock phase decomposition plus the derived serial fraction.
/// {"up_seconds", "spine_seconds", "down_seconds", "coord_seconds",
///  "timed_cycles", "parallel_seconds", "serial_seconds",
///  "serial_fraction"}.
JsonValue phase_profile_json(const EnginePhaseProfile& p);

/// Short git revision baked in at configure time (FT_GIT_SHA), "unknown"
/// outside a git checkout.
std::string build_git_sha();

/// Current UTC wall-clock time as ISO 8601 ("2026-08-07T12:34:56Z").
std::string timestamp_utc_iso8601();

/// std::thread::hardware_concurrency(), 0 when unknown.
unsigned host_hardware_threads();

/// Peak resident set size of this process in bytes (getrusage ru_maxrss),
/// 0 when the platform cannot report it. Monotone over the process
/// lifetime — sample once per phase to attribute growth.
std::uint64_t host_peak_rss_bytes();

/// Named wall-clock phase accumulator. Scopes are cheap (one
/// steady_clock read at each end) and re-entering a name accumulates.
class PhaseTimers {
 public:
  class Scope {
   public:
    Scope(Scope&& other) noexcept
        : timers_(other.timers_), name_(std::move(other.name_)),
          start_(other.start_) {
      other.timers_ = nullptr;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope& operator=(Scope&&) = delete;
    ~Scope() { stop(); }

    /// Idempotent early stop.
    void stop();

   private:
    friend class PhaseTimers;
    Scope(PhaseTimers* timers, std::string name)
        : timers_(timers), name_(std::move(name)),
          start_(std::chrono::steady_clock::now()) {}

    PhaseTimers* timers_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
  };

  [[nodiscard]] Scope scope(std::string name) {
    return Scope(this, std::move(name));
  }
  void add(std::string_view name, double seconds);
  /// 0 when the phase never ran.
  double seconds(std::string_view name) const;

  /// {"phase": seconds, ...} in first-use order.
  JsonValue to_json() const;

 private:
  std::vector<std::pair<std::string, double>> phases_;
};

/// Schema-versioned run report. The constructor stamps schema, tool name,
/// git sha, timestamp, and host info; callers fill params() and add_run()
/// entries, then write().
class RunReport {
 public:
  /// Version history: /1 — identity + params + runs + phases;
  /// /2 — runs may additionally carry a "telemetry" section
  /// (TelemetryProbe::to_json: time series, top channels, latency
  /// quantile digests) and an "amdahl" section (EnginePhaseProfile).
  /// Purely additive, so /1 consumers can read /2 reports.
  static constexpr const char* kSchema = "ft.run_report/2";

  explicit RunReport(std::string tool);

  JsonValue& root() { return root_; }
  const JsonValue& root() const { return root_; }

  /// The "params" object (created on first use).
  JsonValue& params() { return root_["params"]; }

  /// Appends {"name": name} to the "runs" array and returns it for the
  /// caller to fill.
  JsonValue& add_run(std::string_view name);

  /// Attaches timers as root["phases"].
  void set_phases(const PhaseTimers& timers) {
    root_["phases"] = timers.to_json();
  }

  void write(std::ostream& os) const;
  /// Returns false (and prints to stderr) when the file cannot be
  /// written.
  bool write_file(const std::string& path) const;

  /// Parses a previously written report (round-trip testing, tooling).
  static std::optional<JsonValue> read_file(const std::string& path);

 private:
  JsonValue root_;
};

}  // namespace ft
