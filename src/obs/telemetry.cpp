#include "obs/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>

#include "util/check.hpp"

namespace ft {
namespace {

/// Order-sensitive FNV-1a over 64-bit words.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
inline std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t mix_ring(std::uint64_t h, const TelemetryRing& ring) {
  h = fnv_mix(h, ring.samples().size());
  for (const TelemetrySample& s : ring.samples()) {
    h = fnv_mix(h, s.start_cycle);
    h = fnv_mix(h, (static_cast<std::uint64_t>(s.span) << 32) | s.count);
    h = fnv_mix(h, s.value);
  }
  return h;
}

std::uint64_t mix_digest(std::uint64_t h, const QuantileDigest& d) {
  h = fnv_mix(h, d.count());
  const auto& buckets = d.buckets();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    h = fnv_mix(h, i);
    h = fnv_mix(h, buckets[i]);
  }
  return h;
}

JsonValue sample_json(const TelemetrySample& s) {
  JsonValue out = JsonValue::object();
  out["start"] = s.start_cycle;
  out["span"] = s.span;
  out["count"] = s.count;
  out["value"] = s.value;
  return out;
}

JsonValue digest_json(const QuantileDigest& d, double scale) {
  JsonValue out = JsonValue::object();
  out["count"] = d.count();
  out["min"] = static_cast<double>(d.min()) * scale;
  out["max"] = static_cast<double>(d.max()) * scale;
  out["mean"] = d.mean() * scale;
  out["p50"] = static_cast<double>(d.quantile(0.50)) * scale;
  out["p95"] = static_cast<double>(d.quantile(0.95)) * scale;
  out["p99"] = static_cast<double>(d.quantile(0.99)) * scale;
  out["p999"] = static_cast<double>(d.quantile(0.999)) * scale;
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// TelemetryRing

TelemetryRing::TelemetryRing(std::size_t capacity)
    : capacity_(std::max<std::size_t>(2, capacity + (capacity & 1))) {
  samples_.reserve(capacity_);
}

void TelemetryRing::commit(const TelemetrySample& s) {
  if (samples_.size() == capacity_) {
    // In-place pairwise merge: capacity is even, so this halves occupancy
    // exactly; the stride doubles so later commits cover twice the base
    // windows and the series keeps covering the whole run.
    const std::size_t half = samples_.size() / 2;
    for (std::size_t i = 0; i < half; ++i) {
      const TelemetrySample& a = samples_[2 * i];
      const TelemetrySample& b = samples_[2 * i + 1];
      samples_[i] = {a.start_cycle, a.span + b.span, a.count + b.count,
                     a.value + b.value};
    }
    samples_.resize(half);
    stride_ *= 2;
  }
  samples_.push_back(s);
}

void TelemetryRing::push(std::uint64_t start_cycle, std::uint32_t span,
                         std::uint32_t sampled, std::uint64_t value) {
  if (pending_windows_ == 0) {
    pending_ = {start_cycle, 0, 0, 0};
  }
  pending_.span += span;
  pending_.count += sampled;
  pending_.value += value;
  total_value_ += value;
  total_count_ += sampled;
  if (++pending_windows_ >= stride_) {
    commit(pending_);
    pending_windows_ = 0;
  }
}

void TelemetryRing::flush() {
  if (pending_windows_ == 0) return;
  commit(pending_);
  pending_windows_ = 0;
}

void TelemetryRing::clear() {
  samples_.clear();
  stride_ = 1;
  pending_ = {};
  pending_windows_ = 0;
  total_value_ = 0;
  total_count_ = 0;
}

// ---------------------------------------------------------------------------
// SpaceSavingSketch

SpaceSavingSketch::SpaceSavingSketch(std::size_t k)
    : k_(std::max<std::size_t>(1, k)) {
  entries_.reserve(k_);
}

void SpaceSavingSketch::add(std::uint64_t key, std::uint64_t weight,
                            std::uint32_t tag) {
  if (weight == 0) return;
  total_ += weight;
  for (Entry& e : entries_) {
    if (e.key == key) {
      e.count += weight;
      return;
    }
  }
  if (entries_.size() < k_) {
    entries_.push_back({key, weight, 0, tag});
    return;
  }
  // Evict the minimum-count entry (first such slot — deterministic); the
  // newcomer inherits its count as overestimation error.
  std::size_t min_i = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].count < entries_[min_i].count) min_i = i;
  }
  Entry& slot = entries_[min_i];
  slot.error = slot.count;
  slot.count += weight;
  slot.key = key;
  slot.tag = tag;
}

std::vector<SpaceSavingSketch::Entry> SpaceSavingSketch::top() const {
  std::vector<Entry> out = entries_;
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  return out;
}

void SpaceSavingSketch::clear() {
  entries_.clear();
  total_ = 0;
}

// ---------------------------------------------------------------------------
// QuantileDigest

QuantileDigest::QuantileDigest() {
  // 64 exact buckets + 32 per octave for values in [64, 2^64).
  buckets_.assign(kLinearCutoff + (64 - 6) * kSubBuckets, 0);
}

std::uint32_t QuantileDigest::bucket_index(std::uint64_t v) {
  if (v < kLinearCutoff) return static_cast<std::uint32_t>(v);
  const auto e = static_cast<std::uint32_t>(std::bit_width(v) - 1);  // >= 6
  const auto sub = static_cast<std::uint32_t>((v >> (e - 5)) & 31u);
  return kLinearCutoff + (e - 6) * kSubBuckets + sub;
}

std::uint64_t QuantileDigest::bucket_upper(std::uint32_t idx) {
  if (idx < kLinearCutoff) return idx;
  const std::uint32_t e = 6 + (idx - kLinearCutoff) / kSubBuckets;
  const std::uint32_t sub = (idx - kLinearCutoff) % kSubBuckets;
  const std::uint64_t lo =
      (1ull << e) + (static_cast<std::uint64_t>(sub) << (e - 5));
  return lo + ((1ull << (e - 5)) - 1);
}

void QuantileDigest::add(std::uint64_t value, std::uint64_t weight) {
  if (weight == 0) return;
  buckets_[bucket_index(value)] += weight;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  count_ += weight;
  sum_ += value * weight;
}

double QuantileDigest::mean() const {
  return count_ == 0
             ? 0.0
             : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t QuantileDigest::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  const std::uint64_t target = std::max<std::uint64_t>(1, rank);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= target) {
      // Clamp to the exact extremes: the top bucket's upper bound can
      // overshoot max(), and conservative rounding never needs to
      // undershoot min().
      return std::min(max_, std::max(min_, bucket_upper(
                                               static_cast<std::uint32_t>(i))));
    }
  }
  return max_;
}

void QuantileDigest::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

// ---------------------------------------------------------------------------
// TelemetryProbe

namespace {
TelemetryOptions sanitize(TelemetryOptions o) {
  o.every_k = std::max(1u, o.every_k);
  o.ring_capacity = std::max<std::size_t>(2, o.ring_capacity);
  o.top_k = std::max<std::size_t>(1, o.top_k);
  return o;
}
}  // namespace

TelemetryProbe::TelemetryProbe(TelemetryOptions opts)
    : opts_(sanitize(opts)), sketch_(opts_.top_k),
      attempts_(opts_.ring_capacity), losses_(opts_.ring_capacity),
      delivered_(opts_.ring_capacity), backoffs_(opts_.ring_capacity),
      gave_up_(opts_.ring_capacity), pending_(opts_.ring_capacity),
      channels_down_(opts_.ring_capacity) {}

bool TelemetryProbe::wants_channel_state(std::uint32_t cycle) const {
  return opts_.every_k <= 1 || (cycle - 1) % opts_.every_k == 0;
}

void TelemetryProbe::flush_window() {
  if (win_.cycles == 0) return;
  attempts_.push(win_.start, win_.cycles, win_.cycles, win_.attempts);
  losses_.push(win_.start, win_.cycles, win_.cycles, win_.losses);
  delivered_.push(win_.start, win_.cycles, win_.cycles, win_.delivered);
  backoffs_.push(win_.start, win_.cycles, win_.cycles, win_.backoffs);
  gave_up_.push(win_.start, win_.cycles, win_.cycles, win_.gave_up);
  pending_.push(win_.start, win_.cycles, win_.cycles, win_.pending);
  channels_down_.push(win_.start, win_.cycles, win_.cycles,
                      win_.channels_down);
  win_ = {};
}

void TelemetryProbe::on_cycle(const CycleSnapshot& s) {
  ++cycles_seen_;

  // Global counter series: every cycle folds into the current window so
  // totals conserve exactly at any sampling rate.
  if (win_.cycles == 0) win_.start = s.cycle;
  ++win_.cycles;
  win_.attempts += s.attempts;
  win_.losses += s.losses;
  win_.delivered += s.delivered;
  win_.backoffs += s.backoffs;
  win_.gave_up += s.gave_up;
  win_.pending += s.pending_before;
  win_.channels_down += s.channels_down;
  if (win_.cycles >= opts_.every_k) flush_window();

  if (opts_.latency && s.latencies != nullptr) {
    for (const LatencySample& l : *s.latencies) {
      latency_.add(l.latency);
      // The lossy engine's ideal is always 1 (one contention-free cycle);
      // skip the rounding divide on that hot path.
      const std::uint64_t milli =
          l.ideal <= 1
              ? static_cast<std::uint64_t>(l.latency) * 1000
              : (static_cast<std::uint64_t>(l.latency) * 1000 + l.ideal / 2) /
                    l.ideal;
      stretch_.add(milli);
    }
  }

  // Channel-state family: only on sampled cycles (the engine hands
  // carried == nullptr on the rest, and a fanout partner may force it on
  // cycles we did not ask for — skip those to keep this probe's streams
  // independent of co-observers).
  if (s.graph == nullptr || s.carried == nullptr ||
      !wants_channel_state(s.cycle)) {
    return;
  }
  const ChannelGraph& g = *s.graph;
  if (graph_seen_) {
    FT_CHECK_MSG(
        g.num_channels() == graph_channels_ && g.num_levels == graph_levels_,
        "TelemetryProbe observed a different graph shape; call reset() "
        "between runs over different topologies");
  } else {
    graph_seen_ = true;
    graph_channels_ = g.num_channels();
    graph_levels_ = g.num_levels;
    level_carried_.assign(g.num_levels, TelemetryRing(opts_.ring_capacity));
    level_capacity_.assign(g.num_levels, 0);
    scan_ = build_channel_scan(g);
    for (const ChannelScanEntry& e : scan_) {
      level_capacity_[e.level] += g.capacity[e.channel];
    }
  }

  // One O(channels) aggregation scan per sampled cycle: per-level
  // occupancy sums plus the per-level argmax-carried channel, which is
  // the (deterministic) candidate feed of the hottest-channel sketch —
  // O(levels) sketch adds per sample instead of O(channels).
  const std::uint32_t levels = graph_levels_;
  level_sum_.assign(levels, 0);
  argmax_chan_.assign(levels, 0);
  argmax_val_.assign(levels, 0);
  const std::uint32_t* carried = s.carried->data();
  for (const ChannelScanEntry& e : scan_) {
    const std::uint32_t v = carried[e.channel];
    level_sum_[e.level] += v;
    if (v > argmax_val_[e.level]) {
      argmax_val_[e.level] = v;
      argmax_chan_[e.level] = e.channel;
    }
  }
  for (std::uint32_t lvl = 0; lvl < levels; ++lvl) {
    level_carried_[lvl].push(s.cycle, opts_.every_k, 1, level_sum_[lvl]);
    if (argmax_val_[lvl] > 0) {
      sketch_.add(argmax_chan_[lvl], argmax_val_[lvl], lvl);
    }
  }
}

const TelemetryRing& TelemetryProbe::level_series(std::uint32_t level) const {
  FT_CHECK_MSG(level < level_carried_.size(), "telemetry level out of range");
  return level_carried_[level];
}

std::uint64_t TelemetryProbe::level_capacity(std::uint32_t level) const {
  FT_CHECK_MSG(level < level_capacity_.size(), "telemetry level out of range");
  return level_capacity_[level];
}

const TelemetryRing* TelemetryProbe::series(std::string_view name) const {
  if (name == "attempts") return &attempts_;
  if (name == "losses") return &losses_;
  if (name == "delivered") return &delivered_;
  if (name == "backoffs") return &backoffs_;
  if (name == "gave_up") return &gave_up_;
  if (name == "pending") return &pending_;
  if (name == "channels_down") return &channels_down_;
  return nullptr;
}

void TelemetryProbe::finalize() {
  flush_window();
  for (TelemetryRing& r : level_carried_) r.flush();
  attempts_.flush();
  losses_.flush();
  delivered_.flush();
  backoffs_.flush();
  gave_up_.flush();
  pending_.flush();
  channels_down_.flush();
}

std::uint64_t TelemetryProbe::fingerprint() {
  finalize();
  std::uint64_t h = kFnvOffset;
  h = fnv_mix(h, cycles_seen_);
  h = fnv_mix(h, level_carried_.size());
  for (std::size_t lvl = 0; lvl < level_carried_.size(); ++lvl) {
    h = fnv_mix(h, level_capacity_[lvl]);
    h = mix_ring(h, level_carried_[lvl]);
  }
  for (const char* name : {"attempts", "losses", "delivered", "backoffs",
                           "gave_up", "pending", "channels_down"}) {
    h = mix_ring(h, *series(name));
  }
  h = fnv_mix(h, sketch_.total_weight());
  for (const SpaceSavingSketch::Entry& e : sketch_.top()) {
    h = fnv_mix(h, e.key);
    h = fnv_mix(h, e.count);
    h = fnv_mix(h, e.error);
    h = fnv_mix(h, e.tag);
  }
  h = mix_digest(h, latency_);
  h = mix_digest(h, stretch_);
  return h;
}

JsonValue TelemetryProbe::to_json() {
  finalize();
  JsonValue out = JsonValue::object();
  JsonValue& cfg = out["config"];
  cfg["every_k"] = opts_.every_k;
  cfg["ring_capacity"] = static_cast<std::uint64_t>(opts_.ring_capacity);
  cfg["top_k"] = static_cast<std::uint64_t>(opts_.top_k);
  cfg["latency"] = opts_.latency;
  out["cycles"] = cycles_seen_;
  out["fingerprint_hex"] = [this] {
    char buf[17];
    std::uint64_t h = fingerprint();
    for (int i = 15; i >= 0; --i) {
      buf[i] = "0123456789abcdef"[h & 0xf];
      h >>= 4;
    }
    buf[16] = '\0';
    return std::string(buf);
  }();

  JsonValue& levels = out["levels"];
  levels = JsonValue::array();
  for (std::uint32_t lvl = 0; lvl < num_levels(); ++lvl) {
    JsonValue entry = JsonValue::object();
    entry["level"] = lvl;
    entry["capacity"] = level_capacity_[lvl];
    entry["stride"] = level_carried_[lvl].stride();
    JsonValue& samples = entry["samples"];
    samples = JsonValue::array();
    for (const TelemetrySample& sm : level_carried_[lvl].samples()) {
      JsonValue s = sample_json(sm);
      const double denom = static_cast<double>(level_capacity_[lvl]) *
                           static_cast<double>(sm.count);
      s["utilization"] =
          denom > 0.0 ? static_cast<double>(sm.value) / denom : 0.0;
      samples.push_back(std::move(s));
    }
    levels.push_back(std::move(entry));
  }

  JsonValue& series = out["series"];
  series = JsonValue::object();
  for (const char* name : {"attempts", "losses", "delivered", "backoffs",
                           "gave_up", "pending", "channels_down"}) {
    JsonValue& arr = series[name];
    arr = JsonValue::array();
    for (const TelemetrySample& sm : this->series(name)->samples()) {
      arr.push_back(sample_json(sm));
    }
  }

  JsonValue& tops = out["top_channels"];
  tops = JsonValue::array();
  for (const SpaceSavingSketch::Entry& e : sketch_.top()) {
    JsonValue t = JsonValue::object();
    t["channel"] = e.key;
    t["level"] = e.tag;
    t["count"] = e.count;
    t["error"] = e.error;
    tops.push_back(std::move(t));
  }

  if (opts_.latency) {
    out["latency"] = digest_json(latency_, 1.0);
    out["stretch"] = digest_json(stretch_, 1e-3);
  }
  return out;
}

void TelemetryProbe::write_heatmap_csv(std::ostream& os) {
  finalize();
  os << "level,start_cycle,span,sampled_cycles,carried,utilization\n";
  for (std::uint32_t lvl = 0; lvl < num_levels(); ++lvl) {
    for (const TelemetrySample& sm : level_carried_[lvl].samples()) {
      const double denom = static_cast<double>(level_capacity_[lvl]) *
                           static_cast<double>(sm.count);
      const double util =
          denom > 0.0 ? static_cast<double>(sm.value) / denom : 0.0;
      os << lvl << ',' << sm.start_cycle << ',' << sm.span << ',' << sm.count
         << ',' << sm.value << ',' << util << '\n';
    }
  }
}

void TelemetryProbe::write_heatmap_jsonl(std::ostream& os) {
  finalize();
  const auto write_line = [&os](JsonValue& line) {
    line.write(os, 0);
    os << '\n';
  };
  for (std::uint32_t lvl = 0; lvl < num_levels(); ++lvl) {
    for (const TelemetrySample& sm : level_carried_[lvl].samples()) {
      JsonValue line = sample_json(sm);
      line["type"] = "series";
      line["name"] = "level" + std::to_string(lvl) + ".carried";
      line["level"] = lvl;
      const double denom = static_cast<double>(level_capacity_[lvl]) *
                           static_cast<double>(sm.count);
      line["utilization"] =
          denom > 0.0 ? static_cast<double>(sm.value) / denom : 0.0;
      write_line(line);
    }
  }
  for (const char* name : {"attempts", "losses", "delivered", "backoffs",
                           "gave_up", "pending", "channels_down"}) {
    for (const TelemetrySample& sm : series(name)->samples()) {
      JsonValue line = sample_json(sm);
      line["type"] = "series";
      line["name"] = name;
      write_line(line);
    }
  }
  {
    JsonValue line = JsonValue::object();
    line["type"] = "top_channels";
    line["total_weight"] = sketch_.total_weight();
    JsonValue& arr = line["channels"];
    arr = JsonValue::array();
    for (const SpaceSavingSketch::Entry& e : sketch_.top()) {
      JsonValue t = JsonValue::object();
      t["channel"] = e.key;
      t["level"] = e.tag;
      t["count"] = e.count;
      t["error"] = e.error;
      arr.push_back(std::move(t));
    }
    write_line(line);
  }
  if (opts_.latency) {
    JsonValue line = JsonValue::object();
    line["type"] = "latency";
    line["latency"] = digest_json(latency_, 1.0);
    line["stretch"] = digest_json(stretch_, 1e-3);
    write_line(line);
  }
}

void TelemetryProbe::write_chrome_trace(std::ostream& os) {
  finalize();
  // Matches TraceSink's tick convention: cycle c starts at (c - 1) * 1000.
  constexpr std::uint64_t kTicksPerCycle = 1000;
  JsonValue doc = JsonValue::object();
  JsonValue& ev = doc["traceEvents"];
  ev = JsonValue::array();
  const auto counter = [](std::string name, std::uint64_t ts) {
    JsonValue e = JsonValue::object();
    e["name"] = std::move(name);
    e["ph"] = "C";
    e["ts"] = ts;
    e["pid"] = 0;
    return e;
  };
  for (std::uint32_t lvl = 0; lvl < num_levels(); ++lvl) {
    const std::string name = "level" + std::to_string(lvl) + ".utilization";
    for (const TelemetrySample& sm : level_carried_[lvl].samples()) {
      JsonValue e = counter(
          name, (sm.start_cycle > 0 ? sm.start_cycle - 1 : 0) *
                    kTicksPerCycle);
      const double denom = static_cast<double>(level_capacity_[lvl]) *
                           static_cast<double>(sm.count);
      e["args"]["utilization"] =
          denom > 0.0 ? static_cast<double>(sm.value) / denom : 0.0;
      ev.push_back(std::move(e));
    }
  }
  for (const char* name : {"pending", "losses", "delivered"}) {
    for (const TelemetrySample& sm : series(name)->samples()) {
      JsonValue e = counter(
          name, (sm.start_cycle > 0 ? sm.start_cycle - 1 : 0) *
                    kTicksPerCycle);
      // Report the per-cycle mean so downsampled windows chart on the
      // same scale as full-resolution ones.
      e["args"][name] =
          sm.count > 0
              ? static_cast<double>(sm.value) / static_cast<double>(sm.count)
              : 0.0;
      ev.push_back(std::move(e));
    }
  }
  doc["displayTimeUnit"] = "ms";
  JsonValue& other = doc["otherData"];
  other["ticks_per_cycle"] = kTicksPerCycle;
  doc.write(os, 1);
  os << '\n';
}

void TelemetryProbe::reset() {
  graph_seen_ = false;
  graph_channels_ = 0;
  graph_levels_ = 0;
  cycles_seen_ = 0;
  level_carried_.clear();
  level_capacity_.clear();
  scan_.clear();
  level_sum_.clear();
  argmax_chan_.clear();
  argmax_val_.clear();
  sketch_.clear();
  win_ = {};
  attempts_.clear();
  losses_.clear();
  delivered_.clear();
  backoffs_.clear();
  gave_up_.clear();
  pending_.clear();
  channels_down_.clear();
  latency_.clear();
  stretch_.clear();
}

}  // namespace ft
