#include "obs/metrics.hpp"

#include <cmath>

namespace ft {
namespace {

template <typename T>
T* find_named(std::vector<std::pair<std::string, std::unique_ptr<T>>>& v,
              std::string_view name) {
  for (auto& [k, p] : v) {
    if (k == name) return p.get();
  }
  return nullptr;
}

template <typename T>
const T* find_named(
    const std::vector<std::pair<std::string, std::unique_ptr<T>>>& v,
    std::string_view name) {
  for (const auto& [k, p] : v) {
    if (k == name) return p.get();
  }
  return nullptr;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  if (Counter* c = find_named(counters_, name)) return *c;
  counters_.emplace_back(std::string(name), std::make_unique<Counter>());
  return *counters_.back().second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  if (Gauge* g = find_named(gauges_, name)) return *g;
  gauges_.emplace_back(std::string(name), std::make_unique<Gauge>());
  return *gauges_.back().second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, double lo,
                                      double hi, std::size_t bins) {
  if (Histogram* h = find_named(histograms_, name)) {
    FT_CHECK_MSG(h->lo() == lo && h->hi() == hi && h->num_bins() == bins,
                 "histogram re-registered with a different shape");
    return *h;
  }
  histograms_.emplace_back(std::string(name),
                           std::make_unique<Histogram>(lo, hi, bins));
  return *histograms_.back().second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  return find_named(counters_, name);
}
const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  return find_named(gauges_, name);
}
const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  return find_named(histograms_, name);
}

void MetricsRegistry::reset() {
  for (auto& [k, c] : counters_) c->reset();
  for (auto& [k, g] : gauges_) g->reset();
  for (auto& [k, h] : histograms_) h->reset();
}

JsonValue MetricsRegistry::to_json() const {
  JsonValue out = JsonValue::object();
  if (!counters_.empty()) {
    JsonValue& c = out["counters"];
    for (const auto& [k, v] : counters_) c[k] = v->value();
  }
  if (!gauges_.empty()) {
    JsonValue& g = out["gauges"];
    for (const auto& [k, v] : gauges_) g[k] = v->value();
  }
  if (!histograms_.empty()) {
    JsonValue& hs = out["histograms"];
    for (const auto& [k, v] : histograms_) {
      JsonValue& h = hs[k];
      h["lo"] = v->lo();
      h["hi"] = v->hi();
      JsonValue& bins = h["bins"];
      bins = JsonValue::array();
      for (std::size_t i = 0; i < v->num_bins(); ++i) {
        bins.push_back(v->bin_count(i));
      }
      h["underflow"] = v->underflow();
      h["overflow"] = v->overflow();
    }
  }
  return out;
}

EngineMetrics::EngineMetrics()
    : attempts_(&registry_.counter("engine.attempts")),
      losses_(&registry_.counter("engine.losses")),
      delivered_(&registry_.counter("engine.delivered")),
      fault_down_(&registry_.counter("engine.fault_down_events")),
      fault_up_(&registry_.counter("engine.fault_up_events")),
      subtree_kills_(&registry_.counter("engine.subtree_kill_events")),
      backoffs_(&registry_.counter("engine.backoffs")),
      gave_up_(&registry_.counter("engine.messages_given_up")),
      degraded_(&registry_.counter("engine.degraded_channel_cycles")),
      peak_queue_(&registry_.gauge("engine.peak_queue_depth")),
      peak_down_(&registry_.gauge("engine.peak_channels_down")),
      util_hist_(&registry_.histogram("engine.channel_utilization", 0.0, 1.0,
                                      kHistogramBins)) {}

void EngineMetrics::on_cycle(const CycleSnapshot& s) {
  attempts_per_cycle.push_back(s.attempts);
  losses_per_cycle.push_back(s.losses);
  delivered_per_cycle.push_back(s.delivered);
  attempts_->add(s.attempts);
  losses_->add(s.losses);
  delivered_->add(s.delivered);
  fault_down_->add(s.faults_down);
  fault_up_->add(s.faults_up);
  subtree_kills_->add(s.subtree_kills);
  backoffs_->add(s.backoffs);
  gave_up_->add(s.gave_up);
  degraded_->add(s.degraded_channels);
  if (s.peak_queue > peak_queue_->value()) peak_queue_->set(s.peak_queue);
  if (s.channels_down > peak_down_->value()) peak_down_->set(s.channels_down);
  if (s.graph == nullptr || s.carried == nullptr) return;

  const ChannelGraph& g = *s.graph;
  if (graph_seen_) {
    // Aggregating over a different topology shape silently blends
    // incomparable per-level tallies; make the caller reset() first.
    FT_CHECK_MSG(
        g.num_channels() == graph_channels_ && g.num_levels == graph_levels_,
        "EngineMetrics observed a different graph shape; call reset() "
        "between runs over different topologies");
  } else {
    graph_seen_ = true;
    graph_channels_ = g.num_channels();
    graph_levels_ = g.num_levels;
    carried_by_level_.assign(g.num_levels, 0);
    capacity_by_level_.assign(g.num_levels, 0);
    usable_channels_ = 0;
    for (std::size_t c = 0; c < g.num_channels(); ++c) {
      if (g.capacity[c] > 0) ++usable_channels_;
    }
  }

  for (std::size_t c = 0; c < g.num_channels(); ++c) {
    if (g.capacity[c] == 0 || !g.in_wire_budget[c]) continue;
    const std::uint32_t carried = (*s.carried)[c];
    carried_by_level_[g.level[c]] += carried;
    capacity_by_level_[g.level[c]] += g.capacity[c];
    util_hist_->observe(static_cast<double>(carried) /
                        static_cast<double>(g.capacity[c]));
  }
}

void EngineMetrics::reset() {
  registry_.reset();
  attempts_per_cycle.clear();
  losses_per_cycle.clear();
  delivered_per_cycle.clear();
  carried_by_level_.clear();
  capacity_by_level_.clear();
  usable_channels_ = 0;
  graph_channels_ = 0;
  graph_levels_ = 0;
  graph_seen_ = false;
}

double EngineMetrics::availability() const {
  const std::uint64_t denom =
      usable_channels_ * static_cast<std::uint64_t>(cycles());
  if (denom == 0) return 1.0;
  return 1.0 - static_cast<double>(degraded_->value()) /
                   static_cast<double>(denom);
}

double EngineMetrics::level_utilization(std::uint32_t level) const {
  if (level >= carried_by_level_.size() || capacity_by_level_[level] == 0) {
    return 0.0;
  }
  return static_cast<double>(carried_by_level_[level]) /
         static_cast<double>(capacity_by_level_[level]);
}

JsonValue EngineMetrics::to_json() const {
  JsonValue out = registry_.to_json();
  out["cycles"] = cycles();
  out["loss_rate"] = loss_rate();
  out["availability"] = availability();
  JsonValue& levels = out["level_utilization"];
  levels = JsonValue::array();
  for (std::uint32_t k = 0; k < num_levels(); ++k) {
    levels.push_back(level_utilization(k));
  }
  return out;
}

}  // namespace ft
