// TraceSink: records the CycleEngine's per-cycle snapshots and per-message
// lifecycle events (inject, attempt, hop, loss, deliver, give-up) and
// exports them as line-oriented JSONL or Chrome trace_event JSON that
// loads directly in chrome://tracing and ui.perfetto.dev. Recording rides
// the engine's serial callback path, so the captured event stream is
// identical for serial and parallel runs of the same seed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "engine/observer.hpp"

namespace ft {

/// Per-cycle scalars copied out of a CycleSnapshot plus the per-level
/// carried tally (computed from the graph's level tags while the
/// snapshot's borrowed pointers are still valid).
struct TraceCycleRecord {
  std::uint32_t cycle = 0;
  std::size_t pending_before = 0;
  std::uint32_t delivered = 0;
  std::uint64_t attempts = 0;
  std::uint64_t losses = 0;
  std::uint32_t peak_queue = 0;
  // Fault / retry lifecycle (zero on fault-free runs; omitted from the
  // JSONL cycle record when zero so fault-free output is unchanged).
  std::uint32_t faults_down = 0;
  std::uint32_t faults_up = 0;
  std::uint32_t subtree_kills = 0;
  std::uint32_t channels_down = 0;
  std::uint64_t degraded_channels = 0;
  std::uint32_t backoffs = 0;
  std::uint32_t gave_up = 0;
  std::vector<std::uint64_t> carried_by_level;
  /// Message events recorded so far when this cycle closed — events with
  /// index < events_end belong to this cycle or an earlier one.
  std::size_t events_end = 0;
};

struct TraceOptions {
  /// Record per-message lifecycle events (the expensive part: one event
  /// per message per cycle in lossy mode). Cycle records are always kept.
  bool message_events = true;
  /// Cap on recorded message events; 0 = unbounded. Excess events are
  /// dropped and counted so a truncated trace is detectable.
  std::size_t max_events = 0;
};

class TraceSink final : public EngineObserver {
 public:
  explicit TraceSink(TraceOptions opts = {}) : opts_(opts) {}

  void on_cycle(const CycleSnapshot& s) override;
  bool wants_message_events() const override { return opts_.message_events; }
  void on_message_event(const MessageEvent& e) override;

  const std::vector<MessageEvent>& message_events() const { return events_; }
  const std::vector<TraceCycleRecord>& cycle_records() const {
    return cycles_;
  }
  std::uint64_t dropped_events() const { return dropped_; }
  void clear();

  /// One JSON object per line, message events interleaved before their
  /// cycle's record:
  ///   {"type":"inject","msg":3,"cycle":1,"channel":7}
  ///   {"type":"cycle","cycle":1,"delivered":12,...}
  void write_jsonl(std::ostream& os) const;

  /// Chrome trace_event JSON: delivery cycles as duration slices ("X",
  /// kTicksPerCycle µs each, strictly increasing ts), engine counters as
  /// counter tracks ("C"), message events as instants ("i") offset within
  /// their cycle's slice by event kind so intra-cycle order survives.
  void write_chrome_trace(std::ostream& os) const;

  /// Ticks (Chrome trace µs) per delivery cycle.
  static constexpr std::uint64_t kTicksPerCycle = 1000;

  static const char* kind_name(MessageEventKind k);

 private:
  TraceOptions opts_;
  std::vector<MessageEvent> events_;
  std::vector<TraceCycleRecord> cycles_;
  std::uint64_t dropped_ = 0;
};

}  // namespace ft
