// Minimal JSON document model for the observability layer: build a value
// tree, write it with stable (insertion-order) keys, and parse it back.
// One representation serves every machine-readable artifact the repo
// emits — run reports, trace files, BENCH_*.json — so their schemas stay
// uniform and round-trip testable without an external dependency.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ft {

class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;
  JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
  JsonValue(double d) : kind_(Kind::Number), rep_(NumRep::Double), num_(d) {}
  JsonValue(std::int64_t i) : kind_(Kind::Number), rep_(NumRep::Int), int_(i) {}
  JsonValue(std::uint64_t u)
      : kind_(Kind::Number), rep_(NumRep::Uint), uint_(u) {}
  JsonValue(int i) : JsonValue(static_cast<std::int64_t>(i)) {}
  JsonValue(unsigned u) : JsonValue(static_cast<std::uint64_t>(u)) {}
  JsonValue(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
  JsonValue(const char* s) : kind_(Kind::String), str_(s) {}

  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  /// Object lookup, creating the key (and coercing a null value into an
  /// object) on first use — the natural way to build documents.
  JsonValue& operator[](std::string_view key);
  /// Const lookup: nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Array append (coerces a null value into an array).
  JsonValue& push_back(JsonValue v);

  /// Element count of an array or object; 0 otherwise.
  std::size_t size() const;
  const JsonValue& at(std::size_t i) const;

  bool as_bool() const { return bool_; }
  double as_double() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  const std::string& as_string() const { return str_; }

  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return obj_;
  }
  const std::vector<JsonValue>& items() const { return arr_; }

  /// Pretty-printed when indent > 0, single-line when indent == 0.
  void write(std::ostream& os, int indent = 2) const;
  std::string dump(int indent = 2) const;

  /// Strict-enough parser for everything this repo writes (objects,
  /// arrays, strings with escapes, numbers, bools, null). Returns nullopt
  /// on malformed input or trailing garbage.
  static std::optional<JsonValue> parse(std::string_view text);

 private:
  enum class NumRep : std::uint8_t { Double, Int, Uint };

  void write_impl(std::ostream& os, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  NumRep rep_ = NumRep::Double;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

}  // namespace ft
