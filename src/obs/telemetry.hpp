// Congestion observatory: bounded-memory time-series telemetry for the
// delivery-cycle engine. A TelemetryProbe rides the EngineObserver seam
// and samples per-cycle engine state into three signal families:
//
//   1. Per-tree-level occupancy/utilization series (plus global
//      loss/backoff/attempt/... counter series) in fixed-capacity ring
//      buffers that downsample 2x in place when full, and a top-K
//      hottest-channel tracker (space-saving sketch). A 2^20-leaf,
//      10^5-cycle run stays O(levels x ring capacity + K), never
//      O(channels x cycles).
//   2. Delivery-latency quantile digests (p50/p95/p99/p999 of latency
//      cycles and of stretch = latency / contention-free latency), fed by
//      the engine's per-delivery samples (wants_latency_samples()).
//   3. Nothing wall-clock: phase timings live in EngineResult::phases
//      (EngineOptions::time_phases), deliberately outside the probe so
//      telemetry streams stay bit-deterministic.
//
// Every sample is captured on the engine's serial coordination path, so a
// serial run and a sharded-parallel run (any shard level, with or without
// fault plans) produce identical telemetry streams — pinned by
// fingerprint() in test_telemetry. With the probe detached the engine is
// untouched; with it attached, simulation results stay bit-identical
// (observers never influence arbitration).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "engine/channel_scan.hpp"
#include "engine/observer.hpp"
#include "obs/json.hpp"

namespace ft {

/// One committed window of a telemetry time series: `value` summed over
/// `count` sampled cycles inside [start_cycle, start_cycle + span).
struct TelemetrySample {
  std::uint64_t start_cycle = 0;
  std::uint32_t span = 0;
  std::uint32_t count = 0;
  std::uint64_t value = 0;
};

/// Fixed-capacity time-series ring with automatic 2x downsampling: when a
/// commit would exceed the capacity, adjacent samples merge pairwise in
/// place (halving occupancy) and the commit stride doubles, so the series
/// always covers the whole run in at most `capacity` windows. Pushed
/// windows must have non-decreasing start cycles. Invariants (pinned by
/// test_telemetry): timestamps strictly increase, windows stay contiguous
/// when pushes are contiguous, and the summed value/count over samples()
/// plus the pending partial window conserve everything ever pushed.
class TelemetryRing {
 public:
  explicit TelemetryRing(std::size_t capacity = kDefaultCapacity);

  /// Appends one base window. The ring accumulates `stride()` consecutive
  /// base windows per committed sample.
  void push(std::uint64_t start_cycle, std::uint32_t span,
            std::uint32_t sampled, std::uint64_t value);

  /// Commits the pending partial window (if any) so samples() covers
  /// every push. Call once at end of run; pushing after flush() starts a
  /// fresh pending window and stays correct.
  void flush();

  const std::vector<TelemetrySample>& samples() const { return samples_; }
  std::size_t capacity() const { return capacity_; }
  /// Base windows folded into each committed sample (doubles on every
  /// downsample).
  std::uint32_t stride() const { return stride_; }
  std::uint64_t total_value() const { return total_value_; }
  std::uint64_t total_count() const { return total_count_; }

  void clear();

 private:
  static constexpr std::size_t kDefaultCapacity = 256;

  void commit(const TelemetrySample& s);

  std::size_t capacity_;
  std::uint32_t stride_ = 1;
  std::vector<TelemetrySample> samples_;
  TelemetrySample pending_{};
  std::uint32_t pending_windows_ = 0;
  std::uint64_t total_value_ = 0;
  std::uint64_t total_count_ = 0;
};

/// Space-saving heavy-hitter sketch (Metwally et al.): at most `k`
/// tracked keys; an untracked arrival evicts the minimum-count entry and
/// inherits its count as `error`. Guarantees (pinned by test_telemetry):
/// true_count <= count, count - error <= true_count, and
/// error <= total_weight / k — so every key with true weight above
/// total/k is present. Deterministic: scans resolve ties by first
/// (lowest) slot, and top() orders by count desc then key asc.
class SpaceSavingSketch {
 public:
  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t count = 0;
    std::uint64_t error = 0;
    std::uint32_t tag = 0;  ///< caller-defined (the probe stores the level)
  };

  explicit SpaceSavingSketch(std::size_t k = 16);

  void add(std::uint64_t key, std::uint64_t weight = 1, std::uint32_t tag = 0);

  /// Entries sorted by count descending, key ascending.
  std::vector<Entry> top() const;
  std::size_t capacity() const { return k_; }
  std::uint64_t total_weight() const { return total_; }

  void clear();

 private:
  std::size_t k_;
  std::vector<Entry> entries_;  ///< unordered, linear-scanned (k is small)
  std::uint64_t total_ = 0;
};

/// Bounded-memory quantile digest over unsigned values: exact below 64,
/// log-bucketed above (32 sub-buckets per octave, so quantiles carry at
/// most ~3% relative error). Reported quantiles use each bucket's upper
/// bound (conservative for tail latencies); min/max are exact.
class QuantileDigest {
 public:
  QuantileDigest();

  void add(std::uint64_t value, std::uint64_t weight = 1);

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const;
  /// Value at quantile q in [0, 1] (0 when empty).
  std::uint64_t quantile(double q) const;
  /// Raw bucket counts (fingerprinting, tests).
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  void clear();

 private:
  static constexpr std::uint32_t kLinearCutoff = 64;  ///< exact below this
  static constexpr std::uint32_t kSubBuckets = 32;    ///< per octave

  static std::uint32_t bucket_index(std::uint64_t v);
  static std::uint64_t bucket_upper(std::uint32_t idx);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

struct TelemetryOptions {
  /// Sample channel state (per-level occupancy + top-K tracker) every
  /// k-th cycle; 1 observes every cycle. Scalar counter series always
  /// cover every cycle (accumulated into every_k-cycle windows) so their
  /// totals conserve regardless of sampling. The default of 4 is the
  /// fidelity/overhead balance point: channel-state capture is the one
  /// per-cycle O(channels) cost (and the engine skips per-channel carried
  /// accounting on unsampled cycles), and at k = 4 the measured
  /// engine-throughput overhead at n = 2^16 stays within the 5% budget
  /// (see BENCH_engine.json's telemetry_overhead section). Use 1 for
  /// full-resolution analysis runs.
  std::uint32_t every_k = 4;
  /// Committed samples per series ring (2x-downsampled beyond this).
  std::size_t ring_capacity = 256;
  /// Tracked hottest channels.
  std::size_t top_k = 16;
  /// Collect per-delivery latency/stretch digests (engine-side sampling
  /// is skipped entirely when false).
  bool latency = true;
};

/// The observer. Attach to any engine run (alone or in an
/// ObserverFanout); export with to_json() / write_heatmap_csv() /
/// write_heatmap_jsonl() / write_chrome_trace() after the run.
class TelemetryProbe final : public EngineObserver {
 public:
  explicit TelemetryProbe(TelemetryOptions opts = {});

  void on_cycle(const CycleSnapshot& s) override;
  bool wants_channel_state(std::uint32_t cycle) const override;
  bool wants_latency_samples() const override { return opts_.latency; }

  const TelemetryOptions& options() const { return opts_; }
  std::uint64_t cycles_seen() const { return cycles_seen_; }
  std::uint32_t num_levels() const {
    return static_cast<std::uint32_t>(level_carried_.size());
  }
  /// Per-level occupancy series (sum of carried over the level's
  /// in-budget channels, one base window per sampled cycle).
  const TelemetryRing& level_series(std::uint32_t level) const;
  /// Aggregate wire capacity of the level (utilization denominator).
  std::uint64_t level_capacity(std::uint32_t level) const;
  /// Named global counter series: "attempts", "losses", "delivered",
  /// "backoffs", "gave_up", "pending", "channels_down". nullptr for an
  /// unknown name.
  const TelemetryRing* series(std::string_view name) const;
  const SpaceSavingSketch& top_channels() const { return sketch_; }
  const QuantileDigest& latency_digest() const { return latency_; }
  /// Stretch digest in milli-units (1000 = stretch 1.0).
  const QuantileDigest& stretch_digest() const { return stretch_; }

  /// Commits partial windows so the exports below cover every observed
  /// cycle. Idempotent; called implicitly by the exports.
  void finalize();

  /// Order-sensitive FNV-1a fingerprint of every deterministic signal
  /// (series samples, sketch entries, digest buckets) — the serial ==
  /// sharded-parallel parity witness.
  std::uint64_t fingerprint();

  /// The "telemetry" section of a RunReport (schema ft.run_report/2):
  /// config, per-level + global series, top channels, latency digests.
  JsonValue to_json();

  /// Level x time heatmap, one row per (level, window):
  /// level,start_cycle,span,sampled_cycles,carried,utilization.
  void write_heatmap_csv(std::ostream& os);
  /// JSONL export: one "series" line per committed window (levels and
  /// globals), then one "top_channels" line and one "latency" line.
  void write_heatmap_jsonl(std::ostream& os);
  /// Chrome trace_event counter ("C") events: per-level utilization plus
  /// pending/losses tracks, ts = start_cycle * 1000 ticks (matches
  /// TraceSink::kTicksPerCycle).
  void write_chrome_trace(std::ostream& os);

  void reset();

 private:
  void flush_window();

  TelemetryOptions opts_;
  // Graph-shape guard, same discipline as EngineMetrics.
  bool graph_seen_ = false;
  std::size_t graph_channels_ = 0;
  std::uint32_t graph_levels_ = 0;

  std::uint64_t cycles_seen_ = 0;

  // Signal family 1: per-level occupancy rings (one base window per
  // sampled cycle) + hottest-channel sketch.
  std::vector<TelemetryRing> level_carried_;
  std::vector<std::uint64_t> level_capacity_;
  /// Compact (channel, level) list of in-budget channels, built once per
  /// graph: the per-sampled-cycle aggregation scan touches only live
  /// channels instead of the full (half-empty) channel index space.
  /// Shared definition with the engine's adaptive-occupancy scan
  /// (engine/channel_scan.hpp).
  std::vector<ChannelScanEntry> scan_;
  SpaceSavingSketch sketch_;
  /// Per-level scratch for one sampled cycle's aggregation scan: the
  /// level occupancy sums and the argmax-carried channel per level that
  /// feeds the sketch.
  std::vector<std::uint64_t> level_sum_;
  std::vector<std::uint32_t> argmax_chan_;
  std::vector<std::uint32_t> argmax_val_;

  // Global counter series: accumulated every cycle, committed as one
  // base window per every_k cycles so totals conserve exactly.
  struct Window {
    std::uint64_t start = 0;
    std::uint32_t cycles = 0;
    std::uint64_t attempts = 0;
    std::uint64_t losses = 0;
    std::uint64_t delivered = 0;
    std::uint64_t backoffs = 0;
    std::uint64_t gave_up = 0;
    std::uint64_t pending = 0;
    std::uint64_t channels_down = 0;
  };
  Window win_;
  TelemetryRing attempts_, losses_, delivered_, backoffs_, gave_up_,
      pending_, channels_down_;

  // Signal family 2: latency digests.
  QuantileDigest latency_;
  QuantileDigest stretch_;  ///< milli-units
};

}  // namespace ft
