#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace ft {
namespace {

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

/// Shortest round-trip representation; JSON has no inf/nan, emit null.
void write_double(std::ostream& os, double d) {
  if (d != d || d == 1.0 / 0.0 || d == -1.0 / 0.0) {
    os << "null";
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, d);
  FT_CHECK(ec == std::errc{});
  os.write(buf, ptr - buf);
}

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  bool eat(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool eat_word(std::string_view w) {
    if (text.substr(pos, w.size()) == w) {
      pos += w.size();
      return true;
    }
    return false;
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return false;
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return false;
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            // UTF-8 encode the BMP code point (we never write surrogate
            // pairs; a lone surrogate decodes as-is for tolerance).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default:
            return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > 128) return false;
    skip_ws();
    if (pos >= text.size()) return false;
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out = JsonValue::object();
      skip_ws();
      if (eat('}')) return true;
      for (;;) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (!eat(':')) return false;
        JsonValue v;
        if (!parse_value(v, depth + 1)) return false;
        out[key] = std::move(v);
        skip_ws();
        if (eat(',')) continue;
        return eat('}');
      }
    }
    if (c == '[') {
      ++pos;
      out = JsonValue::array();
      skip_ws();
      if (eat(']')) return true;
      for (;;) {
        JsonValue v;
        if (!parse_value(v, depth + 1)) return false;
        out.push_back(std::move(v));
        skip_ws();
        if (eat(',')) continue;
        return eat(']');
      }
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = JsonValue(std::move(s));
      return true;
    }
    if (eat_word("true")) {
      out = JsonValue(true);
      return true;
    }
    if (eat_word("false")) {
      out = JsonValue(false);
      return true;
    }
    if (eat_word("null")) {
      out = JsonValue();
      return true;
    }
    // Number: scan the token, prefer integer representations.
    const std::size_t start = pos;
    if (eat('-')) {
    }
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    const std::string_view tok = text.substr(start, pos - start);
    if (tok.empty()) return false;
    const bool integral =
        tok.find('.') == std::string_view::npos &&
        tok.find('e') == std::string_view::npos &&
        tok.find('E') == std::string_view::npos;
    if (integral && tok[0] != '-') {
      std::uint64_t u = 0;
      const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), u);
      if (ec == std::errc{} && p == tok.data() + tok.size()) {
        out = JsonValue(u);
        return true;
      }
    }
    if (integral) {
      std::int64_t i = 0;
      const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), i);
      if (ec == std::errc{} && p == tok.data() + tok.size()) {
        out = JsonValue(i);
        return true;
      }
    }
    double d = 0.0;
    const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc{} || p != tok.data() + tok.size()) return false;
    out = JsonValue(d);
    return true;
  }
};

}  // namespace

JsonValue& JsonValue::operator[](std::string_view key) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  FT_CHECK_MSG(kind_ == Kind::Object, "operator[] on a non-object JsonValue");
  for (auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  obj_.emplace_back(std::string(key), JsonValue());
  return obj_.back().second;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue& JsonValue::push_back(JsonValue v) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  FT_CHECK_MSG(kind_ == Kind::Array, "push_back on a non-array JsonValue");
  arr_.push_back(std::move(v));
  return arr_.back();
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::Array) return arr_.size();
  if (kind_ == Kind::Object) return obj_.size();
  return 0;
}

const JsonValue& JsonValue::at(std::size_t i) const {
  FT_CHECK_MSG(kind_ == Kind::Array && i < arr_.size(),
               "JsonValue::at out of range");
  return arr_[i];
}

double JsonValue::as_double() const {
  switch (rep_) {
    case NumRep::Double: return num_;
    case NumRep::Int: return static_cast<double>(int_);
    case NumRep::Uint: return static_cast<double>(uint_);
  }
  return 0.0;
}

std::int64_t JsonValue::as_int() const {
  switch (rep_) {
    case NumRep::Double: return static_cast<std::int64_t>(num_);
    case NumRep::Int: return int_;
    case NumRep::Uint: return static_cast<std::int64_t>(uint_);
  }
  return 0;
}

std::uint64_t JsonValue::as_uint() const {
  switch (rep_) {
    case NumRep::Double: return static_cast<std::uint64_t>(num_);
    case NumRep::Int: return static_cast<std::uint64_t>(int_);
    case NumRep::Uint: return uint_;
  }
  return 0;
}

void JsonValue::write_impl(std::ostream& os, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    os << '\n';
    for (int i = 0; i < indent * d; ++i) os << ' ';
  };
  switch (kind_) {
    case Kind::Null:
      os << "null";
      break;
    case Kind::Bool:
      os << (bool_ ? "true" : "false");
      break;
    case Kind::Number:
      if (rep_ == NumRep::Int) {
        os << int_;
      } else if (rep_ == NumRep::Uint) {
        os << uint_;
      } else {
        write_double(os, num_);
      }
      break;
    case Kind::String:
      write_escaped(os, str_);
      break;
    case Kind::Array: {
      if (arr_.empty()) {
        os << "[]";
        break;
      }
      os << '[';
      bool first = true;
      for (const JsonValue& v : arr_) {
        if (!first) os << ',';
        first = false;
        newline(depth + 1);
        v.write_impl(os, indent, depth + 1);
      }
      newline(depth);
      os << ']';
      break;
    }
    case Kind::Object: {
      if (obj_.empty()) {
        os << "{}";
        break;
      }
      os << '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) os << ',';
        first = false;
        newline(depth + 1);
        write_escaped(os, k);
        os << (indent > 0 ? ": " : ":");
        v.write_impl(os, indent, depth + 1);
      }
      newline(depth);
      os << '}';
      break;
    }
  }
}

void JsonValue::write(std::ostream& os, int indent) const {
  write_impl(os, indent, 0);
}

std::string JsonValue::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  Parser p{text};
  JsonValue v;
  if (!p.parse_value(v, 0)) return std::nullopt;
  p.skip_ws();
  if (p.pos != text.size()) return std::nullopt;
  return v;
}

}  // namespace ft
