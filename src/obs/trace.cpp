#include "obs/trace.hpp"

#include <ostream>

#include "obs/json.hpp"

namespace ft {
namespace {

/// Intra-cycle tick offset per event kind: events of one cycle land inside
/// the cycle's [start, start + kTicksPerCycle) slice in lifecycle order.
std::uint64_t kind_offset(MessageEventKind k) {
  switch (k) {
    case MessageEventKind::SubtreeKill: return 30;
    case MessageEventKind::FaultDown: return 40;
    case MessageEventKind::FaultUp: return 50;
    case MessageEventKind::Inject: return 100;
    case MessageEventKind::Attempt: return 200;
    case MessageEventKind::Hop: return 500;
    case MessageEventKind::Loss: return 700;
    case MessageEventKind::Deliver: return 800;
    case MessageEventKind::Backoff: return 850;
    case MessageEventKind::GiveUp: return 900;
  }
  return 0;
}

std::uint64_t cycle_start_ticks(std::uint32_t cycle) {
  // Cycle numbering is 1-based (0 = FIFO injection "round 0"); map cycle c
  // to tick c * kTicksPerCycle so round 0 starts at tick 0.
  return static_cast<std::uint64_t>(cycle) * TraceSink::kTicksPerCycle;
}

JsonValue event_args(const MessageEvent& e) {
  JsonValue args = JsonValue::object();
  // Channel-state events (FaultDown/FaultUp) carry no message id, and a
  // SubtreeKill's channel field is the struck domain's node label.
  if (e.message != kNoMessage) args["message"] = e.message;
  args["cycle"] = e.cycle;
  if (e.channel != kNoChannel) {
    args[e.kind == MessageEventKind::SubtreeKill ? "node" : "channel"] =
        e.channel;
  }
  return args;
}

}  // namespace

const char* TraceSink::kind_name(MessageEventKind k) {
  switch (k) {
    case MessageEventKind::Inject: return "inject";
    case MessageEventKind::Attempt: return "attempt";
    case MessageEventKind::Hop: return "hop";
    case MessageEventKind::Loss: return "loss";
    case MessageEventKind::Deliver: return "deliver";
    case MessageEventKind::Backoff: return "backoff";
    case MessageEventKind::GiveUp: return "give_up";
    case MessageEventKind::FaultDown: return "fault_down";
    case MessageEventKind::FaultUp: return "fault_up";
    case MessageEventKind::SubtreeKill: return "subtree_kill";
  }
  return "unknown";
}

void TraceSink::on_cycle(const CycleSnapshot& s) {
  TraceCycleRecord rec;
  rec.cycle = s.cycle;
  rec.pending_before = s.pending_before;
  rec.delivered = s.delivered;
  rec.attempts = s.attempts;
  rec.losses = s.losses;
  rec.peak_queue = s.peak_queue;
  rec.faults_down = s.faults_down;
  rec.faults_up = s.faults_up;
  rec.subtree_kills = s.subtree_kills;
  rec.channels_down = s.channels_down;
  rec.degraded_channels = s.degraded_channels;
  rec.backoffs = s.backoffs;
  rec.gave_up = s.gave_up;
  rec.events_end = events_.size();
  if (s.graph != nullptr && s.carried != nullptr) {
    rec.carried_by_level.assign(s.graph->num_levels, 0);
    for (std::size_t c = 0; c < s.graph->num_channels(); ++c) {
      if (s.graph->capacity[c] == 0) continue;
      rec.carried_by_level[s.graph->level[c]] += (*s.carried)[c];
    }
  }
  cycles_.push_back(std::move(rec));
}

void TraceSink::on_message_event(const MessageEvent& e) {
  if (opts_.max_events != 0 && events_.size() >= opts_.max_events) {
    ++dropped_;
    return;
  }
  events_.push_back(e);
}

void TraceSink::clear() {
  events_.clear();
  cycles_.clear();
  dropped_ = 0;
}

void TraceSink::write_jsonl(std::ostream& os) const {
  std::size_t next_event = 0;
  const auto flush_events = [&](std::size_t end) {
    for (; next_event < end && next_event < events_.size(); ++next_event) {
      const MessageEvent& e = events_[next_event];
      JsonValue line = JsonValue::object();
      line["type"] = kind_name(e.kind);
      if (e.message != kNoMessage) line["msg"] = e.message;
      line["cycle"] = e.cycle;
      if (e.channel != kNoChannel) {
        line[e.kind == MessageEventKind::SubtreeKill ? "node" : "channel"] =
            e.channel;
      }
      line.write(os, 0);
      os << '\n';
    }
  };
  for (const TraceCycleRecord& rec : cycles_) {
    flush_events(rec.events_end);
    JsonValue line = JsonValue::object();
    line["type"] = "cycle";
    line["cycle"] = rec.cycle;
    line["pending_before"] = static_cast<std::uint64_t>(rec.pending_before);
    line["delivered"] = rec.delivered;
    line["attempts"] = rec.attempts;
    line["losses"] = rec.losses;
    if (rec.peak_queue != 0) line["peak_queue"] = rec.peak_queue;
    if (rec.faults_down != 0) line["faults_down"] = rec.faults_down;
    if (rec.faults_up != 0) line["faults_up"] = rec.faults_up;
    if (rec.subtree_kills != 0) line["subtree_kills"] = rec.subtree_kills;
    if (rec.channels_down != 0) line["channels_down"] = rec.channels_down;
    if (rec.degraded_channels != 0) {
      line["degraded_channels"] = rec.degraded_channels;
    }
    if (rec.backoffs != 0) line["backoffs"] = rec.backoffs;
    if (rec.gave_up != 0) line["gave_up"] = rec.gave_up;
    if (!rec.carried_by_level.empty()) {
      JsonValue& lv = line["carried_by_level"];
      lv = JsonValue::array();
      for (const std::uint64_t c : rec.carried_by_level) lv.push_back(c);
    }
    line.write(os, 0);
    os << '\n';
  }
  // Events past the last cycle record (give-ups after the engine stopped).
  flush_events(events_.size());
  if (dropped_ != 0) {
    JsonValue line = JsonValue::object();
    line["type"] = "dropped_events";
    line["count"] = dropped_;
    line.write(os, 0);
    os << '\n';
  }
}

void TraceSink::write_chrome_trace(std::ostream& os) const {
  JsonValue doc = JsonValue::object();
  JsonValue& ev = doc["traceEvents"];
  ev = JsonValue::array();

  const auto base = [](const char* name, const char* ph, std::uint64_t ts) {
    JsonValue e = JsonValue::object();
    e["name"] = name;
    e["ph"] = ph;
    e["ts"] = ts;
    e["pid"] = 0;
    return e;
  };

  // Delivery cycles as duration slices on tid 0, in strictly increasing
  // ts order (the acceptance check for a well-formed trace).
  for (const TraceCycleRecord& rec : cycles_) {
    const std::uint64_t start = cycle_start_ticks(rec.cycle - 1);
    JsonValue slice = base("cycle", "X", start);
    slice["tid"] = 0;
    slice["dur"] = kTicksPerCycle;
    slice["cat"] = "engine";
    JsonValue& args = slice["args"];
    args["cycle"] = rec.cycle;
    args["pending_before"] = static_cast<std::uint64_t>(rec.pending_before);
    args["delivered"] = rec.delivered;
    args["attempts"] = rec.attempts;
    args["losses"] = rec.losses;
    if (rec.peak_queue != 0) args["peak_queue"] = rec.peak_queue;
    if (rec.channels_down != 0) args["channels_down"] = rec.channels_down;
    if (rec.backoffs != 0) args["backoffs"] = rec.backoffs;
    if (rec.gave_up != 0) args["gave_up"] = rec.gave_up;
    ev.push_back(std::move(slice));

    JsonValue pending = base("pending", "C", start);
    pending["args"]["pending"] = static_cast<std::uint64_t>(rec.pending_before);
    ev.push_back(std::move(pending));

    JsonValue flow = base("throughput", "C", start);
    flow["args"]["delivered"] = rec.delivered;
    flow["args"]["losses"] = rec.losses;
    ev.push_back(std::move(flow));
  }

  // Message lifecycle events as instants on tid 1, offset within their
  // cycle's slice by kind so the lifecycle order is visible in the UI.
  for (const MessageEvent& e : events_) {
    const std::uint32_t cycle_index = e.cycle == 0 ? 0 : e.cycle - 1;
    JsonValue inst =
        base(kind_name(e.kind), "i",
             cycle_start_ticks(cycle_index) + kind_offset(e.kind));
    inst["tid"] = 1;
    inst["cat"] = "message";
    inst["s"] = "g";
    inst["args"] = event_args(e);
    ev.push_back(std::move(inst));
  }

  doc["displayTimeUnit"] = "ms";
  JsonValue& other = doc["otherData"];
  other["ticks_per_cycle"] = kTicksPerCycle;
  other["dropped_events"] = dropped_;
  doc.write(os, 1);
  os << '\n';
}

}  // namespace ft
