#include "obs/run_report.hpp"

#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#ifndef FT_GIT_SHA
#define FT_GIT_SHA "unknown"
#endif

namespace ft {

std::string build_git_sha() { return FT_GIT_SHA; }

std::string timestamp_utc_iso8601() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

unsigned host_hardware_threads() {
  return std::thread::hardware_concurrency();
}

std::uint64_t host_peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // already bytes
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // kilobytes
#endif
#else
  return 0;
#endif
}

void PhaseTimers::Scope::stop() {
  if (timers_ == nullptr) return;
  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start_);
  timers_->add(name_, elapsed.count());
  timers_ = nullptr;
}

void PhaseTimers::add(std::string_view name, double seconds) {
  for (auto& [k, s] : phases_) {
    if (k == name) {
      s += seconds;
      return;
    }
  }
  phases_.emplace_back(std::string(name), seconds);
}

double PhaseTimers::seconds(std::string_view name) const {
  for (const auto& [k, s] : phases_) {
    if (k == name) return s;
  }
  return 0.0;
}

JsonValue PhaseTimers::to_json() const {
  JsonValue out = JsonValue::object();
  for (const auto& [k, s] : phases_) out[k] = s;
  return out;
}

RunReport::RunReport(std::string tool) {
  root_["schema"] = kSchema;
  root_["tool"] = std::move(tool);
  root_["git_sha"] = build_git_sha();
  root_["timestamp"] = timestamp_utc_iso8601();
  root_["host"]["hardware_threads"] = host_hardware_threads();
}

JsonValue& RunReport::add_run(std::string_view name) {
  JsonValue run = JsonValue::object();
  run["name"] = std::string(name);
  return root_["runs"].push_back(std::move(run));
}

void RunReport::write(std::ostream& os) const {
  root_.write(os, 2);
  os << '\n';
}

bool RunReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "run report: cannot write %s\n", path.c_str());
    return false;
  }
  write(out);
  return static_cast<bool>(out);
}

std::optional<JsonValue> RunReport::read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return JsonValue::parse(buf.str());
}

JsonValue phase_profile_json(const EnginePhaseProfile& p) {
  JsonValue out = JsonValue::object();
  out["up_seconds"] = p.up_seconds;
  out["spine_seconds"] = p.spine_seconds;
  out["spine_parallel_seconds"] = p.spine_parallel_seconds;
  out["down_seconds"] = p.down_seconds;
  out["coord_seconds"] = p.coord_seconds;
  out["timed_cycles"] = p.timed_cycles;
  out["parallel_seconds"] = p.parallel_seconds();
  out["serial_seconds"] = p.serial_seconds();
  out["serial_fraction"] = p.serial_fraction();
  return out;
}

}  // namespace ft
