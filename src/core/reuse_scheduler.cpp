#include "core/reuse_scheduler.hpp"

#include <algorithm>
#include <map>

#include "core/cycle_loads.hpp"
#include "core/load.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"

namespace ft {
namespace {

/// Splits a crossing set into exactly `r` (a power of two) parts by
/// repeated even splitting. Parts may be empty.
std::vector<MessageSet> split_r_ways(const FatTreeTopology& topo, NodeId v,
                                     MessageSet msgs, std::uint32_t r) {
  FT_CHECK(is_pow2(r));
  std::vector<MessageSet> parts;
  parts.push_back(std::move(msgs));
  while (parts.size() < r) {
    std::vector<MessageSet> next;
    next.reserve(parts.size() * 2);
    for (auto& p : parts) {
      EvenSplit s = split_crossing_messages(topo, v, p);
      next.push_back(std::move(s.first));
      next.push_back(std::move(s.second));
    }
    parts = std::move(next);
  }
  return parts;
}

}  // namespace

ReuseScheduleResult schedule_reuse(const FatTreeTopology& topo,
                                   const CapacityProfile& caps,
                                   const MessageSet& m, std::uint32_t slack) {
  const std::uint32_t L = topo.height();
  if (slack == 0) slack = 2 * L;

  ReuseScheduleResult result;

  // Fictitious capacities: cap'(c) = max(1, cap(c) − slack).
  std::vector<std::uint64_t> fict(L + 1);
  for (std::uint32_t k = 0; k <= L; ++k) {
    const std::uint64_t c = caps.capacity_at_level(k);
    fict[k] = c > slack ? c - slack : 1;
  }
  const CapacityProfile fict_caps(topo, std::move(fict));
  result.fictitious_load_factor = load_factor(topo, fict_caps, m);

  // Target r = smallest power of two >= 2λ'.
  const double two_lambda = 2.0 * result.fictitious_load_factor;
  std::uint32_t r = 1;
  while (static_cast<double>(r) < two_lambda) r *= 2;
  result.target_cycles = r;

  // Partition the crossing set of every node into the same r parts.
  std::map<NodeId, std::pair<MessageSet, MessageSet>> groups;  // LR, RL
  MessageSet self_messages;
  for (const auto& msg : m) {
    if (msg.src == msg.dst) {
      self_messages.push_back(msg);
      continue;
    }
    const NodeId v = topo.lca(msg.src, msg.dst);
    auto& g = groups[v];
    if (topo.leaf_in_subtree(msg.src, topo.left_child(v))) {
      g.first.push_back(msg);
    } else {
      g.second.push_back(msg);
    }
  }

  std::vector<MessageSet> cycles(r);
  for (auto& [v, g] : groups) {
    auto lr = split_r_ways(topo, v, std::move(g.first), r);
    auto rl = split_r_ways(topo, v, std::move(g.second), r);
    for (std::uint32_t i = 0; i < r; ++i) {
      cycles[i].insert(cycles[i].end(), lr[i].begin(), lr[i].end());
      cycles[i].insert(cycles[i].end(), rl[i].begin(), rl[i].end());
    }
  }
  if (!self_messages.empty()) {
    cycles[0].insert(cycles[0].end(), self_messages.begin(),
                     self_messages.end());
  }

  // Repair pass: move any messages that overflow a *true* capacity into an
  // overflow set and schedule that with Theorem 1. When the Corollary 2
  // premise holds this moves nothing.
  MessageSet overflow;
  CycleLoads loads(topo);
  for (auto& cycle : cycles) {
    loads.reset();
    MessageSet kept;
    kept.reserve(cycle.size());
    for (const auto& msg : cycle) {
      if (loads.try_add_one(topo, caps, msg, /*commit=*/true)) {
        kept.push_back(msg);
      } else {
        overflow.push_back(msg);
      }
    }
    cycle = std::move(kept);
  }
  result.repaired_messages = overflow.size();

  // Drop empty cycles (r may exceed what the workload needed, and the
  // repair pass can empty a cycle entirely).
  for (auto& cycle : cycles) {
    if (!cycle.empty()) {
      result.schedule.cycles.push_back(std::move(cycle));
    }
  }
  if (!overflow.empty()) {
    Schedule extra = schedule_offline(topo, caps, overflow);
    for (auto& c : extra.cycles) {
      result.schedule.cycles.push_back(std::move(c));
    }
  }
  return result;
}

}  // namespace ft
