#include "core/faults.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ft {

CapacityProfile inject_wire_faults(const FatTreeTopology& topo,
                                   const CapacityProfile& caps,
                                   double wire_failure_prob, Rng& rng,
                                   FaultReport* report) {
  FT_CHECK(wire_failure_prob >= 0.0 && wire_failure_prob <= 1.0);
  FaultReport r;
  CapacityProfile out = caps;
  for (NodeId v = 1; v <= topo.num_nodes(); ++v) {
    const std::uint64_t cap = caps.capacity(topo, v);
    r.wires_before += cap;
    std::uint64_t survivors = 0;
    for (std::uint64_t wire = 0; wire < cap; ++wire) {
      if (!rng.chance(wire_failure_prob)) ++survivors;
    }
    const std::uint64_t degraded = std::max<std::uint64_t>(1, survivors);
    r.wires_after += degraded;
    if (degraded < cap) {
      ++r.channels_degraded;
      if (degraded == 1 && cap > 1) ++r.channels_at_floor;
      out = out.with_channel_capacity(topo, v, degraded);
    }
  }
  if (report != nullptr) *report = r;
  return out;
}

CapacityProfile fail_random_channels(const FatTreeTopology& topo,
                                     const CapacityProfile& caps,
                                     std::uint32_t count, Rng& rng,
                                     FaultReport* report) {
  FT_CHECK(count <= topo.num_nodes());
  std::vector<NodeId> nodes(topo.num_nodes());
  for (NodeId v = 1; v <= topo.num_nodes(); ++v) nodes[v - 1] = v;
  rng.shuffle(nodes);

  FaultReport r;
  for (NodeId v = 1; v <= topo.num_nodes(); ++v) {
    r.wires_before += caps.capacity(topo, v);
  }
  CapacityProfile out = caps;
  for (std::uint32_t i = 0; i < count; ++i) {
    const NodeId v = nodes[i];
    // Count only genuine transitions to the floor: a channel already at
    // one wire (in the input, or floored by an earlier pick when profiles
    // are chained) is not degraded again, and the no-op override is
    // skipped. Mirrors inject_wire_faults' `degraded == 1 && cap > 1`.
    if (out.capacity(topo, v) > 1) {
      ++r.channels_degraded;
      ++r.channels_at_floor;
      out = out.with_channel_capacity(topo, v, 1);
    }
  }
  for (NodeId v = 1; v <= topo.num_nodes(); ++v) {
    r.wires_after += out.capacity(topo, v);
  }
  if (report != nullptr) *report = r;
  return out;
}

}  // namespace ft
