// Off-line scheduling (Section III, Theorem 1).
//
// A schedule partitions a message set M into one-cycle message sets
// M_1, ..., M_d (each respecting every channel capacity). λ(M) is a lower
// bound on d; the paper's algorithm achieves d = O(λ(M) · lg n) by
// partitioning, at each tree node, the messages crossing that node into
// halves whose load splits evenly in *every* channel. The even split is
// obtained by the paper's matching + tracing construction:
//
//   1. Matching: on each side of the node, hierarchically match message
//      ends — pair ends within a leaf, forward the odd one to the parent,
//      pair leftovers from sibling subtrees — so that every subtree has at
//      most one end matched outside it.
//   2. Tracing: messages and matched end-pairs form paths and cycles;
//      walking them and assigning messages alternately to the two halves
//      splits each channel's load to within one.
#pragma once

#include <cstdint>
#include <vector>

#include "core/capacity.hpp"
#include "core/load.hpp"
#include "core/message.hpp"
#include "core/topology.hpp"

namespace ft {

/// A schedule: an ordered partition of a message set into delivery cycles.
struct Schedule {
  std::vector<MessageSet> cycles;

  std::size_t num_cycles() const { return cycles.size(); }
  std::size_t total_messages() const {
    std::size_t t = 0;
    for (const auto& c : cycles) t += c.size();
    return t;
  }
};

/// Result of one even split: the two halves.
struct EvenSplit {
  MessageSet first;
  MessageSet second;
};

/// Splits a set of messages that all cross node `v` in the same direction
/// (every message's LCA is v, and all sources lie in the same child
/// subtree) so that every channel's load divides as ceil/floor.
/// Exposed for testing; schedule_offline() uses it internally.
EvenSplit split_crossing_messages(const FatTreeTopology& topo, NodeId v,
                                  const MessageSet& crossing);

/// Theorem 1: schedules M in O(λ(M) · lg n) delivery cycles. Messages with
/// src == dst are delivered locally and are placed in the first cycle.
Schedule schedule_offline(const FatTreeTopology& topo,
                          const CapacityProfile& caps, const MessageSet& m);

/// Greedy first-fit baseline (ablation): assigns each message to the first
/// cycle where its whole path still has spare capacity. No bound better
/// than O(λ · lg n) is guaranteed; used to measure what the matching +
/// tracing structure buys.
Schedule schedule_greedy(const FatTreeTopology& topo,
                         const CapacityProfile& caps, const MessageSet& m);

/// Cross-level packing variant (ablation): runs the paper's per-node
/// partitioning but merges cycle sets from different levels whenever their
/// channel usage is disjoint-by-capacity, instead of dedicating cycles to
/// one level at a time.
Schedule schedule_offline_packed(const FatTreeTopology& topo,
                                 const CapacityProfile& caps,
                                 const MessageSet& m);

/// True iff `s` is a valid schedule of `m`: the cycles partition m (as a
/// multiset) and every cycle is a one-cycle message set.
bool verify_schedule(const FatTreeTopology& topo, const CapacityProfile& caps,
                     const MessageSet& m, const Schedule& s);

}  // namespace ft
