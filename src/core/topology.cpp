#include "core/topology.hpp"

// Header-only implementation; kept as a translation unit for the library
// archive and future out-of-line additions.
namespace ft {}
