// Offline schedule replay (Section VI: "schedule once, replay every
// emulated step"). Executes a compiled Schedule on the unified
// CycleEngine, one injected batch per scheduled delivery cycle, with pure
// occupancy accounting (Tally contention): every message is delivered in
// its scheduled cycle and the engine reports exactly what each channel
// carried. This is the single source of truth for schedule analytics —
// verify_schedule() and core/schedule_stats build on it.
#pragma once

#include <cstdint>
#include <vector>

#include "core/capacity.hpp"
#include "core/offline_scheduler.hpp"
#include "core/topology.hpp"
#include "engine/fault_plan.hpp"
#include "engine/observer.hpp"
#include "engine/phase_profile.hpp"

namespace ft {

struct ReplayOptions {
  /// Resolve channels on a thread pool; identical results to serial mode.
  bool parallel = false;
  std::size_t threads = 0;
  /// Optional transient-fault plan (not owned). A down channel rejects
  /// its scheduled messages, which then retry in later cycles — the
  /// replay measures how a precomputed schedule degrades under churn
  /// (cycles may exceed schedule.num_cycles()). Brownouts do not bind
  /// here: tally replay has no admission cap to scale.
  const FaultPlan* fault_plan = nullptr;
  /// Per-message retry policy for faulted replays (default: retry every
  /// cycle forever, the classic behavior).
  RetryPolicy retry;
  /// Time parallel sweeps vs the serial band (ReplayResult::phases).
  bool time_phases = false;
};

struct ReplayResult {
  std::uint64_t cycles = 0;     ///< == schedule.num_cycles() if fault-free
  std::uint64_t delivered = 0;  ///< == schedule.total_messages()
  /// Channel-cycles where the scheduled load exceeded capacity. Zero iff
  /// every scheduled cycle is a one-cycle message set.
  std::uint64_t capacity_violations = 0;
  // Fault / retry lifecycle (zero on fault-free replays).
  std::uint64_t messages_given_up = 0;
  std::uint64_t fault_down_events = 0;
  std::uint64_t fault_up_events = 0;
  std::uint64_t subtree_kill_events = 0;
  /// Wall-clock Amdahl decomposition; all-zero unless
  /// ReplayOptions::time_phases was set.
  EnginePhaseProfile phases;
  std::vector<std::uint32_t> delivered_per_cycle;
};

/// Replays `schedule` on the fat-tree, feeding per-cycle channel
/// occupancy to `observer` (optional). Self messages deliver locally in
/// their scheduled cycle.
ReplayResult replay_schedule(const FatTreeTopology& topo,
                             const CapacityProfile& caps,
                             const Schedule& schedule,
                             const ReplayOptions& opts = {},
                             EngineObserver* observer = nullptr);

}  // namespace ft
