// Channel capacities (Section IV). A capacity profile assigns the number
// of wires to each channel level; the paper's *universal fat-tree* with
// root capacity w (n^{2/3} <= w <= n) uses
//
//     cap(level k) = min( 2^{L-k},  ceil(w / 2^{2k/3}) )
//
// so capacities double per level near the leaves and grow by a factor of
// 4^{1/3} per level near the root, with the regime change at level
// 3·lg(n/w). Volume-parameterized profiles (root capacity
// Θ(v^{2/3}/lg(n/v^{2/3}))) live in layout/vlsi_model.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "core/topology.hpp"

namespace ft {

/// Per-level channel capacities; cap_by_level[k] is the number of wires in
/// each channel at level k (0 = root/external, L = processor channels).
class CapacityProfile {
 public:
  CapacityProfile(const FatTreeTopology& topo,
                  std::vector<std::uint64_t> cap_by_level);

  /// The paper's universal fat-tree profile for root capacity w. w is
  /// clamped to [1, n]; the canonical universal range is n^{2/3} <= w <= n.
  static CapacityProfile universal(const FatTreeTopology& topo,
                                   std::uint64_t root_capacity);

  /// Constant capacity c at every level: a "skinny" tree when c == 1.
  static CapacityProfile constant(const FatTreeTopology& topo,
                                  std::uint64_t c);

  /// Capacity doubling at every level up from the leaves (cap at level k is
  /// 2^{L-k}); root capacity n. This is the fattest profile the tree-path
  /// routing can ever use.
  static CapacityProfile doubling(const FatTreeTopology& topo);

  std::uint32_t height() const {
    return static_cast<std::uint32_t>(cap_by_level_.size()) - 1;
  }

  std::uint64_t capacity_at_level(std::uint32_t level) const {
    FT_CHECK(level < cap_by_level_.size());
    return cap_by_level_[level];
  }

  std::uint64_t capacity(const FatTreeTopology& topo, NodeId node) const {
    if (!overrides_.empty()) {
      FT_CHECK(node < overrides_.size());
      if (overrides_[node] != 0) return overrides_[node];
    }
    return capacity_at_level(topo.channel_level(node));
  }

  /// True iff some channel deviates from its level capacity (fault
  /// injection, Section VII robustness experiments). Level-uniform
  /// consumers (the bit-serial hardware simulator, which shares one
  /// switch instance per level) require this to be false.
  bool has_overrides() const { return !overrides_.empty(); }

  /// Returns a copy of this profile with the capacity of one channel
  /// replaced (both directions share the wire count in this model).
  CapacityProfile with_channel_capacity(const FatTreeTopology& topo,
                                        NodeId node,
                                        std::uint64_t capacity) const;

  std::uint64_t root_capacity() const { return cap_by_level_[0]; }

  /// Total wire count over all channels, both directions
  /// (a hardware-cost proxy used by the Theorem 4 experiment).
  std::uint64_t total_wires(const FatTreeTopology& topo) const;

  const std::vector<std::uint64_t>& levels() const { return cap_by_level_; }

 private:
  std::vector<std::uint64_t> cap_by_level_;
  /// Per-channel capacity overrides indexed by the node beneath the
  /// channel; 0 means "use the level capacity". Empty when no channel
  /// deviates.
  std::vector<std::uint64_t> overrides_;
};

}  // namespace ft
