// Channel loads and the load factor (Section III).
//
//   load(M, c)  = number of messages of M whose tree path uses channel c
//   λ(M, c)     = load(M, c) / cap(c)
//   λ(M)        = max over channels c of λ(M, c)
//
// λ(M) lower-bounds the number of delivery cycles of any schedule; the
// off-line scheduler (Theorem 1) gets within a factor of O(lg n) of it.
#pragma once

#include <cstdint>
#include <vector>

#include "core/capacity.hpp"
#include "core/message.hpp"
#include "core/topology.hpp"

namespace ft {

/// Per-channel message counts, indexed by the node beneath the channel.
struct LoadMap {
  std::vector<std::uint32_t> up;    ///< up[v]   = load on channel (v, Up)
  std::vector<std::uint32_t> down;  ///< down[v] = load on channel (v, Down)

  std::uint32_t get(const ChannelId& c) const {
    return c.dir == Direction::Up ? up[c.node] : down[c.node];
  }
};

/// Computes load(M, c) for every channel. O(|M| · lg n).
LoadMap compute_loads(const FatTreeTopology& topo, const MessageSet& m);

/// λ(M): the maximum over channels of load/capacity. Zero for empty M.
double load_factor(const FatTreeTopology& topo, const CapacityProfile& caps,
                   const MessageSet& m);

/// λ(M, c) maximized over a precomputed LoadMap (avoids recomputing loads).
double load_factor(const FatTreeTopology& topo, const CapacityProfile& caps,
                   const LoadMap& loads);

/// True iff M is a one-cycle message set: load(M, c) <= cap(c) everywhere.
bool is_one_cycle(const FatTreeTopology& topo, const CapacityProfile& caps,
                  const MessageSet& m);

/// The channel achieving the max load factor (ties broken toward the root;
/// {0, Up} when M is empty). Useful for experiment diagnostics.
ChannelId bottleneck_channel(const FatTreeTopology& topo,
                             const CapacityProfile& caps,
                             const MessageSet& m);

}  // namespace ft
