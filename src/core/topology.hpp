// The fat-tree topology of Section II of the paper: n = 2^L processors at
// the leaves of a complete binary tree whose internal nodes are switches.
// Each tree edge carries two channels (an up channel toward the root and a
// down channel toward the leaves); the root additionally owns the external
// interface channel.
//
// Nodes use heap numbering: node 1 is the root, node i has children 2i and
// 2i+1, and leaf p (0 <= p < n) is node n + p. A channel is named by the
// node *beneath* it plus a direction, and — following the paper — a
// channel's level equals the level of the node beneath it (root channel at
// level 0, processor channels at level L = lg n).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace ft {

using NodeId = std::uint32_t;
using Leaf = std::uint32_t;

enum class Direction : std::uint8_t { Up = 0, Down = 1 };

/// A channel of the fat-tree: the (node, direction) pair for the channel on
/// the edge between `node` and its parent (or the external world when
/// node == 1).
struct ChannelId {
  NodeId node;
  Direction dir;

  friend bool operator==(const ChannelId&, const ChannelId&) = default;
};

class FatTreeTopology {
 public:
  /// n must be a power of two, n >= 2.
  explicit FatTreeTopology(std::uint32_t n)
      : n_(n), levels_(floor_log2(n)) {
    FT_CHECK_MSG(is_pow2(n) && n >= 2, "n must be a power of two >= 2");
  }

  std::uint32_t num_processors() const { return n_; }
  /// L = lg n; the root is at level 0, leaves at level L.
  std::uint32_t height() const { return levels_; }
  std::uint32_t num_nodes() const { return 2 * n_ - 1; }
  /// Channels are indexed by the node beneath them: 1..2n-1.
  std::uint32_t num_channels() const { return 2 * n_ - 1; }

  NodeId root() const { return 1; }
  NodeId node_of_leaf(Leaf p) const {
    FT_CHECK(p < n_);
    return n_ + p;
  }
  Leaf leaf_of_node(NodeId v) const {
    FT_CHECK(is_leaf(v));
    return v - n_;
  }
  bool is_leaf(NodeId v) const { return v >= n_; }
  NodeId parent(NodeId v) const {
    FT_CHECK(v > 1);
    return v >> 1;
  }
  NodeId left_child(NodeId v) const {
    FT_CHECK(!is_leaf(v));
    return 2 * v;
  }
  NodeId right_child(NodeId v) const {
    FT_CHECK(!is_leaf(v));
    return 2 * v + 1;
  }
  std::uint32_t level(NodeId v) const {
    FT_CHECK(v >= 1 && v < 2 * n_);
    return floor_log2(v);
  }

  /// The level of the channel above node v (paper convention: equals the
  /// level of v itself; the root's external channel is level 0).
  std::uint32_t channel_level(NodeId v) const { return level(v); }

  /// Lowest common ancestor of two leaves.
  NodeId lca(Leaf p, Leaf q) const {
    NodeId a = node_of_leaf(p);
    NodeId b = node_of_leaf(q);
    while (a != b) {
      a >>= 1;
      b >>= 1;
    }
    return a;
  }

  /// True iff leaf p lies in the subtree rooted at node v.
  bool leaf_in_subtree(Leaf p, NodeId v) const {
    NodeId a = node_of_leaf(p);
    const std::uint32_t up = levels_ - level(v);
    return (a >> up) == v;
  }

  /// First (leftmost) and last leaf of the subtree rooted at v.
  Leaf subtree_first_leaf(NodeId v) const {
    const std::uint32_t up = levels_ - level(v);
    return (v << up) - n_;
  }
  Leaf subtree_last_leaf(NodeId v) const {
    const std::uint32_t up = levels_ - level(v);
    return ((v + 1) << up) - n_ - 1;
  }
  std::uint32_t subtree_size(NodeId v) const {
    return std::uint32_t{1} << (levels_ - level(v));
  }

  /// Visits every channel on the unique tree path of a message from leaf s
  /// to leaf t: up channels above the nodes from leaf(s) up to (and
  /// including) the child of the LCA on s's side, then down channels
  /// symmetrically on t's side. Visits nothing when s == t.
  template <typename Fn>
  void for_each_channel_on_path(Leaf s, Leaf t, Fn&& fn) const {
    if (s == t) return;
    NodeId a = node_of_leaf(s);
    NodeId b = node_of_leaf(t);
    while (a != b) {
      fn(ChannelId{a, Direction::Up});
      fn(ChannelId{b, Direction::Down});
      a >>= 1;
      b >>= 1;
    }
  }

  /// Number of channels traversed by a message from s to t
  /// (2 * levels-below-LCA).
  std::uint32_t path_length(Leaf s, Leaf t) const {
    if (s == t) return 0;
    return 2 * (levels_ - level(lca(s, t)));
  }

 private:
  std::uint32_t n_;
  std::uint32_t levels_;
};

/// Flat array index for a channel: node * 2 + direction. Arrays are sized
/// channel_index_bound(topology).
inline std::size_t channel_index(const ChannelId& c) {
  return static_cast<std::size_t>(c.node) * 2 +
         static_cast<std::size_t>(c.dir);
}

inline std::size_t channel_index_bound(const FatTreeTopology& t) {
  return static_cast<std::size_t>(t.num_nodes() + 1) * 2;
}

}  // namespace ft
