#include "core/schedule_stats.hpp"

#include <algorithm>

#include "core/replay.hpp"
#include "engine/fat_tree_model.hpp"
#include "util/check.hpp"

namespace ft {

namespace {

/// Per-cycle wire-slot usage accumulated from the engine's replay
/// occupancy counters. Usable slots are the wire-budget channels (node 1's
/// external interface is excluded by the channel graph); carried load is
/// clamped to capacity so an over-full cycle cannot exceed 100%.
class UtilizationObserver final : public EngineObserver {
 public:
  void on_cycle(const CycleSnapshot& s) override {
    const ChannelGraph& g = *s.graph;
    std::uint64_t used = 0;
    for (std::size_t c = 0; c < g.num_channels(); ++c) {
      if (g.capacity[c] == 0 || !g.in_wire_budget[c]) continue;
      const auto u = std::min<std::uint64_t>((*s.carried)[c], g.capacity[c]);
      used += u;
      if (used_by_level.size() < g.num_levels) {
        used_by_level.resize(g.num_levels, 0);
      }
      used_by_level[g.level[c]] += u;
    }
    used_per_cycle.push_back(used);
  }

  std::vector<std::uint64_t> used_per_cycle;
  std::vector<std::uint64_t> used_by_level;
};

/// Wire slots available per cycle at one level / over all levels.
std::vector<std::uint64_t> avail_by_level(const ChannelGraph& g) {
  std::vector<std::uint64_t> avail(g.num_levels, 0);
  for (std::size_t c = 0; c < g.num_channels(); ++c) {
    if (g.capacity[c] == 0 || !g.in_wire_budget[c]) continue;
    avail[g.level[c]] += g.capacity[c];
  }
  return avail;
}

}  // namespace

ScheduleStats analyze_schedule(const FatTreeTopology& topo,
                               const CapacityProfile& caps,
                               const Schedule& schedule) {
  ScheduleStats stats;
  stats.cycles = schedule.num_cycles();
  stats.messages = schedule.total_messages();
  if (stats.cycles == 0) return stats;

  UtilizationObserver obs;
  const ReplayResult replay = replay_schedule(topo, caps, schedule, {}, &obs);
  FT_CHECK(replay.cycles == stats.cycles);

  const ChannelGraph graph = fat_tree_channel_graph(topo, caps);
  const std::vector<std::uint64_t> avail_lvl = avail_by_level(graph);
  std::uint64_t avail = 0;
  for (const auto a : avail_lvl) avail += a;
  const std::uint64_t root_avail =
      avail_lvl.size() > 1 ? avail_lvl[1] : 0;

  double sum_util = 0.0;
  double max_util = 0.0;
  double min_util = 2.0;
  std::uint64_t root_used = 0;
  for (std::size_t i = 0; i < stats.cycles; ++i) {
    const double util = avail ? static_cast<double>(obs.used_per_cycle[i]) /
                                    static_cast<double>(avail)
                              : 0.0;
    sum_util += util;
    max_util = std::max(max_util, util);
    if (!schedule.cycles[i].empty()) min_util = std::min(min_util, util);
  }
  if (obs.used_by_level.size() > 1) root_used = obs.used_by_level[1];

  stats.mean_utilization = sum_util / static_cast<double>(stats.cycles);
  stats.max_cycle_utilization = max_util;
  stats.min_cycle_utilization = min_util > 1.5 ? 0.0 : min_util;
  stats.root_utilization =
      root_avail ? static_cast<double>(root_used) /
                       (static_cast<double>(root_avail) *
                        static_cast<double>(stats.cycles))
                 : 0.0;
  stats.throughput = static_cast<double>(stats.messages) /
                     static_cast<double>(stats.cycles);
  return stats;
}

std::vector<double> per_level_utilization(const FatTreeTopology& topo,
                                          const CapacityProfile& caps,
                                          const Schedule& schedule) {
  const std::uint32_t L = topo.height();
  std::vector<double> util(L + 1, 0.0);
  if (schedule.num_cycles() == 0) return util;

  UtilizationObserver obs;
  replay_schedule(topo, caps, schedule, {}, &obs);

  const std::vector<std::uint64_t> avail_lvl =
      avail_by_level(fat_tree_channel_graph(topo, caps));
  obs.used_by_level.resize(L + 1, 0);
  for (std::uint32_t k = 0; k <= L; ++k) {
    const std::uint64_t avail =
        avail_lvl[k] * static_cast<std::uint64_t>(schedule.num_cycles());
    util[k] = avail ? static_cast<double>(obs.used_by_level[k]) /
                          static_cast<double>(avail)
                    : 0.0;
  }
  return util;
}

}  // namespace ft
