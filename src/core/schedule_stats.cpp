#include "core/schedule_stats.hpp"

#include <algorithm>

#include "core/load.hpp"
#include "util/check.hpp"

namespace ft {

namespace {

/// Used and available wire-slots of one cycle, overall / root-only.
struct CycleUse {
  std::uint64_t used = 0;
  std::uint64_t avail = 0;
  std::uint64_t root_used = 0;
  std::uint64_t root_avail = 0;
};

CycleUse measure_cycle(const FatTreeTopology& topo,
                       const CapacityProfile& caps, const MessageSet& cycle) {
  CycleUse use;
  const LoadMap loads = compute_loads(topo, cycle);
  // Node 1's channel is the external interface: internal traffic cannot
  // use it, so it does not count toward the wire budget.
  for (NodeId v = 2; v <= topo.num_nodes(); ++v) {
    const std::uint64_t cap = caps.capacity(topo, v);
    use.used += std::min<std::uint64_t>(loads.up[v], cap) +
                std::min<std::uint64_t>(loads.down[v], cap);
    use.avail += 2 * cap;
    if (topo.channel_level(v) == 1) {
      use.root_used += std::min<std::uint64_t>(loads.up[v], cap) +
                       std::min<std::uint64_t>(loads.down[v], cap);
      use.root_avail += 2 * cap;
    }
  }
  return use;
}

}  // namespace

ScheduleStats analyze_schedule(const FatTreeTopology& topo,
                               const CapacityProfile& caps,
                               const Schedule& schedule) {
  ScheduleStats stats;
  stats.cycles = schedule.num_cycles();
  stats.messages = schedule.total_messages();
  if (stats.cycles == 0) return stats;

  double sum_util = 0.0;
  double max_util = 0.0;
  double min_util = 2.0;
  std::uint64_t root_used = 0, root_avail = 0;
  for (const auto& cycle : schedule.cycles) {
    const CycleUse use = measure_cycle(topo, caps, cycle);
    const double util = use.avail
                            ? static_cast<double>(use.used) /
                                  static_cast<double>(use.avail)
                            : 0.0;
    sum_util += util;
    max_util = std::max(max_util, util);
    if (!cycle.empty()) min_util = std::min(min_util, util);
    root_used += use.root_used;
    root_avail += use.root_avail;
  }
  stats.mean_utilization = sum_util / static_cast<double>(stats.cycles);
  stats.max_cycle_utilization = max_util;
  stats.min_cycle_utilization = min_util > 1.5 ? 0.0 : min_util;
  stats.root_utilization =
      root_avail ? static_cast<double>(root_used) /
                       static_cast<double>(root_avail)
                 : 0.0;
  stats.throughput = static_cast<double>(stats.messages) /
                     static_cast<double>(stats.cycles);
  return stats;
}

std::vector<double> per_level_utilization(const FatTreeTopology& topo,
                                          const CapacityProfile& caps,
                                          const Schedule& schedule) {
  const std::uint32_t L = topo.height();
  std::vector<std::uint64_t> used(L + 1, 0), avail(L + 1, 0);
  for (const auto& cycle : schedule.cycles) {
    const LoadMap loads = compute_loads(topo, cycle);
    for (NodeId v = 2; v <= topo.num_nodes(); ++v) {
      const std::uint32_t k = topo.channel_level(v);
      const std::uint64_t cap = caps.capacity(topo, v);
      used[k] += std::min<std::uint64_t>(loads.up[v], cap) +
                 std::min<std::uint64_t>(loads.down[v], cap);
      avail[k] += 2 * cap;
    }
  }
  std::vector<double> util(L + 1, 0.0);
  for (std::uint32_t k = 0; k <= L; ++k) {
    util[k] = avail[k] ? static_cast<double>(used[k]) /
                             static_cast<double>(avail[k])
                       : 0.0;
  }
  return util;
}

}  // namespace ft
