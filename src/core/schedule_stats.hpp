// Schedule quality metrics beyond cycle count: per-cycle channel
// utilization (how much of the paid-for bandwidth each delivery cycle
// actually uses) and per-level aggregates. Section VII claims "the
// architecture automatically ensures that communication bandwidth is
// effectively utilized"; experiment E15 quantifies it.
#pragma once

#include <cstdint>
#include <vector>

#include "core/capacity.hpp"
#include "core/offline_scheduler.hpp"

namespace ft {

struct ScheduleStats {
  std::size_t cycles = 0;
  std::size_t messages = 0;
  /// Mean over cycles of (used wire-slots / available wire-slots) over
  /// channels carrying nonzero potential load.
  double mean_utilization = 0.0;
  /// Utilization of the busiest cycle / the emptiest nonempty cycle.
  double max_cycle_utilization = 0.0;
  double min_cycle_utilization = 0.0;
  /// Mean utilization of the level-1 channels (the expensive top trunks;
  /// the external-interface channel above the root is excluded).
  double root_utilization = 0.0;
  /// Mean messages per cycle.
  double throughput = 0.0;
};

/// Computes utilization statistics of a schedule on a fat-tree. The
/// denominator is the full wire budget of every channel — idle root
/// trunks count against utilization, because whether the fattening is
/// wasted is exactly the question being measured.
ScheduleStats analyze_schedule(const FatTreeTopology& topo,
                               const CapacityProfile& caps,
                               const Schedule& schedule);

/// Per-level mean utilization across all cycles (index = channel level;
/// level 0 — the external interface — is always 0 for internal traffic).
std::vector<double> per_level_utilization(const FatTreeTopology& topo,
                                          const CapacityProfile& caps,
                                          const Schedule& schedule);

}  // namespace ft
