// Corollary 2 scheduling: when every channel has capacity at least
// a · lg n for some a > 1, the O(lg n) factor of Theorem 1 disappears.
//
// The trick: give each channel a *fictitious* capacity
// cap'(c) = cap(c) − slack (slack = Θ(lg n)), compute the fictitious load
// factor λ', and partition the messages crossing *each* node into the same
// r = Θ(λ') sets — reusing the root-level partition count all the way down
// instead of starting a fresh partition per level. The per-node even
// splits each miss perfection by at most a constant, and a channel at
// level k sees contributions from at most k ancestor partitions, so the
// accumulated error stays below the slack and the true capacities are
// never exceeded.
#pragma once

#include <cstdint>

#include "core/offline_scheduler.hpp"

namespace ft {

struct ReuseScheduleResult {
  Schedule schedule;
  /// λ'(M): load factor under the fictitious (slack-reduced) capacities.
  double fictitious_load_factor = 0.0;
  /// Number of sets the partition targeted (power of two >= 2·λ').
  std::uint32_t target_cycles = 0;
  /// Messages that exceeded a true capacity and were re-scheduled with the
  /// Theorem 1 algorithm (0 whenever the Corollary 2 premise
  /// cap(c) >= a·lg n, a > 2, holds — asserted by tests).
  std::size_t repaired_messages = 0;
};

/// Schedules m in ~2λ' delivery cycles (rounded up to a power of two).
/// `slack` defaults to 2·lg n; the premise cap(c) >= slack + 1 for all
/// channels is not required for correctness (a repair pass re-schedules
/// any overflow), only for the cycle-count guarantee.
ReuseScheduleResult schedule_reuse(const FatTreeTopology& topo,
                                   const CapacityProfile& caps,
                                   const MessageSet& m,
                                   std::uint32_t slack = 0);

}  // namespace ft
