// Incremental per-channel load tracking for one delivery cycle. Shared by
// the schedulers: supports tentative "does this set still fit?" probes
// without O(n) clears by rolling back touched counters.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/capacity.hpp"
#include "core/message.hpp"
#include "core/topology.hpp"

namespace ft {

class CycleLoads {
 public:
  explicit CycleLoads(const FatTreeTopology& topo)
      : counts_(channel_index_bound(topo), 0) {}

  /// Adds the paths of `m` on top of the current counts and reports whether
  /// every channel stays within capacity. When `commit` is false (or the
  /// set does not fit) the counts are rolled back.
  bool try_add(const FatTreeTopology& topo, const CapacityProfile& caps,
               const MessageSet& m, bool commit) {
    bool ok = true;
    touched_.clear();
    for (const auto& msg : m) {
      topo.for_each_channel_on_path(msg.src, msg.dst, [&](ChannelId c) {
        const std::size_t idx = channel_index(c);
        ++counts_[idx];
        touched_.push_back(idx);
        if (counts_[idx] > caps.capacity(topo, c.node)) ok = false;
      });
    }
    if (!ok || !commit) {
      for (std::size_t idx : touched_) --counts_[idx];
    }
    return ok;
  }

  /// Single-message variant of try_add.
  bool try_add_one(const FatTreeTopology& topo, const CapacityProfile& caps,
                   const Message& msg, bool commit) {
    const MessageSet single{msg};
    return try_add(topo, caps, single, commit);
  }

  void reset() { std::fill(counts_.begin(), counts_.end(), 0); }

  std::uint32_t count(const ChannelId& c) const {
    return counts_[channel_index(c)];
  }

 private:
  std::vector<std::uint32_t> counts_;
  std::vector<std::size_t> touched_;
};

}  // namespace ft
