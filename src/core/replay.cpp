#include "core/replay.hpp"

#include "engine/engine.hpp"
#include "engine/fat_tree_model.hpp"

namespace ft {
namespace {

/// Counts channel-cycles whose tallied load exceeds the wire budget and
/// forwards every snapshot to the caller's observer.
class ViolationCounter final : public EngineObserver {
 public:
  explicit ViolationCounter(EngineObserver* next) : next_(next) {}

  void on_cycle(const CycleSnapshot& s) override {
    if (s.graph != nullptr && s.carried != nullptr) {
      const ChannelGraph& g = *s.graph;
      for (std::size_t c = 0; c < g.num_channels(); ++c) {
        if (g.capacity[c] != 0 && (*s.carried)[c] > g.capacity[c]) {
          ++violations_;
        }
      }
    }
    if (next_ != nullptr) next_->on_cycle(s);
  }

  bool wants_message_events() const override {
    return next_ != nullptr && next_->wants_message_events();
  }
  void on_message_event(const MessageEvent& e) override {
    next_->on_message_event(e);
  }

  std::uint64_t violations() const { return violations_; }

 private:
  EngineObserver* next_;
  std::uint64_t violations_ = 0;
};

/// Streams the schedule into the engine one scheduled cycle per chunk:
/// only one cycle's paths are materialized at a time, however long the
/// schedule is.
class ScheduleBatchSource final : public MessageSource {
 public:
  ScheduleBatchSource(const FatTreeTopology& topo, const Schedule& schedule)
      : topo_(topo), schedule_(schedule) {}

  bool next_chunk(PathSet& chunk) override {
    if (next_ >= schedule_.cycles.size()) return false;
    chunk.clear();
    for (const auto& msg : schedule_.cycles[next_]) {
      append_fat_tree_path(topo_, msg.src, msg.dst, chunk);
    }
    ++next_;
    return true;
  }

 private:
  const FatTreeTopology& topo_;
  const Schedule& schedule_;
  std::size_t next_ = 0;
};

}  // namespace

ReplayResult replay_schedule(const FatTreeTopology& topo,
                             const CapacityProfile& caps,
                             const Schedule& schedule,
                             const ReplayOptions& opts,
                             EngineObserver* observer) {
  EngineOptions eopts;
  eopts.contention = ContentionPolicy::Tally;
  eopts.parallel = opts.parallel;
  eopts.threads = opts.threads;
  eopts.fault_plan = opts.fault_plan;
  eopts.retry = opts.retry;
  eopts.time_phases = opts.time_phases;
  if (opts.fault_plan != nullptr && !opts.fault_plan->empty()) {
    // A faulted replay can run past the schedule horizon while messages
    // wait out down channels; the plan seed keys the fault streams.
    eopts.seed = opts.fault_plan->seed();
    eopts.max_cycles = 64 * (schedule.num_cycles() + 64);
  }

  CycleEngine engine(fat_tree_channel_graph(topo, caps), eopts);
  ViolationCounter counter(observer);
  ScheduleBatchSource source(topo, schedule);
  const EngineResult er = engine.run_batched_stream(source, &counter);

  ReplayResult result;
  result.cycles = er.cycles;
  result.delivered = er.delivered;
  result.capacity_violations = counter.violations();
  result.messages_given_up = er.messages_given_up;
  result.fault_down_events = er.fault_down_events;
  result.fault_up_events = er.fault_up_events;
  result.subtree_kill_events = er.subtree_kill_events;
  result.phases = er.phases;
  result.delivered_per_cycle = er.delivered_per_cycle;
  return result;
}

}  // namespace ft
