// Fault injection (Section VII names fault tolerance among the problems a
// real machine must solve). The wire-level failure model: each wire of
// each channel fails independently with probability p; a channel keeps
// max(1, surviving wires) capacity (the last wire pair is assumed
// repairable/spared so the tree stays connected — a dead internal channel
// would partition the unique-path network, which is a packaging problem,
// not a routing one).
//
// The paper's robustness remark ("one need not worry about the exact
// capacities of channels as long as the capacities exhibit reasonable
// growth") predicts graceful degradation: delivery cycles should grow
// like 1/(1-p), not cliff. Experiment `exp_fault_tolerance` measures it.
#pragma once

#include <cstdint>
#include <limits>

#include "core/capacity.hpp"
#include "core/topology.hpp"
#include "util/prng.hpp"

namespace ft {

struct FaultReport {
  std::uint64_t wires_before = 0;
  std::uint64_t wires_after = 0;
  std::uint32_t channels_degraded = 0;
  std::uint32_t channels_at_floor = 0;  ///< newly reduced to the 1-wire floor

  /// No wires existed to fail (empty topology / all-zero profile) — the
  /// survival rate is then undefined, not 100%.
  bool is_empty() const { return wires_before == 0; }

  /// wires_after / wires_before; NaN when is_empty() so degenerate inputs
  /// cannot read as "fully healthy" (the obs JSON writer emits NaN as
  /// null, keeping reports honest).
  double survival_rate() const {
    return is_empty() ? std::numeric_limits<double>::quiet_NaN()
                      : static_cast<double>(wires_after) /
                            static_cast<double>(wires_before);
  }
};

/// Fails each wire of each channel independently with probability
/// `wire_failure_prob`; returns the degraded profile. Deterministic given
/// the RNG seed. `report` (optional) receives the damage summary.
CapacityProfile inject_wire_faults(const FatTreeTopology& topo,
                                   const CapacityProfile& caps,
                                   double wire_failure_prob, Rng& rng,
                                   FaultReport* report = nullptr);

/// Fails `count` whole channels chosen uniformly at random (each drops to
/// the 1-wire floor): the coarse "broken cable" model.
CapacityProfile fail_random_channels(const FatTreeTopology& topo,
                                     const CapacityProfile& caps,
                                     std::uint32_t count, Rng& rng,
                                     FaultReport* report = nullptr);

}  // namespace ft
