// Plain-text serialization of message sets and schedules. Section VI's
// point about compiled switch settings — "the results apply to practical
// situations when the settings of switches can be compiled" — needs the
// compiled artifact to be storable: schedule once, replay every emulated
// step.
//
// Formats (line-oriented, whitespace-separated):
//   message set:  "messages <count>" then one "src dst" pair per line
//   schedule:     "schedule <cycles>" then per cycle
//                 "cycle <count>" and its "src dst" lines
#pragma once

#include <iosfwd>
#include <optional>

#include "core/message.hpp"
#include "core/offline_scheduler.hpp"

namespace ft {

void write_message_set(std::ostream& os, const MessageSet& m);
/// Returns nullopt on malformed input.
std::optional<MessageSet> read_message_set(std::istream& is);

void write_schedule(std::ostream& os, const Schedule& s);
std::optional<Schedule> read_schedule(std::istream& is);

}  // namespace ft
