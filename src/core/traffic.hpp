// Workload generators. These are the message sets the experiments route:
// classical permutations (random, bit reversal, transpose, shuffle, the
// bisection-adversarial "complement"), volume traffic (uniform random,
// hot spot), locality-controlled traffic, and the finite-element halo
// exchange workload the paper's introduction motivates (planar meshes need
// only O(sqrt n) bisection width, so a fat-tree can be sized to them).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/message.hpp"
#include "util/prng.hpp"

namespace ft {

/// Uniformly random permutation: each processor sends to a distinct
/// destination.
MessageSet random_permutation_traffic(std::uint32_t n, Rng& rng);

/// Bit-reversal permutation: p -> reverse of p's lg n bits. A classical
/// hard case for banyan-style networks.
MessageSet bit_reversal_traffic(std::uint32_t n);

/// Transpose permutation: swap the high and low halves of the address bits
/// (requires lg n even; otherwise rotates by floor(lg n / 2)).
MessageSet transpose_traffic(std::uint32_t n);

/// Perfect-shuffle permutation: left-rotate the address bits by one.
MessageSet shuffle_traffic(std::uint32_t n);

/// Complement permutation: p -> p XOR (n-1). Every message crosses the
/// root — the worst case for the root channel and the paper's bisection
/// bound made flesh.
MessageSet complement_traffic(std::uint32_t n);

/// m messages with independently uniform random sources and destinations.
MessageSet uniform_random_traffic(std::uint32_t n, std::size_t m, Rng& rng);

/// Every processor sends one message; a `fraction` of them aim at a single
/// hot processor, the rest are uniform.
MessageSet hotspot_traffic(std::uint32_t n, double fraction, Leaf hot,
                           Rng& rng);

/// Locality-controlled: each processor sends to a destination within
/// +/- radius (wrapping). Small radius keeps traffic low in the tree.
MessageSet local_traffic(std::uint32_t n, std::uint32_t radius, Rng& rng);

/// Finite-element halo exchange: processors hold the cells of a
/// rows x cols grid (row-major on the leaves); every processor sends one
/// message to each existing 4-neighbour. rows*cols must equal n.
MessageSet fem_halo_traffic(std::uint32_t rows, std::uint32_t cols);

/// k independent random permutations concatenated (load factor scales
/// with k — used to sweep λ(M)).
MessageSet stacked_permutations(std::uint32_t n, std::uint32_t k, Rng& rng);

/// Tornado: p -> (p + n/2 - 1) mod n; the classical adversary for ring
/// and torus networks, near-worst-case bisection pressure on trees too.
MessageSet tornado_traffic(std::uint32_t n);

/// Ring shift by a fixed offset: p -> (p + offset) mod n.
MessageSet ring_shift_traffic(std::uint32_t n, std::uint32_t offset);

/// Full all-to-all: every ordered pair (p, q), p != q — n(n-1) messages;
/// use small n.
MessageSet all_to_all_traffic(std::uint32_t n);

/// Bisection flood: every processor in the left half sends `count`
/// messages to uniform destinations in the right half (stress for the
/// root channels; λ = count·(n/2)/w on a universal tree).
MessageSet bisection_flood_traffic(std::uint32_t n, std::uint32_t count,
                                   Rng& rng);

/// Named-workload dispatch used by the experiment binaries.
struct NamedWorkload {
  std::string name;
  MessageSet messages;
};
std::vector<NamedWorkload> standard_workloads(std::uint32_t n, Rng& rng);

}  // namespace ft
