// Workload generators. These are the message sets the experiments route:
// classical permutations (random, bit reversal, transpose, shuffle, the
// bisection-adversarial "complement"), volume traffic (uniform random,
// hot spot), locality-controlled traffic, and the finite-element halo
// exchange workload the paper's introduction motivates (planar meshes need
// only O(sqrt n) bisection width, so a fat-tree can be sized to them).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/message.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

namespace ft {

/// Uniformly random permutation: each processor sends to a distinct
/// destination.
MessageSet random_permutation_traffic(std::uint32_t n, Rng& rng);

/// Bit-reversal permutation: p -> reverse of p's lg n bits. A classical
/// hard case for banyan-style networks.
MessageSet bit_reversal_traffic(std::uint32_t n);

/// Transpose permutation: swap the high and low halves of the address bits
/// (requires lg n even; otherwise rotates by floor(lg n / 2)).
MessageSet transpose_traffic(std::uint32_t n);

/// Perfect-shuffle permutation: left-rotate the address bits by one.
MessageSet shuffle_traffic(std::uint32_t n);

/// Complement permutation: p -> p XOR (n-1). Every message crosses the
/// root — the worst case for the root channel and the paper's bisection
/// bound made flesh.
MessageSet complement_traffic(std::uint32_t n);

/// m messages with independently uniform random sources and destinations.
MessageSet uniform_random_traffic(std::uint32_t n, std::size_t m, Rng& rng);

/// Every processor sends one message; a `fraction` of them aim at a single
/// hot processor, the rest are uniform.
MessageSet hotspot_traffic(std::uint32_t n, double fraction, Leaf hot,
                           Rng& rng);

/// Locality-controlled: each processor sends to a destination within
/// +/- radius (wrapping). Small radius keeps traffic low in the tree.
MessageSet local_traffic(std::uint32_t n, std::uint32_t radius, Rng& rng);

/// Finite-element halo exchange: processors hold the cells of a
/// rows x cols grid (row-major on the leaves); every processor sends one
/// message to each existing 4-neighbour. rows*cols must equal n.
MessageSet fem_halo_traffic(std::uint32_t rows, std::uint32_t cols);

/// k independent random permutations concatenated (load factor scales
/// with k — used to sweep λ(M)).
MessageSet stacked_permutations(std::uint32_t n, std::uint32_t k, Rng& rng);

/// Tornado: p -> (p + n/2 - 1) mod n; the classical adversary for ring
/// and torus networks, near-worst-case bisection pressure on trees too.
MessageSet tornado_traffic(std::uint32_t n);

/// Ring shift by a fixed offset: p -> (p + offset) mod n.
MessageSet ring_shift_traffic(std::uint32_t n, std::uint32_t offset);

/// Full all-to-all: every ordered pair (p, q), p != q — n(n-1) messages;
/// use small n.
MessageSet all_to_all_traffic(std::uint32_t n);

/// Bisection flood: every processor in the left half sends `count`
/// messages to uniform destinations in the right half (stress for the
/// root channels; λ = count·(n/2)/w on a universal tree).
MessageSet bisection_flood_traffic(std::uint32_t n, std::uint32_t count,
                                   Rng& rng);

// ---------------------------------------------------------------------------
// Adversarial traffic (the routing-race zoo, bench/exp_routing_race).
// Each generator below has a streamed twin further down that consumes an
// identical draw sequence, so materialized and streamed runs agree
// element for element (pinned in test_traffic).

/// Incast: `count` messages aimed at one sink, each from a uniform random
/// non-sink source. count > n keeps the sink's down channel saturated
/// over many delivery cycles (the persistent form).
MessageSet incast_traffic(std::uint32_t n, std::size_t count, Leaf sink,
                          Rng& rng);

/// Elephant/mice mix: `elephants` random (src, dst) flows of
/// `elephant_size` messages each (draw order: one src, one dst per flow,
/// dst != src), followed by `mice` independently uniform single messages.
MessageSet elephant_mice_traffic(std::uint32_t n, std::uint32_t elephants,
                                 std::uint32_t elephant_size,
                                 std::size_t mice, Rng& rng);

/// Residue-collapse adversary for deterministic D-mod-k-style policies:
/// every processor sends to a uniform destination in one residue class
/// {d : d mod modulus == r} (r drawn once). All destination keys agree
/// modulo any wire count dividing `modulus`, so a static key-mod-limit
/// wire assignment collapses onto one wire and idles the rest — the
/// oblivious lottery is unaffected. Requires modulus in [1, n].
MessageSet adversarial_residue_traffic(std::uint32_t n, std::uint32_t modulus,
                                       Rng& rng);

/// Persistent hotspot: `hot_count` incast messages at `hot` (uniform
/// non-hot sources) mixed with `background` uniform random messages —
/// the E18 gate workload. Draw order: all hot sources, then the
/// background pairs.
MessageSet persistent_hotspot_traffic(std::uint32_t n, Leaf hot,
                                      std::size_t hot_count,
                                      std::size_t background, Rng& rng);

/// Named-workload dispatch used by the experiment binaries.
struct NamedWorkload {
  std::string name;
  MessageSet messages;
};
std::vector<NamedWorkload> standard_workloads(std::uint32_t n, Rng& rng);

// ---------------------------------------------------------------------------
// Streaming workloads. A MessageStream hands out messages one at a time,
// so a million-leaf workload is generated on demand and never exists as a
// materialized MessageSet (8 MiB at n = 2^20, and growing linearly). The
// path-source adapters (engine/fat_tree_model.hpp) turn a stream into
// chunked engine input; see DESIGN.md "Scale-out".

class MessageStream {
 public:
  virtual ~MessageStream() = default;

  /// Writes the next message into `out`; returns false when exhausted.
  /// Streams are single-pass.
  virtual bool next(Message& out) = 0;
};

/// Adapts a materialized MessageSet to the streaming interface (parity
/// tests, small workloads riding the streaming code path).
class MessageSetStream final : public MessageStream {
 public:
  explicit MessageSetStream(const MessageSet& messages)
      : messages_(messages) {}

  bool next(Message& out) override {
    if (next_ >= messages_.size()) return false;
    out = messages_[next_++];
    return true;
  }

 private:
  const MessageSet& messages_;
  std::size_t next_ = 0;
};

/// Closed-form permutation stream: destination is a pure function of the
/// source, so the whole workload is O(1) state at any n. The formulas
/// match the materialized generators above element for element.
class FormulaStream final : public MessageStream {
 public:
  using Fn = Leaf (*)(std::uint32_t n, Leaf p);

  FormulaStream(std::uint32_t n, Fn fn) : n_(n), fn_(fn) {}

  bool next(Message& out) override {
    if (p_ >= n_) return false;
    out = {p_, fn_(n_, p_)};
    ++p_;
    return true;
  }

 private:
  std::uint32_t n_;
  Fn fn_;
  Leaf p_ = 0;
};

/// Destination formulas for FormulaStream, mirroring the materialized
/// generators of the same name.
inline Leaf bit_reversal_dest(std::uint32_t n, Leaf p) {
  return static_cast<Leaf>(reverse_bits(p, floor_log2(n)));
}
inline Leaf complement_dest(std::uint32_t n, Leaf p) { return (n - 1) ^ p; }
inline Leaf tornado_dest(std::uint32_t n, Leaf p) {
  return (p + n / 2 - 1) % n;
}
inline Leaf shuffle_dest(std::uint32_t n, Leaf p) {
  const std::uint32_t bits = floor_log2(n);
  return ((p << 1) | (p >> (bits - 1))) & (n - 1);
}
inline Leaf transpose_dest(std::uint32_t n, Leaf p) {
  const std::uint32_t bits = floor_log2(n);
  const std::uint32_t half = bits / 2;
  const std::uint32_t lo = p & ((1u << half) - 1);
  return (lo << (bits - half)) | (p >> half);
}

/// Random permutation in streaming form: only the 4n-byte destination
/// table is materialized (the λ ≈ 1 workload of the scale-out benchmark).
/// Consumes the same rng.permutation(n) draw as
/// random_permutation_traffic, so the two agree for a shared generator
/// state.
class RandomPermutationStream final : public MessageStream {
 public:
  RandomPermutationStream(std::uint32_t n, Rng& rng)
      : perm_(rng.permutation(n)) {}

  bool next(Message& out) override {
    if (p_ >= perm_.size()) return false;
    out = {p_, perm_[p_]};
    ++p_;
    return true;
  }

 private:
  std::vector<std::uint32_t> perm_;
  Leaf p_ = 0;
};

/// `count` messages with independently uniform endpoints, O(1) state. The
/// Rng is taken by value: the stream owns its draw sequence, so reruns
/// from the same seed are identical.
class UniformRandomStream final : public MessageStream {
 public:
  UniformRandomStream(std::uint32_t n, std::uint64_t count, Rng rng)
      : n_(n), count_(count), rng_(rng) {
    FT_CHECK(n > 0);
  }

  bool next(Message& out) override {
    if (i_ >= count_) return false;
    const auto src = static_cast<Leaf>(rng_.below(n_));
    const auto dst = static_cast<Leaf>(rng_.below(n_));
    out = {src, dst};
    ++i_;
    return true;
  }

 private:
  std::uint32_t n_;
  std::uint64_t count_;
  Rng rng_;
  std::uint64_t i_ = 0;
};

/// Streamed twin of incast_traffic: same draw sequence, O(1) state. The
/// Rng is taken by value (the stream owns its draw sequence), as for
/// every stream below.
class IncastStream final : public MessageStream {
 public:
  IncastStream(std::uint32_t n, std::uint64_t count, Leaf sink, Rng rng)
      : n_(n), count_(count), sink_(sink), rng_(rng) {
    FT_CHECK(n >= 2 && sink < n);
  }

  bool next(Message& out) override {
    if (i_ >= count_) return false;
    auto src = static_cast<Leaf>(rng_.below(n_ - 1));
    if (src >= sink_) ++src;  // skip the sink: sources are non-sink leaves
    out = {src, sink_};
    ++i_;
    return true;
  }

 private:
  std::uint32_t n_;
  std::uint64_t count_;
  Leaf sink_;
  Rng rng_;
  std::uint64_t i_ = 0;
};

/// Streamed twin of elephant_mice_traffic: flow endpoints are drawn
/// lazily when each elephant flow starts, in the materialized draw order.
class ElephantMiceStream final : public MessageStream {
 public:
  ElephantMiceStream(std::uint32_t n, std::uint32_t elephants,
                     std::uint32_t elephant_size, std::uint64_t mice, Rng rng)
      : n_(n),
        elephants_(elephants),
        elephant_size_(elephant_size),
        mice_(mice),
        rng_(rng) {
    FT_CHECK(n >= 2);
  }

  bool next(Message& out) override {
    if (flow_ < elephants_) {
      if (in_flow_ == 0) {
        src_ = static_cast<Leaf>(rng_.below(n_));
        dst_ = static_cast<Leaf>(rng_.below(n_ - 1));
        if (dst_ >= src_) ++dst_;  // elephants never send to themselves
      }
      out = {src_, dst_};
      if (++in_flow_ >= elephant_size_) {
        in_flow_ = 0;
        ++flow_;
      }
      return true;
    }
    if (mouse_ >= mice_) return false;
    out = {static_cast<Leaf>(rng_.below(n_)),
           static_cast<Leaf>(rng_.below(n_))};
    ++mouse_;
    return true;
  }

 private:
  std::uint32_t n_;
  std::uint32_t elephants_;
  std::uint32_t elephant_size_;
  std::uint64_t mice_;
  Rng rng_;
  std::uint32_t flow_ = 0;
  std::uint32_t in_flow_ = 0;
  Leaf src_ = 0;
  Leaf dst_ = 0;
  std::uint64_t mouse_ = 0;
};

/// Streamed twin of adversarial_residue_traffic: the residue is drawn at
/// construction (the materialized generator's first draw), destinations
/// per message after it.
class AdversarialResidueStream final : public MessageStream {
 public:
  AdversarialResidueStream(std::uint32_t n, std::uint32_t modulus, Rng rng)
      : n_(n), modulus_(modulus), rng_(rng) {
    FT_CHECK(modulus >= 1 && modulus <= n);
    r_ = static_cast<Leaf>(rng_.below(modulus_));
  }

  bool next(Message& out) override {
    if (p_ >= n_) return false;
    const auto dst =
        static_cast<Leaf>(r_ + modulus_ * rng_.below(n_ / modulus_));
    out = {p_, dst};
    ++p_;
    return true;
  }

 private:
  std::uint32_t n_;
  std::uint32_t modulus_;
  Rng rng_;
  Leaf r_ = 0;
  Leaf p_ = 0;
};

/// Streamed twin of persistent_hotspot_traffic: the incast phase first,
/// then the uniform background phase, one draw sequence throughout.
class PersistentHotspotStream final : public MessageStream {
 public:
  PersistentHotspotStream(std::uint32_t n, Leaf hot, std::uint64_t hot_count,
                          std::uint64_t background, Rng rng)
      : n_(n), hot_(hot), hot_count_(hot_count), background_(background),
        rng_(rng) {
    FT_CHECK(n >= 2 && hot < n);
  }

  bool next(Message& out) override {
    if (i_ < hot_count_) {
      auto src = static_cast<Leaf>(rng_.below(n_ - 1));
      if (src >= hot_) ++src;
      out = {src, hot_};
      ++i_;
      return true;
    }
    if (bg_ >= background_) return false;
    out = {static_cast<Leaf>(rng_.below(n_)),
           static_cast<Leaf>(rng_.below(n_))};
    ++bg_;
    return true;
  }

 private:
  std::uint32_t n_;
  Leaf hot_;
  std::uint64_t hot_count_;
  std::uint64_t background_;
  Rng rng_;
  std::uint64_t i_ = 0;
  std::uint64_t bg_ = 0;
};

}  // namespace ft
