#include "core/io.hpp"

#include <istream>
#include <ostream>
#include <string>

namespace ft {

void write_message_set(std::ostream& os, const MessageSet& m) {
  os << "messages " << m.size() << '\n';
  for (const auto& msg : m) {
    os << msg.src << ' ' << msg.dst << '\n';
  }
}

std::optional<MessageSet> read_message_set(std::istream& is) {
  std::string tag;
  std::size_t count = 0;
  if (!(is >> tag >> count) || tag != "messages") return std::nullopt;
  MessageSet m;
  m.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Leaf src = 0, dst = 0;
    if (!(is >> src >> dst)) return std::nullopt;
    m.push_back({src, dst});
  }
  return m;
}

void write_schedule(std::ostream& os, const Schedule& s) {
  os << "schedule " << s.cycles.size() << '\n';
  for (const auto& cycle : s.cycles) {
    os << "cycle " << cycle.size() << '\n';
    for (const auto& msg : cycle) {
      os << msg.src << ' ' << msg.dst << '\n';
    }
  }
}

std::optional<Schedule> read_schedule(std::istream& is) {
  std::string tag;
  std::size_t cycles = 0;
  if (!(is >> tag >> cycles) || tag != "schedule") return std::nullopt;
  Schedule s;
  s.cycles.resize(cycles);
  for (std::size_t c = 0; c < cycles; ++c) {
    std::size_t count = 0;
    if (!(is >> tag >> count) || tag != "cycle") return std::nullopt;
    s.cycles[c].reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      Leaf src = 0, dst = 0;
      if (!(is >> src >> dst)) return std::nullopt;
      s.cycles[c].push_back({src, dst});
    }
  }
  return s;
}

}  // namespace ft
