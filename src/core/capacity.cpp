#include "core/capacity.hpp"

#include <algorithm>
#include <cmath>

namespace ft {

CapacityProfile::CapacityProfile(const FatTreeTopology& topo,
                                 std::vector<std::uint64_t> cap_by_level)
    : cap_by_level_(std::move(cap_by_level)) {
  FT_CHECK_MSG(cap_by_level_.size() == topo.height() + 1,
               "profile must cover levels 0..L");
  for (auto c : cap_by_level_) FT_CHECK_MSG(c >= 1, "capacity must be >= 1");
}

CapacityProfile CapacityProfile::universal(const FatTreeTopology& topo,
                                           std::uint64_t root_capacity) {
  const std::uint32_t L = topo.height();
  const std::uint64_t n = topo.num_processors();
  const std::uint64_t w = std::clamp<std::uint64_t>(root_capacity, 1, n);
  std::vector<std::uint64_t> caps(L + 1);
  for (std::uint32_t k = 0; k <= L; ++k) {
    // Doubling regime: 2^{L-k}; root regime: w / 2^{2k/3}, rounded up so
    // the root really has capacity w and no channel drops to zero.
    const std::uint64_t doubling = std::uint64_t{1} << (L - k);
    const double shrink = std::exp2(-2.0 * k / 3.0);
    const auto root_regime = static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(w) * shrink));
    caps[k] = std::max<std::uint64_t>(1, std::min(doubling, root_regime));
  }
  return CapacityProfile(topo, std::move(caps));
}

CapacityProfile CapacityProfile::constant(const FatTreeTopology& topo,
                                          std::uint64_t c) {
  FT_CHECK(c >= 1);
  return CapacityProfile(
      topo, std::vector<std::uint64_t>(topo.height() + 1, c));
}

CapacityProfile CapacityProfile::doubling(const FatTreeTopology& topo) {
  const std::uint32_t L = topo.height();
  std::vector<std::uint64_t> caps(L + 1);
  for (std::uint32_t k = 0; k <= L; ++k) {
    caps[k] = std::uint64_t{1} << (L - k);
  }
  return CapacityProfile(topo, std::move(caps));
}

CapacityProfile CapacityProfile::with_channel_capacity(
    const FatTreeTopology& topo, NodeId node, std::uint64_t capacity) const {
  FT_CHECK(node >= 1 && node <= topo.num_nodes());
  FT_CHECK_MSG(capacity >= 1, "a channel must keep at least one wire");
  CapacityProfile out = *this;
  if (out.overrides_.empty()) {
    out.overrides_.assign(topo.num_nodes() + 1, 0);
  }
  out.overrides_[node] = capacity;
  return out;
}

std::uint64_t CapacityProfile::total_wires(const FatTreeTopology& topo) const {
  std::uint64_t total = 0;
  if (overrides_.empty()) {
    for (std::uint32_t k = 0; k <= topo.height(); ++k) {
      const std::uint64_t channels_at_level = std::uint64_t{1} << k;
      total += 2 * channels_at_level * cap_by_level_[k];
    }
  } else {
    for (NodeId v = 1; v <= topo.num_nodes(); ++v) {
      total += 2 * capacity(topo, v);
    }
  }
  return total;
}

}  // namespace ft
