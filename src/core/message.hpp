// Messages and message sets (Section II). A message set M ⊆ P × P; each
// message travels the unique tree path from its source leaf to its
// destination leaf.
#pragma once

#include <cstdint>
#include <vector>

#include "core/topology.hpp"

namespace ft {

struct Message {
  Leaf src;
  Leaf dst;

  friend bool operator==(const Message&, const Message&) = default;
};

using MessageSet = std::vector<Message>;

/// True iff every endpoint of every message names a valid processor.
inline bool valid_message_set(const FatTreeTopology& topo,
                              const MessageSet& m) {
  for (const auto& msg : m) {
    if (msg.src >= topo.num_processors() || msg.dst >= topo.num_processors())
      return false;
  }
  return true;
}

}  // namespace ft
