#include "core/load.hpp"

#include <algorithm>

namespace ft {

LoadMap compute_loads(const FatTreeTopology& topo, const MessageSet& m) {
  LoadMap loads;
  loads.up.assign(topo.num_nodes() + 1, 0);
  loads.down.assign(topo.num_nodes() + 1, 0);
  for (const auto& msg : m) {
    topo.for_each_channel_on_path(msg.src, msg.dst, [&](ChannelId c) {
      if (c.dir == Direction::Up) {
        ++loads.up[c.node];
      } else {
        ++loads.down[c.node];
      }
    });
  }
  return loads;
}

double load_factor(const FatTreeTopology& topo, const CapacityProfile& caps,
                   const LoadMap& loads) {
  double lambda = 0.0;
  for (NodeId v = 1; v <= topo.num_nodes(); ++v) {
    const auto cap = static_cast<double>(caps.capacity(topo, v));
    lambda = std::max(lambda, static_cast<double>(loads.up[v]) / cap);
    lambda = std::max(lambda, static_cast<double>(loads.down[v]) / cap);
  }
  return lambda;
}

double load_factor(const FatTreeTopology& topo, const CapacityProfile& caps,
                   const MessageSet& m) {
  return load_factor(topo, caps, compute_loads(topo, m));
}

bool is_one_cycle(const FatTreeTopology& topo, const CapacityProfile& caps,
                  const MessageSet& m) {
  const LoadMap loads = compute_loads(topo, m);
  for (NodeId v = 1; v <= topo.num_nodes(); ++v) {
    const std::uint64_t cap = caps.capacity(topo, v);
    if (loads.up[v] > cap || loads.down[v] > cap) return false;
  }
  return true;
}

ChannelId bottleneck_channel(const FatTreeTopology& topo,
                             const CapacityProfile& caps,
                             const MessageSet& m) {
  const LoadMap loads = compute_loads(topo, m);
  ChannelId best{0, Direction::Up};
  double best_lambda = -1.0;
  for (NodeId v = 1; v <= topo.num_nodes(); ++v) {
    const auto cap = static_cast<double>(caps.capacity(topo, v));
    const double lu = static_cast<double>(loads.up[v]) / cap;
    const double ld = static_cast<double>(loads.down[v]) / cap;
    if (lu > best_lambda) {
      best_lambda = lu;
      best = {v, Direction::Up};
    }
    if (ld > best_lambda) {
      best_lambda = ld;
      best = {v, Direction::Down};
    }
  }
  return best;
}

}  // namespace ft
