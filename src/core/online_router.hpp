// On-line randomized routing (the extension sketched in Sections II and
// VI and developed in Greenberg & Leiserson, "Randomized routing on
// fat-trees", FOCS 1985 — reference [8] of the paper).
//
// Model: traffic is batched into delivery cycles. In a cycle, every
// still-undelivered message attempts its unique tree path. At each channel
// the concentrator can carry only cap(c) messages; when more contend, a
// random cap(c)-subset survives and the rest are *lost* (the paper's
// congestion + acknowledgment mechanism — the source learns of the loss
// and retries next cycle). The FOCS result shows all messages are
// delivered in O(λ(M) + lg n · lg lg n) cycles with high probability;
// experiment E11 measures exactly that curve.
//
// The cycle loop itself runs on the unified CycleEngine
// (engine/engine.hpp) with RandomSubset contention; this file is the
// fat-tree adapter. Each arbitration draws from a private (seed, cycle,
// channel) stream, so serial and parallel execution give identical
// results for one seed (and the router remains deterministic given
// `rng`'s state, from which that seed is drawn).
#pragma once

#include <cstdint>
#include <vector>

#include "core/capacity.hpp"
#include "core/message.hpp"
#include "core/topology.hpp"
#include "core/traffic.hpp"
#include "engine/engine.hpp"
#include "engine/fault_plan.hpp"
#include "engine/observer.hpp"
#include "engine/phase_profile.hpp"
#include "util/prng.hpp"

namespace ft {

struct OnlineRoutingResult {
  std::uint64_t delivery_cycles = 0;
  std::uint64_t total_attempts = 0;   ///< Message-attempts over all cycles.
  std::uint64_t total_losses = 0;     ///< Attempts killed by congestion.
  /// True iff the router hit max_cycles with messages still undelivered;
  /// the result is then a truncated run, not a completed routing. Callers
  /// that need completion must check this (never reported silently:
  /// delivered_per_cycle sums to less than |M|).
  bool gave_up = false;
  // Retry / dynamic-fault lifecycle (zero without a RetryPolicy or
  // FaultPlan in the options).
  std::uint64_t messages_given_up = 0;  ///< retries exhausted per policy
  std::uint64_t total_backoffs = 0;     ///< backoff parkings
  std::uint64_t fault_down_events = 0;  ///< channel down transitions
  std::uint64_t fault_up_events = 0;    ///< channel repair transitions
  std::uint64_t subtree_kill_events = 0;  ///< correlated domain strikes
  std::uint64_t degraded_channel_cycles = 0;  ///< Σ degraded chans/cycle
  /// Wall-clock Amdahl decomposition of the cycle loop; all-zero unless
  /// OnlineRouterOptions::time_phases was set.
  EnginePhaseProfile phases;
  std::vector<std::uint32_t> delivered_per_cycle;
};

/// Sentinel for OnlineRouterOptions::shard_level: defer to FT_SHARD_LEVEL
/// or the measured heuristic.
inline constexpr std::uint32_t kShardLevelAuto = 0xffffffffu;

struct OnlineRouterOptions {
  /// Give up after this many cycles. 0 selects the safety default
  /// 64·(⌊λ(M)⌋ + lg² n + 4) — far above the w.h.p. envelope, so hitting
  /// it indicates a genuine livelock rather than bad luck. When the cap
  /// is hit, OnlineRoutingResult::gave_up is set.
  std::uint32_t max_cycles = 0;
  /// Routing discipline for contended channels (the routing-policy seam;
  /// see engine/engine.hpp). ObliviousRandom is the paper's randomized
  /// lossy lottery and the default; every discipline preserves the
  /// serial ≡ parallel determinism contract.
  RoutingPolicy policy = RoutingPolicy::ObliviousRandom;
  /// Concentrator effectiveness: a channel of capacity c accepts
  /// floor(alpha * c) messages but at least 1 (alpha = 1 models the ideal
  /// concentrator; 3/4 models the partial concentrators of Section IV).
  double alpha = 1.0;
  /// Resolve contention across independent channels on a thread pool;
  /// results are identical to the serial mode.
  bool parallel = false;
  /// Worker threads for parallel mode (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Sharded executor: resolve heavy spine stages on the thread pool too
  /// (see EngineOptions::parallel_spine). Results are identical either
  /// way; off keeps the serial-spine Amdahl reference measurable.
  bool parallel_spine = true;
  /// Subtree shard depth for the parallel executor. kShardLevelAuto
  /// defers to the FT_SHARD_LEVEL environment variable if set, else to
  /// the pick_shard_level heuristic (~2 shards per worker); any other
  /// value — 0 means explicitly unsharded — is used as-is, clamped to
  /// the topology height. Ignored in serial mode.
  std::uint32_t shard_level = kShardLevelAuto;
  /// Optional instrumentation hook (per-cycle counters, channel
  /// utilization; see engine/observer.hpp). Not owned.
  EngineObserver* observer = nullptr;
  /// Per-message retry policy (bounded attempts / exponential backoff /
  /// deadline). Defaults to the classic retry-every-cycle behavior.
  RetryPolicy retry;
  /// Optional transient-fault plan consulted every delivery cycle (not
  /// owned; must outlive the call). nullptr = fault-free run.
  const FaultPlan* fault_plan = nullptr;
  /// Time the parallel sweeps vs the serial spine/coordination band and
  /// report the measured Amdahl profile in OnlineRoutingResult::phases.
  /// Never changes routing results.
  bool time_phases = false;
};

/// Routes m on-line; every message is delivered by termination unless the
/// result's gave_up flag is set. Deterministic given `rng`'s seed.
OnlineRoutingResult route_online(const FatTreeTopology& topo,
                                 const CapacityProfile& caps,
                                 const MessageSet& m, Rng& rng,
                                 const OnlineRouterOptions& opts = {});

/// Streaming form: the workload arrives as a MessageStream and is compiled
/// into engine input one chunk at a time, so the full CSR path set never
/// exists (peak input memory is one chunk; see DESIGN.md "Scale-out").
/// `lambda_hint` stands in for load_factor(topo, caps, m) in the default
/// max_cycles estimate, since the message set cannot be scanned twice; it
/// is ignored when opts.max_cycles is nonzero. For the same messages in
/// the same order, the result is bit-identical to route_online.
OnlineRoutingResult route_online_stream(const FatTreeTopology& topo,
                                        const CapacityProfile& caps,
                                        MessageStream& messages,
                                        double lambda_hint, Rng& rng,
                                        const OnlineRouterOptions& opts = {});

}  // namespace ft
