// On-line randomized routing (the extension sketched in Sections II and
// VI and developed in Greenberg & Leiserson, "Randomized routing on
// fat-trees", FOCS 1985 — reference [8] of the paper).
//
// Model: traffic is batched into delivery cycles. In a cycle, every
// still-undelivered message attempts its unique tree path. At each channel
// the concentrator can carry only cap(c) messages; when more contend, a
// random cap(c)-subset survives and the rest are *lost* (the paper's
// congestion + acknowledgment mechanism — the source learns of the loss
// and retries next cycle). The FOCS result shows all messages are
// delivered in O(λ(M) + lg n · lg lg n) cycles with high probability;
// experiment E11 measures exactly that curve.
#pragma once

#include <cstdint>
#include <vector>

#include "core/capacity.hpp"
#include "core/message.hpp"
#include "core/topology.hpp"
#include "util/prng.hpp"

namespace ft {

struct OnlineRoutingResult {
  std::uint32_t delivery_cycles = 0;
  std::uint64_t total_attempts = 0;   ///< Message-attempts over all cycles.
  std::uint64_t total_losses = 0;     ///< Attempts killed by congestion.
  std::vector<std::uint32_t> delivered_per_cycle;
};

struct OnlineRouterOptions {
  /// Give up after this many cycles (0 = 64·(λ + lg² n) safety default).
  std::uint32_t max_cycles = 0;
  /// Concentrator effectiveness: a channel of capacity c accepts
  /// floor(alpha * c) messages but at least 1 (alpha = 1 models the ideal
  /// concentrator; 3/4 models the partial concentrators of Section IV).
  double alpha = 1.0;
};

/// Routes m on-line; every message is delivered by termination.
/// Deterministic given `rng`'s seed.
OnlineRoutingResult route_online(const FatTreeTopology& topo,
                                 const CapacityProfile& caps,
                                 const MessageSet& m, Rng& rng,
                                 const OnlineRouterOptions& opts = {});

}  // namespace ft
