#include "core/offline_scheduler.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>

#include "core/cycle_loads.hpp"
#include "core/replay.hpp"
#include "util/check.hpp"

namespace ft {
namespace {

constexpr std::int32_t kNone = -1;

/// Hierarchical matching of message ends on one side of a node (the
/// paper's matching phase). Returns, per message index, the index of the
/// message whose end it is matched with (kNone for the at-most-one
/// unmatched end). `use_src` selects whether the end of interest is the
/// source leaf (left side of a left-to-right set) or the destination leaf.
struct SideMatch {
  std::vector<std::int32_t> partner;  // indexed by position in `msgs`
  std::int32_t unmatched = kNone;
};

SideMatch match_side(const FatTreeTopology& topo, NodeId side_root,
                     const MessageSet& msgs, bool use_src) {
  SideMatch result;
  result.partner.assign(msgs.size(), kNone);

  // Ends sorted by leaf; the recursion below then only descends into
  // subtrees that actually contain ends.
  std::vector<std::pair<Leaf, std::int32_t>> ends;
  ends.reserve(msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    const Leaf leaf = use_src ? msgs[i].src : msgs[i].dst;
    FT_CHECK_MSG(topo.leaf_in_subtree(leaf, side_root),
                 "message end outside the side subtree");
    ends.emplace_back(leaf, static_cast<std::int32_t>(i));
  }
  std::sort(ends.begin(), ends.end());

  // Recursive pairing: a subtree returns its at-most-one leftover end.
  auto rec = [&](auto&& self, NodeId node, std::size_t lo,
                 std::size_t hi) -> std::int32_t {
    if (lo >= hi) return kNone;
    if (topo.is_leaf(node) || hi - lo == 1) {
      // Within a single leaf (or a singleton range) pair consecutively.
      for (std::size_t i = lo; i + 1 < hi; i += 2) {
        const auto a = ends[i].second;
        const auto b = ends[i + 1].second;
        result.partner[a] = b;
        result.partner[b] = a;
      }
      return (hi - lo) % 2 ? ends[hi - 1].second : kNone;
    }
    const Leaf split_leaf = topo.subtree_first_leaf(topo.right_child(node));
    const auto mid_it = std::lower_bound(
        ends.begin() + static_cast<std::ptrdiff_t>(lo),
        ends.begin() + static_cast<std::ptrdiff_t>(hi),
        std::make_pair(split_leaf, kNone));
    const auto mid = static_cast<std::size_t>(mid_it - ends.begin());
    const std::int32_t l = self(self, topo.left_child(node), lo, mid);
    const std::int32_t r = self(self, topo.right_child(node), mid, hi);
    if (l != kNone && r != kNone) {
      result.partner[l] = r;
      result.partner[r] = l;
      return kNone;
    }
    return l != kNone ? l : r;
  };
  result.unmatched = rec(rec, side_root, 0, ends.size());
  return result;
}

bool fits_alone(const FatTreeTopology& topo, const CapacityProfile& caps,
                const MessageSet& m, CycleLoads& scratch) {
  return scratch.try_add(topo, caps, m, /*commit=*/false);
}

/// Splits `msgs` (all crossing v in one direction) repeatedly until every
/// part is a one-cycle set on its own.
std::vector<MessageSet> partition_to_one_cycle(const FatTreeTopology& topo,
                                               const CapacityProfile& caps,
                                               NodeId v, MessageSet msgs,
                                               CycleLoads& scratch) {
  std::vector<MessageSet> done;
  std::deque<MessageSet> work;
  if (!msgs.empty()) work.push_back(std::move(msgs));
  while (!work.empty()) {
    MessageSet s = std::move(work.front());
    work.pop_front();
    if (s.size() <= 1 || fits_alone(topo, caps, s, scratch)) {
      done.push_back(std::move(s));
      continue;
    }
    EvenSplit split = split_crossing_messages(topo, v, s);
    FT_CHECK_MSG(!split.first.empty() && !split.second.empty(),
                 "even split must make progress");
    work.push_back(std::move(split.first));
    work.push_back(std::move(split.second));
  }
  return done;
}

/// Per-node crossing sets at one level: left-to-right and right-to-left.
struct NodeCrossings {
  MessageSet left_to_right;
  MessageSet right_to_left;
};

/// Groups messages by LCA node; self-messages are returned separately.
void group_by_lca(const FatTreeTopology& topo, const MessageSet& m,
                  std::map<NodeId, NodeCrossings>& groups,
                  MessageSet& self_messages) {
  for (const auto& msg : m) {
    if (msg.src == msg.dst) {
      self_messages.push_back(msg);
      continue;
    }
    const NodeId v = topo.lca(msg.src, msg.dst);
    auto& g = groups[v];
    if (topo.leaf_in_subtree(msg.src, topo.left_child(v))) {
      g.left_to_right.push_back(msg);
    } else {
      g.right_to_left.push_back(msg);
    }
  }
}

/// Runs the per-node partitioning for every node, producing for each node
/// a list of cycle sets (LR part i merged with RL part i: they use
/// disjoint channels, so they share a delivery cycle).
std::map<NodeId, std::vector<MessageSet>> partition_all_nodes(
    const FatTreeTopology& topo, const CapacityProfile& caps,
    const std::map<NodeId, NodeCrossings>& groups, CycleLoads& scratch) {
  std::map<NodeId, std::vector<MessageSet>> parts;
  for (const auto& [v, g] : groups) {
    auto lr = partition_to_one_cycle(topo, caps, v, g.left_to_right, scratch);
    auto rl = partition_to_one_cycle(topo, caps, v, g.right_to_left, scratch);
    std::vector<MessageSet> merged(std::max(lr.size(), rl.size()));
    for (std::size_t i = 0; i < merged.size(); ++i) {
      if (i < lr.size()) {
        merged[i].insert(merged[i].end(), lr[i].begin(), lr[i].end());
      }
      if (i < rl.size()) {
        merged[i].insert(merged[i].end(), rl[i].begin(), rl[i].end());
      }
    }
    parts.emplace(v, std::move(merged));
  }
  return parts;
}

}  // namespace

EvenSplit split_crossing_messages(const FatTreeTopology& topo, NodeId v,
                                  const MessageSet& crossing) {
  EvenSplit out;
  if (crossing.empty()) return out;
  FT_CHECK_MSG(!topo.is_leaf(v), "crossing node must be internal");

  // All messages must cross v in the same direction; identify the source
  // side from the first message.
  const NodeId lchild = topo.left_child(v);
  const bool src_left = topo.leaf_in_subtree(crossing[0].src, lchild);
  const NodeId src_side = src_left ? lchild : topo.right_child(v);
  const NodeId dst_side = src_left ? topo.right_child(v) : lchild;
  for (const auto& msg : crossing) {
    FT_CHECK_MSG(topo.lca(msg.src, msg.dst) == v, "message does not cross v");
    FT_CHECK_MSG(topo.leaf_in_subtree(msg.src, src_side),
                 "mixed directions in crossing set");
  }

  // Matching phase: hierarchically match source ends on the source side
  // and destination ends on the destination side.
  const SideMatch smatch = match_side(topo, src_side, crossing, true);
  const SideMatch dmatch = match_side(topo, dst_side, crossing, false);

  // Tracing phase. The multigraph whose vertices are message ends and
  // whose edges are messages plus matched pairs has max degree 2: it is a
  // disjoint union of one path (when |crossing| is odd) and cycles.
  // Walking each component and assigning messages alternately to the two
  // halves splits every channel's load to within one.
  std::vector<std::int8_t> assigned(crossing.size(), -1);
  auto trace_from = [&](std::size_t start) {
    std::size_t cur = start;
    bool to_first = true;  // message traversed source-to-destination
    for (;;) {
      FT_CHECK(assigned[cur] < 0);
      assigned[cur] = to_first ? 0 : 1;
      // Alternate: after traversing `cur`, hop across the matched end on
      // the side we arrived at, then traverse that message the other way.
      const std::int32_t next =
          to_first ? dmatch.partner[cur] : smatch.partner[cur];
      if (next == kNone || assigned[static_cast<std::size_t>(next)] >= 0) {
        return;
      }
      cur = static_cast<std::size_t>(next);
      to_first = !to_first;
    }
  };

  // Start with the unmatched source end if it exists (the path component),
  // then sweep up the remaining cycles.
  if (smatch.unmatched != kNone) {
    trace_from(static_cast<std::size_t>(smatch.unmatched));
  }
  for (std::size_t i = 0; i < crossing.size(); ++i) {
    if (assigned[i] < 0) trace_from(i);
  }

  for (std::size_t i = 0; i < crossing.size(); ++i) {
    (assigned[i] == 0 ? out.first : out.second).push_back(crossing[i]);
  }
  return out;
}

Schedule schedule_offline(const FatTreeTopology& topo,
                          const CapacityProfile& caps, const MessageSet& m) {
  Schedule schedule;
  std::map<NodeId, NodeCrossings> groups;
  MessageSet self_messages;
  group_by_lca(topo, m, groups, self_messages);

  CycleLoads scratch(topo);
  auto parts = partition_all_nodes(topo, caps, groups, scratch);

  // Paper assembly: all subtrees rooted at the same level route
  // concurrently (their channels are disjoint); levels run one after
  // another, giving d <= sum over levels of the per-level maximum.
  for (std::uint32_t level = 0; level < topo.height(); ++level) {
    std::size_t level_cycles = 0;
    for (const auto& [v, sets] : parts) {
      if (topo.level(v) == level) {
        level_cycles = std::max(level_cycles, sets.size());
      }
    }
    if (level_cycles == 0) continue;
    const std::size_t base = schedule.cycles.size();
    schedule.cycles.resize(base + level_cycles);
    for (const auto& [v, sets] : parts) {
      if (topo.level(v) != level) continue;
      for (std::size_t i = 0; i < sets.size(); ++i) {
        auto& cyc = schedule.cycles[base + i];
        cyc.insert(cyc.end(), sets[i].begin(), sets[i].end());
      }
    }
  }

  if (!self_messages.empty()) {
    if (schedule.cycles.empty()) schedule.cycles.emplace_back();
    auto& first = schedule.cycles.front();
    first.insert(first.end(), self_messages.begin(), self_messages.end());
  }
  return schedule;
}

Schedule schedule_offline_packed(const FatTreeTopology& topo,
                                 const CapacityProfile& caps,
                                 const MessageSet& m) {
  std::map<NodeId, NodeCrossings> groups;
  MessageSet self_messages;
  group_by_lca(topo, m, groups, self_messages);

  CycleLoads scratch(topo);
  auto parts = partition_all_nodes(topo, caps, groups, scratch);

  // First-fit packing of the per-node one-cycle sets across levels: a set
  // from a deep node often coexists with sets from other levels because
  // their channel footprints overlap without exceeding capacity.
  Schedule schedule;
  std::vector<CycleLoads> cycle_loads;
  for (auto& [v, sets] : parts) {
    (void)v;
    for (auto& set : sets) {
      bool placed = false;
      for (std::size_t c = 0; c < schedule.cycles.size(); ++c) {
        if (cycle_loads[c].try_add(topo, caps, set, /*commit=*/true)) {
          auto& cyc = schedule.cycles[c];
          cyc.insert(cyc.end(), set.begin(), set.end());
          placed = true;
          break;
        }
      }
      if (!placed) {
        cycle_loads.emplace_back(topo);
        FT_CHECK(cycle_loads.back().try_add(topo, caps, set, true));
        schedule.cycles.push_back(std::move(set));
      }
    }
  }

  if (!self_messages.empty()) {
    if (schedule.cycles.empty()) schedule.cycles.emplace_back();
    auto& first = schedule.cycles.front();
    first.insert(first.end(), self_messages.begin(), self_messages.end());
  }
  return schedule;
}

Schedule schedule_greedy(const FatTreeTopology& topo,
                         const CapacityProfile& caps, const MessageSet& m) {
  Schedule schedule;
  std::vector<CycleLoads> cycle_loads;
  for (const auto& msg : m) {
    const MessageSet single{msg};
    bool placed = false;
    for (std::size_t c = 0; c < schedule.cycles.size(); ++c) {
      if (cycle_loads[c].try_add(topo, caps, single, /*commit=*/true)) {
        schedule.cycles[c].push_back(msg);
        placed = true;
        break;
      }
    }
    if (!placed) {
      cycle_loads.emplace_back(topo);
      FT_CHECK(cycle_loads.back().try_add(topo, caps, single, true));
      schedule.cycles.push_back(single);
    }
  }
  return schedule;
}

bool verify_schedule(const FatTreeTopology& topo, const CapacityProfile& caps,
                     const MessageSet& m, const Schedule& s) {
  // Every cycle must individually respect capacities: replaying the
  // schedule on the engine tallies each channel-cycle's load against cap.
  if (replay_schedule(topo, caps, s).capacity_violations != 0) return false;
  // The cycles must partition m as a multiset.
  auto key = [](const Message& msg) {
    return (static_cast<std::uint64_t>(msg.src) << 32) | msg.dst;
  };
  std::vector<std::uint64_t> want, got;
  want.reserve(m.size());
  for (const auto& msg : m) want.push_back(key(msg));
  for (const auto& cycle : s.cycles) {
    for (const auto& msg : cycle) got.push_back(key(msg));
  }
  std::sort(want.begin(), want.end());
  std::sort(got.begin(), got.end());
  return want == got;
}

}  // namespace ft
