#include "core/traffic.hpp"

#include "util/bits.hpp"
#include "util/check.hpp"

namespace ft {

MessageSet random_permutation_traffic(std::uint32_t n, Rng& rng) {
  MessageSet m;
  m.reserve(n);
  const auto perm = rng.permutation(n);
  for (std::uint32_t p = 0; p < n; ++p) m.push_back({p, perm[p]});
  return m;
}

MessageSet bit_reversal_traffic(std::uint32_t n) {
  FT_CHECK(is_pow2(n));
  const std::uint32_t bits = floor_log2(n);
  MessageSet m;
  m.reserve(n);
  for (std::uint32_t p = 0; p < n; ++p) {
    m.push_back({p, static_cast<Leaf>(reverse_bits(p, bits))});
  }
  return m;
}

MessageSet transpose_traffic(std::uint32_t n) {
  FT_CHECK(is_pow2(n));
  const std::uint32_t bits = floor_log2(n);
  const std::uint32_t half = bits / 2;
  MessageSet m;
  m.reserve(n);
  for (std::uint32_t p = 0; p < n; ++p) {
    const std::uint32_t lo = p & ((1u << half) - 1);
    const std::uint32_t hi = p >> half;
    // Swap the low `half` bits with the remaining high bits.
    const std::uint32_t dst = (lo << (bits - half)) | hi;
    m.push_back({p, dst});
  }
  return m;
}

MessageSet shuffle_traffic(std::uint32_t n) {
  FT_CHECK(is_pow2(n));
  const std::uint32_t bits = floor_log2(n);
  MessageSet m;
  m.reserve(n);
  for (std::uint32_t p = 0; p < n; ++p) {
    const std::uint32_t dst = ((p << 1) | (p >> (bits - 1))) & (n - 1);
    m.push_back({p, dst});
  }
  return m;
}

MessageSet complement_traffic(std::uint32_t n) {
  FT_CHECK(is_pow2(n));
  MessageSet m;
  m.reserve(n);
  for (std::uint32_t p = 0; p < n; ++p) m.push_back({p, (n - 1) ^ p});
  return m;
}

MessageSet uniform_random_traffic(std::uint32_t n, std::size_t count,
                                  Rng& rng) {
  MessageSet m;
  m.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    m.push_back({static_cast<Leaf>(rng.below(n)),
                 static_cast<Leaf>(rng.below(n))});
  }
  return m;
}

MessageSet hotspot_traffic(std::uint32_t n, double fraction, Leaf hot,
                           Rng& rng) {
  FT_CHECK(hot < n);
  MessageSet m;
  m.reserve(n);
  for (std::uint32_t p = 0; p < n; ++p) {
    if (rng.chance(fraction)) {
      m.push_back({p, hot});
    } else {
      m.push_back({p, static_cast<Leaf>(rng.below(n))});
    }
  }
  return m;
}

MessageSet local_traffic(std::uint32_t n, std::uint32_t radius, Rng& rng) {
  FT_CHECK(radius >= 1);
  MessageSet m;
  m.reserve(n);
  for (std::uint32_t p = 0; p < n; ++p) {
    const auto offset = static_cast<std::int64_t>(
        rng.range(-static_cast<std::int64_t>(radius),
                  static_cast<std::int64_t>(radius)));
    const auto dst = static_cast<Leaf>(
        (static_cast<std::int64_t>(p) + offset + n) % n);
    m.push_back({p, dst});
  }
  return m;
}

MessageSet fem_halo_traffic(std::uint32_t rows, std::uint32_t cols) {
  MessageSet m;
  m.reserve(static_cast<std::size_t>(rows) * cols * 4);
  auto id = [cols](std::uint32_t r, std::uint32_t c) { return r * cols + c; };
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      const Leaf self = id(r, c);
      if (r > 0) m.push_back({self, id(r - 1, c)});
      if (r + 1 < rows) m.push_back({self, id(r + 1, c)});
      if (c > 0) m.push_back({self, id(r, c - 1)});
      if (c + 1 < cols) m.push_back({self, id(r, c + 1)});
    }
  }
  return m;
}

MessageSet stacked_permutations(std::uint32_t n, std::uint32_t k, Rng& rng) {
  MessageSet m;
  m.reserve(static_cast<std::size_t>(n) * k);
  for (std::uint32_t i = 0; i < k; ++i) {
    const auto one = random_permutation_traffic(n, rng);
    m.insert(m.end(), one.begin(), one.end());
  }
  return m;
}

MessageSet tornado_traffic(std::uint32_t n) {
  MessageSet m;
  m.reserve(n);
  for (std::uint32_t p = 0; p < n; ++p) {
    m.push_back({p, (p + n / 2 - 1) % n});
  }
  return m;
}

MessageSet ring_shift_traffic(std::uint32_t n, std::uint32_t offset) {
  MessageSet m;
  m.reserve(n);
  for (std::uint32_t p = 0; p < n; ++p) m.push_back({p, (p + offset) % n});
  return m;
}

MessageSet all_to_all_traffic(std::uint32_t n) {
  MessageSet m;
  m.reserve(static_cast<std::size_t>(n) * (n - 1));
  for (std::uint32_t p = 0; p < n; ++p) {
    for (std::uint32_t q = 0; q < n; ++q) {
      if (p != q) m.push_back({p, q});
    }
  }
  return m;
}

MessageSet bisection_flood_traffic(std::uint32_t n, std::uint32_t count,
                                   Rng& rng) {
  MessageSet m;
  m.reserve(static_cast<std::size_t>(n / 2) * count);
  for (std::uint32_t p = 0; p < n / 2; ++p) {
    for (std::uint32_t i = 0; i < count; ++i) {
      m.push_back({p, static_cast<Leaf>(n / 2 + rng.below(n / 2))});
    }
  }
  return m;
}

MessageSet incast_traffic(std::uint32_t n, std::size_t count, Leaf sink,
                          Rng& rng) {
  FT_CHECK(n >= 2 && sink < n);
  MessageSet m;
  m.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto src = static_cast<Leaf>(rng.below(n - 1));
    if (src >= sink) ++src;  // sources are non-sink leaves
    m.push_back({src, sink});
  }
  return m;
}

MessageSet elephant_mice_traffic(std::uint32_t n, std::uint32_t elephants,
                                 std::uint32_t elephant_size,
                                 std::size_t mice, Rng& rng) {
  FT_CHECK(n >= 2);
  MessageSet m;
  m.reserve(static_cast<std::size_t>(elephants) * elephant_size + mice);
  for (std::uint32_t f = 0; f < elephants; ++f) {
    const auto src = static_cast<Leaf>(rng.below(n));
    auto dst = static_cast<Leaf>(rng.below(n - 1));
    if (dst >= src) ++dst;  // elephants never send to themselves
    for (std::uint32_t i = 0; i < elephant_size; ++i) m.push_back({src, dst});
  }
  for (std::size_t i = 0; i < mice; ++i) {
    m.push_back({static_cast<Leaf>(rng.below(n)),
                 static_cast<Leaf>(rng.below(n))});
  }
  return m;
}

MessageSet adversarial_residue_traffic(std::uint32_t n, std::uint32_t modulus,
                                       Rng& rng) {
  FT_CHECK(modulus >= 1 && modulus <= n);
  const auto r = static_cast<Leaf>(rng.below(modulus));
  MessageSet m;
  m.reserve(n);
  for (std::uint32_t p = 0; p < n; ++p) {
    m.push_back({p, static_cast<Leaf>(r + modulus * rng.below(n / modulus))});
  }
  return m;
}

MessageSet persistent_hotspot_traffic(std::uint32_t n, Leaf hot,
                                      std::size_t hot_count,
                                      std::size_t background, Rng& rng) {
  FT_CHECK(n >= 2 && hot < n);
  MessageSet m;
  m.reserve(hot_count + background);
  for (std::size_t i = 0; i < hot_count; ++i) {
    auto src = static_cast<Leaf>(rng.below(n - 1));
    if (src >= hot) ++src;
    m.push_back({src, hot});
  }
  for (std::size_t i = 0; i < background; ++i) {
    m.push_back({static_cast<Leaf>(rng.below(n)),
                 static_cast<Leaf>(rng.below(n))});
  }
  return m;
}

std::vector<NamedWorkload> standard_workloads(std::uint32_t n, Rng& rng) {
  std::vector<NamedWorkload> out;
  out.push_back({"random-perm", random_permutation_traffic(n, rng)});
  out.push_back({"bit-reversal", bit_reversal_traffic(n)});
  out.push_back({"transpose", transpose_traffic(n)});
  out.push_back({"shuffle", shuffle_traffic(n)});
  out.push_back({"complement", complement_traffic(n)});
  out.push_back({"hotspot-10%", hotspot_traffic(n, 0.10, n / 3, rng)});
  out.push_back({"local-r4", local_traffic(n, 4, rng)});
  // FEM halo on a sqrt(n) x sqrt(n) grid when n is an even power of two;
  // otherwise a 2:1 grid.
  const std::uint32_t bits = floor_log2(n);
  const std::uint32_t rows = 1u << (bits / 2);
  const std::uint32_t cols = n / rows;
  out.push_back({"fem-halo", fem_halo_traffic(rows, cols)});
  out.push_back({"tornado", tornado_traffic(n)});
  return out;
}

}  // namespace ft
