#include "core/online_router.hpp"

#include <algorithm>
#include <map>

#include "core/load.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"

namespace ft {
namespace {

struct PendingMessage {
  Leaf src;
  Leaf dst;
  std::uint32_t lca_level;  // level of the LCA; channels above this level
                            // are not traversed
};

}  // namespace

OnlineRoutingResult route_online(const FatTreeTopology& topo,
                                 const CapacityProfile& caps,
                                 const MessageSet& m, Rng& rng,
                                 const OnlineRouterOptions& opts) {
  const std::uint32_t L = topo.height();
  const std::uint32_t n = topo.num_processors();

  OnlineRoutingResult result;

  std::vector<PendingMessage> pending;
  pending.reserve(m.size());
  std::uint32_t self_delivered = 0;
  for (const auto& msg : m) {
    if (msg.src == msg.dst) {
      ++self_delivered;  // local delivery, no channel used
      continue;
    }
    pending.push_back({msg.src, msg.dst, topo.level(topo.lca(msg.src, msg.dst))});
  }

  std::uint32_t max_cycles = opts.max_cycles;
  if (max_cycles == 0) {
    const double lambda = load_factor(topo, caps, m);
    max_cycles = 64 * (static_cast<std::uint32_t>(lambda) + L * L + 4);
  }

  // Per-channel limit: alpha-discounted capacity, floor 1. Looked up by
  // node so per-channel fault overrides are honoured.
  auto channel_limit = [&](NodeId node) -> std::size_t {
    const auto cap = caps.capacity(topo, node);
    const auto lim = static_cast<std::uint64_t>(
        static_cast<double>(cap) * opts.alpha);
    return static_cast<std::size_t>(std::max<std::uint64_t>(1, lim));
  };

  while (!pending.empty()) {
    FT_CHECK_MSG(result.delivery_cycles < max_cycles,
                 "online router exceeded max_cycles");
    ++result.delivery_cycles;
    result.total_attempts += pending.size();

    std::vector<std::uint8_t> alive(pending.size(), 1);

    // A message is killed at the first channel where it loses the random
    // concentration lottery. Channels are processed in causal order: up
    // channels from the leaves to the root, then down channels back out.
    auto arbitrate = [&](std::uint32_t level, bool up_phase) {
      // Bucket the alive messages using a channel at this level.
      std::map<NodeId, std::vector<std::size_t>> buckets;
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (!alive[i]) continue;
        const auto& p = pending[i];
        if (level <= p.lca_level) continue;  // path turns below this level
        const NodeId leaf_node = n + (up_phase ? p.src : p.dst);
        const NodeId node = leaf_node >> (L - level);
        buckets[node].push_back(i);
      }
      for (auto& [node, contenders] : buckets) {
        const std::size_t limit = channel_limit(node);
        if (contenders.size() <= limit) continue;
        rng.shuffle(contenders);
        for (std::size_t j = limit; j < contenders.size(); ++j) {
          alive[contenders[j]] = 0;
          ++result.total_losses;
        }
      }
    };

    for (std::uint32_t level = L; level >= 1; --level) {
      arbitrate(level, /*up_phase=*/true);
    }
    for (std::uint32_t level = 1; level <= L; ++level) {
      arbitrate(level, /*up_phase=*/false);
    }

    // Survivors are delivered; the rest retry next cycle.
    std::vector<PendingMessage> next;
    std::uint32_t delivered = result.delivery_cycles == 1 ? self_delivered : 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (alive[i]) {
        ++delivered;
      } else {
        next.push_back(pending[i]);
      }
    }
    result.delivered_per_cycle.push_back(delivered);
    pending = std::move(next);
  }

  if (result.delivery_cycles == 0 && self_delivered > 0) {
    // Purely local traffic still takes one delivery cycle.
    result.delivery_cycles = 1;
    result.delivered_per_cycle.push_back(self_delivered);
  }
  return result;
}

}  // namespace ft
