#include "core/online_router.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "core/load.hpp"
#include "engine/engine.hpp"
#include "engine/fat_tree_model.hpp"

namespace ft {

namespace {

// Self messages are delivered locally in the first cycle and never enter
// the engine (they would otherwise shift message ids in trace streams).
// The filter counts them so the caller can fold them back into
// delivered_per_cycle; the count is complete once the engine has drained
// the stream.
class NonSelfStream final : public MessageStream {
 public:
  explicit NonSelfStream(MessageStream& inner) : inner_(inner) {}

  bool next(Message& out) override {
    while (inner_.next(out)) {
      if (out.src != out.dst) return true;
      ++self_;
    }
    return false;
  }

  std::uint32_t self_delivered() const { return self_; }

 private:
  MessageStream& inner_;
  std::uint32_t self_ = 0;
};

// Shard depth for the engine's subtree-sharded parallel mode. Precedence:
// an explicit OnlineRouterOptions::shard_level wins, then the
// FT_SHARD_LEVEL environment variable (experiments sweep it without
// recompiling), then the heuristic — about two shards per worker. The
// heuristic used to aim for four when the shard loop was the only
// load-balancer; with the work-stealing pool rebalancing bands and the
// spine arbitrated in parallel, extra shards only buy serial overhead —
// a deeper shard level widens the spine band, and per-shard worklist
// setup plus the outbox-distribution pass grow with shard count, all on
// the serial side of the phase profile. Measured on the E17 workload
// (n = 2^18, FT_SHARD_LEVEL sweep): 2^2 -> 2^4 shards roughly triples
// spine-band time and raises the measured Amdahl serial fraction from
// ~0.36 to ~0.40 with no up/down-sweep win. Always capped by the
// topology: the spine must stay above the leaves.
std::uint32_t pick_shard_level(const FatTreeTopology& topo,
                               const OnlineRouterOptions& opts) {
  if (!opts.parallel || topo.height() < 2) return 0;
  const std::uint32_t cap = topo.height() - 1;
  if (opts.shard_level != kShardLevelAuto) {
    return std::min(opts.shard_level, cap);
  }
  if (const char* env = std::getenv("FT_SHARD_LEVEL")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') {
      return std::min(static_cast<std::uint32_t>(
                          std::min<unsigned long>(v, 0xfffffffful)),
                      cap);
    }
  }
  std::size_t workers = opts.threads;
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  std::uint32_t lvl = 1;
  while ((std::size_t{1} << lvl) < workers * 2 && lvl < 6) ++lvl;
  return std::min(lvl, cap);
}

}  // namespace

OnlineRoutingResult route_online_stream(const FatTreeTopology& topo,
                                        const CapacityProfile& caps,
                                        MessageStream& messages,
                                        double lambda_hint, Rng& rng,
                                        const OnlineRouterOptions& opts) {
  const std::uint32_t L = topo.height();

  std::uint32_t max_cycles = opts.max_cycles;
  if (max_cycles == 0) {
    max_cycles = 64 * (static_cast<std::uint32_t>(lambda_hint) + L * L + 4);
  }

  EngineOptions eopts;
  eopts.contention = ContentionPolicy::RandomSubset;
  eopts.policy = opts.policy;
  eopts.alpha = opts.alpha;
  eopts.max_cycles = max_cycles;
  eopts.seed = rng.next();
  eopts.parallel = opts.parallel;
  eopts.threads = opts.threads;
  eopts.parallel_spine = opts.parallel_spine;
  eopts.retry = opts.retry;
  eopts.fault_plan = opts.fault_plan;
  eopts.time_phases = opts.time_phases;

  CycleEngine engine(
      fat_tree_channel_graph(topo, caps, pick_shard_level(topo, opts)), eopts);

  NonSelfStream routed(messages);
  FatTreePathSource source(topo, routed);
  const EngineResult er = engine.run_stream(source, opts.observer);

  OnlineRoutingResult result;
  result.delivery_cycles = er.cycles;
  result.total_attempts = er.total_attempts;
  result.total_losses = er.total_losses;
  result.gave_up = er.gave_up;
  result.messages_given_up = er.messages_given_up;
  result.total_backoffs = er.total_backoffs;
  result.fault_down_events = er.fault_down_events;
  result.fault_up_events = er.fault_up_events;
  result.subtree_kill_events = er.subtree_kill_events;
  result.degraded_channel_cycles = er.degraded_channel_cycles;
  result.phases = er.phases;
  result.delivered_per_cycle = er.delivered_per_cycle;

  if (routed.self_delivered() > 0) {
    // Purely local traffic still takes one delivery cycle.
    if (result.delivery_cycles == 0) {
      result.delivery_cycles = 1;
      result.delivered_per_cycle.push_back(routed.self_delivered());
    } else {
      result.delivered_per_cycle.front() += routed.self_delivered();
    }
  }
  return result;
}

OnlineRoutingResult route_online(const FatTreeTopology& topo,
                                 const CapacityProfile& caps,
                                 const MessageSet& m, Rng& rng,
                                 const OnlineRouterOptions& opts) {
  // The materialized set allows the exact load-factor estimate for the
  // default give-up horizon; routing itself rides the streaming path.
  double lambda_hint = 0.0;
  if (opts.max_cycles == 0) lambda_hint = load_factor(topo, caps, m);

  MessageSetStream stream(m);
  return route_online_stream(topo, caps, stream, lambda_hint, rng, opts);
}

}  // namespace ft
