#include "core/online_router.hpp"

#include <algorithm>

#include "core/load.hpp"
#include "engine/engine.hpp"
#include "engine/fat_tree_model.hpp"

namespace ft {

OnlineRoutingResult route_online(const FatTreeTopology& topo,
                                 const CapacityProfile& caps,
                                 const MessageSet& m, Rng& rng,
                                 const OnlineRouterOptions& opts) {
  const std::uint32_t L = topo.height();

  // Self messages are delivered locally in the first cycle; everything
  // else is streamed into one CSR path set (the engine's native input).
  PathSet paths;
  paths.reserve(m.size(), m.size() * 2ull * L);
  std::uint32_t self_delivered = 0;
  for (const auto& msg : m) {
    if (msg.src == msg.dst) {
      ++self_delivered;
      continue;
    }
    append_fat_tree_path(topo, msg.src, msg.dst, paths);
  }

  std::uint32_t max_cycles = opts.max_cycles;
  if (max_cycles == 0) {
    const double lambda = load_factor(topo, caps, m);
    max_cycles = 64 * (static_cast<std::uint32_t>(lambda) + L * L + 4);
  }

  EngineOptions eopts;
  eopts.contention = ContentionPolicy::RandomSubset;
  eopts.alpha = opts.alpha;
  eopts.max_cycles = max_cycles;
  eopts.seed = rng.next();
  eopts.parallel = opts.parallel;
  eopts.threads = opts.threads;
  eopts.retry = opts.retry;
  eopts.fault_plan = opts.fault_plan;

  CycleEngine engine(fat_tree_channel_graph(topo, caps), eopts);
  const EngineResult er = engine.run(paths, opts.observer);

  OnlineRoutingResult result;
  result.delivery_cycles = er.cycles;
  result.total_attempts = er.total_attempts;
  result.total_losses = er.total_losses;
  result.gave_up = er.gave_up;
  result.messages_given_up = er.messages_given_up;
  result.total_backoffs = er.total_backoffs;
  result.fault_down_events = er.fault_down_events;
  result.fault_up_events = er.fault_up_events;
  result.subtree_kill_events = er.subtree_kill_events;
  result.degraded_channel_cycles = er.degraded_channel_cycles;
  result.delivered_per_cycle = er.delivered_per_cycle;

  if (self_delivered > 0) {
    // Purely local traffic still takes one delivery cycle.
    if (result.delivery_cycles == 0) {
      result.delivery_cycles = 1;
      result.delivered_per_cycle.push_back(self_delivered);
    } else {
      result.delivered_per_cycle.front() += self_delivered;
    }
  }
  return result;
}

}  // namespace ft
