#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace ft {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> xs, double q) {
  FT_CHECK(!xs.empty());
  FT_CHECK(q >= 0.0 && q <= 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double pos = q / 100.0 * static_cast<double>(xs.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= xs.size()) return xs.back();
  return xs[idx] * (1.0 - frac) + xs[idx + 1] * frac;
}

LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y) {
  FT_CHECK(x.size() == y.size());
  FT_CHECK(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit{};
  if (denom == 0.0) {
    fit.intercept = sy / n;
    fit.slope = 0.0;
    fit.r2 = 0.0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += e * e;
  }
  fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace ft
