// Deterministic pseudo-random number generation for all simulators and
// experiments. Every random decision in the library flows from a seeded
// Xoshiro256** generator so that experiments are reproducible bit-for-bit
// and independent of thread scheduling (each parallel task derives its own
// stream with split()).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace ft {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators" (the standard seeding companion for xoshiro).
struct SplitMix64 {
  std::uint64_t state;

  explicit SplitMix64(std::uint64_t seed) : state(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// Xoshiro256**: fast, high-quality 64-bit PRNG. Satisfies the C++
/// UniformRandomBitGenerator requirements so it can drive <random>
/// distributions as well as the library's own helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method to avoid modulo bias. bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) {
    // Fast path: 128-bit multiply with rejection on the low word.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Derive an independent generator stream (for parallel tasks).
  Rng split() { return Rng(next() ^ 0xa5a5a5a5a5a5a5a5ULL); }

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = below(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A uniformly random permutation of {0, ..., n-1}.
  std::vector<std::uint32_t> permutation(std::uint32_t n) {
    std::vector<std::uint32_t> p(n);
    for (std::uint32_t i = 0; i < n; ++i) p[i] = i;
    shuffle(p);
    return p;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace ft
