// Summary statistics for experiment reporting: mean/stddev/min/max,
// percentiles, simple linear regression (used to fit measured scaling
// curves against the paper's asymptotic bounds), and histograms.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace ft {

/// Streaming accumulator (Welford) for mean and variance.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// The q-th percentile (q in [0,100]) by linear interpolation.
/// The input vector is copied and sorted.
double percentile(std::vector<double> xs, double q);

/// Least-squares fit y = a + b*x. Returns {a, b, r2}.
struct LinearFit {
  double intercept;
  double slope;
  double r2;
};
LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y);

/// Histogram over [lo, hi] with `bins` equal-width bins. The top bin is
/// closed (x == hi lands in it); x > hi counts as overflow and x < lo as
/// underflow rather than being silently clamped — a channel carrying more
/// than its capacity (utilization > 1, possible under Tally replay of an
/// invalid schedule) is overload and must stay visible.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {
    FT_CHECK_MSG(bins > 0 && hi > lo, "histogram needs bins > 0 and hi > lo");
  }

  void observe(double x) {
    if (x < lo_) {
      ++underflow_;
    } else if (x > hi_) {
      ++overflow_;
    } else {
      auto bin = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                          static_cast<double>(counts_.size()));
      if (bin >= counts_.size()) bin = counts_.size() - 1;  // x == hi
      ++counts_[bin];
    }
  }

  std::size_t num_bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_lo(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
  }
  double bin_hi(std::size_t i) const { return bin_lo(i + 1); }
  std::uint64_t bin_count(std::size_t i) const { return counts_[i]; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

  /// All observations, including underflow/overflow.
  std::uint64_t total() const {
    std::uint64_t t = underflow_ + overflow_;
    for (const std::uint64_t c : counts_) t += c;
    return t;
  }

  void reset() {
    underflow_ = overflow_ = 0;
    counts_.assign(counts_.size(), 0);
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace ft
