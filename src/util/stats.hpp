// Summary statistics for experiment reporting: mean/stddev/min/max,
// percentiles, simple linear regression (used to fit measured scaling
// curves against the paper's asymptotic bounds), and histograms.
#pragma once

#include <cstdint>
#include <vector>

namespace ft {

/// Streaming accumulator (Welford) for mean and variance.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// The q-th percentile (q in [0,100]) by linear interpolation.
/// The input vector is copied and sorted.
double percentile(std::vector<double> xs, double q);

/// Least-squares fit y = a + b*x. Returns {a, b, r2}.
struct LinearFit {
  double intercept;
  double slope;
  double r2;
};
LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// the range clamp to the end buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  double bucket_lo(std::size_t i) const;
  std::uint64_t total() const { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace ft
