#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/check.hpp"

namespace ft {

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  FT_CHECK(!headers_.empty());
}

Table& Table::row() {
  FT_CHECK_MSG(rows_.empty() || rows_.back().size() == headers_.size(),
               "previous row incomplete");
  rows_.emplace_back();
  return *this;
}

Table& Table::add(const std::string& cell) {
  FT_CHECK_MSG(!rows_.empty(), "row() not called");
  FT_CHECK_MSG(rows_.back().size() < headers_.size(), "row overflow");
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(std::int64_t v) { return add(std::to_string(v)); }

Table& Table::add(std::uint64_t v) { return add(std::to_string(v)); }

Table& Table::add(double v, int precision) {
  return add(format_double(v, precision));
}

const std::string& Table::cell(std::size_t r, std::size_t c) const {
  FT_CHECK(r < rows_.size() && c < rows_[r].size());
  return rows_[r][c];
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  if (!title.empty()) {
    os << "== " << title << " ==\n";
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      os << s;
      if (c + 1 < headers_.size()) {
        os << std::string(width[c] - s.size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace ft
