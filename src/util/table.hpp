// Aligned-column table printer used by every experiment binary so the
// regenerated "paper tables" share one look, plus a CSV writer for
// downstream plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ft {

/// A simple column-aligned text table. Cells are strings; numeric
/// convenience setters format with sensible defaults.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& row();

  Table& add(const std::string& cell);
  Table& add(const char* cell);
  Table& add(std::int64_t v);
  Table& add(std::uint64_t v);
  Table& add(int v) { return add(static_cast<std::int64_t>(v)); }
  Table& add(unsigned v) { return add(static_cast<std::uint64_t>(v)); }
  Table& add(double v, int precision = 3);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return headers_.size(); }
  const std::string& cell(std::size_t r, std::size_t c) const;

  /// Renders with a title banner, header row, separator, and data rows.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Comma-separated output (headers first) for machine consumption.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with experiments).
std::string format_double(double v, int precision);

}  // namespace ft
