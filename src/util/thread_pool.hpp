// A small fixed-size thread pool with a blocking parallel_for. Experiment
// sweeps (many independent (n, w, workload) cells) are embarrassingly
// parallel; simulators themselves stay single-threaded and deterministic,
// so results are identical at any thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ft {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; fire-and-forget (use parallel_for for joins).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Runs body(i) for i in [0, count) on the pool and blocks until all
  /// calls return. One lock acquisition and one broadcast for the whole
  /// batch — much cheaper than `count` submit() calls when batches are
  /// issued at high frequency (the delivery-cycle engine dispatches one
  /// batch per arbitration stage).
  void run_tasks(std::size_t count,
                 const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs body(i) for i in [begin, end) across a transient pool and blocks
/// until completion. Falls back to serial execution for tiny ranges.
/// body must be safe to call concurrently for distinct i.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace ft
