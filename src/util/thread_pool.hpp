// A small fixed-size thread pool with two dispatch modes:
//
//  * submit()/wait_idle(): a classic mutex-protected task queue for
//    coarse fire-and-forget work (experiment sweep cells, tests).
//  * run_tasks(): a persistent work-stealing batch mode for the
//    delivery-cycle engine, which dispatches one batch per arbitration
//    stage — thousands of batches per second. Each batch is published
//    by bumping an epoch counter; parked workers wake, claim chunks of
//    the index range from per-slot atomic cursors, and steal from other
//    slots when their own runs dry. No per-task lock acquisition and no
//    per-batch thread creation.
//
// Simulators themselves stay deterministic: the engine only hands the
// pool work whose results are order-independent (per-channel arbitration
// keyed by (seed, cycle, channel) streams), so results are identical at
// any thread count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ft {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; fire-and-forget (use wait_idle to join). Safe to
  /// call from inside a running task (nested submission).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Runs body(i) for i in [0, count) on the pool and blocks until all
  /// calls return. The calling thread participates in the batch, so all
  /// of `size() + 1` threads make progress even when queue tasks keep
  /// the workers busy. Indices are pre-partitioned into one contiguous
  /// chunk per participant; idle participants steal from the others'
  /// chunks, so uneven per-index costs still balance. Must not be
  /// called concurrently from two threads or reentrantly from inside a
  /// batch body (the engine dispatches all batches from its single
  /// coordinating thread).
  void run_tasks(std::size_t count,
                 const std::function<void(std::size_t)>& body);

 private:
  /// One participant's chunk of the current batch: indices
  /// [cursor >> 32, cursor & 0xffffffff) remain. next and end are
  /// packed into one word so a claim (own or steal) is a single
  /// fetch_add of 1 << 32; the 64-byte alignment keeps each slot on a
  /// private cache line so claims don't ping-pong between cores.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> cursor{0};
  };

  void worker_loop(std::size_t idx);
  /// Drain the current batch starting from slot `idx`, stealing from
  /// the other slots once it is empty. Decrements remaining_ by the
  /// number of indices executed and wakes the dispatcher on zero.
  void work_on_batch(std::size_t idx);

  std::vector<std::thread> workers_;
  std::vector<Slot> slots_;  // workers + 1 (dispatcher participates)

  // Batch state. Publication order: body_/remaining_/cursors (relaxed or
  // release), then epoch_ release-increment; workers acquire epoch_ (or
  // acquire a cursor via its claim RMW), which makes all of it visible.
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::atomic<std::size_t> slots_in_use_{0};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> remaining_{0};
  std::atomic<int> sleepers_{0};
  std::atomic<std::size_t> queued_{0};
  std::atomic<bool> stop_flag_{false};

  // Legacy submit() queue; also guards the condition variables.
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::condition_variable cv_done_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs body(i) for i in [begin, end) across a transient pool and blocks
/// until completion. Falls back to serial execution for tiny ranges.
/// body must be safe to call concurrently for distinct i.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace ft
