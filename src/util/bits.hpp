// Small integer/bit utilities used throughout the library. The paper's
// notation "lg n" means max(1, ceil(log2 n)); we expose both exact and
// paper-flavoured variants.
#pragma once

#include <bit>
#include <cstdint>

namespace ft {

/// True iff x is a power of two (x > 0).
constexpr bool is_pow2(std::uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)) for x > 0.
constexpr std::uint32_t floor_log2(std::uint64_t x) {
  return 63u - static_cast<std::uint32_t>(std::countl_zero(x));
}

/// ceil(log2(x)) for x > 0.
constexpr std::uint32_t ceil_log2(std::uint64_t x) {
  return x <= 1 ? 0u : floor_log2(x - 1) + 1;
}

/// The paper's "lg n" = max(1, ceil(log2 n)).
constexpr std::uint32_t paper_lg(std::uint64_t n) {
  std::uint32_t c = ceil_log2(n);
  return c < 1 ? 1u : c;
}

/// ceil(a / b) for b > 0.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Smallest power of two >= x (x >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t x) {
  return std::uint64_t{1} << ceil_log2(x);
}

/// Reverse the low `bits` bits of x (used by bit-reversal permutations).
constexpr std::uint64_t reverse_bits(std::uint64_t x, std::uint32_t bits) {
  std::uint64_t r = 0;
  for (std::uint32_t i = 0; i < bits; ++i) {
    r = (r << 1) | ((x >> i) & 1u);
  }
  return r;
}

/// Population count convenience wrapper.
constexpr std::uint32_t popcount(std::uint64_t x) {
  return static_cast<std::uint32_t>(std::popcount(x));
}

}  // namespace ft
