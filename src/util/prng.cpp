#include "util/prng.hpp"

// Header-only implementation; this translation unit exists so the library
// has a stable archive member and a place for future out-of-line helpers.
namespace ft {}
