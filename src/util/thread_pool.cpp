#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace ft {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::run_tasks(std::size_t count,
                           const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (count == 1) {
    body(0);
    return;
  }
  {
    std::lock_guard lock(mu_);
    for (std::size_t i = 0; i < count; ++i) {
      // Referencing body is safe: run_tasks blocks until the batch drains.
      tasks_.push([&body, i] { body(i); });
    }
    in_flight_ += count;
  }
  cv_task_.notify_all();
  wait_idle();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, count);
  if (threads <= 1 || count <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{begin};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= end) return;
        body(i);
      }
    });
  }
  for (auto& th : pool) th.join();
}

}  // namespace ft
