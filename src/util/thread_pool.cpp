#include "util/thread_pool.hpp"

#include <algorithm>

namespace ft {

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

// Spin budget before a worker parks. Short busy-spin first (a new batch
// usually follows within microseconds when the engine is in its cycle
// loop), then a few yields so an oversubscribed host can schedule the
// coordinating thread, then the condition variable.
constexpr int kSpinIters = 256;
constexpr int kYieldIters = 16;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  slots_ = std::vector<Slot>(threads + 1);  // + dispatcher slot
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    // Worker i owns slot i + 1; the run_tasks caller owns slot 0.
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  stop_flag_.store(true, std::memory_order_release);
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  queued_.fetch_add(1, std::memory_order_release);
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::run_tasks(std::size_t count,
                           const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (count == 1 || workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  // Publish the batch: one contiguous chunk per participant. The cursor
  // stores are release so a straggler from the previous batch that
  // claims an index via the acquire RMW also sees the new body_ — it
  // then simply helps with the new batch (claims are atomic, so nothing
  // runs twice). remaining_ counts indices, not participants: the batch
  // is done exactly when `count` claims have executed.
  const std::size_t nslots = std::min(count, slots_.size());
  body_ = &body;
  remaining_.store(count, std::memory_order_relaxed);
  const std::size_t base = count / nslots;
  const std::size_t extra = count % nslots;
  std::size_t lo = 0;
  for (std::size_t s = 0; s < nslots; ++s) {
    const std::size_t len = base + (s < extra ? 1 : 0);
    slots_[s].cursor.store(
        (static_cast<std::uint64_t>(lo) << 32) | (lo + len),
        std::memory_order_release);
    lo += len;
  }
  for (std::size_t s = nslots; s < slots_.size(); ++s) {
    slots_[s].cursor.store(0, std::memory_order_release);
  }
  slots_in_use_.store(nslots, std::memory_order_relaxed);
  // Dekker handshake with worker_loop: the dispatcher stores epoch_ then
  // loads sleepers_; a parking worker stores sleepers_ then re-loads
  // epoch_ (in the wait predicate, under mu_). Both seq_cst, so at least
  // one side sees the other — either the worker observes the new epoch
  // and skips the sleep, or the dispatcher observes the sleeper and
  // notifies under the same mutex the wait holds.
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard lock(mu_);
    cv_task_.notify_all();
  }

  work_on_batch(0);

  // Stragglers are normally microseconds behind; spin briefly, then park
  // on cv_done_ (the last finisher notifies under mu_).
  for (int spin = 0; spin < kSpinIters; ++spin) {
    if (remaining_.load(std::memory_order_acquire) == 0) return;
    cpu_relax();
  }
  for (int i = 0; i < kYieldIters; ++i) {
    if (remaining_.load(std::memory_order_acquire) == 0) return;
    std::this_thread::yield();
  }
  std::unique_lock lock(mu_);
  cv_done_.wait(lock, [this] {
    return remaining_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::work_on_batch(std::size_t idx) {
  const std::size_t nslots = slots_in_use_.load(std::memory_order_acquire);
  if (nslots == 0) return;
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t done = 0;
  // Own slot first, then steal round-robin from the others.
  for (std::size_t probe = 0; probe < nslots; ++probe) {
    Slot& slot = slots_[(idx + probe) % nslots];
    for (;;) {
      std::uint64_t v = slot.cursor.load(std::memory_order_relaxed);
      if ((v >> 32) >= (v & 0xffffffffu)) break;  // empty — move on
      v = slot.cursor.fetch_add(std::uint64_t{1} << 32,
                                std::memory_order_acq_rel);
      const std::size_t next = static_cast<std::size_t>(v >> 32);
      if (next >= (v & 0xffffffffu)) break;  // lost the race; overshoot
                                             // is harmless (never claims)
      // The acquire RMW read the dispatcher's release cursor store, so
      // body_ (written before it) is visible here.
      if (body == nullptr) body = body_;
      (*body)(next);
      ++done;
    }
  }
  if (done > 0 &&
      remaining_.fetch_sub(done, std::memory_order_acq_rel) == done) {
    std::lock_guard lock(mu_);
    cv_done_.notify_all();
  }
}

void ThreadPool::worker_loop(std::size_t idx) {
  std::uint64_t seen = 0;
  int idle = 0;
  for (;;) {
    const std::uint64_t e = epoch_.load(std::memory_order_acquire);
    if (e != seen) {
      seen = e;
      work_on_batch(idx);
      idle = 0;
      continue;
    }
    if (queued_.load(std::memory_order_acquire) > 0) {
      std::function<void()> task;
      {
        std::lock_guard lock(mu_);
        if (!tasks_.empty()) {
          task = std::move(tasks_.front());
          tasks_.pop();
          queued_.fetch_sub(1, std::memory_order_relaxed);
        }
      }
      if (task) {
        task();  // may submit() more work; mu_ is not held here
        std::lock_guard lock(mu_);
        --in_flight_;
        if (in_flight_ == 0) cv_idle_.notify_all();
      }
      idle = 0;
      continue;
    }
    if (stop_flag_.load(std::memory_order_acquire)) {
      // Re-check the queue under the lock: a task submitted just before
      // stop must still run (destructor semantics: drain, then exit).
      std::lock_guard lock(mu_);
      if (tasks_.empty()) return;
      continue;
    }
    if (idle < kSpinIters) {
      ++idle;
      cpu_relax();
      continue;
    }
    if (idle < kSpinIters + kYieldIters) {
      ++idle;
      std::this_thread::yield();
      continue;
    }
    std::unique_lock lock(mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    cv_task_.wait(lock, [&] {
      return stop_ || !tasks_.empty() ||
             epoch_.load(std::memory_order_seq_cst) != seen;
    });
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    if (stop_ && tasks_.empty() &&
        epoch_.load(std::memory_order_relaxed) == seen) {
      return;
    }
    idle = 0;  // whatever woke us is handled at the top of the loop
  }
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, count);
  if (threads <= 1 || count <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{begin};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= end) return;
        body(i);
      }
    });
  }
  for (auto& th : pool) th.join();
}

}  // namespace ft
