// Checked assertions that stay on in release builds. Simulator invariants
// (capacity never exceeded, schedules partition the message set, ...) are
// cheap relative to the simulation itself, and silently-wrong experiment
// output is far worse than a small constant overhead.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ft::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "FT_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}
}  // namespace ft::detail

#define FT_CHECK(expr)                                              \
  do {                                                              \
    if (!(expr)) ::ft::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define FT_CHECK_MSG(expr, msg)                                     \
  do {                                                              \
    if (!(expr))                                                    \
      ::ft::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
