// Checked assertions that stay on in release builds. Simulator invariants
// (capacity never exceeded, schedules partition the message set, ...) are
// cheap relative to the simulation itself, and silently-wrong experiment
// output is far worse than a small constant overhead.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace ft::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "FT_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}
}  // namespace ft::detail

#define FT_CHECK(expr)                                              \
  do {                                                              \
    if (!(expr)) ::ft::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define FT_CHECK_MSG(expr, msg)                                     \
  do {                                                              \
    if (!(expr))                                                    \
      ::ft::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

namespace ft {

/// Checked narrowing to 32 bits: the engine's index discipline keeps hop
/// offsets, message indices and per-cycle counts in 32-bit tables (the
/// narrow half of the narrow/wide width policy, see DESIGN.md
/// "Scale-out"), so every site that folds a 64-bit size into one of those
/// tables must prove the value fits. Aborts with the caller's message
/// instead of silently wrapping.
inline std::uint32_t checked_u32(std::uint64_t v, const char* what) {
  FT_CHECK_MSG(v <= 0xffffffffULL, what);
  return static_cast<std::uint32_t>(v);
}

}  // namespace ft
