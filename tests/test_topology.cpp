#include "core/topology.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ft {
namespace {

TEST(Topology, BasicSizes) {
  FatTreeTopology t(8);
  EXPECT_EQ(t.num_processors(), 8u);
  EXPECT_EQ(t.height(), 3u);
  EXPECT_EQ(t.num_nodes(), 15u);
  EXPECT_EQ(t.num_channels(), 15u);
  EXPECT_EQ(t.root(), 1u);
}

TEST(Topology, LeafNodeMapping) {
  FatTreeTopology t(16);
  for (Leaf p = 0; p < 16; ++p) {
    const NodeId v = t.node_of_leaf(p);
    EXPECT_TRUE(t.is_leaf(v));
    EXPECT_EQ(t.leaf_of_node(v), p);
    EXPECT_EQ(t.level(v), t.height());
  }
  EXPECT_FALSE(t.is_leaf(t.root()));
}

TEST(Topology, ParentChildConsistency) {
  FatTreeTopology t(32);
  for (NodeId v = 1; v < 32; ++v) {  // internal nodes
    EXPECT_EQ(t.parent(t.left_child(v)), v);
    EXPECT_EQ(t.parent(t.right_child(v)), v);
    EXPECT_EQ(t.level(t.left_child(v)), t.level(v) + 1);
  }
}

TEST(Topology, Levels) {
  FatTreeTopology t(8);
  EXPECT_EQ(t.level(1), 0u);
  EXPECT_EQ(t.level(2), 1u);
  EXPECT_EQ(t.level(3), 1u);
  EXPECT_EQ(t.level(7), 2u);
  EXPECT_EQ(t.level(8), 3u);
  EXPECT_EQ(t.level(15), 3u);
}

TEST(Topology, LcaKnownCases) {
  FatTreeTopology t(8);
  EXPECT_EQ(t.lca(0, 1), t.parent(t.node_of_leaf(0)));
  EXPECT_EQ(t.lca(0, 7), t.root());
  EXPECT_EQ(t.lca(0, 3), 2u);   // left half subtree root
  EXPECT_EQ(t.lca(4, 6), 3u);   // right half subtree root
  EXPECT_EQ(t.lca(5, 5), t.node_of_leaf(5));
}

TEST(Topology, LcaSymmetricAndAncestral) {
  FatTreeTopology t(64);
  for (Leaf a = 0; a < 64; a += 7) {
    for (Leaf b = 0; b < 64; b += 5) {
      const NodeId m = t.lca(a, b);
      EXPECT_EQ(m, t.lca(b, a));
      EXPECT_TRUE(t.leaf_in_subtree(a, m));
      EXPECT_TRUE(t.leaf_in_subtree(b, m));
      if (a != b) {
        // m's children separate a and b.
        const bool a_left = t.leaf_in_subtree(a, t.left_child(m));
        const bool b_left = t.leaf_in_subtree(b, t.left_child(m));
        EXPECT_NE(a_left, b_left);
      }
    }
  }
}

TEST(Topology, SubtreeLeafRanges) {
  FatTreeTopology t(16);
  EXPECT_EQ(t.subtree_first_leaf(1), 0u);
  EXPECT_EQ(t.subtree_last_leaf(1), 15u);
  EXPECT_EQ(t.subtree_size(1), 16u);
  EXPECT_EQ(t.subtree_first_leaf(2), 0u);
  EXPECT_EQ(t.subtree_last_leaf(2), 7u);
  EXPECT_EQ(t.subtree_first_leaf(3), 8u);
  const NodeId leaf5 = t.node_of_leaf(5);
  EXPECT_EQ(t.subtree_first_leaf(leaf5), 5u);
  EXPECT_EQ(t.subtree_last_leaf(leaf5), 5u);
  EXPECT_EQ(t.subtree_size(leaf5), 1u);
}

TEST(Topology, LeafInSubtree) {
  FatTreeTopology t(16);
  for (NodeId v = 1; v < 32; ++v) {
    const Leaf first = t.subtree_first_leaf(v);
    const Leaf last = t.subtree_last_leaf(v);
    for (Leaf p = 0; p < 16; ++p) {
      EXPECT_EQ(t.leaf_in_subtree(p, v), p >= first && p <= last);
    }
  }
}

TEST(Topology, PathVisitsMatchedChannels) {
  FatTreeTopology t(16);
  // Message 3 -> 12: LCA is the root; path has 2*4 channels.
  std::vector<ChannelId> chans;
  t.for_each_channel_on_path(3, 12, [&](ChannelId c) { chans.push_back(c); });
  EXPECT_EQ(chans.size(), 8u);
  std::size_t ups = 0, downs = 0;
  for (const auto& c : chans) {
    if (c.dir == Direction::Up) {
      ++ups;
      EXPECT_TRUE(t.leaf_in_subtree(3, c.node));
    } else {
      ++downs;
      EXPECT_TRUE(t.leaf_in_subtree(12, c.node));
    }
  }
  EXPECT_EQ(ups, 4u);
  EXPECT_EQ(downs, 4u);
}

TEST(Topology, PathEmptyForSelfMessage) {
  FatTreeTopology t(8);
  int visits = 0;
  t.for_each_channel_on_path(5, 5, [&](ChannelId) { ++visits; });
  EXPECT_EQ(visits, 0);
  EXPECT_EQ(t.path_length(5, 5), 0u);
}

TEST(Topology, PathLengthFormula) {
  FatTreeTopology t(64);
  for (Leaf a = 0; a < 64; a += 3) {
    for (Leaf b = 1; b < 64; b += 11) {
      std::size_t count = 0;
      t.for_each_channel_on_path(a, b, [&](ChannelId) { ++count; });
      EXPECT_EQ(count, t.path_length(a, b));
    }
  }
}

TEST(Topology, AdjacentLeavesShortPath) {
  FatTreeTopology t(16);
  EXPECT_EQ(t.path_length(0, 1), 2u);   // share a parent
  EXPECT_EQ(t.path_length(0, 15), 8u);  // through the root
}

TEST(Topology, ChannelIndexingIsInjective) {
  FatTreeTopology t(8);
  std::set<std::size_t> seen;
  for (NodeId v = 1; v <= t.num_nodes(); ++v) {
    for (Direction d : {Direction::Up, Direction::Down}) {
      const auto idx = channel_index(ChannelId{v, d});
      EXPECT_LT(idx, channel_index_bound(t));
      EXPECT_TRUE(seen.insert(idx).second);
    }
  }
}

class TopologySweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TopologySweep, StructuralInvariants) {
  const std::uint32_t n = GetParam();
  FatTreeTopology t(n);
  EXPECT_EQ(t.num_nodes(), 2 * n - 1);
  EXPECT_EQ(t.subtree_size(t.root()), n);
  // Every leaf reachable by descending from the root.
  for (Leaf p = 0; p < n; ++p) {
    NodeId v = t.root();
    while (!t.is_leaf(v)) {
      v = t.leaf_in_subtree(p, t.left_child(v)) ? t.left_child(v)
                                                : t.right_child(v);
    }
    EXPECT_EQ(t.leaf_of_node(v), p);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TopologySweep,
                         ::testing::Values(2u, 4u, 8u, 64u, 256u, 1024u));

}  // namespace
}  // namespace ft
