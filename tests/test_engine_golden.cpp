// Golden determinism tests for the unified delivery-cycle engine: exact
// per-seed EngineResult values (cycles, delivered, losses, attempts, hop
// counts, and an FNV-1a hash of delivered_per_cycle) pinned for a handful
// of (topology, policy, seed) configurations. The constants below were
// recorded from the pre-worklist engine (commit ebad4b0), so any engine
// refactor that claims to be bit-identical — not merely
// distribution-preserving — must keep every one of these green.
//
// To re-record after an *intentional* behavior change, run this binary
// with FT_GOLDEN_PRINT=1 and paste the printed rows over the tables.
#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <numeric>
#include <vector>

#include "core/capacity.hpp"
#include "core/offline_scheduler.hpp"
#include "core/online_router.hpp"
#include "core/replay.hpp"
#include "core/topology.hpp"
#include "core/traffic.hpp"
#include "engine/engine.hpp"
#include "engine/fat_tree_model.hpp"
#include "kary/kary_sim.hpp"
#include "nets/builders.hpp"
#include "nets/routing.hpp"
#include "nets/store_forward.hpp"

namespace ft {
namespace {

bool print_mode() { return std::getenv("FT_GOLDEN_PRINT") != nullptr; }

/// FNV-1a over the little-endian bytes of a uint32 vector: a stable
/// fingerprint of the per-cycle delivery profile.
std::uint64_t fnv1a(const std::vector<std::uint32_t>& v) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const std::uint32_t x : v) {
    for (int b = 0; b < 4; ++b) {
      h ^= (x >> (8 * b)) & 0xffu;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

/// Sums the per-channel carried counters over all cycles: the number of
/// successful channel traversals, which EngineResult::total_hops reports.
class CarriedSummer final : public EngineObserver {
 public:
  void on_cycle(const CycleSnapshot& s) override {
    if (s.carried != nullptr) {
      for (const std::uint32_t c : *s.carried) sum_ += c;
    }
  }
  std::uint64_t sum() const { return sum_; }

 private:
  std::uint64_t sum_ = 0;
};

// ---------------------------------------------------------------------------
// Lossy (RandomSubset) arbitration, driven directly through the engine.

struct LossyGolden {
  std::uint64_t seed;
  double alpha;
  std::uint32_t cycles;
  std::uint64_t delivered;
  std::uint64_t attempts;
  std::uint64_t losses;
  std::uint64_t hops;  ///< successful channel traversals (sum of carried)
  std::uint64_t dpc_hash;
};

constexpr LossyGolden kLossyGolden[] = {
    {1, 1.0, 12, 512, 2830, 2319, 9185, 9416255908271736541ULL},
    {2, 1.0, 13, 512, 2851, 2340, 9034, 17532918026386496563ULL},
    {3, 1.0, 12, 512, 2714, 2203, 8943, 14713001954155442791ULL},
    {7, 0.75, 22, 512, 4512, 4001, 10013, 1030322477785156329ULL},
};

TEST(EngineGolden, LossyRandomSubset) {
  const std::uint32_t n = 128;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 32);
  Rng gen(9);
  const auto m = stacked_permutations(n, 4, gen);
  const auto paths = fat_tree_engine_paths(t, m);
  const auto graph = fat_tree_channel_graph(t, caps);

  for (const LossyGolden& g : kLossyGolden) {
    EngineOptions opts;
    opts.contention = ContentionPolicy::RandomSubset;
    opts.alpha = g.alpha;
    opts.seed = g.seed;
    CycleEngine engine(graph, opts);
    CarriedSummer hops;
    const EngineResult r = engine.run(paths, &hops);
    if (print_mode()) {
      std::cout << "GOLDEN lossy {" << g.seed << ", " << g.alpha << ", "
                << r.cycles << ", " << r.delivered << ", "
                << r.total_attempts << ", " << r.total_losses << ", "
                << hops.sum() << ", " << fnv1a(r.delivered_per_cycle)
                << "ULL},\n";
      continue;
    }
    EXPECT_EQ(r.cycles, g.cycles) << "seed=" << g.seed;
    EXPECT_EQ(r.delivered, g.delivered) << "seed=" << g.seed;
    EXPECT_EQ(r.total_attempts, g.attempts) << "seed=" << g.seed;
    EXPECT_EQ(r.total_losses, g.losses) << "seed=" << g.seed;
    EXPECT_EQ(hops.sum(), g.hops) << "seed=" << g.seed;
    EXPECT_EQ(r.total_hops, g.hops) << "seed=" << g.seed;
    EXPECT_EQ(fnv1a(r.delivered_per_cycle), g.dpc_hash) << "seed=" << g.seed;
    EXPECT_FALSE(r.gave_up);
  }
}

// A run that exhausts max_cycles must be deterministic too: the partial
// delivery profile and the gave_up flag are part of the pinned contract.
TEST(EngineGolden, LossyGiveUp) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::constant(t, 1);
  Rng gen(13);
  const auto m = stacked_permutations(n, 6, gen);
  const auto paths = fat_tree_engine_paths(t, m);

  EngineOptions opts;
  opts.contention = ContentionPolicy::RandomSubset;
  opts.seed = 5;
  opts.max_cycles = 4;
  CycleEngine engine(fat_tree_channel_graph(t, caps), opts);
  const EngineResult r = engine.run(paths);
  if (print_mode()) {
    std::cout << "GOLDEN giveup delivered=" << r.delivered
              << " losses=" << r.total_losses
              << " hash=" << fnv1a(r.delivered_per_cycle) << "ULL\n";
    return;
  }
  EXPECT_TRUE(r.gave_up);
  EXPECT_EQ(r.cycles, 4u);
  EXPECT_EQ(r.delivered, 40u);
  EXPECT_EQ(r.total_losses, 1415u);
  EXPECT_EQ(fnv1a(r.delivered_per_cycle), 6680217803996358699ULL);
}

// ---------------------------------------------------------------------------
// The online-routing frontend end to end (adapter + self-message handling).

TEST(EngineGolden, OnlineRouting) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 16);
  Rng gen(7);
  auto m = stacked_permutations(n, 3, gen);
  m.push_back({5, 5});  // a local message rides along

  Rng rng(101);
  const auto r = route_online(t, caps, m, rng);
  if (print_mode()) {
    std::cout << "GOLDEN online cycles=" << r.delivery_cycles
              << " attempts=" << r.total_attempts
              << " losses=" << r.total_losses
              << " hash=" << fnv1a(r.delivered_per_cycle) << "ULL\n";
    return;
  }
  EXPECT_FALSE(r.gave_up);
  EXPECT_EQ(r.delivery_cycles, 9u);
  EXPECT_EQ(r.total_attempts, 797u);
  EXPECT_EQ(r.total_losses, 608u);
  EXPECT_EQ(fnv1a(r.delivered_per_cycle), 11967730147615725460ULL);
  const auto delivered =
      std::accumulate(r.delivered_per_cycle.begin(),
                      r.delivered_per_cycle.end(), std::uint64_t{0});
  EXPECT_EQ(delivered, m.size());
}

// ---------------------------------------------------------------------------
// Tally-mode offline replay: a valid schedule replays exactly.

TEST(EngineGolden, TallyReplay) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 16);
  Rng gen(41);
  const auto m = stacked_permutations(n, 3, gen);
  const auto schedule = schedule_offline(t, caps, m);
  ASSERT_TRUE(verify_schedule(t, caps, m, schedule));

  const auto r = replay_schedule(t, caps, schedule);
  std::vector<std::uint32_t> dpc(r.delivered_per_cycle.begin(),
                                 r.delivered_per_cycle.end());
  if (print_mode()) {
    std::cout << "GOLDEN replay cycles=" << r.cycles
              << " hash=" << fnv1a(dpc) << "ULL\n";
    return;
  }
  EXPECT_EQ(r.cycles, schedule.num_cycles());
  EXPECT_EQ(r.cycles, 18u);
  EXPECT_EQ(r.delivered, m.size());
  EXPECT_EQ(r.capacity_violations, 0u);
  EXPECT_EQ(fnv1a(dpc), 15442268163853219301ULL);
}

// ---------------------------------------------------------------------------
// FIFO store-and-forward rounds on a competitor network and a k-ary tree.

TEST(EngineGolden, FifoStoreForward) {
  const auto net = build_hypercube(6);
  Rng traffic(22);
  const auto m = random_permutation_traffic(64, traffic);
  const auto routes = route_all_bfs(net, m);
  std::uint64_t route_hops = 0;
  for (const auto& r : routes) route_hops += r.size();

  const auto r = simulate_store_forward(net, routes);
  if (print_mode()) {
    std::cout << "GOLDEN fifo rounds=" << r.rounds << " hops=" << r.total_hops
              << " max_queue=" << r.max_queue << "\n";
    return;
  }
  EXPECT_EQ(r.rounds, 8u);
  EXPECT_EQ(r.total_hops, route_hops);
  EXPECT_EQ(r.total_hops, 194u);
  EXPECT_EQ(r.max_queue, 2u);
}

TEST(EngineGolden, FifoKary) {
  KaryTree tree(4, 3);  // 64 processors
  Rng perm_rng(31);
  std::vector<std::uint32_t> perm(tree.num_processors());
  std::iota(perm.begin(), perm.end(), 0u);
  perm_rng.shuffle(perm);

  Rng rng(33);
  const auto r = simulate_kary_permutation(tree, perm, AscentPolicy::Random, rng);
  if (print_mode()) {
    std::cout << "GOLDEN kary rounds=" << r.rounds
              << " max_load=" << r.max_link_load
              << " max_hops=" << r.max_route_hops << "\n";
    return;
  }
  EXPECT_EQ(r.rounds, 9u);
  EXPECT_EQ(r.max_link_load, 4u);
  EXPECT_EQ(r.max_route_hops, 6u);
}

}  // namespace
}  // namespace ft
