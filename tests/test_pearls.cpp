#include "layout/pearls.hpp"

#include <gtest/gtest.h>

#include "util/prng.hpp"

namespace ft {
namespace {

std::vector<std::uint8_t> random_line(std::size_t len, double p_black,
                                      Rng& rng) {
  std::vector<std::uint8_t> line(len);
  for (auto& b : line) b = rng.chance(p_black) ? 1 : 0;
  return line;
}

void expect_lemma6(const std::vector<Segment>& strings,
                   const std::vector<std::uint64_t>& prefix) {
  std::uint64_t blacks = 0, pearls = 0;
  for (const auto& s : strings) {
    blacks += blacks_in(prefix, s);
    pearls += s.length();
  }
  const auto split = split_pearls(strings, prefix);
  // At most two strings per side.
  EXPECT_LE(split.side_a.size(), 2u);
  EXPECT_LE(split.side_b.size(), 2u);
  // Each color halves (within one).
  EXPECT_LE(split.blacks_a, (blacks + 1) / 2);
  EXPECT_LE(split.blacks_b, (blacks + 1) / 2);
  EXPECT_EQ(split.blacks_a + split.blacks_b, blacks);
  std::uint64_t pa = 0, pb = 0;
  for (const auto& s : split.side_a) pa += s.length();
  for (const auto& s : split.side_b) pb += s.length();
  EXPECT_EQ(pa + pb, pearls);
  EXPECT_LE(pa > pb ? pa - pb : pb - pa, 1u);
  // Whites halve too (pearls and blacks both halve).
  const std::uint64_t whites_a = pa - split.blacks_a;
  const std::uint64_t whites = pearls - blacks;
  EXPECT_LE(whites_a, (whites + 1) / 2 + 1);
  // Segments stay within the input strings and do not overlap.
  auto inside = [&](const Segment& s) {
    for (const auto& in : strings) {
      if (s.begin >= in.begin && s.end <= in.end) return true;
    }
    return false;
  };
  for (const auto& s : split.side_a) EXPECT_TRUE(inside(s));
  for (const auto& s : split.side_b) EXPECT_TRUE(inside(s));
}

TEST(Pearls, PrefixSums) {
  const std::vector<std::uint8_t> line{1, 0, 1, 1, 0};
  const auto prefix = black_prefix_sums(line);
  EXPECT_EQ(prefix[0], 0u);
  EXPECT_EQ(prefix[5], 3u);
  EXPECT_EQ(blacks_in(prefix, Segment{1, 4}), 2u);
}

TEST(Pearls, SingleStringPrefixHeavy) {
  const std::vector<std::uint8_t> line{1, 1, 0, 0};
  const auto prefix = black_prefix_sums(line);
  expect_lemma6({Segment{0, 4}}, prefix);
}

TEST(Pearls, SingleStringSuffixHeavy) {
  // The case a naive prefix/suffix family misses: blacks split across
  // both ends.
  const std::vector<std::uint8_t> line{0, 0, 1, 1};
  const auto prefix = black_prefix_sums(line);
  expect_lemma6({Segment{0, 4}}, prefix);
}

TEST(Pearls, SingleStringMiddleBlacks) {
  const std::vector<std::uint8_t> line{0, 1, 1, 1, 1, 0};
  const auto prefix = black_prefix_sums(line);
  expect_lemma6({Segment{0, 6}}, prefix);
}

TEST(Pearls, TwoStringsAdversarial) {
  // Blacks concentrated past the half-size prefix of the long string.
  std::vector<std::uint8_t> line(12, 0);
  for (int i = 8; i < 12; ++i) line[i] = 1;  // string 2 tail
  const auto prefix = black_prefix_sums(line);
  expect_lemma6({Segment{0, 2}, Segment{2, 12}}, prefix);
}

TEST(Pearls, AllBlack) {
  const std::vector<std::uint8_t> line(9, 1);
  const auto prefix = black_prefix_sums(line);
  expect_lemma6({Segment{0, 5}, Segment{5, 9}}, prefix);
}

TEST(Pearls, AllWhite) {
  const std::vector<std::uint8_t> line(8, 0);
  const auto prefix = black_prefix_sums(line);
  expect_lemma6({Segment{0, 8}}, prefix);
}

TEST(Pearls, OddCounts) {
  const std::vector<std::uint8_t> line{1, 0, 1, 0, 1};
  const auto prefix = black_prefix_sums(line);
  expect_lemma6({Segment{0, 5}}, prefix);
}

class PearlsRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PearlsRandomSweep, RandomNecklaces) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t len = 2 + rng.below(200);
    const double density = rng.uniform();
    const auto line = random_line(len, density, rng);
    const auto prefix = black_prefix_sums(line);
    if (len >= 4 && rng.chance(0.6)) {
      // Two strings at a random junction.
      const std::uint64_t cut = 1 + rng.below(len - 1);
      expect_lemma6({Segment{0, cut}, Segment{cut, len}}, prefix);
    } else {
      expect_lemma6({Segment{0, len}}, prefix);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PearlsRandomSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(SubtreeForest, CoversExactly) {
  for (std::uint64_t begin : {0ull, 1ull, 5ull, 13ull}) {
    for (std::uint64_t end : {6ull, 16ull, 27ull, 32ull}) {
      if (begin >= end) continue;
      const auto blocks = maximal_complete_subtrees(begin, end, 5);
      std::uint64_t pos = begin;
      for (const auto& b : blocks) {
        EXPECT_EQ(b.first_leaf, pos);
        EXPECT_EQ(b.first_leaf % (1ull << b.height), 0u);  // aligned
        pos += 1ull << b.height;
      }
      EXPECT_EQ(pos, end);
    }
  }
}

TEST(SubtreeForest, AtMostTwoPerHeight) {
  for (std::uint64_t begin = 0; begin < 64; begin += 3) {
    for (std::uint64_t end = begin + 1; end <= 64; end += 5) {
      const auto blocks = maximal_complete_subtrees(begin, end, 6);
      std::vector<int> per_height(7, 0);
      for (const auto& b : blocks) ++per_height[b.height];
      for (int c : per_height) EXPECT_LE(c, 2);
    }
  }
}

TEST(SubtreeForest, MaxHeightBound) {
  // Lemma 7: the largest tree has height at most lg k for a k-leaf string.
  const auto blocks = maximal_complete_subtrees(3, 3 + 10, 8);
  for (const auto& b : blocks) {
    EXPECT_LE(b.height, 4u);  // lg 10 rounded up
  }
}

TEST(SubtreeForest, WholeLineIsOneTree) {
  const auto blocks = maximal_complete_subtrees(0, 32, 5);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].height, 5u);
  EXPECT_EQ(blocks[0].first_leaf, 0u);
}

TEST(SubtreeForest, EmptyRange) {
  EXPECT_TRUE(maximal_complete_subtrees(7, 7, 4).empty());
}

}  // namespace
}  // namespace ft
