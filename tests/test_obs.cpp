// Observability-layer tests: histogram edge semantics, the metrics
// registry, the JSON model round trip, EngineMetrics' reuse guard, trace
// export validity (JSONL and Chrome trace_event), and the RunReport
// schema round trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>
#include <sstream>
#include <string>

#include "core/online_router.hpp"
#include "core/traffic.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"

namespace ft {
namespace {

TEST(Histogram, BinBoundaries) {
  Histogram h(0.0, 1.0, 10);
  h.observe(0.0);  // bottom edge -> first bin
  EXPECT_EQ(h.bin_count(0), 1u);
  h.observe(1.0);  // top edge: closed top bin, not overflow
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.overflow(), 0u);
  h.observe(0.25);
  EXPECT_EQ(h.bin_count(2), 1u);
  h.observe(0.95);
  EXPECT_EQ(h.bin_count(9), 2u);

  // Overload (utilization > 1, e.g. Tally replay of an invalid schedule)
  // must stay visible instead of being clamped into the top bin.
  h.observe(1.5);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(9), 2u);
  h.observe(-0.1);
  EXPECT_EQ(h.underflow(), 1u);

  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(9), 1.0);

  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(MetricsRegistry, GetOrCreateAndReset) {
  MetricsRegistry reg;
  Counter& c = reg.counter("attempts");
  c.add(3);
  EXPECT_EQ(&reg.counter("attempts"), &c);  // same handle on re-request
  EXPECT_EQ(reg.counter("attempts").value(), 3u);

  Gauge& g = reg.gauge("depth");
  g.set(7.5);
  Histogram& h = reg.histogram("util", 0.0, 1.0, 4);
  h.observe(0.5);
  EXPECT_EQ(&reg.histogram("util", 0.0, 1.0, 4), &h);

  EXPECT_NE(reg.find_counter("attempts"), nullptr);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);

  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // handles stay valid, values zeroed
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.total(), 0u);

  c.add(1);
  const JsonValue j = reg.to_json();
  const JsonValue* counters = j.find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* attempts = counters->find("attempts");
  ASSERT_NE(attempts, nullptr);
  EXPECT_EQ(attempts->as_uint(), 1u);
  const JsonValue* hist = j.find("histograms");
  ASSERT_NE(hist, nullptr);
  ASSERT_NE(hist->find("util"), nullptr);
  EXPECT_EQ(hist->find("util")->find("bins")->size(), 4u);
}

TEST(Json, RoundTrip) {
  JsonValue doc = JsonValue::object();
  doc["int"] = -42;
  doc["big"] = std::uint64_t{18446744073709551615ull};
  doc["pi"] = 3.14159;
  doc["flag"] = true;
  doc["none"] = JsonValue();
  doc["text"] = "line\n\"quoted\"\tend";
  JsonValue& arr = doc["arr"];
  arr = JsonValue::array();
  for (int i = 0; i < 3; ++i) arr.push_back(i);
  doc["nested"]["deep"] = "value";

  for (const int indent : {0, 2}) {
    const std::string text = doc.dump(indent);
    const auto parsed = JsonValue::parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(parsed->find("int")->as_int(), -42);
    EXPECT_EQ(parsed->find("big")->as_uint(), 18446744073709551615ull);
    EXPECT_DOUBLE_EQ(parsed->find("pi")->as_double(), 3.14159);
    EXPECT_TRUE(parsed->find("flag")->as_bool());
    EXPECT_TRUE(parsed->find("none")->is_null());
    EXPECT_EQ(parsed->find("text")->as_string(), "line\n\"quoted\"\tend");
    EXPECT_EQ(parsed->find("arr")->size(), 3u);
    EXPECT_EQ(parsed->find("arr")->at(2).as_int(), 2);
    EXPECT_EQ(parsed->find("nested")->find("deep")->as_string(), "value");
    // Stable output: dumping the parse reproduces the text exactly.
    EXPECT_EQ(parsed->dump(indent), text);
  }

  EXPECT_FALSE(JsonValue::parse("{\"unterminated\": ").has_value());
  EXPECT_FALSE(JsonValue::parse("{} trailing").has_value());
  const auto esc = JsonValue::parse("\"a\\u00e9b\"");
  ASSERT_TRUE(esc.has_value());
  EXPECT_EQ(esc->as_string(), "a\xc3\xa9" "b");
}

/// Routes 2 stacked permutations of n through an observed online run.
/// `routed_out`, when given, receives the number of non-self messages —
/// the ones that enter the engine and emit events.
OnlineRoutingResult observed_route(std::uint32_t n, EngineObserver* obs,
                                   std::uint32_t max_cycles = 0,
                                   std::uint64_t* routed_out = nullptr) {
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, n / 4);
  Rng gen(5);
  const auto m = stacked_permutations(n, 2, gen);
  if (routed_out != nullptr) {
    *routed_out = 0;
    for (const auto& msg : m) {
      if (msg.src != msg.dst) ++*routed_out;
    }
  }
  Rng rng(6);
  OnlineRouterOptions opts;
  opts.observer = obs;
  if (max_cycles != 0) opts.max_cycles = max_cycles;
  return route_online(t, caps, m, rng, opts);
}

TEST(EngineMetricsDeathTest, RejectsGraphShapeChange) {
  EngineMetrics metrics;
  observed_route(64, &metrics);
  // Same shape again: fine, aggregates.
  observed_route(64, &metrics);
  // Different topology without reset(): checked error, not silent blending.
  EXPECT_DEATH(observed_route(128, &metrics), "different graph shape");
  metrics.reset();
  observed_route(128, &metrics);  // reset() re-arms for a new shape
  EXPECT_GT(metrics.total_delivered(), 0u);
}

TEST(TraceSink, JsonlAndEventCounts) {
  TraceSink trace;
  std::uint64_t routed = 0;
  const auto r = observed_route(64, &trace, 0, &routed);
  ASSERT_FALSE(r.gave_up);

  std::uint64_t injects = 0, attempts = 0, losses = 0, delivers = 0;
  for (const MessageEvent& e : trace.message_events()) {
    switch (e.kind) {
      case MessageEventKind::Inject: ++injects; break;
      case MessageEventKind::Attempt: ++attempts; break;
      case MessageEventKind::Loss: ++losses; break;
      case MessageEventKind::Deliver: ++delivers; break;
      default: FAIL() << "unexpected event kind";
    }
  }
  EXPECT_EQ(injects, routed);  // self messages never enter the engine
  EXPECT_EQ(delivers, routed);
  EXPECT_EQ(attempts, r.total_attempts);
  EXPECT_EQ(losses, r.total_losses);
  EXPECT_EQ(trace.cycle_records().size(), r.delivery_cycles);
  EXPECT_EQ(trace.dropped_events(), 0u);

  std::ostringstream jsonl;
  trace.write_jsonl(jsonl);
  std::istringstream lines(jsonl.str());
  std::string line;
  std::size_t cycles_seen = 0, events_seen = 0;
  while (std::getline(lines, line)) {
    const auto v = JsonValue::parse(line);
    ASSERT_TRUE(v.has_value()) << line;
    const std::string& type = v->find("type")->as_string();
    if (type == "cycle") {
      ++cycles_seen;
    } else {
      ++events_seen;
    }
  }
  EXPECT_EQ(cycles_seen, r.delivery_cycles);
  EXPECT_EQ(events_seen, trace.message_events().size());
}

TEST(TraceSink, ChromeTraceIsValidAndOrdered) {
  TraceSink trace;
  const auto r = observed_route(64, &trace);
  ASSERT_FALSE(r.gave_up);

  std::ostringstream out;
  trace.write_chrome_trace(out);
  const auto doc = JsonValue::parse(out.str());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GT(events->size(), 0u);

  std::uint64_t last_slice_ts = 0;
  std::size_t slices = 0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = events->at(i);
    const std::string& ph = e.find("ph")->as_string();
    ASSERT_NE(e.find("ts"), nullptr);
    if (ph == "X") {
      const std::uint64_t ts = e.find("ts")->as_uint();
      if (slices > 0) {
        EXPECT_GT(ts, last_slice_ts);  // monotonic cycles
      }
      last_slice_ts = ts;
      ++slices;
      ASSERT_NE(e.find("dur"), nullptr);
    }
  }
  EXPECT_EQ(slices, r.delivery_cycles);
}

TEST(TraceSink, GiveUpEventsCoverUndelivered) {
  TraceSink trace;
  const auto r = observed_route(64, &trace, /*max_cycles=*/1);
  ASSERT_TRUE(r.gave_up);
  const std::uint64_t delivered =
      std::accumulate(r.delivered_per_cycle.begin(),
                      r.delivered_per_cycle.end(), std::uint64_t{0});
  std::uint64_t give_ups = 0;
  for (const MessageEvent& e : trace.message_events()) {
    if (e.kind == MessageEventKind::GiveUp) {
      ++give_ups;
      EXPECT_EQ(e.cycle, r.delivery_cycles);
    }
  }
  EXPECT_EQ(give_ups, 128u - delivered);
}

TEST(TraceSink, MaxEventsCapCountsDrops) {
  TraceSink trace(TraceOptions{true, 16});
  observed_route(64, &trace);
  EXPECT_EQ(trace.message_events().size(), 16u);
  EXPECT_GT(trace.dropped_events(), 0u);
}

TEST(RunReport, RoundTripThroughFile) {
  RunReport report("test_tool");
  report.params()["n"] = 64;
  JsonValue& run = report.add_run("case-a");
  run["cycles"] = 12;
  PhaseTimers timers;
  timers.add("compute", 0.5);
  timers.add("compute", 0.25);
  timers.add("io", 0.125);
  EXPECT_DOUBLE_EQ(timers.seconds("compute"), 0.75);
  EXPECT_DOUBLE_EQ(timers.seconds("never-ran"), 0.0);
  report.set_phases(timers);

  const std::string path = "test_obs_report.tmp.json";
  ASSERT_TRUE(report.write_file(path));
  const auto parsed = RunReport::read_file(path);
  std::remove(path.c_str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("schema")->as_string(), RunReport::kSchema);
  EXPECT_EQ(parsed->find("tool")->as_string(), "test_tool");
  EXPECT_EQ(parsed->find("params")->find("n")->as_uint(), 64u);
  const JsonValue* runs = parsed->find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->size(), 1u);
  EXPECT_EQ(runs->at(0).find("name")->as_string(), "case-a");
  EXPECT_EQ(runs->at(0).find("cycles")->as_uint(), 12u);
  EXPECT_DOUBLE_EQ(parsed->find("phases")->find("compute")->as_double(),
                   0.75);
  ASSERT_NE(parsed->find("git_sha"), nullptr);
  ASSERT_NE(parsed->find("timestamp"), nullptr);
  ASSERT_NE(parsed->find("host"), nullptr);
}

TEST(ObserverFanout, ForwardsSelectively) {
  EngineMetrics metrics;  // does not want message events
  TraceSink trace;        // does
  ObserverFanout fanout;
  fanout.add(&metrics);
  fanout.add(&trace);
  fanout.add(nullptr);  // ignored
  EXPECT_TRUE(fanout.wants_message_events());

  const auto r = observed_route(64, &fanout);
  EXPECT_EQ(metrics.cycles(), r.delivery_cycles);
  EXPECT_EQ(metrics.total_attempts(), r.total_attempts);
  EXPECT_FALSE(trace.message_events().empty());
}

}  // namespace
}  // namespace ft
