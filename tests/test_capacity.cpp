#include "core/capacity.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ft {
namespace {

TEST(Capacity, UniversalRootAndLeaves) {
  FatTreeTopology t(1024);
  const auto caps = CapacityProfile::universal(t, 256);
  EXPECT_EQ(caps.root_capacity(), 256u);
  EXPECT_EQ(caps.capacity_at_level(t.height()), 1u);  // processor channels
}

TEST(Capacity, UniversalMonotoneNonIncreasingDownward) {
  FatTreeTopology t(4096);
  for (std::uint64_t w : {256ull, 512ull, 1024ull, 4096ull}) {
    const auto caps = CapacityProfile::universal(t, w);
    for (std::uint32_t k = 0; k < t.height(); ++k) {
      EXPECT_GE(caps.capacity_at_level(k), caps.capacity_at_level(k + 1))
          << "w=" << w << " level=" << k;
    }
  }
}

TEST(Capacity, UniversalDoublingRegimeNearLeaves) {
  // Below the breakpoint 3·lg(n/w) the capacities double per level up.
  FatTreeTopology t(4096);  // L = 12
  const std::uint64_t w = 1024;
  const auto caps = CapacityProfile::universal(t, w);
  const std::uint32_t breakpoint = 3 * 2;  // 3·lg(4096/1024) = 6
  for (std::uint32_t k = t.height(); k > breakpoint + 1; --k) {
    EXPECT_EQ(caps.capacity_at_level(k - 1), 2 * caps.capacity_at_level(k))
        << "level " << k;
  }
}

TEST(Capacity, UniversalRootRegimeGrowsByCubeRootOfFour) {
  // Above the breakpoint the growth rate per level is 4^{1/3}.
  FatTreeTopology t(4096);
  const std::uint64_t w = 1024;
  const auto caps = CapacityProfile::universal(t, w);
  const double expected_ratio = std::exp2(2.0 / 3.0);
  for (std::uint32_t k = 0; k + 1 < 6; ++k) {
    const double ratio =
        static_cast<double>(caps.capacity_at_level(k)) /
        static_cast<double>(caps.capacity_at_level(k + 1));
    EXPECT_NEAR(ratio, expected_ratio, 0.15) << "level " << k;
  }
}

TEST(Capacity, UniversalClampsRootToN) {
  FatTreeTopology t(64);
  const auto caps = CapacityProfile::universal(t, 100000);
  EXPECT_EQ(caps.root_capacity(), 64u);
}

TEST(Capacity, FullFatTreeEqualsDoubling) {
  FatTreeTopology t(256);
  const auto uni = CapacityProfile::universal(t, 256);  // w = n
  const auto dbl = CapacityProfile::doubling(t);
  for (std::uint32_t k = 0; k <= t.height(); ++k) {
    EXPECT_EQ(uni.capacity_at_level(k), dbl.capacity_at_level(k));
  }
}

TEST(Capacity, ConstantProfile) {
  FatTreeTopology t(32);
  const auto caps = CapacityProfile::constant(t, 7);
  for (std::uint32_t k = 0; k <= t.height(); ++k) {
    EXPECT_EQ(caps.capacity_at_level(k), 7u);
  }
}

TEST(Capacity, CapacityByNodeUsesChannelLevel) {
  FatTreeTopology t(16);
  const auto caps = CapacityProfile::universal(t, 8);
  EXPECT_EQ(caps.capacity(t, t.root()), caps.capacity_at_level(0));
  EXPECT_EQ(caps.capacity(t, 2), caps.capacity_at_level(1));
  EXPECT_EQ(caps.capacity(t, t.node_of_leaf(3)),
            caps.capacity_at_level(t.height()));
}

TEST(Capacity, TotalWiresSkinnyTree) {
  // Constant capacity 1: 2 wires per channel, 2n-1 channels.
  FatTreeTopology t(16);
  const auto caps = CapacityProfile::constant(t, 1);
  EXPECT_EQ(caps.total_wires(t), 2u * (2 * 16 - 1));
}

TEST(Capacity, TotalWiresGrowsWithRootCapacity) {
  FatTreeTopology t(256);
  std::uint64_t prev = 0;
  for (std::uint64_t w : {64ull, 128ull, 256ull}) {
    const auto wires = CapacityProfile::universal(t, w).total_wires(t);
    EXPECT_GT(wires, prev);
    prev = wires;
  }
}

TEST(Capacity, MinimumCapacityIsOne) {
  FatTreeTopology t(1024);
  const auto caps = CapacityProfile::universal(t, 1);
  for (std::uint32_t k = 0; k <= t.height(); ++k) {
    EXPECT_GE(caps.capacity_at_level(k), 1u);
  }
}

class UniversalSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint64_t>> {
};

TEST_P(UniversalSweep, BreakpointConsistency) {
  const auto [n, w] = GetParam();
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, w);
  // Both regime formulas agree near the breakpoint within rounding.
  const double bp = 3.0 * std::log2(static_cast<double>(n) / w);
  for (std::uint32_t k = 0; k <= t.height(); ++k) {
    const double doubling = std::exp2(static_cast<double>(t.height() - k));
    const double root_regime = w * std::exp2(-2.0 * k / 3.0);
    const double expect = std::max(1.0, std::min(doubling, root_regime));
    EXPECT_NEAR(static_cast<double>(caps.capacity_at_level(k)) / expect, 1.0,
                0.35)
        << "n=" << n << " w=" << w << " k=" << k << " bp=" << bp;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, UniversalSweep,
    ::testing::Values(std::make_pair(256u, 64ull),
                      std::make_pair(1024u, 128ull),
                      std::make_pair(1024u, 512ull),
                      std::make_pair(4096u, 256ull),
                      std::make_pair(16384u, 1024ull)));

}  // namespace
}  // namespace ft
