// Scale-out regression tests: streamed message sets are bit-identical to
// materialized ones (results and trace streams), the narrow/wide channel
// index boundary at 2^16 channels is seamless, checked narrowing aborts
// at the 32-bit boundary, and the subtree-sharded parallel executor
// matches the serial engine on every workload shape — including faults
// and retry policies. See DESIGN.md "Scale-out".
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/capacity.hpp"
#include "core/online_router.hpp"
#include "core/topology.hpp"
#include "core/traffic.hpp"
#include "engine/engine.hpp"
#include "engine/fat_tree_model.hpp"
#include "engine/kary_model.hpp"
#include "engine/network_model.hpp"
#include "kary/kary_routing.hpp"
#include "kary/kary_sim.hpp"
#include "kary/kary_tree.hpp"
#include "nets/builders.hpp"
#include "nets/routing.hpp"
#include "nets/store_forward.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace {

using namespace ft;

std::uint64_t event_fingerprint(const TraceSink& trace) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) { h = (h ^ v) * 1099511628211ull; };
  for (const MessageEvent& e : trace.message_events()) {
    mix(static_cast<std::uint64_t>(e.kind));
    mix(e.message);
    mix(e.cycle);
    mix(e.channel);
  }
  return h;
}

void expect_same_result(const EngineResult& a, const EngineResult& b,
                        const char* label) {
  EXPECT_EQ(a.cycles, b.cycles) << label;
  EXPECT_EQ(a.gave_up, b.gave_up) << label;
  EXPECT_EQ(a.delivered, b.delivered) << label;
  EXPECT_EQ(a.total_attempts, b.total_attempts) << label;
  EXPECT_EQ(a.total_losses, b.total_losses) << label;
  EXPECT_EQ(a.total_hops, b.total_hops) << label;
  EXPECT_EQ(a.latency_sum, b.latency_sum) << label;
  EXPECT_EQ(a.max_queue, b.max_queue) << label;
  EXPECT_EQ(a.messages_given_up, b.messages_given_up) << label;
  EXPECT_EQ(a.total_backoffs, b.total_backoffs) << label;
  EXPECT_EQ(a.delivered_per_cycle, b.delivered_per_cycle) << label;
}

// --- Streaming vs materialized -------------------------------------------

// run_stream over chunked slices of a PathSet must match run() on the
// whole set, for every contention policy, including the traced event
// stream — whatever the chunk size.
TEST(Scaleout, StreamedRunMatchesMaterialized) {
  const std::uint32_t n = 128;
  FatTreeTopology topo(n);
  const auto caps = CapacityProfile::universal(topo, 16);
  Rng gen(11);
  const auto m = stacked_permutations(n, 3, gen);
  const PathSet paths = fat_tree_path_set(topo, m);

  for (const ContentionPolicy policy :
       {ContentionPolicy::RandomSubset, ContentionPolicy::Fifo,
        ContentionPolicy::Tally}) {
    EngineOptions opts;
    opts.contention = policy;
    opts.seed = 99;

    CycleEngine base_engine(fat_tree_channel_graph(topo, caps), opts);
    TraceSink base_trace;
    const EngineResult base = base_engine.run(paths, &base_trace);

    for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                    kDefaultChunkPaths}) {
      CycleEngine engine(fat_tree_channel_graph(topo, caps), opts);
      PathSetSource source(paths, chunk);
      TraceSink trace;
      const EngineResult streamed = engine.run_stream(source, &trace);
      expect_same_result(base, streamed, "run_stream");
      EXPECT_EQ(event_fingerprint(base_trace), event_fingerprint(trace))
          << "policy " << static_cast<int>(policy) << " chunk " << chunk;
    }
  }
}

/// Yields a fixed sequence of PathSets, one per chunk — the streaming
/// mirror of run_batched's batch vector.
class BatchVectorSource final : public MessageSource {
 public:
  explicit BatchVectorSource(const std::vector<PathSet>& batches)
      : batches_(batches) {}

  bool next_chunk(PathSet& chunk) override {
    chunk.clear();
    if (next_ >= batches_.size()) return false;
    chunk.append_set(batches_[next_++]);
    return true;
  }

 private:
  const std::vector<PathSet>& batches_;
  std::size_t next_ = 0;
};

TEST(Scaleout, StreamedBatchesMatchRunBatched) {
  const std::uint32_t n = 64;
  FatTreeTopology topo(n);
  const auto caps = CapacityProfile::universal(topo, 16);

  std::vector<PathSet> batches;
  for (std::uint32_t k = 0; k < 5; ++k) {
    Rng gen(50 + k);
    batches.push_back(fat_tree_path_set(topo, random_permutation_traffic(n, gen)));
  }

  for (const ContentionPolicy policy :
       {ContentionPolicy::RandomSubset, ContentionPolicy::Tally}) {
    EngineOptions opts;
    opts.contention = policy;
    opts.seed = 7;

    CycleEngine base_engine(fat_tree_channel_graph(topo, caps), opts);
    TraceSink base_trace;
    const EngineResult base = base_engine.run_batched(batches, &base_trace);

    CycleEngine engine(fat_tree_channel_graph(topo, caps), opts);
    BatchVectorSource source(batches);
    TraceSink trace;
    const EngineResult streamed = engine.run_batched_stream(source, &trace);
    expect_same_result(base, streamed, "run_batched_stream");
    EXPECT_EQ(event_fingerprint(base_trace), event_fingerprint(trace));
  }
}

// route_online and route_online_stream agree for the same messages,
// including self messages (delivered locally, outside the engine).
TEST(Scaleout, OnlineRouterStreamMatchesMessageSet) {
  const std::uint32_t n = 64;
  FatTreeTopology topo(n);
  const auto caps = CapacityProfile::universal(topo, 16);
  Rng gen(3);
  MessageSet m = random_permutation_traffic(n, gen);
  m.push_back({5, 5});  // self messages bypass the engine
  m.push_back({0, 0});

  for (const bool parallel : {false, true}) {
    OnlineRouterOptions opts;
    opts.parallel = parallel;

    Rng rng_a(777);
    const auto a = route_online(topo, caps, m, rng_a, opts);

    Rng rng_b(777);
    MessageSetStream stream(m);
    // lambda_hint only sizes the give-up horizon; any value above the
    // actual cycle count gives the identical run.
    const auto b = route_online_stream(topo, caps, stream, 2.0, rng_b, opts);

    EXPECT_EQ(a.delivery_cycles, b.delivery_cycles);
    EXPECT_EQ(a.total_attempts, b.total_attempts);
    EXPECT_EQ(a.total_losses, b.total_losses);
    EXPECT_EQ(a.delivered_per_cycle, b.delivered_per_cycle);
    const auto total = std::accumulate(a.delivered_per_cycle.begin(),
                                       a.delivered_per_cycle.end(),
                                       std::uint64_t{0});
    EXPECT_EQ(total, m.size());
  }
}

// Formula streams agree with their materialized generators element for
// element, and RandomPermutationStream consumes the same draw as
// random_permutation_traffic.
TEST(Scaleout, StreamsMatchMaterializedGenerators) {
  const std::uint32_t n = 256;
  const struct {
    MessageSet materialized;
    FormulaStream::Fn fn;
  } cases[] = {
      {bit_reversal_traffic(n), bit_reversal_dest},
      {complement_traffic(n), complement_dest},
      {tornado_traffic(n), tornado_dest},
      {shuffle_traffic(n), shuffle_dest},
      {transpose_traffic(n), transpose_dest},
  };
  for (const auto& c : cases) {
    FormulaStream stream(n, c.fn);
    Message msg;
    std::size_t i = 0;
    while (stream.next(msg)) {
      ASSERT_LT(i, c.materialized.size());
      EXPECT_EQ(msg.src, c.materialized[i].src);
      EXPECT_EQ(msg.dst, c.materialized[i].dst);
      ++i;
    }
    EXPECT_EQ(i, c.materialized.size());
  }

  Rng a(42), b(42);
  const MessageSet perm = random_permutation_traffic(n, a);
  RandomPermutationStream stream(n, b);
  Message msg;
  std::size_t i = 0;
  while (stream.next(msg)) {
    ASSERT_LT(i, perm.size());
    EXPECT_EQ(msg.src, perm[i].src);
    EXPECT_EQ(msg.dst, perm[i].dst);
    ++i;
  }
  EXPECT_EQ(i, perm.size());
}

// Store-and-forward: the streaming entry point matches the route-vector
// form at any chunk size.
TEST(Scaleout, StoreForwardStreamMatchesVector) {
  const auto net = build_mesh2d(6, 6);
  Rng rng(5);
  const auto m = uniform_random_traffic(36, 100, rng);
  const auto routes = route_all_bfs(net, m);

  const auto base = simulate_store_forward(net, routes);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3}}) {
    RouteChunkSource source(routes, chunk);
    const auto streamed =
        simulate_store_forward_stream(net, source, routes.size());
    EXPECT_EQ(base.rounds, streamed.rounds);
    EXPECT_EQ(base.delivered, streamed.delivered);
    EXPECT_EQ(base.total_hops, streamed.total_hops);
    EXPECT_EQ(base.max_queue, streamed.max_queue);
    EXPECT_EQ(base.mean_latency, streamed.mean_latency);
  }
}

// k-ary: the simulation streams its routes; replicating the old
// materialize-then-run pipeline by hand from the same generator state
// must give the same rounds and load statistics.
TEST(Scaleout, KaryStreamMatchesMaterialized) {
  KaryTree tree(/*k=*/2, /*levels=*/5);
  const std::uint32_t n = tree.num_processors();
  Rng pgen(9);
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  for (std::uint32_t i = n - 1; i > 0; --i) {
    std::swap(perm[i], perm[pgen.below(i + 1)]);
  }

  Rng rng_a(21);
  const auto streamed = simulate_kary_permutation(tree, perm,
                                                  AscentPolicy::Random, rng_a);

  Rng rng_b(21);
  KaryLoadTracker tracker(tree);
  std::vector<KaryRoute> routes;
  std::uint32_t max_hops = 0;
  for (std::uint32_t p = 0; p < n; ++p) {
    routes.push_back(
        kary_route(tree, p, perm[p], AscentPolicy::Random, rng_b, tracker));
    max_hops = std::max(max_hops,
                        static_cast<std::uint32_t>(routes.back().size()));
  }
  EngineOptions fifo;
  fifo.contention = ContentionPolicy::Fifo;
  CycleEngine engine(kary_channel_graph(tree), fifo);
  const EngineResult er = engine.run(kary_path_set(routes));

  EXPECT_EQ(streamed.rounds, er.cycles);
  EXPECT_EQ(streamed.delivered, er.delivered);
  EXPECT_EQ(streamed.max_route_hops, max_hops);
  EXPECT_EQ(streamed.max_link_load, tracker.max_load());
  EXPECT_EQ(streamed.mean_link_load, tracker.mean_positive_load());
}

// --- Narrow/wide boundary -------------------------------------------------

// Arbitration streams are keyed by (seed, cycle, channel) only, so adding
// unused channels — in particular crossing the 2^16 boundary where the
// engine switches from 16-bit to 32-bit hop buffers — must not change any
// result bit.
TEST(Scaleout, NarrowWideBoundaryIsSeamless) {
  const std::size_t kUsed = 100;
  // Three contenders per channel, capacity 1: every channel runs a
  // lottery every cycle until its bucket drains.
  std::vector<EnginePath> paths;
  for (std::uint32_t i = 0; i < 3 * kUsed; ++i) {
    paths.push_back({static_cast<std::uint32_t>(i % kUsed)});
  }

  EngineOptions opts;
  opts.seed = 1234;

  EngineResult base;
  bool have_base = false;
  for (const std::size_t channels :
       {kUsed, std::size_t{65535}, std::size_t{65536}, std::size_t{65537}}) {
    CycleEngine engine(
        ChannelGraph::flat(std::vector<std::uint64_t>(channels, 1)), opts);
    const EngineResult r = engine.run(paths);
    EXPECT_EQ(r.delivered, paths.size());
    EXPECT_EQ(r.cycles, 3u);  // capacity 1, three contenders per channel
    if (!have_base) {
      base = r;
      have_base = true;
    } else {
      expect_same_result(base, r, "narrow/wide boundary");
    }
  }

  // The top channel slot is usable on both sides of the boundary.
  for (const std::size_t channels : {std::size_t{65536}, std::size_t{65537}}) {
    CycleEngine engine(
        ChannelGraph::flat(std::vector<std::uint64_t>(channels, 1)), opts);
    std::vector<EnginePath> top = {
        {static_cast<std::uint32_t>(channels - 1)},
        {static_cast<std::uint32_t>(channels - 1)}};
    const EngineResult r = engine.run(top);
    EXPECT_EQ(r.delivered, 2u);
    EXPECT_EQ(r.cycles, 2u);
  }
}

TEST(ScaleoutDeathTest, CheckedNarrowingAbortsPastU32) {
  EXPECT_EQ(checked_u32(0xffffffffULL, "fits"), 0xffffffffu);
  EXPECT_EQ(checked_u32(0, "fits"), 0u);
  EXPECT_DEATH(checked_u32(0x100000000ULL, "counter overflows 32 bits"),
               "counter overflows 32 bits");
}

// --- Subtree sharding -----------------------------------------------------

// The sharded parallel executor is purely an execution strategy: for
// every shard depth (including depth 1, whose spine band is empty) and
// for workloads that stay inside shards, all cross the root, or mix, the
// results and traced event streams match the unsharded serial engine.
TEST(Scaleout, ShardedEngineMatchesSerial) {
  const std::uint32_t n = 128;
  FatTreeTopology topo(n);
  const auto caps = CapacityProfile::universal(topo, 32);

  Rng gen(17);
  const struct {
    const char* name;
    MessageSet m;
  } workloads[] = {
      {"random_perm", random_permutation_traffic(n, gen)},
      {"complement", complement_traffic(n)},  // every message crosses root
      {"local", local_traffic(n, 3, gen)},    // mostly intra-shard
      {"stacked", stacked_permutations(n, 4, gen)},
  };

  for (const auto& w : workloads) {
    const PathSet paths = fat_tree_path_set(topo, w.m);

    EngineOptions serial_opts;
    serial_opts.seed = 321;
    CycleEngine serial_engine(fat_tree_channel_graph(topo, caps),
                              serial_opts);
    TraceSink serial_trace;
    const EngineResult serial = serial_engine.run(paths, &serial_trace);
    EXPECT_FALSE(serial.gave_up) << w.name;

    for (const std::uint32_t shard_level : {1u, 2u, 3u}) {
      EngineOptions opts;
      opts.seed = 321;
      opts.parallel = true;
      CycleEngine engine(fat_tree_channel_graph(topo, caps, shard_level),
                         opts);
      TraceSink trace;
      const EngineResult sharded = engine.run(paths, &trace);
      expect_same_result(serial, sharded, w.name);
      EXPECT_EQ(event_fingerprint(serial_trace), event_fingerprint(trace))
          << w.name << " shard_level " << shard_level;
    }
  }
}

// Sharding composes with the retry/fault machinery: dynamic faults, kill
// domains and exponential backoff all run through the sharded sweeps.
TEST(Scaleout, ShardedEngineMatchesSerialUnderFaults) {
  const std::uint32_t n = 64;
  FatTreeTopology topo(n);
  const auto caps = CapacityProfile::universal(topo, 16);
  Rng gen(23);
  const auto m = stacked_permutations(n, 3, gen);
  const PathSet paths = fat_tree_path_set(topo, m);

  FaultPlan plan(404);
  plan.set_domains(fat_tree_subtree_domains(topo, 2));
  plan.add_subtree_kill({/*node=*/5, /*at_cycle=*/2, /*duration=*/4});
  plan.set_storm({0.05, 1, 5});

  EngineOptions serial_opts;
  serial_opts.seed = 55;
  serial_opts.fault_plan = &plan;
  serial_opts.retry.exponential_backoff = true;
  CycleEngine serial_engine(fat_tree_channel_graph(topo, caps), serial_opts);
  TraceSink serial_trace;
  const EngineResult serial = serial_engine.run(paths, &serial_trace);

  EngineOptions opts = serial_opts;
  opts.parallel = true;
  CycleEngine engine(fat_tree_channel_graph(topo, caps, 2), opts);
  TraceSink trace;
  const EngineResult sharded = engine.run(paths, &trace);

  expect_same_result(serial, sharded, "faulted sharded run");
  EXPECT_EQ(serial.fault_down_events, sharded.fault_down_events);
  EXPECT_EQ(serial.fault_up_events, sharded.fault_up_events);
  EXPECT_EQ(serial.subtree_kill_events, sharded.subtree_kill_events);
  EXPECT_EQ(event_fingerprint(serial_trace), event_fingerprint(trace));
}

// Streaming and sharding compose: a streamed sharded parallel run equals
// the materialized serial run.
TEST(Scaleout, StreamedShardedMatchesMaterializedSerial) {
  const std::uint32_t n = 128;
  FatTreeTopology topo(n);
  const auto caps = CapacityProfile::universal(topo, 32);
  Rng gen(29);
  const auto m = random_permutation_traffic(n, gen);
  const PathSet paths = fat_tree_path_set(topo, m);

  EngineOptions serial_opts;
  serial_opts.seed = 777;
  CycleEngine serial_engine(fat_tree_channel_graph(topo, caps), serial_opts);
  const EngineResult serial = serial_engine.run(paths);

  EngineOptions opts = serial_opts;
  opts.parallel = true;
  CycleEngine engine(fat_tree_channel_graph(topo, caps, 2), opts);
  MessageSetStream stream(m);
  FatTreePathSource source(topo, stream, /*chunk_paths=*/16);
  const EngineResult streamed = engine.run_stream(source);

  expect_same_result(serial, streamed, "streamed sharded");
}

// --- Parallel spine -------------------------------------------------------

// The parallel-spine arbitration path is pinned bit-identical to the
// serial engine at every shard depth, with the spine pooled and not.
// threads is forced to 4 so the pool genuinely dispatches even on
// single-core hosts (results are thread-count-invariant by construction;
// this test exists to prove it).
TEST(Scaleout, ParallelSpineMatchesSerialAtEveryShardLevel) {
  const std::uint32_t n = 128;
  FatTreeTopology topo(n);
  const auto caps = CapacityProfile::universal(topo, 32);
  Rng gen(31);
  const struct {
    const char* name;
    MessageSet m;
  } workloads[] = {
      {"complement", complement_traffic(n)},  // all traffic through spine
      {"stacked", stacked_permutations(n, 4, gen)},
  };

  for (const auto& w : workloads) {
    const PathSet paths = fat_tree_path_set(topo, w.m);

    EngineOptions serial_opts;
    serial_opts.seed = 808;
    CycleEngine serial_engine(fat_tree_channel_graph(topo, caps),
                              serial_opts);
    TraceSink serial_trace;
    const EngineResult serial = serial_engine.run(paths, &serial_trace);
    EXPECT_FALSE(serial.gave_up) << w.name;

    for (const std::uint32_t shard_level : {1u, 2u, 3u}) {
      for (const bool parallel_spine : {false, true}) {
        EngineOptions opts;
        opts.seed = 808;
        opts.parallel = true;
        opts.threads = 4;
        opts.parallel_spine = parallel_spine;
        CycleEngine engine(fat_tree_channel_graph(topo, caps, shard_level),
                           opts);
        TraceSink trace;
        const EngineResult got = engine.run(paths, &trace);
        expect_same_result(serial, got, w.name);
        EXPECT_EQ(event_fingerprint(serial_trace), event_fingerprint(trace))
            << w.name << " shard_level " << shard_level << " parallel_spine "
            << parallel_spine;
      }
    }
  }
}

// Same pinning through the observability plane: the telemetry probe rides
// the serial coordination path, so its order-sensitive fingerprint must
// be identical whether the spine is arbitrated serially or on the pool.
TEST(Scaleout, ParallelSpineKeepsTelemetryFingerprint) {
  const std::uint32_t n = 128;
  FatTreeTopology topo(n);
  const auto caps = CapacityProfile::universal(topo, 32);
  Rng gen(37);
  const auto m = stacked_permutations(n, 4, gen);
  const PathSet paths = fat_tree_path_set(topo, m);

  std::uint64_t fp_serial = 0;
  {
    EngineOptions opts;
    opts.seed = 909;
    TelemetryOptions topts;
    topts.every_k = 2;
    TelemetryProbe probe(topts);
    CycleEngine engine(fat_tree_channel_graph(topo, caps), opts);
    engine.run(paths, &probe);
    fp_serial = probe.fingerprint();
  }

  for (const std::uint32_t shard_level : {1u, 2u, 3u}) {
    for (const bool parallel_spine : {false, true}) {
      EngineOptions opts;
      opts.seed = 909;
      opts.parallel = true;
      opts.threads = 4;
      opts.parallel_spine = parallel_spine;
      TelemetryOptions topts;
      topts.every_k = 2;
      TelemetryProbe probe(topts);
      CycleEngine engine(fat_tree_channel_graph(topo, caps, shard_level),
                         opts);
      engine.run(paths, &probe);
      EXPECT_EQ(fp_serial, probe.fingerprint())
          << "shard_level " << shard_level << " parallel_spine "
          << parallel_spine;
    }
  }
}

// Fault plans, kill domains, retries and backoff all interleave with the
// pooled spine; every counter and the traced stream stay pinned to the
// serial run, with and without the spine parallelized.
TEST(Scaleout, ParallelSpineMatchesSerialUnderFaultsAndRetries) {
  const std::uint32_t n = 64;
  FatTreeTopology topo(n);
  const auto caps = CapacityProfile::universal(topo, 16);
  Rng gen(41);
  const auto m = stacked_permutations(n, 3, gen);
  const PathSet paths = fat_tree_path_set(topo, m);

  FaultPlan plan(505);
  plan.set_domains(fat_tree_subtree_domains(topo, 2));
  plan.add_subtree_kill({/*node=*/5, /*at_cycle=*/1, /*duration=*/3});
  plan.set_storm({0.08, 1, 4});

  RetryPolicy retries[2];
  retries[1].max_attempts = 6;
  retries[1].exponential_backoff = true;
  retries[1].deadline_cycles = 64;

  for (const RetryPolicy& retry : retries) {
    const FaultPlan* fault_cases[] = {nullptr, &plan};
    for (const FaultPlan* fp : fault_cases) {
      EngineOptions serial_opts;
      serial_opts.seed = 66;
      serial_opts.fault_plan = fp;
      serial_opts.retry = retry;
      CycleEngine serial_engine(fat_tree_channel_graph(topo, caps),
                                serial_opts);
      TraceSink serial_trace;
      const EngineResult serial = serial_engine.run(paths, &serial_trace);

      for (const bool parallel_spine : {false, true}) {
        EngineOptions opts = serial_opts;
        opts.parallel = true;
        opts.threads = 4;
        opts.parallel_spine = parallel_spine;
        CycleEngine engine(fat_tree_channel_graph(topo, caps, 2), opts);
        TraceSink trace;
        const EngineResult got = engine.run(paths, &trace);
        expect_same_result(serial, got, "faulted parallel-spine run");
        EXPECT_EQ(serial.fault_down_events, got.fault_down_events);
        EXPECT_EQ(serial.fault_up_events, got.fault_up_events);
        EXPECT_EQ(serial.subtree_kill_events, got.subtree_kill_events);
        EXPECT_EQ(serial.degraded_channel_cycles, got.degraded_channel_cycles);
        EXPECT_EQ(event_fingerprint(serial_trace), event_fingerprint(trace))
            << "faults " << (fp != nullptr) << " backoff "
            << retry.exponential_backoff << " parallel_spine "
            << parallel_spine;
      }
    }
  }
}

}  // namespace
