#include "core/schedule_stats.hpp"

#include <gtest/gtest.h>

#include "core/traffic.hpp"
#include "util/prng.hpp"

namespace ft {
namespace {

TEST(ScheduleStats, EmptySchedule) {
  FatTreeTopology t(16);
  const auto caps = CapacityProfile::universal(t, 8);
  const auto stats = analyze_schedule(t, caps, Schedule{});
  EXPECT_EQ(stats.cycles, 0u);
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_EQ(stats.mean_utilization, 0.0);
}

TEST(ScheduleStats, FullFatTreeComplementUsesAllRootWires) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::doubling(t);
  Schedule s;
  s.cycles.push_back(complement_traffic(n));
  const auto stats = analyze_schedule(t, caps, s);
  EXPECT_EQ(stats.cycles, 1u);
  EXPECT_EQ(stats.messages, n);
  // Complement saturates every channel of the full fat-tree exactly.
  EXPECT_NEAR(stats.mean_utilization, 1.0, 1e-9);
  EXPECT_NEAR(stats.root_utilization, 1.0, 1e-9);
}

TEST(ScheduleStats, LocalTrafficLeavesRootIdle) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::doubling(t);
  MessageSet m;
  for (Leaf p = 0; p < n; p += 2) m.push_back({p, p + 1});
  Schedule s;
  s.cycles.push_back(m);
  const auto stats = analyze_schedule(t, caps, s);
  EXPECT_EQ(stats.root_utilization, 0.0);
  EXPECT_GT(stats.mean_utilization, 0.0);
  EXPECT_LT(stats.mean_utilization, 0.5);
}

TEST(ScheduleStats, ThroughputIsMessagesPerCycle) {
  const std::uint32_t n = 32;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 8);
  Schedule s;
  s.cycles.push_back({{0, 31}, {1, 30}});
  s.cycles.push_back({{2, 29}});
  const auto stats = analyze_schedule(t, caps, s);
  EXPECT_DOUBLE_EQ(stats.throughput, 1.5);
  EXPECT_GE(stats.max_cycle_utilization, stats.min_cycle_utilization);
}

TEST(ScheduleStats, PerLevelUtilizationShape) {
  const std::uint32_t n = 128;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 32);
  Rng rng(1);
  const auto m = random_permutation_traffic(n, rng);
  const auto schedule = schedule_offline(t, caps, m);
  const auto util = per_level_utilization(t, caps, schedule);
  ASSERT_EQ(util.size(), t.height() + 1);
  for (double u : util) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
  // Leaf channels carry every message at least once in some cycle.
  EXPECT_GT(util[t.height()], 0.0);
}

TEST(ScheduleStats, SmallerTreesRunHotter) {
  // The Section VII claim: size the tree down and the hardware you kept
  // works harder on the same traffic.
  const std::uint32_t n = 256;
  FatTreeTopology t(n);
  Rng rng(3);
  const auto m = stacked_permutations(n, 4, rng);
  const auto fat = CapacityProfile::universal(t, 256);
  const auto thin = CapacityProfile::universal(t, 16);
  const auto s_fat = schedule_offline(t, fat, m);
  const auto s_thin = schedule_offline(t, thin, m);
  const auto stats_fat = analyze_schedule(t, fat, s_fat);
  const auto stats_thin = analyze_schedule(t, thin, s_thin);
  EXPECT_GT(stats_thin.root_utilization, stats_fat.root_utilization);
}

}  // namespace
}  // namespace ft
