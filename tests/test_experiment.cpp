#include "sim/experiment.hpp"

#include <gtest/gtest.h>

namespace ft {
namespace {

TEST(Experiment, Pow2Range) {
  const auto r = pow2_range(3, 6);
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r[0], 8u);
  EXPECT_EQ(r[3], 64u);
  EXPECT_TRUE(pow2_range(5, 5).size() == 1 && pow2_range(5, 5)[0] == 32u);
}

TEST(Experiment, RatioStr) {
  EXPECT_EQ(ratio_str(6.0, 3.0), "2.00x");
  EXPECT_EQ(ratio_str(1.0, 0.0), "n/a");
  EXPECT_EQ(ratio_str(1.0, 4.0), "0.25x");
}

}  // namespace
}  // namespace ft
