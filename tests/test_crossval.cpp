// Cross-validation sweep: random (n, w, workload) cells pushed through the
// whole stack — schedule, verify, transmit loss-free, analyze — plus
// golden regression pins for fixed seeds (catching silent behaviour
// changes during refactors; update deliberately if an algorithm changes).
#include <gtest/gtest.h>

#include "core/load.hpp"
#include "core/offline_scheduler.hpp"
#include "core/reuse_scheduler.hpp"
#include "core/schedule_stats.hpp"
#include "core/traffic.hpp"
#include "switch/bitserial.hpp"
#include "util/prng.hpp"

namespace ft {
namespace {

struct Cell {
  std::uint32_t n;
  std::uint64_t w;
  std::uint32_t workload_index;  // into standard_workloads
  std::uint64_t seed;
};

class CrossValidation : public ::testing::TestWithParam<Cell> {};

TEST_P(CrossValidation, WholeStackAgrees) {
  const auto cell = GetParam();
  FatTreeTopology topo(cell.n);
  const auto caps = CapacityProfile::universal(topo, cell.w);
  Rng rng(cell.seed);
  const auto workloads = standard_workloads(cell.n, rng);
  ASSERT_LT(cell.workload_index, workloads.size());
  const auto& m = workloads[cell.workload_index].messages;

  // Scheduler: valid, bounded, lower-bounded.
  const double lambda = load_factor(topo, caps, m);
  const auto schedule = schedule_offline(topo, caps, m);
  ASSERT_TRUE(verify_schedule(topo, caps, m, schedule));
  EXPECT_GE(static_cast<double>(schedule.num_cycles()), lambda - 1e-9);
  EXPECT_LE(static_cast<double>(schedule.num_cycles()),
            4.0 * std::max(1.0, lambda) * topo.height() + 1.0);

  // Hardware: every scheduled cycle transmits loss-free.
  BitSerialSimulator sim(topo, caps);
  std::size_t delivered = 0;
  for (const auto& cycle : schedule.cycles) {
    const auto r = sim.run_cycle(cycle);
    ASSERT_EQ(r.lost, 0u);
    delivered += r.num_delivered;
  }
  EXPECT_EQ(delivered, m.size());

  // Analytics: utilization well-formed.
  const auto stats = analyze_schedule(topo, caps, schedule);
  EXPECT_EQ(stats.messages, m.size());
  EXPECT_GE(stats.mean_utilization, 0.0);
  EXPECT_LE(stats.max_cycle_utilization, 1.0 + 1e-9);

  // Corollary 2 path agrees on validity.
  const auto reuse = schedule_reuse(topo, caps, m);
  EXPECT_TRUE(verify_schedule(topo, caps, m, reuse.schedule));
}

std::vector<Cell> make_cells() {
  std::vector<Cell> cells;
  Rng rng(0xce11);
  const std::uint32_t sizes[] = {32, 64, 128, 256, 512};
  for (std::uint32_t workload = 0; workload < 9; ++workload) {
    for (int rep = 0; rep < 3; ++rep) {
      const std::uint32_t n = sizes[rng.below(5)];
      const std::uint64_t w = std::max<std::uint64_t>(1, n >> rng.below(5));
      cells.push_back(Cell{n, w, workload, rng.next()});
    }
  }
  return cells;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrossValidation,
                         ::testing::ValuesIn(make_cells()));

// ---- Golden pins: fixed-seed behaviour snapshots. ----

TEST(Golden, LoadFactorPins) {
  FatTreeTopology t(256);
  const auto caps = CapacityProfile::universal(t, 64);
  EXPECT_DOUBLE_EQ(load_factor(t, caps, complement_traffic(256)),
                   128.0 / 41.0);  // root-level cut: 128 msgs / cap 41
  EXPECT_DOUBLE_EQ(load_factor(t, caps, bit_reversal_traffic(256)),
                   48.0 / 26.0);  // level-2 channels: 48 msgs / cap 26
}

TEST(Golden, CapacityProfilePins) {
  FatTreeTopology t(1024);
  const auto caps = CapacityProfile::universal(t, 128);
  const std::uint64_t expect[] = {128, 81, 51, 32, 21, 13, 8, 6, 4, 2, 1};
  for (std::uint32_t k = 0; k <= 10; ++k) {
    EXPECT_EQ(caps.capacity_at_level(k), expect[k]) << k;
  }
}

TEST(Golden, SchedulePins) {
  FatTreeTopology t(128);
  const auto caps = CapacityProfile::universal(t, 32);
  Rng rng(2026);
  const auto m = stacked_permutations(128, 4, rng);
  const auto s = schedule_offline(t, caps, m);
  ASSERT_TRUE(verify_schedule(t, caps, m, s));
  EXPECT_EQ(s.num_cycles(), 22u);  // pinned: update only deliberately
}

TEST(Golden, RngDeterminismAcrossConstruction) {
  // Two independently constructed generators with one seed agree on a
  // long prefix — the cheapest possible cross-build regression pin.
  Rng a(0xdecade), b(0xdecade);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

}  // namespace
}  // namespace ft
