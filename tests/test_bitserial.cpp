#include "switch/bitserial.hpp"

#include <gtest/gtest.h>

#include "core/load.hpp"
#include "core/offline_scheduler.hpp"
#include "core/traffic.hpp"
#include "util/prng.hpp"

namespace ft {
namespace {

TEST(BitSerial, AddressBits) {
  FatTreeTopology t(16);
  const auto caps = CapacityProfile::doubling(t);
  BitSerialSimulator sim(t, caps);
  EXPECT_EQ(sim.address_bits(3, 3), 0u);
  EXPECT_EQ(sim.address_bits(0, 1), 2u);    // LCA one level up
  EXPECT_EQ(sim.address_bits(0, 15), 8u);   // through the root: 2·lg n
  EXPECT_LE(sim.address_bits(5, 9), 2u * t.height());
}

TEST(BitSerial, SelfMessageDeliveredLocally) {
  FatTreeTopology t(8);
  const auto caps = CapacityProfile::constant(t, 1);
  BitSerialSimulator sim(t, caps);
  const auto r = sim.run_cycle({{4, 4}});
  EXPECT_EQ(r.num_delivered, 1u);
  EXPECT_EQ(r.lost, 0u);
}

TEST(BitSerial, OneCycleSetFullyDeliveredWithIdealSwitches) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::doubling(t);
  BitSerialSimulator sim(t, caps);
  const auto m = complement_traffic(n);
  ASSERT_TRUE(is_one_cycle(t, caps, m));
  const auto r = sim.run_cycle(m);
  EXPECT_EQ(r.num_delivered, m.size());
  EXPECT_EQ(r.lost, 0u);
}

TEST(BitSerial, EveryScheduledCycleIsLossFree) {
  // The Section III contract: with ideal concentrators a one-cycle set
  // loses nothing — so every cycle emitted by the scheduler goes through.
  const std::uint32_t n = 128;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 32);
  BitSerialSimulator sim(t, caps);
  Rng rng(1);
  const auto m = stacked_permutations(n, 3, rng);
  const auto schedule = schedule_offline(t, caps, m);
  for (const auto& cycle : schedule.cycles) {
    const auto r = sim.run_cycle(cycle);
    EXPECT_EQ(r.lost, 0u);
    EXPECT_EQ(r.num_delivered, cycle.size());
  }
}

TEST(BitSerial, CongestionLosesSurplusOnly) {
  FatTreeTopology t(8);
  const auto caps = CapacityProfile::constant(t, 1);
  BitSerialSimulator sim(t, caps);
  // Three messages into the same destination subtree, capacity 1.
  const MessageSet m{{0, 7}, {1, 7}, {2, 7}};
  const auto r = sim.run_cycle(m);
  EXPECT_EQ(r.num_delivered, 1u);
  EXPECT_EQ(r.lost, 2u);
}

TEST(BitSerial, MakespanIsLogPlusMessageLength) {
  const std::uint32_t n = 1024;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::doubling(t);
  BitSerialOptions opts;
  opts.payload_bits = 32;
  BitSerialSimulator sim(t, caps, opts);
  const auto r = sim.run_cycle(complement_traffic(n));
  // hops = 2·lg n − 1, M bit = 1, address = 2·lg n, payload = 32.
  const std::uint32_t expected = (2 * 10 - 1) + 1 + (2 * 10) + 32;
  EXPECT_EQ(r.makespan_bits, expected);
}

TEST(BitSerial, LocalTrafficHasShorterMakespan) {
  const std::uint32_t n = 256;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::doubling(t);
  BitSerialSimulator sim(t, caps);
  // Neighbour exchange within pairs: LCA one level up.
  MessageSet m;
  for (Leaf p = 0; p < n; p += 2) m.push_back({p, p + 1});
  const auto local = sim.run_cycle(m);
  const auto global = sim.run_cycle(complement_traffic(n));
  EXPECT_LT(local.makespan_bits, global.makespan_bits);
}

TEST(BitSerial, RunUntilDeliveredCompletes) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 16);
  BitSerialSimulator sim(t, caps);
  Rng rng(3);
  const auto m = stacked_permutations(n, 4, rng);
  const auto r = sim.run_until_delivered(m);
  EXPECT_GE(r.delivery_cycles, 1u);
  const double lambda = load_factor(t, caps, m);
  EXPECT_GE(static_cast<double>(r.delivery_cycles), lambda - 1.0);
}

TEST(BitSerial, PartialConcentratorsStillDeliverEverything) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 16);
  BitSerialOptions opts;
  opts.concentrators = ConcentratorKind::Partial;
  BitSerialSimulator sim(t, caps, opts);
  Rng rng(5);
  const auto m = stacked_permutations(n, 2, rng);
  const auto r = sim.run_until_delivered(m);
  EXPECT_GE(r.delivery_cycles, 1u);
}

TEST(BitSerial, PartialLossesComparableToIdeal) {
  const std::uint32_t n = 128;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 32);
  Rng rng(7);
  const auto m = stacked_permutations(n, 6, rng);

  BitSerialSimulator ideal(t, caps);
  BitSerialOptions opts;
  opts.concentrators = ConcentratorKind::Partial;
  BitSerialSimulator partial(t, caps, opts);

  const auto ri = ideal.run_until_delivered(m);
  const auto rp = partial.run_until_delivered(m);
  // Partial concentrators route by maximum matching, so under heavy
  // contention their loss behaviour tracks the ideal switch closely (the
  // paper's "makes little difference" remark); they never do much better.
  EXPECT_GE(2 * rp.total_losses, ri.total_losses);
  EXPECT_LE(rp.total_losses, 3 * ri.total_losses + 100);
}

class BitSerialSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BitSerialSweep, ScheduledDeliveryMatchesTheoremTiming) {
  const std::uint32_t n = GetParam();
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, n / 4);
  BitSerialSimulator sim(t, caps);
  Rng rng(n);
  const auto m = random_permutation_traffic(n, rng);
  const auto schedule = schedule_offline(t, caps, m);
  std::uint64_t total_bits = 0;
  for (const auto& cycle : schedule.cycles) {
    const auto r = sim.run_cycle(cycle);
    ASSERT_EQ(r.lost, 0u);
    total_bits += r.makespan_bits;
  }
  // Per-cycle cost is O(lg n + payload).
  const std::uint64_t per_cycle_bound = 4 * t.height() + 32 + 2;
  EXPECT_LE(total_bits, schedule.num_cycles() * per_cycle_bound);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitSerialSweep,
                         ::testing::Values(16u, 64u, 256u, 1024u));

}  // namespace
}  // namespace ft
