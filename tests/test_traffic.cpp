#include "core/traffic.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>

namespace ft {
namespace {

bool is_permutation_traffic(const MessageSet& m, std::uint32_t n) {
  if (m.size() != n) return false;
  std::set<Leaf> srcs, dsts;
  for (const auto& msg : m) {
    srcs.insert(msg.src);
    dsts.insert(msg.dst);
  }
  return srcs.size() == n && dsts.size() == n;
}

TEST(Traffic, RandomPermutationIsPermutation) {
  Rng rng(1);
  for (std::uint32_t n : {4u, 64u, 1024u}) {
    EXPECT_TRUE(is_permutation_traffic(random_permutation_traffic(n, rng), n));
  }
}

TEST(Traffic, BitReversalKnownValues) {
  const auto m = bit_reversal_traffic(8);
  ASSERT_EQ(m.size(), 8u);
  EXPECT_EQ(m[1].dst, 4u);  // 001 -> 100
  EXPECT_EQ(m[3].dst, 6u);  // 011 -> 110
  EXPECT_EQ(m[7].dst, 7u);
  EXPECT_TRUE(is_permutation_traffic(m, 8));
}

TEST(Traffic, TransposeIsPermutationAndInvolutionWhenSquare) {
  const std::uint32_t n = 256;  // lg n = 8, even
  const auto m = transpose_traffic(n);
  EXPECT_TRUE(is_permutation_traffic(m, n));
  for (const auto& msg : m) {
    EXPECT_EQ(m[msg.dst].dst, msg.src);  // transpose twice = identity
  }
}

TEST(Traffic, ShuffleIsRotation) {
  const auto m = shuffle_traffic(8);
  EXPECT_EQ(m[0].dst, 0u);
  EXPECT_EQ(m[1].dst, 2u);
  EXPECT_EQ(m[4].dst, 1u);  // 100 -> 001
  EXPECT_TRUE(is_permutation_traffic(m, 8));
}

TEST(Traffic, ComplementCrossesRoot) {
  const auto m = complement_traffic(16);
  for (const auto& msg : m) {
    EXPECT_EQ(msg.dst, 15u - msg.src);
    // Opposite halves.
    EXPECT_NE(msg.src < 8, msg.dst < 8);
  }
}

TEST(Traffic, UniformRandomCount) {
  Rng rng(3);
  const auto m = uniform_random_traffic(64, 1000, rng);
  EXPECT_EQ(m.size(), 1000u);
  for (const auto& msg : m) {
    EXPECT_LT(msg.src, 64u);
    EXPECT_LT(msg.dst, 64u);
  }
}

TEST(Traffic, HotspotFraction) {
  Rng rng(5);
  const std::uint32_t n = 4096;
  const auto m = hotspot_traffic(n, 0.25, 7, rng);
  ASSERT_EQ(m.size(), n);
  std::size_t hot = 0;
  for (const auto& msg : m) {
    if (msg.dst == 7) ++hot;
  }
  // 25% targeted plus ~1/n incidental.
  EXPECT_NEAR(static_cast<double>(hot) / n, 0.25, 0.03);
}

TEST(Traffic, LocalRadiusRespected) {
  Rng rng(7);
  const std::uint32_t n = 256;
  const std::uint32_t r = 4;
  const auto m = local_traffic(n, r, rng);
  for (const auto& msg : m) {
    const std::int64_t diff =
        std::abs(static_cast<std::int64_t>(msg.dst) -
                 static_cast<std::int64_t>(msg.src));
    const std::int64_t circ = std::min<std::int64_t>(diff, n - diff);
    EXPECT_LE(circ, r);
  }
}

TEST(Traffic, FemHaloCountsAndNeighbours) {
  const std::uint32_t rows = 4, cols = 8;
  const auto m = fem_halo_traffic(rows, cols);
  // 4rc - 2r - 2c directed neighbour messages.
  EXPECT_EQ(m.size(), 4u * rows * cols - 2 * rows - 2 * cols);
  for (const auto& msg : m) {
    const auto r1 = msg.src / cols, c1 = msg.src % cols;
    const auto r2 = msg.dst / cols, c2 = msg.dst % cols;
    EXPECT_EQ(std::abs(static_cast<int>(r1) - static_cast<int>(r2)) +
                  std::abs(static_cast<int>(c1) - static_cast<int>(c2)),
              1);
  }
}

TEST(Traffic, StackedPermutations) {
  Rng rng(9);
  const auto m = stacked_permutations(32, 5, rng);
  EXPECT_EQ(m.size(), 5u * 32);
  // Every processor sends exactly 5 messages.
  std::vector<int> sends(32, 0);
  for (const auto& msg : m) ++sends[msg.src];
  for (int s : sends) EXPECT_EQ(s, 5);
}

TEST(Traffic, TornadoIsHalfRotation) {
  const auto m = tornado_traffic(16);
  ASSERT_EQ(m.size(), 16u);
  for (const auto& msg : m) {
    EXPECT_EQ(msg.dst, (msg.src + 7) % 16);
  }
}

TEST(Traffic, RingShiftWraps) {
  const auto m = ring_shift_traffic(8, 3);
  EXPECT_EQ(m[0].dst, 3u);
  EXPECT_EQ(m[6].dst, 1u);
  EXPECT_EQ(m[7].dst, 2u);
}

TEST(Traffic, AllToAllCountsAndCoverage) {
  const std::uint32_t n = 8;
  const auto m = all_to_all_traffic(n);
  EXPECT_EQ(m.size(), static_cast<std::size_t>(n) * (n - 1));
  std::set<std::pair<Leaf, Leaf>> pairs;
  for (const auto& msg : m) {
    EXPECT_NE(msg.src, msg.dst);
    EXPECT_TRUE(pairs.insert({msg.src, msg.dst}).second);
  }
}

TEST(Traffic, BisectionFloodTargetsRightHalf) {
  Rng rng(13);
  const std::uint32_t n = 64;
  const auto m = bisection_flood_traffic(n, 3, rng);
  EXPECT_EQ(m.size(), static_cast<std::size_t>(n / 2) * 3);
  for (const auto& msg : m) {
    EXPECT_LT(msg.src, n / 2);
    EXPECT_GE(msg.dst, n / 2);
    EXPECT_LT(msg.dst, n);
  }
}

// ---- The adversarial zoo (routing-race workloads, see E18) ----------

// Drains a stream into a MessageSet.
MessageSet drain(MessageStream& s) {
  MessageSet out;
  Message msg;
  while (s.next(msg)) out.push_back(msg);
  return out;
}

TEST(Traffic, IncastTargetsOneSinkFromOthers) {
  const std::uint32_t n = 64;
  const Leaf sink = 17;
  Rng rng(41);
  const auto m = incast_traffic(n, 300, sink, rng);
  EXPECT_EQ(m.size(), 300u);
  for (const auto& msg : m) {
    EXPECT_EQ(msg.dst, sink);
    EXPECT_NE(msg.src, sink);
    EXPECT_LT(msg.src, n);
  }
  // Deterministic under a fixed seed.
  Rng rng2(41);
  EXPECT_EQ(incast_traffic(n, 300, sink, rng2), m);
}

TEST(Traffic, ElephantMiceCountsAndFlows) {
  const std::uint32_t n = 64;
  const std::uint32_t elephants = 5, size = 20;
  const std::size_t mice = 123;
  Rng rng(43);
  const auto m = elephant_mice_traffic(n, elephants, size, mice, rng);
  ASSERT_EQ(m.size(), std::size_t{elephants} * size + mice);
  // The first elephants*size messages form `elephants` constant flows of
  // `size` repeats each, never self-addressed.
  for (std::uint32_t f = 0; f < elephants; ++f) {
    const Message head = m[std::size_t{f} * size];
    EXPECT_NE(head.src, head.dst);
    for (std::uint32_t i = 0; i < size; ++i) {
      EXPECT_EQ(m[std::size_t{f} * size + i], head);
    }
  }
  for (std::size_t i = std::size_t{elephants} * size; i < m.size(); ++i) {
    EXPECT_LT(m[i].src, n);
    EXPECT_LT(m[i].dst, n);
  }
}

TEST(Traffic, AdversarialResidueSharesOneResidueClass) {
  const std::uint32_t n = 64, modulus = 8;
  Rng rng(47);
  const auto m = adversarial_residue_traffic(n, modulus, rng);
  ASSERT_EQ(m.size(), n);
  const Leaf residue = m[0].dst % modulus;
  for (std::uint32_t p = 0; p < n; ++p) {
    EXPECT_EQ(m[p].src, p);  // one message per source, in order
    EXPECT_EQ(m[p].dst % modulus, residue);
    EXPECT_LT(m[p].dst, n);
  }
  // modulus == 1 degenerates to uniform destinations, still in range.
  Rng rng2(48);
  const auto all = adversarial_residue_traffic(n, 1, rng2);
  for (const auto& msg : all) EXPECT_LT(msg.dst, n);
}

TEST(Traffic, PersistentHotspotPhasesAndRanges) {
  const std::uint32_t n = 64;
  const Leaf hot = 21;
  Rng rng(53);
  const auto m = persistent_hotspot_traffic(n, hot, 40, 200, rng);
  ASSERT_EQ(m.size(), 240u);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(m[i].dst, hot);
    EXPECT_NE(m[i].src, hot);
  }
  for (std::size_t i = 40; i < m.size(); ++i) {
    EXPECT_LT(m[i].src, n);
    EXPECT_LT(m[i].dst, n);
  }
}

TEST(Traffic, StreamedTwinsMatchMaterializedGenerators) {
  // Same seed, same draw sequence: the O(1)-state streams must reproduce
  // their materialized twins message for message (the scale-out contract;
  // route_online_stream on a stream is then bit-identical to route_online
  // on the set).
  const std::uint32_t n = 64;
  {
    Rng a(61), b(61);
    const auto m = incast_traffic(n, 200, 9, a);
    IncastStream s(n, 200, 9, b);
    EXPECT_EQ(drain(s), m);
  }
  {
    Rng a(62), b(62);
    const auto m = elephant_mice_traffic(n, 4, 16, 100, a);
    ElephantMiceStream s(n, 4, 16, 100, b);
    EXPECT_EQ(drain(s), m);
  }
  {
    Rng a(63), b(63);
    const auto m = adversarial_residue_traffic(n, 8, a);
    AdversarialResidueStream s(n, 8, b);
    EXPECT_EQ(drain(s), m);
  }
  {
    Rng a(64), b(64);
    const auto m = persistent_hotspot_traffic(n, 5, 30, 150, a);
    PersistentHotspotStream s(n, 5, 30, 150, b);
    EXPECT_EQ(drain(s), m);
  }
}

TEST(Traffic, StandardWorkloadsCover) {
  Rng rng(11);
  const auto workloads = standard_workloads(64, rng);
  EXPECT_GE(workloads.size(), 8u);
  std::set<std::string> names;
  for (const auto& w : workloads) {
    EXPECT_FALSE(w.messages.empty()) << w.name;
    names.insert(w.name);
    for (const auto& msg : w.messages) {
      EXPECT_LT(msg.src, 64u);
      EXPECT_LT(msg.dst, 64u);
    }
  }
  EXPECT_EQ(names.size(), workloads.size());  // distinct names
}

}  // namespace
}  // namespace ft
