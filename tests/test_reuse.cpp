#include "core/reuse_scheduler.hpp"

#include <gtest/gtest.h>

#include "core/load.hpp"
#include "core/traffic.hpp"
#include "util/prng.hpp"

namespace ft {
namespace {

TEST(ReuseScheduler, EmptySet) {
  FatTreeTopology t(16);
  const auto caps = CapacityProfile::constant(t, 16);
  const auto r = schedule_reuse(t, caps, {});
  EXPECT_EQ(r.schedule.num_cycles(), 0u);
  EXPECT_EQ(r.repaired_messages, 0u);
}

TEST(ReuseScheduler, ValidOnFatChannels) {
  // Corollary 2 premise: every channel has capacity >= a·lg n. With
  // a > 2 and the default slack 2·lg n, the repair pass must be idle.
  const std::uint32_t n = 256;  // lg n = 8
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::constant(t, 32);  // a = 4
  Rng rng(1);
  const auto m = stacked_permutations(n, 8, rng);
  const auto r = schedule_reuse(t, caps, m);
  EXPECT_TRUE(verify_schedule(t, caps, m, r.schedule));
  EXPECT_EQ(r.repaired_messages, 0u);
}

TEST(ReuseScheduler, RemovesLogFactor) {
  // With fat channels, the cycle count is O(λ), independent of lg n — the
  // point of Corollary 2. Theorem 1 alone would allow a lg n factor.
  const std::uint32_t n = 1024;  // lg n = 10
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::constant(t, 64);
  Rng rng(3);
  const auto m = stacked_permutations(n, 16, rng);
  const double lambda = load_factor(t, caps, m);
  const auto r = schedule_reuse(t, caps, m);
  EXPECT_TRUE(verify_schedule(t, caps, m, r.schedule));
  // Power-of-two rounding of 2λ' with λ' = (a/(a-2))·λ-ish: allow 8λ.
  EXPECT_LE(static_cast<double>(r.schedule.num_cycles()),
            8.0 * std::max(1.0, lambda) + 1.0);
}

TEST(ReuseScheduler, FictitiousLoadFactorAtLeastTrue) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::constant(t, 24);
  Rng rng(5);
  const auto m = stacked_permutations(n, 4, rng);
  const auto r = schedule_reuse(t, caps, m);
  EXPECT_GE(r.fictitious_load_factor, load_factor(t, caps, m));
}

TEST(ReuseScheduler, RepairsWhenPremiseViolated) {
  // Universal tree with unit leaf channels: the premise fails, but the
  // repair pass must still deliver a valid schedule.
  const std::uint32_t n = 128;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 32);
  Rng rng(7);
  const auto m = stacked_permutations(n, 3, rng);
  const auto r = schedule_reuse(t, caps, m);
  EXPECT_TRUE(verify_schedule(t, caps, m, r.schedule));
}

TEST(ReuseScheduler, SelfMessagesHandled) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::constant(t, 16);
  MessageSet m{{1, 1}, {2, 2}, {0, 63}};
  const auto r = schedule_reuse(t, caps, m);
  EXPECT_TRUE(verify_schedule(t, caps, m, r.schedule));
}

TEST(ReuseScheduler, TargetCyclesIsPowerOfTwoAboveTwoLambda) {
  const std::uint32_t n = 256;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::constant(t, 40);
  Rng rng(9);
  const auto m = stacked_permutations(n, 10, rng);
  const auto r = schedule_reuse(t, caps, m);
  EXPECT_GE(static_cast<double>(r.target_cycles),
            2.0 * r.fictitious_load_factor - 1e-9);
  EXPECT_EQ(r.target_cycles & (r.target_cycles - 1), 0u);
}

struct ReuseCase {
  std::uint32_t n;
  std::uint64_t cap;
  std::uint32_t stack;
};

class ReuseSweep : public ::testing::TestWithParam<ReuseCase> {};

TEST_P(ReuseSweep, NoRepairsUnderPremise) {
  const auto p = GetParam();
  FatTreeTopology t(p.n);
  const auto caps = CapacityProfile::constant(t, p.cap);
  Rng rng(p.n + p.stack);
  const auto m = stacked_permutations(p.n, p.stack, rng);
  const auto r = schedule_reuse(t, caps, m);
  EXPECT_TRUE(verify_schedule(t, caps, m, r.schedule));
  EXPECT_EQ(r.repaired_messages, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ReuseSweep,
    ::testing::Values(ReuseCase{64, 18, 2},   // a = 3
                      ReuseCase{64, 24, 6},   // a = 4
                      ReuseCase{256, 32, 4},  // a = 4
                      ReuseCase{256, 64, 12},
                      ReuseCase{1024, 40, 5},  // a = 4
                      ReuseCase{1024, 80, 20}));

}  // namespace
}  // namespace ft
