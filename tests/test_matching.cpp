#include "switch/matching.hpp"

#include <gtest/gtest.h>

#include "util/prng.hpp"

namespace ft {
namespace {

TEST(Matching, EmptyGraph) {
  BipartiteGraph g(3, 3);
  const auto m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 0u);
  for (auto v : m.match_left) EXPECT_EQ(v, -1);
}

TEST(Matching, PerfectOnIdentity) {
  BipartiteGraph g(4, 4);
  for (std::size_t i = 0; i < 4; ++i) g.add_edge(i, i);
  const auto m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(m.match_left[i], static_cast<std::int32_t>(i));
  }
}

TEST(Matching, AugmentingPathNeeded) {
  // l0-{r0}, l1-{r0,r1}: greedy l0->r0 must be augmented for l1.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(1, 0);
  g.add_edge(1, 1);
  const auto m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 2u);
}

TEST(Matching, HallViolationLimitsSize) {
  // Three left vertices all adjacent only to one right vertex.
  BipartiteGraph g(3, 3);
  for (std::size_t i = 0; i < 3; ++i) g.add_edge(i, 1);
  const auto m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 1u);
}

TEST(Matching, CompleteBipartite) {
  BipartiteGraph g(6, 4);
  for (std::size_t l = 0; l < 6; ++l) {
    for (std::size_t r = 0; r < 4; ++r) g.add_edge(l, r);
  }
  const auto m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 4u);  // limited by the right side
}

TEST(Matching, MatchingIsConsistent) {
  Rng rng(1);
  BipartiteGraph g(50, 40);
  for (std::size_t l = 0; l < 50; ++l) {
    for (int e = 0; e < 4; ++e) {
      g.add_edge(l, rng.below(40));
    }
  }
  const auto m = hopcroft_karp(g);
  // match_left and match_right are mutually inverse and edges exist.
  std::size_t count = 0;
  for (std::size_t l = 0; l < 50; ++l) {
    if (m.match_left[l] < 0) continue;
    ++count;
    const auto r = static_cast<std::size_t>(m.match_left[l]);
    EXPECT_EQ(m.match_right[r], static_cast<std::int32_t>(l));
    bool has_edge = false;
    for (auto v : g.neighbors(l)) {
      if (v == r) has_edge = true;
    }
    EXPECT_TRUE(has_edge);
  }
  EXPECT_EQ(count, m.size);
}

TEST(Matching, SubsetRestrictsLeftSide) {
  BipartiteGraph g(4, 2);
  for (std::size_t l = 0; l < 4; ++l) {
    g.add_edge(l, 0);
    g.add_edge(l, 1);
  }
  const auto m = hopcroft_karp_subset(g, {2});
  EXPECT_EQ(m.size, 1u);
  EXPECT_EQ(m.match_left[0], -1);
  EXPECT_EQ(m.match_left[1], -1);
  EXPECT_GE(m.match_left[2], 0);
  EXPECT_EQ(m.match_left[3], -1);
}

TEST(Matching, SubsetMaximum) {
  BipartiteGraph g(6, 6);
  for (std::size_t l = 0; l < 6; ++l) g.add_edge(l, (l + 1) % 6);
  const auto m = hopcroft_karp_subset(g, {0, 2, 4});
  EXPECT_EQ(m.size, 3u);  // disjoint right targets 1, 3, 5
}

TEST(Matching, MaximumAgainstBruteForceOnRandomGraphs) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t nl = 1 + rng.below(6);
    const std::size_t nr = 1 + rng.below(6);
    BipartiteGraph g(nl, nr);
    std::vector<std::vector<std::uint8_t>> adj(nl,
                                               std::vector<std::uint8_t>(nr));
    for (std::size_t l = 0; l < nl; ++l) {
      for (std::size_t r = 0; r < nr; ++r) {
        if (rng.chance(0.4)) {
          g.add_edge(l, r);
          adj[l][r] = 1;
        }
      }
    }
    // Brute force maximum matching over subsets of right assignments.
    std::size_t best = 0;
    std::vector<std::int32_t> right_used(nr, -1);
    auto dfs = [&](auto&& self, std::size_t l, std::size_t matched) -> void {
      best = std::max(best, matched);
      if (l == nl) return;
      self(self, l + 1, matched);
      for (std::size_t r = 0; r < nr; ++r) {
        if (adj[l][r] && right_used[r] < 0) {
          right_used[r] = static_cast<std::int32_t>(l);
          self(self, l + 1, matched + 1);
          right_used[r] = -1;
        }
      }
    };
    dfs(dfs, 0, 0);
    EXPECT_EQ(hopcroft_karp(g).size, best) << "trial " << trial;
  }
}

}  // namespace
}  // namespace ft
