#include "core/offline_scheduler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/load.hpp"
#include "core/traffic.hpp"
#include "util/bits.hpp"
#include "util/prng.hpp"

namespace ft {
namespace {

TEST(OfflineScheduler, EmptyMessageSet) {
  FatTreeTopology t(8);
  const auto caps = CapacityProfile::universal(t, 4);
  const auto s = schedule_offline(t, caps, {});
  EXPECT_EQ(s.num_cycles(), 0u);
  EXPECT_TRUE(verify_schedule(t, caps, {}, s));
}

TEST(OfflineScheduler, SingleMessage) {
  FatTreeTopology t(8);
  const auto caps = CapacityProfile::constant(t, 1);
  const MessageSet m{{0, 7}};
  const auto s = schedule_offline(t, caps, m);
  EXPECT_EQ(s.num_cycles(), 1u);
  EXPECT_TRUE(verify_schedule(t, caps, m, s));
}

TEST(OfflineScheduler, SelfMessagesOnly) {
  FatTreeTopology t(8);
  const auto caps = CapacityProfile::constant(t, 1);
  const MessageSet m{{2, 2}, {5, 5}, {5, 5}};
  const auto s = schedule_offline(t, caps, m);
  EXPECT_EQ(s.num_cycles(), 1u);
  EXPECT_TRUE(verify_schedule(t, caps, m, s));
}

TEST(OfflineScheduler, OneCycleSetTakesFewCycles) {
  // A one-cycle message set on a full fat-tree needs at most one cycle per
  // level touched; the complement permutation (λ = 1) must finish in at
  // most lg n cycles and in fact in one (all LCAs at the root).
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::doubling(t);
  const auto m = complement_traffic(n);
  ASSERT_TRUE(is_one_cycle(t, caps, m));
  const auto s = schedule_offline(t, caps, m);
  EXPECT_EQ(s.num_cycles(), 1u);
  EXPECT_TRUE(verify_schedule(t, caps, m, s));
}

TEST(OfflineScheduler, DuplicatesPreserved) {
  FatTreeTopology t(16);
  const auto caps = CapacityProfile::constant(t, 1);
  MessageSet m;
  for (int i = 0; i < 5; ++i) m.push_back({0, 15});
  const auto s = schedule_offline(t, caps, m);
  EXPECT_TRUE(verify_schedule(t, caps, m, s));
  EXPECT_EQ(s.num_cycles(), 5u);  // capacity 1 admits one at a time
}

TEST(OfflineScheduler, TheoremOneBound) {
  // d <= c · λ(M) · lg n with a small constant (the proof gives 2λ per
  // level; our power-of-two rounding makes it at most 4λ per level).
  const std::uint32_t n = 256;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 64);
  Rng rng(1);
  for (const auto& wl : standard_workloads(n, rng)) {
    const double lambda = load_factor(t, caps, wl.messages);
    const auto s = schedule_offline(t, caps, wl.messages);
    EXPECT_TRUE(verify_schedule(t, caps, wl.messages, s)) << wl.name;
    const double bound =
        4.0 * std::max(1.0, lambda) * t.height() + 1.0;
    EXPECT_LE(static_cast<double>(s.num_cycles()), bound) << wl.name;
    // And never below the load-factor lower bound.
    EXPECT_GE(static_cast<double>(s.num_cycles()), std::ceil(lambda) - 1e-9)
        << wl.name;
  }
}

TEST(OfflineScheduler, LowerBoundTight) {
  // d >= ceil(λ): schedule length can never beat the load factor.
  const std::uint32_t n = 128;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 16);
  Rng rng(3);
  const auto m = stacked_permutations(n, 4, rng);
  const double lambda = load_factor(t, caps, m);
  const auto s = schedule_offline(t, caps, m);
  EXPECT_TRUE(verify_schedule(t, caps, m, s));
  EXPECT_GE(static_cast<double>(s.num_cycles()), lambda - 1e-9);
}

struct SchedCase {
  std::uint32_t n;
  std::uint64_t w;
  std::uint32_t stack;
  std::uint64_t seed;
};

class SchedulerSweep : public ::testing::TestWithParam<SchedCase> {};

TEST_P(SchedulerSweep, ValidAndBounded) {
  const auto p = GetParam();
  FatTreeTopology t(p.n);
  const auto caps = CapacityProfile::universal(t, p.w);
  Rng rng(p.seed);
  const auto m = stacked_permutations(p.n, p.stack, rng);
  const double lambda = load_factor(t, caps, m);
  const auto s = schedule_offline(t, caps, m);
  EXPECT_TRUE(verify_schedule(t, caps, m, s));
  EXPECT_LE(static_cast<double>(s.num_cycles()),
            4.0 * std::max(1.0, lambda) * t.height() + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SchedulerSweep,
    ::testing::Values(SchedCase{16, 4, 1, 11}, SchedCase{16, 16, 3, 13},
                      SchedCase{64, 8, 2, 17}, SchedCase{256, 32, 1, 19},
                      SchedCase{256, 256, 4, 23}, SchedCase{1024, 64, 2, 29},
                      SchedCase{1024, 1024, 1, 31}));

TEST(OfflineScheduler, SkinnyTreeHotspot) {
  // Capacity-1 tree with all-to-one traffic: needs exactly n-1 cycles.
  const std::uint32_t n = 32;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::constant(t, 1);
  MessageSet m;
  for (Leaf p = 1; p < n; ++p) m.push_back({p, 0});
  const auto s = schedule_offline(t, caps, m);
  EXPECT_TRUE(verify_schedule(t, caps, m, s));
  EXPECT_EQ(s.num_cycles(), static_cast<std::size_t>(n - 1));
}

TEST(GreedyScheduler, ValidSchedules) {
  const std::uint32_t n = 128;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 32);
  Rng rng(41);
  for (const auto& wl : standard_workloads(n, rng)) {
    const auto s = schedule_greedy(t, caps, wl.messages);
    EXPECT_TRUE(verify_schedule(t, caps, wl.messages, s)) << wl.name;
  }
}

TEST(PackedScheduler, ValidAndNoWorseThanLevelByLevel) {
  const std::uint32_t n = 256;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 64);
  Rng rng(43);
  for (const auto& wl : standard_workloads(n, rng)) {
    const auto level_by_level = schedule_offline(t, caps, wl.messages);
    const auto packed = schedule_offline_packed(t, caps, wl.messages);
    EXPECT_TRUE(verify_schedule(t, caps, wl.messages, packed)) << wl.name;
    // First-fit packing is the point of the ablation; allow a little slack
    // but it should never be much worse than level-by-level.
    EXPECT_LE(packed.num_cycles(), level_by_level.num_cycles() + 2)
        << wl.name;
  }
}

TEST(VerifySchedule, RejectsDroppedMessage) {
  FatTreeTopology t(8);
  const auto caps = CapacityProfile::doubling(t);
  const MessageSet m{{0, 7}, {1, 6}};
  Schedule s;
  s.cycles.push_back({{0, 7}});  // message {1,6} missing
  EXPECT_FALSE(verify_schedule(t, caps, m, s));
}

TEST(VerifySchedule, RejectsOverloadedCycle) {
  FatTreeTopology t(8);
  const auto caps = CapacityProfile::constant(t, 1);
  const MessageSet m{{0, 7}, {1, 6}};  // both need the root, capacity 1
  Schedule s;
  s.cycles.push_back(m);
  EXPECT_FALSE(verify_schedule(t, caps, m, s));
}

TEST(VerifySchedule, RejectsInventedMessage) {
  FatTreeTopology t(8);
  const auto caps = CapacityProfile::doubling(t);
  const MessageSet m{{0, 7}};
  Schedule s;
  s.cycles.push_back({{0, 7}});
  s.cycles.push_back({{2, 3}});
  EXPECT_FALSE(verify_schedule(t, caps, m, s));
}

}  // namespace
}  // namespace ft
