#include "switch/node.hpp"

#include <gtest/gtest.h>

namespace ft {
namespace {

TEST(Selector, TruthTable) {
  // Fig. 3: the M bit ANDed with the address bit (or its complement)
  // produces the per-branch M bits.
  EXPECT_EQ(Selector::select(false, false), std::make_pair(false, false));
  EXPECT_EQ(Selector::select(false, true), std::make_pair(false, false));
  EXPECT_EQ(Selector::select(true, false), std::make_pair(true, false));
  EXPECT_EQ(Selector::select(true, true), std::make_pair(false, true));
}

TEST(LevelSwitch, PortWidths) {
  Rng rng(1);
  LevelSwitch sw(8, 5, ConcentratorKind::Ideal, rng);
  EXPECT_EQ(sw.parent_capacity(), 8u);
  EXPECT_EQ(sw.child_capacity(), 5u);
  EXPECT_EQ(sw.up().num_inputs(), 10u);   // 2 * child
  EXPECT_EQ(sw.up().num_outputs(), 8u);   // parent
  EXPECT_EQ(sw.down().num_inputs(), 13u);  // parent + child
  EXPECT_EQ(sw.down().num_outputs(), 5u);  // child
}

TEST(LevelSwitch, InputIndexing) {
  Rng rng(2);
  LevelSwitch sw(4, 3, ConcentratorKind::Ideal, rng);
  EXPECT_EQ(sw.up_input_from_child(false, 0), 0u);
  EXPECT_EQ(sw.up_input_from_child(false, 2), 2u);
  EXPECT_EQ(sw.up_input_from_child(true, 0), 3u);
  EXPECT_EQ(sw.up_input_from_child(true, 2), 5u);
  EXPECT_EQ(sw.down_input_from_parent(3), 3u);
  EXPECT_EQ(sw.down_input_from_sibling(0), 4u);
  EXPECT_EQ(sw.down_input_from_sibling(2), 6u);
}

TEST(LevelSwitch, IndexSpacesAreDisjoint) {
  Rng rng(3);
  LevelSwitch sw(6, 4, ConcentratorKind::Ideal, rng);
  // Up port: left wires [0,4), right wires [4,8) — never overlapping.
  for (std::uint32_t w = 0; w < 4; ++w) {
    EXPECT_LT(sw.up_input_from_child(false, w), 4u);
    EXPECT_GE(sw.up_input_from_child(true, w), 4u);
    EXPECT_LT(sw.up_input_from_child(true, w), sw.up().num_inputs());
  }
  // Down port: parent region [0,6), sibling region [6,10).
  for (std::uint32_t w = 0; w < 6; ++w) {
    EXPECT_LT(sw.down_input_from_parent(w), 6u);
  }
  for (std::uint32_t w = 0; w < 4; ++w) {
    EXPECT_GE(sw.down_input_from_sibling(w), 6u);
    EXPECT_LT(sw.down_input_from_sibling(w), sw.down().num_inputs());
  }
}

TEST(LevelSwitch, PartialKindBuildsCascades) {
  Rng rng(4);
  LevelSwitch sw(8, 16, ConcentratorKind::Partial, rng);
  // Up: 32 -> 8 needs multiple stages; cascade respects widths.
  EXPECT_EQ(sw.up().num_inputs(), 32u);
  EXPECT_EQ(sw.up().num_outputs(), 8u);
  const auto out = sw.up().route({0, 5, 17, 31});
  for (auto w : out) {
    EXPECT_LT(w, 8);
  }
}

TEST(LevelSwitch, ComponentCountScalesWithWires) {
  Rng rng(5);
  LevelSwitch small(2, 2, ConcentratorKind::Ideal, rng);
  LevelSwitch big(64, 64, ConcentratorKind::Ideal, rng);
  EXPECT_GT(big.component_count(), 16 * small.component_count());
}

}  // namespace
}  // namespace ft
