// End-to-end integration tests tying the layers together: workloads ->
// scheduler -> bit-serial hardware; volume -> fat-tree sizing ->
// universality; and the paper's headline qualitative claims.
#include <gtest/gtest.h>

#include <cmath>

#include "core/load.hpp"
#include "core/offline_scheduler.hpp"
#include "core/online_router.hpp"
#include "core/reuse_scheduler.hpp"
#include "core/traffic.hpp"
#include "layout/vlsi_model.hpp"
#include "nets/builders.hpp"
#include "nets/layouts.hpp"
#include "sim/universality.hpp"
#include "switch/bitserial.hpp"
#include "util/prng.hpp"

namespace ft {
namespace {

TEST(Integration, ScheduleThenTransmitEveryWorkload) {
  const std::uint32_t n = 128;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 32);
  BitSerialSimulator sim(t, caps);
  Rng rng(1);
  for (const auto& wl : standard_workloads(n, rng)) {
    const auto schedule = schedule_offline(t, caps, wl.messages);
    ASSERT_TRUE(verify_schedule(t, caps, wl.messages, schedule)) << wl.name;
    std::size_t delivered = 0;
    for (const auto& cycle : schedule.cycles) {
      const auto r = sim.run_cycle(cycle);
      EXPECT_EQ(r.lost, 0u) << wl.name;
      delivered += r.num_delivered;
    }
    EXPECT_EQ(delivered, wl.messages.size()) << wl.name;
  }
}

TEST(Integration, OfflineBeatsOnlineOnCycleCount) {
  // The off-line scheduler knows the future; it should use no more cycles
  // than the lossy on-line router on contended traffic.
  const std::uint32_t n = 256;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 32);
  Rng gen(3);
  const auto m = stacked_permutations(n, 8, gen);
  const auto offline = schedule_offline(t, caps, m);
  Rng rng(5);
  const auto online = route_online(t, caps, m, rng);
  EXPECT_LE(offline.num_cycles(),
            static_cast<std::size_t>(online.delivery_cycles) * 2 + 8);
}

TEST(Integration, FatterTreesNeedFewerCycles) {
  // Scaling communication hardware (root capacity) down gracefully
  // degrades delivery time — the robustness claim of Section VII.
  const std::uint32_t n = 256;
  FatTreeTopology t(n);
  Rng gen(7);
  const auto m = stacked_permutations(n, 4, gen);
  std::size_t prev = SIZE_MAX;
  for (std::uint64_t w : {16ull, 64ull, 256ull}) {
    const auto caps = CapacityProfile::universal(t, w);
    const auto s = schedule_offline(t, caps, m);
    EXPECT_TRUE(verify_schedule(t, caps, m, s));
    EXPECT_LE(s.num_cycles(), prev);
    prev = s.num_cycles();
  }
}

TEST(Integration, FemWorkloadNeedsOnlySmallFatTree) {
  // The introduction's point: planar finite-element traffic has O(sqrt n)
  // bisection, so a fat-tree with root capacity ~sqrt(n) routes it in a
  // handful of cycles — no hypercube-sized hardware needed.
  const std::uint32_t n = 256;
  FatTreeTopology t(n);
  const auto m = fem_halo_traffic(16, 16);
  const auto small = CapacityProfile::universal(t, 16);  // w = sqrt n
  const double lambda = load_factor(t, small, m);
  EXPECT_LE(lambda, 12.0);  // row-major vertical halos cost a constant
  const auto s = schedule_offline(t, small, m);
  EXPECT_TRUE(verify_schedule(t, small, m, s));
  EXPECT_LE(s.num_cycles(), 48u);
  // And the hardware saving is real: volume ratio vs full fat-tree.
  const double small_vol = universal_fat_tree_volume(n, 16);
  const double full_vol = universal_fat_tree_volume(n, n);
  EXPECT_LT(small_vol, 0.25 * full_vol);
}

TEST(Integration, ComplementTrafficPunishesSmallTrees) {
  // The flip side: bisection-heavy traffic on a thin tree pays linearly.
  const std::uint32_t n = 256;
  FatTreeTopology t(n);
  const auto m = complement_traffic(n);
  const auto thin = CapacityProfile::universal(t, 16);
  const auto fat = CapacityProfile::universal(t, 256);
  const auto s_thin = schedule_offline(t, thin, m);
  const auto s_fat = schedule_offline(t, fat, m);
  EXPECT_GT(s_thin.num_cycles(), 4 * s_fat.num_cycles());
}

TEST(Integration, ReuseMatchesOfflineValidity) {
  const std::uint32_t n = 128;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::constant(t, 32);
  Rng gen(11);
  const auto m = stacked_permutations(n, 10, gen);
  const auto a = schedule_offline(t, caps, m);
  const auto b = schedule_reuse(t, caps, m);
  EXPECT_TRUE(verify_schedule(t, caps, m, a));
  EXPECT_TRUE(verify_schedule(t, caps, m, b.schedule));
  // Corollary 2 should stay within a small constant of Theorem 1 on fat
  // channels (power-of-two rounding costs up to 2x, slack another ~2x).
  EXPECT_LE(b.schedule.num_cycles(), 4 * a.num_cycles() + 8);
}

TEST(Integration, UniversalitySlowdownGrowsPolylog) {
  // Measure slowdown at two sizes; the growth must look polylog, not
  // polynomial (ratio far below the size ratio).
  Rng gen(13);
  const auto m6 = random_permutation_traffic(64, gen);
  const auto m8 = random_permutation_traffic(256, gen);
  const auto r6 = simulate_network_on_fattree(build_hypercube(6),
                                              layout_hypercube(64), m6);
  const auto r8 = simulate_network_on_fattree(build_hypercube(8),
                                              layout_hypercube(256), m8);
  ASSERT_GT(r6.slowdown, 0.0);
  const double growth = r8.slowdown / r6.slowdown;
  EXPECT_LT(growth, 4.0);  // (lg 256 / lg 64)^3 ≈ 2.37; 4x allows noise
}

TEST(Integration, EqualVolumeComparisonUsesTheInversion) {
  // The fat-tree simulating a hypercube of volume n^{3/2} gets root
  // capacity ~ v^{2/3}/lg(...) = ~n/lg n — large but below n.
  const std::uint32_t n = 256;
  const auto w = root_capacity_for_volume(n, hypercube_volume(n));
  EXPECT_GT(w, n / 32);
  EXPECT_LE(w, n);
}

TEST(Integration, PartialConcentratorEndToEnd) {
  // Full stack with Section IV hardware: schedule off-line, transmit with
  // partial concentrators, retry losses, and still finish quickly.
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 16);
  BitSerialOptions opts;
  opts.concentrators = ConcentratorKind::Partial;
  BitSerialSimulator sim(t, caps, opts);
  Rng gen(17);
  const auto m = random_permutation_traffic(n, gen);
  const auto r = sim.run_until_delivered(m);
  const double lambda = load_factor(t, caps, m);
  EXPECT_LE(static_cast<double>(r.delivery_cycles),
            16.0 * (lambda + std::log2(n)));
}

}  // namespace
}  // namespace ft
