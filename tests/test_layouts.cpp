#include "nets/layouts.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace ft {
namespace {

void expect_valid_layout(const Layout3D& layout, std::size_t n) {
  ASSERT_EQ(layout.num_processors(), n);
  std::set<std::tuple<double, double, double>> seen;
  for (const auto& p : layout.positions) {
    EXPECT_TRUE(layout.bounds.contains(p));
    EXPECT_TRUE(seen.insert({p.x, p.y, p.z}).second) << "duplicate position";
  }
}

TEST(Layouts, SpreadLayoutDistinctAndInBounds) {
  expect_valid_layout(spread_layout(100, 10, 10, 10), 100);
  expect_valid_layout(spread_layout(1, 1, 1, 1), 1);
  expect_valid_layout(spread_layout(64, 64, 1, 1), 64);
}

TEST(Layouts, SpreadLayoutFullOccupancy) {
  // n == cells: every cell used exactly once.
  const auto layout = spread_layout(8, 2, 2, 2);
  expect_valid_layout(layout, 8);
}

TEST(Layouts, Mesh2dVolumeEqualsN) {
  const auto layout = layout_mesh2d(8, 8);
  EXPECT_DOUBLE_EQ(layout.volume(), 64.0);
  expect_valid_layout(layout, 64);
}

TEST(Layouts, Mesh3dNaturalCube) {
  const auto layout = layout_mesh3d(4, 4, 4);
  EXPECT_DOUBLE_EQ(layout.volume(), 64.0);
  expect_valid_layout(layout, 64);
}

TEST(Layouts, HypercubeVolumeScalesAsN32) {
  for (std::uint32_t n : {64u, 256u, 1024u}) {
    const auto layout = layout_hypercube(n);
    expect_valid_layout(layout, n);
    const double expect = std::pow(static_cast<double>(n), 1.5);
    EXPECT_NEAR(layout.volume() / expect, 1.0, 0.3) << n;
  }
}

TEST(Layouts, TreeOfMeshesVolumeScalesAsNLogN) {
  for (std::uint32_t n : {64u, 256u}) {
    const auto layout = layout_tree_of_meshes(n);
    expect_valid_layout(layout, n);
    const double expect = n * (std::log2(n) + 1);
    EXPECT_NEAR(layout.volume() / expect, 1.0, 0.35) << n;
  }
}

TEST(Layouts, BinaryTreeFlatSlab) {
  const auto layout = layout_binary_tree(64);
  expect_valid_layout(layout, 64);
  EXPECT_DOUBLE_EQ(layout.bounds.side(2), 1.0);
}

TEST(Layouts, ButterflyAndShuffleShareVolumeClass) {
  const auto b = layout_butterfly(256);
  const auto s = layout_shuffle_exchange(256);
  EXPECT_DOUBLE_EQ(b.volume(), s.volume());
}

}  // namespace
}  // namespace ft
