#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ft {
namespace {

TEST(Accumulator, Empty) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 5.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Percentile, Extremes) {
  std::vector<double> xs{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 75), 7.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 37.0), 42.0);
}

TEST(LinearFit, PerfectLine) {
  std::vector<double> x{1, 2, 3, 4}, y{3, 5, 7, 9};  // y = 1 + 2x
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFit, FlatLine) {
  std::vector<double> x{1, 2, 3}, y{4, 4, 4};
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-12);
}

TEST(LinearFit, NoisyLineHasHighR2) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + (i % 2 ? 0.1 : -0.1));
  }
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.01);
  EXPECT_GT(fit.r2, 0.999);
}

TEST(Histogram, BinsAndOutOfRange) {
  Histogram h(0.0, 10.0, 5);
  h.observe(0.5);   // bin 0
  h.observe(9.5);   // bin 4
  h.observe(-3.0);  // below range: underflow, not clamped
  h.observe(50.0);  // above range: overflow, not clamped
  h.observe(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

}  // namespace
}  // namespace ft
