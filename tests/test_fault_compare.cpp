// Differential and property tests across the four delivery backends
// (ISSUE 5 satellites): message conservation under correlated subtree
// faults, fault-free online vs store-and-forward delivered-set equality,
// the Corollary 2 slack property, and verify_schedule acceptance of every
// schedule_offline output.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "core/capacity.hpp"
#include "core/load.hpp"
#include "core/offline_scheduler.hpp"
#include "core/online_router.hpp"
#include "core/replay.hpp"
#include "core/reuse_scheduler.hpp"
#include "core/topology.hpp"
#include "core/traffic.hpp"
#include "engine/fat_tree_model.hpp"
#include "engine/fault_plan.hpp"
#include "engine/kary_model.hpp"
#include "kary/kary_sim.hpp"
#include "kary/kary_tree.hpp"
#include "nets/builders.hpp"
#include "nets/routing.hpp"
#include "nets/store_forward.hpp"
#include "obs/trace.hpp"
#include "util/bits.hpp"

namespace {

std::uint64_t sum_u32(const std::vector<std::uint32_t>& v) {
  std::uint64_t s = 0;
  for (const std::uint32_t x : v) s += x;
  return s;
}

std::vector<std::uint32_t> random_perm(std::uint32_t n, ft::Rng& rng) {
  std::vector<std::uint32_t> perm(n);
  for (std::uint32_t i = 0; i < n; ++i) perm[i] = i;
  for (std::uint32_t i = n - 1; i > 0; --i) {
    const auto j =
        static_cast<std::uint32_t>(rng.below(std::size_t{i} + 1));
    std::swap(perm[i], perm[j]);
  }
  return perm;
}

}  // namespace

// Every backend, run under the *same* correlated subtree-kill scenario
// (scheduled kill + storm + varying retry policies), accounts for every
// injected message: delivered + given_up == injected, with nothing parked
// or in flight at termination.
TEST(FaultCompare, ConservationAcrossBackends) {
  constexpr std::uint32_t n = 32;
  const ft::FatTreeTopology topo(n);
  const std::uint32_t L = topo.height();
  const auto caps = ft::CapacityProfile::universal(topo, 8);
  const ft::Network net = ft::build_binary_tree(L);
  const ft::KaryTree ktree(2, L);

  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    ft::Rng trng(100 + trial);
    const auto perm = random_perm(n, trng);
    ft::MessageSet m;
    for (std::uint32_t p = 0; p < n; ++p) m.push_back({p, perm[p]});

    // Kill a rotating level-2 subtree at cycle 1 and let a storm strike
    // the rest of that level; domains fate-share whole subtrees.
    const std::uint32_t kill_node =
        4u + static_cast<std::uint32_t>(trial % 4);
    ft::FaultPlan plan(500 + trial);
    {
      std::vector<ft::FaultDomain> domains;
      for (std::uint32_t v = 4; v < 8; ++v)
        domains.push_back(ft::fat_tree_subtree_domain(topo, v));
      plan.set_domains(std::move(domains));
      plan.add_subtree_kill({kill_node, 1, 6});
      plan.set_storm({0.02, 1, 4});
    }

    {  // online, cycling through retry policies (incl. give-up paths)
      ft::OnlineRouterOptions opts;
      opts.fault_plan = &plan;
      if (trial == 1) {
        opts.retry.exponential_backoff = true;
        opts.retry.max_backoff = 8;
      } else if (trial == 2) {
        opts.retry.max_attempts = 5;
      } else if (trial == 3) {
        opts.retry.deadline_cycles = 12;
      }
      ft::Rng rng(17 + trial);
      const auto res = ft::route_online(topo, caps, m, rng, opts);
      EXPECT_FALSE(res.gave_up);
      EXPECT_EQ(sum_u32(res.delivered_per_cycle) + res.messages_given_up,
                m.size());
    }
    {  // offline schedule replayed through the same plan
      const auto schedule = ft::schedule_offline(topo, caps, m);
      ft::ReplayOptions ropts;
      ropts.fault_plan = &plan;
      const auto res = ft::replay_schedule(topo, caps, schedule, ropts);
      EXPECT_EQ(res.delivered + res.messages_given_up,
                schedule.total_messages());
      EXPECT_GE(res.subtree_kill_events, 1u);
    }
    {  // store-and-forward on the unit binary tree (queues wait out kills)
      ft::FaultPlan plan_bt(500 + trial);
      std::vector<ft::FaultDomain> domains;
      for (std::uint32_t v = 4; v < 8; ++v)
        domains.push_back(ft::binary_tree_subtree_domain(L, v));
      plan_bt.set_domains(std::move(domains));
      plan_bt.add_subtree_kill({kill_node, 1, 6});
      plan_bt.set_storm({0.02, 1, 4});
      const auto routes = ft::route_all_bfs(net, m);
      ft::StoreForwardOptions sopts;
      sopts.fault_plan = &plan_bt;
      const auto res = ft::simulate_store_forward(net, routes, sopts);
      EXPECT_FALSE(res.gave_up);
      EXPECT_EQ(res.delivered, routes.size());
    }
    {  // k-ary n-tree (k = 2): pods are the same subtrees by label
      ft::FaultPlan plan_ka(500 + trial);
      std::vector<ft::FaultDomain> domains;
      for (std::uint32_t v = 4; v < 8; ++v)
        domains.push_back(
            ft::kary_pod_domain(ktree, 2, v - 4));
      plan_ka.set_domains(std::move(domains));
      plan_ka.add_subtree_kill({kill_node, 1, 6});
      plan_ka.set_storm({0.02, 1, 4});
      ft::KarySimOptions kopts;
      kopts.fault_plan = &plan_ka;
      ft::Rng rng(23 + trial);
      const auto res = ft::simulate_kary_permutation(
          ktree, perm, ft::AscentPolicy::DModK, rng, kopts);
      EXPECT_EQ(res.delivered, perm.size());
    }
  }
}

// Fault-free differential: the lossy online router and the FIFO
// store-and-forward simulator deliver exactly the same message multiset
// (they disagree on *when*, never on *what*).
TEST(FaultCompare, FaultFreeOnlineMatchesStoreForwardDeliveredSet) {
  constexpr std::uint32_t n = 32;
  const ft::FatTreeTopology topo(n);
  const auto caps = ft::CapacityProfile::universal(topo, 8);
  const ft::Network net = ft::build_binary_tree(topo.height());

  for (std::uint64_t trial = 0; trial < 3; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    ft::Rng trng(7 + trial);
    // Mixed traffic, including self messages and repeated pairs.
    auto m = ft::uniform_random_traffic(n, 3 * n, trng);
    std::vector<ft::Message> nonself;
    for (const auto& msg : m)
      if (msg.src != msg.dst) nonself.push_back(msg);

    std::vector<std::pair<std::uint32_t, std::uint32_t>> online_set;
    {
      ft::TraceSink trace;
      ft::OnlineRouterOptions opts;
      opts.observer = &trace;
      ft::Rng rng(31 + trial);
      const auto res = ft::route_online(topo, caps, m, rng, opts);
      ASSERT_FALSE(res.gave_up);
      // Online trace ids index the non-self messages in injection order.
      for (const auto& e : trace.message_events()) {
        if (e.kind == ft::MessageEventKind::Deliver) {
          ASSERT_LT(e.message, nonself.size());
          online_set.emplace_back(nonself[e.message].src,
                                  nonself[e.message].dst);
        }
      }
    }

    std::vector<std::pair<std::uint32_t, std::uint32_t>> fifo_set;
    {
      const auto routes = ft::route_all_bfs(net, m);
      ft::TraceSink trace;
      ft::StoreForwardOptions sopts;
      sopts.observer = &trace;
      const auto res = ft::simulate_store_forward(net, routes, sopts);
      ASSERT_FALSE(res.gave_up);
      EXPECT_EQ(res.delivered, routes.size());
      // FIFO trace ids index the full route list (self routes are empty
      // and deliver at round 0); keep only the non-self ones to compare.
      for (const auto& e : trace.message_events()) {
        if (e.kind == ft::MessageEventKind::Deliver &&
            m[e.message].src != m[e.message].dst) {
          fifo_set.emplace_back(m[e.message].src, m[e.message].dst);
        }
      }
    }

    std::sort(online_set.begin(), online_set.end());
    std::sort(fifo_set.begin(), fifo_set.end());
    EXPECT_EQ(online_set.size(), nonself.size());
    EXPECT_EQ(online_set, fifo_set);
  }
}

// Corollary 2 as a randomized property: with capacity slack
// cap(c) >= a·lg n (a > 2), the repo's schedulers produce a schedule
// within (a/(a-1))·2·λ(M) cycles — the lg n factor is gone — and the
// reuse scheduler never needs its Theorem 1 repair path.
TEST(Cor2Property, SlackRemovesLgNFactor) {
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const std::uint32_t n = 64u << (trial % 3);  // 64, 128, 256
    const double a = (trial % 2 == 0) ? 2.5 : 3.0;
    const ft::FatTreeTopology topo(n);
    const std::uint32_t lgn = topo.height();
    const auto cap = static_cast<std::uint64_t>(std::ceil(a * lgn));
    const auto caps = ft::CapacityProfile::constant(topo, cap);

    ft::Rng rng(900 + trial);
    const auto stack = 3 + static_cast<std::uint32_t>(rng.below(8));
    const auto m = ft::stacked_permutations(n, stack, rng);
    const double lambda = ft::load_factor(topo, caps, m);
    ASSERT_GT(lambda, 0.0);

    const auto reuse = ft::schedule_reuse(topo, caps, m);
    const auto thm1 = ft::schedule_offline(topo, caps, m);
    EXPECT_EQ(reuse.repaired_messages, 0u);  // premise a > 2 held
    EXPECT_TRUE(ft::verify_schedule(topo, caps, m, reuse.schedule));
    EXPECT_TRUE(ft::verify_schedule(topo, caps, m, thm1));

    // The corollary asserts a schedule within the bound *exists*; the
    // best of the two implementations must witness it.
    const double bound = a / (a - 1.0) * 2.0 * lambda;
    const auto best = std::min(reuse.schedule.num_cycles(),
                               thm1.num_cycles());
    EXPECT_LE(static_cast<double>(best), bound)
        << "n=" << n << " a=" << a << " stack=" << stack
        << " lambda=" << lambda << " reuse=" << reuse.schedule.num_cycles()
        << " thm1=" << thm1.num_cycles();
  }
}

// verify_schedule accepts every schedule_offline output, across traffic
// shapes and capacity profiles (including the skinny unit tree).
TEST(Cor2Property, VerifyScheduleAcceptsOfflineOutputs) {
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const std::uint32_t n = 32u << (trial % 2);  // 32, 64
    const ft::FatTreeTopology topo(n);
    ft::Rng rng(1200 + trial);

    ft::MessageSet m;
    switch (trial % 3) {
      case 0:
        m = ft::stacked_permutations(
            n, 2 + static_cast<std::uint32_t>(rng.below(4)), rng);
        break;
      case 1:
        m = ft::uniform_random_traffic(n, 2 * n, rng);
        break;
      default:
        m = ft::complement_traffic(n);
        break;
    }

    const auto caps = (trial % 2 == 0)
                          ? ft::CapacityProfile::universal(topo, 16)
                          : ft::CapacityProfile::constant(topo, 1);
    const auto s = ft::schedule_offline(topo, caps, m);
    EXPECT_EQ(s.total_messages(), m.size());
    EXPECT_TRUE(ft::verify_schedule(topo, caps, m, s));
  }
}
