// Congestion-observatory tests: ring-downsampling invariants, the
// space-saving sketch's error bound, quantile-digest accuracy, the
// serial == sharded-parallel telemetry-stream parity guarantee (with and
// without fault plans), engine non-perturbation with a probe attached,
// scalar-series conservation at any sampling rate, latency/stretch digest
// semantics in both engine modes, phase-profile sanity, and the
// ft.run_report/2 round trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>

#include "core/capacity.hpp"
#include "core/online_router.hpp"
#include "core/topology.hpp"
#include "core/traffic.hpp"
#include "engine/engine.hpp"
#include "engine/fat_tree_model.hpp"
#include "engine/fault_plan.hpp"
#include "nets/builders.hpp"
#include "nets/routing.hpp"
#include "nets/store_forward.hpp"
#include "obs/run_report.hpp"
#include "obs/telemetry.hpp"
#include "util/prng.hpp"

namespace ft {
namespace {

// --- TelemetryRing --------------------------------------------------------

TEST(TelemetryRing, DownsamplingConservesAndStaysBounded) {
  TelemetryRing ring(8);
  std::uint64_t want_value = 0, want_count = 0;
  const std::uint64_t windows = 1000;
  for (std::uint64_t i = 0; i < windows; ++i) {
    ring.push(/*start_cycle=*/i + 1, /*span=*/1, /*sampled=*/1,
              /*value=*/i * 3 + 1);
    want_value += i * 3 + 1;
    want_count += 1;
  }
  ring.flush();

  EXPECT_LE(ring.samples().size(), ring.capacity());
  EXPECT_GE(ring.samples().size(), ring.capacity() / 2);
  // Stride is the power of two that folds `windows` base windows into at
  // most `capacity` samples.
  EXPECT_EQ(ring.stride() & (ring.stride() - 1), 0u);
  EXPECT_GE(static_cast<std::uint64_t>(ring.stride()) * ring.capacity(),
            windows);

  // Conservation: every pushed value and sampled cycle survives
  // downsampling, and the committed windows tile the run contiguously.
  std::uint64_t got_value = 0, got_count = 0, got_span = 0;
  std::uint64_t prev_end = 1;
  for (const TelemetrySample& s : ring.samples()) {
    EXPECT_EQ(s.start_cycle, prev_end);
    prev_end = s.start_cycle + s.span;
    got_value += s.value;
    got_count += s.count;
    got_span += s.span;
  }
  EXPECT_EQ(got_value, want_value);
  EXPECT_EQ(got_count, want_count);
  EXPECT_EQ(got_span, windows);
  EXPECT_EQ(ring.total_value(), want_value);
  EXPECT_EQ(ring.total_count(), want_count);
}

TEST(TelemetryRing, CapacitySanitizedToEvenAtLeastTwo) {
  EXPECT_EQ(TelemetryRing(0).capacity(), 2u);
  EXPECT_EQ(TelemetryRing(1).capacity(), 2u);
  EXPECT_EQ(TelemetryRing(7).capacity(), 8u);
  EXPECT_EQ(TelemetryRing(8).capacity(), 8u);
}

TEST(TelemetryRing, FlushIsIdempotentAndPartialWindowsCommit) {
  TelemetryRing ring(4);
  ring.push(1, 1, 1, 10);
  ring.flush();
  ring.flush();
  ASSERT_EQ(ring.samples().size(), 1u);
  EXPECT_EQ(ring.samples()[0].value, 10u);
  // Pushing after a flush keeps accumulating correctly.
  ring.push(2, 1, 1, 20);
  ring.flush();
  ASSERT_EQ(ring.samples().size(), 2u);
  EXPECT_EQ(ring.total_value(), 30u);
  EXPECT_EQ(ring.total_count(), 2u);
}

// --- SpaceSavingSketch ----------------------------------------------------

TEST(SpaceSavingSketch, ErrorBoundAndHeavyHitterGuarantee) {
  const std::size_t k = 8;
  SpaceSavingSketch sketch(k);
  // 4 heavy keys and 60 light keys; total weight known exactly.
  std::uint64_t total = 0;
  std::uint64_t true_heavy[4] = {};
  for (int round = 0; round < 50; ++round) {
    for (std::uint64_t key = 0; key < 64; ++key) {
      const std::uint64_t w = key < 4 ? 100 : 1;
      sketch.add(key, w, /*tag=*/static_cast<std::uint32_t>(key % 5));
      total += w;
      if (key < 4) true_heavy[key] += w;
    }
  }
  EXPECT_EQ(sketch.total_weight(), total);

  const auto top = sketch.top();
  EXPECT_LE(top.size(), k);
  // Error bound: every entry's inherited error is at most total / k.
  for (const auto& e : top) {
    EXPECT_LE(e.error, total / k) << "key " << e.key;
    EXPECT_LE(e.count, total);
  }
  // Every key with true weight above total / k must be tracked, with
  // count bracketing true_count <= count <= true_count + error.
  for (std::uint64_t key = 0; key < 4; ++key) {
    ASSERT_GT(true_heavy[key], total / k) << "test workload not heavy";
    bool found = false;
    for (const auto& e : top) {
      if (e.key != key) continue;
      found = true;
      EXPECT_GE(e.count, true_heavy[key]);
      EXPECT_LE(e.count - e.error, true_heavy[key]);
    }
    EXPECT_TRUE(found) << "heavy key " << key << " evicted";
  }
}

TEST(SpaceSavingSketch, TopIsSortedCountDescKeyAsc) {
  SpaceSavingSketch sketch(4);
  sketch.add(30, 5);
  sketch.add(10, 5);
  sketch.add(20, 9);
  const auto top = sketch.top();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 20u);
  EXPECT_EQ(top[1].key, 10u);  // tie with 30 resolves by ascending key
  EXPECT_EQ(top[2].key, 30u);
}

// --- QuantileDigest -------------------------------------------------------

TEST(QuantileDigest, ExactBelowCutoff) {
  QuantileDigest d;
  for (std::uint64_t v = 1; v <= 63; ++v) d.add(v);
  EXPECT_EQ(d.count(), 63u);
  EXPECT_EQ(d.min(), 1u);
  EXPECT_EQ(d.max(), 63u);
  EXPECT_NEAR(d.mean(), 32.0, 1e-9);
  EXPECT_EQ(d.quantile(0.5), 32u);
  EXPECT_EQ(d.quantile(0.0), 1u);
  EXPECT_EQ(d.quantile(1.0), 63u);
}

TEST(QuantileDigest, BoundedRelativeErrorAboveCutoff) {
  QuantileDigest d;
  // Uniform weights over a wide range; reported quantiles are the bucket
  // upper bounds, so they overshoot by at most one sub-bucket (~1/32 of
  // an octave, ~3.2% relative).
  for (std::uint64_t v = 64; v <= 100000; v += 7) d.add(v);
  for (const double q : {0.5, 0.95, 0.99}) {
    const double exact = 64.0 + (100000.0 - 64.0) * q;
    const double got = static_cast<double>(d.quantile(q));
    EXPECT_GE(got, exact * 0.999) << "q=" << q;  // conservative: never low
    EXPECT_LE(got, exact * 1.04) << "q=" << q;
  }
  // Min and max stay exact, and quantiles clamp to them.
  EXPECT_EQ(d.quantile(1.0), d.max());
  EXPECT_GE(d.quantile(0.0), d.min());
}

TEST(QuantileDigest, SingleValueAllQuantiles) {
  QuantileDigest d;
  d.add(1000, 17);
  EXPECT_EQ(d.count(), 17u);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(d.quantile(q), 1000u) << "q=" << q;
  }
}

// --- Probe vs engine ------------------------------------------------------

// A serial run and a sharded-parallel run (every shard depth) must emit
// identical telemetry streams: the probe only ever samples on the serial
// coordination path. Checked at full resolution and subsampled.
TEST(Telemetry, SerialShardedParityFingerprint) {
  const std::uint32_t n = 128;
  FatTreeTopology topo(n);
  const auto caps = CapacityProfile::universal(topo, 32);
  Rng gen(17);
  const struct {
    const char* name;
    MessageSet m;
  } workloads[] = {
      {"complement", complement_traffic(n)},
      {"stacked", stacked_permutations(n, 4, gen)},
  };

  for (const auto& w : workloads) {
    const PathSet paths = fat_tree_path_set(topo, w.m);
    for (const std::uint32_t every_k : {1u, 4u}) {
      TelemetryOptions topts;
      topts.every_k = every_k;

      TelemetryProbe serial_probe(topts);
      EngineOptions serial_opts;
      serial_opts.seed = 321;
      CycleEngine serial_engine(fat_tree_channel_graph(topo, caps),
                                serial_opts);
      const EngineResult serial =
          serial_engine.run(paths, &serial_probe);
      EXPECT_FALSE(serial.gave_up) << w.name;
      const std::uint64_t want = serial_probe.fingerprint();
      EXPECT_EQ(serial_probe.cycles_seen(), serial.cycles);

      for (const std::uint32_t shard_level : {1u, 2u, 3u}) {
        TelemetryProbe probe(topts);
        EngineOptions opts;
        opts.seed = 321;
        opts.parallel = true;
        CycleEngine engine(fat_tree_channel_graph(topo, caps, shard_level),
                           opts);
        const EngineResult sharded = engine.run(paths, &probe);
        EXPECT_EQ(sharded.cycles, serial.cycles) << w.name;
        EXPECT_EQ(probe.fingerprint(), want)
            << w.name << " shard_level=" << shard_level
            << " every_k=" << every_k;
      }
    }
  }
}

// Parity must survive the full fault machinery: dynamic flaps, correlated
// subtree kills and exponential backoff all feed the same telemetry
// stream serial and sharded.
TEST(Telemetry, SerialShardedParityUnderFaults) {
  const std::uint32_t n = 64;
  FatTreeTopology topo(n);
  const auto caps = CapacityProfile::universal(topo, 16);
  Rng gen(23);
  const auto m = stacked_permutations(n, 3, gen);
  const PathSet paths = fat_tree_path_set(topo, m);

  FaultPlan plan(404);
  plan.set_domains(fat_tree_subtree_domains(topo, 2));
  plan.add_subtree_kill({/*node=*/5, /*at_cycle=*/2, /*duration=*/4});
  plan.set_storm({0.05, 1, 5});

  TelemetryProbe serial_probe;
  EngineOptions serial_opts;
  serial_opts.seed = 55;
  serial_opts.fault_plan = &plan;
  serial_opts.retry.exponential_backoff = true;
  CycleEngine serial_engine(fat_tree_channel_graph(topo, caps), serial_opts);
  const EngineResult serial = serial_engine.run(paths, &serial_probe);
  EXPECT_GT(serial.fault_down_events, 0u);

  TelemetryProbe probe;
  EngineOptions opts = serial_opts;
  opts.parallel = true;
  CycleEngine engine(fat_tree_channel_graph(topo, caps, 2), opts);
  const EngineResult sharded = engine.run(paths, &probe);

  EXPECT_EQ(sharded.cycles, serial.cycles);
  EXPECT_EQ(probe.fingerprint(), serial_probe.fingerprint());
  // The fault counters reached the series: channels_down accumulated
  // something over the run.
  const TelemetryRing* down = serial_probe.series("channels_down");
  ASSERT_NE(down, nullptr);
  EXPECT_GT(down->total_value(), 0u);
}

// Observers never influence arbitration: an engine run with a telemetry
// probe attached produces the bit-identical EngineResult of a bare run.
TEST(Telemetry, ProbeDoesNotPerturbEngineResults) {
  const std::uint32_t n = 128;
  FatTreeTopology topo(n);
  const auto caps = CapacityProfile::universal(topo, 32);
  Rng gen(29);
  const auto m = stacked_permutations(n, 4, gen);
  const PathSet paths = fat_tree_path_set(topo, m);

  EngineOptions opts;
  opts.seed = 777;
  CycleEngine bare_engine(fat_tree_channel_graph(topo, caps), opts);
  const EngineResult bare = bare_engine.run(paths);

  TelemetryProbe probe;
  CycleEngine probed_engine(fat_tree_channel_graph(topo, caps), opts);
  const EngineResult probed = probed_engine.run(paths, &probe);

  EXPECT_EQ(bare.cycles, probed.cycles);
  EXPECT_EQ(bare.delivered, probed.delivered);
  EXPECT_EQ(bare.total_attempts, probed.total_attempts);
  EXPECT_EQ(bare.total_losses, probed.total_losses);
  EXPECT_EQ(bare.total_hops, probed.total_hops);
  EXPECT_EQ(bare.gave_up, probed.gave_up);
}

// Scalar counter series accumulate every cycle regardless of every_k, so
// their totals conserve the engine's counters exactly at any sampling
// rate; only channel-state capture is subsampled.
TEST(Telemetry, ScalarSeriesConserveAtAnySamplingRate) {
  const std::uint32_t n = 64;
  FatTreeTopology topo(n);
  const auto caps = CapacityProfile::universal(topo, 16);
  Rng gen(31);
  const auto m = stacked_permutations(n, 3, gen);
  const PathSet paths = fat_tree_path_set(topo, m);

  for (const std::uint32_t every_k : {1u, 5u}) {
    TelemetryOptions topts;
    topts.every_k = every_k;
    TelemetryProbe probe(topts);
    EngineOptions opts;
    opts.seed = 99;
    CycleEngine engine(fat_tree_channel_graph(topo, caps), opts);
    const EngineResult r = engine.run(paths, &probe);
    probe.finalize();

    const TelemetryRing* attempts = probe.series("attempts");
    const TelemetryRing* losses = probe.series("losses");
    const TelemetryRing* delivered = probe.series("delivered");
    ASSERT_NE(attempts, nullptr);
    ASSERT_NE(losses, nullptr);
    ASSERT_NE(delivered, nullptr);
    EXPECT_EQ(attempts->total_value(), r.total_attempts)
        << "every_k=" << every_k;
    EXPECT_EQ(losses->total_value(), r.total_losses)
        << "every_k=" << every_k;
    EXPECT_EQ(delivered->total_value(), r.delivered)
        << "every_k=" << every_k;
    // Every cycle was observed (scalar path), even when channel state
    // was subsampled.
    EXPECT_EQ(attempts->total_count(), r.cycles) << "every_k=" << every_k;
    EXPECT_EQ(probe.cycles_seen(), r.cycles);
    EXPECT_EQ(probe.series("does_not_exist"), nullptr);
  }
}

// Uncontended lossy traffic: every delivery takes exactly one cycle, so
// the latency digest collapses to 1 and stretch to 1000 milli-units.
TEST(Telemetry, LatencyDigestUncontendedLossy) {
  const std::uint32_t n = 32;
  FatTreeTopology topo(n);
  // Enormous capacity: no contention anywhere.
  const auto caps = CapacityProfile::universal(topo, 4096);
  Rng gen(37);
  const auto m = random_permutation_traffic(n, gen);
  std::uint64_t routed = 0;
  for (const auto& msg : m) {
    if (msg.src != msg.dst) ++routed;
  }

  TelemetryProbe probe;
  Rng rng(38);
  OnlineRouterOptions opts;
  opts.observer = &probe;
  const auto r = route_online(topo, caps, m, rng, opts);
  EXPECT_FALSE(r.gave_up);
  probe.finalize();

  EXPECT_EQ(probe.latency_digest().count(), routed);
  EXPECT_EQ(probe.latency_digest().min(), 1u);
  EXPECT_EQ(probe.latency_digest().max(), 1u);
  EXPECT_EQ(probe.stretch_digest().quantile(0.5), 1000u);
  EXPECT_EQ(probe.stretch_digest().quantile(0.999), 1000u);
}

// FIFO store-and-forward: latency is the finish round, the ideal is the
// hop count, and without queueing each message moves one hop per round —
// stretch is exactly 1000 again.
TEST(Telemetry, LatencyDigestFifoStretch) {
  const auto net = build_hypercube(5);
  Rng traffic(41);
  const auto m = random_permutation_traffic(32, traffic);
  const auto routes = route_all_bfs(net, m);

  TelemetryProbe probe;
  StoreForwardOptions opts;
  opts.observer = &probe;
  const auto r = simulate_store_forward(net, routes, opts);
  probe.finalize();

  EXPECT_GT(probe.latency_digest().count(), 0u);
  EXPECT_GE(probe.latency_digest().max(),
            probe.latency_digest().min());
  // Stretch >= 1.0 always (a message cannot beat its own path length),
  // and the fastest messages ran contention-free.
  EXPECT_GE(probe.stretch_digest().quantile(0.0), 1000u);
  EXPECT_EQ(r.rounds, probe.cycles_seen());
}

// Latency collection can be disabled; the engine then skips per-delivery
// sampling entirely and the digests stay empty.
TEST(Telemetry, LatencyOptOut) {
  const std::uint32_t n = 32;
  FatTreeTopology topo(n);
  const auto caps = CapacityProfile::universal(topo, 8);
  Rng gen(43);
  const auto m = random_permutation_traffic(n, gen);

  TelemetryOptions topts;
  topts.latency = false;
  TelemetryProbe probe(topts);
  Rng rng(44);
  OnlineRouterOptions opts;
  opts.observer = &probe;
  const auto r = route_online(topo, caps, m, rng, opts);
  EXPECT_FALSE(r.gave_up);
  EXPECT_EQ(probe.latency_digest().count(), 0u);
  EXPECT_EQ(probe.stretch_digest().count(), 0u);
}

// --- Phase profiling ------------------------------------------------------

TEST(Telemetry, PhaseProfileMeasuresWhenEnabled) {
  const std::uint32_t n = 64;
  FatTreeTopology topo(n);
  const auto caps = CapacityProfile::universal(topo, 16);
  Rng gen(47);
  const auto m = stacked_permutations(n, 3, gen);

  Rng rng(48);
  OnlineRouterOptions opts;
  opts.time_phases = true;
  const auto r = route_online(topo, caps, m, rng, opts);
  EXPECT_FALSE(r.gave_up);
  EXPECT_EQ(r.phases.timed_cycles, r.delivery_cycles);
  const double f = r.phases.serial_fraction();
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
  EXPECT_GT(r.phases.up_seconds + r.phases.spine_seconds +
                r.phases.down_seconds + r.phases.coord_seconds,
            0.0);

  // Off by default: an untimed run reports an all-zero profile.
  Rng rng2(48);
  const auto untimed = route_online(topo, caps, m, rng2, {});
  EXPECT_EQ(untimed.phases.timed_cycles, 0u);
  // Timing never changes routing results.
  EXPECT_EQ(untimed.delivery_cycles, r.delivery_cycles);
  EXPECT_EQ(untimed.delivered_per_cycle, r.delivered_per_cycle);
}

// --- Export round trips ---------------------------------------------------

TEST(Telemetry, RunReportV2RoundTrip) {
  const std::uint32_t n = 64;
  FatTreeTopology topo(n);
  const auto caps = CapacityProfile::universal(topo, 16);
  Rng gen(53);
  const auto m = stacked_permutations(n, 2, gen);

  TelemetryProbe probe;
  Rng rng(54);
  OnlineRouterOptions opts;
  opts.observer = &probe;
  opts.time_phases = true;
  const auto res = route_online(topo, caps, m, rng, opts);
  EXPECT_FALSE(res.gave_up);

  RunReport report("test_telemetry");
  report.params()["n"] = n;
  JsonValue& run = report.add_run("roundtrip");
  run["telemetry"] = probe.to_json();
  run["amdahl"] = phase_profile_json(res.phases);

  const std::string path = "test_telemetry_roundtrip.json";
  ASSERT_TRUE(report.write_file(path));
  const auto doc = RunReport::read_file(path);
  std::remove(path.c_str());
  ASSERT_TRUE(doc.has_value());

  const JsonValue* schema = doc->find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->as_string(), "ft.run_report/2");

  const JsonValue* runs = doc->find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->size(), 1u);
  const JsonValue* telem = runs->at(0).find("telemetry");
  ASSERT_NE(telem, nullptr);
  for (const char* key :
       {"config", "cycles", "fingerprint_hex", "levels", "series",
        "top_channels", "latency", "stretch"}) {
    EXPECT_NE(telem->find(key), nullptr) << key;
  }
  EXPECT_EQ(telem->find("cycles")->as_uint(), res.delivery_cycles);
  const JsonValue* amdahl = runs->at(0).find("amdahl");
  ASSERT_NE(amdahl, nullptr);
  ASSERT_NE(amdahl->find("serial_fraction"), nullptr);
  const double f = amdahl->find("serial_fraction")->as_double();
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
}

TEST(Telemetry, HeatmapExportsParse) {
  const std::uint32_t n = 64;
  FatTreeTopology topo(n);
  const auto caps = CapacityProfile::universal(topo, 16);
  Rng gen(59);
  const auto m = stacked_permutations(n, 2, gen);

  TelemetryProbe probe;
  Rng rng(60);
  OnlineRouterOptions opts;
  opts.observer = &probe;
  const auto r = route_online(topo, caps, m, rng, opts);
  EXPECT_FALSE(r.gave_up);

  std::ostringstream csv;
  probe.write_heatmap_csv(csv);
  std::istringstream csv_in(csv.str());
  std::string header;
  ASSERT_TRUE(std::getline(csv_in, header));
  EXPECT_EQ(header,
            "level,start_cycle,span,sampled_cycles,carried,utilization");
  std::size_t rows = 0;
  for (std::string line; std::getline(csv_in, line);) ++rows;
  EXPECT_GT(rows, 0u);

  // Every JSONL line is standalone-parseable, and the three record types
  // all appear.
  std::ostringstream jsonl;
  probe.write_heatmap_jsonl(jsonl);
  std::istringstream jsonl_in(jsonl.str());
  bool saw_series = false, saw_top = false, saw_latency = false;
  for (std::string line; std::getline(jsonl_in, line);) {
    const auto v = JsonValue::parse(line);
    ASSERT_TRUE(v.has_value()) << line;
    const JsonValue* type = v->find("type");
    ASSERT_NE(type, nullptr);
    if (type->as_string() == "series") saw_series = true;
    if (type->as_string() == "top_channels") saw_top = true;
    if (type->as_string() == "latency") saw_latency = true;
  }
  EXPECT_TRUE(saw_series);
  EXPECT_TRUE(saw_top);
  EXPECT_TRUE(saw_latency);

  // Chrome trace export is a well-formed JSON document.
  std::ostringstream trace;
  probe.write_chrome_trace(trace);
  const auto tv = JsonValue::parse(trace.str());
  ASSERT_TRUE(tv.has_value());
  ASSERT_NE(tv->find("traceEvents"), nullptr);
  EXPECT_GT(tv->find("traceEvents")->size(), 0u);
}

// reset() returns the probe to a reusable pristine state.
TEST(Telemetry, ResetAllowsReuse) {
  const std::uint32_t n = 32;
  FatTreeTopology topo(n);
  const auto caps = CapacityProfile::universal(topo, 8);
  Rng gen(61);
  const auto m = random_permutation_traffic(n, gen);
  const PathSet paths = fat_tree_path_set(topo, m);

  TelemetryProbe probe;
  EngineOptions opts;
  opts.seed = 5;
  CycleEngine engine(fat_tree_channel_graph(topo, caps), opts);
  (void)engine.run(paths, &probe);
  const std::uint64_t first = probe.fingerprint();

  probe.reset();
  EXPECT_EQ(probe.cycles_seen(), 0u);

  CycleEngine engine2(fat_tree_channel_graph(topo, caps), opts);
  (void)engine2.run(paths, &probe);
  EXPECT_EQ(probe.fingerprint(), first);
}

}  // namespace
}  // namespace ft
