#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ft {
namespace {

TEST(Table, StoresCells) {
  Table t({"a", "b"});
  t.row().add("x").add(std::int64_t{42});
  t.row().add(3.14159, 2).add("y");
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 2u);
  EXPECT_EQ(t.cell(0, 0), "x");
  EXPECT_EQ(t.cell(0, 1), "42");
  EXPECT_EQ(t.cell(1, 0), "3.14");
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "v"});
  t.row().add("short").add(std::int64_t{1});
  t.row().add("a-much-longer-name").add(std::int64_t{2});
  std::ostringstream os;
  t.print(os, "demo");
  const std::string s = os.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("a-much-longer-name"), std::string::npos);
  // Header row and separator present.
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.row().add(std::int64_t{1}).add(std::int64_t{2});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, FormatDouble) {
  EXPECT_EQ(format_double(1.23456, 3), "1.235");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

}  // namespace
}  // namespace ft
