#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace ft {
namespace {

TEST(Prng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Prng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Prng, BelowIsInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Prng, BelowOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Prng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 1000 draws
}

TEST(Prng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Prng, PermutationIsValid) {
  Rng rng(13);
  for (std::uint32_t n : {1u, 2u, 10u, 257u}) {
    auto p = rng.permutation(n);
    ASSERT_EQ(p.size(), n);
    std::sort(p.begin(), p.end());
    for (std::uint32_t i = 0; i < n; ++i) EXPECT_EQ(p[i], i);
  }
}

TEST(Prng, PermutationIsShuffled) {
  Rng rng(17);
  const auto p = rng.permutation(100);
  std::uint32_t fixed = 0;
  for (std::uint32_t i = 0; i < 100; ++i) {
    if (p[i] == i) ++fixed;
  }
  EXPECT_LT(fixed, 10u);  // expected ~1 fixed point
}

TEST(Prng, SplitStreamsAreIndependent) {
  Rng parent(23);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Prng, ChanceExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Prng, ShuffleKeepsMultiset) {
  Rng rng(31);
  std::vector<int> v{1, 2, 2, 3, 3, 3};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

}  // namespace
}  // namespace ft
