#include "core/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/offline_scheduler.hpp"
#include "core/traffic.hpp"
#include "util/prng.hpp"

namespace ft {
namespace {

TEST(Io, MessageSetRoundTrip) {
  Rng rng(1);
  const auto m = uniform_random_traffic(64, 100, rng);
  std::stringstream ss;
  write_message_set(ss, m);
  const auto back = read_message_set(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

TEST(Io, EmptyMessageSet) {
  std::stringstream ss;
  write_message_set(ss, {});
  const auto back = read_message_set(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(Io, ScheduleRoundTrip) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 16);
  Rng rng(3);
  const auto m = stacked_permutations(n, 3, rng);
  const auto s = schedule_offline(t, caps, m);
  std::stringstream ss;
  write_schedule(ss, s);
  const auto back = read_schedule(ss);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->num_cycles(), s.num_cycles());
  for (std::size_t c = 0; c < s.num_cycles(); ++c) {
    EXPECT_EQ(back->cycles[c], s.cycles[c]);
  }
  // The reloaded compiled settings still verify.
  EXPECT_TRUE(verify_schedule(t, caps, m, *back));
}

TEST(Io, RejectsBadHeader) {
  std::stringstream ss("bogus 3\n1 2\n");
  EXPECT_FALSE(read_message_set(ss).has_value());
  std::stringstream ss2("schedul 1\ncycle 0\n");
  EXPECT_FALSE(read_schedule(ss2).has_value());
}

TEST(Io, RejectsTruncatedBody) {
  std::stringstream ss("messages 3\n1 2\n3 4\n");
  EXPECT_FALSE(read_message_set(ss).has_value());
  std::stringstream ss2("schedule 2\ncycle 1\n0 1\n");
  EXPECT_FALSE(read_schedule(ss2).has_value());
}

TEST(Io, ScheduleWithEmptyCycles) {
  Schedule s;
  s.cycles.resize(3);
  s.cycles[1].push_back({5, 9});
  std::stringstream ss;
  write_schedule(ss, s);
  const auto back = read_schedule(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->num_cycles(), 3u);
  EXPECT_TRUE(back->cycles[0].empty());
  EXPECT_EQ(back->cycles[1].size(), 1u);
}

}  // namespace
}  // namespace ft
