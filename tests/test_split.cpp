// Property tests for the heart of Theorem 1: the matching + tracing even
// split. The paper's invariant is that for EVERY channel, the load of a
// crossing set divides as ceil/floor between the two halves.
#include "core/offline_scheduler.hpp"

#include <gtest/gtest.h>

#include "core/load.hpp"
#include "util/prng.hpp"

namespace ft {
namespace {

/// Generates a random set of messages crossing node v left-to-right.
MessageSet random_crossing(const FatTreeTopology& t, NodeId v,
                           std::size_t count, Rng& rng) {
  const NodeId l = t.left_child(v);
  const NodeId r = t.right_child(v);
  MessageSet m;
  m.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Leaf src = t.subtree_first_leaf(l) +
                     static_cast<Leaf>(rng.below(t.subtree_size(l)));
    const Leaf dst = t.subtree_first_leaf(r) +
                     static_cast<Leaf>(rng.below(t.subtree_size(r)));
    m.push_back({src, dst});
  }
  return m;
}

void expect_even_split(const FatTreeTopology& t, const MessageSet& all,
                       const EvenSplit& split) {
  EXPECT_EQ(split.first.size() + split.second.size(), all.size());
  // Sizes split evenly.
  const auto diff = static_cast<std::int64_t>(split.first.size()) -
                    static_cast<std::int64_t>(split.second.size());
  EXPECT_LE(std::abs(diff), 1);
  // Every channel's load splits as ceil/floor.
  const auto la = compute_loads(t, split.first);
  const auto lb = compute_loads(t, split.second);
  const auto lall = compute_loads(t, all);
  for (NodeId v = 1; v <= t.num_nodes(); ++v) {
    EXPECT_EQ(la.up[v] + lb.up[v], lall.up[v]) << "node " << v;
    EXPECT_EQ(la.down[v] + lb.down[v], lall.down[v]) << "node " << v;
    EXPECT_LE(std::abs(static_cast<std::int64_t>(la.up[v]) -
                       static_cast<std::int64_t>(lb.up[v])),
              1)
        << "up channel above node " << v;
    EXPECT_LE(std::abs(static_cast<std::int64_t>(la.down[v]) -
                       static_cast<std::int64_t>(lb.down[v])),
              1)
        << "down channel above node " << v;
  }
}

TEST(EvenSplit, EmptySet) {
  FatTreeTopology t(8);
  const auto split = split_crossing_messages(t, 1, {});
  EXPECT_TRUE(split.first.empty());
  EXPECT_TRUE(split.second.empty());
}

TEST(EvenSplit, SingleMessage) {
  FatTreeTopology t(8);
  const MessageSet m{{0, 7}};
  const auto split = split_crossing_messages(t, 1, m);
  EXPECT_EQ(split.first.size() + split.second.size(), 1u);
}

TEST(EvenSplit, TwoMessagesSameEndpoints) {
  FatTreeTopology t(8);
  const MessageSet m{{0, 7}, {0, 7}};
  const auto split = split_crossing_messages(t, 1, m);
  // Identical messages must land on opposite sides.
  EXPECT_EQ(split.first.size(), 1u);
  EXPECT_EQ(split.second.size(), 1u);
  expect_even_split(t, m, split);
}

TEST(EvenSplit, AllFromOneProcessor) {
  FatTreeTopology t(16);
  MessageSet m;
  for (Leaf d = 8; d < 16; ++d) m.push_back({0, d});
  const auto split = split_crossing_messages(t, 1, m);
  expect_even_split(t, m, split);
}

TEST(EvenSplit, AllToOneProcessor) {
  FatTreeTopology t(16);
  MessageSet m;
  for (Leaf s = 0; s < 8; ++s) m.push_back({s, 12});
  const auto split = split_crossing_messages(t, 1, m);
  expect_even_split(t, m, split);
}

TEST(EvenSplit, PermutationAcrossRoot) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  MessageSet m;
  for (Leaf p = 0; p < n / 2; ++p) m.push_back({p, n - 1 - p});
  const auto split = split_crossing_messages(t, 1, m);
  expect_even_split(t, m, split);
}

TEST(EvenSplit, RightToLeftDirection) {
  FatTreeTopology t(16);
  MessageSet m;
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    m.push_back({static_cast<Leaf>(8 + rng.below(8)),
                 static_cast<Leaf>(rng.below(8))});
  }
  const auto split = split_crossing_messages(t, 1, m);
  expect_even_split(t, m, split);
}

TEST(EvenSplit, InternalNode) {
  FatTreeTopology t(64);
  Rng rng(5);
  for (NodeId v : {2u, 3u, 5u, 12u, 31u}) {
    const auto m = random_crossing(t, v, 40, rng);
    const auto split = split_crossing_messages(t, v, m);
    expect_even_split(t, m, split);
  }
}

struct SplitCase {
  std::uint32_t n;
  std::size_t count;
  std::uint64_t seed;
};

class EvenSplitSweep : public ::testing::TestWithParam<SplitCase> {};

TEST_P(EvenSplitSweep, RandomCrossingSetsSplitEvenly) {
  const auto param = GetParam();
  FatTreeTopology t(param.n);
  Rng rng(param.seed);
  // Repeat across several random sets and several nodes.
  for (int rep = 0; rep < 5; ++rep) {
    const NodeId v = 1 + static_cast<NodeId>(rng.below(param.n - 1));
    const NodeId node = t.is_leaf(v) ? 1 : v;
    const auto m = random_crossing(t, node, param.count, rng);
    const auto split = split_crossing_messages(t, node, m);
    expect_even_split(t, m, split);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EvenSplitSweep,
    ::testing::Values(SplitCase{8, 3, 11}, SplitCase{8, 64, 13},
                      SplitCase{64, 7, 17}, SplitCase{64, 501, 19},
                      SplitCase{256, 1000, 23}, SplitCase{1024, 4096, 29},
                      SplitCase{1024, 9999, 31}));

TEST(EvenSplit, RepeatedSplittingHalvesMaxLoad) {
  // After k splits the per-channel load is at most ceil(load / 2^k).
  const std::uint32_t n = 256;
  FatTreeTopology t(n);
  Rng rng(37);
  MessageSet m = random_crossing(t, 1, 2048, rng);
  const auto initial = compute_loads(t, m);
  std::vector<MessageSet> parts{m};
  for (int k = 1; k <= 4; ++k) {
    std::vector<MessageSet> next;
    for (auto& p : parts) {
      auto s = split_crossing_messages(t, 1, p);
      next.push_back(std::move(s.first));
      next.push_back(std::move(s.second));
    }
    parts = std::move(next);
    for (const auto& p : parts) {
      const auto lp = compute_loads(t, p);
      for (NodeId v = 1; v <= t.num_nodes(); ++v) {
        const std::uint32_t bound =
            (initial.up[v] + (1u << k) - 1) >> k;
        EXPECT_LE(lp.up[v], bound) << "k=" << k << " node=" << v;
      }
    }
  }
}

}  // namespace
}  // namespace ft
