#include "core/faults.hpp"

#include <gtest/gtest.h>

#include "core/load.hpp"
#include "core/offline_scheduler.hpp"
#include "core/online_router.hpp"
#include "core/traffic.hpp"

namespace ft {
namespace {

TEST(Faults, ZeroProbabilityIsIdentity) {
  FatTreeTopology t(64);
  const auto caps = CapacityProfile::universal(t, 16);
  Rng rng(1);
  FaultReport report;
  const auto degraded = inject_wire_faults(t, caps, 0.0, rng, &report);
  EXPECT_EQ(report.channels_degraded, 0u);
  EXPECT_EQ(report.wires_before, report.wires_after);
  for (NodeId v = 1; v <= t.num_nodes(); ++v) {
    EXPECT_EQ(degraded.capacity(t, v), caps.capacity(t, v));
  }
  EXPECT_FALSE(degraded.has_overrides());
}

TEST(Faults, FullFailureLeavesTheFloor) {
  FatTreeTopology t(32);
  const auto caps = CapacityProfile::universal(t, 16);
  Rng rng(2);
  FaultReport report;
  const auto degraded = inject_wire_faults(t, caps, 1.0, rng, &report);
  for (NodeId v = 1; v <= t.num_nodes(); ++v) {
    EXPECT_EQ(degraded.capacity(t, v), 1u);
  }
  EXPECT_EQ(report.wires_after, t.num_nodes());
}

TEST(Faults, SurvivalRateTracksProbability) {
  FatTreeTopology t(1024);
  const auto caps = CapacityProfile::universal(t, 256);
  Rng rng(3);
  FaultReport report;
  inject_wire_faults(t, caps, 0.25, rng, &report);
  // With thousands of wires, survivors concentrate near 75% (the 1-wire
  // floor pushes the rate slightly up).
  EXPECT_NEAR(report.survival_rate(), 0.75, 0.08);
}

TEST(Faults, DegradedCapacitiesNeverExceedOriginal) {
  FatTreeTopology t(128);
  const auto caps = CapacityProfile::universal(t, 32);
  Rng rng(4);
  const auto degraded = inject_wire_faults(t, caps, 0.3, rng);
  for (NodeId v = 1; v <= t.num_nodes(); ++v) {
    EXPECT_LE(degraded.capacity(t, v), caps.capacity(t, v));
    EXPECT_GE(degraded.capacity(t, v), 1u);
  }
}

TEST(Faults, DeterministicForSameSeed) {
  FatTreeTopology t(64);
  const auto caps = CapacityProfile::universal(t, 16);
  Rng r1(7), r2(7);
  const auto a = inject_wire_faults(t, caps, 0.2, r1);
  const auto b = inject_wire_faults(t, caps, 0.2, r2);
  for (NodeId v = 1; v <= t.num_nodes(); ++v) {
    EXPECT_EQ(a.capacity(t, v), b.capacity(t, v));
  }
}

TEST(Faults, SchedulerStaysCorrectUnderFaults) {
  // The key robustness property: the Theorem 1 machinery needs no change;
  // the degraded capacities just raise λ.
  const std::uint32_t n = 128;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 32);
  Rng frng(11);
  const auto degraded = inject_wire_faults(t, caps, 0.3, frng);
  Rng grng(13);
  for (const auto& wl : standard_workloads(n, grng)) {
    const auto s = schedule_offline(t, degraded, wl.messages);
    EXPECT_TRUE(verify_schedule(t, degraded, wl.messages, s)) << wl.name;
  }
}

TEST(Faults, GracefulDegradationOfCycleCount) {
  // More faults -> no fewer cycles, and moderate damage costs only a
  // moderate factor (no cliff): the Section VII robustness claim.
  const std::uint32_t n = 256;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 64);
  Rng wrng(17);
  const auto m = stacked_permutations(n, 4, wrng);
  const auto base = schedule_offline(t, caps, m).num_cycles();

  std::size_t prev = base;
  for (double p : {0.1, 0.3, 0.5}) {
    Rng frng(19);
    const auto degraded = inject_wire_faults(t, caps, p, frng);
    const auto cycles = schedule_offline(t, degraded, m).num_cycles();
    EXPECT_GE(cycles + 1, prev) << p;  // monotone-ish (+1 noise slack)
    prev = cycles;
  }
  Rng frng(19);
  const auto degraded = inject_wire_faults(t, caps, 0.3, frng);
  const auto cycles = schedule_offline(t, degraded, m).num_cycles();
  EXPECT_LE(cycles, 4 * base) << "30% wire loss must not cost 4x";
}

TEST(Faults, OnlineRouterHonoursOverrides) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 32);
  // Cripple the root's left channel to one wire.
  const auto degraded = caps.with_channel_capacity(t, 2, 1);
  Rng wrng(23);
  const auto m = complement_traffic(n);
  Rng r1(29), r2(29);
  const auto healthy = route_online(t, caps, m, r1);
  const auto hurt = route_online(t, degraded, m, r2);
  EXPECT_GT(hurt.delivery_cycles, healthy.delivery_cycles);
  // Still delivers everything.
  std::uint64_t delivered = 0;
  for (auto d : hurt.delivered_per_cycle) delivered += d;
  EXPECT_EQ(delivered, m.size());
}

TEST(Faults, FailRandomChannelsCountsDamage) {
  FatTreeTopology t(64);
  const auto caps = CapacityProfile::universal(t, 64);
  Rng rng(31);
  FaultReport report;
  const auto degraded = fail_random_channels(t, caps, 10, rng, &report);
  EXPECT_LE(report.channels_at_floor, 10u);
  std::uint32_t at_one = 0;
  for (NodeId v = 1; v <= t.num_nodes(); ++v) {
    if (degraded.capacity(t, v) == 1 && caps.capacity(t, v) > 1) ++at_one;
  }
  EXPECT_EQ(at_one, report.channels_at_floor);
}

TEST(Faults, LoadFactorRisesWithDamage) {
  const std::uint32_t n = 256;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 64);
  Rng wrng(37);
  const auto m = stacked_permutations(n, 2, wrng);
  const double base = load_factor(t, caps, m);
  Rng frng(41);
  const auto degraded = inject_wire_faults(t, caps, 0.4, frng);
  EXPECT_GT(load_factor(t, degraded, m), base);
}

TEST(Faults, OverrideAccessorRoundTrip) {
  FatTreeTopology t(16);
  const auto caps = CapacityProfile::universal(t, 8);
  const auto mod = caps.with_channel_capacity(t, 5, 3);
  EXPECT_TRUE(mod.has_overrides());
  EXPECT_EQ(mod.capacity(t, 5), 3u);
  EXPECT_EQ(mod.capacity(t, 4), caps.capacity(t, 4));
  // Chaining keeps earlier overrides.
  const auto mod2 = mod.with_channel_capacity(t, 7, 2);
  EXPECT_EQ(mod2.capacity(t, 5), 3u);
  EXPECT_EQ(mod2.capacity(t, 7), 2u);
}

}  // namespace
}  // namespace ft
