#include "core/faults.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/load.hpp"
#include "core/offline_scheduler.hpp"
#include "core/online_router.hpp"
#include "core/traffic.hpp"
#include "obs/json.hpp"

namespace ft {
namespace {

TEST(Faults, ZeroProbabilityIsIdentity) {
  FatTreeTopology t(64);
  const auto caps = CapacityProfile::universal(t, 16);
  Rng rng(1);
  FaultReport report;
  const auto degraded = inject_wire_faults(t, caps, 0.0, rng, &report);
  EXPECT_EQ(report.channels_degraded, 0u);
  EXPECT_EQ(report.wires_before, report.wires_after);
  for (NodeId v = 1; v <= t.num_nodes(); ++v) {
    EXPECT_EQ(degraded.capacity(t, v), caps.capacity(t, v));
  }
  EXPECT_FALSE(degraded.has_overrides());
}

TEST(Faults, FullFailureLeavesTheFloor) {
  FatTreeTopology t(32);
  const auto caps = CapacityProfile::universal(t, 16);
  Rng rng(2);
  FaultReport report;
  const auto degraded = inject_wire_faults(t, caps, 1.0, rng, &report);
  for (NodeId v = 1; v <= t.num_nodes(); ++v) {
    EXPECT_EQ(degraded.capacity(t, v), 1u);
  }
  EXPECT_EQ(report.wires_after, t.num_nodes());
}

TEST(Faults, SurvivalRateTracksProbability) {
  FatTreeTopology t(1024);
  const auto caps = CapacityProfile::universal(t, 256);
  Rng rng(3);
  FaultReport report;
  inject_wire_faults(t, caps, 0.25, rng, &report);
  // With thousands of wires, survivors concentrate near 75% (the 1-wire
  // floor pushes the rate slightly up).
  EXPECT_NEAR(report.survival_rate(), 0.75, 0.08);
}

TEST(Faults, DegradedCapacitiesNeverExceedOriginal) {
  FatTreeTopology t(128);
  const auto caps = CapacityProfile::universal(t, 32);
  Rng rng(4);
  const auto degraded = inject_wire_faults(t, caps, 0.3, rng);
  for (NodeId v = 1; v <= t.num_nodes(); ++v) {
    EXPECT_LE(degraded.capacity(t, v), caps.capacity(t, v));
    EXPECT_GE(degraded.capacity(t, v), 1u);
  }
}

TEST(Faults, DeterministicForSameSeed) {
  FatTreeTopology t(64);
  const auto caps = CapacityProfile::universal(t, 16);
  Rng r1(7), r2(7);
  const auto a = inject_wire_faults(t, caps, 0.2, r1);
  const auto b = inject_wire_faults(t, caps, 0.2, r2);
  for (NodeId v = 1; v <= t.num_nodes(); ++v) {
    EXPECT_EQ(a.capacity(t, v), b.capacity(t, v));
  }
}

TEST(Faults, SchedulerStaysCorrectUnderFaults) {
  // The key robustness property: the Theorem 1 machinery needs no change;
  // the degraded capacities just raise λ.
  const std::uint32_t n = 128;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 32);
  Rng frng(11);
  const auto degraded = inject_wire_faults(t, caps, 0.3, frng);
  Rng grng(13);
  for (const auto& wl : standard_workloads(n, grng)) {
    const auto s = schedule_offline(t, degraded, wl.messages);
    EXPECT_TRUE(verify_schedule(t, degraded, wl.messages, s)) << wl.name;
  }
}

TEST(Faults, GracefulDegradationOfCycleCount) {
  // More faults -> no fewer cycles, and moderate damage costs only a
  // moderate factor (no cliff): the Section VII robustness claim.
  const std::uint32_t n = 256;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 64);
  Rng wrng(17);
  const auto m = stacked_permutations(n, 4, wrng);
  const auto base = schedule_offline(t, caps, m).num_cycles();

  std::size_t prev = base;
  for (double p : {0.1, 0.3, 0.5}) {
    Rng frng(19);
    const auto degraded = inject_wire_faults(t, caps, p, frng);
    const auto cycles = schedule_offline(t, degraded, m).num_cycles();
    EXPECT_GE(cycles + 1, prev) << p;  // monotone-ish (+1 noise slack)
    prev = cycles;
  }
  Rng frng(19);
  const auto degraded = inject_wire_faults(t, caps, 0.3, frng);
  const auto cycles = schedule_offline(t, degraded, m).num_cycles();
  EXPECT_LE(cycles, 4 * base) << "30% wire loss must not cost 4x";
}

TEST(Faults, OnlineRouterHonoursOverrides) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 32);
  // Cripple the root's left channel to one wire.
  const auto degraded = caps.with_channel_capacity(t, 2, 1);
  Rng wrng(23);
  const auto m = complement_traffic(n);
  Rng r1(29), r2(29);
  const auto healthy = route_online(t, caps, m, r1);
  const auto hurt = route_online(t, degraded, m, r2);
  EXPECT_GT(hurt.delivery_cycles, healthy.delivery_cycles);
  // Still delivers everything.
  std::uint64_t delivered = 0;
  for (auto d : hurt.delivered_per_cycle) delivered += d;
  EXPECT_EQ(delivered, m.size());
}

TEST(Faults, FailRandomChannelsCountsDamage) {
  FatTreeTopology t(64);
  const auto caps = CapacityProfile::universal(t, 64);
  Rng rng(31);
  FaultReport report;
  const auto degraded = fail_random_channels(t, caps, 10, rng, &report);
  EXPECT_LE(report.channels_at_floor, 10u);
  std::uint32_t at_one = 0;
  for (NodeId v = 1; v <= t.num_nodes(); ++v) {
    if (degraded.capacity(t, v) == 1 && caps.capacity(t, v) > 1) ++at_one;
  }
  EXPECT_EQ(at_one, report.channels_at_floor);
}

TEST(Faults, ZeroProbabilityReportIsAllZero) {
  // p = 0 must consume the RNG identically to any other p (one draw per
  // wire) yet report no damage at all.
  FatTreeTopology t(64);
  const auto caps = CapacityProfile::universal(t, 16);
  Rng rng(43);
  FaultReport report;
  inject_wire_faults(t, caps, 0.0, rng, &report);
  EXPECT_EQ(report.channels_degraded, 0u);
  EXPECT_EQ(report.channels_at_floor, 0u);
  EXPECT_FALSE(report.is_empty());
  EXPECT_DOUBLE_EQ(report.survival_rate(), 1.0);
}

TEST(Faults, FullFailureReportHitsEveryWideChannel) {
  FatTreeTopology t(32);
  const auto caps = CapacityProfile::universal(t, 16);
  Rng rng(44);
  FaultReport report;
  const auto degraded = inject_wire_faults(t, caps, 1.0, rng, &report);
  std::uint32_t wide = 0;  // channels with more than the floor to lose
  for (NodeId v = 1; v <= t.num_nodes(); ++v) {
    if (caps.capacity(t, v) > 1) ++wide;
  }
  EXPECT_EQ(report.channels_degraded, wide);
  EXPECT_EQ(report.channels_at_floor, wide);
  EXPECT_EQ(report.wires_after, t.num_nodes());
  EXPECT_DOUBLE_EQ(report.survival_rate(),
                   static_cast<double>(t.num_nodes()) /
                       static_cast<double>(report.wires_before));
  // wires_after == num channels exactly: everything sits on the floor.
  for (NodeId v = 1; v <= t.num_nodes(); ++v) {
    EXPECT_EQ(degraded.capacity(t, v), 1u);
  }
}

TEST(Faults, SurvivalRateOfEmptyReportIsNaNAndJsonNull) {
  // A default report has no wires; "100% survived" would be a lie. The
  // obs JSON writer turns the NaN into null, so reports stay honest.
  FaultReport report;
  EXPECT_TRUE(report.is_empty());
  EXPECT_TRUE(std::isnan(report.survival_rate()));

  JsonValue v = JsonValue::object();
  v["survival_rate"] = report.survival_rate();
  std::ostringstream os;
  v.write(os, 0);
  EXPECT_EQ(os.str(), "{\"survival_rate\":null}");
}

TEST(Faults, FailRandomChannelsCountsOnlyTransitions) {
  FatTreeTopology t(64);
  // Every channel already sits at the 1-wire floor: nothing can degrade.
  const auto floored = CapacityProfile::constant(t, 1);
  Rng rng(45);
  FaultReport report;
  const auto out = fail_random_channels(t, floored, 20, rng, &report);
  EXPECT_EQ(report.channels_degraded, 0u);
  EXPECT_EQ(report.channels_at_floor, 0u);
  EXPECT_EQ(report.wires_before, report.wires_after);
  EXPECT_FALSE(out.has_overrides());  // no-op overrides are skipped
}

TEST(Faults, FailRandomChannelsIsIdempotentOnDamage) {
  // Failing channels of an already-fully-floored profile reports zero
  // damage, however the picks land.
  FatTreeTopology t(32);
  const auto caps = CapacityProfile::universal(t, 8);
  Rng r1(46);
  const auto once = fail_random_channels(t, caps, t.num_nodes(), r1);
  Rng r2(47);
  FaultReport again;
  fail_random_channels(t, once, t.num_nodes(), r2, &again);
  EXPECT_EQ(again.channels_degraded, 0u);
  EXPECT_EQ(again.channels_at_floor, 0u);
  EXPECT_EQ(again.wires_before, again.wires_after);
}

// Golden determinism: both static injectors are pure functions of their
// seed. The exact values below pin the (seed, draw-order) contract — a
// refactor that reorders RNG draws shows up here, not in a flaky
// experiment far downstream.
TEST(Faults, GoldenWireFaultsForFixedSeed) {
  FatTreeTopology t(16);
  const auto caps = CapacityProfile::universal(t, 8);
  Rng rng(1234);
  FaultReport report;
  const auto degraded = inject_wire_faults(t, caps, 0.3, rng, &report);

  EXPECT_EQ(report.wires_before, 68u);
  EXPECT_EQ(report.wires_after, 52u);
  EXPECT_EQ(report.channels_degraded, 10u);
  EXPECT_EQ(report.channels_at_floor, 5u);
  const std::uint64_t expect_caps[31] = {5, 4, 6, 2, 3, 1, 3, 1, 2, 2, 2,
                                         1, 1, 1, 2, 1, 1, 1, 1, 1, 1, 1,
                                         1, 1, 1, 1, 1, 1, 1, 1, 1};
  for (NodeId v = 1; v <= t.num_nodes(); ++v) {
    EXPECT_EQ(degraded.capacity(t, v), expect_caps[v - 1]) << v;
  }
}

TEST(Faults, GoldenChannelFailuresForFixedSeed) {
  FatTreeTopology t(16);
  const auto caps = CapacityProfile::universal(t, 8);
  Rng rng(5678);
  FaultReport report;
  const auto degraded = fail_random_channels(t, caps, 4, rng, &report);

  // count = 4 picks, but two landed on channels already at the floor:
  // only the two genuine transitions are reported.
  EXPECT_EQ(report.wires_before, 68u);
  EXPECT_EQ(report.wires_after, 62u);
  EXPECT_EQ(report.channels_degraded, 2u);
  EXPECT_EQ(report.channels_at_floor, 2u);
  const std::uint64_t expect_caps[31] = {8, 6, 1, 4, 4, 4, 4, 2, 2, 2, 2,
                                         1, 2, 2, 2, 1, 1, 1, 1, 1, 1, 1,
                                         1, 1, 1, 1, 1, 1, 1, 1, 1};
  for (NodeId v = 1; v <= t.num_nodes(); ++v) {
    EXPECT_EQ(degraded.capacity(t, v), expect_caps[v - 1]) << v;
  }
}

TEST(Faults, LoadFactorRisesWithDamage) {
  const std::uint32_t n = 256;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 64);
  Rng wrng(37);
  const auto m = stacked_permutations(n, 2, wrng);
  const double base = load_factor(t, caps, m);
  Rng frng(41);
  const auto degraded = inject_wire_faults(t, caps, 0.4, frng);
  EXPECT_GT(load_factor(t, degraded, m), base);
}

TEST(Faults, OverrideAccessorRoundTrip) {
  FatTreeTopology t(16);
  const auto caps = CapacityProfile::universal(t, 8);
  const auto mod = caps.with_channel_capacity(t, 5, 3);
  EXPECT_TRUE(mod.has_overrides());
  EXPECT_EQ(mod.capacity(t, 5), 3u);
  EXPECT_EQ(mod.capacity(t, 4), caps.capacity(t, 4));
  // Chaining keeps earlier overrides.
  const auto mod2 = mod.with_channel_capacity(t, 7, 2);
  EXPECT_EQ(mod2.capacity(t, 5), 3u);
  EXPECT_EQ(mod2.capacity(t, 7), 2u);
}

}  // namespace
}  // namespace ft
