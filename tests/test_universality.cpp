#include "sim/universality.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/traffic.hpp"
#include "nets/builders.hpp"
#include "nets/layouts.hpp"
#include "util/prng.hpp"

namespace ft {
namespace {

TEST(Universality, IdentificationIsPermutation) {
  for (const auto& layout :
       {layout_mesh2d(8, 8), layout_hypercube(64), layout_binary_tree(64)}) {
    auto order = identify_processors(layout);
    ASSERT_EQ(order.size(), 64u);
    std::sort(order.begin(), order.end());
    for (std::uint32_t i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
  }
}

TEST(Universality, MeshSimulationReportSane) {
  const auto net = build_mesh2d(8, 8);
  const auto layout = layout_mesh2d(8, 8);
  Rng rng(1);
  const auto m = random_permutation_traffic(64, rng);
  const auto r = simulate_network_on_fattree(net, layout, m);
  EXPECT_EQ(r.n, 64u);
  EXPECT_GT(r.competitor_rounds, 0u);
  EXPECT_GT(r.ft_cycles, 0u);
  EXPECT_GT(r.slowdown, 0.0);
  EXPECT_DOUBLE_EQ(r.volume, 64.0);
  EXPECT_GE(r.ft_root_capacity, 1u);
}

TEST(Universality, SlowdownWithinPolylogEnvelope) {
  // Theorem 10: slowdown O(lg³ n). Constant chosen generously; the point
  // is polylog, not polynomial.
  struct Case {
    Network net;
    Layout3D layout;
  };
  std::vector<Case> cases;
  cases.push_back({build_hypercube(6), layout_hypercube(64)});
  cases.push_back({build_mesh2d(8, 8), layout_mesh2d(8, 8)});
  cases.push_back({build_binary_tree(6), layout_binary_tree(64)});
  Rng rng(3);
  const auto m = random_permutation_traffic(64, rng);
  for (const auto& c : cases) {
    const auto r = simulate_network_on_fattree(c.net, c.layout, m);
    EXPECT_LE(r.slowdown, 8.0 * r.lg3_n) << c.net.name();
  }
}

TEST(Universality, LocalTrafficOnMeshStaysCheap) {
  const auto net = build_mesh2d(8, 8);
  const auto layout = layout_mesh2d(8, 8);
  const auto m = fem_halo_traffic(8, 8);
  const auto r = simulate_network_on_fattree(net, layout, m);
  // Mesh halo exchange: a handful of rounds; the fat-tree keeps cycles
  // low because the balanced decomposition preserves locality.
  EXPECT_LE(r.competitor_rounds, 8u);
  EXPECT_LE(r.ft_cycles, 24u);
}

TEST(Universality, BiggerVolumeGivesBiggerRootCapacity) {
  Rng rng(5);
  const auto m = random_permutation_traffic(64, rng);
  const auto mesh = simulate_network_on_fattree(build_mesh2d(8, 8),
                                                layout_mesh2d(8, 8), m);
  const auto cube = simulate_network_on_fattree(build_hypercube(6),
                                                layout_hypercube(64), m);
  EXPECT_GT(cube.volume, mesh.volume);
  EXPECT_GE(cube.ft_root_capacity, mesh.ft_root_capacity);
}

TEST(Emulation, HypercubeStepCostsFewCycles) {
  // Emulating a degree-lg n hypercube step on the fat-tree: with degree-d
  // processor channels the whole step is a few delivery cycles.
  const auto net = build_hypercube(6);
  const auto r = emulate_fixed_connection(net, 64);
  EXPECT_EQ(r.n, 64u);
  EXPECT_EQ(r.degree, 6u);
  EXPECT_GE(r.cycles_per_step, 1u);
  EXPECT_LE(r.cycles_per_step, 12u);
}

TEST(Emulation, MeshStepIsAFewCycles) {
  const auto net = build_mesh2d(8, 8);
  const auto r = emulate_fixed_connection(net, 64);
  // λ <= 2 for a degree-4 planar step; the level-by-level scheduler turns
  // that into a handful of delivery cycles, still O(1) w.r.t. n.
  EXPECT_LE(r.cycles_per_step, 8u);
  EXPECT_LE(r.load_factor, 2.0);
}

TEST(Emulation, ShuffleExchangeStep) {
  const auto net = build_shuffle_exchange(6);
  const auto r = emulate_fixed_connection(net, 64);
  EXPECT_GE(r.cycles_per_step, 1u);
  EXPECT_LE(r.cycles_per_step, 8u);
}

class UniversalityWorkloads : public ::testing::TestWithParam<const char*> {};

TEST_P(UniversalityWorkloads, HypercubeSimulationAcrossTraffic) {
  const std::string name = GetParam();
  const std::uint32_t n = 64;
  Rng rng(7);
  MessageSet m;
  for (auto& wl : standard_workloads(n, rng)) {
    if (wl.name == name) m = wl.messages;
  }
  ASSERT_FALSE(m.empty());
  const auto r = simulate_network_on_fattree(build_hypercube(6),
                                             layout_hypercube(n), m);
  EXPECT_GT(r.ft_cycles, 0u);
  EXPECT_LE(r.slowdown, 8.0 * r.lg3_n) << name;
}

INSTANTIATE_TEST_SUITE_P(Traffic, UniversalityWorkloads,
                         ::testing::Values("random-perm", "bit-reversal",
                                           "transpose", "complement",
                                           "fem-halo"));

}  // namespace
}  // namespace ft
