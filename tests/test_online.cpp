#include "core/online_router.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/load.hpp"
#include "core/traffic.hpp"

namespace ft {
namespace {

TEST(OnlineRouter, EmptySet) {
  FatTreeTopology t(16);
  const auto caps = CapacityProfile::doubling(t);
  Rng rng(1);
  const auto r = route_online(t, caps, {}, rng);
  EXPECT_EQ(r.delivery_cycles, 0u);
  EXPECT_EQ(r.total_losses, 0u);
}

TEST(OnlineRouter, SelfMessagesTakeOneCycle) {
  FatTreeTopology t(8);
  const auto caps = CapacityProfile::constant(t, 1);
  Rng rng(2);
  const auto r = route_online(t, caps, {{3, 3}, {4, 4}}, rng);
  EXPECT_EQ(r.delivery_cycles, 1u);
}

TEST(OnlineRouter, OneCycleSetOnFullTreeNeedsOneCycle) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::doubling(t);
  Rng rng(3);
  const auto r = route_online(t, caps, complement_traffic(n), rng);
  EXPECT_EQ(r.delivery_cycles, 1u);
  EXPECT_EQ(r.total_losses, 0u);
}

TEST(OnlineRouter, DeliversEverything) {
  const std::uint32_t n = 128;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 32);
  Rng base(5);
  for (const auto& wl : standard_workloads(n, base)) {
    Rng rng(7);
    const auto r = route_online(t, caps, wl.messages, rng);
    std::uint64_t delivered = 0;
    for (auto d : r.delivered_per_cycle) delivered += d;
    EXPECT_EQ(delivered, wl.messages.size()) << wl.name;
  }
}

TEST(OnlineRouter, CyclesAtLeastLoadFactor) {
  const std::uint32_t n = 256;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 64);
  Rng gen(11);
  const auto m = stacked_permutations(n, 6, gen);
  const double lambda = load_factor(t, caps, m);
  Rng rng(13);
  const auto r = route_online(t, caps, m, rng);
  EXPECT_GE(static_cast<double>(r.delivery_cycles), std::floor(lambda));
}

TEST(OnlineRouter, CyclesWithinTheoreticalEnvelope) {
  // Extension [8]: O(λ + lg n · lg lg n) w.h.p.; we allow a generous
  // constant for the envelope check.
  const std::uint32_t n = 512;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 128);
  Rng gen(17);
  const auto m = stacked_permutations(n, 4, gen);
  const double lambda = load_factor(t, caps, m);
  const double lgn = std::log2(static_cast<double>(n));
  Rng rng(19);
  const auto r = route_online(t, caps, m, rng);
  EXPECT_LE(static_cast<double>(r.delivery_cycles),
            8.0 * (lambda + lgn * std::log2(lgn)) + 8.0);
}

TEST(OnlineRouter, DeterministicForSameSeed) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 16);
  Rng gen(23);
  const auto m = stacked_permutations(n, 3, gen);
  Rng r1(99), r2(99);
  const auto a = route_online(t, caps, m, r1);
  const auto b = route_online(t, caps, m, r2);
  EXPECT_EQ(a.delivery_cycles, b.delivery_cycles);
  EXPECT_EQ(a.total_losses, b.total_losses);
  EXPECT_EQ(a.delivered_per_cycle, b.delivered_per_cycle);
}

TEST(OnlineRouter, PartialConcentratorAlphaStillDelivers) {
  const std::uint32_t n = 128;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 32);
  Rng gen(29);
  const auto m = stacked_permutations(n, 2, gen);
  Rng rng(31);
  OnlineRouterOptions opts;
  opts.alpha = 0.75;
  const auto r = route_online(t, caps, m, rng, opts);
  std::uint64_t delivered = 0;
  for (auto d : r.delivered_per_cycle) delivered += d;
  EXPECT_EQ(delivered, m.size());
}

TEST(OnlineRouter, LossesAccountedConsistently) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::constant(t, 1);
  Rng gen(37);
  const auto m = stacked_permutations(n, 2, gen);
  Rng rng(41);
  const auto r = route_online(t, caps, m, rng);
  // attempts = deliveries + losses (each attempt either arrives or dies).
  std::uint64_t delivered = 0;
  for (auto d : r.delivered_per_cycle) delivered += d;
  EXPECT_EQ(r.total_attempts, delivered + r.total_losses);
}

TEST(OnlineRouter, HigherContentionMoreCycles) {
  const std::uint32_t n = 128;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 16);
  Rng gen(43);
  const auto light = stacked_permutations(n, 1, gen);
  const auto heavy = stacked_permutations(n, 12, gen);
  Rng r1(47), r2(47);
  const auto a = route_online(t, caps, light, r1);
  const auto b = route_online(t, caps, heavy, r2);
  EXPECT_LT(a.delivery_cycles, b.delivery_cycles);
}

}  // namespace
}  // namespace ft
