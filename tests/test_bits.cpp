#include "util/bits.hpp"

#include <gtest/gtest.h>

namespace ft {
namespace {

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 40));
  EXPECT_FALSE(is_pow2((1ull << 40) + 1));
}

TEST(Bits, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
}

TEST(Bits, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Bits, PaperLgIsAtLeastOne) {
  // The paper's lg n = max(1, ceil(log2 n)).
  EXPECT_EQ(paper_lg(1), 1u);
  EXPECT_EQ(paper_lg(2), 1u);
  EXPECT_EQ(paper_lg(3), 2u);
  EXPECT_EQ(paper_lg(1024), 10u);
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0u);
  EXPECT_EQ(ceil_div(1, 3), 1u);
  EXPECT_EQ(ceil_div(3, 3), 1u);
  EXPECT_EQ(ceil_div(4, 3), 2u);
  EXPECT_EQ(ceil_div(10, 5), 2u);
}

TEST(Bits, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Bits, ReverseBits) {
  EXPECT_EQ(reverse_bits(0b001, 3), 0b100u);
  EXPECT_EQ(reverse_bits(0b110, 3), 0b011u);
  EXPECT_EQ(reverse_bits(0b1011, 4), 0b1101u);
  // Involution property.
  for (std::uint64_t x = 0; x < 64; ++x) {
    EXPECT_EQ(reverse_bits(reverse_bits(x, 6), 6), x);
  }
}

TEST(Bits, Popcount) {
  EXPECT_EQ(popcount(0), 0u);
  EXPECT_EQ(popcount(0b1011), 3u);
  EXPECT_EQ(popcount(~std::uint64_t{0}), 64u);
}

}  // namespace
}  // namespace ft
