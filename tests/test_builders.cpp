#include "nets/builders.hpp"

#include <gtest/gtest.h>

#include <queue>

#include "nets/routing.hpp"

namespace ft {
namespace {

std::uint32_t reachable_from(const Network& net, std::uint32_t start) {
  std::vector<std::uint8_t> seen(net.num_nodes(), 0);
  std::queue<std::uint32_t> q;
  seen[start] = 1;
  q.push(start);
  std::uint32_t count = 1;
  while (!q.empty()) {
    const auto u = q.front();
    q.pop();
    for (auto lid : net.out_links(u)) {
      const auto v = net.link(lid).to;
      if (!seen[v]) {
        seen[v] = 1;
        ++count;
        q.push(v);
      }
    }
  }
  return count;
}

TEST(Builders, HypercubeCounts) {
  const auto net = build_hypercube(5);
  EXPECT_EQ(net.num_nodes(), 32u);
  EXPECT_EQ(net.num_links(), 32u * 5u);  // directed
  EXPECT_EQ(net.num_processors(), 32u);
  EXPECT_EQ(net.max_degree(), 5u);
  EXPECT_EQ(reachable_from(net, 0), 32u);
}

TEST(Builders, Mesh2dCounts) {
  const auto net = build_mesh2d(4, 6);
  EXPECT_EQ(net.num_nodes(), 24u);
  // Directed links: 2*(r*(c-1) + c*(r-1)).
  EXPECT_EQ(net.num_links(), 2u * (4 * 5 + 6 * 3));
  EXPECT_LE(net.max_degree(), 4u);
  EXPECT_EQ(reachable_from(net, 0), 24u);
}

TEST(Builders, Torus2dIsRegular) {
  const auto net = build_torus2d(4, 4);
  EXPECT_EQ(net.num_nodes(), 16u);
  EXPECT_EQ(net.num_links(), 2u * 2u * 16u);
  EXPECT_EQ(net.max_degree(), 4u);
  EXPECT_EQ(reachable_from(net, 5), 16u);
}

TEST(Builders, Mesh3dCounts) {
  const auto net = build_mesh3d(3, 3, 3);
  EXPECT_EQ(net.num_nodes(), 27u);
  EXPECT_EQ(net.max_degree(), 6u);
  EXPECT_EQ(reachable_from(net, 13), 27u);
}

TEST(Builders, ShuffleExchangeConnectivity) {
  const auto net = build_shuffle_exchange(4);
  EXPECT_EQ(net.num_nodes(), 16u);
  EXPECT_EQ(reachable_from(net, 0), 16u);
  EXPECT_LE(net.max_degree(), 3u);  // exchange bidi + shuffle out
}

TEST(Builders, ButterflyCounts) {
  const std::uint32_t k = 3;
  const auto net = build_butterfly(k);
  EXPECT_EQ(net.num_nodes(), (k + 1) * 8u);
  EXPECT_EQ(net.num_processors(), 8u);
  EXPECT_EQ(reachable_from(net, 0), net.num_nodes());
  // Each inner stage node has degree 4 bidi.
  EXPECT_LE(net.max_degree(), 4u);
}

TEST(Builders, BinaryTreeCounts) {
  const auto net = build_binary_tree(4);  // 16 leaves
  EXPECT_EQ(net.num_nodes(), 31u);
  EXPECT_EQ(net.num_processors(), 16u);
  EXPECT_EQ(net.max_degree(), 3u);
  EXPECT_EQ(reachable_from(net, 0), 31u);
}

TEST(Builders, BenesNetworkCounts) {
  const std::uint32_t k = 3;
  const auto net = build_benes(k);
  EXPECT_EQ(net.num_nodes(), (2 * k + 1) * 8u);
  EXPECT_EQ(net.num_processors(), 8u);
  EXPECT_EQ(reachable_from(net, 0), net.num_nodes());
}

TEST(Builders, TreeOfMeshesCounts) {
  const std::uint32_t depth = 4;  // 16 processors
  const auto net = build_tree_of_meshes(depth);
  // Node widths: level l has 2^l arrays of 16/2^l switches = 16 switches
  // per level, (depth+1) levels.
  EXPECT_EQ(net.num_nodes(), 16u * 5u);
  EXPECT_EQ(net.num_processors(), 16u);
  EXPECT_EQ(reachable_from(net, 0), net.num_nodes());
  EXPECT_LE(net.max_degree(), 4u);  // array neighbours + trunk links
}

TEST(Builders, TreeOfMeshesRoutesEveryPair) {
  const auto net = build_tree_of_meshes(3);
  for (std::uint32_t a = 0; a < 8; ++a) {
    for (std::uint32_t b = 0; b < 8; ++b) {
      if (a == b) continue;
      const auto r = bfs_route(net, net.node_of_processor(a),
                               net.node_of_processor(b));
      EXPECT_FALSE(r.empty());
    }
  }
}

TEST(Builders, HypercubeNeighborsDifferInOneBit) {
  const auto net = build_hypercube(6);
  for (std::uint32_t lid = 0; lid < net.num_links(); ++lid) {
    const auto& l = net.link(lid);
    const std::uint32_t x = l.from ^ l.to;
    EXPECT_EQ(x & (x - 1), 0u);
    EXPECT_NE(x, 0u);
  }
}

TEST(Builders, ProcessorNodesValid) {
  for (const auto& net :
       {build_hypercube(4), build_butterfly(4), build_binary_tree(4),
        build_benes(4), build_shuffle_exchange(4)}) {
    for (std::uint32_t p = 0; p < net.num_processors(); ++p) {
      EXPECT_LT(net.node_of_processor(p), net.num_nodes()) << net.name();
    }
  }
}

}  // namespace
}  // namespace ft
