// Parity tests for the unified delivery-cycle engine: every old-API entry
// point must produce identical results in serial and parallel mode (the
// engine's per-(seed, cycle, channel) arbitration streams and fixed FIFO
// channel ranges make thread scheduling invisible), and the offline replay
// must reproduce a schedule exactly.
#include <gtest/gtest.h>

#include <numeric>

#include "core/offline_scheduler.hpp"
#include "core/online_router.hpp"
#include "core/replay.hpp"
#include "core/traffic.hpp"
#include "engine/engine.hpp"
#include "engine/fat_tree_model.hpp"
#include "kary/kary_sim.hpp"
#include "nets/builders.hpp"
#include "nets/routing.hpp"
#include "nets/store_forward.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ft {
namespace {

OnlineRoutingResult run_online(const FatTreeTopology& t,
                               const CapacityProfile& caps,
                               const MessageSet& m, double alpha,
                               bool parallel) {
  Rng rng(12345);  // same seed both modes: the engine stream is derived
  OnlineRouterOptions opts;
  opts.alpha = alpha;
  opts.parallel = parallel;
  return route_online(t, caps, m, rng, opts);
}

TEST(EngineParity, OnlineSerialEqualsParallel) {
  const std::uint32_t n = 128;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 32);
  Rng gen(7);
  const auto m = stacked_permutations(n, 4, gen);

  for (const double alpha : {1.0, 0.75}) {
    const auto serial = run_online(t, caps, m, alpha, false);
    const auto parallel = run_online(t, caps, m, alpha, true);
    EXPECT_EQ(serial.delivery_cycles, parallel.delivery_cycles)
        << "alpha=" << alpha;
    EXPECT_EQ(serial.delivered_per_cycle, parallel.delivered_per_cycle)
        << "alpha=" << alpha;
    EXPECT_EQ(serial.total_attempts, parallel.total_attempts)
        << "alpha=" << alpha;
    EXPECT_EQ(serial.total_losses, parallel.total_losses)
        << "alpha=" << alpha;
    EXPECT_FALSE(serial.gave_up);
    const auto delivered =
        std::accumulate(serial.delivered_per_cycle.begin(),
                        serial.delivered_per_cycle.end(), std::uint64_t{0});
    EXPECT_EQ(delivered, m.size());
  }
}

TEST(EngineParity, OnlineDeterministicAcrossRuns) {
  FatTreeTopology t(64);
  const auto caps = CapacityProfile::doubling(t);
  Rng gen(11);
  const auto m = random_permutation_traffic(64, gen);
  const auto a = run_online(t, caps, m, 1.0, false);
  const auto b = run_online(t, caps, m, 1.0, false);
  EXPECT_EQ(a.delivery_cycles, b.delivery_cycles);
  EXPECT_EQ(a.delivered_per_cycle, b.delivered_per_cycle);
}

TEST(EngineParity, StoreForwardSerialEqualsParallel) {
  const auto net = build_hypercube(6);
  Rng traffic(22);
  const auto m = random_permutation_traffic(64, traffic);
  const auto routes = route_all_bfs(net, m);

  const auto serial = simulate_store_forward(net, routes);
  StoreForwardOptions popts;
  popts.parallel = true;
  const auto parallel = simulate_store_forward(net, routes, popts);

  EXPECT_EQ(serial.rounds, parallel.rounds);
  EXPECT_EQ(serial.total_hops, parallel.total_hops);
  EXPECT_EQ(serial.max_queue, parallel.max_queue);
  EXPECT_DOUBLE_EQ(serial.mean_latency, parallel.mean_latency);
}

TEST(EngineParity, KarySerialEqualsParallel) {
  KaryTree tree(4, 3);  // 64 processors
  Rng perm_rng(31);
  std::vector<std::uint32_t> perm(tree.num_processors());
  std::iota(perm.begin(), perm.end(), 0u);
  perm_rng.shuffle(perm);

  Rng r1(33), r2(33);  // identical routing decisions in both runs
  const auto serial =
      simulate_kary_permutation(tree, perm, AscentPolicy::Random, r1);
  KarySimOptions popts;
  popts.parallel = true;
  const auto parallel =
      simulate_kary_permutation(tree, perm, AscentPolicy::Random, r2, popts);

  EXPECT_EQ(serial.rounds, parallel.rounds);
  EXPECT_EQ(serial.max_link_load, parallel.max_link_load);
  EXPECT_DOUBLE_EQ(serial.mean_link_load, parallel.mean_link_load);
  EXPECT_EQ(serial.max_route_hops, parallel.max_route_hops);
}

TEST(EngineParity, ReplayReproducesSchedule) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 16);
  Rng gen(41);
  auto m = stacked_permutations(n, 3, gen);
  m.push_back({5, 5});  // a local message rides along
  const auto schedule = schedule_offline(t, caps, m);
  ASSERT_TRUE(verify_schedule(t, caps, m, schedule));

  for (const bool parallel : {false, true}) {
    ReplayOptions opts;
    opts.parallel = parallel;
    const auto replay = replay_schedule(t, caps, schedule, opts);
    EXPECT_EQ(replay.cycles, schedule.num_cycles());
    EXPECT_EQ(replay.delivered, schedule.total_messages());
    EXPECT_EQ(replay.capacity_violations, 0u);
    ASSERT_EQ(replay.delivered_per_cycle.size(), schedule.num_cycles());
    for (std::size_t i = 0; i < schedule.num_cycles(); ++i) {
      EXPECT_EQ(replay.delivered_per_cycle[i], schedule.cycles[i].size());
    }
  }
}

TEST(EngineParity, ReplayCountsCapacityViolations) {
  FatTreeTopology t(8);
  const auto caps = CapacityProfile::constant(t, 1);
  // Two messages through the same root trunk in one "cycle".
  Schedule s;
  s.cycles.push_back({{0, 4}, {1, 5}});
  const auto replay = replay_schedule(t, caps, s);
  EXPECT_GT(replay.capacity_violations, 0u);
  EXPECT_EQ(replay.delivered, 2u);  // tally mode still delivers
  EXPECT_FALSE(verify_schedule(t, caps, {{0, 4}, {1, 5}}, s));
}

TEST(EngineParity, GaveUpIsReportedNotSilent) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::constant(t, 1);
  Rng gen(51);
  const auto m = stacked_permutations(n, 8, gen);
  Rng rng(52);
  OnlineRouterOptions opts;
  opts.max_cycles = 1;  // far too few for 8 stacked permutations
  const auto r = route_online(t, caps, m, rng, opts);
  EXPECT_TRUE(r.gave_up);
  EXPECT_EQ(r.delivery_cycles, 1u);
  const auto delivered =
      std::accumulate(r.delivered_per_cycle.begin(),
                      r.delivered_per_cycle.end(), std::uint64_t{0});
  EXPECT_LT(delivered, m.size());
}

TEST(EngineParity, MetricsObserverMatchesResult) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 16);
  Rng gen(61);
  const auto m = stacked_permutations(n, 3, gen);

  EngineMetrics metrics;
  Rng rng(62);
  OnlineRouterOptions opts;
  opts.observer = &metrics;
  const auto r = route_online(t, caps, m, rng, opts);

  EXPECT_EQ(metrics.cycles(), r.delivery_cycles);
  EXPECT_EQ(metrics.total_attempts(), r.total_attempts);
  EXPECT_EQ(metrics.total_losses(), r.total_losses);
  // Every attempt either dies or delivers within its cycle.
  const auto engine_delivered =
      std::accumulate(metrics.delivered_per_cycle.begin(),
                      metrics.delivered_per_cycle.end(), std::uint64_t{0});
  EXPECT_EQ(metrics.total_attempts() - metrics.total_losses(),
            engine_delivered);
  EXPECT_EQ(metrics.peak_queue_depth(), 0u);  // lossy mode never queues

  // The utilization histogram covers every wire-budget channel once per
  // cycle: (num_nodes - 1) node channels x 2 directions.
  const std::uint64_t budget_channels = (t.num_nodes() - 1) * 2ull;
  EXPECT_EQ(metrics.utilization_histogram().total(),
            budget_channels * metrics.cycles());

  const double root_util = metrics.level_utilization(1);
  EXPECT_GT(root_util, 0.0);
  EXPECT_LE(root_util, 1.0);
}

// The traced event stream must be byte-identical in serial and parallel
// mode: lossy events are derived on the coordinating thread, and FIFO
// per-range event logs are replayed in ascending-channel range order.
TEST(EngineParity, LossyTraceSerialEqualsParallel) {
  const std::uint32_t n = 128;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 32);
  Rng gen(71);
  const auto m = stacked_permutations(n, 4, gen);
  // Self messages are delivered locally without entering the engine, so
  // they emit no events.
  std::uint64_t routed = 0;
  for (const auto& msg : m) {
    if (msg.src != msg.dst) ++routed;
  }

  std::vector<std::vector<MessageEvent>> streams;
  for (const bool parallel : {false, true}) {
    TraceSink trace;
    Rng rng(72);
    OnlineRouterOptions opts;
    opts.parallel = parallel;
    opts.observer = &trace;
    const auto r = route_online(t, caps, m, rng, opts);
    EXPECT_FALSE(r.gave_up);

    std::uint64_t injects = 0, attempts = 0, losses = 0, delivers = 0;
    for (const MessageEvent& e : trace.message_events()) {
      switch (e.kind) {
        case MessageEventKind::Inject: ++injects; break;
        case MessageEventKind::Attempt: ++attempts; break;
        case MessageEventKind::Loss: ++losses; break;
        case MessageEventKind::Deliver: ++delivers; break;
        default: break;
      }
    }
    EXPECT_EQ(injects, routed);
    EXPECT_EQ(delivers, routed);
    EXPECT_EQ(attempts, r.total_attempts);
    EXPECT_EQ(losses, r.total_losses);
    streams.push_back(trace.message_events());
  }
  EXPECT_EQ(streams[0], streams[1]);
}

// The fault subsystem must preserve the engine's core guarantee: with an
// active FaultPlan (flaps + a burst) and a retry policy, serial and
// parallel runs still agree on cycle counts, per-cycle deliveries, every
// fault/retry counter, and the full traced event stream. FaultState
// advances only on the coordinating thread and every flap draw comes from
// a private (seed, cycle, channel) stream, so thread count is invisible.
TEST(EngineParity, TransientFaultsSerialEqualsParallel) {
  const std::uint32_t n = 128;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 32);
  Rng gen(91);
  const auto m = stacked_permutations(n, 4, gen);

  FaultPlan plan(92);
  plan.set_flaps({0.03, 0.3});
  plan.add_burst({/*at_cycle=*/2, /*duration=*/2, /*count=*/8});

  std::vector<OnlineRoutingResult> results;
  std::vector<std::vector<MessageEvent>> streams;
  for (const bool parallel : {false, true}) {
    TraceSink trace;
    Rng rng(93);
    OnlineRouterOptions opts;
    opts.parallel = parallel;
    opts.fault_plan = &plan;
    opts.retry.exponential_backoff = true;
    opts.observer = &trace;
    results.push_back(route_online(t, caps, m, rng, opts));
    streams.push_back(trace.message_events());
  }
  const auto& s = results[0];
  const auto& p = results[1];
  EXPECT_EQ(s.delivery_cycles, p.delivery_cycles);
  EXPECT_EQ(s.delivered_per_cycle, p.delivered_per_cycle);
  EXPECT_EQ(s.total_attempts, p.total_attempts);
  EXPECT_EQ(s.total_losses, p.total_losses);
  EXPECT_EQ(s.total_backoffs, p.total_backoffs);
  EXPECT_EQ(s.messages_given_up, p.messages_given_up);
  EXPECT_EQ(s.fault_down_events, p.fault_down_events);
  EXPECT_EQ(s.fault_up_events, p.fault_up_events);
  EXPECT_EQ(s.degraded_channel_cycles, p.degraded_channel_cycles);
  EXPECT_EQ(streams[0], streams[1]);
  // The scenario is not degenerate: faults struck and everything was
  // still delivered.
  EXPECT_GT(s.fault_down_events, 0u);
  EXPECT_FALSE(s.gave_up);
  const auto delivered =
      std::accumulate(s.delivered_per_cycle.begin(),
                      s.delivered_per_cycle.end(), std::uint64_t{0});
  EXPECT_EQ(delivered, m.size());
}

// Every routing discipline in the zoo must preserve the engine's
// serial ≡ parallel contract across all executors: unsharded parallel,
// subtree-sharded with the parallel spine, and sharded with the serial
// spine must all reproduce the serial run bit for bit — counters and the
// full traced event stream. The wire-selecting policies (dmod, rlb) pick
// winners by pending index and hashed wire claims, the adaptive policy
// folds its occupancy feedback on the coordinating thread only; none of
// it may depend on thread count.
TEST(EngineParity, RoutingPoliciesSerialEqualsParallel) {
  const std::uint32_t n = 128;
  FatTreeTopology t(n);
  // Unit capacities + a persistent hotspot: every arbitration path is
  // exercised (long over-limit streaks for the adaptive feedback, real
  // wire contention for dmod/rlb), nothing degenerates to uncontended.
  const auto caps = CapacityProfile::constant(t, 1);
  Rng gen(111);
  auto m = persistent_hotspot_traffic(n, n / 3, 24, 0, gen);
  const auto local = stacked_permutations(n, 2, gen);
  m.insert(m.end(), local.begin(), local.end());

  struct Executor {
    const char* name;
    bool parallel;
    std::uint32_t shard_level;
    bool parallel_spine;
  };
  const Executor executors[] = {
      {"serial", false, kShardLevelAuto, true},
      {"parallel-unsharded", true, 0, true},
      {"parallel-sharded", true, kShardLevelAuto, true},
      {"parallel-serial-spine", true, kShardLevelAuto, false},
  };

  for (const RoutingPolicy pol :
       {RoutingPolicy::ObliviousRandom, RoutingPolicy::DeterministicDmod,
        RoutingPolicy::RandomLoadBalanced,
        RoutingPolicy::AdaptiveOccupancy}) {
    std::vector<OnlineRoutingResult> results;
    std::vector<std::vector<MessageEvent>> streams;
    for (const Executor& ex : executors) {
      TraceSink trace;
      Rng rng(112);
      OnlineRouterOptions opts;
      opts.policy = pol;
      opts.parallel = ex.parallel;
      opts.shard_level = ex.shard_level;
      opts.parallel_spine = ex.parallel_spine;
      opts.observer = &trace;
      results.push_back(route_online(t, caps, m, rng, opts));
      streams.push_back(trace.message_events());
    }
    const auto& s = results[0];
    EXPECT_FALSE(s.gave_up) << static_cast<int>(pol);
    const auto delivered =
        std::accumulate(s.delivered_per_cycle.begin(),
                        s.delivered_per_cycle.end(), std::uint64_t{0});
    EXPECT_EQ(delivered, m.size()) << static_cast<int>(pol);
    if (pol == RoutingPolicy::AdaptiveOccupancy) {
      // The feedback actually engaged: hot-channel losers were parked.
      EXPECT_GT(s.total_backoffs, 0u);
    }
    for (std::size_t e = 1; e < results.size(); ++e) {
      const auto& p = results[e];
      EXPECT_EQ(s.delivery_cycles, p.delivery_cycles)
          << executors[e].name << " policy " << static_cast<int>(pol);
      EXPECT_EQ(s.delivered_per_cycle, p.delivered_per_cycle)
          << executors[e].name << " policy " << static_cast<int>(pol);
      EXPECT_EQ(s.total_attempts, p.total_attempts)
          << executors[e].name << " policy " << static_cast<int>(pol);
      EXPECT_EQ(s.total_losses, p.total_losses)
          << executors[e].name << " policy " << static_cast<int>(pol);
      EXPECT_EQ(s.total_backoffs, p.total_backoffs)
          << executors[e].name << " policy " << static_cast<int>(pol);
      EXPECT_EQ(s.messages_given_up, p.messages_given_up)
          << executors[e].name << " policy " << static_cast<int>(pol);
      EXPECT_EQ(streams[0], streams[e])
          << executors[e].name << " policy " << static_cast<int>(pol);
    }
  }
}

// Golden determinism for correlated subtree kills: for two plan seeds the
// full timeline — cycle count, kill/fault counters, and an FNV-1a
// fingerprint of the traced event stream — is pinned, and serial and
// parallel runs agree bit-for-bit. Any change to the per-(seed, cycle,
// node) storm streams, the kill → forced-down expansion, or event
// ordering shows up here as a changed fingerprint.
TEST(EngineParity, SubtreeKillGoldenTimelines) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 16);
  Rng gen(101);
  const auto m = stacked_permutations(n, 3, gen);

  struct Golden {
    std::uint64_t plan_seed;
    std::uint32_t delivery_cycles;
    std::uint64_t subtree_kill_events;
    std::uint64_t fault_down_events;
    std::uint64_t fault_up_events;
    std::uint64_t event_fingerprint;
  };
  const Golden goldens[] = {
      {201, 453, 80, 4774, 4774, 733948185611607479ull},
      {202, 453, 79, 4712, 4712, 7881268179795093087ull},
  };

  for (const Golden& g : goldens) {
    FaultPlan plan(g.plan_seed);
    plan.set_domains(fat_tree_subtree_domains(t, 2));
    plan.add_subtree_kill({/*node=*/4, /*at_cycle=*/2, /*duration=*/5});
    plan.set_storm({0.05, 1, 6});

    std::vector<OnlineRoutingResult> results;
    std::vector<std::uint64_t> prints;
    for (const bool parallel : {false, true}) {
      TraceSink trace;
      Rng rng(777);  // engine seed fixed; only the plan seed varies
      OnlineRouterOptions opts;
      opts.parallel = parallel;
      opts.fault_plan = &plan;
      opts.retry.exponential_backoff = true;
      opts.observer = &trace;
      results.push_back(route_online(t, caps, m, rng, opts));

      std::uint64_t h = 14695981039346656037ull;  // FNV-1a over events
      const auto mix = [&h](std::uint64_t v) {
        h = (h ^ v) * 1099511628211ull;
      };
      for (const MessageEvent& e : trace.message_events()) {
        mix(static_cast<std::uint64_t>(e.kind));
        mix(e.message);
        mix(e.cycle);
        mix(e.channel);
      }
      prints.push_back(h);
    }
    const auto& s = results[0];
    const auto& p = results[1];
    EXPECT_EQ(s.delivery_cycles, p.delivery_cycles);
    EXPECT_EQ(s.delivered_per_cycle, p.delivered_per_cycle);
    EXPECT_EQ(s.subtree_kill_events, p.subtree_kill_events);
    EXPECT_EQ(s.fault_down_events, p.fault_down_events);
    EXPECT_EQ(s.fault_up_events, p.fault_up_events);
    EXPECT_EQ(prints[0], prints[1]);

    EXPECT_FALSE(s.gave_up);
    const auto delivered =
        std::accumulate(s.delivered_per_cycle.begin(),
                        s.delivered_per_cycle.end(), std::uint64_t{0});
    EXPECT_EQ(delivered, m.size());

    EXPECT_EQ(s.delivery_cycles, g.delivery_cycles)
        << "plan seed " << g.plan_seed;
    EXPECT_EQ(s.subtree_kill_events, g.subtree_kill_events)
        << "plan seed " << g.plan_seed;
    EXPECT_EQ(s.fault_down_events, g.fault_down_events)
        << "plan seed " << g.plan_seed;
    EXPECT_EQ(s.fault_up_events, g.fault_up_events)
        << "plan seed " << g.plan_seed;
    EXPECT_EQ(prints[0], g.event_fingerprint)
        << "plan seed " << g.plan_seed;
  }
}

TEST(EngineParity, FifoTraceSerialEqualsParallel) {
  const auto net = build_hypercube(6);
  Rng traffic(81);
  const auto m = random_permutation_traffic(64, traffic);
  const auto routes = route_all_bfs(net, m);

  std::vector<std::vector<MessageEvent>> streams;
  for (const bool parallel : {false, true}) {
    TraceSink trace;
    StoreForwardOptions opts;
    opts.parallel = parallel;
    opts.observer = &trace;
    const auto r = simulate_store_forward(net, routes, opts);

    std::uint64_t hops = 0;
    for (const MessageEvent& e : trace.message_events()) {
      if (e.kind == MessageEventKind::Hop) ++hops;
    }
    EXPECT_EQ(hops, r.total_hops);
    streams.push_back(trace.message_events());
  }
  EXPECT_EQ(streams[0], streams[1]);
}

}  // namespace
}  // namespace ft
