#include "nets/store_forward.hpp"

#include <gtest/gtest.h>

#include "core/traffic.hpp"
#include "nets/builders.hpp"
#include "util/prng.hpp"

namespace ft {
namespace {

TEST(StoreForward, EmptyRoutesFinishInstantly) {
  const auto net = build_mesh2d(3, 3);
  const auto r = simulate_store_forward(net, {});
  EXPECT_EQ(r.rounds, 0u);
}

TEST(StoreForward, SingleMessageTakesPathLengthRounds) {
  const auto net = build_mesh2d(1, 8);  // a line
  const auto route = bfs_route(net, 0, 7);
  const auto r = simulate_store_forward(net, {route});
  EXPECT_EQ(r.rounds, 7u);
  EXPECT_EQ(r.total_hops, 7u);
  EXPECT_DOUBLE_EQ(r.mean_latency, 7.0);
}

TEST(StoreForward, ContentionSerializesOnSharedLink) {
  // Two identical routes share every link: the second message queues one
  // round behind the first on the first hop and stays behind.
  const auto net = build_mesh2d(1, 4);
  const auto ra = bfs_route(net, 0, 3);
  const auto r = simulate_store_forward(net, {ra, ra});
  EXPECT_EQ(r.rounds, 4u);  // 3 hops + 1 round of queueing

  // Staggered sources on a line pipeline perfectly instead.
  const auto rb = bfs_route(net, 1, 3);
  const auto r2 = simulate_store_forward(net, {ra, rb});
  EXPECT_EQ(r2.rounds, 3u);
}

TEST(StoreForward, SelfMessagesDoNotBlock) {
  const auto net = build_mesh2d(2, 2);
  const std::vector<Route> routes{{}, {}, bfs_route(net, 0, 3)};
  const auto r = simulate_store_forward(net, routes);
  EXPECT_EQ(r.rounds, 2u);
}

TEST(StoreForward, ResultAtLeastLowerBound) {
  const auto net = build_hypercube(6);
  Rng rng(1);
  const auto m = random_permutation_traffic(64, rng);
  const auto routes = route_all_bfs(net, m);
  const auto r = simulate_store_forward(net, routes);
  EXPECT_GE(r.rounds, store_forward_lower_bound(net, routes));
}

TEST(StoreForward, LowerBoundComputesCongestionAndDilation) {
  const auto net = build_mesh2d(1, 5);
  const auto long_route = bfs_route(net, 0, 4);
  EXPECT_EQ(store_forward_lower_bound(net, {long_route}), 4u);
  // Four messages over one link: congestion 4 exceeds dilation 1.
  const auto hop = bfs_route(net, 1, 2);
  EXPECT_EQ(store_forward_lower_bound(net, {hop, hop, hop, hop}), 4u);
}

TEST(StoreForward, PermutationOnHypercubeIsFast) {
  // Random permutations on a hypercube route in O(lg n)-ish rounds.
  const auto net = build_hypercube(8);
  Rng rng(3);
  const auto m = random_permutation_traffic(256, rng);
  const auto routes = route_all_bfs(net, m);
  const auto r = simulate_store_forward(net, routes);
  EXPECT_LE(r.rounds, 40u);
  EXPECT_GE(r.rounds, 8u);
}

TEST(StoreForward, TreeRootIsABottleneck) {
  // The simple (non-fat) tree serializes root crossings: complement
  // traffic needs Ω(n) rounds — the paper's motivation for fattening.
  const std::uint32_t n = 64;
  const auto net = build_binary_tree(6);
  const auto m = complement_traffic(n);
  const auto routes = route_all_bfs(net, m);
  const auto r = simulate_store_forward(net, routes);
  EXPECT_GE(r.rounds, n / 2);
}

TEST(StoreForward, CapacityTwoHalvesSerialization) {
  Network net(2, "pair");
  net.add_link(0, 1, 2);
  const Route hop{0};
  const auto r = simulate_store_forward(net, {hop, hop, hop, hop});
  EXPECT_EQ(r.rounds, 2u);
}

TEST(StoreForward, MeanLatencyBelowMakespan) {
  const auto net = build_mesh2d(8, 8);
  Rng rng(5);
  const auto m = random_permutation_traffic(64, rng);
  const auto routes = route_all_bfs(net, m);
  const auto r = simulate_store_forward(net, routes);
  EXPECT_LE(r.mean_latency, static_cast<double>(r.rounds));
  EXPECT_GT(r.mean_latency, 0.0);
}

}  // namespace
}  // namespace ft
