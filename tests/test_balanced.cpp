#include "layout/balanced.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "nets/layouts.hpp"

namespace ft {
namespace {

TEST(Balanced, ProcessorOrderIsPermutation) {
  const auto layout = layout_mesh2d(8, 8);
  const auto tree = cut_plane_decomposition(layout);
  const BalancedDecomposition balanced(tree);
  auto order = balanced.processor_order();
  ASSERT_EQ(order.size(), 64u);
  std::sort(order.begin(), order.end());
  for (std::uint32_t i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST(Balanced, RootHoldsAllProcessors) {
  const auto layout = layout_mesh3d(4, 4, 4);
  const auto tree = cut_plane_decomposition(layout);
  const BalancedDecomposition balanced(tree);
  EXPECT_EQ(balanced.root().num_processors, 64u);
  EXPECT_LE(balanced.root().segments.size(), 2u);
}

TEST(Balanced, ProcessorsHalveAtEveryNode) {
  const auto layout = layout_hypercube(128);
  const auto tree = cut_plane_decomposition(layout);
  const BalancedDecomposition balanced(tree);
  for (const auto& node : balanced.nodes()) {
    if (node.left < 0) continue;
    const auto& l = balanced.nodes()[static_cast<std::size_t>(node.left)];
    const auto& r = balanced.nodes()[static_cast<std::size_t>(node.right)];
    EXPECT_EQ(l.num_processors + r.num_processors, node.num_processors);
    EXPECT_LE(l.num_processors, (node.num_processors + 1) / 2);
    EXPECT_LE(r.num_processors, (node.num_processors + 1) / 2);
  }
}

TEST(Balanced, EveryNodeHasAtMostTwoSegments) {
  const auto layout = layout_mesh2d(16, 8);
  const auto tree = cut_plane_decomposition(layout);
  const BalancedDecomposition balanced(tree);
  for (const auto& node : balanced.nodes()) {
    EXPECT_GE(node.segments.size(), 1u);
    EXPECT_LE(node.segments.size(), 2u);
  }
}

TEST(Balanced, DepthIsLogarithmicInProcessors) {
  const auto layout = layout_mesh2d(16, 16);  // 256 processors
  const auto tree = cut_plane_decomposition(layout);
  const BalancedDecomposition balanced(tree);
  // Processors halve per level: depth <= lg n + tree-depth slack for
  // isolating the last pearl runs.
  EXPECT_GE(balanced.depth(), 8u);
  EXPECT_LE(balanced.depth(), 8u + tree.depth());
}

TEST(Balanced, BandwidthBoundDominatesChildBounds) {
  // Not a theorem, but the forest bound should be positive everywhere and
  // the root bound should equal the whole-line bound (one complete tree).
  const auto layout = layout_mesh3d(4, 4, 4);
  const auto tree = cut_plane_decomposition(layout);
  const BalancedDecomposition balanced(tree);
  EXPECT_DOUBLE_EQ(balanced.root().bandwidth_bound, tree.bandwidth(1));
  for (const auto& node : balanced.nodes()) {
    EXPECT_GT(node.bandwidth_bound, 0.0);
  }
}

TEST(Balanced, Corollary9WidthEnvelope) {
  // Corollary 9 for a (w, ∛4) decomposition tree: the balanced tree's
  // width at depth k stays within (4a/(a−1))·w_k with a = ∛4 ≈ 1.587,
  // i.e. factor ≈ 10.8. We allow the full constant.
  const auto layout = layout_mesh3d(8, 8, 8);
  const auto tree = cut_plane_decomposition(layout);
  const BalancedDecomposition balanced(tree);
  const double a = std::cbrt(4.0);
  const double factor = 4.0 * a / (a - 1.0);
  const std::uint32_t common =
      std::min(balanced.depth(), tree.depth());
  for (std::uint32_t d = 0; d <= common; ++d) {
    const double wb = balanced.width_at_depth(d);
    if (wb == 0.0) continue;
    EXPECT_LE(wb, factor * tree.width_at_depth(d) + 1e-9) << "depth " << d;
  }
}

TEST(Balanced, SegmentsNestWithinParent) {
  const auto layout = layout_mesh2d(8, 4);
  const auto tree = cut_plane_decomposition(layout);
  const BalancedDecomposition balanced(tree);
  auto contained = [](const Segment& inner,
                      const std::vector<Segment>& outer) {
    for (const auto& o : outer) {
      if (inner.begin >= o.begin && inner.end <= o.end) return true;
    }
    return false;
  };
  for (const auto& node : balanced.nodes()) {
    if (node.left < 0) continue;
    for (const auto child_idx : {node.left, node.right}) {
      const auto& child =
          balanced.nodes()[static_cast<std::size_t>(child_idx)];
      for (const auto& seg : child.segments) {
        EXPECT_TRUE(contained(seg, node.segments));
      }
    }
  }
}

TEST(Balanced, OrderConsistentWithRecursion) {
  // The first half of processor_order() must be exactly the processors of
  // the root's left child.
  const auto layout = layout_mesh2d(8, 8);
  const auto tree = cut_plane_decomposition(layout);
  const BalancedDecomposition balanced(tree);
  const auto& root = balanced.root();
  ASSERT_GE(root.left, 0);
  const auto& left = balanced.nodes()[static_cast<std::size_t>(root.left)];
  const auto& order = balanced.processor_order();
  // Collect the left child's processors from its segments.
  std::vector<std::uint32_t> left_procs;
  for (const auto& seg : left.segments) {
    for (std::uint64_t pos = seg.begin; pos < seg.end; ++pos) {
      if (tree.processor_at(pos) >= 0) {
        left_procs.push_back(
            static_cast<std::uint32_t>(tree.processor_at(pos)));
      }
    }
  }
  std::vector<std::uint32_t> first_half(order.begin(),
                                        order.begin() + left_procs.size());
  std::sort(left_procs.begin(), left_procs.end());
  std::sort(first_half.begin(), first_half.end());
  EXPECT_EQ(left_procs, first_half);
}

}  // namespace
}  // namespace ft
