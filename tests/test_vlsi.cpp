#include "layout/vlsi_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "layout/geometry.hpp"

namespace ft {
namespace {

TEST(Geometry, BoxBasics) {
  Box3 b{Point3{0, 0, 0}, Point3{2, 3, 4}};
  EXPECT_DOUBLE_EQ(b.volume(), 24.0);
  EXPECT_DOUBLE_EQ(b.surface_area(), 2.0 * (6 + 12 + 8));
  EXPECT_TRUE(b.contains(Point3{1, 1, 1}));
  EXPECT_FALSE(b.contains(Point3{2, 1, 1}));  // hi is exclusive
  EXPECT_FALSE(b.contains(Point3{-0.1, 1, 1}));
}

TEST(Geometry, HalveSplitsVolume) {
  Box3 b{Point3{0, 0, 0}, Point3{4, 4, 4}};
  for (int axis = 0; axis < 3; ++axis) {
    const auto [l, r] = b.halve(axis);
    EXPECT_DOUBLE_EQ(l.volume(), 32.0);
    EXPECT_DOUBLE_EQ(r.volume(), 32.0);
    EXPECT_DOUBLE_EQ(l.side(axis), 2.0);
  }
}

TEST(Lemma3, CubeAspect) {
  const auto box = node_box(100, 1.0);
  EXPECT_DOUBLE_EQ(box.a, 10.0);
  EXPECT_DOUBLE_EQ(box.b, 10.0);
  EXPECT_DOUBLE_EQ(box.c, 10.0);
  EXPECT_DOUBLE_EQ(box.volume(), 1000.0);  // m^{3/2}
}

TEST(Lemma3, AspectTradesHeightForArea) {
  // Sides O(h√m), O(h√m), O(√m/h): volume h·m^{3/2}; at h = √m the box is
  // flat with area m² (the 2-D crossbar bound).
  const std::uint64_t m = 64;
  const auto flat = node_box(m, 8.0);
  EXPECT_DOUBLE_EQ(flat.c, 1.0);
  EXPECT_DOUBLE_EQ(flat.a * flat.b, 64.0 * 64.0);
  const auto cube = node_box(m, 1.0);
  EXPECT_LT(cube.volume(), flat.volume());
}

TEST(Theorem4, ComponentCountScalesLikeNLogTerm) {
  // components = Θ(n · lg(w³/n²)).
  for (const std::uint32_t n : {1u << 10, 1u << 12}) {
    FatTreeTopology t(n);
    const std::uint64_t w = n / 4;
    const auto caps = CapacityProfile::universal(t, w);
    const double comps = static_cast<double>(total_components(t, caps));
    const double predicted =
        static_cast<double>(n) *
        std::log2(std::pow(static_cast<double>(w), 3) /
                  std::pow(static_cast<double>(n), 2));
    const double ratio = comps / predicted;
    EXPECT_GT(ratio, 1.0);
    EXPECT_LT(ratio, 64.0);
  }
}

TEST(Theorem4, ComponentsMonotoneInRootCapacity) {
  FatTreeTopology t(1024);
  std::uint64_t prev = 0;
  for (std::uint64_t w : {128ull, 256ull, 512ull, 1024ull}) {
    const auto c = total_components(t, CapacityProfile::universal(t, w));
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(Theorem4, VolumeFormulaMonotone) {
  std::uint64_t n = 4096;
  double prev = 0;
  for (std::uint64_t w : {256ull, 512ull, 1024ull, 2048ull, 4096ull}) {
    const double v = universal_fat_tree_volume(n, w);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(Theorem4, FullFatTreeVolumeMatchesHypercubeOrder) {
  // At w = n the universal fat-tree costs Θ(n^{3/2}) — the same order as
  // the hypercube; smaller w scales the cost down, which is the paper's
  // whole point.
  const std::uint64_t n = 1u << 12;
  const double full = universal_fat_tree_volume(n, n);
  const double cube = hypercube_volume(n);
  EXPECT_GT(full / cube, 0.5);
  EXPECT_LT(full / cube, 8.0);
  const double small = universal_fat_tree_volume(n, 1u << 8);
  EXPECT_LT(small, 0.25 * cube);
}

TEST(VolumeInversion, RoundTripWithinConstant) {
  // w -> volume -> root_capacity_for_volume recovers w up to the
  // logarithmic-correction constants.
  const std::uint64_t n = 1u << 14;
  for (std::uint64_t w : {1ull << 10, 1ull << 11, 1ull << 12}) {
    const double v = universal_fat_tree_volume(n, w);
    const std::uint64_t w2 = root_capacity_for_volume(n, v);
    const double ratio = static_cast<double>(w2) / static_cast<double>(w);
    EXPECT_GT(ratio, 0.3) << "w=" << w;
    EXPECT_LT(ratio, 3.5) << "w=" << w;
  }
}

TEST(VolumeInversion, ClampsToProcessorCount) {
  EXPECT_LE(root_capacity_for_volume(64, 1e12), 64u);
  EXPECT_GE(root_capacity_for_volume(64, 0.001), 1u);
}

TEST(CompetitorVolumes, Ordering) {
  const std::uint64_t n = 4096;
  EXPECT_DOUBLE_EQ(mesh2d_volume(n), static_cast<double>(n));
  EXPECT_DOUBLE_EQ(mesh3d_volume(n), static_cast<double>(n));
  EXPECT_DOUBLE_EQ(binary_tree_volume(n), static_cast<double>(n));
  EXPECT_GT(hypercube_volume(n), 32.0 * mesh3d_volume(n));
}

TEST(ConstructiveVolume, TracksClosedFormShape) {
  // The constructive sum of node boxes should grow with w like the closed
  // form (same direction, bounded ratio drift across w).
  const std::uint32_t n = 4096;
  FatTreeTopology t(n);
  double prev_constructive = 0;
  for (std::uint64_t w : {256ull, 512ull, 1024ull, 2048ull}) {
    const auto caps = CapacityProfile::universal(t, w);
    const double cv = constructive_volume(t, caps);
    EXPECT_GT(cv, prev_constructive);
    prev_constructive = cv;
  }
}

TEST(NodeComponents, LinearInWires) {
  const auto c1 = node_components(8, 8);
  const auto c2 = node_components(16, 16);
  EXPECT_EQ(c2, 2 * c1);
}

}  // namespace
}  // namespace ft
