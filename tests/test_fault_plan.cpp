// Dynamic fault injection and retry/backoff: FaultState determinism and
// semantics (flaps, bursts, brownouts), retry-policy lifecycle (bounded
// attempts, exponential backoff, deadlines), fault handling in both the
// lossy and FIFO engines, and the observability surface (trace events,
// fault counters, availability).
#include "engine/fault_plan.hpp"

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "core/online_router.hpp"
#include "core/traffic.hpp"
#include "engine/fat_tree_model.hpp"
#include "nets/builders.hpp"
#include "nets/routing.hpp"
#include "nets/store_forward.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ft {
namespace {

std::vector<std::uint32_t> base_limits(const ChannelGraph& g) {
  std::vector<std::uint32_t> lim(g.num_channels());
  for (std::size_t c = 0; c < g.num_channels(); ++c) {
    lim[c] = static_cast<std::uint32_t>(g.capacity[c]);
  }
  return lim;
}

std::uint64_t total_delivered(const std::vector<std::uint32_t>& per_cycle) {
  return std::accumulate(per_cycle.begin(), per_cycle.end(), std::uint64_t{0});
}

TEST(FaultPlan, EmptyPlanIsEmpty) {
  FaultPlan plan(42);
  EXPECT_TRUE(plan.empty());
  plan.set_flaps({0.01, 0.5});
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, FlapTimelineIsDeterministic) {
  FatTreeTopology t(64);
  const auto caps = CapacityProfile::universal(t, 16);
  const ChannelGraph g = fat_tree_channel_graph(t, caps);
  const auto lim = base_limits(g);

  FaultPlan plan(7);
  plan.set_flaps({0.05, 0.3});
  FaultState a(plan, g);
  FaultState b(plan, g);
  bool saw_down = false, saw_up = false;
  for (std::uint32_t cycle = 1; cycle <= 50; ++cycle) {
    const auto& fa = a.begin_cycle(cycle, lim);
    const auto& fb = b.begin_cycle(cycle, lim);
    EXPECT_EQ(fa.went_down, fb.went_down) << cycle;
    EXPECT_EQ(fa.came_up, fb.came_up) << cycle;
    EXPECT_EQ(fa.channels_down, fb.channels_down) << cycle;
    EXPECT_EQ(a.eff_limit(), b.eff_limit()) << cycle;
    // Transition lists are emitted in ascending channel order.
    EXPECT_TRUE(std::is_sorted(fa.went_down.begin(), fa.went_down.end()));
    EXPECT_TRUE(std::is_sorted(fa.came_up.begin(), fa.came_up.end()));
    for (const std::uint32_t c : fa.went_down) {
      EXPECT_EQ(a.eff_limit()[c], 0u);
    }
    saw_down = saw_down || !fa.went_down.empty();
    saw_up = saw_up || !fa.came_up.empty();
  }
  EXPECT_TRUE(saw_down);  // p = 0.05 over 50 cycles x many channels
  EXPECT_TRUE(saw_up);
}

TEST(FaultPlan, BurstKillTakesChannelsDownForDuration) {
  FatTreeTopology t(32);
  const auto caps = CapacityProfile::universal(t, 8);
  const ChannelGraph g = fat_tree_channel_graph(t, caps);
  const auto lim = base_limits(g);

  FaultPlan plan(9);
  plan.add_burst({/*at_cycle=*/2, /*duration=*/3, /*count=*/5});
  FaultState st(plan, g);

  EXPECT_EQ(st.begin_cycle(1, lim).channels_down, 0u);
  const auto& hit = st.begin_cycle(2, lim);
  EXPECT_EQ(hit.went_down.size(), 5u);
  EXPECT_EQ(hit.channels_down, 5u);
  for (const std::uint32_t c : hit.went_down) {
    EXPECT_EQ(st.eff_limit()[c], 0u);
  }
  EXPECT_EQ(st.begin_cycle(3, lim).channels_down, 5u);
  EXPECT_EQ(st.begin_cycle(4, lim).channels_down, 5u);
  const auto& healed = st.begin_cycle(5, lim);  // repairs at 2 + 3
  EXPECT_EQ(healed.came_up.size(), 5u);
  EXPECT_EQ(healed.channels_down, 0u);
  for (std::size_t c = 0; c < g.num_channels(); ++c) {
    EXPECT_EQ(st.eff_limit()[c], lim[c]);
  }
}

TEST(FaultPlan, BrownoutScalesLimitsInsideWindow) {
  FatTreeTopology t(32);
  const auto caps = CapacityProfile::universal(t, 16);
  const ChannelGraph g = fat_tree_channel_graph(t, caps);
  const auto lim = base_limits(g);

  FaultPlan plan(11);
  plan.add_brownout({/*from=*/2, /*until=*/4, /*factor=*/0.5});
  FaultState st(plan, g);

  st.begin_cycle(1, lim);
  EXPECT_EQ(st.eff_limit(), lim);
  const auto& dim = st.begin_cycle(2, lim);
  EXPECT_EQ(dim.channels_down, 0u);
  std::uint64_t degraded = 0;
  for (std::size_t c = 0; c < g.num_channels(); ++c) {
    const std::uint32_t want =
        std::max<std::uint32_t>(1, lim[c] / 2);
    EXPECT_EQ(st.eff_limit()[c], lim[c] == 0 ? 0u : want) << c;
    if (lim[c] != 0 && want < lim[c]) ++degraded;
  }
  EXPECT_EQ(dim.degraded_channels, degraded);
  st.begin_cycle(3, lim);
  const auto& after = st.begin_cycle(4, lim);  // window is half-open
  EXPECT_EQ(after.degraded_channels, 0u);
  EXPECT_EQ(st.eff_limit(), lim);
}

TEST(FaultPlan, RouterDeliversEverythingUnderFlaps) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 16);
  Rng gen(17);
  const auto m = stacked_permutations(n, 2, gen);

  FaultPlan plan(19);
  plan.set_flaps({0.02, 0.25});

  EngineMetrics metrics;
  Rng rng(18);
  OnlineRouterOptions opts;
  opts.fault_plan = &plan;
  opts.observer = &metrics;
  const auto r = route_online(t, caps, m, rng, opts);

  EXPECT_FALSE(r.gave_up);
  EXPECT_EQ(total_delivered(r.delivered_per_cycle), m.size());
  EXPECT_GT(r.fault_down_events, 0u);
  EXPECT_GT(r.degraded_channel_cycles, 0u);
  // Every repaired channel first went down.
  EXPECT_LE(r.fault_up_events, r.fault_down_events);

  // Observability mirrors the result, and availability reflects the
  // degraded channel-cycles.
  EXPECT_EQ(metrics.fault_down_events(), r.fault_down_events);
  EXPECT_EQ(metrics.fault_up_events(), r.fault_up_events);
  EXPECT_EQ(metrics.degraded_channel_cycles(), r.degraded_channel_cycles);
  EXPECT_LT(metrics.availability(), 1.0);
  EXPECT_GT(metrics.availability(), 0.0);
  EXPECT_GT(metrics.peak_channels_down(), 0u);
  // attempts - losses == delivered still holds under churn.
  EXPECT_EQ(metrics.total_attempts() - metrics.total_losses(),
            total_delivered(metrics.delivered_per_cycle));
}

TEST(FaultPlan, FaultFreeRunHasFullAvailability) {
  const std::uint32_t n = 32;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 8);
  Rng gen(21);
  const auto m = random_permutation_traffic(n, gen);

  EngineMetrics metrics;
  Rng rng(22);
  OnlineRouterOptions opts;
  opts.observer = &metrics;
  route_online(t, caps, m, rng, opts);
  EXPECT_DOUBLE_EQ(metrics.availability(), 1.0);
  EXPECT_EQ(metrics.fault_down_events(), 0u);
  EXPECT_EQ(metrics.peak_channels_down(), 0u);
}

TEST(FaultPlan, MaxAttemptsGivesMessagesUp) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  // Unit capacities + stacked permutations: heavy contention, so one
  // attempt is not enough for most messages.
  const auto caps = CapacityProfile::constant(t, 1);
  Rng gen(23);
  const auto m = stacked_permutations(n, 4, gen);

  Rng rng(24);
  OnlineRouterOptions opts;
  opts.retry.max_attempts = 1;
  const auto r = route_online(t, caps, m, rng, opts);

  EXPECT_GT(r.messages_given_up, 0u);
  std::uint64_t routed = 0;
  for (const auto& msg : m) {
    if (msg.src != msg.dst) ++routed;
  }
  const std::uint64_t self = m.size() - routed;
  // One contested cycle each: every routed message either delivered or
  // gave up, within a single delivery cycle.
  EXPECT_EQ(total_delivered(r.delivered_per_cycle) - self +
                r.messages_given_up,
            routed);
  EXPECT_EQ(r.delivery_cycles, 1u);
}

TEST(FaultPlan, ExponentialBackoffParksMessages) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::constant(t, 2);
  Rng gen(27);
  const auto m = stacked_permutations(n, 4, gen);

  Rng r1(28), r2(28);
  const auto classic = route_online(t, caps, m, r1);

  OnlineRouterOptions opts;
  opts.retry.exponential_backoff = true;
  opts.retry.max_backoff = 8;  // full 64-cycle naps outlast max_cycles here
  const auto backoff = route_online(t, caps, m, r2, opts);

  EXPECT_FALSE(backoff.gave_up);
  EXPECT_EQ(total_delivered(backoff.delivered_per_cycle), m.size());
  EXPECT_GT(backoff.total_backoffs, 0u);
  EXPECT_EQ(backoff.messages_given_up, 0u);
  // Parked messages sit out cycles, so the run stretches in time.
  EXPECT_GE(backoff.delivery_cycles, classic.delivery_cycles);
}

TEST(FaultPlan, DeadlineBoundsTheRun) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::constant(t, 1);
  Rng gen(31);
  const auto m = stacked_permutations(n, 8, gen);

  Rng rng(32);
  OnlineRouterOptions opts;
  opts.retry.deadline_cycles = 5;
  const auto r = route_online(t, caps, m, rng, opts);

  // No retry is ever scheduled past the deadline, so the run ends there.
  EXPECT_LE(r.delivery_cycles, 5u);
  EXPECT_GT(r.messages_given_up, 0u);
  EXPECT_FALSE(r.gave_up);  // per-message give-up, not the engine cliff
}

TEST(FaultPlan, DeadlineInsideBackoffWindowGivesUpExactlyOnce) {
  // Regression pin for the give-up accounting audit: when the deadline
  // expires while a message is parked in an exponential-backoff window,
  // the engine drops it at park time (the wake cycle would overshoot the
  // deadline) — it must count exactly once in messages_given_up, emit
  // exactly one GiveUp trace event, at a cycle never past the deadline,
  // and fall silent afterwards. Double-counting (park-time drop plus a
  // later deadline sweep) would break conservation.
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::constant(t, 1);
  Rng gen(43);
  const auto m = stacked_permutations(n, 6, gen);

  TraceSink trace;
  Rng rng(44);
  OnlineRouterOptions opts;
  opts.retry.exponential_backoff = true;
  opts.retry.max_backoff = 8;
  // Small enough that second-loss windows (delay >= 1 at cycle >= 5)
  // already straddle it: plenty of park-time expiries.
  opts.retry.deadline_cycles = 6;
  opts.observer = &trace;
  const auto r = route_online(t, caps, m, rng, opts);

  EXPECT_GT(r.messages_given_up, 0u);
  EXPECT_GT(r.total_backoffs, 0u);
  EXPECT_FALSE(r.gave_up);  // per-message policy, not the engine cliff
  EXPECT_LE(r.delivery_cycles, 6u);

  // Conservation: every routed message is delivered or gave up, no
  // message does both or neither.
  std::uint64_t routed = 0;
  for (const auto& msg : m) routed += msg.src != msg.dst;
  const std::uint64_t self = m.size() - routed;
  EXPECT_EQ(total_delivered(r.delivered_per_cycle) - self +
                r.messages_given_up,
            routed);

  // Per-message lifecycle: at most one GiveUp each, none after the
  // deadline, and a given-up message emits nothing afterwards.
  std::map<std::uint32_t, std::uint32_t> give_up_cycle;
  std::uint64_t give_ups = 0;
  for (const MessageEvent& e : trace.message_events()) {
    if (e.message == kNoMessage) continue;
    const auto it = give_up_cycle.find(e.message);
    if (it != give_up_cycle.end()) {
      ADD_FAILURE() << "message " << e.message << " emitted a "
                    << static_cast<int>(e.kind) << " event at cycle "
                    << e.cycle << " after giving up at cycle " << it->second;
    }
    if (e.kind == MessageEventKind::GiveUp) {
      ++give_ups;
      EXPECT_LE(e.cycle, 6u) << "GiveUp past the deadline";
      give_up_cycle.emplace(e.message, e.cycle);
    }
  }
  EXPECT_EQ(give_ups, r.messages_given_up);
  EXPECT_EQ(give_up_cycle.size(), r.messages_given_up);
}

TEST(FaultPlan, StoreForwardRidesOutABurst) {
  const auto net = build_hypercube(5);
  Rng traffic(33);
  const auto m = random_permutation_traffic(32, traffic);
  const auto routes = route_all_bfs(net, m);

  const auto healthy = simulate_store_forward(net, routes);

  FaultPlan plan(35);
  plan.add_burst({/*at_cycle=*/1, /*duration=*/4,
                  /*count=*/net.num_links() / 4});
  StoreForwardOptions opts;
  opts.fault_plan = &plan;
  const auto hurt = simulate_store_forward(net, routes, opts);

  EXPECT_FALSE(hurt.gave_up);
  EXPECT_GE(hurt.rounds, healthy.rounds);
  EXPECT_EQ(hurt.total_hops, healthy.total_hops);  // same routes, later
  EXPECT_EQ(hurt.fault_down_events, net.num_links() / 4);
  EXPECT_EQ(hurt.fault_up_events, net.num_links() / 4);
}

TEST(FaultPlan, TraceRecordsFaultAndBackoffLifecycle) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::constant(t, 1);
  Rng gen(37);
  const auto m = stacked_permutations(n, 2, gen);

  FaultPlan plan(39);
  plan.set_flaps({0.05, 0.5});

  TraceSink trace;
  Rng rng(38);
  OnlineRouterOptions opts;
  opts.fault_plan = &plan;
  opts.retry.exponential_backoff = true;
  opts.retry.max_backoff = 8;  // keep naps short of the max_cycles budget
  opts.observer = &trace;
  const auto r = route_online(t, caps, m, rng, opts);
  EXPECT_EQ(total_delivered(r.delivered_per_cycle), m.size());

  std::uint64_t downs = 0, ups = 0, backoffs = 0;
  for (const MessageEvent& e : trace.message_events()) {
    switch (e.kind) {
      case MessageEventKind::FaultDown:
        ++downs;
        EXPECT_EQ(e.message, kNoMessage);
        EXPECT_NE(e.channel, kNoChannel);
        break;
      case MessageEventKind::FaultUp:
        ++ups;
        EXPECT_EQ(e.message, kNoMessage);
        break;
      case MessageEventKind::Backoff:
        ++backoffs;
        EXPECT_NE(e.message, kNoMessage);
        EXPECT_NE(e.channel, kNoChannel);  // the channel it lost at
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(downs, r.fault_down_events);
  EXPECT_EQ(ups, r.fault_up_events);
  EXPECT_EQ(backoffs, r.total_backoffs);
  EXPECT_GT(downs, 0u);
  EXPECT_GT(backoffs, 0u);

  // Per-cycle fault fields aggregate to the run totals.
  std::uint64_t rec_downs = 0, rec_backoffs = 0;
  for (const TraceCycleRecord& rec : trace.cycle_records()) {
    rec_downs += rec.faults_down;
    rec_backoffs += rec.backoffs;
  }
  EXPECT_EQ(rec_downs, r.fault_down_events);
  EXPECT_EQ(rec_backoffs, r.total_backoffs);
}

}  // namespace
}  // namespace ft
