#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace ft {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ParallelFor, CoversWholeRange) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndSingleton) {
  std::atomic<int> n{0};
  parallel_for(5, 5, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 0);
  parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    n.fetch_add(1);
  });
  EXPECT_EQ(n.load(), 1);
}

TEST(ParallelFor, MatchesSerialSum) {
  std::vector<long> out(5000, 0);
  parallel_for(0, out.size(), [&](std::size_t i) {
    out[i] = static_cast<long>(i) * 3 - 1;
  }, 8);
  long expect = 0, got = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    expect += static_cast<long>(i) * 3 - 1;
    got += out[i];
  }
  EXPECT_EQ(expect, got);
}

TEST(ThreadPool, RunTasksCoversRangeAndBlocks) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.run_tasks(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  // run_tasks has joined: every index ran exactly once.
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);

  pool.run_tasks(0, [&](std::size_t) { FAIL() << "empty batch ran"; });
  std::atomic<int> once{0};
  pool.run_tasks(1, [&](std::size_t) { ++once; });  // inline fast path
  EXPECT_EQ(once.load(), 1);
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(0, 10, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  }, 1);
  // Serial fallback preserves order.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

}  // namespace
}  // namespace ft
