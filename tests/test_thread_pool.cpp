#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace ft {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ParallelFor, CoversWholeRange) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndSingleton) {
  std::atomic<int> n{0};
  parallel_for(5, 5, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 0);
  parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    n.fetch_add(1);
  });
  EXPECT_EQ(n.load(), 1);
}

TEST(ParallelFor, MatchesSerialSum) {
  std::vector<long> out(5000, 0);
  parallel_for(0, out.size(), [&](std::size_t i) {
    out[i] = static_cast<long>(i) * 3 - 1;
  }, 8);
  long expect = 0, got = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    expect += static_cast<long>(i) * 3 - 1;
    got += out[i];
  }
  EXPECT_EQ(expect, got);
}

TEST(ThreadPool, RunTasksCoversRangeAndBlocks) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.run_tasks(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  // run_tasks has joined: every index ran exactly once.
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);

  pool.run_tasks(0, [&](std::size_t) { FAIL() << "empty batch ran"; });
  std::atomic<int> once{0};
  pool.run_tasks(1, [&](std::size_t) { ++once; });  // inline fast path
  EXPECT_EQ(once.load(), 1);
}

// Work-stealing stress: one pathological chunk gets ~all the work. With
// static partitioning the batch would take ~serial time on one worker;
// correctness here is that every index still runs exactly once and the
// call joins, with thieves draining the hot chunk's neighbours.
TEST(ThreadPool, StealsFromUnevenTaskCosts) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 512;
  std::vector<std::atomic<int>> hits(kTasks);
  std::atomic<long> checksum{0};
  pool.run_tasks(kTasks, [&](std::size_t i) {
    // Indices in the first chunk spin ~1000x longer than the rest.
    volatile long sink = 0;
    const long iters = (i < kTasks / 5) ? 200000 : 200;
    for (long k = 0; k < iters; ++k) sink += k;
    checksum.fetch_add(sink, std::memory_order_relaxed);
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

// Back-to-back batches through one pool: epoch publication must not lose
// or double-run indices even when batches are much smaller than the pool,
// larger than it, or dispatched in a tight loop (stragglers from batch k
// may race the dispatch of batch k+1).
TEST(ThreadPool, RepeatedBatchesStayExact) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    const std::size_t count = 1 + static_cast<std::size_t>(round % 97);
    std::vector<std::atomic<int>> hits(count);
    pool.run_tasks(count, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "round " << round << " index " << i;
    }
  }
}

// The dispatching thread participates instead of blocking: a pool of size
// zero (no workers at all) must still complete every batch inline.
TEST(ThreadPool, CallerParticipatesWithNoWorkers) {
  ThreadPool pool(1);  // size() may be 0 or 1 depending on the host
  std::vector<std::atomic<int>> hits(100);
  std::atomic<int> distinct_threads{0};
  pool.run_tasks(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  (void)distinct_threads;
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// Legacy submit() traffic interleaved with run_tasks batches: the queued
// path and the epoch path share workers and must not starve each other.
TEST(ThreadPool, SubmitAndRunTasksInterleave) {
  ThreadPool pool(4);
  std::atomic<int> queued{0};
  std::atomic<int> batched{0};
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 4; ++i) {
      pool.submit([&] { queued.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.run_tasks(32, [&](std::size_t) {
      batched.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(queued.load(), 200);
  EXPECT_EQ(batched.load(), 1600);
}

// Nested submission: a batch body enqueues legacy tasks that are only
// awaited afterwards. The pool must neither deadlock (workers are inside
// run_tasks when submit fires) nor drop the nested work.
TEST(ThreadPool, NestedSubmitFromBatchBody) {
  ThreadPool pool(4);
  std::atomic<int> nested{0};
  pool.run_tasks(64, [&](std::size_t i) {
    if (i % 8 == 0) {
      pool.submit([&] { nested.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(nested.load(), 8);
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(0, 10, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  }, 1);
  // Serial fallback preserves order.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

}  // namespace
}  // namespace ft
