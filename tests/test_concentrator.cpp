#include "switch/concentrator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/bits.hpp"
#include "util/prng.hpp"

namespace ft {
namespace {

TEST(IdealConcentrator, RoutesAllWhenUnderCapacity) {
  IdealConcentrator c(10, 4);
  const auto out = c.route({1, 5, 9});
  ASSERT_EQ(out.size(), 3u);
  std::set<std::int32_t> wires;
  for (auto w : out) {
    EXPECT_GE(w, 0);
    EXPECT_LT(w, 4);
    wires.insert(w);
  }
  EXPECT_EQ(wires.size(), 3u);  // distinct output wires
}

TEST(IdealConcentrator, LosesExactlySurplus) {
  IdealConcentrator c(10, 2);
  const auto out = c.route({0, 1, 2, 3, 4});
  std::size_t routed = 0;
  for (auto w : out) {
    if (w >= 0) ++routed;
  }
  EXPECT_EQ(routed, 2u);
}

TEST(PartialConcentrator, DefaultsToTwoThirdsOutputs) {
  Rng rng(1);
  PartialConcentrator c(12, 0, rng);
  EXPECT_EQ(c.num_outputs(), 8u);
  PartialConcentrator c2(10, 0, rng);
  EXPECT_EQ(c2.num_outputs(), 7u);  // ceil(20/3)
}

TEST(PartialConcentrator, InputDegreeAtMostSix) {
  Rng rng(3);
  PartialConcentrator c(30, 20, rng);
  for (std::size_t l = 0; l < 30; ++l) {
    const auto& nb = c.graph().neighbors(l);
    EXPECT_LE(nb.size(), 6u);
    EXPECT_GE(nb.size(), 1u);
    std::set<std::uint32_t> distinct(nb.begin(), nb.end());
    EXPECT_EQ(distinct.size(), nb.size());  // no duplicate targets
  }
}

TEST(PartialConcentrator, RoutedWiresAreDistinct) {
  Rng rng(5);
  PartialConcentrator c(24, 16, rng);
  const auto out = c.route({0, 3, 7, 11, 19, 23});
  std::set<std::int32_t> wires;
  for (auto w : out) {
    if (w >= 0) {
      EXPECT_LT(w, 16);
      EXPECT_TRUE(wires.insert(w).second);
    }
  }
}

TEST(PartialConcentrator, SingleMessageAlwaysRouted) {
  Rng rng(7);
  PartialConcentrator c(9, 6, rng);
  for (std::uint32_t i = 0; i < 9; ++i) {
    const auto out = c.route({i});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_GE(out[0], 0);
  }
}

TEST(PartialConcentrator, AlphaThreeQuartersLoadFullyRouted) {
  // The Section IV property: any k <= (3/4)·s loaded inputs concentrate.
  // Statistically verified: random graphs achieve it w.h.p. for r large.
  Rng rng(11);
  PartialConcentrator c(96, 64, rng);
  Rng trials(13);
  const double rate = c.measure_full_routing_rate(48, 300, trials);
  EXPECT_GT(rate, 0.98);
}

TEST(PartialConcentrator, OverloadCannotFullyRoute) {
  Rng rng(17);
  PartialConcentrator c(30, 20, rng);
  std::vector<std::uint32_t> all(30);
  for (std::uint32_t i = 0; i < 30; ++i) all[i] = i;
  const auto out = c.route(all);
  std::size_t routed = 0;
  for (auto w : out) {
    if (w >= 0) ++routed;
  }
  EXPECT_LE(routed, 20u);
  EXPECT_GE(routed, 15u);  // a decent expander still routes most
}

TEST(Cascade, ReachesTargetWidth) {
  Rng rng(19);
  ConcentratorCascade c(64, 8, rng);
  EXPECT_EQ(c.num_inputs(), 64u);
  EXPECT_EQ(c.num_outputs(), 8u);
  // 64 -> 43 -> 29 -> 20 -> 14 -> 10 -> 8: logarithmic in the ratio.
  EXPECT_GE(c.depth(), 3u);
  EXPECT_LE(c.depth(), 8u);
}

TEST(Cascade, NoStageWhenAlreadyNarrow) {
  Rng rng(23);
  ConcentratorCascade c(4, 8, rng);
  EXPECT_EQ(c.depth(), 0u);
  const auto out = c.route({0, 2});
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 2);
}

TEST(Cascade, RoutesLightLoadCompletely) {
  Rng rng(29);
  ConcentratorCascade c(64, 16, rng);
  Rng pick(31);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint32_t> active;
    std::set<std::uint32_t> used;
    while (active.size() < 8) {
      const auto i = static_cast<std::uint32_t>(pick.below(64));
      if (used.insert(i).second) active.push_back(i);
    }
    const auto out = c.route(active);
    std::set<std::int32_t> wires;
    for (auto w : out) {
      if (w >= 0) {
        EXPECT_LT(w, 16);
        EXPECT_TRUE(wires.insert(w).second);
      }
    }
    // Half the output capacity: losses should be rare but tolerated.
    EXPECT_GE(wires.size(), 7u) << "trial " << trial;
  }
}

TEST(Cascade, NeverExceedsOutputs) {
  Rng rng(37);
  ConcentratorCascade c(48, 6, rng);
  std::vector<std::uint32_t> all(48);
  for (std::uint32_t i = 0; i < 48; ++i) all[i] = i;
  const auto out = c.route(all);
  std::size_t routed = 0;
  for (auto w : out) {
    if (w >= 0) ++routed;
  }
  EXPECT_LE(routed, 6u);
  EXPECT_GE(routed, 1u);
}

class ConcentrationSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConcentrationSweep, FullRoutingRateDegradesGracefully) {
  const std::size_t k = GetParam();
  Rng rng(41);
  PartialConcentrator c(48, 32, rng);
  Rng trials(43);
  const double rate = c.measure_full_routing_rate(k, 120, trials);
  if (k <= 16) {
    EXPECT_GT(rate, 0.95) << "k=" << k;
  }
  if (k >= 33) {
    EXPECT_EQ(rate, 0.0) << "k beyond outputs cannot fully route";
  }
}

INSTANTIATE_TEST_SUITE_P(Loads, ConcentrationSweep,
                         ::testing::Values(1u, 4u, 8u, 16u, 24u, 33u, 48u));

}  // namespace
}  // namespace ft
