// Shell-level tests for the ftsim CLI's checked argument parsing: every
// malformed flag value — non-numeric, negative, compound flags with
// missing fields or trailing garbage — must produce a nonzero exit (and
// the usage text), never a silently misparsed run. Before the checked
// parser, `--n 4x` ran with n = 4 and `--subtree-kill 1:2` read
// uninitialized fields.
//
// The binary's path arrives via the FT_FTSIM_PATH compile definition
// ($<TARGET_FILE:example_ftsim>), so the test tracks whatever build
// directory layout CMake picked.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace {

/// Runs ftsim with `args`, returns its exit status (-1 if it died on a
/// signal). Output is discarded — these tests only assert on status.
int run_ftsim(const std::string& args) {
  const std::string cmd =
      std::string(FT_FTSIM_PATH) + " " + args + " >/dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  if (rc == -1) return -1;
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

constexpr const char* kGoodBase =
    "--n 16 --w 4 --workload transpose --seed 1";

TEST(FtsimCli, WellFormedInvocationsExitZero) {
  EXPECT_EQ(run_ftsim(kGoodBase), 0);
  EXPECT_EQ(run_ftsim(std::string(kGoodBase) +
                      " --scheduler online --policy adaptive"),
            0);
  EXPECT_EQ(run_ftsim(std::string(kGoodBase) +
                      " --scheduler online --policy dmod --retry 4 "
                      "--backoff --deadline 64"),
            0);
  EXPECT_EQ(run_ftsim(std::string(kGoodBase) +
                      " --scheduler online --faults 0.05 --flap 0.1:0.5"),
            0);
  EXPECT_EQ(run_ftsim(std::string(kGoodBase) +
                      " --scheduler online --subtree-kill 2:1:4"),
            0);
}

TEST(FtsimCli, MalformedNumericValuesAreRejected) {
  const char* bad[] = {
      "--n 4x",           // trailing garbage
      "--n abc",          // not a number
      "--n -4",           // negative
      "--n",              // missing value
      "--n ''",           // empty value
      "--w 1e3x",         // garbage after float-ish token
      "--stack 2.5",      // not an integer
      "--retry 0x10",     // hex not accepted
      "--deadline -1",    // negative wraparound trap
      "--seed 12_34",     // separator garbage
      "--faults abc",     // not a number
      "--faults -0.1",    // negative probability
      "--parallel=two",   // word where a count belongs
      "--shard-level=x",  // garbage shard level
      "--telemetry=0",    // explicit zero period is meaningless
      "--telemetry=5x",   // trailing garbage
  };
  for (const char* flags : bad) {
    EXPECT_EQ(run_ftsim(std::string(kGoodBase) + " " + flags), 2)
        << "flags: " << flags;
  }
}

TEST(FtsimCli, MalformedCompoundFlagsAreRejected) {
  const char* bad[] = {
      "--flap 0.1",              // missing second field
      "--flap 0.1:0.5:0.9",      // trailing extra field
      "--flap abc:0.5",          // non-numeric field
      "--flap 0.1:",             // empty trailing field
      "--flap :0.5",             // empty leading field
      "--brownout 1:2",          // missing factor
      "--brownout 1:2:0.5:9",    // trailing garbage
      "--brownout a:2:0.5",      // non-numeric field
      "--burst 1:2",             // missing count
      "--burst 1:2:3:4",         // extra field
      "--subtree-kill 1:2",      // missing duration (read garbage before)
      "--subtree-kill 1:2:3:4",  // extra field
      "--subtree-kill -1:2:3",   // negative node wraparound trap
      "--subtree-storm 0.5",     // missing level
      "--subtree-storm 0.5:2:7", // extra field
  };
  for (const char* flags : bad) {
    EXPECT_EQ(
        run_ftsim(std::string(kGoodBase) + " --scheduler online " + flags), 2)
        << "flags: " << flags;
  }
}

TEST(FtsimCli, UnknownFlagsAndPoliciesAreRejected) {
  EXPECT_EQ(run_ftsim(std::string(kGoodBase) + " --frobnicate"), 2);
  EXPECT_EQ(run_ftsim(std::string(kGoodBase) +
                      " --scheduler online --policy bogus"),
            2);
  EXPECT_EQ(run_ftsim(std::string(kGoodBase) +
                      " --scheduler online --policy"),
            2);
  // Policy names are exact, not prefixes.
  EXPECT_EQ(run_ftsim(std::string(kGoodBase) +
                      " --scheduler online --policy adaptive2"),
            2);
}

}  // namespace
