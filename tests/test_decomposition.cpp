#include "layout/decomposition.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "nets/layouts.hpp"

namespace ft {
namespace {

TEST(Decomposition, EveryProcessorLandsInAUniqueLeaf) {
  const auto layout = layout_mesh2d(8, 8);
  const auto tree = cut_plane_decomposition(layout);
  std::set<std::int32_t> seen;
  std::uint64_t occupied = 0;
  for (std::uint64_t pos = 0; pos < tree.num_leaves(); ++pos) {
    const auto p = tree.processor_at(pos);
    if (p >= 0) {
      ++occupied;
      EXPECT_TRUE(seen.insert(p).second);
      EXPECT_LT(p, 64);
    }
  }
  EXPECT_EQ(occupied, 64u);
  EXPECT_EQ(tree.num_processors(), 64u);
}

TEST(Decomposition, RootBandwidthIsSurfaceArea) {
  const auto layout = layout_mesh3d(4, 4, 4);
  const auto tree = cut_plane_decomposition(layout, 2.0);
  EXPECT_DOUBLE_EQ(tree.bandwidth(1), 2.0 * 6.0 * 16.0);  // γ·6·s²
}

TEST(Decomposition, WidthsDecreaseEveryThreeDepths) {
  // Theorem 5: an (O(v^{2/3}), ∛4) tree — three cuts halve each dimension
  // once, shrinking surface area by 4^{... }: widths at depth d+3 are
  // strictly below widths at depth d.
  const auto layout = layout_mesh3d(8, 8, 8);
  const auto tree = cut_plane_decomposition(layout);
  for (std::uint32_t d = 0; d + 3 <= tree.depth(); ++d) {
    EXPECT_LT(tree.width_at_depth(d + 3), tree.width_at_depth(d))
        << "depth " << d;
  }
}

TEST(Decomposition, CubeWidthRatioIsCubeRootOfFour) {
  // For a cube layout, surface area per 3 cuts scales by exactly 1/4^{?}:
  // each full xyz round halves all sides -> area / 4.
  const auto layout = layout_mesh3d(16, 16, 16);
  const auto tree = cut_plane_decomposition(layout);
  for (std::uint32_t d = 0; d + 3 <= 6; ++d) {
    const double ratio = tree.width_at_depth(d) / tree.width_at_depth(d + 3);
    EXPECT_NEAR(ratio, 4.0, 0.8) << "depth " << d;
  }
}

TEST(Decomposition, RootWidthMatchesVTwoThirds) {
  // w_0 = Θ(v^{2/3}) for cubes.
  for (std::uint32_t s : {4u, 8u, 16u}) {
    const auto layout = layout_mesh3d(s, s, s);
    const auto tree = cut_plane_decomposition(layout);
    const double v23 = std::pow(layout.volume(), 2.0 / 3.0);
    EXPECT_NEAR(tree.width_at_depth(0) / v23, 6.0, 1e-9);
  }
}

TEST(Decomposition, FlatLayoutStillSeparates) {
  const auto layout = layout_mesh2d(16, 4);
  const auto tree = cut_plane_decomposition(layout);
  std::uint64_t procs = 0;
  for (std::uint64_t pos = 0; pos < tree.num_leaves(); ++pos) {
    if (tree.processor_at(pos) >= 0) ++procs;
  }
  EXPECT_EQ(procs, 64u);
}

TEST(Decomposition, SpreadLayoutHypercubeVolume) {
  const auto layout = layout_hypercube(256);
  EXPECT_EQ(layout.num_processors(), 256u);
  // Θ(n^{3/2}) = 4096 cells.
  EXPECT_NEAR(layout.volume(), 4096.0, 0.25 * 4096.0);
  const auto tree = cut_plane_decomposition(layout);
  std::uint64_t procs = 0;
  for (std::uint64_t pos = 0; pos < tree.num_leaves(); ++pos) {
    if (tree.processor_at(pos) >= 0) ++procs;
  }
  EXPECT_EQ(procs, 256u);
}

TEST(Decomposition, SubtreeHeapIndexing) {
  const auto layout = layout_mesh2d(4, 4);
  const auto tree = cut_plane_decomposition(layout);
  // The root is the height-depth subtree starting at leaf 0.
  EXPECT_EQ(tree.subtree_heap_index(tree.depth(), 0), 1u);
  // Leaves are height-0 subtrees.
  EXPECT_EQ(tree.subtree_heap_index(0, 0), tree.num_leaves());
  EXPECT_EQ(tree.subtree_heap_index(0, 3), tree.num_leaves() + 3);
}

TEST(Decomposition, BandwidthMonotoneUpward) {
  // A child's surface area never exceeds its parent's... (cut boxes can
  // have larger surface/volume ratio, but absolute bandwidth shrinks or
  // stays comparable). We assert the per-depth maxima are non-increasing.
  const auto layout = layout_mesh3d(8, 8, 8);
  const auto tree = cut_plane_decomposition(layout);
  for (std::uint32_t d = 0; d < tree.depth(); ++d) {
    EXPECT_LE(tree.width_at_depth(d + 1), tree.width_at_depth(d) + 1e-9);
  }
}

TEST(Decomposition, SingleProcessor) {
  Layout3D layout;
  layout.bounds = Box3{Point3{0, 0, 0}, Point3{2, 2, 2}};
  layout.positions = {Point3{0.5, 0.5, 0.5}};
  const auto tree = cut_plane_decomposition(layout);
  EXPECT_EQ(tree.depth(), 0u);
  EXPECT_EQ(tree.processor_at(0), 0);
}

TEST(Decomposition, TwoCoincidentAxesProcessorsSeparate) {
  Layout3D layout;
  layout.bounds = Box3{Point3{0, 0, 0}, Point3{4, 4, 4}};
  // Same x and y; differ only in z — separation needs z cuts (axis 2).
  layout.positions = {Point3{1.5, 1.5, 0.5}, Point3{1.5, 1.5, 3.5}};
  const auto tree = cut_plane_decomposition(layout);
  std::set<std::int32_t> procs;
  for (std::uint64_t pos = 0; pos < tree.num_leaves(); ++pos) {
    if (tree.processor_at(pos) >= 0) procs.insert(tree.processor_at(pos));
  }
  EXPECT_EQ(procs.size(), 2u);
}

}  // namespace
}  // namespace ft
