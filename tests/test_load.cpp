#include "core/load.hpp"

#include <gtest/gtest.h>

#include "core/traffic.hpp"
#include "util/prng.hpp"

namespace ft {
namespace {

TEST(Load, EmptySetIsZero) {
  FatTreeTopology t(16);
  const auto caps = CapacityProfile::doubling(t);
  EXPECT_EQ(load_factor(t, caps, MessageSet{}), 0.0);
  EXPECT_TRUE(is_one_cycle(t, caps, MessageSet{}));
}

TEST(Load, SingleMessagePath) {
  FatTreeTopology t(8);
  const MessageSet m{{0, 7}};  // through the root
  const auto loads = compute_loads(t, m);
  // Up channels above leaf 0's ancestors below the root.
  EXPECT_EQ(loads.up[t.node_of_leaf(0)], 1u);
  EXPECT_EQ(loads.up[4], 1u);
  EXPECT_EQ(loads.up[2], 1u);
  EXPECT_EQ(loads.up[1], 0u);  // never exits the root upward
  // Down channels on leaf 7's side.
  EXPECT_EQ(loads.down[t.node_of_leaf(7)], 1u);
  EXPECT_EQ(loads.down[7], 1u);
  EXPECT_EQ(loads.down[3], 1u);
  // Nothing on unrelated channels.
  EXPECT_EQ(loads.up[t.node_of_leaf(3)], 0u);
  EXPECT_EQ(loads.down[t.node_of_leaf(2)], 0u);
}

TEST(Load, SelfMessagesLoadNothing) {
  FatTreeTopology t(8);
  const MessageSet m{{3, 3}, {5, 5}};
  const auto loads = compute_loads(t, m);
  for (NodeId v = 1; v <= t.num_nodes(); ++v) {
    EXPECT_EQ(loads.up[v], 0u);
    EXPECT_EQ(loads.down[v], 0u);
  }
}

TEST(Load, ComplementTrafficSaturatesEveryCut) {
  // p -> p XOR (n-1): every message crosses the root; the channel above
  // any node carries exactly subtree_size messages in each direction.
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto m = complement_traffic(n);
  const auto loads = compute_loads(t, m);
  for (NodeId v = 2; v <= t.num_nodes(); ++v) {
    EXPECT_EQ(loads.up[v], t.subtree_size(v)) << "node " << v;
    EXPECT_EQ(loads.down[v], t.subtree_size(v)) << "node " << v;
  }
}

TEST(Load, ComplementLoadFactorOnFullFatTree) {
  // Full fat-tree (w = n): capacity equals subtree size at every level, so
  // the complement permutation has load factor exactly 1.
  const std::uint32_t n = 256;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::doubling(t);
  EXPECT_DOUBLE_EQ(load_factor(t, caps, complement_traffic(n)), 1.0);
  EXPECT_TRUE(is_one_cycle(t, caps, complement_traffic(n)));
}

TEST(Load, ComplementLoadFactorOnSkinnyTree) {
  // Constant capacity 1: root channels carry n/2 messages each direction.
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::constant(t, 1);
  EXPECT_DOUBLE_EQ(load_factor(t, caps, complement_traffic(n)),
                   static_cast<double>(n) / 2.0);
}

TEST(Load, LoadFactorScalesWithStacking) {
  const std::uint32_t n = 128;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 32);
  const auto one = complement_traffic(n);
  MessageSet three;
  for (int i = 0; i < 3; ++i) three.insert(three.end(), one.begin(), one.end());
  EXPECT_DOUBLE_EQ(load_factor(t, caps, three),
                   3.0 * load_factor(t, caps, one));
}

TEST(Load, LocalTrafficLoadsOnlyLowLevels) {
  // Radius-1 traffic never needs high channels beyond small subtrees.
  const std::uint32_t n = 256;
  FatTreeTopology t(n);
  Rng rng(5);
  const auto m = local_traffic(n, 1, rng);
  const auto loads = compute_loads(t, m);
  // The root channel of each half carries at most the messages crossing
  // the midpoint (wrap + middle): a handful, not Θ(n).
  EXPECT_LE(loads.up[2], 4u);
  EXPECT_LE(loads.up[3], 4u);
}

TEST(Load, BottleneckChannelIsMaximal) {
  const std::uint32_t n = 64;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 16);
  Rng rng(7);
  const auto m = hotspot_traffic(n, 0.5, 10, rng);
  const auto c = bottleneck_channel(t, caps, m);
  const auto loads = compute_loads(t, m);
  const double lambda = load_factor(t, caps, m);
  const double at_c = static_cast<double>(loads.get(c)) /
                      static_cast<double>(caps.capacity(t, c.node));
  EXPECT_DOUBLE_EQ(at_c, lambda);
  // A heavy hotspot's bottleneck is a down channel toward the hot leaf.
  EXPECT_EQ(c.dir, Direction::Down);
  EXPECT_TRUE(t.leaf_in_subtree(10, c.node));
}

TEST(Load, LoadMapAccessorMatchesArrays) {
  FatTreeTopology t(8);
  const MessageSet m{{0, 7}, {1, 6}};
  const auto loads = compute_loads(t, m);
  EXPECT_EQ(loads.get(ChannelId{2, Direction::Up}), loads.up[2]);
  EXPECT_EQ(loads.get(ChannelId{3, Direction::Down}), loads.down[3]);
}

TEST(Load, PrecomputedLoadsMatchDirect) {
  const std::uint32_t n = 128;
  FatTreeTopology t(n);
  const auto caps = CapacityProfile::universal(t, 32);
  Rng rng(11);
  const auto m = uniform_random_traffic(n, 500, rng);
  EXPECT_DOUBLE_EQ(load_factor(t, caps, m),
                   load_factor(t, caps, compute_loads(t, m)));
}

}  // namespace
}  // namespace ft
