#include "kary/kary_sim.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ft {
namespace {

TEST(KaryTree, Sizes) {
  KaryTree t(4, 3);  // 64 processors
  EXPECT_EQ(t.num_processors(), 64u);
  EXPECT_EQ(t.switches_per_level(), 16u);
  EXPECT_EQ(t.num_switches(), 48u);
}

TEST(KaryTree, Digits) {
  KaryTree t(4, 3);
  // p = 27 = (1,2,3) base 4.
  EXPECT_EQ(t.proc_digit(27, 0), 1u);
  EXPECT_EQ(t.proc_digit(27, 1), 2u);
  EXPECT_EQ(t.proc_digit(27, 2), 3u);
  // word = 9 = (2,1) base 4 over 2 digits.
  EXPECT_EQ(t.word_digit(9, 0), 2u);
  EXPECT_EQ(t.word_digit(9, 1), 1u);
  EXPECT_EQ(t.set_word_digit(9, 0, 3), 13u);
  EXPECT_EQ(t.set_word_digit(9, 1, 0), 8u);
}

TEST(KaryTree, NcaLevels) {
  KaryTree t(2, 4);  // binary, 16 processors
  EXPECT_EQ(t.nca_level(0, 15), 0u);
  EXPECT_EQ(t.nca_level(0, 7), 1u);
  EXPECT_EQ(t.nca_level(0, 1), 3u);
  EXPECT_EQ(t.nca_level(5, 5), 4u);
}

TEST(KaryTree, PathDiversity) {
  KaryTree t(4, 3);
  // Same edge switch: unique path.
  EXPECT_EQ(t.path_diversity(0, 1), 1u);
  // Root-distance traffic: k^{levels-1} = 16 paths.
  EXPECT_EQ(t.path_diversity(0, 63), 16u);
}

TEST(KaryTree, LinkIdsAreDistinct) {
  KaryTree t(3, 3);
  std::set<std::uint32_t> ids;
  for (std::uint32_t l = 1; l < t.levels(); ++l) {
    for (std::uint32_t w = 0; w < t.switches_per_level(); ++w) {
      for (std::uint32_t d = 0; d < t.k(); ++d) {
        EXPECT_TRUE(ids.insert(t.up_link_id(l, w, d)).second);
      }
    }
  }
  for (std::uint32_t l = 0; l < t.levels(); ++l) {
    for (std::uint32_t w = 0; w < t.switches_per_level(); ++w) {
      for (std::uint32_t d = 0; d < t.k(); ++d) {
        EXPECT_TRUE(ids.insert(t.down_link_id(l, w, d)).second);
      }
    }
  }
  for (std::uint32_t p = 0; p < t.num_processors(); ++p) {
    EXPECT_TRUE(ids.insert(t.injection_link_id(p)).second);
  }
  for (auto id : ids) EXPECT_LT(id, t.num_links());
}

TEST(KaryRouting, SelfRouteEmpty) {
  KaryTree t(2, 3);
  KaryLoadTracker tracker(t);
  Rng rng(1);
  EXPECT_TRUE(kary_route(t, 3, 3, AscentPolicy::DModK, rng, tracker).empty());
}

TEST(KaryRouting, RouteLengthFormula) {
  KaryTree t(2, 4);
  KaryLoadTracker tracker(t);
  Rng rng(2);
  // hops = 1 injection + (levels-1-nca) up + (levels-1-nca) down + 1 eject.
  const auto r1 = kary_route(t, 0, 1, AscentPolicy::DModK, rng, tracker);
  EXPECT_EQ(r1.size(), 2u);  // same edge switch
  const auto r2 = kary_route(t, 0, 15, AscentPolicy::DModK, rng, tracker);
  EXPECT_EQ(r2.size(), 2u + 2u * 3u);
}

TEST(KaryRouting, AllPoliciesReachDestination) {
  // kary_route internally FT_CHECKs arrival at the destination switch;
  // exercising many random pairs per policy is the property test.
  KaryTree t(4, 3);
  Rng rng(3);
  KaryLoadTracker tracker(t);
  for (auto policy : {AscentPolicy::DModK, AscentPolicy::Random,
                      AscentPolicy::LeastLoaded}) {
    for (int trial = 0; trial < 200; ++trial) {
      const auto a = static_cast<std::uint32_t>(rng.below(64));
      const auto b = static_cast<std::uint32_t>(rng.below(64));
      const auto route = kary_route(t, a, b, policy, rng, tracker);
      if (a != b) {
        EXPECT_GE(route.size(), 2u);
      }
    }
  }
}

TEST(KaryRouting, DModKIsDeterministic) {
  KaryTree t(4, 3);
  Rng r1(5), r2(77);
  KaryLoadTracker t1(t), t2(t);
  for (std::uint32_t p = 0; p < 64; p += 3) {
    const auto a = kary_route(t, p, 63 - p, AscentPolicy::DModK, r1, t1);
    const auto b = kary_route(t, p, 63 - p, AscentPolicy::DModK, r2, t2);
    EXPECT_EQ(a, b);  // independent of the RNG
  }
}

TEST(KaryRouting, LoadSpreadingBeatsDeterministicOnAdversarialTraffic) {
  // All processors send to destinations with equal low digits: d-mod-k
  // funnels every ascent through the same up ports, random/least-loaded
  // spread them.
  KaryTree t(4, 3);
  const std::uint32_t n = t.num_processors();
  std::vector<std::uint32_t> perm(n);
  for (std::uint32_t p = 0; p < n; ++p) {
    perm[p] = (p + 16) % n;  // distance forcing ascents; dst%4 spread is
                             // identical per source block
  }
  Rng rng(7);
  const auto det =
      route_permutation_congestion(t, perm, AscentPolicy::DModK, rng);
  const auto ll =
      route_permutation_congestion(t, perm, AscentPolicy::LeastLoaded, rng);
  EXPECT_LE(ll, det);
}

TEST(KarySim, DeliversPermutation) {
  KaryTree t(2, 5);  // 32 processors
  Rng rng(9);
  const auto perm = rng.permutation(32);
  for (auto policy : {AscentPolicy::DModK, AscentPolicy::Random,
                      AscentPolicy::LeastLoaded}) {
    Rng sim_rng(11);
    const auto r = simulate_kary_permutation(t, perm, policy, sim_rng);
    EXPECT_GE(r.rounds, 1u);
    EXPECT_GE(r.rounds, r.max_route_hops);
    EXPECT_GE(r.max_link_load, 1u);
  }
}

TEST(KarySim, RoundsAtLeastCongestion) {
  KaryTree t(4, 3);
  Rng rng(13);
  const auto perm = rng.permutation(64);
  Rng sim_rng(15);
  const auto r =
      simulate_kary_permutation(t, perm, AscentPolicy::Random, sim_rng);
  EXPECT_GE(static_cast<std::uint64_t>(r.rounds), r.max_link_load);
}

TEST(KarySim, IdentityPermutationCostsTwoHops) {
  KaryTree t(4, 2);
  std::vector<std::uint32_t> shift(16);
  for (std::uint32_t i = 0; i < 16; ++i) shift[i] = i ^ 1u;  // same switch
  Rng rng(17);
  const auto r = simulate_kary_permutation(t, shift, AscentPolicy::DModK, rng);
  EXPECT_EQ(r.max_route_hops, 2u);
}

}  // namespace
}  // namespace ft
