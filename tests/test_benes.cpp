#include "nets/benes.hpp"

#include <gtest/gtest.h>

#include "util/prng.hpp"

namespace ft {
namespace {

TEST(Benes, SmallestNetwork) {
  const auto s = benes_route_permutation({1, 0});
  EXPECT_EQ(s.k, 1u);
  EXPECT_EQ(s.num_stages(), 1u);
  EXPECT_EQ(benes_apply(s), (std::vector<std::uint32_t>{1, 0}));
}

TEST(Benes, IdentityPermutation) {
  std::vector<std::uint32_t> id{0, 1, 2, 3, 4, 5, 6, 7};
  const auto s = benes_route_permutation(id);
  EXPECT_EQ(s.num_stages(), 5u);
  EXPECT_EQ(benes_apply(s), id);
}

TEST(Benes, ReversalPermutation) {
  std::vector<std::uint32_t> rev{7, 6, 5, 4, 3, 2, 1, 0};
  const auto s = benes_route_permutation(rev);
  EXPECT_EQ(benes_apply(s), rev);
}

TEST(Benes, SwapPairs) {
  std::vector<std::uint32_t> perm{1, 0, 3, 2};
  const auto s = benes_route_permutation(perm);
  EXPECT_EQ(s.num_stages(), 3u);
  EXPECT_EQ(benes_apply(s), perm);
}

TEST(Benes, CyclicShift) {
  const std::uint32_t n = 16;
  std::vector<std::uint32_t> perm(n);
  for (std::uint32_t i = 0; i < n; ++i) perm[i] = (i + 1) % n;
  const auto s = benes_route_permutation(perm);
  EXPECT_EQ(benes_apply(s), perm);
}

TEST(Benes, StageAndSwitchCounts) {
  Rng rng(3);
  const auto perm = rng.permutation(64);
  const auto s = benes_route_permutation(perm);
  EXPECT_EQ(s.k, 6u);
  EXPECT_EQ(s.num_stages(), 11u);
  ASSERT_EQ(s.crossed.size(), 11u);
  for (const auto& stage : s.crossed) {
    EXPECT_EQ(stage.size(), 32u);
  }
}

class BenesRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BenesRoundTrip, RandomPermutationsRealizedExactly) {
  const std::uint32_t k = GetParam();
  const std::uint32_t n = 1u << k;
  Rng rng(100 + k);
  for (int trial = 0; trial < 25; ++trial) {
    const auto perm = rng.permutation(n);
    const auto s = benes_route_permutation(perm);
    EXPECT_EQ(benes_apply(s), perm) << "k=" << k << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BenesRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(Benes, DepthIsLogarithmic) {
  // The paper's Section VI comparison: Beneš routes any permutation in
  // depth 2·lg n − 1 — the O(lg n) baseline for high-volume fat-trees.
  for (std::uint32_t k : {2u, 4u, 8u}) {
    Rng rng(k);
    const auto perm = rng.permutation(1u << k);
    const auto s = benes_route_permutation(perm);
    EXPECT_EQ(s.num_stages(), 2 * k - 1);
  }
}

}  // namespace
}  // namespace ft
