#include "nets/routing.hpp"

#include <gtest/gtest.h>

#include "nets/builders.hpp"
#include "util/bits.hpp"
#include "util/prng.hpp"

namespace ft {
namespace {

void expect_valid_route(const Network& net, const Route& route,
                        std::uint32_t from, std::uint32_t to) {
  std::uint32_t cur = from;
  for (auto lid : route) {
    EXPECT_EQ(net.link(lid).from, cur);
    cur = net.link(lid).to;
  }
  EXPECT_EQ(cur, to);
}

TEST(Routing, BfsSelfRouteIsEmpty) {
  const auto net = build_mesh2d(3, 3);
  EXPECT_TRUE(bfs_route(net, 4, 4).empty());
}

TEST(Routing, BfsRouteIsValidAndShortestOnHypercube) {
  const auto net = build_hypercube(6);
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = static_cast<std::uint32_t>(rng.below(64));
    const auto b = static_cast<std::uint32_t>(rng.below(64));
    const auto route = bfs_route(net, a, b);
    expect_valid_route(net, route, a, b);
    EXPECT_EQ(route.size(), popcount(a ^ b));  // Hamming distance
  }
}

TEST(Routing, BfsRouteShortestOnMesh) {
  const auto net = build_mesh2d(5, 7);
  const auto route = bfs_route(net, 0, 34);  // (0,0) -> (4,6)
  expect_valid_route(net, route, 0, 34);
  EXPECT_EQ(route.size(), 4u + 6u);  // Manhattan distance
}

TEST(Routing, RouteAllGroupsBySource) {
  const auto net = build_hypercube(5);
  Rng rng(3);
  MessageSet m;
  for (int i = 0; i < 40; ++i) {
    m.push_back({static_cast<Leaf>(rng.below(32)),
                 static_cast<Leaf>(rng.below(32))});
  }
  const auto routes = route_all_bfs(net, m);
  ASSERT_EQ(routes.size(), m.size());
  for (std::size_t i = 0; i < m.size(); ++i) {
    expect_valid_route(net, routes[i], net.node_of_processor(m[i].src),
                       net.node_of_processor(m[i].dst));
  }
}

TEST(Routing, RouteAllOnIndirectNetwork) {
  const auto net = build_butterfly(4);
  MessageSet m{{0, 15}, {3, 3}, {7, 8}};
  const auto routes = route_all_bfs(net, m);
  expect_valid_route(net, routes[0], net.node_of_processor(0),
                     net.node_of_processor(15));
  EXPECT_TRUE(routes[1].empty());
}

TEST(Routing, EcubeMatchesHammingAndOrder) {
  const auto net = build_hypercube(6);
  const auto route = ecube_route(net, 6, 0b000000, 0b101010);
  expect_valid_route(net, route, 0, 0b101010);
  EXPECT_EQ(route.size(), 3u);
  // Lowest dimension corrected first.
  EXPECT_EQ(net.link(route[0]).to, 0b000010u);
  EXPECT_EQ(net.link(route[1]).to, 0b001010u);
}

TEST(Routing, XyRouteGoesColumnThenRow) {
  const auto net = build_mesh2d(4, 4);
  const auto route = xy_route(net, 4, 4, 0, 15);  // (0,0)->(3,3)
  expect_valid_route(net, route, 0, 15);
  EXPECT_EQ(route.size(), 6u);
  // First three hops move along the row (x direction).
  EXPECT_EQ(net.link(route[0]).to, 1u);
  EXPECT_EQ(net.link(route[2]).to, 3u);
  EXPECT_EQ(net.link(route[3]).to, 7u);
}

TEST(Routing, EcubeAndBfsAgreeOnLength) {
  const auto net = build_hypercube(7);
  Rng rng(5);
  for (int t = 0; t < 30; ++t) {
    const auto a = static_cast<std::uint32_t>(rng.below(128));
    const auto b = static_cast<std::uint32_t>(rng.below(128));
    if (a == b) continue;
    EXPECT_EQ(ecube_route(net, 7, a, b).size(), bfs_route(net, a, b).size());
  }
}

}  // namespace
}  // namespace ft
