// E18 — the routing-discipline race: every policy in the zoo against
// every adversarial traffic class (ROADMAP: "Routing-discipline zoo").
//
// The paper's delivery guarantee (Section VI / Greenberg-Leiserson) is
// proved for the *oblivious* randomized lottery: each contended channel
// admits a uniform random capacity-subset, independent of history. The
// zoo (engine/engine.hpp, RoutingPolicy) adds three disciplines on the
// same engine: a deterministic d-mod-k-style wire map (dmod), a
// randomized load-balanced wire map (rlb, after Wang et al.,
// arXiv:1708.09135), and an occupancy-feedback adaptive discipline
// (adaptive, after Rocher-Gonzalez et al., arXiv:2502.00597) that parks
// repeat losers at persistently hot channels with desynchronized retry
// delays.
//
// The race runs all four policies over five traffic classes
// (core/traffic.hpp): a persistent hotspot with uniform background, an
// incast, an elephant/mice mix, an adversarial residue pattern aimed at
// static wire maps, and a uniform baseline. Per cell it reports delivery
// cycles, exact p99 latency stretch (per-delivery samples via
// wants_latency_samples(), not a digest), and arbitration losses.
//
// Gates (CI runs --quick; any failure exits nonzero):
//   G1 conservation — every cell delivers all messages, no give-ups;
//   G2 tail stretch — adaptive strictly reduces the background's p99
//      delivery stretch vs oblivious under a persistent hotspot on the
//      unit-capacity tree. The background is local traffic (radius 4), so
//      no globally shared channel throughput-binds the tail; what
//      stretches it is pure collateral — hot-flow retry zombies stealing
//      arbitration wins on the channels they climb through every cycle.
//      Occupancy feedback must pay for itself exactly there.
//   G3 losses — adaptive also strictly reduces total arbitration losses
//      in that cell (the mechanism behind G2, pinned separately so a
//      p99 win by luck cannot mask a loss regression).
#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/capacity.hpp"
#include "core/online_router.hpp"
#include "core/topology.hpp"
#include "core/traffic.hpp"
#include "engine/engine.hpp"
#include "engine/observer.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"
#include "sim/experiment.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

namespace {

/// Collects every delivery's exact stretch (latency / ideal); the race
/// gates on the exact p99, so no digest approximation.
class LatencyCollector final : public ft::EngineObserver {
 public:
  void on_cycle(const ft::CycleSnapshot& s) override {
    if (s.latencies == nullptr) return;
    for (const ft::LatencySample& l : *s.latencies) {
      stretches_.push_back(static_cast<double>(l.latency) /
                           static_cast<double>(std::max(1u, l.ideal)));
    }
  }
  bool wants_latency_samples() const override { return true; }
  bool wants_channel_state(std::uint32_t) const override { return false; }

  double p99() {
    if (stretches_.empty()) return 0.0;
    std::sort(stretches_.begin(), stretches_.end());
    const std::size_t idx =
        (stretches_.size() * 99 + 99) / 100;  // ceil(0.99 n), 1-based
    return stretches_[std::min(idx, stretches_.size()) - 1];
  }
  std::size_t samples() const { return stretches_.size(); }

 private:
  std::vector<double> stretches_;
};

std::uint64_t sum_u32(const std::vector<std::uint32_t>& v) {
  std::uint64_t s = 0;
  for (const std::uint32_t x : v) s += x;
  return s;
}

struct PolicyEntry {
  const char* name;
  ft::RoutingPolicy policy;
};

struct CellResult {
  std::uint64_t cycles = 0;
  std::uint64_t losses = 0;
  std::uint64_t attempts = 0;
  double p99 = 0.0;
  bool conserved = false;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  ft::print_experiment_header(
      "E18", "routing-discipline race over the adversarial traffic zoo",
      "all disciplines conserve messages; occupancy feedback strictly "
      "beats the oblivious lottery on tail stretch and losses under a "
      "persistent hotspot");

  const std::uint32_t n = quick ? 64 : 256;
  const std::uint32_t w = n / 4;
  const ft::FatTreeTopology topo(n);
  const auto universal = ft::CapacityProfile::universal(topo, w);
  const auto unit = ft::CapacityProfile::constant(topo, 1);

  const std::vector<PolicyEntry> policies = {
      {"oblivious", ft::RoutingPolicy::ObliviousRandom},
      {"dmod", ft::RoutingPolicy::DeterministicDmod},
      {"rlb", ft::RoutingPolicy::RandomLoadBalanced},
      {"adaptive", ft::RoutingPolicy::AdaptiveOccupancy},
  };

  // The zoo. The persistent hotspot keeps its hot flows under 1% of the
  // population so the p99 stretch measures *collateral* damage — how much
  // the background is starved by hot-flow retry zombies — rather than the
  // hot flows' own (inevitably serialized) drain.
  struct TrafficClass {
    std::string name;
    ft::MessageSet messages;
    const ft::CapacityProfile* caps;
  };
  std::vector<TrafficClass> zoo;
  const std::size_t hot_count = quick ? 12 : 32;
  const std::size_t background = quick ? 1536 : 4096;
  {
    ft::Rng rng(101);
    zoo.push_back({"hotspot/unit",
                   ft::persistent_hotspot_traffic(n, n / 3, hot_count,
                                                  background, rng),
                   &unit});
  }
  {
    ft::Rng rng(102);
    zoo.push_back(
        {"incast", ft::incast_traffic(n, std::size_t{2} * n, n / 2, rng),
         &universal});
  }
  {
    ft::Rng rng(103);
    zoo.push_back({"elephant-mice",
                   ft::elephant_mice_traffic(n, /*elephants=*/8,
                                             /*elephant_size=*/quick ? 24 : 48,
                                             /*mice=*/quick ? 512 : 2048, rng),
                   &universal});
  }
  {
    ft::Rng rng(104);
    zoo.push_back({"residue-adversary",
                   ft::adversarial_residue_traffic(n, /*modulus=*/8, rng),
                   &universal});
  }
  {
    ft::Rng rng(105);
    zoo.push_back({"uniform",
                   ft::uniform_random_traffic(n, std::size_t{4} * n, rng),
                   &universal});
  }

  ft::RunReport run_report("exp_routing_race");
  {
    ft::JsonValue& params = run_report.params();
    params["n"] = n;
    params["w"] = w;
    params["hot_count"] = hot_count;
    params["background"] = background;
    params["quick"] = quick;
  }
  ft::PhaseTimers timers;
  bool all_ok = true;

  // ---- The race: every policy through every traffic class. ------------
  // One shared router seed per class: every policy sees the identical
  // message set and the identical engine seed, so differences are pure
  // discipline, not luck of the draw.
  std::vector<std::vector<CellResult>> results(zoo.size());
  {
    auto phase = timers.scope("race");
    ft::Table table({"traffic", "policy", "msgs", "cycles", "losses",
                     "p99 stretch", "conserved"});
    for (std::size_t t = 0; t < zoo.size(); ++t) {
      const TrafficClass& tc = zoo[t];
      for (const PolicyEntry& pe : policies) {
        LatencyCollector lat;
        ft::OnlineRouterOptions opts;
        opts.policy = pe.policy;
        opts.observer = &lat;
        ft::Rng rng(1234567);  // same seed across policies, per class
        const auto res =
            ft::route_online(topo, *tc.caps, tc.messages, rng, opts);

        CellResult cell;
        cell.cycles = res.delivery_cycles;
        cell.losses = res.total_losses;
        cell.attempts = res.total_attempts;
        cell.p99 = lat.p99();
        cell.conserved = !res.gave_up && res.messages_given_up == 0 &&
                         sum_u32(res.delivered_per_cycle) ==
                             tc.messages.size();
        results[t].push_back(cell);

        table.row()
            .add(tc.name)
            .add(pe.name)
            .add(tc.messages.size())
            .add(cell.cycles)
            .add(cell.losses)
            .add(cell.p99, 2)
            .add(cell.conserved ? "yes" : "NO");
        if (!cell.conserved) {
          std::cout << "G1 CONSERVATION VIOLATED: traffic=" << tc.name
                    << " policy=" << pe.name << "\n";
          all_ok = false;
        }

        ft::JsonValue& run =
            run_report.add_run("race/" + tc.name + "/" + pe.name);
        run["traffic"] = tc.name;
        run["policy"] = pe.name;
        run["messages"] = tc.messages.size();
        run["cycles"] = cell.cycles;
        run["total_attempts"] = cell.attempts;
        run["total_losses"] = cell.losses;
        run["p99_stretch"] = cell.p99;
        run["latency_samples"] = lat.samples();
        run["conserved"] = cell.conserved;
      }
    }
    table.print(std::cout,
                "routing-discipline race, n = " + std::to_string(n) +
                    ", shared engine seed per traffic class");
  }

  // ---- Gates G2/G3: occupancy feedback must pay for itself. -----------
  // A dedicated hotspot cell on the unit-capacity tree: hot flows first
  // (ids 0..hot-1 in the engine's injection order), then a stack of local
  // permutations as background. Local traffic keeps every background path
  // short and spread over the tree, so no single channel throughput-binds
  // the tail; the background's p99 deliver cycle then measures exactly
  // how long hot-flow zombies starve bystanders. Per-message deliver
  // cycles come from the trace stream (all messages are injected in cycle
  // 1, so deliver cycle == latency == stretch for the unit ideal).
  bool gates_ok = true;
  {
    auto phase = timers.scope("hotspot_gate");
    const std::size_t gate_hot = quick ? 64 : 128;
    const std::uint32_t gate_stack = quick ? 4 : 6;
    const ft::Leaf gate_sink = n / 3;
    ft::MessageSet gm;
    {
      ft::Rng rng(201);
      gm = ft::persistent_hotspot_traffic(n, gate_sink, gate_hot, 0, rng);
      for (std::uint32_t s = 0; s < gate_stack; ++s) {
        const auto local = ft::local_traffic(n, 4, rng);
        gm.insert(gm.end(), local.begin(), local.end());
      }
    }
    // Engine ids count only non-self messages (self messages are local
    // deliveries and never enter the engine); hot flows never self-send,
    // so they keep ids 0..gate_hot-1 and everything at or past gate_hot
    // is background.
    std::size_t nonself = 0;
    for (const ft::Message& msg : gm) nonself += msg.src != msg.dst;

    const auto run_traced = [&](ft::RoutingPolicy pol,
                                std::vector<double>& bg, std::uint64_t& losses,
                                bool& conserved) {
      ft::TraceSink trace;
      ft::OnlineRouterOptions opts;
      opts.policy = pol;
      opts.observer = &trace;
      ft::Rng rng(7654321);
      const auto res = ft::route_online(topo, unit, gm, rng, opts);
      losses = res.total_losses;
      conserved = !res.gave_up && res.messages_given_up == 0 &&
                  sum_u32(res.delivered_per_cycle) == gm.size();
      bg.clear();
      for (const ft::MessageEvent& e : trace.message_events()) {
        if (e.kind == ft::MessageEventKind::Deliver &&
            e.message != ft::kNoMessage && e.message >= gate_hot) {
          bg.push_back(e.cycle);
        }
      }
      std::sort(bg.begin(), bg.end());
    };
    const auto p99_of = [](const std::vector<double>& v) {
      if (v.empty()) return 0.0;
      const std::size_t idx = (v.size() * 99 + 99) / 100;
      return v[std::min(idx, v.size()) - 1];
    };

    ft::Table table({"policy", "bg msgs", "bg p99 stretch", "losses",
                     "conserved"});
    double obl_p99 = 0, ada_p99 = 0;
    std::uint64_t obl_losses = 0, ada_losses = 0;
    for (const PolicyEntry& pe : policies) {
      std::vector<double> bg;
      std::uint64_t losses = 0;
      bool conserved = false;
      run_traced(pe.policy, bg, losses, conserved);
      if (bg.size() != nonself - gate_hot) conserved = false;
      const double p99 = p99_of(bg);
      table.row()
          .add(pe.name)
          .add(bg.size())
          .add(p99, 2)
          .add(losses)
          .add(conserved ? "yes" : "NO");
      if (!conserved) {
        std::cout << "G1 CONSERVATION VIOLATED in the hotspot gate cell: "
                  << "policy=" << pe.name << "\n";
        all_ok = false;
      }
      if (pe.policy == ft::RoutingPolicy::ObliviousRandom) {
        obl_p99 = p99;
        obl_losses = losses;
      }
      if (pe.policy == ft::RoutingPolicy::AdaptiveOccupancy) {
        ada_p99 = p99;
        ada_losses = losses;
      }
      ft::JsonValue& run = run_report.add_run("gate/hotspot/" +
                                              std::string(pe.name));
      run["policy"] = pe.name;
      run["background_messages"] = bg.size();
      run["background_p99_stretch"] = p99;
      run["total_losses"] = losses;
      run["conserved"] = conserved;
    }
    table.print(std::cout,
                "G2/G3 cell: " + std::to_string(gate_hot) +
                    " hot flows into leaf " + std::to_string(gate_sink) +
                    " + " + std::to_string(gate_stack) +
                    " local perms, unit capacities");

    std::cout << "\nbackground tail: oblivious p99 = " << obl_p99
              << ", adaptive p99 = " << ada_p99
              << "  |  losses: " << obl_losses << " vs " << ada_losses
              << "\n";
    if (!(ada_p99 < obl_p99)) {
      std::cout << "G2 TAIL-STRETCH GATE FAILED: adaptive background p99 "
                << ada_p99 << " does not strictly beat oblivious " << obl_p99
                << " under the persistent hotspot\n";
      gates_ok = false;
    }
    if (!(ada_losses < obl_losses)) {
      std::cout << "G3 LOSS GATE FAILED: adaptive losses " << ada_losses
                << " do not strictly beat oblivious losses " << obl_losses
                << "\n";
      gates_ok = false;
    }
    ft::JsonValue& gate = run_report.add_run("gates/hotspot");
    gate["oblivious_p99"] = obl_p99;
    gate["adaptive_p99"] = ada_p99;
    gate["oblivious_losses"] = obl_losses;
    gate["adaptive_losses"] = ada_losses;
    gate["tail_gate_ok"] = ada_p99 < obl_p99;
    gate["loss_gate_ok"] = ada_losses < obl_losses;
  }
  all_ok = all_ok && gates_ok;

  std::cout << (all_ok
                    ? "\nEvery discipline conserves messages; the adaptive "
                      "policy's desynchronized\nparking thins the retry "
                      "zombies at the hot channel, so the background's\n"
                      "tail stretch and the total loss count both drop.\n"
                    : "\nROUTING RACE GATES FAILED\n");

  run_report.set_phases(timers);
  const char* path = "report_exp_routing_race.json";
  if (!run_report.write_file(path)) {
    std::cout << "\nFAILED TO WRITE " << path << '\n';
    return 1;
  }
  std::cout << "\nwrote " << path << '\n';
  const auto parsed = ft::RunReport::read_file(path);
  if (!parsed.has_value()) {
    std::cout << "REPORT DID NOT PARSE BACK\n";
    return 1;
  }
  return all_ok ? 0 : 1;
}
