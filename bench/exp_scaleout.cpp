// E17 — million-leaf scale-out: streamed message sets plus the
// subtree-sharded parallel engine route a full random permutation on an
// n = 2^20 universal fat-tree (w = n/2) within a bounded memory
// footprint, and every thread count produces bit-identical results.
//
// The workload is generated on demand (RandomPermutationStream keeps only
// the 4n-byte destination table) and compiled to engine input one chunk
// at a time, so the run's peak RSS is dominated by the engine's live
// state, not the input. The sweep times serial mode and parallel mode at
// 1, 2, 4, ... hardware threads; cycles/s per thread count lands in
// report_exp_scaleout.json (schema ft.run_report/2), along with the
// engine's measured Amdahl phase decomposition per run (the serial spine
// band + coordination vs the shard-parallel sweeps) and the telemetry
// parity check below.
//
// Gates (exit 1 on failure):
//   - every run delivers all n messages without giving up;
//   - delivery cycles, losses, and the delivered-per-cycle histogram are
//     identical across all thread counts (serial == sharded parallel);
//   - a serial and a max-thread parallel run observed by the congestion
//     observatory produce bit-identical telemetry streams (fingerprint
//     equality);
//   - peak RSS stays under 8 GiB at n = 2^20;
//   - on hosts with >= 4 hardware threads, the best parallel run reaches
//     >= 1.5x serial cycles/s (skipped below 4 threads, where the
//     speedup is not measurable).
//
// Usage: exp_scaleout [--quick]   (--quick drops to n = 2^18 for CI)
#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/capacity.hpp"
#include "core/online_router.hpp"
#include "core/topology.hpp"
#include "core/traffic.hpp"
#include "obs/run_report.hpp"
#include "obs/telemetry.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

namespace {

struct SweepRow {
  std::string mode;
  std::size_t threads = 0;  // 0 = serial
  std::uint64_t cycles = 0;
  std::uint64_t losses = 0;
  std::uint64_t delivered = 0;
  std::uint64_t histogram_fnv = 0;
  double seconds = 0.0;
  double cycles_per_sec = 0.0;
  ft::EnginePhaseProfile phases;  // from the fastest repetition
};

std::uint64_t fnv1a_u32(const std::vector<std::uint32_t>& v) {
  std::uint64_t h = 14695981039346656037ull;
  for (const std::uint32_t x : v) h = (h ^ x) * 1099511628211ull;
  return h;
}

SweepRow run_once(const ft::FatTreeTopology& topo,
                  const ft::CapacityProfile& caps, std::uint32_t n,
                  bool parallel, std::size_t threads, int reps,
                  bool parallel_spine = true) {
  SweepRow row;
  row.mode = parallel ? "parallel/t=" + std::to_string(threads) : "serial";
  if (parallel && !parallel_spine) row.mode += "/serial-spine";
  row.threads = parallel ? threads : 0;
  row.seconds = 1e300;

  for (int rep = 0; rep < reps; ++rep) {
    // Fresh generators per repetition: streams are single-pass, and
    // every run must see the same permutation and draw the same engine
    // seed — repetitions only tighten the min-of-N timing.
    ft::Rng gen(777);
    ft::RandomPermutationStream stream(n, gen);
    ft::Rng rng(4242);

    ft::OnlineRouterOptions opts;
    opts.parallel = parallel;
    opts.threads = threads;
    opts.parallel_spine = parallel_spine;
    opts.time_phases = true;

    const auto t0 = std::chrono::steady_clock::now();
    const auto r = ft::route_online_stream(topo, caps, stream,
                                           /*lambda_hint=*/1.0, rng, opts);
    const auto t1 = std::chrono::steady_clock::now();

    row.cycles = r.delivery_cycles;
    row.losses = r.total_losses;
    row.delivered = 0;
    for (const std::uint32_t d : r.delivered_per_cycle) row.delivered += d;
    if (r.gave_up) row.delivered = 0;  // a truncated run never passes gates
    row.histogram_fnv = fnv1a_u32(r.delivered_per_cycle);
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    if (secs < row.seconds) row.phases = r.phases;
    row.seconds = std::min(row.seconds, secs);
  }
  row.cycles_per_sec =
      row.seconds > 0 ? static_cast<double>(row.cycles) / row.seconds : 0.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::uint32_t log2_n = quick ? 18 : 20;
  const std::uint32_t n = 1u << log2_n;

  ft::print_experiment_header(
      "E17", "million-leaf scale-out (streamed input, sharded engine)",
      "a 2^20-leaf universal fat-tree routes a random permutation with "
      "O(chunk) input memory, and the subtree-sharded parallel engine "
      "matches serial results bit for bit at every thread count");

  ft::RunReport report("exp_scaleout");
  ft::PhaseTimers timers;
  report.params()["n"] = n;
  report.params()["log2_n"] = log2_n;
  report.params()["root_capacity"] = n / 2;
  report.params()["quick"] = quick;
  report.params()["workload"] = std::string("random_permutation");

  ft::FatTreeTopology topo(n);
  const auto caps = ft::CapacityProfile::universal(topo, n / 2);

  const unsigned hw = ft::host_hardware_threads();
  std::vector<std::size_t> thread_counts{1};
  for (std::size_t t = 2; t <= (hw == 0 ? 1u : hw); t *= 2) {
    thread_counts.push_back(t);
  }

  const int reps = quick ? 1 : 3;
  std::vector<SweepRow> rows;
  {
    auto phase = timers.scope("serial");
    rows.push_back(run_once(topo, caps, n, /*parallel=*/false, 0, reps));
  }
  for (const std::size_t t : thread_counts) {
    auto phase = timers.scope("parallel/t=" + std::to_string(t));
    rows.push_back(run_once(topo, caps, n, /*parallel=*/true, t, reps));
  }
  // The Amdahl control: the same max-thread sharded run with the spine
  // band forced back onto the coordinating thread. Its results must be
  // bit-identical (it goes through the same gates below); its phase
  // profile is the serial-spine reference the spine-parallelization gate
  // compares against.
  const std::size_t par_idx = rows.size() - 1;
  const std::size_t max_t = thread_counts.back();
  std::size_t spine_ref_idx = 0;
  if (max_t >= 2) {
    auto phase = timers.scope("parallel/serial-spine");
    rows.push_back(run_once(topo, caps, n, /*parallel=*/true, max_t, reps,
                            /*parallel_spine=*/false));
    spine_ref_idx = rows.size() - 1;
  }

  const std::uint64_t peak_rss = ft::host_peak_rss_bytes();
  constexpr std::uint64_t kRssGate = 8ull << 30;

  ft::Table table({"mode", "cycles", "losses", "delivered", "seconds",
                   "cycles/s", "msgs/s", "vs serial"});
  const double serial_rate = rows.front().cycles_per_sec;
  for (const SweepRow& row : rows) {
    const double msgs_per_sec =
        row.seconds > 0 ? static_cast<double>(row.delivered) / row.seconds
                        : 0.0;
    table.row()
        .add(row.mode)
        .add(row.cycles)
        .add(row.losses)
        .add(row.delivered)
        .add(row.seconds, 2)
        .add(row.cycles_per_sec, 1)
        .add(msgs_per_sec, 0)
        .add(ft::ratio_str(row.cycles_per_sec, serial_rate));

    ft::JsonValue& run = report.add_run("scaleout/" + row.mode);
    run["mode"] = row.mode;
    run["threads"] = static_cast<std::uint64_t>(row.threads);
    run["cycles"] = row.cycles;
    run["losses"] = row.losses;
    run["delivered"] = row.delivered;
    run["histogram_fnv"] = row.histogram_fnv;
    run["seconds"] = row.seconds;
    run["cycles_per_sec"] = row.cycles_per_sec;
    run["messages_per_sec"] = msgs_per_sec;
    run["amdahl"] = ft::phase_profile_json(row.phases);
  }
  table.print(std::cout,
              "n = " + std::to_string(n) + ", w = " + std::to_string(n / 2) +
                  ": cycles/s vs threads (identical results required)");
  std::cout << '\n';

  bool ok = true;

  // The measured Amdahl decomposition of the sharded executor, from the
  // fastest max-thread parallel run: how much of each cycle is the
  // inherently serial spine band + coordination vs the shard-parallel
  // up/down sweeps.
  {
    const SweepRow& par = rows[par_idx];
    const double sf = par.phases.serial_fraction();
    std::cout << "amdahl (" << par.mode << "): serial fraction " << sf
              << " (spine " << par.phases.spine_seconds << "s + coord "
              << par.phases.coord_seconds << "s of "
              << par.phases.total_seconds() << "s; parallel spine "
              << par.phases.spine_parallel_seconds << "s); speedup ceiling "
              << (sf > 0 ? 1.0 / sf : 0.0) << "x\n";
    report.root()["amdahl"] = ft::phase_profile_json(par.phases);
  }

  // Spine-parallelization gate: with >= 2 worker threads, arbitrating the
  // spine band on the pool must strictly shrink the measured Amdahl
  // serial fraction relative to the serial-spine control above — the
  // whole point of the parallel spine. Skipped on 1-thread hosts, where
  // both runs degenerate to the same serial executor.
  std::string spine_gate = "skipped (host has fewer than 2 threads)";
  if (spine_ref_idx != 0 && hw >= 2) {
    const double sf_par = rows[par_idx].phases.serial_fraction();
    const double sf_ser = rows[spine_ref_idx].phases.serial_fraction();
    report.root()["amdahl_serial_spine"] =
        ft::phase_profile_json(rows[spine_ref_idx].phases);
    if (sf_par < sf_ser) {
      spine_gate = "passed";
      std::cout << "spine gate: parallel-spine serial fraction " << sf_par
                << " < serial-spine " << sf_ser << "\n";
    } else {
      spine_gate = "FAILED";
      std::cout << "GATE FAIL: parallel-spine serial fraction " << sf_par
                << " did not drop below the serial-spine control " << sf_ser
                << "\n";
      ok = false;
    }
  } else {
    std::cout << "spine gate: skipped (" << hw
              << " hardware thread(s); needs >= 2)\n";
  }
  report.root()["spine_gate"] = spine_gate;

  // Telemetry parity: one serial and one max-thread parallel run observed
  // by the congestion observatory must emit bit-identical streams — the
  // probe rides the serial coordination path, so any divergence means the
  // sharded executor reordered observable state.
  {
    auto phase = timers.scope("telemetry_parity");
    std::uint64_t fp_serial = 0, fp_parallel = 0;
    std::uint64_t amdahl_telemetry_cycles = 0;
    for (const bool parallel : {false, true}) {
      ft::Rng gen(777);
      ft::RandomPermutationStream stream(n, gen);
      ft::Rng rng(4242);
      ft::TelemetryOptions topts;
      topts.every_k = 4;  // bounded channel-state scans at n = 2^20
      ft::TelemetryProbe probe(topts);
      ft::OnlineRouterOptions opts;
      opts.parallel = parallel;
      opts.threads = parallel ? max_t : 0;
      opts.observer = &probe;
      const auto r = ft::route_online_stream(topo, caps, stream,
                                             /*lambda_hint=*/1.0, rng, opts);
      (parallel ? fp_parallel : fp_serial) = probe.fingerprint();
      amdahl_telemetry_cycles = r.delivery_cycles;
      if (parallel) {
        ft::JsonValue& run = report.add_run("telemetry/parallel/t=" +
                                            std::to_string(max_t));
        run["cycles"] = r.delivery_cycles;
        run["telemetry"] = probe.to_json();
      }
    }
    if (fp_serial != fp_parallel) {
      std::cout << "GATE FAIL: telemetry streams diverge (serial fingerprint "
                << fp_serial << " vs parallel " << fp_parallel << ")\n";
      ok = false;
    } else {
      std::cout << "telemetry parity: serial == parallel/t=" << max_t
                << " fingerprint over " << amdahl_telemetry_cycles
                << " cycles\n";
    }
    report.root()["telemetry_fingerprint_serial"] = fp_serial;
    report.root()["telemetry_fingerprint_parallel"] = fp_parallel;
  }

  for (const SweepRow& row : rows) {
    if (row.delivered != n) {
      std::cout << "GATE FAIL: " << row.mode << " delivered "
                << row.delivered << " of " << n << " messages\n";
      ok = false;
    }
  }
  for (const SweepRow& row : rows) {
    if (row.cycles != rows.front().cycles ||
        row.losses != rows.front().losses ||
        row.histogram_fnv != rows.front().histogram_fnv) {
      std::cout << "GATE FAIL: " << row.mode
                << " diverges from serial (cycles " << row.cycles << " vs "
                << rows.front().cycles << ", losses " << row.losses << " vs "
                << rows.front().losses << ", histogram fnv "
                << row.histogram_fnv << " vs " << rows.front().histogram_fnv
                << ")\n";
      ok = false;
    }
  }
  std::cout << "peak RSS: " << (peak_rss >> 20) << " MiB (gate: "
            << (kRssGate >> 20) << " MiB)\n";
  if (peak_rss == 0) {
    std::cout << "note: peak RSS unavailable on this platform; gate skipped\n";
  } else if (!quick && peak_rss >= kRssGate) {
    std::cout << "GATE FAIL: peak RSS " << (peak_rss >> 20)
              << " MiB >= 8 GiB\n";
    ok = false;
  }

  std::string speedup_gate = "skipped (host has fewer than 4 threads)";
  if (hw >= 4) {
    double best_parallel = 0.0;
    for (const SweepRow& row : rows) {
      if (row.threads > 0) {
        best_parallel = std::max(best_parallel, row.cycles_per_sec);
      }
    }
    const double speedup = serial_rate > 0 ? best_parallel / serial_rate : 0;
    if (speedup >= 1.5) {
      speedup_gate = "passed";
      std::cout << "speedup gate: best parallel is " << speedup
                << "x serial (>= 1.5x required)\n";
    } else {
      speedup_gate = "FAILED";
      std::cout << "GATE FAIL: best parallel is only " << speedup
                << "x serial (>= 1.5x required on a " << hw
                << "-thread host)\n";
      ok = false;
    }
  } else {
    std::cout << "speedup gate: skipped (" << hw
              << " hardware thread(s); needs >= 4)\n";
  }

  report.root()["peak_rss_bytes"] = peak_rss;
  report.root()["speedup_gate"] = speedup_gate;
  report.root()["gates_passed"] = ok;
  report.set_phases(timers);
  report.write_file("report_exp_scaleout.json");
  std::cout << (ok ? "\nall gates passed\n" : "\nGATES FAILED\n");
  return ok ? 0 : 1;
}
