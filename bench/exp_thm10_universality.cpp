// E10 — Theorem 10, the universality theorem: a universal fat-tree of
// volume v simulates any routing network of volume v off-line with
// O(lg³ n) slowdown.
//
// Runs the full pipeline (layout -> decomposition -> balance -> identify
// -> schedule) for hypercube, mesh, butterfly, shuffle-exchange, and the
// simple binary tree, across workloads and sizes.
#include <algorithm>
#include <iostream>

#include "core/traffic.hpp"
#include "nets/builders.hpp"
#include "nets/layouts.hpp"
#include "sim/universality.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"
#include "sim/experiment.hpp"

int main() {
  ft::print_experiment_header(
      "E10", "Theorem 10 universality",
      "any network R of volume v is simulated by the equal-volume "
      "universal fat-tree with O(lg^3 n) slowdown (off-line)");

  {
    const std::uint32_t n = 256;
    ft::Rng rng(1);
    const auto m = ft::random_permutation_traffic(n, rng);

    struct Case {
      ft::Network net;
      ft::Layout3D layout;
    };
    std::vector<Case> cases;
    cases.push_back({ft::build_hypercube(8), ft::layout_hypercube(n)});
    cases.push_back({ft::build_mesh2d(16, 16), ft::layout_mesh2d(16, 16)});
    cases.push_back(
        {ft::build_shuffle_exchange(8), ft::layout_shuffle_exchange(n)});
    cases.push_back({ft::build_butterfly(8), ft::layout_butterfly(n)});
    cases.push_back({ft::build_binary_tree(8), ft::layout_binary_tree(n)});
    cases.push_back(
        {ft::build_tree_of_meshes(8), ft::layout_tree_of_meshes(n)});

    ft::Table table({"network R", "volume v", "ft root cap", "R rounds t",
                     "ft lambda", "ft cycles", "slowdown", "slowdown/lg^3 n"});
    for (const auto& c : cases) {
      const auto r = ft::simulate_network_on_fattree(c.net, c.layout, m);
      table.row()
          .add(c.net.name())
          .add(r.volume, 0)
          .add(r.ft_root_capacity)
          .add(static_cast<std::uint64_t>(r.competitor_rounds))
          .add(r.load_factor, 2)
          .add(r.ft_cycles)
          .add(r.slowdown, 1)
          .add(r.slowdown / r.lg3_n, 3);
    }
    table.print(std::cout,
                "random permutation, n = 256, equal-volume comparison");
    std::cout << '\n';
  }

  // Workload sweep on the hypercube (the strongest competitor).
  {
    const std::uint32_t n = 256;
    const auto net = ft::build_hypercube(8);
    const auto layout = ft::layout_hypercube(n);
    ft::Rng rng(3);
    ft::Table table({"workload", "R rounds t", "ft cycles", "slowdown",
                     "slowdown/lg^3 n"});
    for (const auto& wl : ft::standard_workloads(n, rng)) {
      const auto r = ft::simulate_network_on_fattree(net, layout, wl.messages);
      table.row()
          .add(wl.name)
          .add(static_cast<std::uint64_t>(r.competitor_rounds))
          .add(r.ft_cycles)
          .add(r.slowdown, 1)
          .add(r.slowdown / r.lg3_n, 3);
    }
    table.print(std::cout, "hypercube vs equal-volume fat-tree, by workload");
    std::cout << '\n';
  }

  // Size sweep: the slowdown grows like a polylog, not a polynomial.
  {
    ft::Table table({"n", "lg^3 n", "slowdown (hypercube, rand perm)",
                     "slowdown/lg^3 n"});
    for (std::uint32_t lg = 5; lg <= 9; ++lg) {
      const std::uint32_t n = 1u << lg;
      ft::Rng rng(lg);
      const auto m = ft::random_permutation_traffic(n, rng);
      const auto r = ft::simulate_network_on_fattree(
          ft::build_hypercube(lg), ft::layout_hypercube(n), m);
      table.row()
          .add(n)
          .add(r.lg3_n, 0)
          .add(r.slowdown, 1)
          .add(r.slowdown / r.lg3_n, 3);
    }
    table.print(std::cout, "size sweep: slowdown/lg^3 n stays bounded");
  }
  return 0;
}
