// E9 — Theorem 8 / Corollary 9: balancing a decomposition tree costs only
// a constant bandwidth factor.
//
// For each layout: build the Theorem 5 tree, balance it with the pearl
// machinery, and report the per-depth ratio of balanced width to raw
// width against Corollary 9's 4a/(a-1) bound (a = 4^{1/3} -> ~10.8).
#include <algorithm>
#include <cmath>
#include <iostream>

#include "layout/balanced.hpp"
#include "nets/layouts.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

namespace {

void report(const char* name, const ft::Layout3D& layout) {
  const auto tree = ft::cut_plane_decomposition(layout);
  const ft::BalancedDecomposition balanced(tree);
  const double a = std::cbrt(4.0);
  const double bound = 4.0 * a / (a - 1.0);

  ft::Table table({"depth k", "raw width w_k", "balanced w'_k", "ratio",
                   "Cor. 9 bound"});
  const std::uint32_t show =
      std::min({balanced.depth(), tree.depth(), 8u});
  for (std::uint32_t d = 0; d <= show; ++d) {
    const double wb = balanced.width_at_depth(d);
    const double wr = tree.width_at_depth(d);
    if (wb == 0.0 || wr == 0.0) continue;
    table.row()
        .add(d)
        .add(wr, 1)
        .add(wb, 1)
        .add(wb / wr, 2)
        .add(bound, 2);
  }
  table.print(std::cout, std::string(name) +
                             " (balanced depth = " +
                             std::to_string(balanced.depth()) + ")");
  std::cout << '\n';
}

}  // namespace

int main() {
  ft::print_experiment_header(
      "E9", "Theorem 8 + Corollary 9 balanced decomposition trees",
      "rebalancing processors costs at most 4a/(a-1) in bandwidth "
      "(~10.8x for a = cuberoot 4); measured ratios stay well below");

  report("3-D mesh 8x8x8", ft::layout_mesh3d(8, 8, 8));
  report("hypercube n=256", ft::layout_hypercube(256));
  report("2-D mesh 16x16", ft::layout_mesh2d(16, 16));

  std::cout << "Reading: every ratio is far below the Corollary 9 constant "
               "— the pearl splits\nkeep processor counts exactly halved "
               "while touching few extra subtree surfaces.\n";
  return 0;
}
