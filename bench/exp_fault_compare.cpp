// E16 — correlated subtree faults, compared across all four backends
// (ROADMAP: "Multi-backend fault comparison" + "Correlated failures").
//
// Sections IV-V argue that fattened upper channels localize damage: when a
// whole subtree loses power (shared feed/cabling — a *correlated* failure,
// unlike the independent flaps of E14), a universal fat-tree with
// cap(k) = min(2^(lg n - k), ceil(w / 2^(2k/3))) should degrade only the
// traffic touching the dead subtree, while a unit-capacity tree lets the
// retry "zombies" (messages climbing toward a dead channel, dying, and
// retrying next cycle) starve everyone else's skinny channels.
//
// Phase A replays the *same* kill scenario — same plan seed, same heap
// node label — through all four delivery backends: route_online (lossy
// fat-tree), offline schedule replay (Tally), store-and-forward on the
// unit binary tree (FIFO), and the k-ary n-tree simulation (FIFO, k = 2,
// so pods coincide with binary subtrees). Every backend must conserve
// messages: delivered + given_up == injected.
//
// Phase B is the paper-grounded localization check: a subtree kill of
// height d (2^d leaves) on the universal profile must not stretch the
// delivery of *unaffected* messages (neither endpoint in the dead
// subtree) more than the same kill does on a unit-capacity tree, and the
// number of disturbed unaffected messages must stay O(2^d). The
// experiment exits nonzero if conservation or either localization bound
// fails — CI runs it with --quick.
#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/capacity.hpp"
#include "core/offline_scheduler.hpp"
#include "core/online_router.hpp"
#include "core/replay.hpp"
#include "core/topology.hpp"
#include "core/traffic.hpp"
#include "engine/fat_tree_model.hpp"
#include "engine/fault_plan.hpp"
#include "engine/kary_model.hpp"
#include "kary/kary_sim.hpp"
#include "kary/kary_tree.hpp"
#include "nets/builders.hpp"
#include "nets/routing.hpp"
#include "nets/store_forward.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"
#include "sim/experiment.hpp"
#include "util/bits.hpp"
#include "util/table.hpp"

namespace {

constexpr std::uint64_t kPlanSeed = 911;

std::uint64_t sum_u32(const std::vector<std::uint32_t>& v) {
  std::uint64_t s = 0;
  for (const std::uint32_t x : v) s += x;
  return s;
}

/// One backend's outcome under one fault severity.
struct BackendRun {
  std::uint64_t cycles = 0;
  double availability = 1.0;
  std::uint64_t gave_up = 0;
  std::uint64_t kills = 0;
  std::uint64_t fault_downs = 0;
  bool conserved = false;
};

/// Fat-tree FaultPlan killing the subtree at heap node v (0 = fault-free).
ft::FaultPlan fat_tree_kill_plan(const ft::FatTreeTopology& topo,
                                 std::uint32_t node, std::uint32_t duration) {
  ft::FaultPlan plan(kPlanSeed);
  if (node != 0) {
    plan.set_domains({ft::fat_tree_subtree_domain(topo, node)});
    plan.add_subtree_kill({node, /*at_cycle=*/1, duration});
  }
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  ft::print_experiment_header(
      "E16", "correlated subtree faults across backends (Sections IV-V)",
      "fattening localizes a subtree kill: only traffic touching the dead "
      "subtree stretches on a universal fat-tree, every backend conserves "
      "messages");

  const std::uint32_t n = quick ? 64 : 256;
  const std::uint32_t w = quick ? 16 : 64;
  const ft::FatTreeTopology topo(n);
  const std::uint32_t L = topo.height();
  const auto caps = ft::CapacityProfile::universal(topo, w);
  const std::uint32_t kill_duration = quick ? 24 : 48;

  // One permutation drives every backend (the k-ary simulation takes the
  // raw permutation; the others take the equivalent message set).
  ft::Rng prng(7);
  std::vector<std::uint32_t> perm(n);
  for (std::uint32_t i = 0; i < n; ++i) perm[i] = i;
  for (std::uint32_t i = n - 1; i > 0; --i) {
    const std::uint32_t j =
        static_cast<std::uint32_t>(prng.below(std::size_t{i} + 1));
    std::swap(perm[i], perm[j]);
  }
  ft::MessageSet m;
  m.reserve(n);
  for (std::uint32_t p = 0; p < n; ++p) m.push_back({p, perm[p]});

  ft::RunReport run_report("exp_fault_compare");
  {
    ft::JsonValue& params = run_report.params();
    params["n"] = n;
    params["w"] = w;
    params["kill_duration"] = kill_duration;
    params["plan_seed"] = kPlanSeed;
    params["quick"] = quick;
  }
  ft::PhaseTimers timers;
  bool all_ok = true;

  // ---- Phase A: one kill scenario through all four backends. ----------
  struct Severity {
    const char* name;
    std::uint32_t node;  // heap node of the killed subtree, 0 = none
  };
  const std::vector<Severity> severities = {
      {"none", 0},
      {"pod", 1u << (L - 2)},  // 4 leaves
      {"half", 2},             // n/2 leaves
  };
  const char* backend_names[4] = {"online", "replay", "store_forward",
                                  "kary"};

  // Shared fixtures: the offline schedule (replay input), the binary-tree
  // network + BFS routes, and the k-ary tree (k = 2 so pods == subtrees).
  const auto schedule = ft::schedule_offline(topo, caps, m);
  const ft::Network net = ft::build_binary_tree(L);
  const auto routes = ft::route_all_bfs(net, m);
  const ft::KaryTree ktree(2, L);

  {
    auto phase = timers.scope("backend_compare");
    ft::Table table({"severity", "backend", "cycles", "vs healthy",
                     "availability", "gave up", "kills", "conserved"});
    std::uint64_t healthy[4] = {0, 0, 0, 0};
    for (const Severity& sev : severities) {
      const ft::FaultPlan plan_ft =
          fat_tree_kill_plan(topo, sev.node, kill_duration);
      BackendRun runs[4];

      {  // route_online: lossy fat-tree with exponential backoff.
        ft::EngineMetrics metrics;
        ft::OnlineRouterOptions opts;
        opts.observer = &metrics;
        opts.retry.exponential_backoff = true;
        opts.retry.max_backoff = 8;
        if (!plan_ft.empty()) opts.fault_plan = &plan_ft;
        ft::Rng orng(17);
        const auto res = ft::route_online(topo, caps, m, orng, opts);
        runs[0].cycles = res.delivery_cycles;
        runs[0].availability = metrics.availability();
        runs[0].gave_up = res.messages_given_up;
        runs[0].kills = res.subtree_kill_events;
        runs[0].fault_downs = res.fault_down_events;
        runs[0].conserved = !res.gave_up &&
                            sum_u32(res.delivered_per_cycle) +
                                    res.messages_given_up ==
                                m.size();
      }
      {  // offline replay: the precomputed schedule retried under the kill.
        ft::EngineMetrics metrics;
        ft::ReplayOptions ropts;
        if (!plan_ft.empty()) ropts.fault_plan = &plan_ft;
        const auto res =
            ft::replay_schedule(topo, caps, schedule, ropts, &metrics);
        runs[1].cycles = res.cycles;
        runs[1].availability = metrics.availability();
        runs[1].gave_up = res.messages_given_up;
        runs[1].kills = res.subtree_kill_events;
        runs[1].fault_downs = res.fault_down_events;
        runs[1].conserved = res.delivered + res.messages_given_up ==
                            schedule.total_messages();
      }
      {  // store-and-forward on the unit binary tree (FIFO queues wait).
        ft::FaultPlan plan_bt(kPlanSeed);
        if (sev.node != 0) {
          plan_bt.set_domains({ft::binary_tree_subtree_domain(L, sev.node)});
          plan_bt.add_subtree_kill({sev.node, 1, kill_duration});
        }
        ft::EngineMetrics metrics;
        ft::StoreForwardOptions sopts;
        sopts.observer = &metrics;
        if (!plan_bt.empty()) sopts.fault_plan = &plan_bt;
        const auto res = ft::simulate_store_forward(net, routes, sopts);
        runs[2].cycles = res.rounds;
        runs[2].availability = metrics.availability();
        runs[2].kills = res.subtree_kill_events;
        runs[2].fault_downs = res.fault_down_events;
        runs[2].conserved = !res.gave_up && res.delivered == routes.size();
      }
      {  // k-ary n-tree (k = 2): the pod with the same heap label dies.
        ft::FaultPlan plan_ka(kPlanSeed);
        if (sev.node != 0) {
          const std::uint32_t lvl = ft::floor_log2(sev.node);
          plan_ka.set_domains(
              {ft::kary_pod_domain(ktree, lvl, sev.node - (1u << lvl))});
          plan_ka.add_subtree_kill({sev.node, 1, kill_duration});
        }
        ft::EngineMetrics metrics;
        ft::KarySimOptions kopts;
        kopts.observer = &metrics;
        if (!plan_ka.empty()) kopts.fault_plan = &plan_ka;
        ft::Rng krng(23);
        const auto res = ft::simulate_kary_permutation(
            ktree, perm, ft::AscentPolicy::DModK, krng, kopts);
        runs[3].cycles = res.rounds;
        runs[3].availability = metrics.availability();
        runs[3].kills = res.subtree_kill_events;
        runs[3].fault_downs = res.fault_down_events;
        runs[3].conserved = res.delivered == perm.size();
      }

      for (int b = 0; b < 4; ++b) {
        if (sev.node == 0) healthy[b] = std::max<std::uint64_t>(
            runs[b].cycles, 1);
        const double stretch = static_cast<double>(runs[b].cycles) /
                               static_cast<double>(healthy[b]);
        table.row()
            .add(sev.name)
            .add(backend_names[b])
            .add(runs[b].cycles)
            .add(stretch, 2)
            .add(runs[b].availability, 3)
            .add(runs[b].gave_up)
            .add(runs[b].kills)
            .add(runs[b].conserved ? "yes" : "NO");
        if (!runs[b].conserved) {
          std::cout << "MESSAGE CONSERVATION VIOLATED: severity=" << sev.name
                    << " backend=" << backend_names[b] << "\n";
          all_ok = false;
        }
        ft::JsonValue& run = run_report.add_run(
            std::string("compare/") + sev.name + "/" + backend_names[b]);
        run["severity"] = sev.name;
        run["backend"] = backend_names[b];
        run["kill_node"] = sev.node;
        run["cycles"] = runs[b].cycles;
        run["stretch_vs_healthy"] = stretch;
        run["availability"] = runs[b].availability;
        run["messages_given_up"] = runs[b].gave_up;
        run["subtree_kill_events"] = runs[b].kills;
        run["fault_down_events"] = runs[b].fault_downs;
        run["conserved"] = runs[b].conserved;
      }
    }
    table.print(std::cout,
                "same kill scenario (seed " + std::to_string(kPlanSeed) +
                    ", duration " + std::to_string(kill_duration) +
                    ") through all four backends, n = " + std::to_string(n));
    std::cout << "\nEvery backend conserves messages; the FIFO trees ride "
                 "out the outage in their\nqueues while the lossy router "
                 "retries through it.\n\n";
  }

  // ---- Phase B: localization, universal vs unit-capacity fat-tree. ----
  // Retry-every-cycle (no backoff) is the adversarial setting: messages
  // aimed into the dead subtree climb live up-channels each cycle before
  // dying — on a skinny tree those zombies steal the only wire.
  const std::uint32_t stack = quick ? 2 : 4;
  ft::Rng trng(41);
  const auto mloc = ft::stacked_permutations(n, stack, trng);
  std::vector<ft::Message> nonself;
  for (const auto& msg : mloc) {
    if (msg.src != msg.dst) nonself.push_back(msg);
  }
  const std::uint32_t loc_duration = quick ? 32 : 64;
  const auto unit_caps = ft::CapacityProfile::constant(topo, 1);

  // Deliver cycle of every non-self message (injection order), via trace.
  const auto run_traced = [&](const ft::CapacityProfile& prof,
                              const ft::FaultPlan* plan,
                              std::vector<std::uint32_t>& dc) {
    ft::TraceSink trace;
    ft::OnlineRouterOptions opts;
    opts.observer = &trace;
    opts.fault_plan = plan;
    ft::Rng orng(31);
    const auto res = ft::route_online(topo, prof, mloc, orng, opts);
    dc.assign(nonself.size(), 0);
    for (const ft::MessageEvent& e : trace.message_events()) {
      if (e.kind == ft::MessageEventKind::Deliver && e.message != ft::kNoMessage)
        dc[e.message] = e.cycle;
    }
    return !res.gave_up && sum_u32(res.delivered_per_cycle) +
                                   res.messages_given_up ==
                               mloc.size();
  };

  bool localization_ok = true;
  {
    auto phase = timers.scope("localization");
    std::vector<std::uint32_t> healthy_univ, healthy_unit;
    if (!run_traced(caps, nullptr, healthy_univ) ||
        !run_traced(unit_caps, nullptr, healthy_unit)) {
      std::cout << "HEALTHY LOCALIZATION RUN LOST MESSAGES\n";
      all_ok = false;
    }

    ft::Table table({"kill height d", "leaves", "affected msgs",
                     "univ stretch", "unit stretch", "univ disturbed",
                     "unit disturbed"});
    const std::vector<std::uint32_t> heights =
        quick ? std::vector<std::uint32_t>{1, 3, L - 1}
              : std::vector<std::uint32_t>{1, 4, L - 1};
    for (const std::uint32_t d : heights) {
      const std::uint32_t node = 1u << (L - d);  // leftmost, 2^d leaves
      const ft::FaultPlan plan =
          fat_tree_kill_plan(topo, node, loc_duration);
      std::vector<std::uint32_t> faulted_univ, faulted_unit;
      if (!run_traced(caps, &plan, faulted_univ) ||
          !run_traced(unit_caps, &plan, faulted_unit)) {
        std::cout << "FAULTED LOCALIZATION RUN LOST MESSAGES (d=" << d
                  << ")\n";
        all_ok = false;
        continue;
      }

      // Unaffected = neither endpoint under the killed node. Stretch is
      // the mean deliver-cycle ratio over exactly those messages;
      // disturbed = unaffected messages arriving > 4 cycles late.
      std::uint64_t affected = 0, dist_univ = 0, dist_unit = 0;
      double h_univ = 0, f_univ = 0, h_unit = 0, f_unit = 0;
      std::uint64_t unaffected = 0;
      for (std::size_t i = 0; i < nonself.size(); ++i) {
        const bool hit = topo.leaf_in_subtree(nonself[i].src, node) ||
                         topo.leaf_in_subtree(nonself[i].dst, node);
        if (hit) {
          ++affected;
          continue;
        }
        ++unaffected;
        h_univ += healthy_univ[i];
        f_univ += faulted_univ[i];
        h_unit += healthy_unit[i];
        f_unit += faulted_unit[i];
        if (faulted_univ[i] > healthy_univ[i] + 4) ++dist_univ;
        if (faulted_unit[i] > healthy_unit[i] + 4) ++dist_unit;
      }
      const double stretch_univ = h_univ > 0 ? f_univ / h_univ : 1.0;
      const double stretch_unit = h_unit > 0 ? f_unit / h_unit : 1.0;
      table.row()
          .add(d)
          .add(1u << d)
          .add(affected)
          .add(stretch_univ, 2)
          .add(stretch_unit, 2)
          .add(dist_univ)
          .add(dist_unit);

      // Gate 1 (acceptance): under a depth-1 subtree kill the universal
      // profile never stretches unaffected traffic more than the
      // unit-capacity tree (5% slack for arbitration noise). Larger kills
      // are reported but not ratio-gated: amputating half a unit tree
      // also sheds half its congestion, so its surviving traffic can
      // *accelerate* and the ratio stops measuring localization.
      if (d == 1 && stretch_univ > stretch_unit * 1.05) {
        std::cout << "LOCALIZATION FAILED at d=" << d
                  << ": universal stretch " << stretch_univ
                  << " exceeds unit-tree stretch " << stretch_unit << "\n";
        localization_ok = false;
      }
      // Gate 1b: the unit tree suffers at least as much collateral
      // damage as the universal one — the "global stretch" half of the
      // claim (measured gap is ~5x; deterministic, so no flake margin).
      if (d == 1 && dist_univ > dist_unit) {
        std::cout << "LOCALIZATION FAILED at d=" << d
                  << ": universal tree disturbed " << dist_univ
                  << " unaffected messages, unit tree only " << dist_unit
                  << "\n";
        localization_ok = false;
      }
      // Gate 2: damage on the universal tree is O(2^d) — disturbed
      // unaffected messages bounded by a constant times the dead subtree's
      // share of the traffic, plus an additive noise floor: a kill
      // perturbs every arbitration lottery after it, so O(|M|/16)
      // messages shift a few cycles regardless of kill size (the floor is
      // what the unit tree's collateral blows through).
      const std::uint64_t bound =
          4ull * (1ull << d) * stack + nonself.size() / 16 + 8;
      if (dist_univ > bound) {
        std::cout << "LOCALIZATION NOT O(2^d) at d=" << d << ": "
                  << dist_univ << " disturbed messages (bound " << bound
                  << ")\n";
        localization_ok = false;
      }

      ft::JsonValue& run =
          run_report.add_run("localization/d=" + std::to_string(d));
      run["kill_height"] = d;
      run["kill_node"] = node;
      run["affected_messages"] = affected;
      run["unaffected_messages"] = unaffected;
      run["stretch_universal"] = stretch_univ;
      run["stretch_unit"] = stretch_unit;
      run["disturbed_universal"] = dist_univ;
      run["disturbed_unit"] = dist_unit;
      run["disturbed_bound"] = bound;
    }
    table.print(
        std::cout,
        "subtree-kill localization, universal (w = " + std::to_string(w) +
            ") vs unit capacities, " + std::to_string(stack) +
            " stacked perms, retry-every-cycle");
    std::cout << (localization_ok
                      ? "\nThe universal profile confines the damage to the "
                        "dead subtree's own traffic;\nthe skinny tree lets "
                        "retry zombies starve everyone (global stretch) — "
                        "exactly\nthe Section IV-V hardware argument.\n"
                      : "\nLOCALIZATION CHECKS FAILED\n");
  }
  all_ok = all_ok && localization_ok;

  run_report.set_phases(timers);
  const char* path = "report_exp_fault_compare.json";
  if (!run_report.write_file(path)) {
    std::cout << "\nFAILED TO WRITE " << path << '\n';
    return 1;
  }
  std::cout << "\nwrote " << path << '\n';
  const auto parsed = ft::RunReport::read_file(path);
  if (!parsed.has_value()) {
    std::cout << "REPORT DID NOT PARSE BACK\n";
    return 1;
  }
  return all_ok ? 0 : 1;
}
