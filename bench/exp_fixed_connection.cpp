// E12 — the Section VI applications: fixed-connection network emulation
// (one compiled step = O(1) delivery cycles) and off-line permutation
// routing against the Beneš rearrangeable-network baseline.
#include <algorithm>
#include <iostream>

#include "core/load.hpp"
#include "core/offline_scheduler.hpp"
#include "core/traffic.hpp"
#include "nets/benes.hpp"
#include "nets/builders.hpp"
#include "sim/experiment.hpp"
#include "sim/universality.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

int main() {
  ft::print_experiment_header(
      "E12", "Section VI applications",
      "fixed-connection emulation in O(lg n) per step; off-line "
      "permutation routing in O(lg n), matching Benes networks");

  // Fixed-connection emulation across networks and sizes.
  {
    ft::Table table({"network", "n", "degree d", "lambda/step",
                     "cycles/step"});
    for (std::uint32_t lg : {6u, 8u, 10u}) {
      const std::uint32_t n = 1u << lg;
      const std::uint32_t grid = 1u << (lg / 2);
      const ft::Network nets[] = {
          ft::build_hypercube(lg),
          ft::build_mesh2d(grid, n / grid),
          ft::build_shuffle_exchange(lg),
      };
      for (const auto& net : nets) {
        const auto r = ft::emulate_fixed_connection(net, n / 2);
        table.row()
            .add(net.name())
            .add(n)
            .add(static_cast<std::uint64_t>(r.degree))
            .add(r.load_factor, 2)
            .add(r.cycles_per_step);
      }
    }
    table.print(std::cout, "one emulated communication step (compiled "
                           "switch settings)");
    std::cout << "Cycles/step is O(1) across n: each step costs O(lg n) "
                 "time, the paper's claim.\n\n";
  }

  // Permutation routing: full fat-tree off-line vs Beneš depth.
  {
    ft::Table table({"n", "fat-tree cycles (rand perm, packed)",
                     "Benes depth 2 lg n - 1", "Benes settings valid"});
    for (std::uint32_t lg = 4; lg <= 10; lg += 2) {
      const std::uint32_t n = 1u << lg;
      ft::FatTreeTopology topo(n);
      const auto caps = ft::CapacityProfile::doubling(topo);  // w = n
      ft::Rng rng(lg);
      const auto perm = rng.permutation(n);
      ft::MessageSet m;
      for (std::uint32_t p = 0; p < n; ++p) m.push_back({p, perm[p]});
      const auto s = ft::schedule_offline_packed(topo, caps, m);

      const auto settings = ft::benes_route_permutation(perm);
      const bool valid = ft::benes_apply(settings) == perm;
      table.row()
          .add(n)
          .add(s.num_cycles())
          .add(static_cast<std::uint64_t>(settings.num_stages()))
          .add(valid ? "yes" : "NO");
    }
    table.print(std::cout,
                "high-volume fat-tree vs Benes on random permutations");
    std::cout
        << "A full (w = n) fat-tree routes any permutation off-line in O(1) "
           "delivery cycles\n= O(lg n) time — the same order as the Benes "
           "network's 2 lg n - 1 switching\nstages, at the same Theta("
           "n^{3/2}) volume (Section VI).\n";
  }
  return 0;
}
