// E5 — Theorem 1: off-line scheduling in O(λ(M) · lg n) delivery cycles.
//
// For each workload and machine size, reports λ(M), the schedule length d,
// the paper's normalized ratio d / (2·λ·lg n) (the theorem says it is
// O(1)), and the greedy first-fit baseline for comparison.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/load.hpp"
#include "core/offline_scheduler.hpp"
#include "core/traffic.hpp"
#include "sim/experiment.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

int main() {
  ft::print_experiment_header(
      "E5", "Theorem 1 off-line scheduling",
      "any message set schedules in d = O(lambda(M) lg n) delivery cycles "
      "(lower bound d >= lambda)");

  for (const std::uint32_t n : {256u, 1024u}) {
    ft::FatTreeTopology topo(n);
    const auto caps = ft::CapacityProfile::universal(topo, n / 4);
    ft::Rng rng(n);
    ft::Table table({"workload", "messages", "lambda", "cycles d",
                     "d/ceil(lambda)", "d/(2 lambda lg n)", "greedy d",
                     "packed d"});
    for (const auto& wl : ft::standard_workloads(n, rng)) {
      const double lambda = ft::load_factor(topo, caps, wl.messages);
      const auto s = ft::schedule_offline(topo, caps, wl.messages);
      const auto g = ft::schedule_greedy(topo, caps, wl.messages);
      const auto p = ft::schedule_offline_packed(topo, caps, wl.messages);
      const double denom =
          2.0 * std::max(1.0, lambda) * static_cast<double>(topo.height());
      table.row()
          .add(wl.name)
          .add(wl.messages.size())
          .add(lambda, 2)
          .add(s.num_cycles())
          .add(static_cast<double>(s.num_cycles()) /
                   std::max(1.0, std::ceil(lambda)),
               2)
          .add(static_cast<double>(s.num_cycles()) / denom, 3)
          .add(g.num_cycles())
          .add(p.num_cycles());
    }
    table.print(std::cout, "n = " + std::to_string(n) +
                               ", universal fat-tree w = n/4");
    std::cout << '\n';
  }

  // λ sweep: cycles track λ linearly at fixed n (the lg n factor is
  // constant within a column).
  {
    const std::uint32_t n = 512;
    ft::FatTreeTopology topo(n);
    const auto caps = ft::CapacityProfile::universal(topo, 64);
    ft::Rng rng(7);
    ft::Table table({"stacked perms k", "lambda", "cycles d", "d/lambda"});
    for (std::uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
      const auto m = ft::stacked_permutations(n, k, rng);
      const double lambda = ft::load_factor(topo, caps, m);
      const auto s = ft::schedule_offline(topo, caps, m);
      table.row().add(k).add(lambda, 2).add(s.num_cycles()).add(
          static_cast<double>(s.num_cycles()) / lambda, 2);
    }
    table.print(std::cout, "lambda sweep at n = 512: d/lambda is flat");
  }
  return 0;
}
