// E15 — Section VII's effectiveness claim: "build the biggest fat-tree
// one can afford, and the architecture automatically ensures that
// communication bandwidth is effectively utilized."
//
// Measures schedule utilization (used wire-slots / paid-for wire-slots)
// as the tree is sized up and down against fixed traffic, plus the
// per-level utilization profile.
#include <algorithm>
#include <iostream>

#include "core/schedule_stats.hpp"
#include "core/traffic.hpp"
#include "obs/run_report.hpp"
#include "sim/experiment.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

int main() {
  ft::print_experiment_header(
      "E15", "Section VII bandwidth-effectiveness claim",
      "sizing the tree down raises utilization of the remaining hardware; "
      "traffic locality shows up as idle trunks, not idle leaves");

  const std::uint32_t n = 256;
  ft::FatTreeTopology topo(n);
  ft::Rng rng(1);

  ft::RunReport report("exp_utilization");
  report.params()["n"] = n;
  ft::PhaseTimers timers;

  {
    auto phase = timers.scope("tree_size_sweep");
    ft::Table table({"workload", "w", "cycles", "mean util", "root util",
                     "throughput msg/cycle"});
    for (const char* name : {"random-perm", "fem-halo", "complement"}) {
      ft::MessageSet m;
      ft::Rng wl_rng(7);
      for (auto& wl : ft::standard_workloads(n, wl_rng)) {
        if (wl.name == name) m = wl.messages;
      }
      for (std::uint64_t w : {256ull, 64ull, 16ull}) {
        const auto caps = ft::CapacityProfile::universal(topo, w);
        const auto s = ft::schedule_offline(topo, caps, m);
        const auto stats = ft::analyze_schedule(topo, caps, s);
        table.row()
            .add(name)
            .add(w)
            .add(stats.cycles)
            .add(stats.mean_utilization, 3)
            .add(stats.root_utilization, 3)
            .add(stats.throughput, 1);

        ft::JsonValue& run = report.add_run(std::string(name) +
                                            "/w=" + std::to_string(w));
        run["workload"] = name;
        run["w"] = w;
        run["cycles"] = static_cast<std::uint64_t>(stats.cycles);
        run["mean_utilization"] = stats.mean_utilization;
        run["root_utilization"] = stats.root_utilization;
        run["throughput"] = stats.throughput;
      }
    }
    table.print(std::cout, "utilization vs tree size, n = 256");
    std::cout << "\nShrinking w raises both mean and root utilization on "
                 "every workload: smaller\ntrees waste less of what they "
                 "own — the robustness thesis quantified.\n\n";
  }

  {
    auto phase = timers.scope("per_level_profile");
    const auto caps = ft::CapacityProfile::universal(topo, 64);
    ft::Table table({"level", "util (random-perm)", "util (fem-halo)",
                     "util (complement)"});
    std::vector<std::vector<double>> per;
    for (const char* name : {"random-perm", "fem-halo", "complement"}) {
      ft::MessageSet m;
      ft::Rng wl_rng(7);
      for (auto& wl : ft::standard_workloads(n, wl_rng)) {
        if (wl.name == name) m = wl.messages;
      }
      const auto s = ft::schedule_offline(topo, caps, m);
      per.push_back(ft::per_level_utilization(topo, caps, s));

      ft::JsonValue& run =
          report.add_run(std::string("per_level/") + name + "/w=64");
      run["workload"] = name;
      run["w"] = 64;
      ft::JsonValue& levels = run["level_utilization"];
      levels = ft::JsonValue::array();
      for (const double u : per.back()) levels.push_back(u);
    }
    for (std::uint32_t k = 0; k <= topo.height(); ++k) {
      table.row().add(k).add(per[0][k], 3).add(per[1][k], 3).add(per[2][k],
                                                                 3);
    }
    table.print(std::cout, "per-level utilization, w = 64");
    std::cout << "\nLocal traffic (fem-halo) idles the trunks; bisection "
                 "traffic (complement)\nworks them hardest — matching the "
                 "telephone-exchange picture of Section II.\n";
  }

  report.set_phases(timers);
  const char* path = "report_exp_utilization.json";
  if (report.write_file(path)) std::cout << "\nwrote " << path << '\n';
  return 0;
}
