// E15 — Section VII's effectiveness claim: "build the biggest fat-tree
// one can afford, and the architecture automatically ensures that
// communication bandwidth is effectively utilized."
//
// Measures schedule utilization (used wire-slots / paid-for wire-slots)
// as the tree is sized up and down against fixed traffic, plus the
// per-level utilization profile, plus a time-domain telemetry gate: under
// a root-bound (complement) permutation routed on-line, the congestion
// observatory's hottest channels must be confined to the top levels of
// the universal tree. Exits nonzero when the gate is violated.
#include <algorithm>
#include <fstream>
#include <iostream>

#include "core/online_router.hpp"
#include "core/schedule_stats.hpp"
#include "core/traffic.hpp"
#include "obs/run_report.hpp"
#include "obs/telemetry.hpp"
#include "sim/experiment.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

int main() {
  ft::print_experiment_header(
      "E15", "Section VII bandwidth-effectiveness claim",
      "sizing the tree down raises utilization of the remaining hardware; "
      "traffic locality shows up as idle trunks, not idle leaves");

  const std::uint32_t n = 256;
  ft::FatTreeTopology topo(n);
  ft::Rng rng(1);

  ft::RunReport report("exp_utilization");
  report.params()["n"] = n;
  ft::PhaseTimers timers;

  {
    auto phase = timers.scope("tree_size_sweep");
    ft::Table table({"workload", "w", "cycles", "mean util", "root util",
                     "throughput msg/cycle"});
    for (const char* name : {"random-perm", "fem-halo", "complement"}) {
      ft::MessageSet m;
      ft::Rng wl_rng(7);
      for (auto& wl : ft::standard_workloads(n, wl_rng)) {
        if (wl.name == name) m = wl.messages;
      }
      for (std::uint64_t w : {256ull, 64ull, 16ull}) {
        const auto caps = ft::CapacityProfile::universal(topo, w);
        const auto s = ft::schedule_offline(topo, caps, m);
        const auto stats = ft::analyze_schedule(topo, caps, s);
        table.row()
            .add(name)
            .add(w)
            .add(stats.cycles)
            .add(stats.mean_utilization, 3)
            .add(stats.root_utilization, 3)
            .add(stats.throughput, 1);

        ft::JsonValue& run = report.add_run(std::string(name) +
                                            "/w=" + std::to_string(w));
        run["workload"] = name;
        run["w"] = w;
        run["cycles"] = static_cast<std::uint64_t>(stats.cycles);
        run["mean_utilization"] = stats.mean_utilization;
        run["root_utilization"] = stats.root_utilization;
        run["throughput"] = stats.throughput;
      }
    }
    table.print(std::cout, "utilization vs tree size, n = 256");
    std::cout << "\nShrinking w raises both mean and root utilization on "
                 "every workload: smaller\ntrees waste less of what they "
                 "own — the robustness thesis quantified.\n\n";
  }

  {
    auto phase = timers.scope("per_level_profile");
    const auto caps = ft::CapacityProfile::universal(topo, 64);
    ft::Table table({"level", "util (random-perm)", "util (fem-halo)",
                     "util (complement)"});
    std::vector<std::vector<double>> per;
    for (const char* name : {"random-perm", "fem-halo", "complement"}) {
      ft::MessageSet m;
      ft::Rng wl_rng(7);
      for (auto& wl : ft::standard_workloads(n, wl_rng)) {
        if (wl.name == name) m = wl.messages;
      }
      const auto s = ft::schedule_offline(topo, caps, m);
      per.push_back(ft::per_level_utilization(topo, caps, s));

      ft::JsonValue& run =
          report.add_run(std::string("per_level/") + name + "/w=64");
      run["workload"] = name;
      run["w"] = 64;
      ft::JsonValue& levels = run["level_utilization"];
      levels = ft::JsonValue::array();
      for (const double u : per.back()) levels.push_back(u);
    }
    for (std::uint32_t k = 0; k <= topo.height(); ++k) {
      table.row().add(k).add(per[0][k], 3).add(per[1][k], 3).add(per[2][k],
                                                                 3);
    }
    table.print(std::cout, "per-level utilization, w = 64");
    std::cout << "\nLocal traffic (fem-halo) idles the trunks; bisection "
                 "traffic (complement)\nworks them hardest — matching the "
                 "telephone-exchange picture of Section II.\n";
  }

  // Time-domain hotspot gate (congestion observatory). Complement traffic
  // is pure bisection load: every message crosses the root, so when the
  // permutation is routed on-line the channels the telemetry sketch ranks
  // hottest — and the level whose time-averaged utilization peaks — must
  // sit in the top half of the tree. A hotspot at the leaves would mean
  // the observatory (or the router) is mislocating congestion.
  bool hotspot_ok = true;
  {
    auto phase = timers.scope("telemetry_hotspot_gate");
    ft::MessageSet m;
    ft::Rng wl_rng(7);
    for (auto& wl : ft::standard_workloads(n, wl_rng)) {
      if (wl.name == "complement") m = wl.messages;
    }
    const auto caps = ft::CapacityProfile::universal(topo, 64);

    ft::TelemetryOptions topts;
    topts.every_k = 1;  // full resolution: the gate reads the time domain
    ft::TelemetryProbe probe(topts);
    ft::OnlineRouterOptions opts;
    opts.observer = &probe;
    opts.time_phases = true;
    ft::Rng rng(11);
    const auto res = ft::route_online(topo, caps, m, rng, opts);
    probe.finalize();

    // Level 0 is the root's external interface (never carries internal
    // traffic); level `height` is the leaves. "Top levels" = the root
    // half of the span in between.
    const std::uint32_t top_cutoff = 1 + topo.height() / 2;

    double best_util = -1.0;
    std::uint32_t best_level = 0;
    ft::Table table({"level", "mean util", "peak window util"});
    for (std::uint32_t lvl = 1; lvl < probe.num_levels(); ++lvl) {
      const ft::TelemetryRing& ring = probe.level_series(lvl);
      const double cap = static_cast<double>(probe.level_capacity(lvl));
      const double mean =
          cap > 0.0 && ring.total_count() > 0
              ? static_cast<double>(ring.total_value()) /
                    (cap * static_cast<double>(ring.total_count()))
              : 0.0;
      double peak = 0.0;
      for (const ft::TelemetrySample& s : ring.samples()) {
        if (s.count == 0 || cap <= 0.0) continue;
        peak = std::max(peak, static_cast<double>(s.value) /
                                  (cap * static_cast<double>(s.count)));
      }
      table.row().add(lvl).add(mean, 3).add(peak, 3);
      if (mean > best_util) {
        best_util = mean;
        best_level = lvl;
      }
    }
    table.print(std::cout, "\ntime-domain utilization, complement, online");

    if (res.gave_up || res.messages_given_up != 0) {
      std::cout << "GATE FAIL: online complement routing did not complete\n";
      hotspot_ok = false;
    }
    if (best_level > top_cutoff) {
      std::cout << "GATE FAIL: hottest level " << best_level
                << " is below the top-level cutoff " << top_cutoff << '\n';
      hotspot_ok = false;
    }
    // Every sketch entry carrying a substantial share of the hot traffic
    // (>= half the leader's count) must be a top-level channel.
    const auto top = probe.top_channels().top();
    const std::uint64_t lead = top.empty() ? 0 : top.front().count;
    for (const auto& e : top) {
      if (e.count * 2 < lead) break;  // sorted descending
      if (e.tag > top_cutoff) {
        std::cout << "GATE FAIL: hot channel " << e.key << " (count "
                  << e.count << ") sits at level " << e.tag
                  << ", below the top-level cutoff " << top_cutoff << '\n';
        hotspot_ok = false;
      }
    }
    std::cout << "hotspot gate: hottest level " << best_level
              << " (mean util " << best_util << "), "
              << "cutoff " << top_cutoff << " — "
              << (hotspot_ok ? "confined to top levels\n" : "VIOLATED\n");

    ft::JsonValue& run = report.add_run("telemetry_hotspot/complement/w=64");
    run["workload"] = "complement";
    run["w"] = 64;
    run["cycles"] = res.delivery_cycles;
    run["hottest_level"] = best_level;
    run["top_cutoff"] = top_cutoff;
    run["gate_passed"] = hotspot_ok;
    run["telemetry"] = probe.to_json();
    run["amdahl"] = ft::phase_profile_json(res.phases);

    std::ofstream heat("telemetry_exp_utilization.csv");
    if (heat) {
      probe.write_heatmap_csv(heat);
      std::cout << "wrote telemetry_exp_utilization.csv\n";
    }
  }

  report.set_phases(timers);
  const char* path = "report_exp_utilization.json";
  if (report.write_file(path)) std::cout << "\nwrote " << path << '\n';
  if (!hotspot_ok) {
    std::cout << "\nHOTSPOT GATE FAILED\n";
    return 1;
  }
  return 0;
}
