// E11 — the on-line extension (Sections II/VI, Greenberg–Leiserson [8]):
// randomized lossy routing with acknowledgments and retry delivers every
// message set in O(λ(M) + lg n · lg lg n) delivery cycles w.h.p.
//
// Besides the tables, emits report_exp_online_routing.json — a
// schema-versioned RunReport with every sweep's numbers and phase
// timings (collected into reports/ by scripts/run_experiments.sh).
#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/load.hpp"
#include "core/online_router.hpp"
#include "core/traffic.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "sim/experiment.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  ft::print_experiment_header(
      "E11", "on-line randomized routing (extension [8])",
      "lossy delivery cycles with random concentrator arbitration finish "
      "in O(lambda + lg n lglg n) cycles w.h.p.");

  ft::RunReport report("exp_online_routing");
  ft::PhaseTimers timers;

  // λ sweep at fixed n.
  {
    auto phase = timers.scope("lambda_sweep");
    const std::uint32_t n = 1024;
    ft::FatTreeTopology topo(n);
    const auto caps = ft::CapacityProfile::universal(topo, 128);
    ft::Table table({"stacked perms", "lambda", "mean cycles", "p95 cycles",
                     "cycles/(lambda + lg n lglg n)", "loss rate"});
    for (std::uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
      ft::Rng gen(k);
      const auto m = ft::stacked_permutations(n, k, gen);
      const double lambda = ft::load_factor(topo, caps, m);
      const double lgn = std::log2(double(n));
      const double envelope = lambda + lgn * std::log2(lgn);
      std::vector<double> cycles;
      double losses = 0, attempts = 0;
      for (int rep = 0; rep < 7; ++rep) {
        ft::Rng rng(1000 + 17 * rep + k);
        const auto r = ft::route_online(topo, caps, m, rng);
        cycles.push_back(r.delivery_cycles);
        losses += static_cast<double>(r.total_losses);
        attempts += static_cast<double>(r.total_attempts);
      }
      ft::Accumulator acc;
      for (double c : cycles) acc.add(c);
      table.row()
          .add(k)
          .add(lambda, 2)
          .add(acc.mean(), 1)
          .add(ft::percentile(cycles, 95), 1)
          .add(acc.mean() / envelope, 3)
          .add(losses / attempts, 3);

      ft::JsonValue& run = report.add_run("lambda_sweep/k=" + std::to_string(k));
      run["n"] = n;
      run["stacked_perms"] = k;
      run["lambda"] = lambda;
      run["mean_cycles"] = acc.mean();
      run["p95_cycles"] = ft::percentile(cycles, 95);
      run["envelope_ratio"] = acc.mean() / envelope;
      run["loss_rate"] = losses / attempts;
    }
    table.print(std::cout, "n = 1024, w = 128: cycles track the envelope");
    std::cout << '\n';
  }

  // n sweep at fixed λ: the additive lg n lglg n term.
  {
    auto phase = timers.scope("n_sweep");
    ft::Table table({"n", "lambda", "mean cycles",
                     "cycles/(lambda + lg n lglg n)"});
    for (std::uint32_t lg = 6; lg <= 12; lg += 2) {
      const std::uint32_t n = 1u << lg;
      ft::FatTreeTopology topo(n);
      const auto caps = ft::CapacityProfile::universal(topo, n / 8);
      ft::Rng gen(lg);
      const auto m = ft::stacked_permutations(n, 4, gen);
      const double lambda = ft::load_factor(topo, caps, m);
      const double envelope =
          lambda + lg * std::log2(static_cast<double>(lg));
      ft::Accumulator acc;
      for (int rep = 0; rep < 5; ++rep) {
        ft::Rng rng(2000 + 13 * rep + lg);
        acc.add(ft::route_online(topo, caps, m, rng).delivery_cycles);
      }
      table.row().add(n).add(lambda, 2).add(acc.mean(), 1).add(
          acc.mean() / envelope, 3);

      ft::JsonValue& run = report.add_run("n_sweep/n=" + std::to_string(n));
      run["n"] = n;
      run["lambda"] = lambda;
      run["mean_cycles"] = acc.mean();
      run["envelope_ratio"] = acc.mean() / envelope;
    }
    table.print(std::cout, "n sweep at 4 stacked permutations");
    std::cout << '\n';
  }

  // Ideal vs partial-concentrator arbitration (alpha ablation).
  {
    auto phase = timers.scope("alpha_ablation");
    const std::uint32_t n = 512;
    ft::FatTreeTopology topo(n);
    const auto caps = ft::CapacityProfile::universal(topo, 64);
    ft::Rng gen(5);
    const auto m = ft::stacked_permutations(n, 8, gen);
    ft::Table table({"alpha", "mean cycles", "loss rate"});
    for (double alpha : {1.0, 0.9, 0.75, 0.5}) {
      ft::OnlineRouterOptions opts;
      opts.alpha = alpha;
      double cyc = 0, losses = 0, attempts = 0;
      for (int rep = 0; rep < 5; ++rep) {
        ft::Rng rng(3000 + rep);
        const auto r = ft::route_online(topo, caps, m, rng, opts);
        cyc += r.delivery_cycles;
        losses += static_cast<double>(r.total_losses);
        attempts += static_cast<double>(r.total_attempts);
      }
      table.row().add(alpha, 2).add(cyc / 5.0, 1).add(losses / attempts, 3);

      ft::JsonValue& run = report.add_run("alpha_ablation/alpha=" +
                                          ft::format_double(alpha, 2));
      run["alpha"] = alpha;
      run["mean_cycles"] = cyc / 5.0;
      run["loss_rate"] = losses / attempts;
    }
    table.print(std::cout,
                "ablation: partial-concentrator effectiveness alpha");
    std::cout << '\n';
  }

  // Engine instrumentation: where the bandwidth goes. EngineMetrics rides
  // the router's observer hook and aggregates per-level channel
  // utilization plus a channel-cycle utilization histogram.
  {
    auto phase = timers.scope("instrumentation");
    const std::uint32_t n = 1024;
    ft::FatTreeTopology topo(n);
    const auto caps = ft::CapacityProfile::universal(topo, 128);
    ft::Rng gen(9);
    const auto m = ft::stacked_permutations(n, 8, gen);
    ft::EngineMetrics metrics;
    ft::OnlineRouterOptions opts;
    opts.observer = &metrics;
    ft::Rng rng(4000);
    const auto r = ft::route_online(topo, caps, m, rng, opts);

    ft::Table levels({"channel level", "mean utilization"});
    for (std::uint32_t k = 1; k <= topo.height(); ++k) {
      levels.row().add(k).add(metrics.level_utilization(k), 3);
    }
    levels.print(std::cout, "per-level utilization over " +
                                std::to_string(r.delivery_cycles) +
                                " delivery cycles (k = 8, w = 128)");
    std::cout << '\n';

    const ft::Histogram& hist = metrics.utilization_histogram();
    ft::Table hist_table({"utilization bin", "channel-cycles"});
    for (std::size_t b = 0; b < hist.num_bins(); ++b) {
      hist_table.row()
          .add(">= " + ft::format_double(hist.bin_lo(b), 2))
          .add(hist.bin_count(b));
    }
    if (hist.overflow() != 0) {
      hist_table.row().add("overload > 1").add(hist.overflow());
    }
    hist_table.print(std::cout, "channel-cycle utilization histogram");

    ft::JsonValue& run = report.add_run("instrumentation/n=1024,k=8");
    run["n"] = n;
    run["delivery_cycles"] = r.delivery_cycles;
    run["engine"] = metrics.to_json();
  }

  report.set_phases(timers);
  const char* path = "report_exp_online_routing.json";
  if (report.write_file(path)) std::cout << "\nwrote " << path << '\n';
  return 0;
}
